#!/usr/bin/env python3
"""Closed-loop load generator for the dynamips looking-glass (--serve).

Discovers queryable ASNs from /v1/healthz, then drives N worker threads,
each with a persistent keep-alive connection, round-robin over the
per-AS endpoints for a fixed duration. Two things are measured and one
invariant is checked:

  * throughput: completed requests / wall time (requests_per_sec);
  * tail latency: p99 over per-request wall times, exported inverted
    (inv_p99_per_s = 1 / p99_seconds) so check_bench.py's one-sided
    "higher is better" gate applies to both metrics;
  * byte consistency: every 200-response body embeds the snapshot
    generation it was rendered from ("snapshot": G). Responses are
    grouped by (path, generation) and each group's bodies must be
    byte-identical — a mismatch means a torn read across a concurrent
    re-finalization and fails the run, which is exactly what the
    lg-soak CI job runs this tool to prove cannot happen.

The result is a schema dynamips.bench.v1 document (--out) gated by
tools/check_bench.py against bench/baselines/BENCH_lg.json. The meta
fields (--scale/--seed/--window/--threads default to the lg-soak run
parameters) describe the serving run so candidates and baselines are
only ever compared at identical shapes.

Connection-level failures (reset while reconnecting, server restart)
are retried with a fresh connection and counted as reconnects, not
errors; any non-200 response is an error and fails the run.

`--slow-client N` additionally runs N slow-loris-style readers: each
opens a raw socket with a tiny SO_RCVBUF, sends one GET, then trickle-
reads one byte per `--slow-read-interval` seconds. A healthy server
(send_timeout_ms armed) drops such connections and reclaims the
worker — the drop is counted, never treated as an error. Responses in
this repo are small enough to fit kernel buffers, so pair the mode
with a `--failpoints 'lg.send=delay(...)...'` serving run (or a large
snapshot) to actually stall the send path.

Exit status: 0 ok, 1 torn read / HTTP error / no paths discovered,
2 usage. Stdlib-only by design (runs in bare CI containers).
"""

import argparse
import hashlib
import http.client
import json
import re
import socket
import sys
import threading
import time

SNAPSHOT_RE = re.compile(rb'"snapshot": (\d+)')


def discover_paths(host, port, timeout_s):
    """Poll /v1/healthz until a snapshot is published; return its per-AS
    endpoint paths (durations for atlas, assoc for cdn)."""
    deadline = time.monotonic() + timeout_s
    last_error = "no response"
    while time.monotonic() < deadline:
        try:
            conn = http.client.HTTPConnection(host, port, timeout=5)
            conn.request("GET", "/v1/healthz")
            resp = conn.getresponse()
            body = resp.read()
            conn.close()
            if resp.status == 200:
                doc = json.loads(body)
                paths = []
                for study, endpoint in (("atlas", "durations"),
                                        ("cdn", "assoc")):
                    fragment = doc.get(study)
                    if fragment:
                        paths.extend(f"/v1/{endpoint}/{asn}"
                                     for asn in fragment.get("ases", []))
                if paths:
                    return paths
                last_error = "healthz ok but no snapshot published yet"
            else:
                last_error = f"healthz returned {resp.status}"
        except (OSError, ValueError) as exc:
            last_error = str(exc)
        time.sleep(0.2)
    print(f"lg_load: discovery failed: {last_error}", file=sys.stderr)
    return []


class Worker(threading.Thread):
    def __init__(self, index, host, port, paths, stop_at, bodies, lock):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.paths, self.offset = paths, index * 7
        self.stop_at = stop_at
        self.bodies, self.lock = bodies, lock  # (path, gen) -> sha256
        self.latencies = []
        self.requests = self.errors = self.reconnects = self.torn = 0

    def run(self):
        conn = None
        i = self.offset
        while time.monotonic() < self.stop_at:
            path = self.paths[i % len(self.paths)]
            i += 1
            t0 = time.monotonic()
            try:
                if conn is None:
                    conn = http.client.HTTPConnection(
                        self.host, self.port, timeout=10)
                conn.request("GET", path)
                resp = conn.getresponse()
                body = resp.read()
            except (OSError, http.client.HTTPException):
                if conn is not None:
                    conn.close()
                conn = None
                self.reconnects += 1
                continue
            self.latencies.append(time.monotonic() - t0)
            self.requests += 1
            if resp.status != 200:
                self.errors += 1
                print(f"lg_load: {path} -> {resp.status}", file=sys.stderr)
                continue
            match = SNAPSHOT_RE.search(body)
            if not match:
                continue
            key = (path, int(match.group(1)))
            digest = hashlib.sha256(body).hexdigest()
            with self.lock:
                seen = self.bodies.setdefault(key, digest)
            if seen != digest:
                self.torn += 1
                print(f"lg_load: TORN READ {path} snapshot "
                      f"{key[1]}: {seen[:12]} != {digest[:12]}",
                      file=sys.stderr)
        if conn is not None:
            conn.close()


class SlowClient(threading.Thread):
    """One slow-loris reader: request, then trickle-read a byte at a time
    until the server enforces its send deadline and drops us (or the run
    ends). Being dropped is the expected, healthy outcome."""

    def __init__(self, host, port, path, stop_at, interval):
        super().__init__(daemon=True)
        self.host, self.port, self.path = host, port, path
        self.stop_at, self.interval = stop_at, interval
        self.bytes_read = 0
        self.dropped = False

    def run(self):
        sock = None
        try:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            # A tiny receive window fills the server's send buffer fast,
            # forcing its send path to wait on us.
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1024)
            sock.connect((self.host, self.port))
            sock.sendall(f"GET {self.path} HTTP/1.1\r\nHost: lg\r\n"
                         "Connection: keep-alive\r\n\r\n".encode())
            sock.settimeout(self.interval)
            while time.monotonic() < self.stop_at:
                time.sleep(self.interval)
                try:
                    chunk = sock.recv(1)
                except socket.timeout:
                    continue
                except OSError:
                    self.dropped = True
                    break
                if not chunk:
                    self.dropped = True
                    break
                self.bytes_read += 1
        except OSError:
            self.dropped = True
        finally:
            if sock is not None:
                sock.close()


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--duration", type=float, default=10.0,
                        help="seconds of load (default 10)")
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent closed-loop connections")
    parser.add_argument("--discover-timeout", type=float, default=60.0,
                        help="seconds to wait for the first snapshot")
    parser.add_argument("--out", default="",
                        help="write a dynamips.bench.v1 document here")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="meta.scale of the serving run")
    parser.add_argument("--seed", type=int, default=1,
                        help="meta.seed of the serving run")
    parser.add_argument("--window", type=int, default=30000,
                        help="meta.window_hours of the serving run")
    parser.add_argument("--threads", type=int, default=1,
                        help="meta.threads of the serving run")
    parser.add_argument("--slow-client", type=int, default=0,
                        help="also run N slow-loris trickle-readers "
                             "(exercises the server send deadline)")
    parser.add_argument("--slow-read-interval", type=float, default=0.5,
                        help="seconds between single-byte reads in "
                             "--slow-client mode (default 0.5)")
    args = parser.parse_args()
    if args.duration <= 0 or args.workers <= 0:
        parser.error("--duration and --workers must be positive")
    if args.slow_client < 0 or args.slow_read_interval <= 0:
        parser.error("--slow-client must be >= 0 and "
                     "--slow-read-interval positive")

    paths = discover_paths(args.host, args.port, args.discover_timeout)
    if not paths:
        return 1
    print(f"lg_load: {len(paths)} paths discovered; driving "
          f"{args.workers} workers for {args.duration:.0f}s")

    bodies, lock = {}, threading.Lock()
    t0 = time.monotonic()
    stop_at = t0 + args.duration
    workers = [Worker(i, args.host, args.port, paths, stop_at, bodies, lock)
               for i in range(args.workers)]
    slow = [SlowClient(args.host, args.port, paths[i % len(paths)], stop_at,
                       args.slow_read_interval)
            for i in range(args.slow_client)]
    for w in workers + slow:
        w.start()
    for w in workers + slow:
        w.join()
    wall = time.monotonic() - t0

    requests = sum(w.requests for w in workers)
    errors = sum(w.errors for w in workers)
    reconnects = sum(w.reconnects for w in workers)
    torn = sum(w.torn for w in workers)
    latencies = sorted(x for w in workers for x in w.latencies)
    p50 = percentile(latencies, 0.50)
    p99 = percentile(latencies, 0.99)
    rps = requests / wall if wall > 0 else 0.0
    snapshots = sorted({gen for _, gen in bodies})

    print(f"lg_load: {requests} requests in {wall:.2f}s "
          f"({rps:.0f} req/s), p50 {p50 * 1e3:.2f}ms, "
          f"p99 {p99 * 1e3:.2f}ms, {errors} errors, "
          f"{reconnects} reconnects, {torn} torn, "
          f"snapshots seen: {snapshots}")
    slow_dropped = sum(1 for s in slow if s.dropped)
    if slow:
        print(f"lg_load: {len(slow)} slow clients, {slow_dropped} dropped "
              f"by the server, "
              f"{sum(s.bytes_read for s in slow)} bytes trickle-read")

    if args.out:
        doc = {
            "schema": "dynamips.bench.v1",
            "meta": {"binary": "lg_load", "scale": args.scale,
                     "seed": args.seed, "window_hours": args.window,
                     "threads": args.threads},
            "counts": {"requests": requests, "errors": errors,
                       "reconnects": reconnects, "torn": torn,
                       "paths": len(paths),
                       "snapshots_seen": len(snapshots),
                       "slow_clients": len(slow),
                       "slow_clients_dropped": slow_dropped},
            "wall_s": {"duration": round(wall, 3),
                       "p50": round(p50, 6), "p99": round(p99, 6)},
            "metrics": {
                "requests_per_sec": round(rps, 1),
                "inv_p99_per_s": round(1.0 / p99, 1) if p99 > 0 else 0.0,
            },
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"lg_load: wrote {args.out}")

    if torn:
        print(f"lg_load: FAIL — {torn} torn reads", file=sys.stderr)
        return 1
    if errors:
        print(f"lg_load: FAIL — {errors} non-200 responses", file=sys.stderr)
        return 1
    if requests == 0:
        print("lg_load: FAIL — no requests completed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
