#!/usr/bin/env python3
"""Gate a DynamIPs bench throughput document against a checked-in baseline.

Usage:
  check_bench.py CANDIDATE BASELINE [--tolerance=R] [--verbose]
  check_bench.py CANDIDATE BASELINE --update

The candidate is a document written by `dynamips_study --bench-out`
(schema "dynamips.bench.v1"). Unlike the counters check_metrics.py
gates, these are wall-clock throughput measurements, so the comparison
is one-sided and tolerant:

  * schema strings must match exactly;
  * the run parameters (scale, seed, window_hours, threads) must match
    the baseline's — throughput at a different scale or thread count is
    not comparable, and the gate fails loudly rather than comparing
    apples to oranges;
  * every metric under "metrics" in the baseline must be present in the
    candidate and must not fall below baseline * (1 - tolerance). The
    default tolerance is 15% (override per baseline with a "tolerance"
    field, or per invocation with --tolerance=R). Faster-than-baseline
    is never a failure — ratchet the baseline forward with --update
    when an optimization lands.

`--update` rewrites BASELINE's meta/counts/wall_s/metrics from
CANDIDATE, preserving the baseline's tolerance.

Exit status: 0 on pass, 1 on regression/mismatch, 2 on usage errors.
Stdlib-only by design (runs in bare CI containers).
"""

import json
import sys

SCHEMA = "dynamips.bench.v1"
DEFAULT_TOLERANCE = 0.15
META_KEYS = ("scale", "seed", "window_hours", "threads")


def fail(msg):
    print(f"check_bench: {msg}", file=sys.stderr)
    return 2


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def check(candidate, baseline, tolerance, verbose=False):
    problems = []

    for doc, which in ((candidate, "candidate"), (baseline, "baseline")):
        if doc.get("schema") != SCHEMA:
            problems.append(
                f"{which} schema {doc.get('schema')!r} != {SCHEMA!r}")
    if problems:
        return problems

    cmeta = candidate.get("meta", {})
    bmeta = baseline.get("meta", {})
    for key in META_KEYS:
        if cmeta.get(key) != bmeta.get(key):
            problems.append(
                f"meta.{key}: candidate has {cmeta.get(key)!r}, baseline "
                f"expects {bmeta.get(key)!r} — throughput is only "
                f"comparable at identical run parameters")
    if problems:
        return problems

    got = candidate.get("metrics", {})
    for name, want in sorted(baseline.get("metrics", {}).items()):
        if name not in got:
            problems.append(f"{name}: missing from candidate metrics")
            continue
        floor = want * (1.0 - tolerance)
        if got[name] < floor:
            drop = 1.0 - got[name] / want if want else 1.0
            problems.append(
                f"{name}: got {got[name]:.1f}, baseline {want:.1f} "
                f"(-{drop:.1%}, tolerance {tolerance:.0%})")
        elif verbose:
            print(f"  ok {name}: {got[name]:.1f} "
                  f"(baseline {want:.1f}, floor {floor:.1f})")

    return problems


def update_baseline(candidate, baseline_path):
    try:
        baseline = load(baseline_path)
    except (OSError, ValueError):
        baseline = {}
    tolerance = baseline.get("tolerance", DEFAULT_TOLERANCE)
    baseline = {
        "schema": SCHEMA,
        "meta": {k: candidate.get("meta", {}).get(k) for k in META_KEYS},
        "tolerance": tolerance,
        "counts": candidate.get("counts", {}),
        "wall_s": candidate.get("wall_s", {}),
        "metrics": candidate.get("metrics", {}),
    }
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"updated {baseline_path} "
          f"({len(baseline['metrics'])} gated metrics)")


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    flags = {a for a in argv[1:] if a.startswith("--")}
    tolerance_override = None
    for flag in list(flags):
        if flag.startswith("--tolerance="):
            try:
                tolerance_override = float(flag[len("--tolerance="):])
            except ValueError:
                return fail(f"bad tolerance {flag!r}")
            flags.remove(flag)
    unknown = flags - {"--verbose", "--update"}
    usage = (__doc__.strip().splitlines()[0] +
             "\nusage: check_bench.py CANDIDATE BASELINE "
             "[--tolerance=R] [--verbose|--update]")
    if unknown or len(args) != 2:
        return fail(usage)

    candidate_path, baseline_path = args
    try:
        candidate = load(candidate_path)
    except (OSError, ValueError) as exc:
        return fail(f"cannot read candidate {candidate_path}: {exc}")

    if "--update" in flags:
        update_baseline(candidate, baseline_path)
        return 0

    try:
        baseline = load(baseline_path)
    except (OSError, ValueError) as exc:
        return fail(f"cannot read baseline {baseline_path}: {exc}")

    tolerance = tolerance_override
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))

    problems = check(candidate, baseline, tolerance, "--verbose" in flags)
    if problems:
        print(f"check_bench: {candidate_path} fails:", file=sys.stderr)
        for p in problems:
            print(f"  FAIL {p}", file=sys.stderr)
        return 1
    print(f"check_bench: {candidate_path} passes against {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
