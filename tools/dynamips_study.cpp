// dynamips_study — command-line driver: run the full Atlas and CDN studies
// and export every artifact's underlying series as CSV, mirroring the
// paper's supplemental data release.
//
// Usage: dynamips_study [output_dir] [--scale S] [--window HOURS]
//                       [--seed N] [--threads N] [--metrics-out FILE]
//                       [--atlas-only|--cdn-only]
//                       [--atlas-in F[,F...]] [--cdn-in F[,F...]]
//                       [--quarantine-out FILE]
//                       [--max-reject-fraction R]
//                       [--max-consecutive-rejects N]
//
// With --metrics-out the pipeline records throughput counters, per-phase
// timings, and shard balance into the process-wide metrics registry and
// writes the schema-versioned JSON document (obs/metrics_json.h) to FILE;
// tools/check_metrics.py diffs such documents against checked-in
// baselines. Counters are identical for every --threads value.
//
// --atlas-in / --cdn-in switch the corresponding study from the in-process
// generator to real-data mode: exported CSV datasets are streamed through
// the fault-tolerant readers (io/readers.h), malformed lines are counted
// into ingest.reject.* metrics and optionally appended to the
// --quarantine-out file with their line numbers, and a file exceeding the
// error budget fails the run with a descriptive status and exit code 1.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/pipeline.h"
#include "io/results_io.h"
#include "obs/metrics.h"
#include "obs/metrics_json.h"
#include "simnet/isp.h"

using namespace dynamips;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [output_dir] [--scale S] [--window HOURS] "
               "[--seed N] [--threads N] [--metrics-out FILE] "
               "[--atlas-only|--cdn-only] "
               "[--atlas-in F[,F...]] [--cdn-in F[,F...]] "
               "[--quarantine-out FILE] [--max-reject-fraction R] "
               "[--max-consecutive-rejects N]\n",
               argv0);
}

std::vector<std::string> split_paths(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    if (comma > start) out.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

template <typename Fn>
void write_file(const std::filesystem::path& path, Fn&& writer) {
  std::ofstream os(path);
  writer(os);
  std::printf("  wrote %s\n", path.string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path out_dir = "dynamips_results";
  double scale = 0.3;
  std::uint64_t window = 30000, seed = 1;
  unsigned threads = 0;  // 0 = hardware_concurrency
  bool atlas = true, cdn = true;
  std::string metrics_out;
  std::string atlas_in, cdn_in, quarantine_out;
  io::ReaderOptions reader_opts;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--window") {
      window = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = unsigned(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--atlas-in") {
      atlas_in = next();
    } else if (arg == "--cdn-in") {
      cdn_in = next();
    } else if (arg == "--quarantine-out") {
      quarantine_out = next();
    } else if (arg == "--max-reject-fraction") {
      reader_opts.max_reject_fraction = std::atof(next());
    } else if (arg == "--max-consecutive-rejects") {
      reader_opts.max_consecutive_rejects =
          std::strtoull(next(), nullptr, 10);
    } else if (arg == "--atlas-only") {
      cdn = false;
    } else if (arg == "--cdn-only") {
      atlas = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
      return 2;
    } else {
      out_dir = arg;
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.string().c_str(),
                 ec.message().c_str());
    return 1;
  }

  const unsigned effective = core::resolve_threads(threads);
  obs::MetricsRegistry* registry =
      metrics_out.empty() ? nullptr : &obs::MetricsRegistry::global();

  std::ofstream quarantine_stream;
  if (!quarantine_out.empty()) {
    quarantine_stream.open(quarantine_out);
    if (!quarantine_stream.is_open()) {
      std::fprintf(stderr, "cannot open quarantine file %s\n",
                   quarantine_out.c_str());
      return 1;
    }
    reader_opts.quarantine = &quarantine_stream;
  }

  if (atlas) {
    core::AtlasStudy study;
    auto t0 = std::chrono::steady_clock::now();
    if (!atlas_in.empty()) {
      std::printf("Atlas study from %s (%u shards)...\n", atlas_in.c_str(),
                  effective);
      core::AtlasFileStudyConfig cfg;
      cfg.threads = threads;
      cfg.metrics = registry;
      cfg.reader = reader_opts;
      io::IngestStats stats;
      auto loaded = core::run_atlas_study_from_files(
          split_paths(atlas_in), simnet::paper_isps(), cfg, &stats);
      std::printf("  ingested %s\n", stats.summary().c_str());
      if (!loaded.ok()) {
        std::fprintf(stderr, "atlas ingest failed: %s\n",
                     loaded.status().to_string().c_str());
        return 1;
      }
      study = loaded.take();
    } else {
      std::printf("Atlas study (scale %.2f, window %llu h, seed %llu, "
                  "%u shards)...\n",
                  scale, (unsigned long long)window,
                  (unsigned long long)seed, effective);
      core::AtlasStudyConfig cfg;
      cfg.atlas.probe_scale = scale;
      cfg.atlas.window_hours = window;
      cfg.atlas.seed = seed;
      cfg.threads = threads;
      cfg.metrics = registry;
      study = core::run_atlas_study(simnet::paper_isps(), cfg);
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    if (registry)
      registry->record_phase("study.atlas_wall", std::uint64_t(secs * 1e9));
    std::printf("  analyzed %llu probes in %.2fs\n",
                (unsigned long long)study.sanitize.probes_seen, secs);
    write_file(out_dir / "fig1_duration_curves.csv", [&](std::ostream& os) {
      io::write_duration_curves_csv(os, study);
    });
    write_file(out_dir / "fig5_cpl.csv", [&](std::ostream& os) {
      io::write_cpl_csv(os, study);
    });
    write_file(out_dir / "table2_bgp_moves.csv", [&](std::ostream& os) {
      io::write_bgp_moves_csv(os, study);
    });
    write_file(out_dir / "fig6_inference.csv", [&](std::ostream& os) {
      io::write_inference_csv(os, study);
    });
  }

  if (cdn) {
    core::CdnStudy study{core::CdnAnalyzer({}, {}), {}};
    auto t0 = std::chrono::steady_clock::now();
    if (!cdn_in.empty()) {
      std::printf("CDN study from %s (%u shards)...\n", cdn_in.c_str(),
                  effective);
      core::CdnFileStudyConfig cfg;
      cfg.threads = threads;
      cfg.metrics = registry;
      cfg.reader = reader_opts;
      // The CSV schema carries no access-type/registry ground truth; take
      // the attribution of the known population profiles (ASNs absent from
      // it analyze as fixed-line RIPE).
      for (const auto& entry : cdn::default_cdn_population()) {
        if (entry.isp.mobile) cfg.mobile_asns.insert(entry.isp.asn);
        cfg.registries[entry.isp.asn] = entry.isp.registry;
        cfg.asn_names[entry.isp.asn] = entry.isp.name;
      }
      io::IngestStats stats;
      auto loaded =
          core::run_cdn_study_from_files(split_paths(cdn_in), cfg, &stats);
      std::printf("  ingested %s\n", stats.summary().c_str());
      if (!loaded.ok()) {
        std::fprintf(stderr, "cdn ingest failed: %s\n",
                     loaded.status().to_string().c_str());
        return 1;
      }
      study = loaded.take();
    } else {
      std::printf("CDN study (scale %.2f, seed %llu, %u shards)...\n", scale,
                  (unsigned long long)seed, effective);
      core::CdnStudyConfig cfg;
      cfg.cdn.subscriber_scale = scale;
      cfg.cdn.seed = seed * 977;
      cfg.threads = threads;
      cfg.metrics = registry;
      study = core::run_cdn_study(cdn::default_cdn_population(scale), cfg);
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    if (registry)
      registry->record_phase("study.cdn_wall", std::uint64_t(secs * 1e9));
    std::printf("  analyzed %llu tuples in %.2fs\n",
                (unsigned long long)(study.analyzer.total_tuples() +
                                     study.analyzer.total_mismatched()),
                secs);
    write_file(out_dir / "fig23_assoc_durations.csv", [&](std::ostream& os) {
      io::write_assoc_durations_csv(os, study);
    });
    write_file(out_dir / "fig4_degrees.csv", [&](std::ostream& os) {
      io::write_degrees_csv(os, study);
    });
    write_file(out_dir / "fig7_zero_boundaries.csv", [&](std::ostream& os) {
      io::write_zero_boundaries_csv(os, study);
    });
  }

  if (registry) {
    registry->set_gauge("process.peak_rss_bytes",
                        double(obs::peak_rss_bytes()));
    obs::MetricsMeta meta;
    meta.binary = "dynamips_study";
    meta.scale = scale;
    meta.seed = seed;
    meta.window_hours = window;
    meta.threads = effective;
    if (!obs::write_metrics_json(metrics_out, registry->snapshot(), meta)) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   metrics_out.c_str());
      return 1;
    }
    std::printf("  wrote %s\n", metrics_out.c_str());
  }
  std::printf("done.\n");
  return 0;
}
