// dynamips_study — command-line driver: run the full Atlas and CDN studies
// and export every artifact's underlying series as CSV, mirroring the
// paper's supplemental data release.
//
// Usage: dynamips_study [output_dir] [--scale S] [--window HOURS]
//                       [--seed N] [--threads N] [--metrics-out FILE]
//                       [--atlas-only|--cdn-only]
//                       [--atlas-in F[,F...]] [--cdn-in F[,F...]]
//                       [--quarantine-out FILE]
//                       [--max-reject-fraction R]
//                       [--max-consecutive-rejects N]
//                       [--checkpoint-every N] [--checkpoint-out FILE]
//                       [--resume-from FILE] [--deadline-seconds S]
//
// With --metrics-out the pipeline records throughput counters, per-phase
// timings, and shard balance into the process-wide metrics registry and
// writes the schema-versioned JSON document (obs/metrics_json.h) to FILE;
// tools/check_metrics.py diffs such documents against checked-in
// baselines. Counters are identical for every --threads value.
//
// With --bench-out a small throughput document (schema dynamips.bench.v1)
// is written on success: per-study wall time and records/sec at the run's
// (scale, seed, window, threads). tools/check_bench.py gates such
// documents against bench/baselines/BENCH_*.json to catch throughput
// regressions; unlike the metrics counters these values are wall-clock
// measurements and are compared with a relative tolerance.
//
// --atlas-in / --cdn-in switch the corresponding study from the in-process
// generator to real-data mode: exported CSV datasets are streamed through
// the fault-tolerant readers (io/readers.h), malformed lines are counted
// into ingest.reject.* metrics and optionally appended to the
// --quarantine-out file with their line numbers, and a file exceeding the
// error budget fails the run with a descriptive status and exit code 1
// (stale result CSVs of the failed study are removed).
//
// Streaming mode: --follow DIR (with exactly one of --atlas-only/--cdn-only)
// switches from one-shot ingestion to a long-lived stream. Batch files
// dropped into DIR are consumed in natural name order through the same
// fault-tolerant readers, a monotone batch high-water-mark checkpoint is
// written after every batch, and every --refinalize-every N batches (or
// --refinalize-seconds S) the study is re-finalized and the result CSVs are
// atomically re-published while the stream keeps running. A file named
// `stream.stop` in DIR ends the stream: the final re-finalization records
// metrics and the tool exits 0 with results byte-identical to a one-shot
// run over the same batches. SIGINT/SIGTERM exits 3; re-running with
// --resume-from replays only unconsumed batches, at any --threads value.
//
// Looking-glass mode: --serve PORT starts the src/lg/ HTTP service (GET
// /v1/durations/<asn>, /v1/assoc/<asn>, /v1/infer/<prefix>,
// /v1/pfx2as/<addr>, /v1/healthz, /v1/metricsz) on 127.0.0.1:PORT (0 picks
// an ephemeral port, printed at startup). One-shot runs publish their final
// study and serve until SIGINT/SIGTERM (exit 0); composed with --follow,
// every re-finalization atomically publishes a new immutable snapshot
// generation, so queries are served — without torn reads — while the
// stream keeps ingesting. --no-csv (streaming only) skips the CSV
// re-publications when the service is the only consumer.
//
// Crash safety: SIGINT/SIGTERM (and the --deadline-seconds watchdog)
// interrupt the run at the next round boundary, write a checkpoint
// (io/checkpoint.h; default <output_dir>/study.ckpt), flush partial
// metrics, and exit with code 3. --checkpoint-every N additionally
// snapshots every N work items per shard. Re-running with
// --resume-from FILE and the identical study parameters continues the run
// and produces results byte-identical to an uninterrupted one, at any
// --threads value. Every output file is published via tmp + rename, so an
// interrupted run never leaves a half-written CSV, metrics document, or
// checkpoint behind.
// Supervision: --supervise re-runs this binary as a child process under
// src/core/supervise.h: the supervisor restarts a crashed/killed child
// with capped exponential backoff, re-injecting --resume-from whenever a
// durable checkpoint exists, watches liveness via a heartbeat file
// (DYNAMIPS_HEARTBEAT_FILE, refreshed by the child once a second) and
// progress via the checkpoint high-water mark, and gives up with a
// diagnosis naming the last durable checkpoint once --restart-max
// failures land inside --restart-window-seconds with no progress.
//
// Out-of-core and multi-process scale: --spill-mb M bounds the CDN
// analyzer's sort memory — past the budget, sorted runs spill to
// --spill-dir (default: the system temp dir) and are k-way merged, with
// results byte-identical to the in-memory path at every budget.
// --shard i/N (0-based, with exactly one of --atlas-only/--cdn-only)
// analyzes only the i-th contiguous 1/N of the work items and writes a
// completed per-process checkpoint (default
// <output_dir>/study.shard-i-of-N.ckpt) instead of result CSVs; run the N
// shard processes anywhere, then merge with
// --merge-shards F0,F1,...,F(N-1) under the *identical* study parameters:
// the checkpoints are validated (same kind/fingerprint/item count, ranges
// tile the item space), combined, and resumed through the ordered
// reduction, producing CSVs byte-identical to a single-process run.
//
// Resource governance: --max-rss-mb / --min-disk-free-mb arm the
// core/resource.h governor; the stream degrades gracefully under pressure
// (early checkpoints, deferred re-finalizations, keep-last-1 retention,
// quarantine shedding, ingest pauses) without changing final outputs, and
// /v1/readyz reports the governed state (503 + Retry-After while
// degraded) while /v1/healthz stays a pure liveness probe.
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

#include "core/failpoint.h"
#include "core/pipeline.h"
#include "core/resource.h"
#include "core/shutdown.h"
#include "core/supervise.h"
#include "io/atomic_file.h"
#include "lg/server.h"
#include "lg/service.h"
#include "io/checkpoint.h"
#include "io/results_io.h"
#include "obs/metrics.h"
#include "obs/metrics_json.h"
#include "simnet/isp.h"
#include "stats/summary.h"

using namespace dynamips;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [output_dir] [--scale S] [--window HOURS] "
               "[--seed N] [--threads N] [--metrics-out FILE] "
               "[--bench-out FILE] "
               "[--atlas-only|--cdn-only] "
               "[--atlas-in F[,F...]] [--cdn-in F[,F...]] "
               "[--quarantine-out FILE] [--max-reject-fraction R] "
               "[--max-consecutive-rejects N] "
               "[--checkpoint-every N] [--checkpoint-out FILE] "
               "[--resume-from FILE] [--deadline-seconds S] "
               "[--follow DIR] [--refinalize-every N] "
               "[--refinalize-seconds S] [--poll-ms MS] [--max-batches N] "
               "[--io-retries N] [--io-retry-base-ms MS] "
               "[--serve PORT] [--send-timeout-ms MS] [--max-connections N] "
               "[--no-csv] [--failpoints SPEC] "
               "[--spill-mb N] [--spill-dir DIR] "
               "[--shard I/N] [--merge-shards F[,F...]] "
               "[--max-rss-mb N] [--min-disk-free-mb N] "
               "[--max-lag-seconds S] [--max-backlog-batches N] "
               "[--supervise] [--restart-max N] "
               "[--restart-window-seconds S] [--restart-backoff-ms MS] "
               "[--restart-backoff-max-ms MS] [--stall-timeout-seconds S] "
               "[--heartbeat-timeout-seconds S]\n",
               argv0);
}

std::vector<std::string> split_paths(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    if (comma > start) out.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// Write one result CSV via tmp + rename: readers never observe a
/// half-written file, and a crash leaves the previous version intact.
template <typename Fn>
bool write_file(const std::filesystem::path& path, Fn&& writer) {
  io::AtomicFileWriter out(path.string());
  if (!out.ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return false;
  }
  writer(out.stream());
  core::Status st = out.commit();
  if (!st.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.string().c_str(),
                 st.message().c_str());
    return false;
  }
  std::printf("  wrote %s\n", path.string().c_str());
  return true;
}

/// Publish the Atlas study's result CSVs (shared by the one-shot path, the
/// streaming re-finalization callback, and the stream's final write).
bool write_atlas_outputs(const std::filesystem::path& out_dir,
                         const core::AtlasStudy& study) {
  return write_file(out_dir / "fig1_duration_curves.csv",
                    [&](std::ostream& os) {
                      io::write_duration_curves_csv(os, study);
                    }) &&
         write_file(out_dir / "fig5_cpl.csv",
                    [&](std::ostream& os) { io::write_cpl_csv(os, study); }) &&
         write_file(out_dir / "table2_bgp_moves.csv",
                    [&](std::ostream& os) {
                      io::write_bgp_moves_csv(os, study);
                    }) &&
         write_file(out_dir / "fig6_inference.csv", [&](std::ostream& os) {
           io::write_inference_csv(os, study);
         });
}

bool write_cdn_outputs(const std::filesystem::path& out_dir,
                       const core::CdnStudy& study) {
  return write_file(out_dir / "fig23_assoc_durations.csv",
                    [&](std::ostream& os) {
                      io::write_assoc_durations_csv(os, study);
                    }) &&
         write_file(out_dir / "fig4_degrees.csv",
                    [&](std::ostream& os) {
                      io::write_degrees_csv(os, study);
                    }) &&
         write_file(out_dir / "fig7_zero_boundaries.csv",
                    [&](std::ostream& os) {
                      io::write_zero_boundaries_csv(os, study);
                    });
}

/// Remove output files a failed study may have left from a previous run, so
/// a nonzero exit never pairs with stale-but-plausible results.
void remove_stale_outputs(const std::filesystem::path& out_dir,
                          std::initializer_list<const char*> names) {
  for (const char* name : names) {
    std::error_code ec;
    if (std::filesystem::remove(out_dir / name, ec))
      std::fprintf(stderr, "  removed stale %s\n",
                   (out_dir / name).string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path out_dir = "dynamips_results";
  double scale = 0.3;
  std::uint64_t window = 30000, seed = 1;
  unsigned threads = 0;  // 0 = hardware_concurrency
  bool atlas = true, cdn = true;
  std::string metrics_out, bench_out;
  std::string atlas_in, cdn_in, quarantine_out;
  std::string checkpoint_out, resume_from;
  std::uint64_t checkpoint_every = 0;
  double deadline_seconds = 0;
  std::string follow_dir;
  std::uint64_t refinalize_every = 8, poll_ms = 200, max_batches = 0;
  double refinalize_seconds = 0;
  bool serve = false, no_csv = false;
  std::uint64_t serve_port = 0;
  std::uint64_t io_retries = 3, io_retry_base_ms = 20;
  std::uint64_t send_timeout_ms = 5000, max_connections = 0;
  std::string failpoints_spec;
  bool failpoints_flag = false;
  io::ReaderOptions reader_opts;
  std::uint64_t spill_mb = 0;
  std::string spill_dir;
  std::string shard_spec, merge_shards;
  std::uint32_t shard_index = 0, shard_count = 1;
  std::uint64_t max_rss_mb = 0, min_disk_free_mb = 0;
  double max_lag_seconds = 0;
  std::uint64_t max_backlog_batches = 64;
  bool supervise_flag = false;
  std::uint64_t restart_max = 5;
  double restart_window_seconds = 60;
  std::uint64_t restart_backoff_ms = 500, restart_backoff_max_ms = 30000;
  double stall_timeout_seconds = 0, heartbeat_timeout_seconds = 60;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--window") {
      window = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = unsigned(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--bench-out") {
      bench_out = next();
    } else if (arg == "--atlas-in") {
      atlas_in = next();
    } else if (arg == "--cdn-in") {
      cdn_in = next();
    } else if (arg == "--quarantine-out") {
      quarantine_out = next();
    } else if (arg == "--max-reject-fraction") {
      reader_opts.max_reject_fraction = std::atof(next());
    } else if (arg == "--max-consecutive-rejects") {
      reader_opts.max_consecutive_rejects =
          std::strtoull(next(), nullptr, 10);
    } else if (arg == "--checkpoint-every") {
      checkpoint_every = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--checkpoint-out") {
      checkpoint_out = next();
    } else if (arg == "--resume-from") {
      resume_from = next();
    } else if (arg == "--deadline-seconds") {
      deadline_seconds = std::atof(next());
    } else if (arg == "--follow") {
      follow_dir = next();
    } else if (arg == "--refinalize-every") {
      refinalize_every = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--refinalize-seconds") {
      refinalize_seconds = std::atof(next());
    } else if (arg == "--poll-ms") {
      poll_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-batches") {
      max_batches = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--io-retries") {
      io_retries = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--io-retry-base-ms") {
      io_retry_base_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--send-timeout-ms") {
      send_timeout_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-connections") {
      max_connections = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--failpoints") {
      failpoints_spec = next();
      failpoints_flag = true;
    } else if (arg == "--spill-mb") {
      spill_mb = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--spill-dir") {
      spill_dir = next();
    } else if (arg == "--shard") {
      shard_spec = next();
    } else if (arg == "--merge-shards") {
      merge_shards = next();
    } else if (arg == "--max-rss-mb") {
      max_rss_mb = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--min-disk-free-mb") {
      min_disk_free_mb = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-lag-seconds") {
      max_lag_seconds = std::atof(next());
    } else if (arg == "--max-backlog-batches") {
      max_backlog_batches = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--supervise") {
      supervise_flag = true;
    } else if (arg == "--restart-max") {
      restart_max = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--restart-window-seconds") {
      restart_window_seconds = std::atof(next());
    } else if (arg == "--restart-backoff-ms") {
      restart_backoff_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--restart-backoff-max-ms") {
      restart_backoff_max_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--stall-timeout-seconds") {
      stall_timeout_seconds = std::atof(next());
    } else if (arg == "--heartbeat-timeout-seconds") {
      heartbeat_timeout_seconds = std::atof(next());
    } else if (arg == "--serve") {
      serve = true;
      serve_port = std::strtoull(next(), nullptr, 10);
      if (serve_port > 65535) {
        std::fprintf(stderr, "--serve: port out of range\n");
        return 2;
      }
    } else if (arg == "--no-csv") {
      no_csv = true;
    } else if (arg == "--atlas-only") {
      cdn = false;
    } else if (arg == "--cdn-only") {
      atlas = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
      return 2;
    } else {
      out_dir = arg;
    }
  }

  if (!follow_dir.empty()) {
    if (atlas == cdn) {
      std::fprintf(stderr,
                   "--follow requires exactly one of --atlas-only or "
                   "--cdn-only (a stream carries one batch schema)\n");
      return 2;
    }
    if (!atlas_in.empty() || !cdn_in.empty()) {
      std::fprintf(stderr,
                   "--follow and --atlas-in/--cdn-in are mutually "
                   "exclusive\n");
      return 2;
    }
  }
  if (no_csv && follow_dir.empty()) {
    std::fprintf(stderr,
                 "--no-csv only applies to streaming runs (--follow); "
                 "one-shot runs exist to write CSVs\n");
    return 2;
  }

  // Multi-process sharding: parse "--shard I/N" and reject the modes a
  // partial run cannot compose with.
  if (!shard_spec.empty()) {
    std::size_t slash = shard_spec.find('/');
    char* endp = nullptr;
    unsigned long i_val =
        slash == std::string::npos
            ? ULONG_MAX
            : std::strtoul(shard_spec.c_str(), &endp, 10);
    unsigned long n_val =
        slash == std::string::npos
            ? 0
            : std::strtoul(shard_spec.c_str() + slash + 1, nullptr, 10);
    if (slash == std::string::npos || endp != shard_spec.c_str() + slash ||
        n_val == 0 || i_val >= n_val || n_val > 4096) {
      std::fprintf(stderr,
                   "--shard expects I/N with 0 <= I < N (e.g. --shard 0/4), "
                   "got '%s'\n",
                   shard_spec.c_str());
      return 2;
    }
    shard_index = std::uint32_t(i_val);
    shard_count = std::uint32_t(n_val);
    if (atlas == cdn) {
      std::fprintf(stderr,
                   "--shard requires exactly one of --atlas-only or "
                   "--cdn-only (one checkpoint kind per shard file)\n");
      return 2;
    }
    if (!follow_dir.empty() || serve || supervise_flag ||
        !resume_from.empty() || !merge_shards.empty()) {
      std::fprintf(stderr,
                   "--shard is a batch mode: it cannot combine with "
                   "--follow, --serve, --supervise, --resume-from or "
                   "--merge-shards\n");
      return 2;
    }
  }
  if (!merge_shards.empty() &&
      (!follow_dir.empty() || !resume_from.empty())) {
    std::fprintf(stderr,
                 "--merge-shards cannot combine with --follow or "
                 "--resume-from\n");
    return 2;
  }
  const bool sharding = shard_count > 1;

  // Chaos arming: the env var first, then --failpoints (the flag wins when
  // both are given). Disarmed, every instrumented site is one relaxed
  // atomic load.
  if (core::Status st = core::arm_failpoints_from_env(); !st.ok()) {
    std::fprintf(stderr, "DYNAMIPS_FAILPOINTS: %s\n", st.to_string().c_str());
    return 2;
  }
  if (failpoints_flag) {
    if (core::Status st = core::arm_failpoints(failpoints_spec); !st.ok()) {
      std::fprintf(stderr, "--failpoints: %s\n", st.to_string().c_str());
      return 2;
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.string().c_str(),
                 ec.message().c_str());
    return 1;
  }
  if (!spill_dir.empty()) {
    std::filesystem::create_directories(spill_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --spill-dir %s: %s\n",
                   spill_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }

  const unsigned effective = core::resolve_threads(threads);
  // The looking-glass serves /v1/metricsz from the registry, so --serve
  // enables it even without --metrics-out (the file is still only written
  // when asked for).
  obs::MetricsRegistry* registry = (metrics_out.empty() && !serve)
                                       ? nullptr
                                       : &obs::MetricsRegistry::global();
  obs::MetricsMeta run_meta;
  run_meta.binary = "dynamips_study";
  run_meta.scale = scale;
  run_meta.seed = seed;
  run_meta.window_hours = window;
  run_meta.threads = effective;

  // Graceful shutdown: SIGINT/SIGTERM (and the optional deadline) set a
  // token the studies poll at round boundaries.
  core::install_shutdown_handlers();
  core::ShutdownToken& token = core::global_shutdown_token();
  if (checkpoint_out.empty())
    checkpoint_out =
        sharding ? (out_dir / ("study.shard-" + std::to_string(shard_index) +
                               "-of-" + std::to_string(shard_count) + ".ckpt"))
                       .string()
                 : (out_dir / "study.ckpt").string();

  // Supervisor mode: re-run this binary as a child (minus the
  // supervisor-only flags) and keep it alive — restart with capped
  // exponential backoff, re-inject --resume-from whenever a durable
  // checkpoint exists, kill a hung/stalled child, give up on a crash loop.
  if (supervise_flag) {
    std::vector<std::string> child_argv;
#ifdef __unix__
    char exe[4096];
    ssize_t n = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
    child_argv.push_back(n > 0 ? std::string(exe, std::size_t(n))
                               : std::string(argv[0]));
#else
    child_argv.push_back(argv[0]);
#endif
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--supervise") continue;
      if (arg == "--resume-from" || arg == "--restart-max" ||
          arg == "--restart-window-seconds" ||
          arg == "--restart-backoff-ms" ||
          arg == "--restart-backoff-max-ms" ||
          arg == "--stall-timeout-seconds" ||
          arg == "--heartbeat-timeout-seconds") {
        ++i;  // drop the flag's value too
        continue;
      }
      child_argv.push_back(arg);
    }
    // Children inherit the heartbeat path (and any DYNAMIPS_FAILPOINTS
    // already in our environment) by plain env inheritance.
    const std::string heartbeat_path = (out_dir / ".heartbeat").string();
#ifdef __unix__
    ::setenv("DYNAMIPS_HEARTBEAT_FILE", heartbeat_path.c_str(), 1);
#endif

    core::SuperviseConfig scfg;
    scfg.backoff_base_ms = restart_backoff_ms;
    scfg.backoff_max_ms = restart_backoff_max_ms;
    scfg.crash_loop_failures = restart_max;
    scfg.crash_loop_window_ms =
        std::uint64_t(restart_window_seconds * 1000.0);
    scfg.stall_timeout_ms = std::uint64_t(stall_timeout_seconds * 1000.0);
    scfg.heartbeat_timeout_ms =
        std::uint64_t(heartbeat_timeout_seconds * 1000.0);

    core::ProcessChild child(child_argv);
    core::SuperviseHooks hooks;
    hooks.stop = [&token] { return token.requested(); };
    hooks.sleep_ms = [&token](std::uint64_t ms) {
      core::interruptible_sleep_ms(ms, &token);
    };
    hooks.resume_path = [&]() -> std::string {
      std::error_code rec;
      if (std::filesystem::exists(checkpoint_out, rec) ||
          std::filesystem::exists(checkpoint_out + ".prev", rec))
        return checkpoint_out;  // with_fallback reads .prev when needed
      if (!resume_from.empty() &&
          std::filesystem::exists(resume_from, rec))
        return resume_from;
      return "";
    };
    hooks.progress = [&] {
      return core::file_progress_token(checkpoint_out);
    };
    hooks.heartbeat_age_ms = [&] {
      return core::file_age_ms(heartbeat_path);
    };
    hooks.describe_checkpoint = [&]() -> std::string {
      std::string used;
      auto ck = io::read_checkpoint_with_fallback(checkpoint_out, &used);
      if (!ck.ok())
        return "no durable checkpoint yet; the next launch starts fresh";
      return "last durable checkpoint: " + used + " (" +
             io::checkpoint_kind_name(ck.value().kind) + ", " +
             std::to_string(ck.value().items_done()) + " of " +
             std::to_string(ck.value().item_count) + " items)";
    };
    hooks.metrics = &obs::MetricsRegistry::global();
    hooks.log = [&child](const std::string& line) {
      std::fprintf(stderr, "supervise[child pid %ld]: %s\n", child.pid(),
                   line.c_str());
      std::fflush(stderr);
    };

    core::SuperviseReport rep = core::supervise(child, scfg, hooks);
    std::fprintf(stderr,
                 "supervise: exiting %d (%llu launches, %llu restarts, "
                 "%llu stall kills)%s%s\n",
                 rep.exit_code, (unsigned long long)rep.launches,
                 (unsigned long long)rep.restarts,
                 (unsigned long long)rep.stall_kills,
                 rep.diagnosis.empty() ? "" : ": ",
                 rep.diagnosis.c_str());
    return rep.exit_code;
  }

  if (deadline_seconds > 0) token.arm_deadline_seconds(deadline_seconds);

  // Child side of supervision: refresh the heartbeat file once a second so
  // the supervisor can tell "hung" from "slow", and fold the supervision
  // history it forwards through the environment into our registry so
  // /v1/metricsz shows launches/restarts mid-run.
  core::Heartbeat heartbeat;
  if (const char* hb = std::getenv("DYNAMIPS_HEARTBEAT_FILE"); hb && *hb)
    heartbeat.start(hb);
  if (registry) {
    if (const char* v = std::getenv("DYNAMIPS_SUPERVISE_LAUNCHES"); v && *v)
      registry->add_counter("supervise.launches",
                            std::strtoull(v, nullptr, 10));
    if (const char* v = std::getenv("DYNAMIPS_SUPERVISE_RESTARTS"); v && *v)
      registry->add_counter("supervise.restarts",
                            std::strtoull(v, nullptr, 10));
  }

  // Resource governor: budgets from the flags (0 = unlimited), probing the
  // output and checkpoint filesystems. Always constructed — with no
  // budgets it never reports pressure, but /v1/readyz still reports the
  // sampled state.
  core::ResourceBudgets budgets;
  budgets.max_rss_mb = max_rss_mb;
  budgets.min_disk_free_mb = min_disk_free_mb;
  budgets.disk_paths.push_back(out_dir.string());
  {
    std::filesystem::path ckpt_dir =
        std::filesystem::path(checkpoint_out).parent_path();
    if (!ckpt_dir.empty() && ckpt_dir != out_dir)
      budgets.disk_paths.push_back(ckpt_dir.string());
  }
  budgets.metrics = registry;
  core::ResourceGovernor governor(budgets);

  // Looking-glass: start serving before the studies run so /v1/healthz
  // answers during a long stream; snapshots are published as they finalize.
  lg::ServiceConfig service_cfg;
  service_cfg.metrics = registry;
  service_cfg.meta = run_meta;
  service_cfg.governor = &governor;
  lg::LgService service(service_cfg);
  std::optional<lg::LgServer> server;
  if (serve) {
    lg::ServerConfig server_cfg;
    server_cfg.port = std::uint16_t(serve_port);
    server_cfg.token = &token;
    server_cfg.metrics = registry;
    server_cfg.send_timeout_ms = send_timeout_ms;
    server_cfg.max_connections = max_connections;
    server.emplace(service, server_cfg);
    core::Status st = server->start();
    if (!st.ok()) {
      std::fprintf(stderr, "cannot start looking-glass: %s\n",
                   st.to_string().c_str());
      return 1;
    }
    std::printf("looking-glass serving on http://127.0.0.1:%u/v1/healthz\n",
                unsigned(server->port()));
    std::fflush(stdout);
  }

  // Resolve the resume checkpoint up front (with .prev fallback) and route
  // it to the study that wrote it. A cdn-kind checkpoint means the atlas
  // study already completed in the interrupted run — its CSVs are durable
  // (atomic writes), so it is skipped entirely.
  std::optional<io::StudyCheckpoint> resume;
  const io::StudyCheckpoint* atlas_resume = nullptr;
  const io::StudyCheckpoint* cdn_resume = nullptr;
  if (!resume_from.empty()) {
    std::string used_path;
    auto loaded = io::read_checkpoint_with_fallback(resume_from, &used_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot resume: %s\n",
                   loaded.status().to_string().c_str());
      return 1;
    }
    resume = loaded.take();
    std::printf("resuming from %s (%s, %llu of %llu items done)\n",
                used_path.c_str(), io::checkpoint_kind_name(resume->kind),
                (unsigned long long)resume->items_done(),
                (unsigned long long)resume->item_count);
    if (io::is_stream_checkpoint_kind(resume->kind) != !follow_dir.empty()) {
      std::fprintf(stderr,
                   io::is_stream_checkpoint_kind(resume->kind)
                       ? "cannot resume: checkpoint is from a streaming run; "
                         "re-run with --follow\n"
                       : "cannot resume: checkpoint is from a one-shot run, "
                         "not a stream; drop --follow\n");
      return 1;
    }
    if (io::is_atlas_checkpoint_kind(resume->kind)) {
      if (!atlas) {
        std::fprintf(stderr,
                     "cannot resume: checkpoint is for the atlas study but "
                     "--cdn-only was given\n");
        return 1;
      }
      atlas_resume = &*resume;
    } else {
      if (!cdn) {
        std::fprintf(stderr,
                     "cannot resume: checkpoint is for the cdn study but "
                     "--atlas-only was given\n");
        return 1;
      }
      cdn_resume = &*resume;
      atlas = false;  // completed before the interrupt
    }
  }

  // Shard merge: combine the completed per-process checkpoints into one
  // resumable checkpoint and run the normal study path against it. Every
  // item is already done, so dispatch finds no work and the ordered
  // reduction + finalize produce CSVs byte-identical to a single-process
  // run — provided the study parameters (inputs, scale, seed, ...) match
  // the shard runs, which the config fingerprint enforces.
  if (!merge_shards.empty()) {
    auto combined = io::combine_shard_checkpoints(split_paths(merge_shards));
    if (!combined.ok()) {
      std::fprintf(stderr, "cannot merge shards: %s\n",
                   combined.status().to_string().c_str());
      return 1;
    }
    resume = combined.take();
    std::printf("merging shard checkpoints (%s, %llu items, %zu shards)\n",
                io::checkpoint_kind_name(resume->kind),
                (unsigned long long)resume->item_count,
                resume->shards.size());
    if (io::is_atlas_checkpoint_kind(resume->kind)) {
      if (!atlas) {
        std::fprintf(stderr,
                     "cannot merge: shard checkpoints are for the atlas "
                     "study but --cdn-only was given\n");
        return 1;
      }
      atlas_resume = &*resume;
      cdn = false;  // the shard runs were atlas-only by construction
    } else {
      if (!cdn) {
        std::fprintf(stderr,
                     "cannot merge: shard checkpoints are for the cdn "
                     "study but --atlas-only was given\n");
        return 1;
      }
      cdn_resume = &*resume;
      atlas = false;
    }
  }

  // Quarantined lines are published even when ingestion fails — that is
  // when they matter — but never as a half-written file.
  std::optional<io::AtomicFileWriter> quarantine;
  if (!quarantine_out.empty()) {
    quarantine.emplace(quarantine_out);
    if (!quarantine->ok()) {
      std::fprintf(stderr, "cannot open quarantine file %s\n",
                   quarantine_out.c_str());
      return 1;
    }
    reader_opts.quarantine = &quarantine->stream();
  }

  // Throughput accounting for --bench-out (filled by run_studies). The
  // ingest figures are file-driven only: records accepted and wall time
  // inside the load phase, the number the columnar format exists to move.
  std::uint64_t atlas_probes = 0, cdn_tuples = 0;
  double atlas_secs = 0, cdn_secs = 0;
  std::uint64_t atlas_ingest_records = 0, cdn_ingest_records = 0;
  double atlas_ingest_secs = 0, cdn_ingest_secs = 0;

  auto run_studies = [&]() -> int {
    if (atlas) {
      core::CheckpointConfig supervision;
      supervision.every_items = checkpoint_every;
      supervision.path = checkpoint_out;
      supervision.token = &token;
      supervision.resume = atlas_resume;
      supervision.shard_index = shard_index;
      supervision.shard_count = shard_count;

      core::AtlasStudy study;
      auto t0 = std::chrono::steady_clock::now();
      core::Expected<core::AtlasStudy> result{core::Status(
          core::StatusCode::kInternal, "atlas study did not run")};
      if (!atlas_in.empty()) {
        std::printf("Atlas study from %s (%u shards)...\n", atlas_in.c_str(),
                    effective);
        core::AtlasFileStudyConfig cfg;
        cfg.threads = threads;
        cfg.metrics = registry;
        cfg.reader = reader_opts;
        io::IngestStats stats;
        result = core::run_atlas_study_from_files(
            split_paths(atlas_in), simnet::paper_isps(), cfg, &stats,
            supervision);
        std::printf("  ingested %s\n", stats.summary().c_str());
        atlas_ingest_records = stats.records_accepted;
        atlas_ingest_secs = double(stats.load_wall_ns) * 1e-9;
      } else {
        std::printf("Atlas study (scale %.2f, window %llu h, seed %llu, "
                    "%u shards)...\n",
                    scale, (unsigned long long)window,
                    (unsigned long long)seed, effective);
        core::AtlasStudyConfig cfg;
        cfg.atlas.probe_scale = scale;
        cfg.atlas.window_hours = window;
        cfg.atlas.seed = seed;
        cfg.threads = threads;
        cfg.metrics = registry;
        result =
            core::run_atlas_study_supervised(simnet::paper_isps(), cfg,
                                             supervision);
      }
      if (!result.ok()) {
        if (result.status().code() == core::StatusCode::kCancelled) {
          std::fprintf(stderr, "%s\n  resume with --resume-from %s\n",
                       result.status().to_string().c_str(),
                       checkpoint_out.c_str());
          return 3;
        }
        std::fprintf(stderr, "atlas study failed: %s\n",
                     result.status().to_string().c_str());
        remove_stale_outputs(out_dir,
                             {"fig1_duration_curves.csv", "fig5_cpl.csv",
                              "table2_bgp_moves.csv", "fig6_inference.csv"});
        return 1;
      }
      study = result.take();
      double secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
      if (registry)
        registry->record_phase("study.atlas_wall", std::uint64_t(secs * 1e9));
      atlas_probes = study.sanitize.probes_seen;
      atlas_secs = secs;
      std::printf("  analyzed %llu probes in %.2fs\n",
                  (unsigned long long)study.sanitize.probes_seen, secs);
      if (sharding) {
        std::printf("  shard %u/%u complete; merge with --merge-shards %s\n",
                    shard_index, shard_count, checkpoint_out.c_str());
      } else {
        if (serve)
          service.publish_atlas(
              lg::build_atlas_snapshot(study, 1, 0, atlas_probes));
        if (!write_atlas_outputs(out_dir, study)) return 1;
      }
    }

    if (cdn) {
      core::CheckpointConfig supervision;
      supervision.every_items = checkpoint_every;
      supervision.path = checkpoint_out;
      supervision.token = &token;
      supervision.resume = cdn_resume;
      supervision.shard_index = shard_index;
      supervision.shard_count = shard_count;

      core::CdnStudy study;
      auto t0 = std::chrono::steady_clock::now();
      core::Expected<core::CdnStudy> result{core::Status(
          core::StatusCode::kInternal, "cdn study did not run")};
      if (!cdn_in.empty()) {
        std::printf("CDN study from %s (%u shards)...\n", cdn_in.c_str(),
                    effective);
        core::CdnFileStudyConfig cfg;
        cfg.threads = threads;
        cfg.metrics = registry;
        cfg.reader = reader_opts;
        cfg.assoc.spill_mb = spill_mb;
        cfg.assoc.spill_dir = spill_dir;
        // The CSV schema carries no access-type/registry ground truth; take
        // the attribution of the known population profiles (ASNs absent from
        // it analyze as fixed-line RIPE).
        for (const auto& entry : cdn::default_cdn_population()) {
          if (entry.isp.mobile) cfg.mobile_asns.insert(entry.isp.asn);
          cfg.registries[entry.isp.asn] = entry.isp.registry;
          cfg.asn_names[entry.isp.asn] = entry.isp.name;
        }
        io::IngestStats stats;
        result = core::run_cdn_study_from_files(split_paths(cdn_in), cfg,
                                                &stats, supervision);
        std::printf("  ingested %s\n", stats.summary().c_str());
        cdn_ingest_records = stats.records_accepted;
        cdn_ingest_secs = double(stats.load_wall_ns) * 1e-9;
      } else {
        std::printf("CDN study (scale %.2f, seed %llu, %u shards)...\n",
                    scale, (unsigned long long)seed, effective);
        core::CdnStudyConfig cfg;
        cfg.cdn.subscriber_scale = scale;
        cfg.cdn.seed = seed * 977;
        cfg.threads = threads;
        cfg.metrics = registry;
        cfg.assoc.spill_mb = spill_mb;
        cfg.assoc.spill_dir = spill_dir;
        result = core::run_cdn_study_supervised(
            cdn::default_cdn_population(scale), cfg, supervision);
      }
      if (!result.ok()) {
        if (result.status().code() == core::StatusCode::kCancelled) {
          std::fprintf(stderr, "%s\n  resume with --resume-from %s\n",
                       result.status().to_string().c_str(),
                       checkpoint_out.c_str());
          return 3;
        }
        std::fprintf(stderr, "cdn study failed: %s\n",
                     result.status().to_string().c_str());
        remove_stale_outputs(out_dir,
                             {"fig23_assoc_durations.csv", "fig4_degrees.csv",
                              "fig7_zero_boundaries.csv"});
        return 1;
      }
      study = result.take();
      double secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
      if (registry)
        registry->record_phase("study.cdn_wall", std::uint64_t(secs * 1e9));
      cdn_tuples =
          study.analyzer.total_tuples() + study.analyzer.total_mismatched();
      cdn_secs = secs;
      std::printf("  analyzed %llu tuples in %.2fs\n",
                  (unsigned long long)(study.analyzer.total_tuples() +
                                       study.analyzer.total_mismatched()),
                  secs);
      if (sharding) {
        std::printf("  shard %u/%u complete; merge with --merge-shards %s\n",
                    shard_index, shard_count, checkpoint_out.c_str());
      } else {
        if (serve)
          service.publish_cdn(
              lg::build_cdn_snapshot(study, 1, 0, cdn_tuples));
        if (!write_cdn_outputs(out_dir, study)) return 1;
      }
    }
    return 0;
  };

  // Streaming mode: follow a watch directory, re-publishing the result CSVs
  // on every windowed re-finalization and once more (with metrics recorded)
  // when the stop sentinel arrives.
  auto run_follow = [&]() -> int {
    core::StreamConfig stream;
    stream.refinalize_every_batches = refinalize_every;
    stream.refinalize_seconds = refinalize_seconds;
    stream.poll_ms = poll_ms;
    stream.max_batches = max_batches;
    stream.checkpoint_path = checkpoint_out;
    stream.token = &token;
    stream.resume = resume ? &*resume : nullptr;
    stream.io_retry_attempts = io_retries;
    stream.io_retry_base_ms = io_retry_base_ms;
    stream.io_retry_seed = seed;
    stream.governor = &governor;
    stream.max_lag_seconds = max_lag_seconds;
    stream.max_backlog_batches = max_backlog_batches;

    core::StreamStats sstats;
    io::IngestStats istats;
    auto report = [&](const core::Status& st,
                      std::initializer_list<const char*> outputs) -> int {
      if (st.code() == core::StatusCode::kCancelled) {
        std::fprintf(stderr, "%s\n  resume with --resume-from %s\n",
                     st.to_string().c_str(), checkpoint_out.c_str());
        return 3;
      }
      std::fprintf(stderr, "stream failed: %s\n", st.to_string().c_str());
      remove_stale_outputs(out_dir, outputs);
      return 1;
    };

    if (atlas) {
      std::printf("Following %s for echo batches (%u shards)...\n",
                  follow_dir.c_str(), effective);
      core::AtlasFileStudyConfig cfg;
      cfg.threads = threads;
      cfg.metrics = registry;
      cfg.reader = reader_opts;
      auto t0 = std::chrono::steady_clock::now();
      auto result = core::run_atlas_stream(
          follow_dir, simnet::paper_isps(), cfg, stream,
          [&](const core::AtlasStudy& snap, const core::StreamStats& st) {
            std::printf("[stream] refinalize #%llu: %llu batches, "
                        "%llu records\n",
                        (unsigned long long)st.refinalizes,
                        (unsigned long long)st.batches,
                        (unsigned long long)st.records);
            if (serve)
              service.publish_atlas(lg::build_atlas_snapshot(
                  snap, st.refinalizes, st.batches, st.records));
            if (!no_csv) write_atlas_outputs(out_dir, snap);
          },
          &istats, &sstats);
      if (!result.ok())
        return report(result.status(),
                      {"fig1_duration_curves.csv", "fig5_cpl.csv",
                       "table2_bgp_moves.csv", "fig6_inference.csv"});
      core::AtlasStudy study = result.take();
      double secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
      if (registry)
        registry->record_phase("study.atlas_wall", std::uint64_t(secs * 1e9));
      atlas_probes = study.sanitize.probes_seen;
      atlas_secs = secs;
      std::printf("  stream done: %llu batches, %llu records, "
                  "%llu refinalizes; ingested %s\n",
                  (unsigned long long)sstats.batches,
                  (unsigned long long)sstats.records,
                  (unsigned long long)sstats.refinalizes,
                  istats.summary().c_str());
      // The final re-finalization does not fire on_snapshot; publish the
      // completed study as its own generation.
      if (serve)
        service.publish_atlas(lg::build_atlas_snapshot(
            study, sstats.refinalizes + 1, sstats.batches, sstats.records));
      if (!no_csv && !write_atlas_outputs(out_dir, study)) return 1;
      return 0;
    }

    std::printf("Following %s for association batches (%u shards)...\n",
                follow_dir.c_str(), effective);
    core::CdnFileStudyConfig cfg;
    cfg.threads = threads;
    cfg.metrics = registry;
    cfg.reader = reader_opts;
    for (const auto& entry : cdn::default_cdn_population()) {
      if (entry.isp.mobile) cfg.mobile_asns.insert(entry.isp.asn);
      cfg.registries[entry.isp.asn] = entry.isp.registry;
      cfg.asn_names[entry.isp.asn] = entry.isp.name;
    }
    auto t0 = std::chrono::steady_clock::now();
    auto result = core::run_cdn_stream(
        follow_dir, cfg, stream,
        [&](const core::CdnStudy& snap, const core::StreamStats& st) {
          std::printf("[stream] refinalize #%llu: %llu batches, "
                      "%llu records\n",
                      (unsigned long long)st.refinalizes,
                      (unsigned long long)st.batches,
                      (unsigned long long)st.records);
          if (serve)
            service.publish_cdn(lg::build_cdn_snapshot(
                snap, st.refinalizes, st.batches, st.records));
          if (!no_csv) write_cdn_outputs(out_dir, snap);
        },
        &istats, &sstats);
    if (!result.ok())
      return report(result.status(),
                    {"fig23_assoc_durations.csv", "fig4_degrees.csv",
                     "fig7_zero_boundaries.csv"});
    core::CdnStudy study = result.take();
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    if (registry)
      registry->record_phase("study.cdn_wall", std::uint64_t(secs * 1e9));
    cdn_tuples =
        study.analyzer.total_tuples() + study.analyzer.total_mismatched();
    cdn_secs = secs;
    std::printf("  stream done: %llu batches, %llu records, "
                "%llu refinalizes; ingested %s\n",
                (unsigned long long)sstats.batches,
                (unsigned long long)sstats.records,
                (unsigned long long)sstats.refinalizes,
                istats.summary().c_str());
    if (serve)
      service.publish_cdn(lg::build_cdn_snapshot(
          study, sstats.refinalizes + 1, sstats.batches, sstats.records));
    if (!no_csv && !write_cdn_outputs(out_dir, study)) return 1;
    return 0;
  };

  int rc = follow_dir.empty() ? run_studies() : run_follow();

  // Keep serving the last published snapshots after a successful run until
  // the operator stops us; either way the server drains before metrics are
  // written so lg.* counters land in the document.
  if (server) {
    if (rc == 0 && !token.requested()) {
      std::printf("studies complete; looking-glass still serving "
                  "(SIGINT/SIGTERM to stop)\n");
      std::fflush(stdout);
      server->serve_until_shutdown();
    } else {
      server->stop();
    }
    lg::ServerStats lstats = server->stats();
    std::printf("  served %llu requests on %llu connections\n",
                (unsigned long long)lstats.requests,
                (unsigned long long)lstats.connections);
  }

  if (quarantine) {
    core::Status st = quarantine->commit();
    if (!st.ok()) {
      std::fprintf(stderr, "cannot write quarantine file: %s\n",
                   st.message().c_str());
      if (rc == 0) rc = 1;
    } else {
      std::printf("  wrote %s\n", quarantine_out.c_str());
    }
  }

  // Metrics are written on every exit path: an interrupted run reports its
  // partial counters (the checkpoint snapshot excludes them, so a resumed
  // run never double-counts).
  if (registry && !metrics_out.empty()) {
    registry->add_counter("stats.nan_dropped", stats::nan_dropped());
    registry->set_gauge("process.peak_rss_bytes",
                        double(obs::peak_rss_bytes()));
    if (!obs::write_metrics_json(metrics_out, registry->snapshot(),
                                 run_meta)) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   metrics_out.c_str());
      if (rc == 0) rc = 1;
    } else {
      std::printf("  wrote %s\n", metrics_out.c_str());
    }
  }

  // Throughput document for tools/check_bench.py. Success only: a
  // cancelled or failed run's wall time measures nothing.
  if (rc == 0 && !bench_out.empty()) {
    io::AtomicFileWriter bench(bench_out);
    if (!bench.ok()) {
      std::fprintf(stderr, "cannot write %s\n", bench_out.c_str());
      rc = 1;
    } else {
      double total_secs = atlas_secs + cdn_secs;
      std::uint64_t total_records = atlas_probes + cdn_tuples;
      auto rate = [](double n, double secs) { return secs > 0 ? n / secs : 0; };
      auto& os = bench.stream();
      char buf[2048];
      std::snprintf(
          buf, sizeof buf,
          "{\n"
          "  \"schema\": \"dynamips.bench.v1\",\n"
          "  \"meta\": {\"binary\": \"dynamips_study\", \"scale\": %g, "
          "\"seed\": %llu, \"window_hours\": %llu, \"threads\": %u},\n"
          "  \"counts\": {\"atlas_probes\": %llu, \"cdn_tuples\": %llu, "
          "\"nan_dropped\": %llu},\n"
          "  \"wall_s\": {\"atlas\": %.3f, \"cdn\": %.3f, \"total\": %.3f, "
          "\"atlas_ingest\": %.3f, \"cdn_ingest\": %.3f},\n"
          "  \"metrics\": {\n"
          "    \"atlas_probes_per_sec\": %.1f,\n"
          "    \"cdn_tuples_per_sec\": %.1f,\n"
          "    \"records_per_sec\": %.1f,\n"
          "    \"atlas_ingest_records_per_sec\": %.1f,\n"
          "    \"cdn_ingest_tuples_per_sec\": %.1f\n"
          "  }\n"
          "}\n",
          scale, (unsigned long long)seed, (unsigned long long)window,
          effective, (unsigned long long)atlas_probes,
          (unsigned long long)cdn_tuples,
          (unsigned long long)stats::nan_dropped(), atlas_secs, cdn_secs,
          total_secs, atlas_ingest_secs, cdn_ingest_secs,
          rate(double(atlas_probes), atlas_secs),
          rate(double(cdn_tuples), cdn_secs),
          rate(double(total_records), total_secs),
          rate(double(atlas_ingest_records), atlas_ingest_secs),
          rate(double(cdn_ingest_records), cdn_ingest_secs));
      os << buf;
      core::Status st = bench.commit();
      if (!st.ok()) {
        std::fprintf(stderr, "cannot write %s: %s\n", bench_out.c_str(),
                     st.message().c_str());
        rc = 1;
      } else {
        std::printf("  wrote %s\n", bench_out.c_str());
      }
    }
  }

  if (core::failpoints_armed())
    std::fprintf(stderr, "failpoints: %s\n",
                 core::failpoint_report().c_str());

  if (rc == 0) {
    if (sharding) {
      // The shard checkpoint IS the run's product — keep it (and its
      // `.prev`/`.tmp` siblings are already gone via atomic publish).
      std::printf("done (shard %u/%u).\n", shard_index, shard_count);
    } else {
      // The run is fully durable; retire the checkpoint chain, including
      // the per-process shard checkpoints a merge run consumed.
      io::remove_checkpoint_files(checkpoint_out);
      if (!resume_from.empty() && resume_from != checkpoint_out)
        io::remove_checkpoint_files(resume_from);
      for (const std::string& shard_path : split_paths(merge_shards))
        if (shard_path != checkpoint_out)
          io::remove_checkpoint_files(shard_path);
      std::printf("done.\n");
    }
  }
  return rc;
}
