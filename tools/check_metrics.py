#!/usr/bin/env python3
"""Diff a DynamIPs metrics JSON document against a checked-in baseline.

Usage:
  check_metrics.py CANDIDATE BASELINE [--verbose]
  check_metrics.py CANDIDATE BASELINE --update-baseline
  check_metrics.py CANDIDATE --require-counters=PAT[,PAT...]
  check_metrics.py CANDIDATE --compare-to=REF [--ignore-counters=PAT,...]
      [--ignore-gauges=PAT,...]

The candidate is a document written by `--metrics-out` (schema
"dynamips.metrics.v1", see src/obs/metrics_json.h). The baseline is a
subset contract: every counter / histogram total it lists must be present
in the candidate and match. Comparison rules:

  * schema strings must match exactly;
  * when candidate and baseline were produced at the same (scale, seed,
    window_hours), counters must match EXACTLY — counters are
    thread-invariant and deterministic, so CI gates them byte-for-byte;
  * when the run parameters differ, expected values are scaled linearly
    by the probe/subscriber scale ratio and compared with a relative
    tolerance (per-metric, else "default_scaled") — this keeps one smoke
    baseline usable for quick local runs at other scales;
  * "require_phases" / "require_gauges" names must merely exist (phases
    with count > 0): timings and gauges are wall-clock- or
    shard-dependent and never value-gated;
  * candidate metrics absent from the baseline are ignored, so one
    atlas-side baseline gates atlas-only benches and the full study
    driver alike.

Tolerances are fnmatch patterns mapped to relative deviations, e.g.
  "tolerances": {"sanitize.dropped_*": 0.5, "default_scaled": 0.25}

`--update-baseline` rewrites BASELINE's counters/histogram_totals/meta
from CANDIDATE, preserving the existing tolerance and requirement lists.

`--require-counters` is a candidate-only presence gate (no baseline
needed): every fnmatch pattern must match at least one counter with a
value > 0. CI uses it to assert that a corrupted-ingest run actually
rejected lines (`--require-counters='ingest.reject.*'`). It composes
with a baseline compare when both CANDIDATE and BASELINE are given.

`--compare-to=REF` diffs two full metrics documents instead of gating
against a subset baseline: counters and gauges must match EXACTLY in
BOTH directions (a metric present on one side and absent from the
other is a failure), and histograms must agree on totals and every
bucket. Phase timings and meta are ignored — they are wall-clock- or
environment-dependent. `--ignore-counters=PAT[,PAT...]` exempts
matching counter names from the two-way diff; the crash-resume CI job
uses `--ignore-counters='checkpoint.*'` because an interrupted+resumed
run legitimately carries supervision counters its straight-through
reference lacks. `--ignore-gauges=PAT[,PAT...]` does the same for
gauges that legitimately vary between equivalent runs (shard counts
and imbalance when the two runs used different thread counts,
`stream.lag_seconds`, `process.peak_rss_bytes`). Composes with
`--require-counters`.

`--ignore-fault-counters` is shorthand for the fault-path exemption
list chaos runs need: it appends `io.retries`/`io.giveups`/
`checkpoint.write_failures`/`lg.shed`/`lg.slow_client_drops`-style
counters (see FAULT_COUNTER_PATTERNS) to `--ignore-counters`, so a
run under an armed DYNAMIPS_FAILPOINTS spec still gates on
study-output metric identity while its retry/shed accounting is free
to differ from the fault-free reference.

In --compare-to mode the `resource.*` / `supervise.*` families
(resource governor and supervisor telemetry) are exempt by default:
they exist only on runs with budgets or `--supervise` and move with
pressure/restarts by design, while the study outputs they must never
change stay gated exactly.

Exit status: 0 on pass, 1 on mismatch, 2 on usage/format errors.
Stdlib-only by design (runs in bare CI containers).
"""

import fnmatch
import json
import sys

SCHEMA = "dynamips.metrics.v1"

# Counters that only move on fault paths (injected or real): retry/giveup
# accounting, checkpoint supervision, and looking-glass overload
# protection. `--ignore-fault-counters` appends these to the
# --ignore-counters exemption list so chaos runs still gate on
# study-output identity.
FAULT_COUNTER_PATTERNS = [
    "io.retries",
    "io.giveups",
    "checkpoint.write_failures",
    "checkpoint.interrupted",
    "checkpoint.resumes",
    "lg.shed",
    "lg.slow_client_drops",
]

# Resource-governor and supervisor accounting (core/resource.h,
# core/supervise.h). These only exist on runs with budgets or --supervise
# and describe *how* the run got there (pauses, restarts, shed
# diagnostics), never the study outputs — which stay gated exactly. They
# are exempted by default in --compare-to mode so a governed run checks
# green against a pre-governor (or unpressured) reference.
GOVERNOR_METRIC_PATTERNS = [
    "resource.*",
    "supervise.*",
]


def fail(msg):
    print(f"check_metrics: {msg}", file=sys.stderr)
    return 2


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def tolerance_for(name, tolerances, same_params):
    """Relative tolerance for one metric; None means exact match.

    Exact whenever run parameters match (deterministic counters); the
    per-metric patterns only soften cross-scale comparisons, where
    per-ISP rounding and Bernoulli anomaly draws break strict linearity.
    """
    if same_params:
        return None
    for pattern, tol in tolerances.items():
        if pattern == "default_scaled":
            continue
        if fnmatch.fnmatch(name, pattern):
            return float(tol)
    return float(tolerances.get("default_scaled", 0.25))


def compare_value(name, got, want, scale_ratio, tolerances, same_params,
                  problems, verbose):
    expected = want if same_params else want * scale_ratio
    tol = tolerance_for(name, tolerances, same_params)
    if tol is None:
        ok = got == expected
        detail = f"expected exactly {expected}"
    elif expected == 0:
        ok = got == 0
        detail = "expected 0"
    else:
        deviation = abs(got - expected) / abs(expected)
        ok = deviation <= tol
        detail = (f"expected {expected:.1f} ±{tol:.0%}"
                  f" (deviation {deviation:.1%})")
    if not ok:
        problems.append(f"{name}: got {got}, {detail}")
    elif verbose:
        print(f"  ok {name}: {got} ({detail})")
    return ok


def check(candidate, baseline, verbose=False):
    problems = []

    if candidate.get("schema") != SCHEMA:
        problems.append(
            f"candidate schema {candidate.get('schema')!r} != {SCHEMA!r}")
    if baseline.get("schema") != SCHEMA:
        problems.append(
            f"baseline schema {baseline.get('schema')!r} != {SCHEMA!r}")
    if problems:
        return problems

    cmeta = candidate.get("meta", {})
    bmeta = baseline.get("meta", {})
    same_params = all(
        cmeta.get(k) == bmeta.get(k)
        for k in ("scale", "seed", "window_hours"))
    base_scale = float(bmeta.get("scale") or 0)
    cand_scale = float(cmeta.get("scale") or 0)
    scale_ratio = cand_scale / base_scale if base_scale else 1.0
    if verbose and not same_params:
        print(f"  run parameters differ; scaling expectations by "
              f"{scale_ratio:.3f}")

    tolerances = baseline.get("tolerances", {})
    counters = candidate.get("counters", {})
    for name, want in sorted(baseline.get("counters", {}).items()):
        if name not in counters:
            problems.append(f"{name}: missing from candidate counters")
            continue
        compare_value(name, counters[name], want, scale_ratio, tolerances,
                      same_params, problems, verbose)

    histograms = candidate.get("histograms", {})
    for name, want in sorted(baseline.get("histogram_totals", {}).items()):
        if name not in histograms:
            problems.append(f"{name}: missing from candidate histograms")
            continue
        compare_value(f"{name}.total", histograms[name].get("total", 0),
                      want, scale_ratio, tolerances, same_params, problems,
                      verbose)

    phases = candidate.get("phases", {})
    for name in baseline.get("require_phases", []):
        if phases.get(name, {}).get("count", 0) <= 0:
            problems.append(f"{name}: required phase missing or empty")
        elif verbose:
            print(f"  ok phase {name}: count={phases[name]['count']}")

    gauges = candidate.get("gauges", {})
    for name in baseline.get("require_gauges", []):
        if name not in gauges:
            problems.append(f"{name}: required gauge missing")
        elif verbose:
            print(f"  ok gauge {name}: {gauges[name]}")

    return problems


def update_baseline(candidate, baseline_path):
    try:
        baseline = load(baseline_path)
    except (OSError, ValueError):
        baseline = {}
    gated = baseline.get("counters")
    counters = candidate.get("counters", {})
    baseline["schema"] = SCHEMA
    baseline["meta"] = {
        k: candidate.get("meta", {}).get(k)
        for k in ("scale", "seed", "window_hours")
    }
    # Refresh only the metrics already gated when the baseline exists;
    # otherwise gate every counter of the candidate.
    names = sorted(gated) if gated else sorted(counters)
    baseline["counters"] = {
        n: counters[n] for n in names if n in counters
    }
    hist_names = sorted(baseline.get("histogram_totals") or
                        candidate.get("histograms", {}))
    baseline["histogram_totals"] = {
        n: candidate["histograms"][n]["total"]
        for n in hist_names if n in candidate.get("histograms", {})
    }
    baseline.setdefault("tolerances", {"default_scaled": 0.25})
    baseline.setdefault("require_phases", [])
    baseline.setdefault("require_gauges", [])
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"updated {baseline_path} "
          f"({len(baseline['counters'])} gated counters)")


def compare_documents(candidate, reference, ignore_patterns,
                      ignore_gauge_patterns=(), verbose=False):
    """Two-way exact diff of counters, gauges, and histograms between two
    full metrics documents (the resumed-vs-straight crash-recovery gate
    and the streamed-vs-one-shot identity gate).

    Counters/gauges matching their ignore patterns are exempt on both
    sides; no such exemption exists for histograms — analyzer histograms
    must survive checkpoint/resume bit-for-bit.
    """
    problems = []
    if candidate.get("schema") != reference.get("schema"):
        problems.append(
            f"schema {candidate.get('schema')!r} != "
            f"reference {reference.get('schema')!r}")
        return problems

    def diff_section(kind, got, want, patterns):
        def ignored(name):
            return any(fnmatch.fnmatch(name, p) for p in patterns)

        for name in sorted(set(got) | set(want)):
            if ignored(name):
                if verbose:
                    print(f"  ignored {kind} {name}")
                continue
            if name not in got:
                problems.append(f"{name}: missing from candidate {kind}s")
            elif name not in want:
                problems.append(f"{name}: unexpected {kind} "
                                f"(absent from reference)")
            elif got[name] != want[name]:
                problems.append(
                    f"{name}: got {got[name]}, reference has {want[name]}")
            elif verbose:
                print(f"  ok {kind} {name}: {got[name]}")

    diff_section("counter", candidate.get("counters", {}),
                 reference.get("counters", {}), ignore_patterns)
    diff_section("gauge", candidate.get("gauges", {}),
                 reference.get("gauges", {}), ignore_gauge_patterns)

    ghist = candidate.get("histograms", {})
    rhist = reference.get("histograms", {})
    for name in sorted(set(ghist) | set(rhist)):
        if name not in ghist:
            problems.append(f"{name}: missing from candidate histograms")
            continue
        if name not in rhist:
            problems.append(f"{name}: unexpected histogram "
                            f"(absent from reference)")
            continue
        g, r = ghist[name], rhist[name]
        if g.get("total") != r.get("total"):
            problems.append(f"{name}.total: got {g.get('total')}, "
                            f"reference has {r.get('total')}")
        elif g.get("buckets") != r.get("buckets"):
            problems.append(f"{name}: bucket contents differ "
                            f"(totals match: {g.get('total')})")
        elif verbose:
            print(f"  ok histogram {name}: total={g.get('total')}")

    return problems


def check_required_counters(candidate, patterns, verbose=False):
    """Candidate-only presence gate: each pattern must match at least one
    counter with a value > 0."""
    problems = []
    counters = candidate.get("counters", {})
    for pattern in patterns:
        hits = {n: v for n, v in counters.items()
                if fnmatch.fnmatch(n, pattern) and v > 0}
        if not hits:
            problems.append(
                f"{pattern}: no counter matching the pattern has value > 0")
        elif verbose:
            for name, value in sorted(hits.items()):
                print(f"  ok required {name}: {value}")
    return problems


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    flags = {a for a in argv[1:] if a.startswith("--")}
    required = []
    compare_to = None
    ignore_counters = []
    ignore_gauges = []
    # Accumulate (never assign) the pattern lists: `flags` is a set, so
    # --ignore-counters=... and --ignore-fault-counters arrive in arbitrary
    # order and must compose regardless.
    for flag in list(flags):
        if flag.startswith("--require-counters="):
            required += [p for p in
                         flag[len("--require-counters="):].split(",") if p]
            flags.remove(flag)
        elif flag.startswith("--compare-to="):
            compare_to = flag[len("--compare-to="):]
            flags.remove(flag)
        elif flag.startswith("--ignore-counters="):
            ignore_counters += [p for p in
                                flag[len("--ignore-counters="):].split(",")
                                if p]
            flags.remove(flag)
        elif flag.startswith("--ignore-gauges="):
            ignore_gauges += [p for p in
                              flag[len("--ignore-gauges="):].split(",") if p]
            flags.remove(flag)
        elif flag == "--ignore-fault-counters":
            ignore_counters += FAULT_COUNTER_PATTERNS
            flags.remove(flag)
    unknown = flags - {"--verbose", "--update-baseline"}
    usage = (__doc__.strip().splitlines()[0] +
             "\nusage: check_metrics.py CANDIDATE BASELINE "
             "[--verbose|--update-baseline]"
             "\n       check_metrics.py CANDIDATE "
             "--require-counters=PAT[,PAT...]"
             "\n       check_metrics.py CANDIDATE --compare-to=REF "
             "[--ignore-counters=PAT,...] [--ignore-gauges=PAT,...] "
             "[--ignore-fault-counters]")
    if unknown:
        return fail(usage)
    if (ignore_counters or ignore_gauges) and compare_to is None:
        return fail("--ignore-counters/--ignore-gauges only apply with "
                    "--compare-to\n" + usage)
    if compare_to is not None:
        # Always-on exemption: governor/supervisor telemetry varies with
        # pressure and restarts by design (see GOVERNOR_METRIC_PATTERNS).
        ignore_counters = ignore_counters + GOVERNOR_METRIC_PATTERNS
        ignore_gauges = ignore_gauges + GOVERNOR_METRIC_PATTERNS
    if len(args) != 2 and not (len(args) == 1 and (required or compare_to)):
        return fail(usage)

    candidate_path = args[0]
    baseline_path = args[1] if len(args) == 2 else None
    try:
        candidate = load(candidate_path)
    except (OSError, ValueError) as exc:
        return fail(f"cannot read candidate {candidate_path}: {exc}")

    if "--update-baseline" in flags:
        if baseline_path is None:
            return fail(usage)
        update_baseline(candidate, baseline_path)
        return 0

    verbose = "--verbose" in flags
    problems = check_required_counters(candidate, required, verbose)
    if compare_to is not None:
        try:
            reference = load(compare_to)
        except (OSError, ValueError) as exc:
            return fail(f"cannot read reference {compare_to}: {exc}")
        problems += compare_documents(candidate, reference, ignore_counters,
                                      ignore_gauges, verbose)
    if baseline_path is not None:
        try:
            baseline = load(baseline_path)
        except (OSError, ValueError) as exc:
            return fail(f"cannot read baseline {baseline_path}: {exc}")
        problems += check(candidate, baseline, verbose)

    if problems:
        print(f"check_metrics: {candidate_path} fails:", file=sys.stderr)
        for p in problems:
            print(f"  FAIL {p}", file=sys.stderr)
        return 1
    against = ""
    if compare_to:
        against = f" against {compare_to}"
    elif baseline_path:
        against = f" against {baseline_path}"
    print(f"check_metrics: {candidate_path} passes{against}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
