#!/usr/bin/env python3
"""Deterministic CSV fault injector for ingestion-robustness tests.

Damages an exported dataset line by line at a given seed and rate, using
only the stdlib so it runs anywhere the repo builds. Four fault modes,
chosen uniformly per damaged line:

  truncate   cut the line at a random byte offset
  bitflip    XOR one bit of one byte (never producing a line break)
  reorder    swap the line with the following one
  duplicate  insert an exact copy of the line right after itself

The first line (the schema header) is protected unless --no-protect-header
is given. The same (input, seed, rate, modes) always produces the same
output, so test expectations and CI assertions are stable.

Usage:
  corrupt_csv.py IN OUT --seed 7 --rate 0.05 \
      [--modes truncate,bitflip,reorder,duplicate] [--no-protect-header]
"""

import argparse
import random
import sys

MODES = ("truncate", "bitflip", "reorder", "duplicate")


def bitflip(line: str, rng: random.Random) -> str:
    if not line:
        return "?"
    pos = rng.randrange(len(line))
    bit = 1 << rng.randrange(7)
    flipped = chr(ord(line[pos]) ^ bit)
    if flipped in "\r\n":  # keep the damage inside one physical line
        flipped = "?"
    return line[:pos] + flipped + line[pos + 1 :]


def corrupt(lines, seed: int, rate: float, modes, protect_header: bool):
    rng = random.Random(seed)
    out = []
    counts = {m: 0 for m in modes}
    i = 0
    while i < len(lines):
        line = lines[i]
        protected = protect_header and i == 0
        if protected or rng.random() >= rate:
            out.append(line)
            i += 1
            continue
        mode = modes[rng.randrange(len(modes))]
        counts[mode] += 1
        if mode == "truncate":
            out.append(line[: rng.randrange(len(line) + 1)])
            i += 1
        elif mode == "bitflip":
            out.append(bitflip(line, rng))
            i += 1
        elif mode == "duplicate":
            out.append(line)
            out.append(line)
            i += 1
        else:  # reorder: swap with the next line (or keep if last)
            if i + 1 < len(lines):
                out.append(lines[i + 1])
                out.append(line)
                i += 2
            else:
                out.append(line)
                i += 1
    return out, counts


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("input")
    ap.add_argument("output")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--rate", type=float, default=0.02)
    ap.add_argument(
        "--modes",
        default=",".join(MODES),
        help="comma-separated subset of: " + ",".join(MODES),
    )
    ap.add_argument(
        "--no-protect-header",
        action="store_true",
        help="allow damaging the first (header) line too",
    )
    args = ap.parse_args()

    modes = tuple(m for m in args.modes.split(",") if m)
    for m in modes:
        if m not in MODES:
            ap.error(f"unknown mode {m!r}")
    if not modes:
        ap.error("no fault modes selected")
    if not 0.0 <= args.rate <= 1.0:
        ap.error("--rate must be within [0, 1]")

    with open(args.input, "r", newline="") as f:
        lines = f.read().splitlines()

    out, counts = corrupt(
        lines, args.seed, args.rate, modes, not args.no_protect_header
    )

    with open(args.output, "w", newline="") as f:
        for line in out:
            f.write(line + "\n")

    damaged = sum(counts.values())
    detail = ", ".join(f"{m}={n}" for m, n in sorted(counts.items()))
    print(
        f"corrupt_csv: damaged {damaged}/{len(lines)} lines ({detail})",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
