#!/usr/bin/env python3
"""Replay an exported dataset as a stream of per-time-slice batch files.

Splits an exported echo or association CSV (examples/dataset_roundtrip,
io/dataset_csv.h) into N batch files by record time — the hour column for
echo datasets, the day column for association datasets — and drops them
into a watch directory on a schedule, simulating a live feed for
`dynamips_study --follow`. Uses only the stdlib so it runs anywhere the
repo builds.

Each batch re-emits the schema header plus the `#probe`/`#tags` (echo) or
`#log` (assoc) group preambles of every group with at least one record in
the slice, so every batch is a well-formed dataset on its own. Batches are
named with zero-padded indices (batch-000.csv, batch-001.csv, ...) so
lexicographic consumption order equals production order, and are published
via tmp + rename: the consumer never observes a half-written batch.

Optional fault injection reuses tools/corrupt_csv.py on one chosen batch
(--corrupt-batch), exercising the ingestion error budget mid-stream with
the exact same deterministic fault modes CI already uses for one-shot
ingestion.

After the last batch a stop sentinel (default `stream.stop`) is dropped,
telling the consumer to run its final re-finalization and exit; suppress
it with --no-sentinel when the consumer is stopped another way.

Usage:
  stream_feed.py IN WATCH_DIR --kind echo --batches 10 [--interval-ms 50]
      [--prefix batch] [--sentinel stream.stop | --no-sentinel]
      [--corrupt-batch I --corrupt-rate R --corrupt-seed S]
"""

import argparse
import os
import sys
import time

from corrupt_csv import MODES, corrupt

TIME_FIELD = {"echo": 1, "assoc": 0}  # hour / day column, 0-based


def parse_groups(lines, kind):
    """Split dataset lines into (header, groups); each group is a dict with
    its preamble lines and [(time, record_line), ...] in file order."""
    if not lines:
        sys.exit("stream_feed: input is empty")
    header, body = lines[0], lines[1:]
    field = TIME_FIELD[kind]
    groups = []
    current = None
    starter = "#probe," if kind == "echo" else "#log,"
    for line in body:
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith(starter) or current is None:
                current = {"preamble": [], "records": []}
                groups.append(current)
            current["preamble"].append(line)
            continue
        if current is None:  # records before any preamble: one headless group
            current = {"preamble": [], "records": []}
            groups.append(current)
        cols = line.split(",")
        if len(cols) <= field:
            sys.exit(f"stream_feed: malformed record line: {line!r}")
        current["records"].append((int(cols[field]), line))
    return header, groups


def slice_index(t, tmin, tmax, batches):
    """Equal-width time slices over [tmin, tmax]; monotone in t."""
    span = tmax - tmin + 1
    return min(batches - 1, (t - tmin) * batches // span)


def render_batches(header, groups, batches):
    """Batch index -> list of lines (header + per-group preamble+records)."""
    times = [t for g in groups for (t, _) in g["records"]]
    if not times:
        sys.exit("stream_feed: input has no record lines")
    tmin, tmax = min(times), max(times)
    out = []
    for b in range(batches):
        lines = [header]
        for g in groups:
            slice_records = [
                line
                for (t, line) in g["records"]
                if slice_index(t, tmin, tmax, batches) == b
            ]
            if slice_records:
                lines.extend(g["preamble"])
                lines.extend(slice_records)
        out.append(lines)
    return out


def publish(path, lines):
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")
    os.replace(tmp, path)


def main():
    ap = argparse.ArgumentParser(
        description="Replay an exported dataset as timed batch files."
    )
    ap.add_argument("input", help="exported dataset CSV")
    ap.add_argument("watch_dir", help="directory the consumer follows")
    ap.add_argument("--kind", choices=("echo", "assoc"), required=True)
    ap.add_argument("--batches", type=int, default=10)
    ap.add_argument("--interval-ms", type=int, default=0,
                    help="pause between batch drops")
    ap.add_argument("--prefix", default="batch")
    ap.add_argument("--sentinel", default="stream.stop")
    ap.add_argument("--no-sentinel", action="store_true",
                    help="do not drop the stop sentinel after the last batch")
    ap.add_argument("--corrupt-batch", type=int, default=-1,
                    help="0-based index of one batch to damage")
    ap.add_argument("--corrupt-rate", type=float, default=0.02)
    ap.add_argument("--corrupt-seed", type=int, default=7)
    args = ap.parse_args()

    if args.batches < 1:
        sys.exit("stream_feed: --batches must be >= 1")
    with open(args.input, encoding="utf-8") as f:
        lines = f.read().splitlines()
    header, groups = parse_groups(lines, args.kind)
    rendered = render_batches(header, groups, args.batches)

    os.makedirs(args.watch_dir, exist_ok=True)
    for b, batch_lines in enumerate(rendered):
        if b == args.corrupt_batch:
            batch_lines, counts = corrupt(
                batch_lines, args.corrupt_seed, args.corrupt_rate,
                MODES, protect_header=True,
            )
            damage = ", ".join(f"{m}={n}" for m, n in counts.items() if n)
            print(f"stream_feed: damaged batch {b} ({damage or 'no hits'})")
        name = f"{args.prefix}-{b:03d}.csv"
        publish(os.path.join(args.watch_dir, name), batch_lines)
        print(f"stream_feed: dropped {name} ({len(batch_lines) - 1} lines)")
        if args.interval_ms > 0 and b + 1 < len(rendered):
            time.sleep(args.interval_ms / 1000.0)

    if not args.no_sentinel:
        publish(os.path.join(args.watch_dir, args.sentinel), [""])
        print(f"stream_feed: dropped {args.sentinel}")


if __name__ == "__main__":
    main()
