#!/usr/bin/env python3
"""Replay an exported dataset as a stream of per-time-slice batch files.

Splits an exported echo or association CSV (examples/dataset_roundtrip,
io/dataset_csv.h) into N batch files by record time — the hour column for
echo datasets, the day column for association datasets — and drops them
into a watch directory on a schedule, simulating a live feed for
`dynamips_study --follow`. Uses only the stdlib so it runs anywhere the
repo builds.

Each batch re-emits the schema header plus the `#probe`/`#tags` (echo) or
`#log` (assoc) group preambles of every group with at least one record in
the slice, so every batch is a well-formed dataset on its own. A slice
with no records is skipped entirely (with a note) rather than published
as a record-less file — the degenerate case is a dataset whose records
all share one timestamp, where every record lands in slice 0 and the
other N-1 slices are empty. Skipped slices keep their indices: batch
names stay zero-padded (width grows with --batches) so lexicographic
consumption order equals production order, and files are published via
tmp + rename so the consumer never observes a half-written batch.

--format col emits each batch in the binary columnar format
(io/columnar.h, same records and downstream results as the CSV form) —
the writer here mirrors the C++ encoder byte for byte, including the
per-column and header CRC32s, so a Python-produced batch exercises the
exact decode path a C++-exported one does.

Optional fault injection reuses tools/corrupt_csv.py on one chosen batch
(--corrupt-batch), exercising the ingestion error budget mid-stream with
the exact same deterministic fault modes CI already uses for one-shot
ingestion. (CSV format only — columnar corruption is exercised by the
bit-flip soak in CI, which damages whole files, not lines.)

After the last batch a stop sentinel (default `stream.stop`) is dropped,
telling the consumer to run its final re-finalization and exit; suppress
it with --no-sentinel when the consumer is stopped another way.

Usage:
  stream_feed.py IN WATCH_DIR --kind echo --batches 10 [--interval-ms 50]
      [--format csv|col] [--prefix batch]
      [--sentinel stream.stop | --no-sentinel]
      [--corrupt-batch I --corrupt-rate R --corrupt-seed S]
"""

import argparse
import ipaddress
import os
import struct
import sys
import time
import zlib

from corrupt_csv import MODES, corrupt

TIME_FIELD = {"echo": 1, "assoc": 0}  # hour / day column, 0-based


def parse_groups(lines, kind):
    """Split dataset lines into (header, groups); each group is a dict with
    its preamble lines and [(time, record_line), ...] in file order."""
    if not lines:
        sys.exit("stream_feed: input is empty")
    header, body = lines[0], lines[1:]
    field = TIME_FIELD[kind]
    groups = []
    current = None
    starter = "#probe," if kind == "echo" else "#log,"
    for line in body:
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith(starter) or current is None:
                current = {"preamble": [], "records": []}
                groups.append(current)
            current["preamble"].append(line)
            continue
        if current is None:  # records before any preamble: one headless group
            current = {"preamble": [], "records": []}
            groups.append(current)
        cols = line.split(",")
        if len(cols) <= field:
            sys.exit(f"stream_feed: malformed record line: {line!r}")
        current["records"].append((int(cols[field]), line))
    return header, groups


def slice_index(t, tmin, tmax, batches):
    """Equal-width time slices over [tmin, tmax]; monotone in t."""
    span = tmax - tmin + 1
    return min(batches - 1, (t - tmin) * batches // span)


def render_batches(header, groups, batches):
    """Batch index -> list of lines (header + per-group preamble+records).
    An empty slice renders as just [header]; the caller skips those."""
    times = [t for g in groups for (t, _) in g["records"]]
    if not times:
        sys.exit("stream_feed: input has no record lines")
    tmin, tmax = min(times), max(times)
    out = []
    for b in range(batches):
        lines = [header]
        for g in groups:
            slice_records = [
                line
                for (t, line) in g["records"]
                if slice_index(t, tmin, tmax, batches) == b
            ]
            if slice_records:
                lines.extend(g["preamble"])
                lines.extend(slice_records)
        out.append(lines)
    return out


# ---------------------------------------------------------------- columnar
#
# Binary writer mirroring src/io/columnar.cpp exactly: "DYNCOL1\n" magic,
# u32 version/kind, u64 rows/groups, u32 column count, a directory of
# (fourcc, u64 offset, u64 length, u32 crc32) entries, u32 header CRC, then
# 64-byte-aligned zero-padded column payloads. All integers little-endian;
# CRC32 is the IEEE/zlib polynomial, so zlib.crc32 matches ckpt::crc32.

COL_VERSION = 1
COL_KIND = {"echo": 1, "assoc": 2}
COL_ALIGN = 64


def _u8(v):
    return struct.pack("<B", v)


def _u32(v):
    return struct.pack("<I", v)


def _u64(v):
    return struct.pack("<Q", v)


def _assemble(kind, rows, groups, columns):
    """columns: list of (4-char ascii tag, payload bytes)."""
    header_size = 8 + 4 + 4 + 8 + 8 + 4 + len(columns) * (4 + 8 + 8 + 4) + 4
    offsets = []
    cursor = header_size
    for _, payload in columns:
        cursor = (cursor + COL_ALIGN - 1) // COL_ALIGN * COL_ALIGN
        offsets.append(cursor)
        cursor += len(payload)

    head = bytearray()
    head += b"DYNCOL1\n"
    head += _u32(COL_VERSION)
    head += _u32(kind)
    head += _u64(rows)
    head += _u64(groups)
    head += _u32(len(columns))
    for (tag, payload), offset in zip(columns, offsets):
        head += tag.encode("ascii")  # fourcc == the 4 bytes in order
        head += _u64(offset)
        head += _u64(len(payload))
        head += _u32(zlib.crc32(payload) & 0xFFFFFFFF)
    head += _u32(zlib.crc32(bytes(head)) & 0xFFFFFFFF)

    out = bytearray(head)
    for (_, payload), offset in zip(columns, offsets):
        out += b"\0" * (offset - len(out))
        out += payload
    return bytes(out)


def _v6_bits(addr):
    packed = int(ipaddress.IPv6Address(addr))
    return packed >> 64, packed & 0xFFFFFFFFFFFFFFFF


def _encode_echo_col(batch_groups):
    """batch_groups: [(probe_id, [tag, ...], [record_line, ...]), ...]."""
    gid = bytearray()
    gcnt = bytearray()
    gtag = bytearray()
    hour = bytearray()
    fam = bytearray()
    x4 = bytearray()
    s4 = bytearray()
    x6hi = bytearray()
    x6lo = bytearray()
    s6hi = bytearray()
    s6lo = bytearray()
    rows = 0
    for probe_id, tags, records in batch_groups:
        gid += _u32(probe_id)
        gcnt += _u64(len(records))
        gtag += _u64(len(tags))
        for tag in tags:
            raw = tag.encode("utf-8")
            gtag += _u64(len(raw)) + raw
        for line in records:
            f = line.split(",")
            if len(f) != 5:
                sys.exit(f"stream_feed: malformed echo record: {line!r}")
            rows += 1
            hour += _u64(int(f[1]))
            if f[2] == "4":
                fam += _u8(0)
                x4 += _u32(int(ipaddress.IPv4Address(f[3])))
                s4 += _u32(int(ipaddress.IPv4Address(f[4])))
                x6hi += _u64(0)
                x6lo += _u64(0)
                s6hi += _u64(0)
                s6lo += _u64(0)
            else:
                fam += _u8(1)
                x4 += _u32(0)
                s4 += _u32(0)
                hi, lo = _v6_bits(f[3])
                x6hi += _u64(hi)
                x6lo += _u64(lo)
                hi, lo = _v6_bits(f[4])
                s6hi += _u64(hi)
                s6lo += _u64(lo)
    return _assemble(
        COL_KIND["echo"], rows, len(batch_groups),
        [("GPID", bytes(gid)), ("GCNT", bytes(gcnt)), ("GTAG", bytes(gtag)),
         ("HOUR", bytes(hour)), ("FAM_", bytes(fam)), ("X4__", bytes(x4)),
         ("S4__", bytes(s4)), ("X6HI", bytes(x6hi)), ("X6LO", bytes(x6lo)),
         ("S6HI", bytes(s6hi)), ("S6LO", bytes(s6lo))],
    )


def _encode_assoc_col(batch_groups):
    """batch_groups: [(asn, [record_line, ...]), ...]."""
    gasn = bytearray()
    gcnt = bytearray()
    day = bytearray()
    v4a = bytearray()
    v4l = bytearray()
    v6hi = bytearray()
    v6lo = bytearray()
    v6l = bytearray()
    as4 = bytearray()
    as6 = bytearray()
    rows = 0
    for asn, records in batch_groups:
        gasn += _u32(asn)
        gcnt += _u64(len(records))
        for line in records:
            f = line.split(",")
            if len(f) != 5:
                sys.exit(f"stream_feed: malformed assoc record: {line!r}")
            rows += 1
            day += _u32(int(f[0]))
            p4 = ipaddress.IPv4Network(f[1], strict=False)
            v4a += _u32(int(p4.network_address))
            v4l += _u8(p4.prefixlen)
            p6 = ipaddress.IPv6Network(f[2], strict=False)
            hi, lo = _v6_bits(p6.network_address)
            v6hi += _u64(hi)
            v6lo += _u64(lo)
            v6l += _u8(p6.prefixlen)
            as4 += _u32(int(f[3]))
            as6 += _u32(int(f[4]))
    return _assemble(
        COL_KIND["assoc"], rows, len(batch_groups),
        [("GASN", bytes(gasn)), ("GCNT", bytes(gcnt)), ("DAY_", bytes(day)),
         ("V4A_", bytes(v4a)), ("V4L_", bytes(v4l)), ("V6HI", bytes(v6hi)),
         ("V6LO", bytes(v6lo)), ("V6L_", bytes(v6l)), ("AS4_", bytes(as4)),
         ("AS6_", bytes(as6))],
    )


def _group_id(group, kind, batch_lines):
    """Recover the group's id (probe id / log asn) from its preamble, or
    from its first record when the group is headless."""
    starter = "#probe," if kind == "echo" else "#log,"
    for line in group["preamble"]:
        if line.startswith(starter):
            return int(line.split(",")[1])
    first = batch_lines[0].split(",")
    return int(first[0] if kind == "echo" else first[4])


def _group_tags(group):
    for line in group["preamble"]:
        if line.startswith("#tags,"):
            rest = line.split(",", 2)[2]
            return [t for t in rest.split(";") if t]
    return []


def render_col_batch(groups, tmin, tmax, batches, b, kind):
    """Binary columnar image of slice `b`, or None when the slice is empty."""
    batch_groups = []
    for g in groups:
        slice_records = [
            line
            for (t, line) in g["records"]
            if slice_index(t, tmin, tmax, batches) == b
        ]
        if not slice_records:
            continue
        if kind == "echo":
            batch_groups.append((_group_id(g, kind, slice_records),
                                 _group_tags(g), slice_records))
        else:
            batch_groups.append((_group_id(g, kind, slice_records),
                                 slice_records))
    if not batch_groups:
        return None
    encode = _encode_echo_col if kind == "echo" else _encode_assoc_col
    return encode(batch_groups)


def publish(path, lines):
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")
    os.replace(tmp, path)


def publish_bytes(path, blob):
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(blob)
    os.replace(tmp, path)


def main():
    ap = argparse.ArgumentParser(
        description="Replay an exported dataset as timed batch files."
    )
    ap.add_argument("input", help="exported dataset CSV")
    ap.add_argument("watch_dir", help="directory the consumer follows")
    ap.add_argument("--kind", choices=("echo", "assoc"), required=True)
    ap.add_argument("--batches", type=int, default=10)
    ap.add_argument("--format", choices=("csv", "col"), default="csv",
                    help="batch file format (col = binary columnar)")
    ap.add_argument("--interval-ms", type=int, default=0,
                    help="pause between batch drops")
    ap.add_argument("--prefix", default="batch")
    ap.add_argument("--sentinel", default="stream.stop")
    ap.add_argument("--no-sentinel", action="store_true",
                    help="do not drop the stop sentinel after the last batch")
    ap.add_argument("--corrupt-batch", type=int, default=-1,
                    help="0-based index of one batch to damage")
    ap.add_argument("--corrupt-rate", type=float, default=0.02)
    ap.add_argument("--corrupt-seed", type=int, default=7)
    args = ap.parse_args()

    if args.batches < 1:
        sys.exit("stream_feed: --batches must be >= 1")
    if args.format == "col" and args.corrupt_batch >= 0:
        sys.exit("stream_feed: --corrupt-batch is line-oriented; it only "
                 "applies to --format csv")
    with open(args.input, encoding="utf-8") as f:
        lines = f.read().splitlines()
    header, groups = parse_groups(lines, args.kind)
    rendered = render_batches(header, groups, args.batches)
    times = [t for g in groups for (t, _) in g["records"]]
    tmin, tmax = min(times), max(times)

    # Index width scales with the batch count (floor of 3 keeps historic
    # names stable); the consumer orders numerically either way.
    pad = max(3, len(str(args.batches - 1)))
    ext = args.format

    os.makedirs(args.watch_dir, exist_ok=True)
    dropped = 0
    for b, batch_lines in enumerate(rendered):
        if len(batch_lines) <= 1:  # header only: empty time slice
            print(f"stream_feed: slice {b} is empty, skipped")
            continue
        name = f"{args.prefix}-{b:0{pad}d}.{ext}"
        if args.format == "col":
            blob = render_col_batch(groups, tmin, tmax, args.batches, b,
                                    args.kind)
            publish_bytes(os.path.join(args.watch_dir, name), blob)
            print(f"stream_feed: dropped {name} ({len(blob)} bytes)")
        else:
            if b == args.corrupt_batch:
                batch_lines, counts = corrupt(
                    batch_lines, args.corrupt_seed, args.corrupt_rate,
                    MODES, protect_header=True,
                )
                damage = ", ".join(
                    f"{m}={n}" for m, n in counts.items() if n)
                print(f"stream_feed: damaged batch {b} "
                      f"({damage or 'no hits'})")
            publish(os.path.join(args.watch_dir, name), batch_lines)
            print(f"stream_feed: dropped {name} "
                  f"({len(batch_lines) - 1} lines)")
        dropped += 1
        if args.interval_ms > 0 and b + 1 < len(rendered):
            time.sleep(args.interval_ms / 1000.0)

    if dropped == 0:
        sys.exit("stream_feed: every slice was empty — nothing published")
    if not args.no_sentinel:
        publish(os.path.join(args.watch_dir, args.sentinel), [""])
        print(f"stream_feed: dropped {args.sentinel}")


if __name__ == "__main__":
    main()
