#include "netaddr/ipv4.h"

#include <gtest/gtest.h>

#include <string>

#include "corpus_util.h"

namespace dynamips::net {
namespace {

TEST(IPv4, ParseBasic) {
  auto a = IPv4Address::parse("192.0.2.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0xc0000201u);
  EXPECT_EQ(a->to_string(), "192.0.2.1");
}

TEST(IPv4, ParseBounds) {
  EXPECT_TRUE(IPv4Address::parse("0.0.0.0").has_value());
  EXPECT_TRUE(IPv4Address::parse("255.255.255.255").has_value());
  EXPECT_EQ(IPv4Address::parse("255.255.255.255")->value(), 0xffffffffu);
}

TEST(IPv4, ParseRejectsMalformed) {
  EXPECT_FALSE(IPv4Address::parse("").has_value());
  EXPECT_FALSE(IPv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(IPv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IPv4Address::parse("256.1.1.1").has_value());
  EXPECT_FALSE(IPv4Address::parse("1.2.3.256").has_value());
  EXPECT_FALSE(IPv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(IPv4Address::parse("1.2.3.4 ").has_value());
  EXPECT_FALSE(IPv4Address::parse(" 1.2.3.4").has_value());
  EXPECT_FALSE(IPv4Address::parse("1..2.3").has_value());
  EXPECT_FALSE(IPv4Address::parse("1.2.3.").has_value());
  EXPECT_FALSE(IPv4Address::parse(".1.2.3").has_value());
  EXPECT_FALSE(IPv4Address::parse("-1.2.3.4").has_value());
}

TEST(IPv4, ParseRejectsLeadingZeros) {
  EXPECT_FALSE(IPv4Address::parse("01.2.3.4").has_value());
  EXPECT_FALSE(IPv4Address::parse("1.02.3.4").has_value());
  EXPECT_FALSE(IPv4Address::parse("1.2.3.04").has_value());
  EXPECT_TRUE(IPv4Address::parse("0.2.3.4").has_value());
}

TEST(IPv4, Octets) {
  auto a = IPv4Address::from_octets(10, 20, 30, 40);
  auto o = a.octets();
  EXPECT_EQ(o[0], 10);
  EXPECT_EQ(o[1], 20);
  EXPECT_EQ(o[2], 30);
  EXPECT_EQ(o[3], 40);
}

TEST(IPv4, Rfc1918) {
  EXPECT_TRUE(IPv4Address::parse("10.0.0.1")->is_rfc1918());
  EXPECT_TRUE(IPv4Address::parse("10.255.255.254")->is_rfc1918());
  EXPECT_TRUE(IPv4Address::parse("172.16.0.1")->is_rfc1918());
  EXPECT_TRUE(IPv4Address::parse("172.31.255.1")->is_rfc1918());
  EXPECT_FALSE(IPv4Address::parse("172.32.0.1")->is_rfc1918());
  EXPECT_FALSE(IPv4Address::parse("172.15.0.1")->is_rfc1918());
  EXPECT_TRUE(IPv4Address::parse("192.168.1.1")->is_rfc1918());
  EXPECT_FALSE(IPv4Address::parse("192.169.1.1")->is_rfc1918());
  EXPECT_FALSE(IPv4Address::parse("8.8.8.8")->is_rfc1918());
}

TEST(IPv4, Rfc6598) {
  EXPECT_TRUE(IPv4Address::parse("100.64.0.1")->is_rfc6598());
  EXPECT_TRUE(IPv4Address::parse("100.127.255.254")->is_rfc6598());
  EXPECT_FALSE(IPv4Address::parse("100.128.0.1")->is_rfc6598());
  EXPECT_FALSE(IPv4Address::parse("100.63.255.255")->is_rfc6598());
}

TEST(IPv4, CommonPrefixLength) {
  auto a = *IPv4Address::parse("192.0.2.1");
  EXPECT_EQ(common_prefix_length(a, a), 32);
  auto b = *IPv4Address::parse("192.0.2.0");
  EXPECT_EQ(common_prefix_length(a, b), 31);
  auto c = *IPv4Address::parse("192.0.3.1");
  EXPECT_EQ(common_prefix_length(a, c), 23);
  auto d = *IPv4Address::parse("64.0.2.1");
  EXPECT_EQ(common_prefix_length(a, d), 0);
}

TEST(IPv4, Ordering) {
  EXPECT_LT(*IPv4Address::parse("1.2.3.4"), *IPv4Address::parse("1.2.3.5"));
  EXPECT_LT(*IPv4Address::parse("9.255.255.255"),
            *IPv4Address::parse("10.0.0.0"));
}

// Round-trip sweep across a spread of values.
class IPv4RoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IPv4RoundTrip, ParseFormatsBack) {
  IPv4Address a{GetParam()};
  auto parsed = IPv4Address::parse(a.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, a);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IPv4RoundTrip,
                         ::testing::Values(0u, 1u, 0xffffffffu, 0x01020304u,
                                           0xc0a80101u, 0x0a000001u,
                                           0x7f000001u, 0xdeadbeefu,
                                           0x80000000u, 0x00ffff00u));


TEST(IPv4, FuzzRegressionCorpus) {
  dynamips::testing::run_parse_corpus("ipv4", [](const std::string& s) {
    return IPv4Address::parse(s).has_value();
  });
}

}  // namespace
}  // namespace dynamips::net
