#include "core/anonymize.h"

#include <gtest/gtest.h>

namespace dynamips::core {
namespace {

TEST(Anonymize, PolicyDefaultsForUnknownAs) {
  AnonymizationPolicy policy;
  policy.default_len = 32;
  policy.truncation_len[3320] = 40;
  EXPECT_EQ(policy.length_for(3320), 40);
  EXPECT_EQ(policy.length_for(9999), 32);
}

TEST(Anonymize, AnonymizeTruncatesByOriginAs) {
  bgp::Rib rib;
  rib.announce(*net::Prefix6::parse("2003::/19"),
               {3320, bgp::Registry::kRipe});
  AnonymizationPolicy policy;
  policy.truncation_len[3320] = 40;
  policy.default_len = 24;
  auto dtag = *net::IPv6Address::parse("2003:e1:aabb:cc00::1");
  auto out = anonymize(dtag, policy, rib);
  EXPECT_EQ(out.length(), 40);
  EXPECT_TRUE(out.contains(dtag));
  // Unrouted addresses fall back to the conservative default.
  auto other = *net::IPv6Address::parse("2a00::1");
  EXPECT_EQ(anonymize(other, policy, rib).length(), 24);
}

TEST(Anonymize, KAnonymityBasic) {
  // Four subscribers in one /56 bucket, one alone in another.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> data{
      {1, 0x2003000000001100ull},
      {2, 0x2003000000001200ull},
      {3, 0x2003000000001300ull},
      {4, 0x2003000000001400ull},
      {5, 0x2003000000550000ull},
  };
  auto r48 = audit_k_anonymity(data, 48);
  EXPECT_EQ(r48.buckets, 2u);
  EXPECT_EQ(r48.min_bucket, 1u);
  EXPECT_EQ(r48.singleton_buckets, 1u);
  EXPECT_FALSE(r48.satisfies(2));

  auto r40 = audit_k_anonymity(data, 40);
  EXPECT_EQ(r40.buckets, 1u);
  EXPECT_EQ(r40.min_bucket, 5u);
  EXPECT_TRUE(r40.satisfies(5));
}

TEST(Anonymize, KAnonymitySubscriberCountedOncePerBucket) {
  // One subscriber seen with many /64s in the same bucket counts once.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> data{
      {1, 0x2003000000001100ull},
      {1, 0x2003000000001200ull},
      {2, 0x2003000000001300ull},
  };
  auto r = audit_k_anonymity(data, 48);
  EXPECT_EQ(r.buckets, 1u);
  EXPECT_EQ(r.min_bucket, 2u);
}

TEST(Anonymize, KAnonymityEdgeLengths) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> data{
      {1, 0x1ull}, {2, 0x2ull}};
  auto r64 = audit_k_anonymity(data, 64);
  EXPECT_EQ(r64.buckets, 2u);
  auto r0 = audit_k_anonymity(data, 0);
  EXPECT_EQ(r0.buckets, 1u);
  EXPECT_EQ(r0.min_bucket, 2u);
  auto empty = audit_k_anonymity({}, 48);
  EXPECT_EQ(empty.buckets, 0u);
}

TEST(Anonymize, DerivePolicyFromStudy) {
  // Build a minimal study by hand: DTAG-like AS with /40 pools and /56
  // subscriber delegations.
  AtlasStudy study;
  study.pool_inference[3320] = {{40, 0.9}, {40, 0.85}, {44, 0.8}};
  study.subscriber_inference[3320] = {{56, 5}, {56, 9}, {64, 2}};
  auto policy = derive_policy(study, 8);
  ASSERT_TRUE(policy.truncation_len.count(3320));
  // min(pool=40, 56-8=48) = 40.
  EXPECT_EQ(policy.truncation_len[3320], 40);
}

TEST(Anonymize, DerivePolicyCapsAtSubscriberMargin) {
  // Netcologne-like: /48 subscriber delegations, pools inferred at /44.
  AtlasStudy study;
  study.pool_inference[8422] = {{44, 0.9}, {44, 0.9}, {44, 0.9}};
  study.subscriber_inference[8422] = {{48, 4}, {48, 3}};
  auto policy = derive_policy(study, 8);
  // min(44, 48-8=40) = 40: a /44 truncation would still have tiny buckets.
  EXPECT_EQ(policy.truncation_len[8422], 40);
}

TEST(Anonymize, DerivedPolicyAchievesKAnonymityOnSimulatedData) {
  // End-to-end: simulate one ISP, derive the policy, audit it against the
  // ground-truth subscriber /64s.
  auto isp = *simnet::find_isp("DTAG");
  core::AtlasStudyConfig cfg;
  cfg.atlas.probe_scale = 0.15;
  cfg.atlas.window_hours = 8760;
  auto study = run_atlas_study({isp}, cfg);
  auto policy = derive_policy(study);
  ASSERT_TRUE(policy.truncation_len.count(isp.asn));
  int len = policy.truncation_len[isp.asn];
  EXPECT_LE(len, 48);

  simnet::TimelineGenerator gen(isp, 99);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> data;
  for (std::uint32_t sub = 0; sub < 400; ++sub) {
    auto tl = gen.generate(sub, 0, 2000);
    for (const auto& seg : tl.v6) data.emplace_back(sub, seg.lan64);
  }
  auto strict = audit_k_anonymity(data, len);
  auto naive = audit_k_anonymity(data, 56);
  EXPECT_GT(strict.median_bucket, naive.median_bucket)
      << "the derived policy aggregates more subscribers than /56";
  EXPECT_GE(strict.median_bucket, 2.0);
}

}  // namespace
}  // namespace dynamips::core
