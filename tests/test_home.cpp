#include "simnet/home.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "core/tracking.h"
#include "simnet/isp.h"

namespace dynamips::simnet {
namespace {

SubscriberTimeline two_network_timeline() {
  SubscriberTimeline tl;
  tl.dual_stack = true;
  tl.v6 = {{0, 100, {}, 0x2003000000001100ull, ChangeCause::kLease},
           {100, 200, {}, 0x2003000000002200ull, ChangeCause::kNone}};
  return tl;
}

TEST(Home, TypicalMixSizes) {
  net::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    auto mix = typical_home_mix(rng);
    EXPECT_GE(mix.size(), 1u);
    EXPECT_LE(mix.size(), 8u);
  }
}

TEST(Home, Eui64DeviceKeepsIidAcrossNetworks) {
  std::vector<DeviceProfile> devices{{IidMode::kEui64, 24}};
  auto obs = simulate_home_devices(two_network_timeline(), devices, 7, 1);
  ASSERT_FALSE(obs.empty());
  std::set<std::uint64_t> iids, nets;
  for (const auto& o : obs) {
    iids.insert(o.addr.iid());
    nets.insert(o.addr.network64());
  }
  EXPECT_EQ(iids.size(), 1u);
  EXPECT_EQ(nets.size(), 2u);
  EXPECT_TRUE(net::is_eui64_iid(*iids.begin()));
}

TEST(Home, PrivacyDeviceRotatesDaily) {
  std::vector<DeviceProfile> devices{{IidMode::kPrivacy, 24}};
  SubscriberTimeline tl;
  tl.dual_stack = true;
  tl.v6 = {{0, 96, {}, 0x2003000000001100ull, ChangeCause::kNone}};
  auto obs = simulate_home_devices(tl, devices, 7, 1);
  std::set<std::uint64_t> iids;
  for (const auto& o : obs) iids.insert(o.addr.iid());
  EXPECT_EQ(iids.size(), 4u) << "one IID per 24h epoch";
}

TEST(Home, PrivacyDeviceRegeneratesOnPrefixChange) {
  std::vector<DeviceProfile> devices{{IidMode::kPrivacy, 1 << 20}};
  auto obs = simulate_home_devices(two_network_timeline(), devices, 7, 1);
  std::set<std::uint64_t> iids_net1, iids_net2;
  for (const auto& o : obs) {
    if (o.addr.network64() == 0x2003000000001100ull)
      iids_net1.insert(o.addr.iid());
    else
      iids_net2.insert(o.addr.iid());
  }
  EXPECT_EQ(iids_net1.size(), 1u);
  EXPECT_EQ(iids_net2.size(), 1u);
  EXPECT_NE(*iids_net1.begin(), *iids_net2.begin())
      << "RFC 4941: new prefix, new temporary IID";
}

TEST(Home, StableOpaqueIsPerNetworkStableButUnlinkable) {
  std::vector<DeviceProfile> devices{{IidMode::kStableOpaque, 24}};
  auto obs = simulate_home_devices(two_network_timeline(), devices, 7, 1);
  std::set<std::uint64_t> iids_net1, iids_net2;
  for (const auto& o : obs) {
    if (o.addr.network64() == 0x2003000000001100ull)
      iids_net1.insert(o.addr.iid());
    else
      iids_net2.insert(o.addr.iid());
  }
  EXPECT_EQ(iids_net1.size(), 1u) << "stable within a network";
  EXPECT_EQ(iids_net2.size(), 1u);
  EXPECT_NE(*iids_net1.begin(), *iids_net2.begin())
      << "RFC 7217: different networks, different IIDs";
}

TEST(Home, DeterministicAcrossCalls) {
  net::Rng rng(3);
  auto mix = typical_home_mix(rng);
  auto a = simulate_home_devices(two_network_timeline(), mix, 11, 4);
  auto b = simulate_home_devices(two_network_timeline(), mix, 11, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].addr, b[i].addr);
}

TEST(Home, TrackingAnalysisSeparatesIidModes) {
  // End to end: only the EUI-64 device survives cross-network tracking;
  // the RFC 7217 host is stable per network but unlinkable across.
  std::vector<DeviceProfile> devices{{IidMode::kEui64, 24},
                                     {IidMode::kPrivacy, 24},
                                     {IidMode::kStableOpaque, 24}};
  auto obs = simulate_home_devices(two_network_timeline(), devices, 13, 1);
  core::CleanProbe cp;
  cp.probe_id = 1;
  cp.asn = 100;
  for (const auto& o : obs) cp.v6.push_back({o.hour, o.addr, true});
  auto tracks = core::TrackingAnalyzer::tracks_of(cp);

  int eui64_cross = 0, non_eui64_cross = 0;
  for (const auto& t : tracks) {
    if (t.eui64 && t.survives_renumbering()) ++eui64_cross;
    if (!t.eui64 && t.survives_renumbering()) ++non_eui64_cross;
  }
  EXPECT_EQ(eui64_cross, 1);
  EXPECT_EQ(non_eui64_cross, 0)
      << "RFC 4941/7217 devices are unlinkable across networks";
}

TEST(Home, EmptyInputs) {
  EXPECT_TRUE(simulate_home_devices({}, {{IidMode::kEui64, 24}}, 1).empty());
  EXPECT_TRUE(
      simulate_home_devices(two_network_timeline(), {}, 1).empty());
}

}  // namespace
}  // namespace dynamips::simnet
