#include "core/sanitize.h"

#include <gtest/gtest.h>

namespace dynamips::core {
namespace {

using net::IPv4Address;
using net::IPv6Address;

// Minimal two-AS world for the sanitizer tests.
bgp::Rib test_rib() {
  bgp::Rib rib;
  rib.announce(*net::Prefix4::parse("10.0.0.0/8"),
               {100, bgp::Registry::kRipe});
  rib.announce(*net::Prefix4::parse("20.0.0.0/8"),
               {200, bgp::Registry::kRipe});
  rib.announce(*net::Prefix6::parse("2001:100::/32"),
               {100, bgp::Registry::kRipe});
  rib.announce(*net::Prefix6::parse("2001:200::/32"),
               {200, bgp::Registry::kRipe});
  return rib;
}

// A clean dual-stack probe in AS100 observed for `hours` hours.
ProbeObservations clean_probe(Hour hours, std::uint32_t id = 1) {
  ProbeObservations p;
  p.probe_id = id;
  p.tags = {tag_pool().intern("home")};
  for (Hour h = 0; h < hours; ++h) {
    p.v4.push_back({h, *IPv4Address::parse("10.1.2.3"), false});
    p.v6.push_back({h, *IPv6Address::parse("2001:100:0:5::1"), true});
  }
  return p;
}

TEST(Sanitize, KeepsCleanProbe) {
  auto rib = test_rib();
  Sanitizer s(rib, {});
  auto out = s.sanitize(clean_probe(2000));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].asn, 100u);
  EXPECT_EQ(out[0].v4.size(), 2000u);
  EXPECT_EQ(out[0].v6.size(), 2000u);
  EXPECT_EQ(s.stats().probes_kept, 1u);
}

TEST(Sanitize, DropsShortProbe) {
  auto rib = test_rib();
  Sanitizer s(rib, {});
  auto out = s.sanitize(clean_probe(100));  // < 730 hours
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(s.stats().dropped_short, 1u);
}

TEST(Sanitize, DropsBadTags) {
  auto rib = test_rib();
  Sanitizer s(rib, {});
  for (const char* tag :
       {"datacentre", "core", "system-anchor", "multihomed"}) {
    auto p = clean_probe(2000);
    p.tags.push_back(tag_pool().intern(tag));
    EXPECT_TRUE(s.sanitize(p).empty()) << tag;
  }
  EXPECT_EQ(s.stats().dropped_bad_tag, 4u);
}

TEST(Sanitize, DropsPublicSrcProbe) {
  auto rib = test_rib();
  Sanitizer s(rib, {});
  auto p = clean_probe(2000);
  for (auto& o : p.v4) o.src_public = true;
  EXPECT_TRUE(s.sanitize(p).empty());
  EXPECT_EQ(s.stats().dropped_public_src, 1u);
}

TEST(Sanitize, ToleratesFewPublicSrcRecords) {
  auto rib = test_rib();
  Sanitizer s(rib, {});
  auto p = clean_probe(2000);
  for (std::size_t i = 0; i < 20; ++i) p.v4[i].src_public = true;  // 1%
  EXPECT_EQ(s.sanitize(p).size(), 1u);
}

TEST(Sanitize, DropsV6SrcMismatchProbe) {
  auto rib = test_rib();
  Sanitizer s(rib, {});
  auto p = clean_probe(2000);
  for (auto& o : p.v6) o.src_matches = false;
  EXPECT_TRUE(s.sanitize(p).empty());
  EXPECT_EQ(s.stats().dropped_v6_mismatch, 1u);
}

TEST(Sanitize, StripsTestAddress) {
  auto rib = test_rib();
  Sanitizer s(rib, {});
  auto p = clean_probe(2000);
  p.v4[0].addr = atlas::ripe_test_address();
  p.v4[1].addr = atlas::ripe_test_address();
  auto out = s.sanitize(p);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].v4.size(), 1998u);
  EXPECT_EQ(s.stats().test_address_records, 2u);
  for (const auto& o : out[0].v4)
    EXPECT_NE(o.addr, atlas::ripe_test_address());
}

TEST(Sanitize, DropsMultihomedAlternation) {
  auto rib = test_rib();
  Sanitizer s(rib, {});
  ProbeObservations p;
  p.probe_id = 5;
  for (Hour h = 0; h < 2000; ++h) {
    const char* addr = (h / 3) % 2 ? "10.1.2.3" : "20.1.2.3";
    p.v4.push_back({h, *IPv4Address::parse(addr), false});
  }
  EXPECT_TRUE(s.sanitize(p).empty());
  EXPECT_EQ(s.stats().dropped_multihomed, 1u);
}

TEST(Sanitize, SplitsAsSwitchIntoVirtualProbes) {
  auto rib = test_rib();
  Sanitizer s(rib, {});
  ProbeObservations p;
  p.probe_id = 6;
  for (Hour h = 0; h < 4000; ++h) {
    const char* addr = h < 2000 ? "10.1.2.3" : "20.1.2.3";
    p.v4.push_back({h, *IPv4Address::parse(addr), false});
  }
  auto out = s.sanitize(p);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].asn, 100u);
  EXPECT_EQ(out[0].virtual_index, 0);
  EXPECT_EQ(out[1].asn, 200u);
  EXPECT_EQ(out[1].virtual_index, 1);
  EXPECT_EQ(out[0].v4.size(), 2000u);
  EXPECT_EQ(out[1].v4.size(), 2000u);
  EXPECT_EQ(s.stats().split_probes, 1u);
  EXPECT_EQ(s.stats().virtual_probes, 2u);
}

TEST(Sanitize, SplitDropsShortHalf) {
  auto rib = test_rib();
  Sanitizer s(rib, {});
  ProbeObservations p;
  p.probe_id = 7;
  for (Hour h = 0; h < 2100; ++h) {
    const char* addr = h < 2000 ? "10.1.2.3" : "20.1.2.3";
    p.v4.push_back({h, *IPv4Address::parse(addr), false});
  }
  auto out = s.sanitize(p);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].asn, 100u);
  EXPECT_EQ(s.stats().dropped_short, 1u);
}

TEST(Sanitize, UnroutedObservationsIgnored) {
  auto rib = test_rib();
  Sanitizer s(rib, {});
  auto p = clean_probe(2000);
  // Unrouted blips must not create phantom AS runs.
  p.v4[500].addr = *IPv4Address::parse("99.9.9.9");
  auto out = s.sanitize(p);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].asn, 100u);
}

TEST(Sanitize, EmptyProbeDropped) {
  auto rib = test_rib();
  Sanitizer s(rib, {});
  ProbeObservations p;
  p.probe_id = 9;
  EXPECT_TRUE(s.sanitize(p).empty());
}

TEST(Sanitize, StatsAccumulateAcrossProbes) {
  auto rib = test_rib();
  Sanitizer s(rib, {});
  s.sanitize(clean_probe(2000, 1));
  s.sanitize(clean_probe(2000, 2));
  s.sanitize(clean_probe(10, 3));
  EXPECT_EQ(s.stats().probes_seen, 3u);
  EXPECT_EQ(s.stats().probes_kept, 2u);
}

TEST(Sanitize, FromSeriesConversion) {
  atlas::ProbeSeries series;
  series.meta.probe_id = 77;
  series.meta.tags = {tag_pool().intern("home")};
  atlas::EchoRecord r4;
  r4.probe_id = 77;
  r4.hour = 5;
  r4.family = atlas::Family::kV4;
  r4.x_client_ip4 = *IPv4Address::parse("10.0.0.1");
  r4.src_addr4 = *IPv4Address::parse("192.168.1.7");
  series.records.push_back(r4);
  atlas::EchoRecord r6;
  r6.probe_id = 77;
  r6.hour = 5;
  r6.family = atlas::Family::kV6;
  r6.x_client_ip6 = *IPv6Address::parse("2001:100::1");
  r6.src_addr6 = *IPv6Address::parse("2001:100::2");
  series.records.push_back(r6);

  auto obs = from_series(series);
  EXPECT_EQ(obs.probe_id, 77u);
  ASSERT_EQ(obs.v4.size(), 1u);
  EXPECT_FALSE(obs.v4[0].src_public) << "RFC 1918 src is the typical NAT";
  ASSERT_EQ(obs.v6.size(), 1u);
  EXPECT_FALSE(obs.v6[0].src_matches);

  // CGNAT shared space also counts as private.
  series.records[0].src_addr4 = *IPv4Address::parse("100.64.0.1");
  EXPECT_FALSE(from_series(series).v4[0].src_public);
  series.records[0].src_addr4 = *IPv4Address::parse("8.8.8.8");
  EXPECT_TRUE(from_series(series).v4[0].src_public);
}

}  // namespace
}  // namespace dynamips::core
