// test_ingest.cpp — fault-tolerant readers, error budgets, and the
// file-driven study entrypoints.
//
// Covers the ingestion-hardening contract end to end: per-reason
// classification with exact quarantine line numbers, error-budget
// boundaries (exactly-at passes, one-over fails), consecutive-reject
// fail-fast, clean write→read round trips, byte-identical study results
// between the in-process generators and a re-ingested export, and the
// write→corrupt(tools/corrupt_csv.py)→read round trip where a
// within-budget corrupted dataset must produce results identical to the
// same file with the quarantined lines stripped out.
#include "io/readers.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "atlas/generator.h"
#include "cdn/generator.h"
#include "core/parallel.h"
#include "core/pipeline.h"
#include "core/status.h"
#include "io/results_io.h"
#include "obs/metrics.h"
#include "simnet/isp.h"

namespace dynamips {
namespace {

namespace fs = std::filesystem;
using core::Status;
using core::StatusCode;
using io::ReaderOptions;
using io::RejectReason;

// ------------------------------------------------------------ test helpers

fs::path temp_path(const std::string& name) {
  return fs::path(::testing::TempDir()) / name;
}

std::vector<std::string> read_lines(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Serialize every Atlas artifact; byte equality here is the "results are
/// identical" acceptance criterion.
std::string atlas_signature(const core::AtlasStudy& study) {
  std::ostringstream os;
  io::write_duration_curves_csv(os, study);
  io::write_cpl_csv(os, study);
  io::write_bgp_moves_csv(os, study);
  io::write_inference_csv(os, study);
  return os.str();
}

std::string cdn_signature(const core::CdnStudy& study) {
  std::ostringstream os;
  io::write_assoc_durations_csv(os, study);
  io::write_degrees_csv(os, study);
  io::write_zero_boundaries_csv(os, study);
  return os.str();
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// -------------------------------------------------------- Status/Expected

TEST(Status, OkAndErrorBasics) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.to_string(), "OK");

  Status err(StatusCode::kDataLoss, "3 of 4 lines rejected");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kDataLoss);
  err.with_context("load echo dataset");
  EXPECT_EQ(err.message(), "load echo dataset: 3 of 4 lines rejected");
  EXPECT_EQ(err.to_string(),
            "DATA_LOSS: load echo dataset: 3 of 4 lines rejected");

  // Context on an OK status is a no-op.
  EXPECT_EQ(ok.with_context("ignored").to_string(), "OK");
}

TEST(Status, ExpectedCarriesValueOrStatus) {
  core::Expected<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_TRUE(good.status().ok());

  core::Expected<int> bad(Status(StatusCode::kNotFound, "missing"));
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(static_cast<bool>(bad));
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);

  core::Expected<std::string> moved(std::string("payload"));
  EXPECT_EQ(moved.take(), "payload");
}

// -------------------------------------------------------- clean round trip

TEST(Ingest, EchoDatasetRoundTripKeepsTagsAndEmptyProbes) {
  std::vector<atlas::ProbeSeries> dataset(3);
  dataset[0].meta.probe_id = 11;
  dataset[0].meta.tags = {core::tag_pool().intern("system-anchor"),
                          core::tag_pool().intern("datacentre")};
  for (int h = 0; h < 4; ++h) {
    atlas::EchoRecord r;
    r.probe_id = 11;
    r.hour = atlas::Hour(h);
    r.family = h % 2 ? atlas::Family::kV6 : atlas::Family::kV4;
    r.x_client_ip4 = *net::IPv4Address::parse("80.1.2.3");
    r.src_addr4 = *net::IPv4Address::parse("192.168.1.5");
    r.x_client_ip6 = *net::IPv6Address::parse("2003:ec57::1");
    r.src_addr6 = r.x_client_ip6;
    dataset[0].records.push_back(r);
  }
  dataset[1].meta.probe_id = 22;  // deployed but never measured
  dataset[2].meta.probe_id = 33;
  {
    atlas::EchoRecord r;
    r.probe_id = 33;
    r.hour = 7;
    r.family = atlas::Family::kV4;
    r.x_client_ip4 = *net::IPv4Address::parse("100.64.0.9");
    r.src_addr4 = *net::IPv4Address::parse("10.0.0.2");
    dataset[2].records.push_back(r);
  }

  std::stringstream ss;
  io::write_echo_dataset(ss, dataset);
  io::IngestStats stats;
  auto loaded = io::read_echo_dataset(ss, {}, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[0].meta.probe_id, 11u);
  EXPECT_EQ((*loaded)[0].meta.tags,
            (std::vector<core::TagId>{core::tag_pool().intern("system-anchor"),
                                      core::tag_pool().intern("datacentre")}));
  ASSERT_EQ((*loaded)[0].records.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*loaded)[0].records[i].hour, dataset[0].records[i].hour);
    EXPECT_EQ((*loaded)[0].records[i].family, dataset[0].records[i].family);
  }
  EXPECT_EQ((*loaded)[1].meta.probe_id, 22u);
  EXPECT_TRUE((*loaded)[1].records.empty());
  EXPECT_EQ((*loaded)[2].records.size(), 1u);
  EXPECT_EQ(stats.records_accepted, 5u);
  EXPECT_EQ(stats.total_rejects(), 0u);
  EXPECT_EQ(stats.headers_skipped, 1u);
}

TEST(Ingest, AssocDatasetRoundTripKeepsEmptyLogs) {
  std::vector<cdn::AssociationLog> dataset(2);
  dataset[0].asn = 3320;
  for (int d = 0; d < 3; ++d) {
    cdn::AssociationRecord r;
    r.day = std::uint32_t(d);
    r.v4_24 = *net::Prefix4::parse("80.1.2.0/24");
    r.v6_64 = *net::Prefix6::parse("2003:ec57:11:2200::/64");
    r.asn4 = r.asn6 = 3320;
    dataset[0].records.push_back(r);
  }
  dataset[1].asn = 5511;  // log with no observed associations

  std::stringstream ss;
  io::write_assoc_dataset(ss, dataset);
  io::IngestStats stats;
  auto loaded = io::read_assoc_dataset(ss, {}, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].asn, 3320u);
  EXPECT_EQ((*loaded)[0].records.size(), 3u);
  EXPECT_EQ((*loaded)[1].asn, 5511u);
  EXPECT_TRUE((*loaded)[1].records.empty());
  EXPECT_EQ(stats.records_accepted, 3u);
}

// ----------------------------------------------------- reject taxonomy

TEST(Ingest, EchoClassifiesEveryRejectReason) {
  const std::string input =
      "probe_id,hour,family,x_client_ip,src_addr\n"     // 1 header
      "1,0,4,80.1.2.3,192.168.1.5\n"                    // 2 accept
      "1,0,4\n"                                         // 3 bad_field_count
      "x,0,4,80.1.2.3,192.168.1.5\n"                    // 4 bad_number
      "1,999999,4,80.1.2.3,192.168.1.5\n"               // 5 out_of_range
      "1,1,4,80.1.2.999,192.168.1.5\n"                  // 6 bad_address
      "1,0,4,80.1.2.3,192.168.1.5\n"                    // 7 duplicate
      "1,2,5,80.1.2.3,192.168.1.5\n";                   // 8 bad family digit
  std::istringstream in(input);
  std::ostringstream quarantine;
  obs::MetricsSink metrics;
  ReaderOptions opts;
  opts.max_reject_fraction = 1.0;
  opts.quarantine = &quarantine;
  opts.source_label = "in.csv";
  opts.metrics = &metrics;

  io::IngestStats stats;
  auto loaded = io::read_echo_dataset(in, opts, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(stats.records_accepted, 1u);
  EXPECT_EQ(stats.rejects_for(RejectReason::kBadFieldCount), 1u);
  EXPECT_EQ(stats.rejects_for(RejectReason::kBadNumber), 2u);
  EXPECT_EQ(stats.rejects_for(RejectReason::kOutOfRange), 1u);
  EXPECT_EQ(stats.rejects_for(RejectReason::kBadAddress), 1u);
  EXPECT_EQ(stats.rejects_for(RejectReason::kDuplicate), 1u);
  EXPECT_EQ(stats.total_rejects(), 6u);
  EXPECT_EQ(stats.quarantined, 6u);

  // Quarantine rows carry source, exact 1-based line number, reason, text.
  const std::string q = quarantine.str();
  EXPECT_TRUE(contains(q, "in.csv,3,bad_field_count,1,0,4\n")) << q;
  EXPECT_TRUE(contains(q, "in.csv,4,bad_number,x,0,4,80.1.2.3,192.168.1.5\n"))
      << q;
  EXPECT_TRUE(
      contains(q, "in.csv,5,out_of_range,1,999999,4,80.1.2.3,192.168.1.5\n"))
      << q;
  EXPECT_TRUE(
      contains(q, "in.csv,6,bad_address,1,1,4,80.1.2.999,192.168.1.5\n"))
      << q;
  EXPECT_TRUE(
      contains(q, "in.csv,7,duplicate,1,0,4,80.1.2.3,192.168.1.5\n"))
      << q;
  EXPECT_TRUE(contains(q, "in.csv,8,bad_number,")) << q;

  // Per-reason counters use the reason name as the metric suffix.
  EXPECT_EQ(metrics.counter("ingest.reject.bad_field_count").value, 1u);
  EXPECT_EQ(metrics.counter("ingest.reject.bad_number").value, 2u);
  EXPECT_EQ(metrics.counter("ingest.reject.duplicate").value, 1u);
  EXPECT_EQ(metrics.counter("ingest.quarantined").value, 6u);
  EXPECT_EQ(metrics.counter("ingest.records").value, 1u);
  EXPECT_EQ(metrics.counter("ingest.lines").value, 8u);

  EXPECT_TRUE(contains(stats.summary(), "1 records"));
  EXPECT_TRUE(contains(stats.summary(), "6 rejected"));
}

TEST(Ingest, ToleratesCrlfBomAndRepeatedHeaders) {
  const std::string input =
      "\xEF\xBB\xBF"
      "day,v4_24,v6_64,asn4,asn6\r\n"
      "1,80.1.2.0/24,2003:ec57:11:2200::/64,3320,3320\r\n"
      "day,v4_24,v6_64,asn4,asn6\n"  // concatenated second export
      "\r\n"                         // blank line (CR only)
      "2,80.1.3.0/24,2003:ec57:11:2300::/64,3320,3320\n";
  std::istringstream in(input);
  io::IngestStats stats;
  auto loaded = io::read_assoc_dataset(in, {}, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].records.size(), 2u);
  EXPECT_EQ(stats.headers_skipped, 2u);
  EXPECT_EQ(stats.blank_lines, 1u);
  EXPECT_EQ(stats.total_rejects(), 0u);
}

TEST(Ingest, OversizeLineIsRejectedWithoutDerailingTheStream) {
  ReaderOptions opts;
  opts.max_line_bytes = 64;
  opts.max_reject_fraction = 1.0;
  std::string input =
      "probe_id,hour,family,x_client_ip,src_addr\n"
      "1,0,4,80.1.2.3,192.168.1.5\n";
  input += std::string(5000, 'A') + "\n";  // unterminated-junk stand-in
  input += "1,1,4,80.1.2.3,192.168.1.5\n";
  std::istringstream in(input);
  io::IngestStats stats;
  auto loaded = io::read_echo_dataset(in, opts, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(stats.records_accepted, 2u);
  EXPECT_EQ(stats.rejects_for(RejectReason::kOversizeLine), 1u);
  ASSERT_EQ(stats.first_rejects.size(), 1u);
  EXPECT_EQ(stats.first_rejects[0].line_number, 3u);
  // The kept text is a bounded prefix, never the whole 5000-byte line.
  EXPECT_LE(stats.first_rejects[0].text.size(), opts.keep_text_bytes);
}

// ---------------------------------------------------------- error budget

std::string echo_file_with_rejects(int accepts, int rejects) {
  std::string text = "probe_id,hour,family,x_client_ip,src_addr\n";
  int emitted_rejects = 0;
  for (int i = 0; i < accepts; ++i) {
    text += "1," + std::to_string(i) + ",4,80.1.2.3,192.168.1.5\n";
    if (emitted_rejects < rejects) {  // interleave to avoid consecutive cap
      text += "zzz\n";
      ++emitted_rejects;
    }
  }
  while (emitted_rejects < rejects) {
    text += "zzz\n";
    ++emitted_rejects;
  }
  return text;
}

TEST(Ingest, RejectFractionExactlyAtBudgetPasses) {
  // 95 accepts + 5 rejects = 100 data lines; budget 0.05 * 100 = 5.
  std::istringstream in(echo_file_with_rejects(95, 5));
  ReaderOptions opts;
  opts.max_reject_fraction = 0.05;
  io::IngestStats stats;
  auto loaded = io::read_echo_dataset(in, opts, &stats);
  EXPECT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(stats.data_lines, 100u);
  EXPECT_EQ(stats.total_rejects(), 5u);
}

TEST(Ingest, RejectFractionOneOverBudgetFailsWithOffenders) {
  // 94 accepts + 6 rejects = 100 data lines; 6 > 5 = budget.
  std::istringstream in(echo_file_with_rejects(94, 6));
  ReaderOptions opts;
  opts.max_reject_fraction = 0.05;
  io::IngestStats stats;
  auto loaded = io::read_echo_dataset(in, opts, &stats);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(contains(loaded.status().message(), "over budget"))
      << loaded.status().to_string();
  EXPECT_TRUE(contains(loaded.status().message(), "first offenders"))
      << loaded.status().to_string();
  EXPECT_TRUE(contains(loaded.status().message(), "zzz"))
      << loaded.status().to_string();
  EXPECT_TRUE(contains(loaded.status().message(), "load echo dataset"))
      << loaded.status().to_string();
  // Accounting is reported even on failure.
  EXPECT_EQ(stats.total_rejects(), 6u);
}

TEST(Ingest, ConsecutiveRejectCapFailsFast) {
  ReaderOptions opts;
  opts.max_reject_fraction = 1.0;
  opts.max_consecutive_rejects = 3;

  {  // exactly at the cap: fine
    std::istringstream in(
        "probe_id,hour,family,x_client_ip,src_addr\n"
        "zzz\nzzz\nzzz\n"
        "1,0,4,80.1.2.3,192.168.1.5\n");
    io::IngestStats stats;
    auto loaded = io::read_echo_dataset(in, opts, &stats);
    EXPECT_TRUE(loaded.ok()) << loaded.status().to_string();
    EXPECT_EQ(stats.records_accepted, 1u);
  }
  {  // one over: the reader trips mid-stream and never reaches the good tail
    std::istringstream in(
        "probe_id,hour,family,x_client_ip,src_addr\n"
        "zzz\nzzz\nzzz\nzzz\n"
        "1,0,4,80.1.2.3,192.168.1.5\n");
    io::IngestStats stats;
    auto loaded = io::read_echo_dataset(in, opts, &stats);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
    EXPECT_TRUE(contains(loaded.status().message(), "consecutive"))
        << loaded.status().to_string();
    EXPECT_EQ(stats.records_accepted, 0u);
  }
}

TEST(Ingest, AssocDuplicateIsAdjacentOnly) {
  const std::string dup = "1,80.1.2.0/24,2003:ec57:11:2200::/64,3320,3320";
  const std::string other = "1,80.1.3.0/24,2003:ec57:11:2300::/64,3320,3320";
  std::istringstream in("day,v4_24,v6_64,asn4,asn6\n" + dup + "\n" + dup +
                        "\n" + other + "\n" + dup + "\n");
  ReaderOptions opts;
  opts.max_reject_fraction = 1.0;
  opts.assoc_dedup_adjacent = true;
  io::IngestStats stats;
  auto loaded = io::read_assoc_dataset(in, opts, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  // Adjacent repeat rejected; the same tuple later in the file is a
  // legitimate re-observation and accepted.
  EXPECT_EQ(stats.records_accepted, 3u);
  EXPECT_EQ(stats.rejects_for(RejectReason::kDuplicate), 1u);

  // Default options keep repeats: multiplicity is data in our exports.
  std::istringstream in2("day,v4_24,v6_64,asn4,asn6\n" + dup + "\n" + dup +
                         "\n" + other + "\n" + dup + "\n");
  io::IngestStats defaults;
  auto loaded2 = io::read_assoc_dataset(in2, {}, &defaults);
  ASSERT_TRUE(loaded2.ok()) << loaded2.status().to_string();
  EXPECT_EQ(defaults.records_accepted, 4u);
  EXPECT_EQ(defaults.total_rejects(), 0u);
}

// ----------------------------------- file-driven studies vs. generators

TEST(FileStudy, AtlasExportReingestsToIdenticalResults) {
  core::AtlasStudyConfig gen_cfg;
  gen_cfg.atlas.probe_scale = 0.05;
  gen_cfg.atlas.window_hours = 6000;
  gen_cfg.atlas.seed = 7;
  gen_cfg.threads = 1;
  auto isps = simnet::paper_isps();
  isps.resize(3);
  const std::string want =
      atlas_signature(core::run_atlas_study(isps, gen_cfg));

  atlas::AtlasSimulator sim(isps, gen_cfg.atlas);
  std::vector<atlas::ProbeSeries> dataset;
  dataset.reserve(sim.probe_count());
  for (std::size_t i = 0; i < sim.probe_count(); ++i)
    dataset.push_back(sim.series_for(i));
  const fs::path path = temp_path("atlas_export.csv");
  {
    std::ofstream out(path, std::ios::binary);
    io::write_echo_dataset(out, dataset);
  }

  for (unsigned threads : {1u, 4u}) {
    core::AtlasFileStudyConfig cfg;
    cfg.threads = threads;
    io::IngestStats stats;
    auto study =
        core::run_atlas_study_from_files({path.string()}, isps, cfg, &stats);
    ASSERT_TRUE(study.ok()) << study.status().to_string();
    EXPECT_EQ(atlas_signature(*study), want) << "threads=" << threads;
    EXPECT_EQ(stats.total_rejects(), 0u);
    EXPECT_GT(stats.records_accepted, 0u);
  }
}

TEST(FileStudy, CdnExportReingestsToIdenticalResults) {
  core::CdnStudyConfig gen_cfg;
  gen_cfg.cdn.subscriber_scale = 0.05;
  gen_cfg.cdn.seed = 13;
  gen_cfg.threads = 1;
  auto population = cdn::default_cdn_population(0.05);
  const std::string want =
      cdn_signature(core::run_cdn_study(population, gen_cfg));

  cdn::CdnSimulator sim(population, gen_cfg.cdn);
  std::vector<cdn::AssociationLog> dataset;
  dataset.reserve(sim.entry_count());
  for (std::size_t i = 0; i < sim.entry_count(); ++i)
    dataset.push_back(sim.generate(i));
  const fs::path path = temp_path("cdn_export.csv");
  {
    std::ofstream out(path, std::ios::binary);
    io::write_assoc_dataset(out, dataset);
  }

  for (unsigned threads : {1u, 4u}) {
    core::CdnFileStudyConfig cfg;
    cfg.threads = threads;
    cfg.mobile_asns = sim.mobile_asns();
    for (const auto& entry : population) {
      cfg.registries[entry.isp.asn] = entry.isp.registry;
      cfg.asn_names[entry.isp.asn] = entry.isp.name;
    }
    io::IngestStats stats;
    auto study = core::run_cdn_study_from_files({path.string()}, cfg, &stats);
    ASSERT_TRUE(study.ok()) << study.status().to_string();
    EXPECT_EQ(cdn_signature(*study), want) << "threads=" << threads;
    EXPECT_EQ(stats.total_rejects(), 0u);
    EXPECT_GT(stats.records_accepted, 0u);
  }
}

// ---------------------------------------- corrupt → quarantine → strip

bool python3_available() {
  return std::system("python3 --version > /dev/null 2>&1") == 0;
}

TEST(FileStudy, CorruptedWithinBudgetMatchesQuarantineStrippedFile) {
  if (!python3_available()) GTEST_SKIP() << "python3 not on PATH";

  // Small but non-trivial export.
  atlas::AtlasConfig acfg;
  acfg.probe_scale = 0.02;
  acfg.window_hours = 3000;
  acfg.seed = 11;
  auto isps = simnet::paper_isps();
  isps.resize(3);
  atlas::AtlasSimulator sim(isps, acfg);
  std::vector<atlas::ProbeSeries> dataset;
  for (std::size_t i = 0; i < sim.probe_count(); ++i)
    dataset.push_back(sim.series_for(i));
  const fs::path clean = temp_path("ingest_clean.csv");
  {
    std::ofstream out(clean, std::ios::binary);
    io::write_echo_dataset(out, dataset);
  }

  // Deterministic damage via the checked-in fault injector.
  const fs::path corrupted = temp_path("ingest_corrupted.csv");
  const std::string cmd = "python3 '" +
                          (fs::path(DYNAMIPS_TOOLS_DIR) / "corrupt_csv.py")
                              .string() +
                          "' '" + clean.string() + "' '" +
                          corrupted.string() +
                          "' --seed 7 --rate 0.15 2> /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  // Load the corrupted file with an open budget, quarantining every reject.
  std::ostringstream quarantine;
  core::AtlasFileStudyConfig cfg;
  cfg.threads = 1;
  cfg.reader.max_reject_fraction = 1.0;
  cfg.reader.quarantine = &quarantine;
  io::IngestStats stats;
  auto corrupted_study = core::run_atlas_study_from_files(
      {corrupted.string()}, isps, cfg, &stats);
  ASSERT_TRUE(corrupted_study.ok()) << corrupted_study.status().to_string();
  ASSERT_GT(stats.total_rejects(), 0u) << "corruption produced no rejects; "
                                          "raise --rate";
  EXPECT_EQ(stats.quarantined, stats.total_rejects());

  // Every quarantine row names the real offending line: its kept text must
  // be a prefix of that exact line of the corrupted file.
  const std::vector<std::string> raw = read_lines(corrupted);
  std::set<std::uint64_t> quarantined_lines;
  std::istringstream qs(quarantine.str());
  std::string row;
  std::uint64_t rows = 0;
  while (std::getline(qs, row)) {
    ++rows;
    std::size_t c1 = row.find(',');
    std::size_t c2 = row.find(',', c1 + 1);
    std::size_t c3 = row.find(',', c2 + 1);
    ASSERT_NE(c3, std::string::npos) << row;
    EXPECT_EQ(row.substr(0, c1), corrupted.string());
    const std::uint64_t line_no = std::stoull(row.substr(c1 + 1, c2 - c1 - 1));
    const std::string kept = row.substr(c3 + 1);
    ASSERT_GE(line_no, 1u);
    ASSERT_LE(line_no, raw.size());
    EXPECT_EQ(raw[line_no - 1].substr(0, kept.size()), kept)
        << "quarantine line number " << line_no << " does not match";
    quarantined_lines.insert(line_no);
  }
  EXPECT_EQ(rows, stats.quarantined);

  // Strip exactly the quarantined lines; the result must analyze
  // byte-identically to the corrupted file (for every thread count).
  const fs::path stripped = temp_path("ingest_stripped.csv");
  {
    std::ofstream out(stripped, std::ios::binary);
    for (std::size_t i = 0; i < raw.size(); ++i)
      if (!quarantined_lines.count(i + 1)) out << raw[i] << '\n';
  }
  const std::string want = atlas_signature(*corrupted_study);
  {
    core::AtlasFileStudyConfig scfg;
    scfg.threads = 1;
    io::IngestStats sstats;
    auto stripped_study = core::run_atlas_study_from_files(
        {stripped.string()}, isps, scfg, &sstats);
    ASSERT_TRUE(stripped_study.ok()) << stripped_study.status().to_string();
    EXPECT_EQ(sstats.total_rejects(), 0u);
    EXPECT_EQ(atlas_signature(*stripped_study), want);
  }
  {
    core::AtlasFileStudyConfig pcfg;
    pcfg.threads = 4;
    pcfg.reader.max_reject_fraction = 1.0;
    auto parallel_study = core::run_atlas_study_from_files(
        {corrupted.string()}, isps, pcfg);
    ASSERT_TRUE(parallel_study.ok()) << parallel_study.status().to_string();
    EXPECT_EQ(atlas_signature(*parallel_study), want);
  }

  // The same corrupted file over a zero budget fails with a descriptive
  // DATA_LOSS status — identically for serial and pooled execution.
  for (unsigned threads : {1u, 4u}) {
    core::AtlasFileStudyConfig zcfg;
    zcfg.threads = threads;
    zcfg.reader.max_reject_fraction = 0.0;
    auto failed = core::run_atlas_study_from_files(
        {corrupted.string()}, isps, zcfg);
    ASSERT_FALSE(failed.ok()) << "threads=" << threads;
    EXPECT_EQ(failed.status().code(), StatusCode::kDataLoss);
    EXPECT_TRUE(contains(failed.status().message(), "over budget"))
        << failed.status().to_string();
    EXPECT_TRUE(contains(failed.status().message(), corrupted.string()))
        << failed.status().to_string();
  }
}

// -------------------------------------------------- failure propagation

TEST(FileStudy, MissingFileComesBackAsNotFound) {
  auto isps = simnet::paper_isps();
  isps.resize(1);
  core::AtlasFileStudyConfig cfg;
  cfg.threads = 1;
  const std::string path = "/nonexistent/dynamips/echo.csv";
  auto study = core::run_atlas_study_from_files({path}, isps, cfg);
  ASSERT_FALSE(study.ok());
  EXPECT_EQ(study.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(contains(study.status().message(), path))
      << study.status().to_string();

  core::CdnFileStudyConfig ccfg;
  ccfg.threads = 1;
  auto cdn_study = core::run_cdn_study_from_files({path}, ccfg);
  ASSERT_FALSE(cdn_study.ok());
  EXPECT_EQ(cdn_study.status().code(), StatusCode::kNotFound);
}

TEST(ShardExecutor, TryDispatchTurnsExceptionsIntoStatus) {
  for (unsigned threads : {1u, 4u}) {
    core::ShardExecutor exec(threads);
    std::atomic<int> ran{0};
    Status st = exec.try_dispatch(8, [&](std::size_t i) {
      ++ran;
      if (i == 3) throw std::runtime_error("boom");
    });
    ASSERT_FALSE(st.ok()) << "threads=" << threads;
    EXPECT_EQ(st.code(), StatusCode::kInternal);
    EXPECT_TRUE(contains(st.message(), "boom")) << st.to_string();
    // The drain contract: every task still ran despite the failure.
    EXPECT_EQ(ran.load(), 8);

    // The pool survives a failed dispatch and is reusable.
    std::atomic<int> again{0};
    EXPECT_TRUE(exec.try_dispatch(8, [&](std::size_t) { ++again; }).ok());
    EXPECT_EQ(again.load(), 8);

    Status odd = exec.try_dispatch(2, [](std::size_t) { throw 42; });
    ASSERT_FALSE(odd.ok());
    EXPECT_TRUE(contains(odd.message(), "non-standard")) << odd.to_string();
  }
}

}  // namespace
}  // namespace dynamips
