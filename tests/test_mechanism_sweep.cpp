// test_mechanism_sweep — parameterized cross-validation: for each
// renumbering period the paper reports (12 h ANTEL, 24 h German ISPs,
// 36 h Proximus, 48 h Global Village, 1 w Orange, 2 w BT), the
// protocol-level RADIUS machinery must produce duration distributions
// whose dominant mode the periodicity detector recovers at exactly that
// period.
#include <gtest/gtest.h>

#include "netaddr/rng.h"
#include "simnet/dhcpd.h"
#include "stats/periodicity.h"
#include "stats/ttf.h"

namespace dynamips::simnet {
namespace {

class MechanismSweep : public ::testing::TestWithParam<Hour> {};

TEST_P(MechanismSweep, RadiusSessionsYieldTheConfiguredPeriod) {
  Hour period = GetParam();
  V4AddressPlan plan({*net::Prefix4::parse("10.0.0.0/12")}, 0.05, 1.0);
  RadiusAllocator radius(plan, {.session_timeout = period}, period);
  net::Rng rng(period * 31);

  stats::TotalTimeFraction ttf;
  const Hour window = 80 * period;
  for (int sub = 0; sub < 50; ++sub) {
    std::vector<Hour> changes;
    net::IPv4Address prev{};
    Hour t = 0;
    Hour next_reboot = Hour(rng.exponential(double(kHoursPerYear) / 4));
    while (t < window) {
      auto session = radius.connect(ClientId(sub), t);
      if (session.addr != prev) changes.push_back(t);
      prev = session.addr;
      Hour end = session.timeout_at;
      if (next_reboot > t && next_reboot < end) {
        end = next_reboot;
        next_reboot = end + 1 + Hour(rng.exponential(
                                    double(kHoursPerYear) / 4));
      }
      t = end;
    }
    for (std::size_t i = 1; i + 1 < changes.size(); ++i)
      ttf.add(changes[i + 1] - changes[i]);
  }

  stats::PeriodicityDetector det;
  auto mode = det.dominant(ttf);
  // Candidate set must include the swept period.
  auto modes = det.detect(ttf, {period});
  ASSERT_FALSE(modes.empty()) << period;
  EXPECT_EQ(modes.front().period_hours, period);
  if (mode) {
    EXPECT_EQ(mode->period_hours, period);
  }
  EXPECT_GT(modes.front().time_fraction, 0.8);
}

INSTANTIATE_TEST_SUITE_P(PaperPeriods, MechanismSweep,
                         ::testing::Values(Hour(12), Hour(24), Hour(36),
                                           Hour(48), Hour(168), Hour(336)));

class LeaseMemorySweep : public ::testing::TestWithParam<bool> {};

TEST_P(LeaseMemorySweep, RememberedBindingsControlStability) {
  bool remember = GetParam();
  V4AddressPlan plan({*net::Prefix4::parse("10.0.0.0/12")}, 0.05, 1.0);
  Dhcp4Server v4(plan, {.lease_time = 24, .remember_expired = remember},
                 99);
  V6AddressPlan plan6({*net::Prefix6::parse("2003::/19")}, 40, 1.0);
  Dhcp6PdServer v6(plan6,
                   {.lease_time = 24, .delegation_len = 56,
                    .remember_expired = remember},
                   98);
  // CPEs with long outages that outlive the lease.
  int changes = 0, runs = 20;
  for (int sub = 0; sub < runs; ++sub) {
    CpeDriver cpe(v4, v6,
                  {.reboots_per_year = 24, .mean_downtime_hours = 72},
                  1000 + std::uint64_t(sub));
    auto obs = cpe.run(ClientId(sub), 0, 8760);
    changes += int(obs.v4.size()) - 1;
  }
  if (remember) {
    EXPECT_LT(changes, runs * 2)
        << "binding memory rides out outages (Comcast-style)";
  } else {
    EXPECT_GT(changes, runs * 5)
        << "forgetful servers renumber after every long outage";
  }
}

INSTANTIATE_TEST_SUITE_P(Memory, LeaseMemorySweep, ::testing::Bool());

}  // namespace
}  // namespace dynamips::simnet
