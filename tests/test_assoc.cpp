#include "core/assoc.h"

#include <gtest/gtest.h>

namespace dynamips::core {
namespace {

using net::Prefix4;
using net::Prefix6;

cdn::AssociationRecord rec(std::uint32_t day, const char* v4,
                           std::uint64_t net64, bgp::Asn asn4,
                           bgp::Asn asn6) {
  cdn::AssociationRecord r;
  r.day = day;
  r.v4_24 = *Prefix4::parse(v4);
  r.v6_64 = Prefix6{net::IPv6Address{net64, 0}, 64};
  r.asn4 = asn4;
  r.asn6 = asn6;
  return r;
}

cdn::AssociationLog log_of(std::vector<cdn::AssociationRecord> records,
                           bgp::Asn asn = 100,
                           bgp::Registry reg = bgp::Registry::kRipe) {
  cdn::AssociationLog log;
  log.asn = asn;
  log.registry = reg;
  log.records = std::move(records);
  return log;
}

TEST(Assoc, SingleRunDuration) {
  CdnAnalyzer an({}, {});
  an.add_log(log_of({rec(0, "10.0.0.0/24", 0x2001000000000100ull, 100, 100),
                     rec(5, "10.0.0.0/24", 0x2001000000000100ull, 100, 100),
                     rec(9, "10.0.0.0/24", 0x2001000000000100ull, 100, 100)}));
  const auto& stats = an.by_asn().at(100);
  ASSERT_EQ(stats.durations_days.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.durations_days[0], 10.0);  // days 0..9 inclusive
  EXPECT_EQ(stats.unique_64s, 1u);
  EXPECT_EQ(stats.tuples, 3u);
}

TEST(Assoc, RunBreaksOn24Change) {
  CdnAnalyzer an({}, {});
  an.add_log(log_of({rec(0, "10.0.0.0/24", 0x2001000000000100ull, 100, 100),
                     rec(3, "10.0.0.0/24", 0x2001000000000100ull, 100, 100),
                     rec(4, "10.0.9.0/24", 0x2001000000000100ull, 100, 100),
                     rec(8, "10.0.9.0/24", 0x2001000000000100ull, 100, 100)}));
  const auto& stats = an.by_asn().at(100);
  ASSERT_EQ(stats.durations_days.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.durations_days[0], 4.0);
  EXPECT_DOUBLE_EQ(stats.durations_days[1], 5.0);
}

TEST(Assoc, RunBreaksOnLongGap) {
  AssocOptions opts;
  opts.max_gap_days = 7;
  CdnAnalyzer an(opts, {});
  an.add_log(log_of({rec(0, "10.0.0.0/24", 0x2001000000000100ull, 100, 100),
                     rec(20, "10.0.0.0/24", 0x2001000000000100ull, 100, 100)}));
  const auto& stats = an.by_asn().at(100);
  ASSERT_EQ(stats.durations_days.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.durations_days[0], 1.0);
  EXPECT_DOUBLE_EQ(stats.durations_days[1], 1.0);
}

TEST(Assoc, AsnMismatchFiltered) {
  CdnAnalyzer an({}, {});
  an.add_log(log_of({rec(0, "10.0.0.0/24", 0x2001000000000100ull, 100, 100),
                     rec(1, "99.0.0.0/24", 0x2001000000000100ull, 999, 100),
                     rec(2, "10.0.0.0/24", 0x2001000000000100ull, 100, 100)}));
  const auto& stats = an.by_asn().at(100);
  EXPECT_EQ(stats.tuples, 2u);
  EXPECT_EQ(stats.mismatched, 1u);
  EXPECT_EQ(an.total_mismatched(), 1u);
  // The foreign /24 never entered the run: one unbroken association.
  ASSERT_EQ(stats.durations_days.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.durations_days[0], 3.0);
}

TEST(Assoc, AsnMismatchKeptWhenFilterDisabled) {
  AssocOptions opts;
  opts.require_asn_match = false;
  CdnAnalyzer an(opts, {});
  an.add_log(log_of({rec(0, "10.0.0.0/24", 0x2001000000000100ull, 100, 100),
                     rec(1, "99.0.0.0/24", 0x2001000000000100ull, 999, 100),
                     rec(2, "10.0.0.0/24", 0x2001000000000100ull, 100, 100)}));
  const auto& stats = an.by_asn().at(100);
  EXPECT_EQ(stats.tuples, 3u);
  // The ablation: the foreign /24 splits the association into three runs.
  EXPECT_EQ(stats.durations_days.size(), 3u);
}

TEST(Assoc, DegreesCountUnique64sPer24) {
  CdnAnalyzer an({}, {});
  an.add_log(log_of({rec(0, "10.0.0.0/24", 0x2001000000000100ull, 100, 100),
                     rec(0, "10.0.0.0/24", 0x2001000000000200ull, 100, 100),
                     rec(1, "10.0.0.0/24", 0x2001000000000100ull, 100, 100),
                     rec(1, "10.0.9.0/24", 0x2001000000000300ull, 100, 100)}));
  auto degrees = an.degrees();
  ASSERT_EQ(degrees.size(), 2u);
  std::uint32_t d0 = degrees[0].first, d1 = degrees[1].first;
  EXPECT_EQ(d0 + d1, 3u);
  EXPECT_EQ(std::max(d0, d1), 2u);
}

TEST(Assoc, MobileClassification) {
  CdnAnalyzer an({}, {200});
  auto mobile_log = log_of(
      {rec(0, "10.0.0.0/24", 0x2001000000000100ull, 200, 200)}, 200);
  mobile_log.mobile = true;
  an.add_log(mobile_log);
  an.add_log(log_of({rec(0, "11.0.0.0/24", 0x2002000000000100ull, 100, 100)}));
  EXPECT_TRUE(an.by_asn().at(200).mobile);
  EXPECT_FALSE(an.by_asn().at(100).mobile);
  ASSERT_EQ(an.degrees().size(), 2u);
  int mobile_degrees = 0;
  for (auto& [d, m] : an.degrees()) mobile_degrees += m;
  EXPECT_EQ(mobile_degrees, 1);
}

TEST(Assoc, RegistryDurationsGrouped) {
  CdnAnalyzer an({}, {200});
  an.add_log(log_of({rec(0, "10.0.0.0/24", 0x2001000000000100ull, 100, 100)},
                    100, bgp::Registry::kArin));
  an.add_log(log_of({rec(0, "11.0.0.0/24", 0x2002000000000100ull, 200, 200)},
                    200, bgp::Registry::kArin));
  EXPECT_EQ(an.registry_durations()
                .at(RegistryClass{bgp::Registry::kArin, false})
                .size(),
            1u);
  EXPECT_EQ(an.registry_durations()
                .at(RegistryClass{bgp::Registry::kArin, true})
                .size(),
            1u);
}

TEST(Assoc, SingleVsMulti24Fractions) {
  CdnAnalyzer an({}, {});
  an.add_log(log_of({rec(0, "10.0.0.0/24", 0x1100ull, 100, 100),
                     rec(1, "10.0.1.0/24", 0x1100ull, 100, 100),
                     rec(0, "10.0.0.0/24", 0x2200ull, 100, 100),
                     rec(1, "10.0.0.0/24", 0x3300ull, 100, 100)}));
  // /64 0x1100 saw two /24s; 0x2200 and 0x3300 saw one each.
  EXPECT_NEAR(an.fraction_64s_with_single_24(false), 2.0 / 3.0, 1e-9);
}

TEST(Assoc, ZeroCountsPerUnique64) {
  CdnAnalyzer an({}, {});
  an.add_log(log_of({rec(0, "10.0.0.0/24", 0x2001000000000100ull, 100, 100),
                     rec(1, "10.0.0.0/24", 0x2001000000000100ull, 100, 100),
                     rec(0, "10.0.0.0/24", 0x2001000000000123ull, 100, 100)}));
  const auto& z = an.zero_counts().at(
      RegistryClass{bgp::Registry::kRipe, false});
  EXPECT_EQ(z.total(), 2u) << "classification is per unique /64";
  EXPECT_EQ(z.counts[std::size_t(ZeroBoundary::k56)], 1u);
  EXPECT_EQ(z.counts[std::size_t(ZeroBoundary::kNone)], 1u);
}

TEST(Assoc, MultipleLogsAccumulate) {
  CdnAnalyzer an({}, {});
  an.add_log(log_of({rec(0, "10.0.0.0/24", 0x100ull, 100, 100)}));
  an.add_log(log_of({rec(0, "11.0.0.0/24", 0x200ull, 101, 101)}, 101));
  EXPECT_EQ(an.total_tuples(), 2u);
  EXPECT_EQ(an.by_asn().size(), 2u);
}

TEST(Assoc, OutOfOrderSameDayRecordsHandled) {
  CdnAnalyzer an({}, {});
  // Two observations the same day with the same /24: one run.
  an.add_log(log_of({rec(3, "10.0.0.0/24", 0x500ull, 100, 100),
                     rec(3, "10.0.0.0/24", 0x500ull, 100, 100)}));
  const auto& stats = an.by_asn().at(100);
  ASSERT_EQ(stats.durations_days.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.durations_days[0], 1.0);
}

}  // namespace
}  // namespace dynamips::core
