#include "netaddr/u128.h"

#include <gtest/gtest.h>

namespace dynamips::net {
namespace {

TEST(U128, DefaultIsZero) {
  U128 v;
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.countl_zero(), 128);
  EXPECT_EQ(v.countr_zero(), 128);
}

TEST(U128, Ordering) {
  EXPECT_LT((U128{0, 1}), (U128{1, 0}));
  EXPECT_LT((U128{1, 0}), (U128{1, 1}));
  EXPECT_EQ((U128{3, 4}), (U128{3, 4}));
}

TEST(U128, ShiftLeftAcrossHalves) {
  U128 v{0, 1};
  EXPECT_EQ((v << 64), (U128{1, 0}));
  EXPECT_EQ((v << 127), (U128{0x8000000000000000ull, 0}));
  EXPECT_EQ((v << 128), (U128{}));
  EXPECT_EQ((v << 0), v);
  U128 w{0, 0xffffffffffffffffull};
  EXPECT_EQ((w << 4), (U128{0xf, 0xfffffffffffffff0ull}));
}

TEST(U128, ShiftRightAcrossHalves) {
  U128 v{1, 0};
  EXPECT_EQ((v >> 64), (U128{0, 1}));
  U128 top{0x8000000000000000ull, 0};
  EXPECT_EQ((top >> 127), (U128{0, 1}));
  EXPECT_EQ((top >> 128), (U128{}));
  U128 w{0xffffffffffffffffull, 0};
  EXPECT_EQ((w >> 4), (U128{0x0fffffffffffffffull, 0xf000000000000000ull}));
}

TEST(U128, AddWithCarry) {
  U128 a{0, 0xffffffffffffffffull};
  EXPECT_EQ((a + U128{0, 1}), (U128{1, 0}));
  EXPECT_EQ((U128{2, 3} + U128{4, 5}), (U128{6, 8}));
}

TEST(U128, SubWithBorrow) {
  U128 a{1, 0};
  EXPECT_EQ((a - U128{0, 1}), (U128{0, 0xffffffffffffffffull}));
  EXPECT_EQ((U128{6, 8} - U128{4, 5}), (U128{2, 3}));
}

TEST(U128, CountlZero) {
  EXPECT_EQ((U128{0x8000000000000000ull, 0}).countl_zero(), 0);
  EXPECT_EQ((U128{1, 0}).countl_zero(), 63);
  EXPECT_EQ((U128{0, 0x8000000000000000ull}).countl_zero(), 64);
  EXPECT_EQ((U128{0, 1}).countl_zero(), 127);
}

TEST(U128, CountrZero) {
  EXPECT_EQ((U128{0, 1}).countr_zero(), 0);
  EXPECT_EQ((U128{0, 2}).countr_zero(), 1);
  EXPECT_EQ((U128{1, 0}).countr_zero(), 64);
  EXPECT_EQ((U128{0x8000000000000000ull, 0}).countr_zero(), 127);
}

TEST(U128, BitMsb) {
  U128 v{0x8000000000000000ull, 1};
  EXPECT_TRUE(v.bit_msb(0));
  EXPECT_FALSE(v.bit_msb(1));
  EXPECT_TRUE(v.bit_msb(127));
  EXPECT_FALSE(v.bit_msb(126));
}

TEST(U128, Mask) {
  EXPECT_EQ(mask128(0), (U128{}));
  EXPECT_EQ(mask128(64), (U128{~0ull, 0}));
  EXPECT_EQ(mask128(128), (U128{~0ull, ~0ull}));
  EXPECT_EQ(mask128(1), (U128{0x8000000000000000ull, 0}));
  EXPECT_EQ(mask128(65), (U128{~0ull, 0x8000000000000000ull}));
}

TEST(U128, MaskRoundTripEveryLength) {
  for (unsigned len = 0; len <= 128; ++len) {
    U128 m = mask128(len);
    // A mask of length len has exactly len leading ones.
    EXPECT_EQ((~m).countl_zero(), int(len)) << len;
  }
}

TEST(U128, BitwiseOps) {
  U128 a{0xf0f0, 0x1234}, b{0x0ff0, 0x00ff};
  EXPECT_EQ((a & b), (U128{0x00f0, 0x0034}));
  EXPECT_EQ((a | b), (U128{0xfff0, 0x12ff}));
  EXPECT_EQ((a ^ b), (U128{0xff00, 0x12cb}));
}

}  // namespace
}  // namespace dynamips::net
