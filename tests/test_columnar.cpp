// test_columnar — the out-of-core columnar batch format (io/columnar.h):
// encode/decode round-trips that reproduce the CSV readers' semantics
// exactly, end-to-end study byte-identity between `.csv` and `.col` inputs
// at multiple thread counts, structural-corruption rejection (flipped
// bytes, truncations, kind/version skew — kDataLoss/kFailedPrecondition,
// never a crash), and the shared row-level error budget: columnar decode
// failures count against the same RejectLedger budgets as CSV line
// rejects.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "atlas/generator.h"
#include "cdn/generator.h"
#include "core/pipeline.h"
#include "io/checkpoint.h"
#include "io/columnar.h"
#include "io/readers.h"
#include "io/results_io.h"
#include "simnet/isp.h"

namespace dynamips {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

void write_raw(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), std::streamsize(bytes.size()));
  ASSERT_TRUE(os.good());
}

std::vector<atlas::ProbeSeries> echo_fixture(double scale = 0.05) {
  atlas::AtlasConfig cfg;
  cfg.probe_scale = scale;
  cfg.window_hours = 6000;
  cfg.seed = 7;
  auto isps = simnet::paper_isps();
  isps.resize(3);
  atlas::AtlasSimulator sim(isps, cfg);
  std::vector<atlas::ProbeSeries> out;
  out.reserve(sim.probe_count());
  for (std::size_t i = 0; i < sim.probe_count(); ++i)
    out.push_back(sim.series_for(i));
  return out;
}

std::vector<cdn::AssociationLog> assoc_fixture(double scale = 0.05) {
  cdn::CdnConfig cfg;
  cfg.subscriber_scale = scale;
  cfg.seed = 13;
  cdn::CdnSimulator sim(cdn::default_cdn_population(scale), cfg);
  std::vector<cdn::AssociationLog> out;
  out.reserve(sim.entry_count());
  for (std::size_t i = 0; i < sim.entry_count(); ++i)
    out.push_back(sim.generate(i));
  return out;
}

std::string atlas_bytes(const core::AtlasStudy& s) {
  std::ostringstream os;
  io::write_duration_curves_csv(os, s);
  io::write_cpl_csv(os, s);
  io::write_bgp_moves_csv(os, s);
  io::write_inference_csv(os, s);
  return os.str();
}

std::string cdn_bytes(const core::CdnStudy& s) {
  std::ostringstream os;
  io::write_assoc_durations_csv(os, s);
  io::write_degrees_csv(os, s);
  io::write_zero_boundaries_csv(os, s);
  return os.str();
}

// ------------------------------------------------------------ round trips

TEST(ColumnarCodec, EchoRoundTripPreservesEverything) {
  auto dataset = echo_fixture();
  ASSERT_FALSE(dataset.empty());
  std::string bytes = io::encode_echo_columnar(dataset);
  auto back = io::decode_echo_columnar(bytes);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  ASSERT_EQ(back.value().size(), dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto& a = dataset[i];
    const auto& b = back.value()[i];
    EXPECT_EQ(a.meta.probe_id, b.meta.probe_id);
    EXPECT_EQ(a.meta.tags, b.meta.tags);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t r = 0; r < a.records.size(); ++r) {
      EXPECT_EQ(a.records[r].hour, b.records[r].hour);
      EXPECT_EQ(a.records[r].family, b.records[r].family);
      EXPECT_EQ(a.records[r].x_client_ip4.value(),
                b.records[r].x_client_ip4.value());
      EXPECT_EQ(a.records[r].src_addr4.value(),
                b.records[r].src_addr4.value());
      EXPECT_EQ(a.records[r].x_client_ip6.bits().hi,
                b.records[r].x_client_ip6.bits().hi);
      EXPECT_EQ(a.records[r].src_addr6.bits().lo,
                b.records[r].src_addr6.bits().lo);
    }
  }
}

TEST(ColumnarCodec, AssocRoundTripPreservesEverything) {
  auto dataset = assoc_fixture();
  ASSERT_FALSE(dataset.empty());
  std::string bytes = io::encode_assoc_columnar(dataset);
  auto back = io::decode_assoc_columnar(bytes);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  ASSERT_EQ(back.value().size(), dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto& a = dataset[i];
    const auto& b = back.value()[i];
    EXPECT_EQ(a.asn, b.asn);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t r = 0; r < a.records.size(); ++r) {
      EXPECT_EQ(a.records[r].day, b.records[r].day);
      EXPECT_EQ(a.records[r].v4_24.address().value(),
                b.records[r].v4_24.address().value());
      EXPECT_EQ(a.records[r].v4_24.length(), b.records[r].v4_24.length());
      EXPECT_EQ(a.records[r].v6_64.address().bits().hi,
                b.records[r].v6_64.address().bits().hi);
      EXPECT_EQ(a.records[r].asn4, b.records[r].asn4);
      EXPECT_EQ(a.records[r].asn6, b.records[r].asn6);
    }
  }
}

TEST(ColumnarCodec, EmptyDatasetsRoundTrip) {
  auto echo = io::decode_echo_columnar(io::encode_echo_columnar({}));
  ASSERT_TRUE(echo.ok()) << echo.status().to_string();
  EXPECT_TRUE(echo.value().empty());
  auto assoc = io::decode_assoc_columnar(io::encode_assoc_columnar({}));
  ASSERT_TRUE(assoc.ok()) << assoc.status().to_string();
  EXPECT_TRUE(assoc.value().empty());
}

// The per-column CRCs in the directory must be the same polynomial as
// ckpt::crc32 (IEEE/zlib) so one checksum convention covers the whole
// persistence layer. Verify by recomputing a directory entry's CRC with
// the checkpoint codec's reference implementation.
TEST(ColumnarCodec, ColumnCrcsMatchCheckpointCrc32) {
  auto dataset = echo_fixture(0.02);
  std::string bytes = io::encode_echo_columnar(dataset);
  ASSERT_GT(bytes.size(), 48u);
  auto u32_at = [&](std::size_t off) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= std::uint32_t(std::uint8_t(bytes[off + std::size_t(i)]))
           << (8 * i);
    return v;
  };
  auto u64_at = [&](std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= std::uint64_t(std::uint8_t(bytes[off + std::size_t(i)]))
           << (8 * i);
    return v;
  };
  const std::uint32_t ncols = u32_at(32);
  ASSERT_GT(ncols, 0u);
  std::size_t checked = 0;
  for (std::uint32_t c = 0; c < ncols; ++c) {
    const std::size_t entry = 36 + std::size_t(c) * 24;
    const std::uint64_t offset = u64_at(entry + 4);
    const std::uint64_t length = u64_at(entry + 12);
    const std::uint32_t crc = u32_at(entry + 20);
    ASSERT_LE(offset + length, bytes.size());
    EXPECT_EQ(crc, io::ckpt::crc32(std::string_view(bytes)
                                       .substr(offset, length)))
        << "column " << c;
    ++checked;
  }
  EXPECT_EQ(checked, ncols);
  // Header CRC too: everything before the trailing u32 of the header.
  const std::size_t header_size = 36 + std::size_t(ncols) * 24 + 4;
  EXPECT_EQ(u32_at(header_size - 4),
            io::ckpt::crc32(
                std::string_view(bytes).substr(0, header_size - 4)));
}

// ------------------------------------------------------ corruption safety

// Flip a sample of single bytes across the file. Every flip must either be
// rejected (kDataLoss for structural damage, kFailedPrecondition for
// version/kind skew) or — only for bytes in CRC-free alignment padding —
// decode to the identical dataset. Never a crash, never silently wrong.
TEST(ColumnarCorruption, SampledByteFlipsNeverYieldWrongData) {
  auto dataset = assoc_fixture(0.02);
  const std::string clean = io::encode_assoc_columnar(dataset);
  auto reference = io::decode_assoc_columnar(clean);
  ASSERT_TRUE(reference.ok());
  const std::size_t stride = clean.size() > 4096 ? clean.size() / 4096 : 1;
  for (std::size_t pos = 0; pos < clean.size(); pos += stride) {
    std::string bent = clean;
    bent[pos] = char(std::uint8_t(bent[pos]) ^ 0x20);
    auto out = io::decode_assoc_columnar(bent);
    if (out.ok()) {
      // Padding byte: tolerated, but the payload must be untouched.
      ASSERT_EQ(out.value().size(), reference.value().size())
          << "flip at " << pos;
      continue;
    }
    EXPECT_TRUE(out.status().code() == core::StatusCode::kDataLoss ||
                out.status().code() == core::StatusCode::kFailedPrecondition)
        << "flip at " << pos << ": " << out.status().to_string();
  }
}

TEST(ColumnarCorruption, EveryTruncationRejected) {
  const std::string clean = io::encode_echo_columnar(echo_fixture(0.02));
  const std::size_t stride = clean.size() > 512 ? clean.size() / 512 : 1;
  for (std::size_t keep = 0; keep < clean.size(); keep += stride) {
    auto out = io::decode_echo_columnar(clean.substr(0, keep));
    EXPECT_FALSE(out.ok()) << "truncated to " << keep;
    if (!out.ok()) {
      EXPECT_EQ(out.status().code(), core::StatusCode::kDataLoss)
          << "truncated to " << keep << ": " << out.status().to_string();
    }
  }
}

TEST(ColumnarCorruption, KindMismatchIsFailedPrecondition) {
  const std::string echo = io::encode_echo_columnar(echo_fixture(0.02));
  auto out = io::decode_assoc_columnar(echo);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), core::StatusCode::kFailedPrecondition);
}

TEST(ColumnarCorruption, VersionSkewIsFailedPrecondition) {
  std::string bytes = io::encode_echo_columnar(echo_fixture(0.02));
  // Patch the version field (offset 8) and re-seal the header CRC so the
  // *only* defect is the version — must be kFailedPrecondition ("rebuild
  // the file"), not kDataLoss ("the file is damaged").
  bytes[8] = 2;
  auto u32_at = [&](std::size_t off) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= std::uint32_t(std::uint8_t(bytes[off + std::size_t(i)]))
           << (8 * i);
    return v;
  };
  const std::uint32_t ncols = u32_at(32);
  const std::size_t header_size = 36 + std::size_t(ncols) * 24 + 4;
  const std::uint32_t crc = io::ckpt::crc32(
      std::string_view(bytes).substr(0, header_size - 4));
  for (int i = 0; i < 4; ++i)
    bytes[header_size - 4 + std::size_t(i)] = char((crc >> (8 * i)) & 0xFF);
  auto out = io::decode_echo_columnar(bytes);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), core::StatusCode::kFailedPrecondition)
      << out.status().to_string();
}

TEST(ColumnarFiles, MissingFileIsNotFound) {
  auto out = io::read_echo_columnar(temp_path("never_written.col"));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), core::StatusCode::kNotFound);
}

TEST(ColumnarFiles, ExtensionDispatch) {
  EXPECT_TRUE(io::is_columnar_path("batch-000.col"));
  EXPECT_FALSE(io::is_columnar_path("batch-000.csv"));
  EXPECT_FALSE(io::is_columnar_path("colfile.txt"));
  EXPECT_FALSE(io::is_columnar_path("col"));
}

// ------------------------------------------------- shared reject ledger

// Row-level implausibilities in a columnar batch count against the SAME
// error budget as CSV line rejects: the consecutive-reject cap and the
// reject-fraction budget trip with the same kDataLoss statuses.
TEST(ColumnarBudget, ConsecutiveRejectCapTrips) {
  std::vector<atlas::ProbeSeries> dataset(1);
  dataset[0].meta.probe_id = 42;
  for (std::uint64_t i = 0; i < 40; ++i) {
    atlas::EchoRecord rec;
    rec.probe_id = 42;
    rec.hour = 1000000 + i;  // far over ReaderOptions::max_hour
    rec.family = atlas::Family::kV4;
    dataset[0].records.push_back(rec);
  }
  io::ReaderOptions opts;
  opts.max_consecutive_rejects = 10;
  io::IngestStats stats;
  auto out = io::decode_echo_columnar(io::encode_echo_columnar(dataset),
                                      opts, &stats);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), core::StatusCode::kDataLoss);
  EXPECT_GT(stats.rejects_for(io::RejectReason::kOutOfRange), 0u);
}

TEST(ColumnarBudget, RejectFractionBudgetTrips) {
  std::vector<cdn::AssociationLog> dataset(1);
  dataset[0].asn = 7;
  for (std::uint32_t i = 0; i < 100; ++i) {
    cdn::AssociationRecord rec;
    rec.day = i < 10 ? 9000000u : i;  // 10% out of range vs 1% budget
    rec.asn4 = 7;
    rec.asn6 = 7;
    dataset[0].records.push_back(rec);
  }
  io::ReaderOptions opts;
  opts.max_consecutive_rejects = 1000;  // don't trip the cap, only budget
  io::IngestStats stats;
  auto out = io::decode_assoc_columnar(io::encode_assoc_columnar(dataset),
                                       opts, &stats);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), core::StatusCode::kDataLoss);
  EXPECT_EQ(stats.rejects_for(io::RejectReason::kOutOfRange), 10u);
  EXPECT_EQ(stats.records_accepted, 90u);
}

TEST(ColumnarBudget, QuarantineReceivesDecimalRendering) {
  std::vector<cdn::AssociationLog> dataset(1);
  dataset[0].asn = 7;
  cdn::AssociationRecord bad;
  bad.day = 9000000;
  bad.asn4 = 1;
  bad.asn6 = 2;
  dataset[0].records.push_back(bad);
  cdn::AssociationRecord good;
  good.day = 5;
  good.asn4 = 1;
  good.asn6 = 2;
  for (int i = 0; i < 200; ++i) {
    good.day = std::uint32_t(5 + i);
    dataset[0].records.push_back(good);
  }
  std::ostringstream qt;
  io::ReaderOptions opts;
  opts.quarantine = &qt;
  opts.source_label = "unit.col";
  io::IngestStats stats;
  auto out = io::decode_assoc_columnar(io::encode_assoc_columnar(dataset),
                                       opts, &stats);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_NE(qt.str().find("unit.col"), std::string::npos);
  EXPECT_NE(qt.str().find("out_of_range"), std::string::npos);
  EXPECT_NE(qt.str().find("9000000"), std::string::npos);
}

// --------------------------------------- end-to-end study byte-identity
//
// The acceptance criterion for the format: feeding the studies from `.col`
// files produces result CSVs byte-identical to the `.csv` path, at thread
// counts 1 and 4.

TEST(ColumnarStudy, AtlasCsvAndColumnarByteIdentical) {
  auto dataset = echo_fixture();
  const std::string csv_path = temp_path("atlas_in.csv");
  {
    std::ofstream os(csv_path, std::ios::trunc);
    io::write_echo_dataset(os, dataset);
  }
  const std::string col_path = temp_path("atlas_in.col");
  ASSERT_TRUE(io::write_echo_columnar(col_path, dataset).ok());

  auto isps = simnet::paper_isps();
  isps.resize(3);
  std::string reference;
  for (unsigned threads : {1u, 4u}) {
    core::AtlasFileStudyConfig cfg;
    cfg.threads = threads;
    auto from_csv =
        core::run_atlas_study_from_files({csv_path}, isps, cfg);
    ASSERT_TRUE(from_csv.ok()) << from_csv.status().to_string();
    io::IngestStats stats;
    auto from_col =
        core::run_atlas_study_from_files({col_path}, isps, cfg, &stats);
    ASSERT_TRUE(from_col.ok()) << from_col.status().to_string();
    EXPECT_EQ(atlas_bytes(from_col.value()), atlas_bytes(from_csv.value()))
        << "threads=" << threads;
    EXPECT_GT(stats.records_accepted, 0u);
    if (reference.empty())
      reference = atlas_bytes(from_csv.value());
    else
      EXPECT_EQ(atlas_bytes(from_csv.value()), reference);
  }
}

TEST(ColumnarStudy, CdnCsvAndColumnarByteIdentical) {
  auto dataset = assoc_fixture();
  const std::string csv_path = temp_path("cdn_in.csv");
  {
    std::ofstream os(csv_path, std::ios::trunc);
    io::write_assoc_dataset(os, dataset);
  }
  const std::string col_path = temp_path("cdn_in.col");
  ASSERT_TRUE(io::write_assoc_columnar(col_path, dataset).ok());

  for (unsigned threads : {1u, 4u}) {
    core::CdnFileStudyConfig cfg;
    cfg.threads = threads;
    auto from_csv = core::run_cdn_study_from_files({csv_path}, cfg);
    ASSERT_TRUE(from_csv.ok()) << from_csv.status().to_string();
    auto from_col = core::run_cdn_study_from_files({col_path}, cfg);
    ASSERT_TRUE(from_col.ok()) << from_col.status().to_string();
    EXPECT_EQ(cdn_bytes(from_col.value()), cdn_bytes(from_csv.value()))
        << "threads=" << threads;
  }
}

// A damaged columnar file fed through the study path fails the run with
// kDataLoss — the same contract as an over-budget CSV — and never crashes.
TEST(ColumnarStudy, CorruptBatchFailsStudyCleanly) {
  auto dataset = assoc_fixture(0.02);
  std::string bytes = io::encode_assoc_columnar(dataset);
  bytes[bytes.size() / 2] ^= 0x41;
  const std::string path = temp_path("cdn_bent.col");
  write_raw(path, bytes);
  core::CdnFileStudyConfig cfg;
  cfg.threads = 1;
  auto out = core::run_cdn_study_from_files({path}, cfg);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), core::StatusCode::kDataLoss)
      << out.status().to_string();
}

}  // namespace
}  // namespace dynamips
