#include "simnet/cgnat.h"

#include <gtest/gtest.h>

#include <set>

namespace dynamips::simnet {
namespace {

using net::Prefix4;

CgnatGateway small_gateway(CgnatGateway::Config cfg = {},
                           std::uint64_t seed = 1) {
  return CgnatGateway({*Prefix4::parse("100.64.0.0/24")}, cfg, seed);
}

TEST(Cgnat, CapacityArithmetic) {
  auto gw = small_gateway({.block_size = 2048, .first_port = 1024,
                           .mapping_timeout = 24});
  // (65536 - 1024) / 2048 = 31 subscribers per address; 254 addresses.
  EXPECT_EQ(gw.capacity_per_address(), 31u);
  EXPECT_EQ(gw.total_capacity(), 31u * 254u);
}

TEST(Cgnat, EgressInsidePool) {
  auto gw = small_gateway();
  auto block = *Prefix4::parse("100.64.0.0/24");
  for (std::uint64_t sub = 0; sub < 100; ++sub) {
    auto addr = gw.egress_for(sub, 0);
    ASSERT_TRUE(addr.has_value());
    EXPECT_TRUE(block.contains(*addr));
  }
}

TEST(Cgnat, ActiveMappingIsStable) {
  auto gw = small_gateway({.block_size = 2048, .first_port = 1024,
                           .mapping_timeout = 24});
  auto a = gw.egress_for(7, 0);
  ASSERT_TRUE(a.has_value());
  // Keep-alive traffic every few hours: egress never changes.
  for (Hour h = 4; h < 100; h += 4) EXPECT_EQ(gw.egress_for(7, h), a);
}

TEST(Cgnat, IdleMappingReclaimed) {
  auto gw = small_gateway({.block_size = 2048, .first_port = 1024,
                           .mapping_timeout = 24});
  gw.egress_for(7, 0);
  EXPECT_EQ(gw.active_mappings(), 1u);
  // Silent past the timeout: the next flow gets a fresh allocation.
  gw.egress_for(7, 100);
  EXPECT_EQ(gw.active_mappings(), 1u);
}

TEST(Cgnat, ManySubscribersShareOneAddress) {
  auto gw = small_gateway({.block_size = 2048, .first_port = 1024,
                           .mapping_timeout = 24});
  std::set<std::uint32_t> addrs;
  for (std::uint64_t sub = 0; sub < 200; ++sub) {
    auto a = gw.egress_for(sub, 0);
    ASSERT_TRUE(a.has_value());
    addrs.insert(a->value());
  }
  // 200 subscribers fit on ~7 addresses at 31 per address, spread randomly.
  EXPECT_LT(addrs.size(), 200u);
  // Multiplexing degree: at least one address carries several subscribers.
  std::size_t max_on = 0;
  for (auto v : addrs)
    max_on = std::max(max_on, gw.subscribers_on(net::IPv4Address{v}));
  EXPECT_GT(max_on, 1u);
}

TEST(Cgnat, ExhaustionReturnsNullopt) {
  CgnatGateway gw({*Prefix4::parse("100.64.0.0/30")},
                  {.block_size = 32000, .first_port = 1024,
                   .mapping_timeout = 1000},
                  2);
  // /30 yields 2 usable addresses x 2 blocks = 4 subscribers.
  ASSERT_EQ(gw.total_capacity(), 4u);
  for (std::uint64_t sub = 0; sub < 4; ++sub)
    EXPECT_TRUE(gw.egress_for(sub, 0).has_value());
  EXPECT_FALSE(gw.egress_for(99, 0).has_value());
  // After the idle timeout everything is reclaimable again.
  EXPECT_TRUE(gw.egress_for(99, 2000).has_value());
}

TEST(Cgnat, PortBlocksDontOverlap) {
  // Fill one address worth of blocks and check the port ranges partition.
  CgnatGateway gw({*Prefix4::parse("100.64.0.0/30")},
                  {.block_size = 16128, .first_port = 1024,
                   .mapping_timeout = 24},
                  3);
  EXPECT_EQ(gw.capacity_per_address(), 4u);
  std::size_t ok = 0;
  for (std::uint64_t sub = 0; sub < gw.total_capacity(); ++sub)
    ok += gw.egress_for(sub, 0).has_value();
  EXPECT_EQ(ok, gw.total_capacity());
  EXPECT_EQ(gw.active_mappings(), gw.total_capacity());
}

TEST(Cgnat, ReassignmentAfterIdleCanMove) {
  auto gw = small_gateway({.block_size = 2048, .first_port = 1024,
                           .mapping_timeout = 12},
                          4);
  // With many other subscribers churning, an idle-reclaimed subscriber's
  // next allocation lands elsewhere with high probability.
  auto first = gw.egress_for(0, 0);
  for (std::uint64_t sub = 1; sub < 60; ++sub) gw.egress_for(sub, 13);
  int moved = 0, trials = 20;
  for (int t = 0; t < trials; ++t) {
    auto again = gw.egress_for(0, Hour(26 * (t + 1)));
    ASSERT_TRUE(again.has_value());
    moved += *again != *first;
    // go idle again
  }
  EXPECT_GT(moved, 0) << "CGNAT egress is not sticky across idle periods";
}

}  // namespace
}  // namespace dynamips::simnet
