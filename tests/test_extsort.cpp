// test_extsort — the external-merge sorter (stats/extsort.h) and the
// CdnAnalyzer spill path it powers: drain order must equal one global
// std::stable_sort at EVERY memory budget (tiny = many runs, exact-fit,
// huge = never spills), the analyzer must produce byte-identical study
// results with and without spilling at thread counts 1 and 4, and an
// interrupted spilled run must resume to the same bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cdn/generator.h"
#include "core/assoc.h"
#include "core/pipeline.h"
#include "core/shutdown.h"
#include "io/checkpoint.h"
#include "io/results_io.h"
#include "stats/extsort.h"

namespace dynamips {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// ------------------------------------------------------------ sorter unit

struct KeySeq {
  std::uint32_t key;
  std::uint32_t seq;
};
struct KeyLess {
  bool operator()(const KeySeq& a, const KeySeq& b) const {
    return a.key < b.key;  // seq deliberately ignored: ties test stability
  }
};

std::vector<KeySeq> make_input(std::size_t n, std::uint32_t distinct_keys) {
  std::mt19937 rng(42);
  std::vector<KeySeq> input;
  input.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    input.push_back({std::uint32_t(rng() % distinct_keys), i});
  return input;
}

void check_budget(std::uint64_t budget_bytes, std::size_t n,
                  std::uint32_t distinct_keys, bool expect_spill) {
  auto input = make_input(n, distinct_keys);
  auto expected = input;
  std::stable_sort(expected.begin(), expected.end(), KeyLess{});

  stats::ExternalSorter<KeySeq, KeyLess> sorter(
      {budget_bytes, ::testing::TempDir()});
  for (const auto& v : input) sorter.push(v);
  EXPECT_EQ(sorter.size(), n);

  std::vector<KeySeq> drained;
  drained.reserve(n);
  sorter.drain([&](const KeySeq& v) { drained.push_back(v); });
  if (expect_spill)
    EXPECT_GT(sorter.spilled_runs(), 0u) << "budget=" << budget_bytes;
  else
    EXPECT_EQ(sorter.spilled_runs(), 0u) << "budget=" << budget_bytes;

  ASSERT_EQ(drained.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(drained[i].key, expected[i].key) << "i=" << i;
    ASSERT_EQ(drained[i].seq, expected[i].seq)
        << "i=" << i << " (stability violated: equal keys reordered)";
  }
}

TEST(ExternalSorter, TinyBudgetManyRuns) {
  // ~37 elements per run over 10k elements: hundreds of runs merged.
  check_budget(300, 10000, 50, true);
}

TEST(ExternalSorter, ExactFitBudgetSingleSpill) {
  // Capacity equals the element count: the buffer fills exactly and one
  // boundary push decides spill-vs-not. 10k elements, 8 bytes each.
  check_budget(10000 * sizeof(KeySeq), 10000, 50, false);
  check_budget(9999 * sizeof(KeySeq), 10000, 50, true);
}

TEST(ExternalSorter, HugeBudgetStaysInMemory) {
  check_budget(std::uint64_t(1) << 30, 10000, 50, false);
  check_budget(0, 10000, 50, false);  // 0 = unbounded
}

TEST(ExternalSorter, AllEqualKeysPreservePushOrder) {
  check_budget(128, 5000, 1, true);
}

TEST(ExternalSorter, EmptyDrain) {
  stats::ExternalSorter<KeySeq, KeyLess> sorter({64, ::testing::TempDir()});
  std::size_t emitted = 0;
  sorter.drain([&](const KeySeq&) { ++emitted; });
  EXPECT_EQ(emitted, 0u);
  EXPECT_EQ(sorter.spilled_runs(), 0u);
}

TEST(ExternalSorter, RunFilesAreRemovedOnDestruction) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "extsort_cleanup")
          .string();
  std::filesystem::create_directories(dir);
  {
    stats::ExternalSorter<KeySeq, KeyLess> sorter({100, dir});
    for (std::uint32_t i = 0; i < 1000; ++i) sorter.push({i % 7, i});
    EXPECT_GT(sorter.spilled_runs(), 0u);
    // Destructor must clean up even when drain() never ran (abandoned
    // sort, e.g. an analysis error unwound past it).
  }
  std::size_t leftovers = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    (void)entry, ++leftovers;
  EXPECT_EQ(leftovers, 0u);
}

// --------------------------------------------------- analyzer spill path

std::string cdn_bytes(const core::CdnStudy& s) {
  std::ostringstream os;
  io::write_assoc_durations_csv(os, s);
  io::write_degrees_csv(os, s);
  io::write_zero_boundaries_csv(os, s);
  return os.str();
}

core::CdnStudyConfig spill_config(unsigned threads, std::uint64_t spill_mb) {
  core::CdnStudyConfig cfg;
  cfg.cdn.subscriber_scale = 0.05;
  cfg.cdn.seed = 13;
  cfg.threads = threads;
  cfg.assoc.spill_mb = spill_mb;
  cfg.assoc.spill_dir = ::testing::TempDir();
  return cfg;
}

// A single oversized log drives the per-log sorters far past a 1 MB
// budget, so the spill path demonstrably runs — and must reproduce the
// in-memory analyzer's state exactly (same snapshot blob, same counters).
TEST(AnalyzerSpill, BigLogSpillsAndMatchesInMemory) {
  cdn::CdnConfig cfg;
  cfg.subscriber_scale = 0.1;
  cfg.seed = 99;
  cdn::CdnSimulator sim(cdn::default_cdn_population(0.1), cfg);
  ASSERT_GT(sim.entry_count(), 0u);
  // Concatenate every simulated log into one: a single log bigger than
  // the 1 MB budget's ~32k-tuple buffer, guaranteeing the spill runs.
  cdn::AssociationLog log = sim.generate(0);
  for (std::size_t i = 1; i < sim.entry_count(); ++i) {
    cdn::AssociationLog more = sim.generate(i);
    log.records.insert(log.records.end(), more.records.begin(),
                       more.records.end());
  }
  ASSERT_GT(log.records.size(), 40000u);

  core::AssocOptions in_memory;
  core::CdnAnalyzer a(in_memory, {});
  a.add_log(log);
  EXPECT_EQ(a.spill_runs(), 0u);

  core::AssocOptions spilled;
  spilled.spill_mb = 1;
  spilled.spill_dir = ::testing::TempDir();
  core::CdnAnalyzer b(spilled, {});
  b.add_log(log);
  EXPECT_GT(b.spill_runs(), 0u) << "budget did not force a spill";

  io::ckpt::Writer wa, wb;
  a.save(wa);
  b.save(wb);
  EXPECT_EQ(wa.buffer(), wb.buffer())
      << "spilled analyzer state diverged from in-memory";
  EXPECT_EQ(a.total_tuples(), b.total_tuples());
}

// Study-level byte-identity: every budget in {tiny, exact-ish, huge} and
// both thread counts must produce the same result CSVs as the in-memory
// run (spill_mb=0).
TEST(AnalyzerSpill, StudyByteIdenticalAcrossBudgetsAndThreads) {
  auto population = cdn::default_cdn_population(0.05);
  std::string reference =
      cdn_bytes(core::run_cdn_study(population, spill_config(1, 0)));
  for (std::uint64_t spill_mb : {1ull, 8ull, 4096ull}) {
    for (unsigned threads : {1u, 4u}) {
      auto study =
          core::run_cdn_study(population, spill_config(threads, spill_mb));
      EXPECT_EQ(cdn_bytes(study), reference)
          << "spill_mb=" << spill_mb << " threads=" << threads;
    }
  }
}

// Kill-and-resume mid-spill: interrupt the spilled study at every round
// boundary, resume from the freshly written checkpoint each time (re-read
// from disk like a new process), and the completed result must be
// byte-identical to an uninterrupted in-memory run. Mirrors
// test_checkpoint's chain_resume at spill_mb=1.
TEST(AnalyzerSpill, InterruptedSpilledRunResumesByteIdentical) {
  auto population = cdn::default_cdn_population(0.05);
  std::string reference =
      cdn_bytes(core::run_cdn_study(population, spill_config(1, 0)));

  const std::string path = temp_path("cdn_spill_chain.ckpt");
  io::remove_checkpoint_files(path);
  std::optional<io::StudyCheckpoint> ck;
  int interrupts = 0;
  core::CdnStudy final_study;
  for (;;) {
    core::ShutdownToken token;
    token.request();  // cancel at the first round boundary
    core::CheckpointConfig cc;
    cc.every_items = 1;
    cc.path = path;
    cc.token = &token;
    cc.resume = ck ? &*ck : nullptr;
    auto result = core::run_cdn_study_supervised(
        population, spill_config(2, 1), cc);
    if (result.ok()) {
      final_study = result.take();
      break;
    }
    ASSERT_EQ(result.status().code(), core::StatusCode::kCancelled)
        << result.status().to_string();
    auto loaded = io::read_checkpoint_with_fallback(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
    ck = loaded.take();
    ASSERT_LT(++interrupts, 10000) << "resume chain does not converge";
  }
  EXPECT_GT(interrupts, 1) << "test never actually interrupted the study";
  EXPECT_EQ(cdn_bytes(final_study), reference);
  io::remove_checkpoint_files(path);
}

}  // namespace
}  // namespace dynamips
