// test_properties — cross-cutting property sweeps: U128 arithmetic against
// the compiler's native 128-bit integers, algebraic laws of the
// common-prefix-length, and determinism of the full pipeline.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "netaddr/ipv6.h"
#include "netaddr/rng.h"
#include "netaddr/u128.h"
#include "simnet/isp.h"

namespace dynamips {
namespace {

using net::IPv6Address;
using net::Rng;
using net::U128;

unsigned __int128 to_native(const U128& v) {
  return (static_cast<unsigned __int128>(v.hi) << 64) | v.lo;
}

U128 from_native(unsigned __int128 v) {
  return U128{std::uint64_t(v >> 64), std::uint64_t(v)};
}

class U128Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(U128Fuzz, MatchesNativeInt128) {
  Rng rng(GetParam());
  for (int i = 0; i < 20000; ++i) {
    U128 a{rng.next_u64(), rng.next_u64()};
    U128 b{rng.next_u64(), rng.next_u64()};
    // Sprinkle in structured values (zeros, masks) for edge coverage.
    if (i % 5 == 0) a = net::mask128(unsigned(rng.uniform(129)));
    if (i % 7 == 0) b = U128{};
    unsigned __int128 na = to_native(a), nb = to_native(b);
    EXPECT_EQ(from_native(na), a) << "round-trip";

    EXPECT_EQ(to_native(a + b),
              static_cast<unsigned __int128>(na + nb));
    EXPECT_EQ(to_native(a - b),
              static_cast<unsigned __int128>(na - nb));
    EXPECT_EQ(to_native(a & b), na & nb);
    EXPECT_EQ(to_native(a | b), na | nb);
    EXPECT_EQ(to_native(a ^ b), na ^ nb);
    EXPECT_EQ(to_native(~a), static_cast<unsigned __int128>(~na));
    EXPECT_EQ(a < b, na < nb);
    EXPECT_EQ(a == b, na == nb);

    unsigned sh = unsigned(rng.uniform(129));
    unsigned __int128 nshl = sh >= 128 ? 0 : (na << sh);
    unsigned __int128 nshr = sh >= 128 ? 0 : (na >> sh);
    EXPECT_EQ(to_native(a << sh), nshl) << sh;
    EXPECT_EQ(to_native(a >> sh), nshr) << sh;

    // countl/countr against a naive bit scan.
    int clz = 128, crz = 128;
    for (int bit = 0; bit < 128; ++bit) {
      if ((na >> (127 - bit)) & 1) {
        clz = bit;
        break;
      }
    }
    for (int bit = 0; bit < 128; ++bit) {
      if ((na >> bit) & 1) {
        crz = bit;
        break;
      }
    }
    EXPECT_EQ(a.countl_zero(), clz);
    EXPECT_EQ(a.countr_zero(), crz);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, U128Fuzz, ::testing::Values(1u, 2u, 99u));

TEST(CplProperties, SymmetryIdentityAndBound) {
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    IPv6Address a{U128{rng.next_u64(), rng.next_u64()}};
    IPv6Address b{U128{rng.next_u64(), rng.next_u64()}};
    int ab = net::common_prefix_length(a, b);
    EXPECT_EQ(ab, net::common_prefix_length(b, a));
    EXPECT_GE(ab, 0);
    EXPECT_LE(ab, 128);
    EXPECT_EQ(net::common_prefix_length(a, a), 128);
    // The shared prefix really is shared.
    if (ab > 0) {
      U128 mask = net::mask128(unsigned(ab));
      EXPECT_EQ(a.bits() & mask, b.bits() & mask);
    }
    // And the next bit differs (unless identical).
    if (ab < 128) {
      EXPECT_NE(a.bits().bit_msb(unsigned(ab)),
                b.bits().bit_msb(unsigned(ab)));
    }
  }
}

TEST(CplProperties, UltrametricInequality) {
  // CPL satisfies cpl(a,c) >= min(cpl(a,b), cpl(b,c)).
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    std::uint64_t a = rng.next_u64(), b = rng.next_u64(),
                  c = rng.next_u64();
    if (i % 3 == 0) b = a ^ (1ull << rng.uniform(64));  // near misses
    int ab = net::common_prefix_length64(a, b);
    int bc = net::common_prefix_length64(b, c);
    int ac = net::common_prefix_length64(a, c);
    EXPECT_GE(ac, std::min(ab, bc));
  }
}

TEST(PipelineProperties, AtlasStudyDeterministic) {
  core::AtlasStudyConfig cfg;
  cfg.atlas.probe_scale = 0.05;
  cfg.atlas.window_hours = 5000;
  auto isps = std::vector<simnet::IspProfile>{*simnet::find_isp("DTAG"),
                                              *simnet::find_isp("Orange")};
  auto a = core::run_atlas_study(isps, cfg);
  auto b = core::run_atlas_study(isps, cfg);
  ASSERT_EQ(a.durations.size(), b.durations.size());
  for (const auto& [asn, d] : a.durations) {
    const auto& e = b.durations.at(asn);
    EXPECT_EQ(d.v4_changes, e.v4_changes);
    EXPECT_EQ(d.v6_changes, e.v6_changes);
    EXPECT_EQ(d.probes, e.probes);
    EXPECT_EQ(d.v4_nds.total_hours(), e.v4_nds.total_hours());
  }
  EXPECT_EQ(a.sanitize.probes_kept, b.sanitize.probes_kept);
}

TEST(PipelineProperties, SeedChangesResults) {
  core::AtlasStudyConfig cfg;
  cfg.atlas.probe_scale = 0.05;
  cfg.atlas.window_hours = 5000;
  auto isps = std::vector<simnet::IspProfile>{*simnet::find_isp("DTAG")};
  auto a = core::run_atlas_study(isps, cfg);
  cfg.atlas.seed = 2;
  auto b = core::run_atlas_study(isps, cfg);
  EXPECT_NE(a.durations.at(3320).v4_changes,
            b.durations.at(3320).v4_changes);
}

TEST(PipelineProperties, CdnStudyDeterministic) {
  core::CdnStudyConfig cfg;
  cfg.cdn.subscriber_scale = 0.02;
  cfg.cdn.days = 20;
  auto pop = cdn::default_cdn_population(0.02);
  auto a = core::run_cdn_study(pop, cfg);
  auto b = core::run_cdn_study(pop, cfg);
  EXPECT_EQ(a.analyzer.total_tuples(), b.analyzer.total_tuples());
  EXPECT_EQ(a.analyzer.total_mismatched(), b.analyzer.total_mismatched());
  ASSERT_EQ(a.analyzer.degrees().size(), b.analyzer.degrees().size());
}

TEST(PipelineProperties, TotalTimeConservation) {
  // The total assignment time accumulated per AS can never exceed the
  // probes' total observed time.
  core::AtlasStudyConfig cfg;
  cfg.atlas.probe_scale = 0.05;
  cfg.atlas.window_hours = 8000;
  auto isps = std::vector<simnet::IspProfile>{*simnet::find_isp("DTAG")};
  auto study = core::run_atlas_study(isps, cfg);
  const auto& d = study.durations.at(3320);
  std::uint64_t accumulated = d.v4_nds.total_hours() +
                              d.v4_ds.total_hours();
  EXPECT_LE(accumulated, d.probes * cfg.atlas.window_hours);
}

}  // namespace
}  // namespace dynamips
