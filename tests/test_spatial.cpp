#include "core/spatial.h"

#include <gtest/gtest.h>

namespace dynamips::core {
namespace {

using net::IPv4Address;
using net::IPv6Address;

bgp::Rib test_rib() {
  bgp::Rib rib;
  rib.announce(*net::Prefix4::parse("10.0.0.0/8"),
               {100, bgp::Registry::kRipe});
  rib.announce(*net::Prefix4::parse("20.0.0.0/8"),
               {100, bgp::Registry::kRipe});
  rib.announce(*net::Prefix6::parse("2001:100::/32"),
               {100, bgp::Registry::kRipe});
  rib.announce(*net::Prefix6::parse("2001:200::/32"),
               {100, bgp::Registry::kRipe});
  return rib;
}

CleanProbe probe_with_v4(std::initializer_list<const char*> addrs) {
  CleanProbe cp;
  cp.probe_id = 1;
  cp.asn = 100;
  Hour h = 0;
  for (const char* a : addrs)
    cp.v4.push_back({h++, *IPv4Address::parse(a), false});
  return cp;
}

CleanProbe probe_with_v6(std::initializer_list<const char*> addrs) {
  CleanProbe cp;
  cp.probe_id = 1;
  cp.asn = 100;
  Hour h = 0;
  for (const char* a : addrs)
    cp.v6.push_back({h++, *IPv6Address::parse(a), true});
  return cp;
}

TEST(Spatial, V4Diff24Counting) {
  auto rib = test_rib();
  SpatialAnalyzer an(rib);
  an.add_probe(probe_with_v4(
      {"10.0.1.1", "10.0.1.2", "10.0.2.1", "10.9.1.1"}));
  const auto& s = an.by_as().at(100);
  EXPECT_EQ(s.v4_changes, 3u);
  EXPECT_EQ(s.v4_diff_24, 2u) << "1->2 stays in /24; others leave";
  EXPECT_EQ(s.v4_diff_bgp, 0u);
  EXPECT_NEAR(s.pct_v4_diff_24(), 66.7, 0.1);
}

TEST(Spatial, V4DiffBgpCounting) {
  auto rib = test_rib();
  SpatialAnalyzer an(rib);
  an.add_probe(probe_with_v4({"10.0.1.1", "20.0.1.1", "20.5.1.1"}));
  const auto& s = an.by_as().at(100);
  EXPECT_EQ(s.v4_changes, 2u);
  EXPECT_EQ(s.v4_diff_bgp, 1u);
  EXPECT_EQ(s.pct_v4_diff_bgp(), 50.0);
}

TEST(Spatial, CplHistogram) {
  auto rib = test_rib();
  SpatialAnalyzer an(rib);
  // Paper's own example: 2604:...aa00 -> 2604:...aaf0 has CPL 56. Use our
  // announced space with the same offsets.
  an.add_probe(probe_with_v6(
      {"2001:100:4b80:aa00::1", "2001:100:4b80:aaf0::1"}));
  const auto& s = an.by_as().at(100);
  EXPECT_EQ(s.v6_changes, 1u);
  EXPECT_EQ(s.cpl.changes[56], 1u);
  EXPECT_EQ(s.cpl.probes[56], 1u);
  EXPECT_EQ(s.cpl.total_changes(), 1u);
}

TEST(Spatial, CplProbeCountsOncePerValue) {
  auto rib = test_rib();
  SpatialAnalyzer an(rib);
  // Three changes with the same CPL from one probe: changes=3, probes=1.
  an.add_probe(probe_with_v6({"2001:100::1", "2001:100:0:1::1",
                              "2001:100::1", "2001:100:0:1::1"}));
  const auto& s = an.by_as().at(100);
  int cpl = net::common_prefix_length64(0x2001010000000000ull,
                                        0x2001010000000001ull);
  EXPECT_EQ(s.cpl.changes[std::size_t(cpl)], 3u);
  EXPECT_EQ(s.cpl.probes[std::size_t(cpl)], 1u);
}

TEST(Spatial, V6DiffBgp) {
  auto rib = test_rib();
  SpatialAnalyzer an(rib);
  an.add_probe(
      probe_with_v6({"2001:100:1::1", "2001:200:1::1", "2001:200:2::1"}));
  const auto& s = an.by_as().at(100);
  EXPECT_EQ(s.v6_changes, 2u);
  EXPECT_EQ(s.v6_diff_bgp, 1u);
  EXPECT_EQ(s.pct_v6_diff_bgp(), 50.0);
}

TEST(Spatial, UniquePrefixCounts) {
  auto rib = test_rib();
  SpatialAnalyzer an(rib);
  // Two /64s in the same /48, one further /48 in the same /40.
  an.add_probe(probe_with_v6({"2001:100:4b80:aa00::1",
                              "2001:100:4b80:bb00::1",
                              "2001:100:4b90:cc00::1"}));
  const auto& s = an.by_as().at(100);
  ASSERT_EQ(s.unique_prefixes.at(64).size(), 1u);
  EXPECT_EQ(s.unique_prefixes.at(64)[0], 3u);
  EXPECT_EQ(s.unique_prefixes.at(48)[0], 2u);
  EXPECT_EQ(s.unique_prefixes.at(40)[0], 1u);
  EXPECT_EQ(s.unique_prefixes.at(32)[0], 1u);
  ASSERT_EQ(s.unique_bgp.size(), 1u);
  EXPECT_EQ(s.unique_bgp[0], 1u);
}

TEST(Spatial, UniqueBgpAcrossAnnouncements) {
  auto rib = test_rib();
  SpatialAnalyzer an(rib);
  an.add_probe(probe_with_v6({"2001:100:1::1", "2001:200:1::1"}));
  const auto& s = an.by_as().at(100);
  EXPECT_EQ(s.unique_bgp[0], 2u);
}

TEST(Spatial, NoV6NoFig8Entry) {
  auto rib = test_rib();
  SpatialAnalyzer an(rib);
  an.add_probe(probe_with_v4({"10.0.1.1", "10.0.2.1"}));
  const auto& s = an.by_as().at(100);
  EXPECT_TRUE(s.unique_prefixes.empty());
  EXPECT_TRUE(s.unique_bgp.empty());
}

TEST(Spatial, AggregatesAcrossProbes) {
  auto rib = test_rib();
  SpatialAnalyzer an(rib);
  an.add_probe(probe_with_v6({"2001:100::1", "2001:100:0:1::1"}));
  auto second = probe_with_v6({"2001:100::1", "2001:100:0:1::1"});
  second.probe_id = 2;
  an.add_probe(second);
  const auto& s = an.by_as().at(100);
  int cpl = net::common_prefix_length64(0x2001010000000000ull,
                                        0x2001010000000001ull);
  EXPECT_EQ(s.cpl.changes[std::size_t(cpl)], 2u);
  EXPECT_EQ(s.cpl.probes[std::size_t(cpl)], 2u);
  EXPECT_EQ(s.unique_prefixes.at(64).size(), 2u);
}

}  // namespace
}  // namespace dynamips::core
