#include "atlas/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "netaddr/iid.h"

namespace dynamips::atlas {
namespace {

AtlasSimulator small_sim(std::uint64_t seed = 5, double scale = 0.1) {
  AtlasConfig cfg;
  cfg.window_hours = 6000;
  cfg.probe_scale = scale;
  cfg.seed = seed;
  return AtlasSimulator(simnet::paper_isps(), cfg);
}

TEST(Atlas, ProbeCountsScaleWithTable1) {
  auto sim = small_sim();
  EXPECT_GT(sim.probe_count(), 200u);
  // At scale 0.1 DTAG should field ~59 probes.
  std::size_t dtag = 0;
  for (std::size_t i = 0; i < sim.probe_count(); ++i)
    dtag += sim.isps()[sim.probe(i).isp_index].name == "DTAG";
  EXPECT_NEAR(double(dtag), 58.0, 2.0);
}

TEST(Atlas, ProbeIdsUnique) {
  auto sim = small_sim();
  std::set<std::uint32_t> ids;
  for (std::size_t i = 0; i < sim.probe_count(); ++i)
    EXPECT_TRUE(ids.insert(sim.probe(i).probe_id).second);
}

TEST(Atlas, SeriesSortedAndWithinDeployment) {
  auto sim = small_sim();
  for (std::size_t i = 0; i < 40; ++i) {
    const ProbeInfo& info = sim.probe(i);
    ProbeSeries s = sim.series_for(i);
    EXPECT_EQ(s.meta.probe_id, info.probe_id);
    Hour prev = 0;
    for (const auto& r : s.records) {
      EXPECT_GE(r.hour, info.join);
      EXPECT_LT(r.hour, info.leave);
      EXPECT_GE(r.hour, prev);
      prev = r.hour;
      EXPECT_EQ(r.probe_id, info.probe_id);
    }
  }
}

TEST(Atlas, Deterministic) {
  auto a = small_sim(9);
  auto b = small_sim(9);
  ASSERT_EQ(a.probe_count(), b.probe_count());
  auto sa = a.series_for(3);
  auto sb = b.series_for(3);
  ASSERT_EQ(sa.records.size(), sb.records.size());
  for (std::size_t i = 0; i < sa.records.size(); ++i) {
    EXPECT_EQ(sa.records[i].hour, sb.records[i].hour);
    EXPECT_EQ(sa.records[i].x_client_ip4, sb.records[i].x_client_ip4);
  }
}

TEST(Atlas, NormalProbeUsesPrivateSrcAndEui64) {
  auto sim = small_sim();
  for (std::size_t i = 0; i < sim.probe_count(); ++i) {
    const ProbeInfo& info = sim.probe(i);
    if (info.role != ProbeRole::kNormal || info.privacy_iid) continue;
    EXPECT_TRUE(net::is_eui64_iid(info.probe_iid));
    ProbeSeries s = sim.series_for(i);
    for (const auto& r : s.records) {
      if (r.family == Family::kV4) {
        EXPECT_TRUE(r.src_addr4.is_rfc1918());
      } else {
        EXPECT_EQ(r.src_addr6, r.x_client_ip6);
        EXPECT_EQ(r.x_client_ip6.iid(), info.probe_iid)
            << "probes use their stable EUI-64 IID";
      }
    }
    break;  // one normal probe suffices for the detailed scan
  }
}

TEST(Atlas, PublicSrcProbeViolatesNatExpectation) {
  auto sim = small_sim();
  bool found = false;
  for (std::size_t i = 0; i < sim.probe_count() && !found; ++i) {
    if (sim.probe(i).role != ProbeRole::kPublicSrc) continue;
    found = true;
    ProbeSeries s = sim.series_for(i);
    for (const auto& r : s.records) {
      if (r.family == Family::kV4) {
        EXPECT_EQ(r.src_addr4, r.x_client_ip4);
      }
    }
  }
  EXPECT_TRUE(found) << "expected at least one public-src probe";
}

TEST(Atlas, TestAddressAppearsAtHead) {
  auto sim = small_sim();
  int with_test = 0;
  for (std::size_t i = 0; i < sim.probe_count(); ++i) {
    if (!sim.probe(i).starts_with_test_addr) continue;
    if (sim.probe(i).role == ProbeRole::kMultihomed) continue;
    ProbeSeries s = sim.series_for(i);
    for (const auto& r : s.records) {
      if (r.family != Family::kV4) continue;
      EXPECT_EQ(r.x_client_ip4, ripe_test_address());
      ++with_test;
      break;
    }
    if (with_test > 10) break;
  }
  EXPECT_GT(with_test, 0);
}

TEST(Atlas, MultihomedProbeAlternatesBetweenTwoIsps) {
  auto sim = small_sim();
  bgp::Rib rib;
  simnet::announce_all(sim.isps(), rib);
  bool found = false;
  for (std::size_t i = 0; i < sim.probe_count() && !found; ++i) {
    const ProbeInfo& info = sim.probe(i);
    if (info.role != ProbeRole::kMultihomed) continue;
    ProbeSeries s = sim.series_for(i);
    if (s.records.size() < 100) continue;
    found = true;
    std::set<bgp::Asn> asns;
    int transitions = 0;
    bgp::Asn prev = 0;
    for (const auto& r : s.records) {
      if (r.family != Family::kV4) continue;
      bgp::Asn asn = rib.asn_of(r.x_client_ip4);
      asns.insert(asn);
      if (prev && asn != prev) ++transitions;
      prev = asn;
    }
    EXPECT_EQ(asns.size(), 2u);
    EXPECT_GT(transitions, 10) << "multihomed probes alternate constantly";
  }
  EXPECT_TRUE(found);
}

TEST(Atlas, AsSwitchProbeMovesOnce) {
  auto sim = small_sim();
  bgp::Rib rib;
  simnet::announce_all(sim.isps(), rib);
  bool found = false;
  for (std::size_t i = 0; i < sim.probe_count() && !found; ++i) {
    const ProbeInfo& info = sim.probe(i);
    if (info.role != ProbeRole::kAsSwitch) continue;
    ProbeSeries s = sim.series_for(i);
    if (s.records.size() < 100) continue;
    found = true;
    for (const auto& r : s.records) {
      if (r.family != Family::kV4) continue;
      if (r.x_client_ip4 == ripe_test_address()) continue;
      bgp::Asn asn = rib.asn_of(r.x_client_ip4);
      bgp::Asn expected = r.hour < info.switch_hour
                              ? sim.isps()[info.isp_index].asn
                              : sim.isps()[info.second_isp_index].asn;
      EXPECT_EQ(asn, expected) << "hour " << r.hour;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Atlas, BadTagProbesCarryBadTags) {
  auto sim = small_sim();
  bool found = false;
  for (std::size_t i = 0; i < sim.probe_count(); ++i) {
    if (sim.probe(i).role != ProbeRole::kBadTag) continue;
    found = true;
    ProbeSeries s = sim.series_for(i);
    EXPECT_GE(s.meta.tags.size(), 2u);
  }
  EXPECT_TRUE(found);
}

TEST(Atlas, ShortLivedProbesAreShort) {
  auto sim = small_sim();
  for (std::size_t i = 0; i < sim.probe_count(); ++i) {
    const ProbeInfo& info = sim.probe(i);
    if (info.role == ProbeRole::kShortLived) {
      EXPECT_LT(info.leave - info.join, 730u);
    }
  }
}

TEST(Atlas, TimelineMatchesSeriesForNormalProbe) {
  auto sim = small_sim();
  for (std::size_t i = 0; i < sim.probe_count(); ++i) {
    const ProbeInfo& info = sim.probe(i);
    if (info.role != ProbeRole::kNormal || info.starts_with_test_addr)
      continue;
    auto tl = sim.timeline_for(i);
    ProbeSeries s = sim.series_for(i);
    for (const auto& r : s.records) {
      if (r.family != Family::kV4) continue;
      // Find the ground-truth segment and compare.
      for (const auto& seg : tl.v4) {
        if (r.hour >= seg.start && r.hour < seg.end) {
          EXPECT_EQ(r.x_client_ip4, seg.addr);
        }
      }
    }
    break;
  }
}

}  // namespace
}  // namespace dynamips::atlas
