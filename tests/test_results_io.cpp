#include "io/results_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "io/csv.h"
#include "simnet/isp.h"

namespace dynamips::io {
namespace {

const core::AtlasStudy& tiny_atlas_study() {
  static core::AtlasStudy study = [] {
    core::AtlasStudyConfig cfg;
    cfg.atlas.probe_scale = 0.05;
    cfg.atlas.window_hours = 6000;
    return core::run_atlas_study(
        {*simnet::find_isp("DTAG"), *simnet::find_isp("Comcast")}, cfg);
  }();
  return study;
}

const core::CdnStudy& tiny_cdn_study() {
  static core::CdnStudy study = [] {
    core::CdnStudyConfig cfg;
    cfg.cdn.subscriber_scale = 0.02;
    cfg.cdn.days = 30;
    return core::run_cdn_study(cdn::default_cdn_population(0.02), cfg);
  }();
  return study;
}

// Parse a CSV body: returns rows (skipping header), each as fields.
std::vector<std::vector<std::string>> rows_of(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::stringstream ss(text);
  std::string line;
  bool first = true;
  while (std::getline(ss, line)) {
    if (first) {
      first = false;
      continue;
    }
    if (line.empty()) continue;
    std::vector<std::string> fields;
    for (auto f : split_csv(line)) fields.emplace_back(f);
    rows.push_back(fields);
  }
  return rows;
}

TEST(ResultsIo, DurationCurves) {
  std::stringstream ss;
  write_duration_curves_csv(ss, tiny_atlas_study());
  auto rows = rows_of(ss.str());
  ASSERT_FALSE(rows.empty());
  std::size_t thresholds = stats::fig1_thresholds().size();
  // Rows per (AS, split) come in full-threshold blocks.
  EXPECT_EQ(rows.size() % thresholds, 0u);
  bool saw_dtag_v6 = false;
  for (const auto& r : rows) {
    ASSERT_EQ(r.size(), 4u);
    double v = std::stod(r[3]);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    saw_dtag_v6 |= r[0] == "DTAG" && r[1] == "v6";
  }
  EXPECT_TRUE(saw_dtag_v6);
}

TEST(ResultsIo, CplRows) {
  std::stringstream ss;
  write_cpl_csv(ss, tiny_atlas_study());
  auto rows = rows_of(ss.str());
  ASSERT_FALSE(rows.empty());
  for (const auto& r : rows) {
    ASSERT_EQ(r.size(), 4u);
    int cpl = std::stoi(r[1]);
    EXPECT_GE(cpl, 0);
    EXPECT_LE(cpl, 64);
    EXPECT_GE(std::stoull(r[2]), std::stoull(r[3]))
        << "changes >= probes at any CPL";
  }
}

TEST(ResultsIo, BgpMovesRowPerAs) {
  std::stringstream ss;
  write_bgp_moves_csv(ss, tiny_atlas_study());
  auto rows = rows_of(ss.str());
  EXPECT_EQ(rows.size(), tiny_atlas_study().spatial.size());
}

TEST(ResultsIo, InferenceHistogram) {
  std::stringstream ss;
  write_inference_csv(ss, tiny_atlas_study());
  auto rows = rows_of(ss.str());
  ASSERT_FALSE(rows.empty());
  std::size_t total = 0;
  for (const auto& r : rows) {
    int len = std::stoi(r[1]);
    EXPECT_GE(len, 0);
    EXPECT_LE(len, 64);
    total += std::stoull(r[2]);
  }
  std::size_t expected = 0;
  for (const auto& [asn, v] : tiny_atlas_study().subscriber_inference)
    expected += v.size();
  EXPECT_EQ(total, expected);
}

TEST(ResultsIo, AssocDurations) {
  std::stringstream ss;
  write_assoc_durations_csv(ss, tiny_cdn_study());
  auto rows = rows_of(ss.str());
  ASSERT_FALSE(rows.empty());
  bool saw_mobile = false, saw_fixed = false;
  for (const auto& r : rows) {
    ASSERT_EQ(r.size(), 4u);
    saw_mobile |= r[2] == "1";
    saw_fixed |= r[2] == "0";
    EXPECT_GE(std::stod(r[3]), 1.0);
  }
  EXPECT_TRUE(saw_mobile);
  EXPECT_TRUE(saw_fixed);
}

TEST(ResultsIo, Degrees) {
  std::stringstream ss;
  write_degrees_csv(ss, tiny_cdn_study());
  auto rows = rows_of(ss.str());
  EXPECT_EQ(rows.size(), tiny_cdn_study().analyzer.degrees().size());
}

TEST(ResultsIo, ZeroBoundaries) {
  std::stringstream ss;
  write_zero_boundaries_csv(ss, tiny_cdn_study());
  auto rows = rows_of(ss.str());
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.size() % 5, 0u) << "five boundary classes per group";
  for (const auto& r : rows) {
    double frac = std::stod(r[3]);
    EXPECT_GE(frac, 0.0);
    EXPECT_LE(frac, 1.0);
  }
}

}  // namespace
}  // namespace dynamips::io
