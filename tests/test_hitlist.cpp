#include "core/hitlist.h"

#include <gtest/gtest.h>

#include <cmath>

#include "simnet/isp.h"
#include "simnet/subscriber.h"

namespace dynamips::core {
namespace {

TEST(Hitlist, ObserveAndContains) {
  Hitlist hl;
  hl.observe(0x2003000000001100ull, 0xfffe1ull, 10);
  EXPECT_EQ(hl.size(), 1u);
  EXPECT_TRUE(hl.contains(0x2003000000001100ull, 0xfffe1ull));
  EXPECT_FALSE(hl.contains(0x2003000000001100ull, 0xfffe2ull));
}

TEST(Hitlist, ReobservationRefreshes) {
  Hitlist hl;
  hl.observe(1, 2, 10);
  hl.observe(1, 2, 50);
  EXPECT_EQ(hl.size(), 1u);
  auto entries = hl.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first_seen, 10u);
  EXPECT_EQ(entries[0].last_seen, 50u);
}

TEST(Hitlist, ExpireDropsStaleEntries) {
  Hitlist hl;
  hl.observe(1, 1, 0);
  hl.observe(2, 2, 90);
  EXPECT_EQ(hl.expire(100, 50), 1u);
  EXPECT_EQ(hl.size(), 1u);
  EXPECT_TRUE(hl.contains(2, 2));
}

TEST(ScanScoping, SequentialStrideFindsZeroFillTarget) {
  // Pool 2003:e1:aa00::/40, /56 delegations zero-filled. The target is the
  // 5th delegation in the pool.
  auto pool = *net::Prefix6::parse("2003:e1:aa00::/40");
  std::uint64_t target = pool.address().network64() | (4ull << 8);
  auto probes = probes_to_find(target, pool, 56);
  ASSERT_TRUE(probes.has_value());
  EXPECT_EQ(*probes, 5u);
}

TEST(ScanScoping, ScrambledTargetNotOnGrid) {
  auto pool = *net::Prefix6::parse("2003:e1:aa00::/40");
  std::uint64_t target = pool.address().network64() | (4ull << 8) | 0x37;
  EXPECT_FALSE(probes_to_find(target, pool, 56).has_value())
      << "scrambling CPEs defeat stride scanning";
  // Scanning at /64 granularity still finds it.
  auto probes = probes_to_find(target, pool, 64);
  ASSERT_TRUE(probes.has_value());
  EXPECT_EQ(*probes, (4ull << 8) + 0x37 + 1);
}

TEST(ScanScoping, TargetOutsideScope) {
  auto pool = *net::Prefix6::parse("2003:e1:aa00::/40");
  std::uint64_t outside = 0x2a02000000000000ull;
  EXPECT_FALSE(probes_to_find(outside, pool, 56).has_value());
}

TEST(ScanScoping, InvalidStride) {
  auto pool = *net::Prefix6::parse("2003:e1:aa00::/40");
  EXPECT_FALSE(probes_to_find(pool.address().network64(), pool, 39)
                   .has_value());
}

TEST(ScanScoping, ExpectedRandomProbesMatchesPaperArithmetic) {
  // §5.2: scoping DTAG from its /19 announcement to a /40 pool reduces the
  // search from 2^45 to 2^24 /64s; striding at /56 leaves 2^16 candidates.
  auto announcement = *net::Prefix6::parse("2003::/19");
  auto pool = *net::Prefix6::parse("2003:e1:aa00::/40");
  EXPECT_DOUBLE_EQ(expected_random_probes(announcement, 64),
                   std::ldexp(1.0, 45) / 2);
  EXPECT_DOUBLE_EQ(expected_random_probes(pool, 64),
                   std::ldexp(1.0, 24) / 2);
  EXPECT_DOUBLE_EQ(expected_random_probes(pool, 56),
                   std::ldexp(1.0, 16) / 2);
}

TEST(ScanScoping, NeighborSearchWithin256) {
  // §5.2: after a CPL >= 56 change, the 255 neighbouring /64s suffice.
  std::uint64_t old64 = 0x2003000000aa1100ull;
  EXPECT_EQ(neighbor_probes(old64, old64), 1u);
  auto up3 = neighbor_probes(old64, old64 + 3);
  ASSERT_TRUE(up3.has_value());
  EXPECT_EQ(*up3, 6u);
  auto down2 = neighbor_probes(old64, old64 - 2);
  ASSERT_TRUE(down2.has_value());
  EXPECT_EQ(*down2, 5u);
  EXPECT_FALSE(neighbor_probes(old64, old64 + 10000, 256).has_value());
}

TEST(ScanScoping, HitlistChurnMatchesDurations) {
  // End-to-end: curate a hitlist over a renumbering ISP; entries go stale
  // at the renumbering rate.
  auto isp = *simnet::find_isp("DTAG");
  simnet::TimelineGenerator gen(isp, 7);
  Hitlist hl;
  std::uint64_t iid = 0x021122fffe334455ull;
  int subs = 50;
  for (int sub = 0; sub < subs; ++sub) {
    auto tl = gen.generate(std::uint32_t(sub), 0, 24 * 30);
    for (const auto& seg : tl.v6) hl.observe(seg.lan64, iid, seg.start);
  }
  std::size_t before = hl.size();
  // Anything not re-confirmed in the last week of the month is stale.
  std::size_t dropped = hl.expire(24 * 30, 24 * 7);
  EXPECT_GT(before, std::size_t(subs))
      << "daily renumbering inflates the hitlist";
  EXPECT_GT(dropped, before / 2) << "most entries go stale fast";
}

}  // namespace
}  // namespace dynamips::core
