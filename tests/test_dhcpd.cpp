#include "simnet/dhcpd.h"

#include <gtest/gtest.h>

#include <map>

namespace dynamips::simnet {
namespace {

using net::Prefix4;
using net::Prefix6;

V4AddressPlan plan4() {
  return V4AddressPlan({*Prefix4::parse("10.0.0.0/16")}, 0.1, 1.0);
}

V6AddressPlan plan6() {
  return V6AddressPlan({*Prefix6::parse("2003::/19")}, 40, 1.0);
}

TEST(Dhcp4, LeaseIssueAndRenew) {
  Dhcp4Server server(plan4(), {.lease_time = 24, .remember_expired = true},
                     1);
  Lease4 lease = server.request(7, 0);
  EXPECT_EQ(lease.expiry, 24u);
  auto renewed = server.renew(7, 12);
  ASSERT_TRUE(renewed.has_value());
  EXPECT_EQ(renewed->addr, lease.addr) << "renewal keeps the address";
  EXPECT_EQ(renewed->expiry, 36u);
}

TEST(Dhcp4, RenewAfterExpiryFails) {
  Dhcp4Server server(plan4(), {.lease_time = 24, .remember_expired = true},
                     2);
  server.request(7, 0);
  EXPECT_FALSE(server.renew(7, 25).has_value());
}

TEST(Dhcp4, RememberedBindingSurvivesExpiry) {
  Dhcp4Server server(plan4(), {.lease_time = 24, .remember_expired = true},
                     3);
  Lease4 a = server.request(7, 0);
  // Comes back three days later: same address (Comcast-style stability).
  Lease4 b = server.request(7, 72);
  EXPECT_EQ(b.addr, a.addr);
}

TEST(Dhcp4, ForgetfulServerRenumbersAfterExpiry) {
  Dhcp4Server server(plan4(), {.lease_time = 24, .remember_expired = false},
                     4);
  Lease4 a = server.request(7, 0);
  Lease4 b = server.request(7, 72);
  // Fresh draw from a /16: collision is negligible.
  EXPECT_NE(b.addr, a.addr);
}

TEST(Dhcp4, ActiveLeaseReissuedEvenWhenForgetful) {
  Dhcp4Server server(plan4(), {.lease_time = 24, .remember_expired = false},
                     5);
  Lease4 a = server.request(7, 0);
  Lease4 b = server.request(7, 10);  // still active
  EXPECT_EQ(b.addr, a.addr);
}

TEST(Dhcp4, RestartLosesAllState) {
  Dhcp4Server server(plan4(), {.lease_time = 24, .remember_expired = true},
                     6);
  Lease4 a = server.request(7, 0);
  EXPECT_EQ(server.active_bindings(), 1u);
  server.restart();
  EXPECT_EQ(server.active_bindings(), 0u);
  Lease4 b = server.request(7, 1);
  EXPECT_NE(b.addr, a.addr) << "the §2.2 ISP-outage renumbering cause";
}

TEST(Dhcp4, ReleaseForgetsBinding) {
  Dhcp4Server server(plan4(), {.lease_time = 24, .remember_expired = true},
                     7);
  Lease4 a = server.request(7, 0);
  server.release(7);
  Lease4 b = server.request(7, 1);
  EXPECT_NE(b.addr, a.addr);
}

TEST(Dhcp6Pd, DelegatesConfiguredLength) {
  Dhcp6PdServer server(plan6(),
                       {.lease_time = 24, .delegation_len = 56,
                        .remember_expired = true},
                       8);
  Lease6 lease = server.request(7, 0);
  EXPECT_EQ(lease.delegated.length(), 56);
  auto renewed = server.renew(7, 12);
  ASSERT_TRUE(renewed.has_value());
  EXPECT_EQ(renewed->delegated, lease.delegated);
}

TEST(Dhcp6Pd, RestartRenumbersButStaysInPool) {
  Dhcp6PdServer server(plan6(),
                       {.lease_time = 24, .delegation_len = 56,
                        .remember_expired = true},
                       9);
  Lease6 a = server.request(7, 0);
  server.restart();
  Lease6 b = server.request(7, 1);
  EXPECT_NE(b.delegated, a.delegated);
  // The pool attachment persists: both delegations share the /40 pool.
  EXPECT_EQ(a.delegated.address().network64() >> 24,
            b.delegated.address().network64() >> 24);
}

TEST(Radius, EverySessionRenumbers) {
  RadiusAllocator radius(plan4(), {.session_timeout = 24}, 10);
  auto s1 = radius.connect(7, 0);
  EXPECT_EQ(s1.timeout_at, 24u);
  auto s2 = radius.connect(7, 24);
  EXPECT_NE(s2.addr, s1.addr) << "RADIUS keeps no binding memory";
}

// --- CpeDriver: the emergent §2.2 dynamics -------------------------------

TEST(CpeDriver, StableWithoutOutages) {
  Dhcp4Server v4(plan4(), {.lease_time = 24, .remember_expired = true}, 11);
  Dhcp6PdServer v6(plan6(),
                   {.lease_time = 24, .delegation_len = 56,
                    .remember_expired = true},
                   12);
  CpeDriver cpe(v4, v6, {.reboots_per_year = 0}, 13);
  auto obs = cpe.run(1, 0, 8760);
  EXPECT_EQ(obs.v4.size(), 1u) << "renewals keep the address all year";
  EXPECT_EQ(obs.v6.size(), 1u);
}

TEST(CpeDriver, LongOutageCausesRenumberingOnForgetfulServer) {
  Dhcp4Server v4(plan4(), {.lease_time = 24, .remember_expired = false}, 14);
  Dhcp6PdServer v6(plan6(),
                   {.lease_time = 24, .delegation_len = 56,
                    .remember_expired = false},
                   15);
  // Frequent reboots with downtimes often exceeding the lease.
  CpeDriver cpe(v4, v6,
                {.reboots_per_year = 50, .mean_downtime_hours = 48}, 16);
  auto obs = cpe.run(1, 0, 8760);
  EXPECT_GT(obs.v4.size(), 10u)
      << "outages longer than the lease renumber (§2.2)";
}

TEST(CpeDriver, ShortOutagesHarmlessOnRememberingServer) {
  Dhcp4Server v4(plan4(), {.lease_time = 24, .remember_expired = true}, 17);
  Dhcp6PdServer v6(plan6(),
                   {.lease_time = 24, .delegation_len = 56,
                    .remember_expired = true},
                   18);
  CpeDriver cpe(v4, v6,
                {.reboots_per_year = 20, .mean_downtime_hours = 1}, 19);
  auto obs = cpe.run(1, 0, 8760);
  EXPECT_EQ(obs.v4.size(), 1u)
      << "DHCP servers that remember bindings ride out short reboots";
}

TEST(CpeDriver, MechanismMatchesStatisticalModelShape) {
  // The protocol-level machinery must reproduce the statistical model's
  // signature: under a forgetful server with lease L and reboots, observed
  // inter-change durations cluster at multiples of L/2 renewal boundaries
  // bounded by reboot gaps. We check the coarser invariant both models
  // share: all changes coincide with either a reboot or an expiry, never
  // mid-lease.
  Dhcp4Server v4(plan4(), {.lease_time = 48, .remember_expired = true}, 20);
  Dhcp6PdServer v6(plan6(),
                   {.lease_time = 48, .delegation_len = 56,
                    .remember_expired = true},
                   21);
  CpeDriver cpe(v4, v6,
                {.reboots_per_year = 12, .mean_downtime_hours = 72,
                 .release_on_reboot = true},
                22);
  auto obs = cpe.run(1, 0, 17520);
  ASSERT_GT(obs.v4.size(), 2u);
  for (std::size_t i = 1; i < obs.v4.size(); ++i) {
    Hour gap = obs.v4[i].start - obs.v4[i - 1].start;
    EXPECT_GE(gap, 24u) << "no change can happen before T1";
  }
}

TEST(CpeDriver, V6DelegationsComeFromOnePool) {
  Dhcp4Server v4(plan4(), {.lease_time = 24, .remember_expired = false}, 23);
  Dhcp6PdServer v6(plan6(),
                   {.lease_time = 24, .delegation_len = 56,
                    .remember_expired = false},
                   24);
  CpeDriver cpe(v4, v6,
                {.reboots_per_year = 40, .mean_downtime_hours = 48}, 25);
  auto obs = cpe.run(1, 0, 17520);
  ASSERT_GT(obs.v6.size(), 3u);
  std::map<std::uint64_t, int> pools;
  for (const auto& a : obs.v6)
    ++pools[a.delegated.address().network64() >> 24];  // /40 key
  EXPECT_EQ(pools.size(), 1u) << "single home pool, as configured";
}

}  // namespace
}  // namespace dynamips::simnet
