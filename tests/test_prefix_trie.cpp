#include "rtrie/prefix_trie.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netaddr/rng.h"

namespace dynamips::rtrie {
namespace {

using net::IPv4Address;
using net::IPv6Address;
using net::mask128;
using net::Prefix4;
using net::Prefix6;
using net::Rng;
using net::U128;

TEST(PrefixTrie, EmptyTrie) {
  PrefixTrie<int> t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(U128{}, 0), nullptr);
  EXPECT_FALSE(t.longest_match(U128{1, 2}).has_value());
}

TEST(PrefixTrie, InsertAndFindExact) {
  PrefixTrie<std::string> t;
  auto p = *Prefix6::parse("2001:db8::/32");
  EXPECT_TRUE(t.insert(key_of(p), 32, "a"));
  EXPECT_EQ(t.size(), 1u);
  auto* v = t.find(key_of(p), 32);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, "a");
  EXPECT_EQ(t.find(key_of(p), 31), nullptr);
  EXPECT_EQ(t.find(key_of(p), 33), nullptr);
}

TEST(PrefixTrie, InsertOverwrites) {
  PrefixTrie<int> t;
  U128 k{0xaa00000000000000ull, 0};
  EXPECT_TRUE(t.insert(k, 8, 1));
  EXPECT_FALSE(t.insert(k, 8, 2));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.find(k, 8), 2);
}

TEST(PrefixTrie, RootValue) {
  PrefixTrie<int> t;
  EXPECT_TRUE(t.insert(U128{}, 0, 99));
  EXPECT_EQ(*t.find(U128{}, 0), 99);
  auto m = t.longest_match(U128{0xdeadbeef, 42});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->prefix_len, 0u);
  EXPECT_EQ(*m->value, 99);
}

TEST(PrefixTrie, LongestMatchPicksMostSpecific) {
  PrefixTrie<int> t;
  auto p8 = *Prefix4::parse("10.0.0.0/8");
  auto p16 = *Prefix4::parse("10.1.0.0/16");
  auto p24 = *Prefix4::parse("10.1.2.0/24");
  t.insert(key_of(p8), 8, 8);
  t.insert(key_of(p16), 16, 16);
  t.insert(key_of(p24), 24, 24);

  auto m = t.longest_match(key_of(*IPv4Address::parse("10.1.2.3")));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->value, 24);
  EXPECT_EQ(m->prefix_len, 24u);

  m = t.longest_match(key_of(*IPv4Address::parse("10.1.9.9")));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->value, 16);

  m = t.longest_match(key_of(*IPv4Address::parse("10.99.0.1")));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->value, 8);

  EXPECT_FALSE(
      t.longest_match(key_of(*IPv4Address::parse("11.0.0.1"))).has_value());
}

TEST(PrefixTrie, SiblingSplit) {
  PrefixTrie<int> t;
  // Two /64s differing in the last bit of the network part force a split
  // deep in a compressed edge.
  auto a = *Prefix6::parse("2001:db8:0:aaaa::/64");
  auto b = *Prefix6::parse("2001:db8:0:aaab::/64");
  t.insert(key_of(a), 64, 1);
  t.insert(key_of(b), 64, 2);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(*t.find(key_of(a), 64), 1);
  EXPECT_EQ(*t.find(key_of(b), 64), 2);
}

TEST(PrefixTrie, EraseLeafAndPrune) {
  PrefixTrie<int> t;
  auto p8 = *Prefix4::parse("10.0.0.0/8");
  auto p24 = *Prefix4::parse("10.1.2.0/24");
  t.insert(key_of(p8), 8, 8);
  t.insert(key_of(p24), 24, 24);
  EXPECT_TRUE(t.erase(key_of(p24), 24));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(key_of(p24), 24), nullptr);
  auto m = t.longest_match(key_of(*IPv4Address::parse("10.1.2.3")));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->value, 8);
  EXPECT_FALSE(t.erase(key_of(p24), 24)) << "double erase must fail";
}

TEST(PrefixTrie, EraseInternalKeepsChildren) {
  PrefixTrie<int> t;
  auto p8 = *Prefix4::parse("10.0.0.0/8");
  auto p24a = *Prefix4::parse("10.1.2.0/24");
  auto p24b = *Prefix4::parse("10.200.2.0/24");
  t.insert(key_of(p8), 8, 8);
  t.insert(key_of(p24a), 24, 1);
  t.insert(key_of(p24b), 24, 2);
  EXPECT_TRUE(t.erase(key_of(p8), 8));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(*t.find(key_of(p24a), 24), 1);
  EXPECT_EQ(*t.find(key_of(p24b), 24), 2);
  EXPECT_FALSE(
      t.longest_match(key_of(*IPv4Address::parse("10.99.0.1"))).has_value());
}

TEST(PrefixTrie, VisitEnumeratesAll) {
  PrefixTrie<int> t;
  std::vector<std::pair<U128, unsigned>> inserted = {
      {key_of(*Prefix4::parse("10.0.0.0/8")), 8},
      {key_of(*Prefix4::parse("10.1.0.0/16")), 16},
      {key_of(*Prefix4::parse("192.168.0.0/16")), 16},
      {U128{}, 0},
  };
  int i = 0;
  for (auto& [k, len] : inserted) t.insert(k, len, i++);
  std::map<std::pair<std::uint64_t, unsigned>, int> seen;
  t.visit([&](U128 bits, unsigned len, const int& v) {
    seen[{bits.hi, len}] = v;
  });
  EXPECT_EQ(seen.size(), inserted.size());
  for (std::size_t j = 0; j < inserted.size(); ++j) {
    auto key = std::make_pair(inserted[j].first.hi, inserted[j].second);
    ASSERT_TRUE(seen.count(key)) << j;
    EXPECT_EQ(seen[key], int(j));
  }
}

TEST(PrefixSet, BasicMembership) {
  PrefixSet<> s;
  auto p = *Prefix6::parse("2a02:8070::/32");
  EXPECT_TRUE(s.insert(key_of(p), 32));
  EXPECT_FALSE(s.insert(key_of(p), 32));
  EXPECT_TRUE(s.contains(key_of(p), 32));
  EXPECT_TRUE(
      s.contains_superprefix_of(key_of(*IPv6Address::parse("2a02:8070::1"))));
  EXPECT_FALSE(
      s.contains_superprefix_of(key_of(*IPv6Address::parse("2a03::1"))));
}

// ---------------------------------------------------------------------------
// Property sweep: the trie must agree with a naive reference implementation
// under random insert/erase/lookup workloads.
// ---------------------------------------------------------------------------

struct NaiveLpm {
  // (len, bits) -> value; lookup scans all.
  std::map<std::pair<unsigned, U128>, int> entries;

  void insert(U128 bits, unsigned len, int v) {
    entries[{len, bits & mask128(len)}] = v;
  }
  bool erase(U128 bits, unsigned len) {
    return entries.erase({len, bits & mask128(len)}) > 0;
  }
  const int* find(U128 bits, unsigned len) const {
    auto it = entries.find({len, bits & mask128(len)});
    return it == entries.end() ? nullptr : &it->second;
  }
  std::optional<std::pair<unsigned, int>> longest(U128 key) const {
    std::optional<std::pair<unsigned, int>> best;
    for (auto& [k, v] : entries) {
      auto [len, bits] = k;
      if ((key & mask128(len)) == bits &&
          (!best || len >= best->first))
        best = {len, v};
    }
    return best;
  }
};

class TrieFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieFuzz, MatchesNaiveReference) {
  Rng rng(GetParam());
  PrefixTrie<int> trie;
  NaiveLpm naive;

  // Biased random prefixes: lengths drawn from realistic CIDR sizes, bits
  // drawn from a small alphabet so prefixes overlap heavily.
  auto random_prefix = [&](unsigned& len) -> U128 {
    static const unsigned kLens[] = {0,  8,  16, 19, 24, 32,
                                     40, 48, 56, 64, 96, 128};
    len = kLens[rng.uniform(std::size(kLens))];
    U128 bits{rng.uniform(16) << 60, rng.uniform(4) << 62};
    return bits;
  };

  for (int step = 0; step < 4000; ++step) {
    unsigned len;
    U128 bits = random_prefix(len);
    switch (rng.uniform(4)) {
      case 0:
      case 1: {  // insert
        int v = int(rng.uniform(1000));
        trie.insert(bits, len, v);
        naive.insert(bits, len, v);
        break;
      }
      case 2: {  // erase
        bool a = trie.erase(bits, len);
        bool b = naive.erase(bits, len);
        EXPECT_EQ(a, b) << "step " << step;
        break;
      }
      case 3: {  // lookups
        const int* a = trie.find(bits, len);
        const int* b = naive.find(bits, len);
        EXPECT_EQ(a != nullptr, b != nullptr) << "step " << step;
        if (a && b) {
          EXPECT_EQ(*a, *b);
        }
        U128 key{rng.next_u64(), rng.next_u64()};
        if (rng.bernoulli(0.5)) key = bits;  // often probe near prefixes
        auto ml = trie.longest_match(key);
        auto nl = naive.longest(key);
        ASSERT_EQ(ml.has_value(), nl.has_value()) << "step " << step;
        if (ml) {
          EXPECT_EQ(ml->prefix_len, nl->first) << "step " << step;
          EXPECT_EQ(*ml->value, nl->second) << "step " << step;
        }
        break;
      }
    }
    EXPECT_EQ(trie.size(), naive.entries.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 1337u));

}  // namespace
}  // namespace dynamips::rtrie
