#include "netaddr/iid.h"

#include <gtest/gtest.h>

#include <set>

namespace dynamips::net {
namespace {

TEST(Iid, Eui64KnownVector) {
  // RFC 4291 Appendix A example: MAC 34-56-78-9A-BC-DE ->
  // IID 3656:78ff:fe9a:bcde (u/l bit of 0x34 inverted -> 0x36).
  Mac mac{{0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde}};
  EXPECT_EQ(eui64_iid(mac), 0x365678fffe9abcdeull);
}

TEST(Iid, Eui64Marker) {
  Mac mac{{0x00, 0x11, 0x22, 0x33, 0x44, 0x55}};
  EXPECT_TRUE(is_eui64_iid(eui64_iid(mac)));
  EXPECT_FALSE(is_eui64_iid(0x1234567812345678ull));
}

TEST(Iid, Eui64StableForSameMac) {
  Mac mac{{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}};
  EXPECT_EQ(eui64_iid(mac), eui64_iid(mac));
}

TEST(Iid, PrivacyIidsAreFreshAndNotEui64) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t iid = privacy_iid(rng);
    EXPECT_FALSE(is_eui64_iid(iid));
    seen.insert(iid);
  }
  // All distinct with overwhelming probability.
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Iid, StableOpaqueIsDeterministicPerNetwork) {
  std::uint64_t secret = 0xabcdef;
  std::uint64_t net_a = 0x20010db800010000ull;
  std::uint64_t net_b = 0x20010db800020000ull;
  EXPECT_EQ(stable_opaque_iid(secret, net_a), stable_opaque_iid(secret, net_a));
  EXPECT_NE(stable_opaque_iid(secret, net_a), stable_opaque_iid(secret, net_b));
  EXPECT_NE(stable_opaque_iid(secret + 1, net_a),
            stable_opaque_iid(secret, net_a));
  EXPECT_FALSE(is_eui64_iid(stable_opaque_iid(secret, net_a)));
}

TEST(Iid, RandomMacIsUnicast) {
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    Mac m = Mac::random(rng);
    EXPECT_EQ(m.octets[0] & 0x01, 0) << "multicast bit must be clear";
  }
}

}  // namespace
}  // namespace dynamips::net
