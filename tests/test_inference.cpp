#include "core/inference.h"

#include <gtest/gtest.h>

#include "netaddr/rng.h"

namespace dynamips::core {
namespace {

using net::IPv6Address;

CleanProbe probe_with_nets(std::initializer_list<std::uint64_t> nets) {
  CleanProbe cp;
  cp.probe_id = 1;
  cp.asn = 100;
  Hour h = 0;
  for (std::uint64_t n : nets) cp.v6.push_back({h++, IPv6Address{n, 1}, true});
  return cp;
}

TEST(Inference, RequiresAtLeastOneChange) {
  EXPECT_FALSE(infer_subscriber_prefix(probe_with_nets({})).has_value());
  EXPECT_FALSE(
      infer_subscriber_prefix(probe_with_nets({0x2003000000000100ull}))
          .has_value());
}

TEST(Inference, ZeroFill56) {
  // Two /56 delegations, lowest /64 announced: 8+ zero bits in both.
  auto inf = infer_subscriber_prefix(probe_with_nets(
      {0x20030000aabb1100ull, 0x20030000aabb2200ull}));
  ASSERT_TRUE(inf.has_value());
  EXPECT_EQ(inf->inferred_len, 56);
  EXPECT_EQ(inf->changes, 1);
}

TEST(Inference, ZeroFill48) {
  auto inf = infer_subscriber_prefix(probe_with_nets(
      {0x2003000000110000ull, 0x2003000000220000ull,
       0x2003000000330000ull}));
  ASSERT_TRUE(inf.has_value());
  EXPECT_EQ(inf->inferred_len, 48);
  EXPECT_EQ(inf->changes, 2);
}

TEST(Inference, MinimumAcrossObservations) {
  // One /64 with only 4 trailing zeros caps the common streak.
  auto inf = infer_subscriber_prefix(probe_with_nets(
      {0x20030000aabb1100ull, 0x20030000aabb2210ull}));
  ASSERT_TRUE(inf.has_value());
  EXPECT_EQ(inf->inferred_len, 60);
}

TEST(Inference, ScramblerYields64) {
  // Scrambling CPEs fill the subnet bits: no common zeros.
  auto inf = infer_subscriber_prefix(probe_with_nets(
      {0x20030000aabb1137ull, 0x20030000aabb22c5ull}));
  ASSERT_TRUE(inf.has_value());
  EXPECT_EQ(inf->inferred_len, 64);
}

TEST(Inference, RepeatedNetDoesNotInflateChanges) {
  auto inf = infer_subscriber_prefix(probe_with_nets(
      {0x2003000000001100ull, 0x2003000000001100ull,
       0x2003000000002200ull}));
  ASSERT_TRUE(inf.has_value());
  EXPECT_EQ(inf->changes, 1) << "consecutive identical nets form one span";
}

TEST(Inference, PoolInferenceRecoversPoolLength) {
  // 10 delegations inside one /40 pool (bits 40..56 vary), zero-filled /56.
  net::Rng rng(1);
  std::vector<std::uint64_t> nets;
  std::uint64_t pool = 0x20030000aa000000ull;  // /40 base
  for (int i = 0; i < 12; ++i)
    nets.push_back(pool | ((rng.next_u64() & 0xffff) << 8));
  CleanProbe cp;
  Hour h = 0;
  cp.asn = 100;
  for (auto n : nets) cp.v6.push_back({h++, IPv6Address{n, 1}, true});
  auto pi = infer_pool(cp, 0.8, 5);
  ASSERT_TRUE(pi.has_value());
  EXPECT_EQ(pi->pool_len, 40);
  EXPECT_DOUBLE_EQ(pi->coverage, 1.0);
}

TEST(Inference, PoolInferenceNeedsEnoughChanges) {
  auto cp = probe_with_nets({0x2003000000001100ull, 0x2003000000002200ull});
  EXPECT_FALSE(infer_pool(cp, 0.8, 5).has_value());
}

TEST(Inference, PoolInferenceWithMinorityOutsidePool) {
  // 9 of 10 assignments in the /40 pool, one in a different /40 (but same
  // /32): 90% coverage at /40 passes the 0.8 threshold.
  net::Rng rng(2);
  CleanProbe cp;
  cp.asn = 100;
  Hour h = 0;
  std::uint64_t pool = 0x20030000aa000000ull;
  for (int i = 0; i < 9; ++i)
    cp.v6.push_back(
        {h++, IPv6Address{pool | ((rng.next_u64() & 0xffff) << 8), 1}, true});
  cp.v6.push_back({h++, IPv6Address{0x20030000bb001100ull, 1}, true});
  auto pi = infer_pool(cp, 0.8, 5);
  ASSERT_TRUE(pi.has_value());
  EXPECT_EQ(pi->pool_len, 40);
  EXPECT_NEAR(pi->coverage, 0.9, 1e-9);
}

TEST(Inference, ClassifyTrailingZeros) {
  EXPECT_EQ(classify_trailing_zeros(0x2003000000000001ull),
            ZeroBoundary::kNone);
  EXPECT_EQ(classify_trailing_zeros(0x2003000000000010ull),
            ZeroBoundary::k60);
  EXPECT_EQ(classify_trailing_zeros(0x2003000000000100ull),
            ZeroBoundary::k56);
  EXPECT_EQ(classify_trailing_zeros(0x2003000000001000ull),
            ZeroBoundary::k52);
  EXPECT_EQ(classify_trailing_zeros(0x2003000000010000ull),
            ZeroBoundary::k48);
  // Longer streaks cap at /48.
  EXPECT_EQ(classify_trailing_zeros(0x2003000000000000ull),
            ZeroBoundary::k48);
}

TEST(Inference, ZeroBoundaryNames) {
  EXPECT_STREQ(zero_boundary_name(ZeroBoundary::kNone), "none");
  EXPECT_STREQ(zero_boundary_name(ZeroBoundary::k60), "/60");
  EXPECT_STREQ(zero_boundary_name(ZeroBoundary::k48), "/48");
}

TEST(Inference, ZeroBoundaryCounts) {
  ZeroBoundaryCounts z;
  z.add(ZeroBoundary::kNone);
  z.add(ZeroBoundary::k56);
  z.add(ZeroBoundary::k56);
  z.add(ZeroBoundary::k60);
  EXPECT_EQ(z.total(), 4u);
  EXPECT_DOUBLE_EQ(z.inferable_fraction(), 0.75);
  EXPECT_DOUBLE_EQ(z.fraction(ZeroBoundary::k56), 0.5);
  EXPECT_DOUBLE_EQ(z.fraction(ZeroBoundary::k48), 0.0);
}

TEST(Inference, ZeroBoundaryCountsEmpty) {
  ZeroBoundaryCounts z;
  EXPECT_EQ(z.total(), 0u);
  EXPECT_DOUBLE_EQ(z.inferable_fraction(), 0.0);
}

// Parameterized sweep: a zero-filling subscriber with delegation length L
// and enough observed changes must infer exactly L (bits above L randomized,
// at least one delegation with a 1 right at the last delegation bit).
class InferenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(InferenceSweep, RecoversDelegationLength) {
  int len = GetParam();
  net::Rng rng(std::uint64_t(len) * 7919);
  CleanProbe cp;
  cp.asn = 100;
  Hour h = 0;
  for (int i = 0; i < 30; ++i) {
    // Random delegation: bits 32..len random, rest of network zero.
    std::uint64_t deleg =
        0x2003000000000000ull |
        ((rng.next_u64() >> 32) & ((~0ull << (64 - len)) & 0xffffffffull));
    // Guarantee at least one delegation ends in a 1 bit at position len.
    if (i == 0) deleg |= 1ull << (64 - len);
    cp.v6.push_back({h++, IPv6Address{deleg, 1}, true});
  }
  auto inf = infer_subscriber_prefix(cp);
  ASSERT_TRUE(inf.has_value());
  EXPECT_EQ(inf->inferred_len, len);
}

INSTANTIATE_TEST_SUITE_P(Lengths, InferenceSweep,
                         ::testing::Values(48, 52, 56, 60, 62, 64));

}  // namespace
}  // namespace dynamips::core
