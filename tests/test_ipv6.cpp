#include "netaddr/ipv6.h"

#include <gtest/gtest.h>

#include <string>

#include "corpus_util.h"

#include <string>
#include <utility>

#include "netaddr/rng.h"

namespace dynamips::net {
namespace {

TEST(IPv6, ParseFull) {
  auto a = IPv6Address::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->network64(), 0x20010db800000000ull);
  EXPECT_EQ(a->iid(), 1ull);
}

TEST(IPv6, ParseCompressed) {
  auto a = IPv6Address::parse("2001:db8::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->network64(), 0x20010db800000000ull);
  EXPECT_EQ(a->iid(), 1ull);
}

TEST(IPv6, ParseAllZero) {
  auto a = IPv6Address::parse("::");
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->bits().is_zero());
}

TEST(IPv6, ParseLoopback) {
  auto a = IPv6Address::parse("::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->iid(), 1ull);
  EXPECT_EQ(a->network64(), 0ull);
}

TEST(IPv6, ParseTrailingCompression) {
  auto a = IPv6Address::parse("2003:ec57::");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->network64(), 0x2003ec5700000000ull);
  EXPECT_EQ(a->iid(), 0ull);
}

TEST(IPv6, ParseEmbeddedIPv4) {
  auto a = IPv6Address::parse("::ffff:192.0.2.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->iid(), 0x0000ffffc0000201ull);
}

TEST(IPv6, ParseRejectsMalformed) {
  EXPECT_FALSE(IPv6Address::parse("").has_value());
  EXPECT_FALSE(IPv6Address::parse(":::").has_value());
  EXPECT_FALSE(IPv6Address::parse("1:2:3:4:5:6:7").has_value());
  EXPECT_FALSE(IPv6Address::parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(IPv6Address::parse("1::2::3").has_value());
  EXPECT_FALSE(IPv6Address::parse("12345::").has_value());
  EXPECT_FALSE(IPv6Address::parse("g::1").has_value());
  EXPECT_FALSE(IPv6Address::parse("1:2:3:4:5:6:7:8::").has_value());
  EXPECT_FALSE(IPv6Address::parse("::1.2.3.256").has_value());
  EXPECT_FALSE(IPv6Address::parse(":1:2:3:4:5:6:7").has_value());
  EXPECT_FALSE(IPv6Address::parse("1:2:3:4:5:6:7:").has_value());
}

TEST(IPv6, ParseRejectsFullLengthWithCompression) {
  // "::" must absorb at least one group.
  EXPECT_FALSE(IPv6Address::parse("1:2:3:4::5:6:7:8").has_value());
}

TEST(IPv6, FormatCanonicalRfc5952) {
  // Longest zero run compressed, leftmost on tie, lowercase, no leading 0s.
  EXPECT_EQ(IPv6Address::parse("2001:db8:0:0:1:0:0:1")->to_string(),
            "2001:db8::1:0:0:1");
  EXPECT_EQ(IPv6Address::parse("2001:0db8:0:0:0:0:2:1")->to_string(),
            "2001:db8::2:1");
  EXPECT_EQ(IPv6Address::parse("2001:db8:0:1:1:1:1:1")->to_string(),
            "2001:db8:0:1:1:1:1:1");  // single zero group not compressed
  EXPECT_EQ(IPv6Address::parse("::")->to_string(), "::");
  EXPECT_EQ(IPv6Address::parse("::1")->to_string(), "::1");
  EXPECT_EQ(IPv6Address::parse("2003:ec57::")->to_string(), "2003:ec57::");
  EXPECT_EQ(IPv6Address::parse("ABCD:EF01:2345:6789:ABCD:EF01:2345:6789")
                ->to_string(),
            "abcd:ef01:2345:6789:abcd:ef01:2345:6789");
}

TEST(IPv6, GroupsRoundTrip) {
  std::array<std::uint16_t, 8> g{0x2001, 0xdb8, 0, 0x42, 0, 0, 0, 0x99};
  auto a = IPv6Address::from_groups(g);
  EXPECT_EQ(a.groups(), g);
}

TEST(IPv6, CommonPrefixLength) {
  auto a = *IPv6Address::parse("2604:3d08:4b80:aa00::");
  auto b = *IPv6Address::parse("2604:3d08:4b80:aaf0::");
  // The paper's own example from §5.2: CPL of 56.
  EXPECT_EQ(common_prefix_length(a, b), 56);
  EXPECT_EQ(common_prefix_length(a, a), 128);
}

TEST(IPv6, CommonPrefixLength64) {
  EXPECT_EQ(common_prefix_length64(0x2604'3d08'4b80'aa00ull,
                                   0x2604'3d08'4b80'aaf0ull),
            56);
  EXPECT_EQ(common_prefix_length64(5, 5), 64);
  EXPECT_EQ(common_prefix_length64(0, 0x8000000000000000ull), 0);
}

TEST(IPv6, TrailingZeroBits64) {
  EXPECT_EQ(trailing_zero_bits64(0x20010db800000000ull), 35);
  EXPECT_EQ(trailing_zero_bits64(0), 64);
  EXPECT_EQ(trailing_zero_bits64(0x20010db8aabbcc00ull), 10);  // ...cc00
  EXPECT_EQ(trailing_zero_bits64(1), 0);
}

TEST(IPv6, InferredDelegationFromZeros) {
  // /56 delegation with zero-filled subnet id: 8 trailing zero bits.
  EXPECT_EQ(inferred_delegation_from_zeros(0x20010db8aabbcc00ull), 56);
  // /48 delegation: 16 trailing zero bits.
  EXPECT_EQ(inferred_delegation_from_zeros(0x20010db8aabb0000ull), 48);
  // /60: 4 trailing zero bits.
  EXPECT_EQ(inferred_delegation_from_zeros(0x20010db8aabbccd0ull), 60);
  // No trailing zeros: inferred /64.
  EXPECT_EQ(inferred_delegation_from_zeros(0x20010db8aabbccddull), 64);
  // 9 trailing zeros rounds down to the /56 nibble boundary.
  EXPECT_EQ(inferred_delegation_from_zeros(0x20010db8aabbc600ull >> 1 << 1),
            56);
}

// Property sweep: parse(to_string(x)) == x for random addresses.
class IPv6RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IPv6RoundTrip, RandomAddressesRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    // Mix fully random addresses with zero-dense ones (compression paths).
    U128 bits{rng.next_u64(), rng.next_u64()};
    if (i % 3 == 0) bits.hi &= rng.next_u64() & rng.next_u64();
    if (i % 3 == 0) bits.lo &= rng.next_u64() & rng.next_u64();
    if (i % 7 == 0) bits.lo = 0;
    if (i % 11 == 0) bits.hi = 0;
    IPv6Address a{bits};
    auto parsed = IPv6Address::parse(a.to_string());
    ASSERT_TRUE(parsed.has_value()) << a.to_string();
    EXPECT_EQ(*parsed, a) << a.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IPv6RoundTrip,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234567u));


TEST(IPv6, ParseRejectsExcessGroupsWithoutScanningWhole) {
  // Regression for the fuzz-found unbounded tokenization: a huge
  // "1:1:1:..." input must be rejected after at most 9 groups, not
  // tokenized in full.
  std::string huge;
  for (int i = 0; i < 100000; ++i) huge += "1:";
  huge += "1";
  EXPECT_FALSE(IPv6Address::parse(huge).has_value());
}

TEST(IPv6, FuzzRegressionCorpus) {
  dynamips::testing::run_parse_corpus("ipv6", [](const std::string& s) {
    return IPv6Address::parse(s).has_value();
  });
}

}  // namespace
}  // namespace dynamips::net
