// test_isp_sweep — parameterized per-ISP invariants over the full pipeline:
// one small simulated study per Table-1 ISP, validated against the
// profile's ground truth.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/pipeline.h"
#include "simnet/isp.h"

namespace dynamips {
namespace {

class IspSweep : public ::testing::TestWithParam<const char*> {
 protected:
  static const core::AtlasStudy& study_for(const std::string& name) {
    static std::map<std::string, core::AtlasStudy> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
      core::AtlasStudyConfig cfg;
      cfg.atlas.probe_scale = 0.5;  // single-ISP runs can afford more probes
      cfg.atlas.window_hours = 13140;  // 1.5 years
      cfg.atlas.seed = 23;
      it = cache.emplace(name,
                         core::run_atlas_study({*simnet::find_isp(name)},
                                               cfg))
               .first;
    }
    return it->second;
  }

  simnet::IspProfile profile() const {
    return *simnet::find_isp(GetParam());
  }
};

TEST_P(IspSweep, ProbesSurviveSanitization) {
  const auto& study = study_for(GetParam());
  auto isp = profile();
  auto it = study.durations.find(isp.asn);
  ASSERT_NE(it, study.durations.end()) << GetParam();
  EXPECT_GT(it->second.probes, std::uint64_t(isp.atlas_probes / 4));
}

TEST_P(IspSweep, DualStackShareTracksProfile) {
  const auto& study = study_for(GetParam());
  auto isp = profile();
  const auto& d = study.durations.at(isp.asn);
  ASSERT_GT(d.probes, 10u);
  double share = double(d.ds_probes) / double(d.probes);
  EXPECT_NEAR(share, isp.dualstack_share, 0.22) << GetParam();
}

TEST_P(IspSweep, V6MovesCrossBgpNoMoreThanV4) {
  const auto& study = study_for(GetParam());
  auto isp = profile();
  const auto& s = study.spatial.at(isp.asn);
  if (s.v4_changes < 30 || s.v6_changes < 30) GTEST_SKIP();
  EXPECT_LE(s.pct_v6_diff_bgp(), s.pct_v4_diff_bgp() + 5.0) << GetParam();
}

TEST_P(IspSweep, Diff24TracksCalibration) {
  const auto& study = study_for(GetParam());
  auto isp = profile();
  const auto& s = study.spatial.at(isp.asn);
  if (s.v4_changes < 50) GTEST_SKIP();
  EXPECT_NEAR(s.pct_v4_diff_24() / 100.0, 1.0 - isp.p_same24, 0.12)
      << GetParam();
}

TEST_P(IspSweep, CplNeverBelowAnnouncementForSameBgpIsps) {
  const auto& study = study_for(GetParam());
  auto isp = profile();
  if (isp.p_same_bgp6 < 1.0 || isp.bgp6.size() > 1) GTEST_SKIP();
  const auto& cpl = study.spatial.at(isp.asn).cpl;
  int ann_len = isp.bgp6.front().length();
  for (int c = 0; c < ann_len; ++c)
    EXPECT_EQ(cpl.changes[std::size_t(c)], 0u)
        << GetParam() << " CPL " << c << " below the /" << ann_len
        << " announcement";
}

TEST_P(IspSweep, InferenceNeverUndershootsDelegation) {
  // Zero-bits inference can overestimate (scramblers) but must never infer
  // a prefix shorter than the shortest delegation the ISP hands out, save
  // for random-chance undershoot on probes with very few changes.
  const auto& study = study_for(GetParam());
  auto isp = profile();
  auto it = study.subscriber_inference.find(isp.asn);
  if (it == study.subscriber_inference.end() || it->second.size() < 10)
    GTEST_SKIP();
  int shortest = 64;
  for (const auto& e : isp.delegation.entries)
    shortest = std::min(shortest, e.length);
  // The paper's caveat: probes with very few changes can undershoot by
  // random chance (each extra shared zero bit halves in probability), so
  // the invariant is conditioned on a handful of observed changes.
  int undershoot = 0, considered = 0;
  for (const auto& inf : it->second) {
    if (inf.changes < 4) continue;
    ++considered;
    undershoot += inf.inferred_len < shortest;
  }
  if (considered < 10) GTEST_SKIP();
  EXPECT_LT(double(undershoot), 0.12 * double(considered)) << GetParam();
}

TEST_P(IspSweep, CooccurrenceTracksCoupling) {
  const auto& study = study_for(GetParam());
  auto isp = profile();
  const auto& d = study.durations.at(isp.asn);
  if (d.cooccur_total < 100) GTEST_SKIP();
  // Co-occurrence >= coupling (own v6 changes can also coincide), and not
  // wildly above it.
  EXPECT_GE(d.cooccurrence(), isp.couple_v6_to_v4 - 0.12) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Table1, IspSweep,
                         ::testing::Values("DTAG", "Comcast", "Orange",
                                           "LGI", "Free SAS", "Kabel DE",
                                           "Proximus", "Versatel", "BT",
                                           "Netcologne"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (!std::isalnum(std::uint8_t(c))) c = '_';
                           return n;
                         });

}  // namespace
}  // namespace dynamips
