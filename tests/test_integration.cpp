// test_integration — full-pipeline checks against simulator ground truth
// and the paper's headline shapes, at reduced scale.
#include <gtest/gtest.h>

#include <map>

#include "core/pipeline.h"
#include "simnet/isp.h"
#include "stats/periodicity.h"
#include "stats/summary.h"

namespace dynamips {
namespace {

const core::AtlasStudy& atlas_study() {
  static core::AtlasStudy study = [] {
    core::AtlasStudyConfig cfg;
    cfg.atlas.probe_scale = 0.15;
    cfg.atlas.window_hours = 17520;  // two years
    cfg.atlas.seed = 11;
    return core::run_atlas_study(simnet::paper_isps(), cfg);
  }();
  return study;
}

const core::CdnStudy& cdn_study() {
  static core::CdnStudy study = [] {
    core::CdnStudyConfig cfg;
    cfg.cdn.subscriber_scale = 0.1;
    cfg.cdn.seed = 13;
    return core::run_cdn_study(
        cdn::default_cdn_population(cfg.cdn.subscriber_scale), cfg);
  }();
  return study;
}

bgp::Asn asn_of(const char* name) {
  return simnet::find_isp(name)->asn;
}

TEST(Integration, SanitizerKeepsMostProbes) {
  const auto& s = atlas_study().sanitize;
  EXPECT_GT(s.probes_seen, 300u);
  EXPECT_GT(double(s.probes_kept), 0.7 * double(s.probes_seen));
  EXPECT_GT(s.dropped_multihomed, 0u);
  EXPECT_GT(s.dropped_bad_tag, 0u);
  EXPECT_GT(s.split_probes, 0u);
  EXPECT_GT(s.test_address_records, 0u);
}

TEST(Integration, V6DurationsLongerThanV4) {
  // The paper's headline: IPv6 assignments outlast IPv4 in (most) ASes.
  for (const char* name : {"Orange", "Comcast", "BT", "Proximus"}) {
    const auto& d = atlas_study().durations.at(asn_of(name));
    std::vector<std::uint64_t> week{168};
    double v4_at_week = d.v4_nds.cumulative(week)[0];
    double v6_at_week = d.v6.cumulative(week)[0];
    EXPECT_LE(v6_at_week, v4_at_week + 0.05) << name;
  }
}

TEST(Integration, DualStackV4LongerThanNonDualStack) {
  for (const char* name : {"DTAG", "Orange", "BT", "Proximus"}) {
    const auto& d = atlas_study().durations.at(asn_of(name));
    // Compare time spent in short (<= 3 days) assignments.
    std::vector<std::uint64_t> t{72};
    EXPECT_LT(d.v4_ds.cumulative(t)[0], d.v4_nds.cumulative(t)[0] + 0.02)
        << name;
  }
}

TEST(Integration, PeriodicModesMatchGroundTruth) {
  stats::PeriodicityDetector det;
  struct Expect {
    const char* name;
    std::uint64_t period;
  };
  for (auto [name, period] : {Expect{"DTAG", 24}, Expect{"Orange", 168},
                              Expect{"BT", 336}, Expect{"Proximus", 36},
                              Expect{"Versatel", 24},
                              Expect{"Netcologne", 24}}) {
    const auto& d = atlas_study().durations.at(asn_of(name));
    auto mode = det.dominant(d.v4_nds.empty() ? d.v4_ds : d.v4_nds);
    ASSERT_TRUE(mode.has_value()) << name;
    EXPECT_EQ(mode->period_hours, period) << name;
  }
  // Comcast has no periodic renumbering.
  const auto& comcast = atlas_study().durations.at(asn_of("Comcast"));
  EXPECT_FALSE(det.dominant(comcast.v4_nds).has_value());
}

TEST(Integration, DtagCooccurrenceHigh) {
  const auto& d = atlas_study().durations.at(asn_of("DTAG"));
  EXPECT_GT(d.cooccurrence(), 0.85) << "paper: 90.6% same-hour changes";
  const auto& c = atlas_study().durations.at(asn_of("Comcast"));
  EXPECT_LT(c.cooccurrence(), 0.4) << "paper: mostly not co-occurring";
}

TEST(Integration, Table2ShapesHold) {
  const auto& spatial = atlas_study().spatial;
  const auto& dtag = spatial.at(asn_of("DTAG"));
  EXPECT_GT(dtag.pct_v4_diff_24(), 85.0);
  EXPECT_NEAR(dtag.pct_v4_diff_bgp(), 27.0, 10.0);
  EXPECT_LT(dtag.pct_v6_diff_bgp(), 2.0);
  const auto& free_sas = spatial.at(asn_of("Free SAS"));
  EXPECT_GT(free_sas.pct_v6_diff_bgp(), 15.0) << "the Table-2 outlier";
  // v6 moves cross BGP prefixes far less often than v4, everywhere.
  for (const auto& [asn, s] : spatial) {
    if (s.v4_changes < 50 || s.v6_changes < 50) continue;
    EXPECT_LT(s.pct_v6_diff_bgp(), s.pct_v4_diff_bgp())
        << atlas_study().as_names.at(asn);
  }
}

TEST(Integration, SubscriberInferenceRecoversDelegations) {
  auto modal = [&](const char* name) {
    const auto& infs = atlas_study().subscriber_inference.at(asn_of(name));
    std::map<int, int> hist;
    for (const auto& i : infs) ++hist[i.inferred_len];
    int best = 0, n = 0;
    for (auto& [len, c] : hist)
      if (c > n) { n = c; best = len; }
    return best;
  };
  EXPECT_EQ(modal("Orange"), 56);
  EXPECT_EQ(modal("Versatel"), 56);
  EXPECT_EQ(modal("Kabel DE"), 62);
  EXPECT_EQ(modal("Netcologne"), 48);
}

TEST(Integration, DtagInferenceBimodal) {
  // Zero-filling CPEs resolve to /56; scrambling CPEs pollute to /64.
  const auto& infs = atlas_study().subscriber_inference.at(asn_of("DTAG"));
  int at56 = 0, at64 = 0;
  for (const auto& i : infs) {
    at56 += i.inferred_len == 56;
    at64 += i.inferred_len == 64;
  }
  EXPECT_GT(at56, 0);
  EXPECT_GT(at64, 0);
  EXPECT_GT(at56 + at64, int(0.8 * double(infs.size())));
}

TEST(Integration, PoolInferenceFindsThe40s) {
  const auto& pools = atlas_study().pool_inference.at(asn_of("DTAG"));
  ASSERT_FALSE(pools.empty());
  int at40ish = 0;
  for (const auto& p : pools) at40ish += p.pool_len >= 38 && p.pool_len <= 42;
  EXPECT_GT(double(at40ish), 0.5 * double(pools.size()))
      << "DTAG pools are /40s";
}

TEST(Integration, Fig8UniquePoolPrefixesFew) {
  const auto& s = atlas_study().spatial.at(asn_of("DTAG"));
  const auto& u40 = s.unique_prefixes.at(40);
  const auto& u64 = s.unique_prefixes.at(64);
  ASSERT_FALSE(u40.empty());
  double mean40 = 0, mean64 = 0;
  for (auto v : u40) mean40 += v;
  for (auto v : u64) mean64 += v;
  mean40 /= double(u40.size());
  mean64 /= double(u64.size());
  EXPECT_LT(mean40, 4.0) << "probes see only a handful of /40s";
  EXPECT_GT(mean64, 10.0) << "but many distinct /64s";
}

TEST(Integration, CdnMobileVsFixedDurations) {
  const auto& an = cdn_study().analyzer;
  std::vector<double> fixed, mobile;
  for (const auto& [cls, durations] : an.registry_durations()) {
    auto& sink = cls.mobile ? mobile : fixed;
    sink.insert(sink.end(), durations.begin(), durations.end());
  }
  ASSERT_FALSE(fixed.empty());
  ASSERT_FALSE(mobile.empty());
  double fixed_median = stats::median(fixed);
  double mobile_median = stats::median(mobile);
  EXPECT_LE(mobile_median, 2.0);
  EXPECT_GE(fixed_median, 20.0);
  EXPECT_GT(fixed_median, 10.0 * mobile_median)
      << "paper: fixed associations last ~60x longer at median";
}

TEST(Integration, CdnCardinalityShapes) {
  const auto& an = cdn_study().analyzer;
  std::uint32_t mobile_max = 0;
  std::vector<double> fixed_degrees;
  for (const auto& [degree, mobile] : an.degrees()) {
    if (mobile)
      mobile_max = std::max(mobile_max, degree);
    else
      fixed_degrees.push_back(double(degree));
  }
  EXPECT_GT(mobile_max, 5000u) << "CGNAT multiplexing";
  ASSERT_FALSE(fixed_degrees.empty());
  double med = stats::median(fixed_degrees);
  EXPECT_GT(med, 40.0);
  EXPECT_LT(med, 600.0) << "fixed degrees sit near the /24 active count";
}

TEST(Integration, CdnTrailingZerosPerRegistry) {
  const auto& z = cdn_study().analyzer.zero_counts();
  auto frac = [&](bgp::Registry r, bool mobile) {
    auto it = z.find(core::RegistryClass{r, mobile});
    return it == z.end() ? 0.0 : it->second.inferable_fraction();
  };
  // Fixed: RIPE/AFRINIC high, LACNIC low (Fig. 7).
  EXPECT_GT(frac(bgp::Registry::kRipe, false), 0.5);
  EXPECT_GT(frac(bgp::Registry::kAfrinic, false), 0.6);
  EXPECT_LT(frac(bgp::Registry::kLacnic, false), 0.3);
  // Mobile: nothing beyond chance.
  for (bgp::Registry r : bgp::kAllRegistries)
    EXPECT_LT(frac(r, true), 0.12) << bgp::registry_name(r);
}

TEST(Integration, CdnAsnFilterRemovesNoise) {
  const auto& an = cdn_study().analyzer;
  EXPECT_GT(an.total_mismatched(), 0u);
  double share = double(an.total_mismatched()) /
                 double(an.total_tuples() + an.total_mismatched());
  EXPECT_LT(share, 0.05);
}

TEST(Integration, EeLtdDraysRipeMobileTail) {
  const auto& an = cdn_study().analyzer;
  auto it = an.by_asn().find(12576);
  ASSERT_NE(it, an.by_asn().end());
  EXPECT_TRUE(it->second.mobile);
  double med = stats::median(it->second.durations_days);
  EXPECT_GT(med, 5.0) << "EE durations reach tens of days";
}

}  // namespace
}  // namespace dynamips
