#include "simnet/pools.h"

#include <gtest/gtest.h>

#include <set>

#include "netaddr/rng.h"

namespace dynamips::simnet {
namespace {

using net::IPv4Address;
using net::Prefix4;
using net::Prefix6;
using net::Rng;

TEST(Pools, RandomSubprefixStaysInsideParent) {
  Rng rng(1);
  auto parent = *Prefix6::parse("2003::/19");
  for (int i = 0; i < 500; ++i) {
    Prefix6 child = random_subprefix(parent, 56, rng);
    EXPECT_EQ(child.length(), 56);
    EXPECT_TRUE(parent.contains(child)) << child.to_string();
    // Canonical: no bits below /56.
    EXPECT_TRUE((child.address().bits() & ~net::mask128(56)).is_zero());
  }
}

TEST(Pools, RandomSubprefixSameLengthIsIdentity) {
  Rng rng(2);
  auto parent = *Prefix6::parse("2a02:8100::/22");
  EXPECT_EQ(random_subprefix(parent, 22, rng), parent);
}

TEST(Pools, RandomSubprefixCoversTheSpace) {
  // Drawing /21s from a /19 must produce all four children.
  Rng rng(3);
  auto parent = *Prefix6::parse("2003::/19");
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i)
    seen.insert(random_subprefix(parent, 21, rng).address().network64());
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Pools, RandomHostAvoidsNetworkAndBroadcast) {
  Rng rng(4);
  auto block = *Prefix4::parse("192.0.2.0/24");
  for (int i = 0; i < 1000; ++i) {
    IPv4Address a = random_host(block, rng);
    EXPECT_TRUE(block.contains(a));
    EXPECT_NE(a.octets()[3], 0);
    EXPECT_NE(a.octets()[3], 255);
  }
}

TEST(Pools, V4PlanInitialInsideAnnouncements) {
  Rng rng(5);
  V4AddressPlan plan({*Prefix4::parse("10.0.0.0/12"),
                      *Prefix4::parse("172.16.0.0/16")},
                     0.1, 0.5);
  for (int i = 0; i < 500; ++i) {
    IPv4Address a = plan.initial(rng);
    bool inside = false;
    for (const auto& p : plan.bgp_prefixes()) inside |= p.contains(a);
    EXPECT_TRUE(inside) << a.to_string();
  }
}

TEST(Pools, V4PlanNextNeverReturnsSameAddress) {
  Rng rng(6);
  V4AddressPlan plan({*Prefix4::parse("10.0.0.0/20")}, 0.5, 1.0);
  IPv4Address cur = plan.initial(rng);
  for (int i = 0; i < 1000; ++i) {
    IPv4Address next = plan.next(cur, rng);
    EXPECT_NE(next, cur);
    cur = next;
  }
}

TEST(Pools, V4PlanSame24Probability) {
  Rng rng(7);
  V4AddressPlan plan({*Prefix4::parse("10.0.0.0/12")}, 0.3, 1.0);
  IPv4Address cur = plan.initial(rng);
  int same24 = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    IPv4Address next = plan.next(cur, rng);
    same24 += net::slash24_of(next) == net::slash24_of(cur);
    cur = next;
  }
  EXPECT_NEAR(double(same24) / n, 0.3, 0.02);
}

TEST(Pools, V4PlanCrossBgpProbability) {
  Rng rng(8);
  V4AddressPlan plan({*Prefix4::parse("10.0.0.0/12"),
                      *Prefix4::parse("20.0.0.0/12")},
                     0.0, 0.7);
  IPv4Address cur = plan.initial(rng);
  int cross = 0;
  const int n = 10000;
  auto bgp_of = [&](IPv4Address a) {
    return plan.bgp_prefixes()[0].contains(a) ? 0 : 1;
  };
  for (int i = 0; i < n; ++i) {
    IPv4Address next = plan.next(cur, rng);
    cross += bgp_of(next) != bgp_of(cur);
    cur = next;
  }
  EXPECT_NEAR(double(cross) / n, 0.3, 0.02);
}

TEST(Pools, HomePoolsInsideAnnouncementsAndDistinct) {
  Rng rng(9);
  V6AddressPlan plan({*Prefix6::parse("2003::/19")}, 40, 1.0);
  for (int trial = 0; trial < 50; ++trial) {
    HomePools home = plan.assign_home_pools(3, 0.15, rng);
    ASSERT_EQ(home.pools.size(), 3u);
    ASSERT_EQ(home.weights.size(), 3u);
    std::set<std::uint64_t> uniq;
    double wsum = 0;
    for (std::size_t i = 0; i < home.pools.size(); ++i) {
      EXPECT_EQ(home.pools[i].length(), 40);
      EXPECT_TRUE(
          plan.bgp_prefixes()[0].contains(home.pools[i]));
      uniq.insert(home.pools[i].address().network64());
      wsum += home.weights[i];
    }
    EXPECT_EQ(uniq.size(), 3u) << "home pools must be distinct";
    EXPECT_NEAR(wsum, 1.0, 1e-9);
    EXPECT_NEAR(home.weights[0], 0.85, 1e-9);
  }
}

TEST(Pools, SingleHomePoolGetsFullWeight) {
  Rng rng(10);
  V6AddressPlan plan({*Prefix6::parse("2601::/20")}, 40, 1.0);
  HomePools home = plan.assign_home_pools(1, 0.15, rng);
  ASSERT_EQ(home.pools.size(), 1u);
  EXPECT_DOUBLE_EQ(home.weights[0], 1.0);
}

TEST(Pools, DelegationInsidePoolAndFresh) {
  Rng rng(11);
  V6AddressPlan plan({*Prefix6::parse("2003::/19")}, 40, 1.0);
  HomePools home = plan.assign_home_pools(2, 0.15, rng);
  net::Prefix6 cur{};
  for (int i = 0; i < 500; ++i) {
    Prefix6 d = plan.draw_delegation(home, 56, cur, rng);
    EXPECT_EQ(d.length(), 56);
    bool inside = false;
    for (const auto& pool : home.pools) inside |= pool.contains(d);
    EXPECT_TRUE(inside);
    if (cur.length() > 0) {
      EXPECT_NE(d, cur);
    }
    cur = d;
  }
}

TEST(Pools, DelegationCrossBgpRate) {
  Rng rng(12);
  V6AddressPlan plan({*Prefix6::parse("2a01:e000::/20"),
                      *Prefix6::parse("2a01:b000::/20")},
                     40, 0.6);
  HomePools home = plan.assign_home_pools(3, 0.15, rng);
  auto bgp_of = [&](const Prefix6& p) {
    return plan.bgp_prefixes()[0].contains(p) ? 0 : 1;
  };
  net::Prefix6 cur = plan.draw_delegation(home, 56, {}, rng);
  int cross = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    Prefix6 d = plan.draw_delegation(home, 56, cur, rng);
    cross += bgp_of(d) != bgp_of(cur);
    cur = d;
  }
  // Cross rate tracks 1 - p_same_bgp (up to the availability of away pools).
  EXPECT_NEAR(double(cross) / n, 0.4, 0.08);
}

TEST(Pools, DelegationWithSingleBgpNeverCrosses) {
  Rng rng(13);
  V6AddressPlan plan({*Prefix6::parse("2003::/19")}, 40, 0.5);
  HomePools home = plan.assign_home_pools(2, 0.15, rng);
  net::Prefix6 cur = plan.draw_delegation(home, 56, {}, rng);
  auto announced = *Prefix6::parse("2003::/19");
  for (int i = 0; i < 200; ++i) {
    cur = plan.draw_delegation(home, 56, cur, rng);
    EXPECT_TRUE(announced.contains(cur));
  }
}

// Parameterized: delegation lengths across the realistic range keep all
// invariants (inside pool, canonical, fresh).
class DelegationLengths : public ::testing::TestWithParam<int> {};

TEST_P(DelegationLengths, InvariantsHold) {
  int len = GetParam();
  Rng rng(100 + std::uint64_t(len));
  V6AddressPlan plan({*Prefix6::parse("2a02:8100::/22")}, 40, 1.0);
  HomePools home = plan.assign_home_pools(2, 0.15, rng);
  net::Prefix6 cur{};
  for (int i = 0; i < 100; ++i) {
    Prefix6 d = plan.draw_delegation(home, len, cur, rng);
    EXPECT_EQ(d.length(), len);
    EXPECT_TRUE((d.address().bits() & ~net::mask128(unsigned(len))).is_zero());
    bool inside = false;
    for (const auto& pool : home.pools) inside |= pool.contains(d);
    EXPECT_TRUE(inside);
    cur = d;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, DelegationLengths,
                         ::testing::Values(48, 52, 56, 60, 62, 64));

}  // namespace
}  // namespace dynamips::simnet
