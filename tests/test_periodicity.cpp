#include "stats/periodicity.h"

#include <gtest/gtest.h>

#include "netaddr/rng.h"

namespace dynamips::stats {
namespace {

TEST(Periodicity, Detects24HourMode) {
  // DTAG-style: most assignments last exactly 24 h, a few renew to 48 h.
  TotalTimeFraction t;
  t.add(24, 1000);
  t.add(48, 50);
  t.add(700, 3);
  PeriodicityDetector det;
  auto dom = det.dominant(t);
  ASSERT_TRUE(dom.has_value());
  EXPECT_EQ(dom->period_hours, 24u);
  EXPECT_GT(dom->time_fraction, 0.8);
}

TEST(Periodicity, DetectsWeeklyMode) {
  TotalTimeFraction t;
  t.add(168, 500);
  t.add(336, 20);
  PeriodicityDetector det;
  auto modes = det.detect(t);
  ASSERT_FALSE(modes.empty());
  EXPECT_EQ(modes.front().period_hours, 168u);
}

TEST(Periodicity, NoModeInLongTail) {
  // Comcast-style: long, spread-out durations with no periodic structure.
  TotalTimeFraction t;
  net::Rng rng(3);
  for (int i = 0; i < 1000; ++i)
    t.add(std::uint64_t(rng.exponential(2000.0)) + 500);
  PeriodicityDetector det;
  EXPECT_FALSE(det.dominant(t).has_value());
}

TEST(Periodicity, ToleranceCapturesJitter) {
  // Renewals at 23-25 h due to hourly sampling jitter still count as 24 h.
  TotalTimeFraction t;
  t.add(23, 300);
  t.add(24, 400);
  t.add(25, 300);
  PeriodicityDetector det;
  auto dom = det.dominant(t);
  ASSERT_TRUE(dom.has_value());
  EXPECT_EQ(dom->period_hours, 24u);
  EXPECT_NEAR(dom->time_fraction, 1.0, 1e-9);
}

TEST(Periodicity, MassNearIsWindowed) {
  TotalTimeFraction t;
  t.add(24, 100);
  t.add(30, 100);  // outside the 10% window of 24
  PeriodicityDetector det;
  double m = det.mass_near(t, 24);
  EXPECT_NEAR(m, 24.0 * 100 / (24.0 * 100 + 30.0 * 100), 1e-9);
}

TEST(Periodicity, BelowThresholdRejected) {
  TotalTimeFraction t;
  t.add(24, 10);     // small periodic component
  t.add(8000, 100);  // dominated by long static assignments
  PeriodicityDetector det;
  EXPECT_FALSE(det.check(t, 24).has_value());
}

TEST(Periodicity, ExtraCandidates) {
  // ANTEL's 12 h and Global Village's 48 h periods are default candidates;
  // a custom 60 h period must be passed explicitly.
  TotalTimeFraction t;
  t.add(60, 1000);
  PeriodicityDetector det;
  EXPECT_TRUE(det.detect(t).empty());
  auto modes = det.detect(t, {60});
  ASSERT_EQ(modes.size(), 1u);
  EXPECT_EQ(modes.front().period_hours, 60u);
}

TEST(Periodicity, OverlapDeduplication) {
  // Candidates 24 h and 27 h have overlapping 10% windows ([21.6,26.4] and
  // [24.3,29.7]); both qualify, so the stronger one must win the dedup.
  TotalTimeFraction t;
  t.add(24, 700);
  t.add(27, 300);
  PeriodicityDetector det;
  auto modes = det.detect(t, {27});
  ASSERT_EQ(modes.size(), 1u) << "overlapping windows must deduplicate";
  EXPECT_EQ(modes.front().period_hours, 24u);
}

TEST(Periodicity, EmptyAccumulator) {
  TotalTimeFraction t;
  PeriodicityDetector det;
  EXPECT_FALSE(det.dominant(t).has_value());
  EXPECT_EQ(det.mass_near(t, 24), 0.0);
}

}  // namespace
}  // namespace dynamips::stats
