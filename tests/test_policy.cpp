#include "simnet/policy.h"

#include <gtest/gtest.h>

#include <map>

#include "netaddr/rng.h"

namespace dynamips::simnet {
namespace {

using net::Rng;

TEST(Policy, StaticPolicyNeverChanges) {
  ChangePolicy p;  // all zeros
  EXPECT_TRUE(p.is_static());
  Rng rng(1);
  auto d = draw_assignment_duration(p, rng);
  EXPECT_EQ(d.hours, kNoEnd);
  EXPECT_EQ(d.cause, ChangeCause::kNone);
}

TEST(Policy, OutageWithoutChangeProbIsStatic) {
  ChangePolicy p;
  p.outages_per_year = 10;
  p.change_on_outage_prob = 0;
  EXPECT_TRUE(p.is_static());
}

TEST(Policy, RadiusStyleLeaseIsExact) {
  // keep_prob 0: every lease expiry renumbers, duration == lease exactly.
  ChangePolicy p;
  p.lease_hours = 24;
  p.renew_keep_prob = 0.0;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    auto d = draw_assignment_duration(p, rng);
    EXPECT_EQ(d.hours, 24u);
    EXPECT_EQ(d.cause, ChangeCause::kLease);
  }
}

TEST(Policy, DhcpRenewalsYieldLeaseMultiples) {
  ChangePolicy p;
  p.lease_hours = 24;
  p.renew_keep_prob = 0.6;
  Rng rng(3);
  std::map<Hour, int> counts;
  for (int i = 0; i < 5000; ++i) {
    auto d = draw_assignment_duration(p, rng);
    EXPECT_EQ(d.hours % 24, 0u) << "durations must be lease multiples";
    ++counts[d.hours];
  }
  // Geometric: P(24h) ~ 0.4, P(48h) ~ 0.24.
  EXPECT_NEAR(double(counts[24]) / 5000.0, 0.4, 0.03);
  EXPECT_NEAR(double(counts[48]) / 5000.0, 0.24, 0.03);
}

TEST(Policy, AdminRenumberingIsExponential) {
  ChangePolicy p;
  p.mean_admin_hours = 1000;
  Rng rng(4);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto d = draw_assignment_duration(p, rng);
    EXPECT_EQ(d.cause, ChangeCause::kAdmin);
    EXPECT_GE(d.hours, 1u);
    sum += double(d.hours);
  }
  EXPECT_NEAR(sum / n, 1000.0, 30.0);
}

TEST(Policy, OutageDrivenChange) {
  ChangePolicy p;
  p.outages_per_year = 12;    // monthly
  p.change_on_outage_prob = 1.0;
  Rng rng(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto d = draw_assignment_duration(p, rng);
    EXPECT_EQ(d.cause, ChangeCause::kOutage);
    sum += double(d.hours);
  }
  EXPECT_NEAR(sum / n, 730.0, 30.0);  // mean gap = 8760/12
}

TEST(Policy, CompositionPicksEarliest) {
  // Short lease dominates a long admin process.
  ChangePolicy p;
  p.lease_hours = 24;
  p.renew_keep_prob = 0.0;
  p.mean_admin_hours = 100000;
  Rng rng(6);
  int lease_wins = 0;
  for (int i = 0; i < 1000; ++i) {
    auto d = draw_assignment_duration(p, rng);
    EXPECT_LE(d.hours, 24u);
    lease_wins += d.cause == ChangeCause::kLease;
  }
  EXPECT_GT(lease_wins, 990);
}

TEST(Policy, KeepProbOneDegradesToStaticDraw) {
  ChangePolicy p;
  p.lease_hours = 24;
  p.renew_keep_prob = 1.0;
  Rng rng(7);
  auto d = draw_assignment_duration(p, rng);
  // Chain is capped; either very long or treated as no lease change.
  EXPECT_TRUE(d.hours == kNoEnd || d.hours >= 24u * 4000);
}

TEST(Policy, DelegationDrawRespectsWeights) {
  DelegationPolicy d;
  d.entries = {{56, 0.7}, {64, 0.3}};
  Rng rng(8);
  int n56 = 0, n64 = 0, other = 0;
  for (int i = 0; i < 10000; ++i) {
    int len = d.draw(rng);
    if (len == 56) ++n56;
    else if (len == 64) ++n64;
    else ++other;
  }
  EXPECT_EQ(other, 0);
  EXPECT_NEAR(double(n56) / 10000.0, 0.7, 0.02);
}

TEST(Policy, DelegationSingleEntry) {
  DelegationPolicy d;  // default {56, 1.0}
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.draw(rng), 56);
}

}  // namespace
}  // namespace dynamips::simnet
