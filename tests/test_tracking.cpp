#include "core/tracking.h"

#include <gtest/gtest.h>

#include "netaddr/iid.h"

namespace dynamips::core {
namespace {

using net::IPv6Address;

constexpr std::uint64_t kEui64 = 0x021122fffe334455ull;
constexpr std::uint64_t kPrivacy1 = 0x1234567812345678ull;
constexpr std::uint64_t kPrivacy2 = 0x8765432187654321ull;

CleanProbe probe(std::initializer_list<std::pair<std::uint64_t,
                                                 std::uint64_t>> obs) {
  CleanProbe cp;
  cp.probe_id = 1;
  cp.asn = 100;
  Hour h = 0;
  for (auto [net, iid] : obs)
    cp.v6.push_back({h++, IPv6Address{net, iid}, true});
  return cp;
}

TEST(Tracking, Eui64FollowedAcrossRenumbering) {
  auto cp = probe({{0x2003000000001100ull, kEui64},
                   {0x2003000000002200ull, kEui64},
                   {0x2003000000003300ull, kEui64}});
  auto tracks = TrackingAnalyzer::tracks_of(cp);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_TRUE(tracks[0].eui64);
  EXPECT_EQ(tracks[0].distinct_64s, 3u);
  EXPECT_TRUE(tracks[0].survives_renumbering());
  EXPECT_EQ(tracks[0].tracked_span(), 2u);
}

TEST(Tracking, PrivacyRotationBreaksTheLink) {
  auto cp = probe({{0x2003000000001100ull, kPrivacy1},
                   {0x2003000000002200ull, kPrivacy2}});
  auto tracks = TrackingAnalyzer::tracks_of(cp);
  ASSERT_EQ(tracks.size(), 2u);
  for (const auto& t : tracks) {
    EXPECT_FALSE(t.eui64);
    EXPECT_FALSE(t.survives_renumbering());
  }
}

TEST(Tracking, MixedDevicesSeparated) {
  auto cp = probe({{0x2003000000001100ull, kEui64},
                   {0x2003000000001100ull, kPrivacy1},
                   {0x2003000000002200ull, kEui64}});
  auto tracks = TrackingAnalyzer::tracks_of(cp);
  EXPECT_EQ(tracks.size(), 2u);
}

TEST(Tracking, PerAsAggregation) {
  TrackingAnalyzer an;
  an.add_probe(probe({{0x2003000000001100ull, kEui64},
                      {0x2003000000002200ull, kEui64}}));
  auto p2 = probe({{0x2003000000001100ull, kPrivacy1},
                   {0x2003000000002200ull, kPrivacy2}});
  p2.probe_id = 2;
  an.add_probe(p2);
  const auto& as = an.by_as().at(100);
  EXPECT_EQ(as.probes, 2u);
  EXPECT_EQ(as.eui64_probes, 1u);
  EXPECT_EQ(as.devices, 3u);
  EXPECT_EQ(as.eui64_devices, 1u);
  EXPECT_EQ(as.cross_network_tracked, 1u);
  EXPECT_DOUBLE_EQ(as.eui64_probe_share(), 0.5);
  EXPECT_DOUBLE_EQ(as.cross_network_share(), 1.0);
}

TEST(Tracking, NoV6NoEntry) {
  TrackingAnalyzer an;
  CleanProbe cp;
  cp.asn = 100;
  an.add_probe(cp);
  EXPECT_TRUE(an.by_as().empty());
}

TEST(Tracking, StableWithinOneNetworkIsNotCrossNetwork) {
  auto cp = probe({{0x2003000000001100ull, kEui64},
                   {0x2003000000001100ull, kEui64}});
  auto tracks = TrackingAnalyzer::tracks_of(cp);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_FALSE(tracks[0].survives_renumbering());
}

}  // namespace
}  // namespace dynamips::core
