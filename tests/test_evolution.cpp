#include "core/evolution.h"

#include <gtest/gtest.h>

#include "simnet/isp.h"
#include "simnet/subscriber.h"

namespace dynamips::core {
namespace {

using net::IPv4Address;

CleanProbe probe_with_epochal_changes() {
  // Year 0: changes every 24h; year 1: every 168h.
  CleanProbe cp;
  cp.probe_id = 1;
  cp.asn = 100;
  Hour h = 0;
  auto addr = [](std::uint32_t epoch) {
    return IPv4Address{0x0a000000u + epoch * 256 + 1};
  };
  for (; h < 8760; ++h)
    cp.v4.push_back({h, addr(std::uint32_t(h / 24)), false});
  for (; h < 2 * 8760; ++h)
    cp.v4.push_back({h, addr(1000 + std::uint32_t(h / 168)), false});
  return cp;
}

TEST(Evolution, BucketsByStartYear) {
  EvolutionAnalyzer an;
  an.add_probe(probe_with_epochal_changes());
  auto trend = an.trend(100, 24, &YearDurations::v4_nds);
  ASSERT_EQ(trend.size(), 2u);
  EXPECT_GT(trend[0], 0.9) << "year 0 dominated by 1-day durations";
  EXPECT_LT(trend[1], 0.1) << "year 1 durations are weekly";
}

TEST(Evolution, DualStackSplitRespected) {
  auto cp = probe_with_epochal_changes();
  // Add consistent v6 reporting so the probe classifies dual-stack.
  for (const auto& o : cp.v4)
    cp.v6.push_back({o.hour, net::IPv6Address{0x2001010000000000ull, 1},
                     true});
  EvolutionAnalyzer an;
  an.add_probe(cp);
  EXPECT_TRUE(an.trend(100, 24, &YearDurations::v4_nds).empty());
  EXPECT_FALSE(an.trend(100, 24, &YearDurations::v4_ds).empty());
}

TEST(Evolution, UnknownAsEmptyTrend) {
  EvolutionAnalyzer an;
  an.add_probe(probe_with_epochal_changes());
  EXPECT_TRUE(an.trend(999, 24, &YearDurations::v4_nds).empty());
}

TEST(Evolution, EraSwitchingInSimulator) {
  // A profile that renumbers daily in year 0 and weekly afterwards.
  auto isp = *simnet::find_isp("Versatel");
  isp.static_share = 0;
  isp.dualstack_share = 0;
  simnet::IspProfile::PolicyEra era;
  era.start = 8760;
  era.v4_nds = {.lease_hours = 168, .renew_keep_prob = 0.0,
                .mean_admin_hours = 0, .outages_per_year = 0,
                .change_on_outage_prob = 0};
  era.v4_ds = era.v4_nds;
  era.v6 = era.v4_nds;
  isp.eras.push_back(era);

  EXPECT_EQ(isp.v4_nds_at(0).lease_hours, 24u);
  EXPECT_EQ(isp.v4_nds_at(8759).lease_hours, 24u);
  EXPECT_EQ(isp.v4_nds_at(8760).lease_hours, 168u);

  simnet::TimelineGenerator gen(isp, 5);
  int early_short = 0, late_long = 0, early_total = 0, late_total = 0;
  for (std::uint32_t id = 0; id < 30; ++id) {
    auto tl = gen.generate(id, 0, 2 * 8760);
    for (std::size_t i = 1; i + 1 < tl.v4.size(); ++i) {
      simnet::Hour d = tl.v4[i].end - tl.v4[i].start;
      if (tl.v4[i].start < 8760) {
        ++early_total;
        early_short += d <= 48;
      } else {
        ++late_total;
        late_long += d >= 168;
      }
    }
  }
  ASSERT_GT(early_total, 100);
  ASSERT_GT(late_total, 20);
  EXPECT_GT(double(early_short) / early_total, 0.8);
  EXPECT_GT(double(late_long) / late_total, 0.8);
}

TEST(Evolution, WithDurationGrowthLengthensDurations) {
  auto base = *simnet::find_isp("DTAG");
  auto grown = simnet::with_duration_growth(base, 8760, 0.6);
  ASSERT_EQ(grown.eras.size(), 1u);
  EXPECT_GT(grown.eras[0].v4_nds.renew_keep_prob,
            base.v4_nds.renew_keep_prob);
  EXPECT_EQ(grown.v4_nds_at(0).renew_keep_prob, base.v4_nds.renew_keep_prob);
  EXPECT_GT(grown.v4_nds_at(8760).renew_keep_prob,
            base.v4_nds.renew_keep_prob);
}

TEST(Evolution, TimedDurationsCarryStart) {
  std::vector<Obs4> obs;
  for (Hour h = 0; h < 72; ++h)
    obs.push_back({h, IPv4Address{0x0a000000u + std::uint32_t(h / 24)},
                   false});
  auto spans = extract_spans4(obs);
  auto timed = sandwiched_timed4(spans);
  ASSERT_EQ(timed.size(), 1u);
  EXPECT_EQ(timed[0].start, 24u);
  EXPECT_EQ(timed[0].duration, 24u);
}

}  // namespace
}  // namespace dynamips::core
