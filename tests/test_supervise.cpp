// test_supervise.cpp — the self-healing supervisor (core/supervise.h).
//
// Policy tests drive RestartPolicy and the supervise() loop with a fake
// clock (advanced only by the recorded sleeps) and a scripted fake child,
// so backoff values, window expiry, and the exact give-up launch count
// are all deterministic assertions, not timing races. A handful of tests
// at the bottom exercise the real fork/exec runner against /bin/sh.
#include "core/supervise.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/status.h"
#include "obs/metrics.h"

namespace dynamips {
namespace {

namespace fs = std::filesystem;

double counter_value(const obs::MetricsSink& snap, const std::string& name) {
  auto it = snap.counters().find(name);
  return it == snap.counters().end() ? -1.0 : double(it->second.value);
}

// ------------------------------------------------------------ RestartPolicy

TEST(RestartPolicy, BackoffDoublesFromBaseAndCapsAtMax) {
  core::SuperviseConfig config;
  config.backoff_base_ms = 100;
  config.backoff_max_ms = 800;
  core::RestartPolicy policy(config);
  EXPECT_EQ(policy.on_failure(0), 100u);
  EXPECT_EQ(policy.on_failure(1), 200u);
  EXPECT_EQ(policy.on_failure(2), 400u);
  EXPECT_EQ(policy.on_failure(3), 800u);
  EXPECT_EQ(policy.on_failure(4), 800u);  // capped
  EXPECT_EQ(policy.consecutive_failures(), 5u);
}

TEST(RestartPolicy, ProgressResetsBackoffAndHistory) {
  core::SuperviseConfig config;
  config.backoff_base_ms = 100;
  config.crash_loop_failures = 2;
  config.crash_loop_window_ms = 60000;
  core::RestartPolicy policy(config);
  policy.on_failure(0);
  EXPECT_EQ(policy.on_failure(1), 200u);
  EXPECT_TRUE(policy.crash_looping(1));
  policy.on_progress();
  EXPECT_EQ(policy.consecutive_failures(), 0u);
  EXPECT_FALSE(policy.crash_looping(2));
  EXPECT_EQ(policy.on_failure(2), 100u);  // back to base after progress
}

TEST(RestartPolicy, CrashLoopTripsAtExactlyN) {
  core::SuperviseConfig config;
  config.crash_loop_failures = 3;
  config.crash_loop_window_ms = 60000;
  core::RestartPolicy policy(config);
  policy.on_failure(10);
  EXPECT_FALSE(policy.crash_looping(10));
  policy.on_failure(20);
  EXPECT_FALSE(policy.crash_looping(20));  // N-1 is not a loop
  policy.on_failure(30);
  EXPECT_TRUE(policy.crash_looping(30));  // N is, immediately
}

TEST(RestartPolicy, FailuresOutsideTheWindowDoNotCount) {
  core::SuperviseConfig config;
  config.crash_loop_failures = 3;
  config.crash_loop_window_ms = 1000;
  core::RestartPolicy policy(config);
  // Three failures, but spaced so the first has aged out of the trailing
  // window by the time the third lands: slow flapping is not a crash loop.
  policy.on_failure(0);
  policy.on_failure(600);
  policy.on_failure(1200);
  EXPECT_FALSE(policy.crash_looping(1200));
  // A fourth inside the window makes three recent ones: now it trips.
  policy.on_failure(1300);
  EXPECT_TRUE(policy.crash_looping(1300));
}

TEST(RestartPolicy, ZeroFailureThresholdDisablesTheDetector) {
  core::SuperviseConfig config;
  config.crash_loop_failures = 0;
  core::RestartPolicy policy(config);
  for (int i = 0; i < 50; ++i) policy.on_failure(std::uint64_t(i));
  EXPECT_FALSE(policy.crash_looping(50));
}

// ------------------------------------------------------------- fake child

/// Scripted ChildProcess: each start() consumes the next Run; poll()
/// reports "still running" `polls_before_exit` times, then the scripted
/// outcome. terminate() converts the current run into a signal death.
class FakeChild : public core::ChildProcess {
 public:
  struct Run {
    core::ChildOutcome outcome;
    int polls_before_exit = 0;
  };

  static Run exits(int code, int polls = 0) {
    return Run{core::ChildOutcome{code, 0}, polls};
  }
  static Run runs_forever() { return Run{core::ChildOutcome{}, 1 << 30}; }

  std::vector<Run> script;
  std::vector<std::vector<std::string>> launch_args;
  std::vector<std::vector<std::pair<std::string, std::string>>> launch_env;
  std::vector<bool> kills;  // hard flags, in order

  core::Status start(const std::vector<std::string>& extra_args,
                     const std::vector<std::pair<std::string, std::string>>&
                         extra_env) override {
    launch_args.push_back(extra_args);
    launch_env.push_back(extra_env);
    polls_left_ = run_ < script.size() ? script[run_].polls_before_exit : 0;
    running_ = true;
    killed_by_ = 0;
    return core::Status::Ok();
  }

  bool poll(core::ChildOutcome* out) override {
    if (!running_) return false;
    if (killed_by_ != 0) {
      out->term_signal = killed_by_;
      out->exit_code = 128 + killed_by_;
      ++run_;
      running_ = false;
      return true;
    }
    if (polls_left_ > 0) {
      --polls_left_;
      return false;
    }
    *out = run_ < script.size() ? script[run_].outcome : core::ChildOutcome{};
    ++run_;
    running_ = false;
    return true;
  }

  void terminate(bool hard) override {
    kills.push_back(hard);
    if (running_) killed_by_ = hard ? 9 : 15;
  }

  std::size_t runs_completed() const { return run_; }

 private:
  std::size_t run_ = 0;
  int polls_left_ = 0;
  bool running_ = false;
  int killed_by_ = 0;
};

/// A child whose launch itself fails (exec path gone, fork limit, ...).
class UnlaunchableChild : public core::ChildProcess {
 public:
  core::Status start(const std::vector<std::string>&,
                     const std::vector<std::pair<std::string, std::string>>&)
      override {
    return core::Status(core::StatusCode::kInternal, "fork failed (test)");
  }
  bool poll(core::ChildOutcome*) override { return false; }
  void terminate(bool) override {}
};

/// Fake clock + sleep pair: time advances only when the loop sleeps, so
/// every timestamp the policy sees is a pure function of the script.
struct FakeTime {
  std::uint64_t now = 0;
  std::vector<std::uint64_t> sleeps;
  std::function<std::uint64_t()> clock() {
    return [this] { return now; };
  }
  std::function<void(std::uint64_t)> sleep() {
    return [this](std::uint64_t ms) {
      sleeps.push_back(ms);
      now += ms;
    };
  }
};

// --------------------------------------------------------- supervise loop

TEST(Supervise, CleanExitNeedsNoRestart) {
  FakeChild child;
  child.script = {FakeChild::exits(0)};
  FakeTime time;
  core::SuperviseHooks hooks;
  hooks.clock_ms = time.clock();
  hooks.sleep_ms = time.sleep();
  hooks.log = [](const std::string&) {};
  core::SuperviseReport rep = supervise(child, core::SuperviseConfig{}, hooks);
  EXPECT_EQ(rep.exit_code, 0);
  EXPECT_EQ(rep.launches, 1u);
  EXPECT_EQ(rep.restarts, 0u);
  EXPECT_FALSE(rep.gave_up);
}

TEST(Supervise, FailTwiceThenSucceedWithDeterministicBackoff) {
  FakeChild child;
  child.script = {FakeChild::exits(3), FakeChild::exits(3),
                  FakeChild::exits(0)};
  core::SuperviseConfig config;
  config.backoff_base_ms = 100;
  config.backoff_max_ms = 30000;
  config.crash_loop_failures = 5;
  FakeTime time;
  core::SuperviseHooks hooks;
  hooks.clock_ms = time.clock();
  hooks.sleep_ms = time.sleep();
  hooks.log = [](const std::string&) {};
  core::SuperviseReport rep = supervise(child, config, hooks);
  EXPECT_EQ(rep.exit_code, 0);
  EXPECT_EQ(rep.launches, 3u);
  EXPECT_EQ(rep.restarts, 2u);
  // Instant scripted exits mean the only sleeps are the two backoffs, and
  // doubling from base is exact: 100ms then 200ms.
  EXPECT_EQ(time.sleeps, (std::vector<std::uint64_t>{100, 200}));
}

TEST(Supervise, CrashLoopGivesUpAtExactlyNLaunches) {
  FakeChild child;
  child.script = {FakeChild::exits(1), FakeChild::exits(1),
                  FakeChild::exits(1), FakeChild::exits(1)};
  core::SuperviseConfig config;
  config.backoff_base_ms = 50;
  config.crash_loop_failures = 3;
  config.crash_loop_window_ms = 60000;
  FakeTime time;
  obs::MetricsRegistry registry;
  core::SuperviseHooks hooks;
  hooks.clock_ms = time.clock();
  hooks.sleep_ms = time.sleep();
  hooks.describe_checkpoint = [] {
    return std::string("last durable checkpoint: out/study.ckpt");
  };
  hooks.log = [](const std::string&) {};
  hooks.metrics = &registry;
  core::SuperviseReport rep = supervise(child, config, hooks);
  EXPECT_TRUE(rep.gave_up);
  EXPECT_EQ(rep.exit_code, 1);
  EXPECT_EQ(rep.launches, 3u);  // exactly N, not N+1
  EXPECT_EQ(rep.restarts, 2u);
  EXPECT_NE(rep.diagnosis.find("crash loop"), std::string::npos);
  EXPECT_NE(rep.diagnosis.find("out/study.ckpt"), std::string::npos);
  auto snap = registry.snapshot();
  EXPECT_EQ(counter_value(snap, "supervise.launches"), 3.0);
  EXPECT_EQ(counter_value(snap, "supervise.restarts"), 2.0);
  EXPECT_EQ(counter_value(snap, "supervise.failures"), 3.0);
  EXPECT_EQ(counter_value(snap, "supervise.giveups"), 1.0);
}

TEST(Supervise, ProgressBetweenCrashesPreventsGiveUp) {
  // Same failure count as would trip the detector, but the checkpoint
  // token advances after every run: a healing run restarts indefinitely.
  FakeChild child;
  child.script = {FakeChild::exits(3), FakeChild::exits(3),
                  FakeChild::exits(3), FakeChild::exits(0)};
  core::SuperviseConfig config;
  config.backoff_base_ms = 10;
  config.crash_loop_failures = 2;
  config.crash_loop_window_ms = 60000;
  FakeTime time;
  core::SuperviseHooks hooks;
  hooks.clock_ms = time.clock();
  hooks.sleep_ms = time.sleep();
  hooks.progress = [&] { return std::uint64_t(child.runs_completed()); };
  hooks.log = [](const std::string&) {};
  core::SuperviseReport rep = supervise(child, config, hooks);
  EXPECT_EQ(rep.exit_code, 0);
  EXPECT_FALSE(rep.gave_up);
  EXPECT_EQ(rep.launches, 4u);
  EXPECT_EQ(rep.restarts, 3u);
  // And every restart backed off at base: progress keeps resetting the
  // exponential ladder.
  EXPECT_EQ(time.sleeps, (std::vector<std::uint64_t>{10, 10, 10}));
}

TEST(Supervise, ResumePathIsInjectedPerLaunch) {
  FakeChild child;
  child.script = {FakeChild::exits(3), FakeChild::exits(3),
                  FakeChild::exits(0)};
  core::SuperviseConfig config;
  config.backoff_base_ms = 10;
  config.crash_loop_failures = 10;
  FakeTime time;
  core::SuperviseHooks hooks;
  hooks.clock_ms = time.clock();
  hooks.sleep_ms = time.sleep();
  // No checkpoint before the first launch; durable one thereafter.
  hooks.resume_path = [&]() -> std::string {
    return child.runs_completed() == 0 ? "" : "out/study.ckpt";
  };
  hooks.log = [](const std::string&) {};
  core::SuperviseReport rep = supervise(child, config, hooks);
  EXPECT_EQ(rep.exit_code, 0);
  ASSERT_EQ(child.launch_args.size(), 3u);
  EXPECT_TRUE(child.launch_args[0].empty());
  EXPECT_EQ(child.launch_args[1],
            (std::vector<std::string>{"--resume-from", "out/study.ckpt"}));
  EXPECT_EQ(child.launch_args[2],
            (std::vector<std::string>{"--resume-from", "out/study.ckpt"}));
}

TEST(Supervise, LaunchAndRestartCountsTravelInTheEnvironment) {
  FakeChild child;
  child.script = {FakeChild::exits(3), FakeChild::exits(0)};
  core::SuperviseConfig config;
  config.backoff_base_ms = 10;
  FakeTime time;
  core::SuperviseHooks hooks;
  hooks.clock_ms = time.clock();
  hooks.sleep_ms = time.sleep();
  hooks.log = [](const std::string&) {};
  supervise(child, config, hooks);
  ASSERT_EQ(child.launch_env.size(), 2u);
  using Env = std::vector<std::pair<std::string, std::string>>;
  EXPECT_EQ(child.launch_env[0],
            (Env{{"DYNAMIPS_SUPERVISE_LAUNCHES", "1"},
                 {"DYNAMIPS_SUPERVISE_RESTARTS", "0"}}));
  EXPECT_EQ(child.launch_env[1],
            (Env{{"DYNAMIPS_SUPERVISE_LAUNCHES", "2"},
                 {"DYNAMIPS_SUPERVISE_RESTARTS", "1"}}));
}

TEST(Supervise, UsageErrorsAreNotRestartable) {
  FakeChild child;
  child.script = {FakeChild::exits(2)};
  FakeTime time;
  core::SuperviseHooks hooks;
  hooks.clock_ms = time.clock();
  hooks.sleep_ms = time.sleep();
  hooks.log = [](const std::string&) {};
  core::SuperviseReport rep = supervise(child, core::SuperviseConfig{}, hooks);
  EXPECT_EQ(rep.exit_code, 2);
  EXPECT_EQ(rep.launches, 1u);
  EXPECT_EQ(rep.restarts, 0u);
  EXPECT_NE(rep.diagnosis.find("not restartable"), std::string::npos);
}

TEST(Supervise, OperatorStopTerminatesAndForwardsTheChildCode) {
  FakeChild child;
  child.script = {FakeChild::runs_forever()};
  core::SuperviseConfig config;
  config.poll_ms = 100;
  FakeTime time;
  core::SuperviseHooks hooks;
  hooks.clock_ms = time.clock();
  hooks.sleep_ms = time.sleep();
  hooks.stop = [&] { return time.now >= 150; };
  hooks.log = [](const std::string&) {};
  core::SuperviseReport rep = supervise(child, config, hooks);
  // SIGTERM was forwarded, the child died by it, and the supervisor did
  // not restart.
  ASSERT_EQ(child.kills.size(), 1u);
  EXPECT_FALSE(child.kills[0]);  // soft first; grace not exceeded
  EXPECT_EQ(rep.exit_code, 128 + 15);
  EXPECT_EQ(rep.restarts, 0u);
  EXPECT_NE(rep.diagnosis.find("stopped by operator"), std::string::npos);
}

TEST(Supervise, StopBeforeFirstLaunchExitsCleanly) {
  FakeChild child;
  core::SuperviseHooks hooks;
  hooks.stop = [] { return true; };
  hooks.log = [](const std::string&) {};
  core::SuperviseReport rep = supervise(child, core::SuperviseConfig{}, hooks);
  EXPECT_EQ(rep.exit_code, 0);
  EXPECT_EQ(rep.launches, 0u);
  EXPECT_TRUE(child.launch_args.empty());
}

TEST(Supervise, StalledChildIsKilledAndRestarted) {
  FakeChild child;
  child.script = {FakeChild::runs_forever(), FakeChild::exits(0)};
  core::SuperviseConfig config;
  config.poll_ms = 100;
  config.stall_timeout_ms = 500;
  config.backoff_base_ms = 10;
  FakeTime time;
  obs::MetricsRegistry registry;
  core::SuperviseHooks hooks;
  hooks.clock_ms = time.clock();
  hooks.sleep_ms = time.sleep();
  hooks.progress = [] { return std::uint64_t(42); };  // never advances
  hooks.log = [](const std::string&) {};
  hooks.metrics = &registry;
  core::SuperviseReport rep = supervise(child, config, hooks);
  EXPECT_EQ(rep.exit_code, 0);
  EXPECT_EQ(rep.stall_kills, 1u);
  EXPECT_EQ(rep.launches, 2u);
  ASSERT_EQ(child.kills.size(), 1u);
  EXPECT_TRUE(child.kills[0]);  // stall kills are hard
  EXPECT_EQ(counter_value(registry.snapshot(), "supervise.stalls"), 1.0);
}

TEST(Supervise, StaleHeartbeatIsKilledAndRestarted) {
  FakeChild child;
  child.script = {FakeChild::runs_forever(), FakeChild::exits(0)};
  core::SuperviseConfig config;
  config.poll_ms = 100;
  config.heartbeat_timeout_ms = 300;
  config.backoff_base_ms = 10;
  FakeTime time;
  core::SuperviseHooks hooks;
  hooks.clock_ms = time.clock();
  hooks.sleep_ms = time.sleep();
  hooks.heartbeat_age_ms = [] { return std::int64_t(10000); };  // stale file
  hooks.log = [](const std::string&) {};
  core::SuperviseReport rep = supervise(child, config, hooks);
  EXPECT_EQ(rep.exit_code, 0);
  EXPECT_EQ(rep.stall_kills, 1u);
  EXPECT_EQ(rep.launches, 2u);
  // The stale age was visible from the first poll, but the kill must wait
  // until the child has had a full heartbeat_timeout to write its own
  // beat — otherwise a leftover file from the previous run kills every
  // fresh launch instantly. First possible kill: now == 300.
  ASSERT_EQ(child.kills.size(), 1u);
}

TEST(Supervise, FreshHeartbeatIsNeverKilled) {
  FakeChild child;
  child.script = {FakeChild::exits(0, /*polls=*/10)};
  core::SuperviseConfig config;
  config.poll_ms = 100;
  config.heartbeat_timeout_ms = 300;
  FakeTime time;
  core::SuperviseHooks hooks;
  hooks.clock_ms = time.clock();
  hooks.sleep_ms = time.sleep();
  hooks.heartbeat_age_ms = [] { return std::int64_t(0); };
  hooks.log = [](const std::string&) {};
  core::SuperviseReport rep = supervise(child, config, hooks);
  EXPECT_EQ(rep.exit_code, 0);
  EXPECT_EQ(rep.stall_kills, 0u);
  EXPECT_TRUE(child.kills.empty());
}

TEST(Supervise, UnlaunchableChildGivesUpWithoutFlapping) {
  UnlaunchableChild child;
  core::SuperviseConfig config;
  config.backoff_base_ms = 10;
  config.crash_loop_failures = 2;
  FakeTime time;
  core::SuperviseHooks hooks;
  hooks.clock_ms = time.clock();
  hooks.sleep_ms = time.sleep();
  hooks.log = [](const std::string&) {};
  core::SuperviseReport rep = supervise(child, config, hooks);
  EXPECT_TRUE(rep.gave_up);
  EXPECT_EQ(rep.exit_code, 1);
  EXPECT_EQ(rep.launches, 0u);  // start() never succeeded
}

// ------------------------------------------------- child-side helpers

TEST(SuperviseFiles, AgeAndTokenHandleMissingFiles) {
  const std::string missing =
      (fs::path(::testing::TempDir()) / "no_such_heartbeat").string();
  EXPECT_EQ(core::file_age_ms(missing), -1);
  EXPECT_EQ(core::file_progress_token(missing), 0u);
}

TEST(SuperviseFiles, ProgressTokenChangesWhenTheFileDoes) {
  const std::string path =
      (fs::path(::testing::TempDir()) / "supervise_token_probe").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("one\n", f);
    std::fclose(f);
  }
  const std::uint64_t first = core::file_progress_token(path);
  EXPECT_NE(first, 0u);
  EXPECT_GE(core::file_age_ms(path), 0);
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("two, but longer\n", f);
    std::fclose(f);
  }
  // Size differs even if the filesystem's mtime granularity is coarse.
  EXPECT_NE(core::file_progress_token(path), first);
  fs::remove(path);
}

TEST(SuperviseFiles, HeartbeatWritesAndStops) {
  const std::string path =
      (fs::path(::testing::TempDir()) / "supervise_heartbeat").string();
  fs::remove(path);
  core::Heartbeat heartbeat;
  heartbeat.start(path, 10);
  EXPECT_TRUE(heartbeat.running());
  // The first beat is written synchronously at thread start; poll briefly
  // for it to appear rather than assuming scheduling order.
  for (int i = 0; i < 200 && !fs::exists(path); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(fs::exists(path));
  heartbeat.stop();
  EXPECT_FALSE(heartbeat.running());
  EXPECT_TRUE(fs::exists(path));  // the stale file IS the hang signal
  fs::remove(path);
}

// ------------------------------------------------- real process runner

#ifdef __unix__

core::ChildOutcome wait_for_exit(core::ProcessChild& child) {
  core::ChildOutcome out;
  while (!child.poll(&out))
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  return out;
}

TEST(ProcessChild, CapturesExitCodes) {
  core::ProcessChild child({"/bin/sh", "-c", "exit 7"});
  ASSERT_TRUE(child.start({}, {}).ok());
  core::ChildOutcome out = wait_for_exit(child);
  EXPECT_EQ(out.exit_code, 7);
  EXPECT_EQ(out.term_signal, 0);
}

TEST(ProcessChild, CapturesSignalDeaths) {
  core::ProcessChild child({"/bin/sh", "-c", "kill -9 $$"});
  ASSERT_TRUE(child.start({}, {}).ok());
  core::ChildOutcome out = wait_for_exit(child);
  EXPECT_EQ(out.term_signal, 9);
  EXPECT_EQ(out.exit_code, 128 + 9);
}

TEST(ProcessChild, ExtraArgsAndEnvReachTheChild) {
  core::ProcessChild child({"/bin/sh", "-c",
                            "[ \"$1\" = tail ] && [ \"$DYNAMIPS_TEST_ENV\" = "
                            "on ]",
                            "argv0"});
  ASSERT_TRUE(child.start({"tail"}, {{"DYNAMIPS_TEST_ENV", "on"}}).ok());
  EXPECT_EQ(wait_for_exit(child).exit_code, 0);
}

TEST(ProcessChild, ExecFailureSurfacesAsExit127) {
  core::ProcessChild child({"/nonexistent/dynamips/binary"});
  ASSERT_TRUE(child.start({}, {}).ok());  // fork succeeds; exec cannot
  EXPECT_EQ(wait_for_exit(child).exit_code, 127);
}

TEST(ProcessChild, SuperviseRunsARealChildToCompletion) {
  core::ProcessChild child({"/bin/sh", "-c", "exit 0"});
  core::SuperviseConfig config;
  config.poll_ms = 5;
  core::SuperviseHooks hooks;
  hooks.log = [](const std::string&) {};
  core::SuperviseReport rep = supervise(child, config, hooks);
  EXPECT_EQ(rep.exit_code, 0);
  EXPECT_EQ(rep.launches, 1u);
}

#endif  // __unix__

}  // namespace
}  // namespace dynamips
