#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/ecdf.h"
#include "stats/loghist.h"
#include "stats/summary.h"
#include "stats/ttf.h"

namespace dynamips::stats {
namespace {

// ---------------------------------------------------------------- summary --

TEST(Summary, MeanAndMedian) {
  std::vector<double> xs{1, 2, 3, 4, 100};
  EXPECT_DOUBLE_EQ(mean(xs), 22.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Summary, QuantileInterpolates) {
  std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
}

TEST(Summary, BoxStats) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(double(i));
  auto b = BoxStats::of(xs);
  EXPECT_EQ(b.n, 100u);
  EXPECT_NEAR(b.median, 50.5, 0.01);
  EXPECT_NEAR(b.q1, 25.75, 0.01);
  EXPECT_NEAR(b.q3, 75.25, 0.01);
  EXPECT_NEAR(b.p5, 5.95, 0.01);
  EXPECT_NEAR(b.p95, 95.05, 0.01);
}

TEST(Summary, BoxStatsEmpty) {
  auto b = BoxStats::of({});
  EXPECT_EQ(b.n, 0u);
  EXPECT_EQ(b.median, 0.0);
}

// Regression: NaN used to flow straight into std::sort (UB — NaN breaks
// the strict weak ordering) and silently turned every quantile into NaN.
// The helpers now drop NaN samples and count them.
TEST(Summary, QuantileDropsNaN) {
  const double nan = std::nan("");
  std::uint64_t before = nan_dropped();
  std::vector<double> xs{nan, 0.0, nan, 10.0, nan};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
  EXPECT_EQ(nan_dropped() - before, 6u);  // 3 per quantile() call
}

TEST(Summary, BoxStatsDropsNaN) {
  const double nan = std::nan("");
  std::uint64_t before = nan_dropped();
  std::vector<double> xs{nan, 1.0, 2.0, 3.0, nan};
  auto b = BoxStats::of(xs);
  EXPECT_EQ(b.n, 3u);  // n reflects kept samples only
  EXPECT_DOUBLE_EQ(b.median, 2.0);
  EXPECT_FALSE(std::isnan(b.p5));
  EXPECT_FALSE(std::isnan(b.p95));
  EXPECT_EQ(nan_dropped() - before, 2u);

  // All-NaN input degrades to the empty summary, not NaN fields.
  auto empty = BoxStats::of({nan, nan});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_EQ(empty.median, 0.0);
}

// ------------------------------------------------------------------- ecdf --

TEST(Ecdf, BasicCdf) {
  Ecdf e;
  for (double x : {1.0, 2.0, 3.0, 4.0}) e.add(x);
  EXPECT_DOUBLE_EQ(e.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.at(99.0), 1.0);
}

TEST(Ecdf, AddN) {
  Ecdf e;
  e.add_n(5.0, 3);
  e.add(10.0);
  EXPECT_EQ(e.size(), 4u);
  EXPECT_DOUBLE_EQ(e.at(5.0), 0.75);
}

TEST(Ecdf, QuantileMatchesCdf) {
  Ecdf e;
  for (int i = 1; i <= 1000; ++i) e.add(double(i));
  EXPECT_NEAR(e.quantile(0.5), 500.5, 1.0);
  EXPECT_NEAR(e.quantile(0.9), 900.1, 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 1000.0);
}

TEST(Ecdf, CurveIsMonotone) {
  Ecdf e;
  for (double x : {5.0, 1.0, 3.0, 3.0, 8.0}) e.add(x);
  std::vector<double> ts{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto c = e.curve(ts);
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_GE(c[i], c[i - 1]);
  EXPECT_DOUBLE_EQ(c.back(), 1.0);
}

// -------------------------------------------------------------------- ttf --

TEST(Ttf, SingleDuration) {
  TotalTimeFraction t;
  t.add(24, 10);
  EXPECT_EQ(t.total_hours(), 240u);
  EXPECT_DOUBLE_EQ(t.fraction(24), 1.0);
  EXPECT_DOUBLE_EQ(t.fraction(25), 0.0);
}

TEST(Ttf, PaperWeightingExample) {
  // The §3.2.1 example: CPE1 changes daily (365 samples of 1 day), CPE2
  // monthly (12 samples of 30 days) over a year each. Naive PMF is dominated
  // by CPE1; total time fraction weights both equally (365 vs 360 days).
  TotalTimeFraction t;
  t.add(24, 365);
  t.add(24 * 30, 12);
  double f1 = t.fraction(24);
  double f30 = t.fraction(24 * 30);
  EXPECT_NEAR(f1 / f30, 365.0 / 360.0, 1e-9);
  EXPECT_NEAR(f1 + f30, 1.0, 1e-9);

  // Naive cumulative at 1 day: 365/377 of samples; weighted: ~half.
  std::vector<std::uint64_t> ts{24, 24 * 30};
  auto naive = t.cumulative_naive(ts);
  auto weighted = t.cumulative(ts);
  EXPECT_NEAR(naive[0], 365.0 / 377.0, 1e-9);
  EXPECT_NEAR(weighted[0], 365.0 * 24 / (365.0 * 24 + 12 * 720), 1e-9);
  EXPECT_DOUBLE_EQ(naive[1], 1.0);
  EXPECT_DOUBLE_EQ(weighted[1], 1.0);
}

TEST(Ttf, CumulativeMonotoneAndEndsAtOne) {
  TotalTimeFraction t;
  t.add(1, 5);
  t.add(13, 2);
  t.add(700, 1);
  auto ts = fig1_thresholds();
  auto c = t.cumulative(ts);
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_GE(c[i], c[i - 1]);
  EXPECT_DOUBLE_EQ(c.back(), 1.0);
}

TEST(Ttf, MergeEqualsCombined) {
  TotalTimeFraction a, b, both;
  a.add(24, 3);
  b.add(24, 2);
  b.add(48, 5);
  both.add(24, 5);
  both.add(48, 5);
  a.merge(b);
  EXPECT_EQ(a.total_hours(), both.total_hours());
  EXPECT_EQ(a.total_count(), both.total_count());
  EXPECT_DOUBLE_EQ(a.fraction(48), both.fraction(48));
}

TEST(Ttf, IgnoresZeros) {
  TotalTimeFraction t;
  t.add(0, 5);
  t.add(10, 0);
  EXPECT_TRUE(t.empty());
}

TEST(Ttf, ThresholdLabels) {
  auto ts = fig1_thresholds();
  ASSERT_GE(ts.size(), 12u);
  EXPECT_STREQ(duration_label(24), "1d");
  EXPECT_STREQ(duration_label(336), "2w");
  EXPECT_STREQ(duration_label(35040), "4y");
  EXPECT_STREQ(duration_label(99999), "?");
}

// ---------------------------------------------------------------- loghist --

TEST(LogHist, ModeFindsPeak) {
  LogHistogram h(0, 6, 10);
  for (int i = 0; i < 100; ++i) h.add(250.0);
  for (int i = 0; i < 5; ++i) h.add(80000.0);
  double mode = h.mode_value();
  EXPECT_GT(mode, 150.0);
  EXPECT_LT(mode, 400.0);
}

TEST(LogHist, WeightedModeShifts) {
  LogHistogram h(0, 6, 10);
  // 100 blocks of degree 250, 5 blocks of degree 80000 — weighted by degree,
  // the large blocks dominate (5*80000 >> 100*250).
  h.add(250.0, 250.0 * 100);
  h.add(80000.0, 80000.0 * 5);
  double mode = h.mode_value();
  EXPECT_GT(mode, 40000.0);
  EXPECT_LT(mode, 160000.0);
}

TEST(LogHist, DensitySumsToOne) {
  LogHistogram h(0, 6, 10);
  for (int i = 1; i <= 50; ++i) h.add(double(i * i));
  auto d = h.density();
  double sum = 0;
  for (double v : d) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(LogHist, OutOfRangeClamps) {
  LogHistogram h(0, 3, 5);
  h.add(0.5);      // below range -> first bin
  h.add(1e9);      // above range -> last bin
  auto d = h.density();
  EXPECT_GT(d.front(), 0.0);
  EXPECT_GT(d.back(), 0.0);
}

}  // namespace
}  // namespace dynamips::stats
