// corpus_util.h — replay the checked-in parser regression corpus.
//
// tests/corpus/<family>/ holds raw parser inputs, one per file: names
// starting with accept_ must parse, names starting with reject_ must not.
// A new fuzz finding becomes a permanent regression case by dropping the
// input file into the right directory — both the unit tests (here) and the
// fuzz targets' corpus-replay mode pick it up with no code change.
#pragma once

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>

namespace dynamips::testing {

inline void run_parse_corpus(
    const std::string& family,
    const std::function<bool(const std::string&)>& parses) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(DYNAMIPS_TEST_CORPUS_DIR) / family;
  ASSERT_TRUE(fs::is_directory(dir)) << "missing corpus dir " << dir;
  std::size_t cases = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const std::string name = entry.path().filename().string();
    if (name.rfind("accept_", 0) == 0) {
      EXPECT_TRUE(parses(text)) << name << ": \"" << text << "\"";
      ++cases;
    } else if (name.rfind("reject_", 0) == 0) {
      EXPECT_FALSE(parses(text)) << name << ": \"" << text << "\"";
      ++cases;
    }
  }
  EXPECT_GT(cases, 0u) << "empty corpus: " << dir;
}

}  // namespace dynamips::testing
