#include "netaddr/prefix.h"

#include <gtest/gtest.h>

#include <string>

#include "corpus_util.h"

namespace dynamips::net {
namespace {

TEST(Prefix4, ParseAndFormat) {
  auto p = Prefix4::parse("192.0.2.0/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 24);
  EXPECT_EQ(p->to_string(), "192.0.2.0/24");
}

TEST(Prefix4, CanonicalizesHostBits) {
  auto p = Prefix4::parse("192.0.2.99/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->address().to_string(), "192.0.2.0");
}

TEST(Prefix4, ZeroLength) {
  Prefix4 p{*IPv4Address::parse("255.255.255.255"), 0};
  EXPECT_EQ(p.address().value(), 0u);
  EXPECT_TRUE(p.contains(*IPv4Address::parse("1.2.3.4")));
}

TEST(Prefix4, FullLength) {
  Prefix4 p{*IPv4Address::parse("10.1.2.3"), 32};
  EXPECT_TRUE(p.contains(*IPv4Address::parse("10.1.2.3")));
  EXPECT_FALSE(p.contains(*IPv4Address::parse("10.1.2.4")));
}

TEST(Prefix4, Contains) {
  auto p = *Prefix4::parse("10.0.0.0/8");
  EXPECT_TRUE(p.contains(*IPv4Address::parse("10.255.0.1")));
  EXPECT_FALSE(p.contains(*IPv4Address::parse("11.0.0.1")));
  EXPECT_TRUE(p.contains(*Prefix4::parse("10.1.0.0/16")));
  EXPECT_FALSE(p.contains(*Prefix4::parse("0.0.0.0/0")));
  EXPECT_TRUE(p.contains(p));
}

TEST(Prefix4, ParseRejects) {
  EXPECT_FALSE(Prefix4::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix4::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix4::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Prefix4::parse("10.0.0.0/").has_value());
  EXPECT_FALSE(Prefix4::parse("/24").has_value());
  EXPECT_FALSE(Prefix4::parse("10.0.0.0/2 4").has_value());
}

TEST(Prefix6, ParseAndFormat) {
  auto p = Prefix6::parse("2001:db8::/32");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 32);
  EXPECT_EQ(p->to_string(), "2001:db8::/32");
}

TEST(Prefix6, CanonicalizesHostBits) {
  auto p = Prefix6::parse("2001:db8:ffff:ffff::1/32");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->address().to_string(), "2001:db8::");
}

TEST(Prefix6, Contains) {
  auto p = *Prefix6::parse("2003::/19");  // DTAG's announcement from §5.2
  EXPECT_TRUE(p.contains(*IPv6Address::parse("2003:1000::1")));
  EXPECT_FALSE(p.contains(*IPv6Address::parse("2003:ec57::1")))
      << "2003::/19 spans only 2003:0000..2003:1fff";
  EXPECT_FALSE(p.contains(*IPv6Address::parse("2a02::1")));
  EXPECT_TRUE(p.contains(*Prefix6::parse("2003:1f00::/24")));
  EXPECT_FALSE(p.contains(*Prefix6::parse("2003::/18")));
}

TEST(Prefix6, ZeroAndFullLength) {
  Prefix6 all{*IPv6Address::parse("ffff::"), 0};
  EXPECT_TRUE(all.contains(*IPv6Address::parse("::1")));
  Prefix6 host{*IPv6Address::parse("2001:db8::1"), 128};
  EXPECT_TRUE(host.contains(*IPv6Address::parse("2001:db8::1")));
  EXPECT_FALSE(host.contains(*IPv6Address::parse("2001:db8::2")));
}

TEST(Prefix6, ParseRejects) {
  EXPECT_FALSE(Prefix6::parse("2001:db8::").has_value());
  EXPECT_FALSE(Prefix6::parse("2001:db8::/129").has_value());
  EXPECT_FALSE(Prefix6::parse("bogus/64").has_value());
}

TEST(Prefix6, Slash64Of) {
  auto a = *IPv6Address::parse("2001:db8:1:2:3:4:5:6");
  auto p = slash64_of(a);
  EXPECT_EQ(p.to_string(), "2001:db8:1:2::/64");
}

TEST(Prefix4, Slash24Of) {
  auto a = *IPv4Address::parse("198.51.100.77");
  EXPECT_EQ(slash24_of(a).to_string(), "198.51.100.0/24");
}

// Property sweep: for every prefix length, the canonical address has no
// bits below the length, and containment of the base address holds.
class Prefix6Lengths : public ::testing::TestWithParam<int> {};

TEST_P(Prefix6Lengths, CanonicalAndSelfContaining) {
  int len = GetParam();
  auto addr = *IPv6Address::parse("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff");
  Prefix6 p{addr, len};
  // All bits below `len` must be zero.
  U128 below = p.address().bits() & ~mask128(unsigned(len));
  EXPECT_TRUE(below.is_zero());
  EXPECT_TRUE(p.contains(p.address()));
  if (len > 0) {
    EXPECT_TRUE(p.contains(addr));
  }
  // Round-trip through text.
  auto rt = Prefix6::parse(p.to_string());
  ASSERT_TRUE(rt.has_value());
  EXPECT_EQ(*rt, p);
}

INSTANTIATE_TEST_SUITE_P(AllLengths, Prefix6Lengths, ::testing::Range(0, 129));

class Prefix4Lengths : public ::testing::TestWithParam<int> {};

TEST_P(Prefix4Lengths, CanonicalAndSelfContaining) {
  int len = GetParam();
  auto addr = *IPv4Address::parse("255.255.255.255");
  Prefix4 p{addr, len};
  if (len < 32) {
    std::uint32_t below =
        p.address().value() & ~(len == 0 ? 0u : (~0u << (32 - len)));
    EXPECT_EQ(below, 0u);
  }
  EXPECT_TRUE(p.contains(p.address()));
  auto rt = Prefix4::parse(p.to_string());
  ASSERT_TRUE(rt.has_value());
  EXPECT_EQ(*rt, p);
}

INSTANTIATE_TEST_SUITE_P(AllLengths, Prefix4Lengths, ::testing::Range(0, 33));


TEST(Prefix4, ParseRejectsNonCanonicalLength) {
  // Regression for the fuzz-found acceptance bug: "/024" used to parse as
  // /24 and "/-0" as /0.
  EXPECT_FALSE(Prefix4::parse("80.1.2.0/024").has_value());
  EXPECT_FALSE(Prefix4::parse("80.1.2.0/-0").has_value());
  EXPECT_FALSE(Prefix4::parse("80.1.2.0/00").has_value());
  EXPECT_TRUE(Prefix4::parse("80.1.2.0/0").has_value());
}

TEST(Prefix6, ParseRejectsNonCanonicalLength) {
  EXPECT_FALSE(Prefix6::parse("2001:db8::/064").has_value());
  EXPECT_FALSE(Prefix6::parse("2001:db8::/-0").has_value());
  EXPECT_TRUE(Prefix6::parse("2001:db8::/0").has_value());
}

TEST(Prefix4, FuzzRegressionCorpus) {
  dynamips::testing::run_parse_corpus("prefix4", [](const std::string& s) {
    return Prefix4::parse(s).has_value();
  });
}

TEST(Prefix6, FuzzRegressionCorpus) {
  dynamips::testing::run_parse_corpus("prefix6", [](const std::string& s) {
    return Prefix6::parse(s).has_value();
  });
}

}  // namespace
}  // namespace dynamips::net
