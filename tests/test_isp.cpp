#include "simnet/isp.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace dynamips::simnet {
namespace {

TEST(Isp, RosterContainsTable1AndExtras) {
  auto isps = paper_isps();
  int table1 = 0;
  std::set<std::string> names;
  for (const auto& p : isps) {
    names.insert(p.name);
    table1 += p.in_table1;
  }
  EXPECT_EQ(table1, 10) << "exactly the ten Table-1 ASes";
  for (const char* expected :
       {"DTAG", "Comcast", "Orange", "LGI", "Free SAS", "Kabel DE",
        "Proximus", "Versatel", "BT", "Netcologne", "Sky U.K.", "ANTEL",
        "Global Village", "Telefonica DE", "M-net"})
    EXPECT_TRUE(names.count(expected)) << expected;
}

TEST(Isp, FindIspByName) {
  auto dtag = find_isp("DTAG");
  ASSERT_TRUE(dtag.has_value());
  EXPECT_EQ(dtag->asn, 3320u);
  EXPECT_EQ(dtag->country, "Germany");
  EXPECT_FALSE(find_isp("Nonexistent ISP").has_value());
}

TEST(Isp, Fig1RosterOrder) {
  auto six = fig1_isps();
  ASSERT_EQ(six.size(), 6u);
  EXPECT_EQ(six[0].name, "DTAG");
  EXPECT_EQ(six[5].name, "Proximus");
}

TEST(Isp, AsnsAreUnique) {
  std::set<bgp::Asn> asns;
  for (const auto& p : paper_isps()) {
    EXPECT_TRUE(asns.insert(p.asn).second)
        << "duplicate ASN " << p.asn << " (" << p.name << ")";
  }
}

TEST(Isp, ProbabilitiesInRange) {
  for (const auto& p : paper_isps()) {
    SCOPED_TRACE(p.name);
    for (double v :
         {p.dualstack_share, p.static_share, p.couple_v6_to_v4, p.p_same24,
          p.p_same_bgp4, p.p_same_bgp6, p.cpe_scramble_share,
          p.ds_uses_nds_share, p.home_pool_secondary_weight}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(Isp, PoolLenWithinAnnouncementsAndDelegations) {
  for (const auto& p : paper_isps()) {
    SCOPED_TRACE(p.name);
    ASSERT_FALSE(p.bgp4.empty());
    ASSERT_FALSE(p.bgp6.empty());
    for (const auto& a : p.bgp6)
      EXPECT_LE(a.length(), p.v6_pool_len)
          << "pools must nest inside announcements";
    double wsum = 0;
    for (const auto& e : p.delegation.entries) {
      EXPECT_GE(e.length, p.v6_pool_len)
          << "delegations must nest inside pools";
      EXPECT_LE(e.length, 64);
      EXPECT_GT(e.weight, 0.0);
      wsum += e.weight;
    }
    EXPECT_GT(wsum, 0.0);
  }
}

TEST(Isp, AnnouncementsAreDisjointAcrossIsps) {
  // Overlapping announcements would make LPM attribute one ISP's addresses
  // to another, corrupting the sanitizer's AS-run logic.
  auto isps = paper_isps();
  for (std::size_t i = 0; i < isps.size(); ++i) {
    for (std::size_t j = i + 1; j < isps.size(); ++j) {
      for (const auto& a : isps[i].bgp4)
        for (const auto& b : isps[j].bgp4)
          EXPECT_FALSE(a.contains(b) || b.contains(a))
              << isps[i].name << " " << a.to_string() << " vs "
              << isps[j].name << " " << b.to_string();
      for (const auto& a : isps[i].bgp6)
        for (const auto& b : isps[j].bgp6)
          EXPECT_FALSE(a.contains(b) || b.contains(a))
              << isps[i].name << " " << a.to_string() << " vs "
              << isps[j].name << " " << b.to_string();
    }
  }
}

TEST(Isp, AnnounceAllPopulatesRib) {
  bgp::Rib rib;
  auto isps = paper_isps();
  announce_all(isps, rib);
  EXPECT_GT(rib.v4_size(), isps.size());
  EXPECT_GE(rib.v6_size(), isps.size());
  // Spot checks: DTAG spaces resolve to 3320.
  EXPECT_EQ(rib.asn_of(*net::IPv4Address::parse("79.200.1.2")), 3320u);
  EXPECT_EQ(rib.asn_of(*net::IPv6Address::parse("2003:40::1")), 3320u);
  EXPECT_EQ(rib.asn_of(*net::IPv4Address::parse("24.5.6.7")), 7922u);
}

TEST(Isp, PeriodicGermansHave24HourLeases) {
  for (const char* name : {"DTAG", "Versatel", "Netcologne"}) {
    auto p = find_isp(name);
    ASSERT_TRUE(p.has_value()) << name;
    EXPECT_EQ(p->v4_nds.lease_hours, 24u) << name;
  }
  EXPECT_EQ(find_isp("ANTEL")->v4_nds.lease_hours, 12u);
  EXPECT_EQ(find_isp("Global Village")->v4_nds.lease_hours, 48u);
  EXPECT_EQ(find_isp("Orange")->v4_nds.lease_hours, 168u);
  EXPECT_EQ(find_isp("BT")->v4_nds.lease_hours, 336u);
  EXPECT_EQ(find_isp("Proximus")->v4_nds.lease_hours, 36u);
}

TEST(Isp, VerifiedDelegationLengths) {
  // The paper verified these against operator documentation.
  auto modal = [](const IspProfile& p) {
    int best = 0;
    double w = -1;
    for (const auto& e : p.delegation.entries)
      if (e.weight > w) { w = e.weight; best = e.length; }
    return best;
  };
  EXPECT_EQ(modal(*find_isp("DTAG")), 56);
  EXPECT_EQ(modal(*find_isp("Orange")), 56);
  EXPECT_EQ(modal(*find_isp("Sky U.K.")), 56);
  EXPECT_EQ(modal(*find_isp("Kabel DE")), 62);
  EXPECT_EQ(modal(*find_isp("Netcologne")), 48);
}

TEST(Isp, DeterministicRoster) {
  auto a = paper_isps();
  auto b = paper_isps();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].asn, b[i].asn);
  }
}

}  // namespace
}  // namespace dynamips::simnet
