#include "core/durations.h"

#include <gtest/gtest.h>

namespace dynamips::core {
namespace {

using net::IPv4Address;
using net::IPv6Address;

// Build a clean probe whose v4 address changes every `period` hours over
// `total` hours, with optional synchronized v6 changes.
CleanProbe periodic_probe(Hour period, Hour total, bool dual_stack,
                          bool couple, std::uint32_t id = 1) {
  CleanProbe cp;
  cp.probe_id = id;
  cp.asn = 100;
  cp.first_hour = 0;
  cp.last_hour = total - 1;
  for (Hour h = 0; h < total; ++h) {
    std::uint32_t epoch = std::uint32_t(h / period);
    cp.v4.push_back(
        {h, IPv4Address{0x0a000000u + epoch * 256 + 1}, false});
    if (dual_stack) {
      std::uint64_t net = 0x2001010000000000ull +
                          (couple ? epoch : 0) * 0x10000ull;
      cp.v6.push_back({h, IPv6Address{net, 1}, true});
    }
  }
  return cp;
}

TEST(Durations, DualStackClassification) {
  auto ds = periodic_probe(24, 2000, true, true);
  EXPECT_TRUE(DurationAnalyzer::is_dual_stack(ds));
  auto nds = periodic_probe(24, 2000, false, false);
  EXPECT_FALSE(DurationAnalyzer::is_dual_stack(nds));
  // Sparse v6 reporting does not qualify.
  auto sparse = periodic_probe(24, 2000, true, true);
  sparse.v6.resize(100);
  EXPECT_FALSE(DurationAnalyzer::is_dual_stack(sparse));
}

TEST(Durations, SplitsByDualStack) {
  DurationAnalyzer an;
  an.add_probe(periodic_probe(24, 24 * 50, false, false, 1));
  an.add_probe(periodic_probe(48, 48 * 50, true, true, 2));
  const auto& as = an.by_as().at(100);
  EXPECT_EQ(as.probes, 2u);
  EXPECT_EQ(as.ds_probes, 1u);
  EXPECT_EQ(as.probes_with_change, 2u);
  // NDS bucket holds only 24h durations; DS bucket only 48h.
  EXPECT_GT(as.v4_nds.total_count(), 0u);
  EXPECT_DOUBLE_EQ(as.v4_nds.fraction(24), 1.0);
  EXPECT_DOUBLE_EQ(as.v4_ds.fraction(48), 1.0);
}

TEST(Durations, ChangeCountsPerTable1) {
  DurationAnalyzer an;
  an.add_probe(periodic_probe(24, 24 * 10, true, true, 1));
  const auto& as = an.by_as().at(100);
  EXPECT_EQ(as.v4_changes, 9u);
  EXPECT_EQ(as.v4_changes_ds, 9u);
  EXPECT_EQ(as.v6_changes, 9u);
}

TEST(Durations, CooccurrenceFullWhenCoupled) {
  DurationAnalyzer an;
  an.add_probe(periodic_probe(24, 24 * 30, true, true));
  const auto& as = an.by_as().at(100);
  EXPECT_EQ(as.cooccur_total, 29u);
  EXPECT_EQ(as.cooccur_hits, 29u);
  EXPECT_DOUBLE_EQ(as.cooccurrence(), 1.0);
}

TEST(Durations, CooccurrenceZeroWhenV6Static) {
  DurationAnalyzer an;
  an.add_probe(periodic_probe(24, 24 * 30, true, false));
  const auto& as = an.by_as().at(100);
  EXPECT_DOUBLE_EQ(as.cooccurrence(), 0.0);
  EXPECT_EQ(as.v6_changes, 0u);
}

TEST(Durations, V6DurationsAccumulate) {
  DurationAnalyzer an;
  an.add_probe(periodic_probe(24, 24 * 30, true, true));
  const auto& as = an.by_as().at(100);
  EXPECT_GT(as.v6.total_count(), 0u);
  EXPECT_DOUBLE_EQ(as.v6.fraction(24), 1.0);
}

TEST(Durations, StaticProbeCountsButNoChange) {
  CleanProbe cp;
  cp.probe_id = 3;
  cp.asn = 100;
  cp.first_hour = 0;
  cp.last_hour = 1999;
  for (Hour h = 0; h < 2000; ++h)
    cp.v4.push_back({h, *IPv4Address::parse("10.0.0.1"), false});
  DurationAnalyzer an;
  an.add_probe(cp);
  const auto& as = an.by_as().at(100);
  EXPECT_EQ(as.probes, 1u);
  EXPECT_EQ(as.probes_with_change, 0u);
  EXPECT_EQ(as.v4_changes, 0u);
  EXPECT_TRUE(as.v4_nds.empty());
}

TEST(Durations, MultipleAsesKeptSeparate) {
  DurationAnalyzer an;
  auto a = periodic_probe(24, 24 * 10, false, false, 1);
  auto b = periodic_probe(24, 24 * 10, false, false, 2);
  b.asn = 200;
  an.add_probe(a);
  an.add_probe(b);
  EXPECT_EQ(an.by_as().size(), 2u);
  EXPECT_EQ(an.by_as().at(100).probes, 1u);
  EXPECT_EQ(an.by_as().at(200).probes, 1u);
}

TEST(Durations, GapOptionPropagates) {
  // Insert a long gap; with strict options the adjacent durations vanish.
  CleanProbe cp = periodic_probe(24, 24 * 10, false, false);
  // Remove observations in [100, 130): gap of 30 hours.
  std::vector<Obs4> kept;
  for (const auto& o : cp.v4)
    if (o.hour < 100 || o.hour >= 130) kept.push_back(o);
  cp.v4 = kept;
  ChangeOptions strict;
  strict.max_boundary_gap = 10;
  DurationAnalyzer strict_an(strict);
  strict_an.add_probe(cp);
  DurationAnalyzer lenient_an;
  lenient_an.add_probe(cp);
  EXPECT_LT(strict_an.by_as().at(100).v4_nds.total_count(),
            lenient_an.by_as().at(100).v4_nds.total_count());
}

}  // namespace
}  // namespace dynamips::core
