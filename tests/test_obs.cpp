// test_obs — the observability layer (src/obs/).
//
// Four layers of coverage:
//  * merge algebra of every metric value type and of MetricsSink/
//    MetricsRegistry: two halves merged must equal everything in one;
//  * JSON export: schema version, stable (byte-identical) serialization,
//    sorted keys, escaping;
//  * zero overhead when disabled: a study run with `metrics == nullptr`
//    records nothing and produces byte-identical results to a metered run;
//  * thread-count invariance: every counter and histogram in a study's
//    metrics document is identical for threads=1 and threads=4.
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/metrics_json.h"
#include "simnet/isp.h"

namespace dynamips {
namespace {

// ------------------------------------------------------------- value types

TEST(ObsCounter, MergeSums) {
  obs::Counter full, a, b;
  full.add(5);
  full.add();
  a.add(5);
  b.add();
  a.merge(b);
  EXPECT_EQ(a.value, full.value);
  EXPECT_EQ(a.value, 6u);
}

TEST(ObsGauge, MergeIsLastWriterInReductionOrder) {
  obs::Gauge a, b;
  a.set(1.5);
  b.set(2.5);
  a.merge(b);
  EXPECT_EQ(a.value, 2.5);
  // An unset gauge never clobbers a set one.
  obs::Gauge unset;
  a.merge(unset);
  EXPECT_EQ(a.value, 2.5);
}

TEST(ObsHistogram, BucketsAndClamping) {
  obs::Histogram h(0, 3, 1);  // buckets at 10^0..10^3, 1 bin per decade
  h.record(1.0);
  h.record(5.0);      // same decade as 1.0
  h.record(50.0);     // second decade
  h.record(1e9);      // clamps into the last bucket
  h.record(0.0);      // clamps into the first bucket
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.buckets().front(), 3u);
  EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(ObsHistogram, MergeHalvesEqualFull) {
  obs::Histogram full(0, 6, 5), a(0, 6, 5), b(0, 6, 5);
  for (double v : {1.0, 10.0, 256.0, 80000.0, 999999.0}) full.record(v);
  for (double v : {1.0, 10.0}) a.record(v);
  for (double v : {256.0, 80000.0, 999999.0}) b.record(v);
  a.merge(b);
  EXPECT_EQ(a, full);
}

TEST(ObsPhaseStats, MergeCombinesExtrema) {
  obs::PhaseStats full, a, b;
  for (std::uint64_t ns : {10u, 30u, 20u}) full.record(ns);
  a.record(10);
  b.record(30);
  b.record(20);
  a.merge(b);
  EXPECT_EQ(a.count, full.count);
  EXPECT_EQ(a.total_ns, full.total_ns);
  EXPECT_EQ(a.min_ns, 10u);
  EXPECT_EQ(a.max_ns, 30u);
  // Merging an empty PhaseStats is a no-op (UINT64_MAX min sentinel).
  a.merge(obs::PhaseStats{});
  EXPECT_EQ(a.min_ns, 10u);
  EXPECT_EQ(a.max_ns, 30u);
}

TEST(ObsPhaseTimer, RecordsSpanAndNullIsNoop) {
  obs::PhaseStats stats;
  {
    obs::PhaseTimer t(&stats);
  }
  EXPECT_EQ(stats.count, 1u);
  {
    obs::PhaseTimer t(nullptr);  // must not crash or record anywhere
    t.stop();
  }
  obs::PhaseTimer twice(&stats);
  twice.stop();
  twice.stop();  // second stop is a no-op
  EXPECT_EQ(stats.count, 2u);
}

// ------------------------------------------------------------ sink algebra

obs::MetricsSink make_sink(std::uint64_t base) {
  obs::MetricsSink s;
  s.counter("c.events").add(base);
  s.counter("c.only_sometimes").add(base * 2);
  s.gauge("g.level").set(double(base));
  s.histogram("h.sizes", 0, 6, 5).record(double(base + 1));
  s.phase("p.step").record(base * 100);
  return s;
}

TEST(ObsMetricsSink, MergeHalvesEqualFull) {
  obs::MetricsSink full, a, b;
  for (std::uint64_t i = 1; i <= 6; ++i) full.merge(make_sink(i));
  for (std::uint64_t i = 1; i <= 3; ++i) a.merge(make_sink(i));
  for (std::uint64_t i = 4; i <= 6; ++i) b.merge(make_sink(i));
  a.merge(std::move(b));
  EXPECT_EQ(a.counters().at("c.events").value,
            full.counters().at("c.events").value);
  EXPECT_EQ(a.counters().at("c.only_sometimes").value,
            full.counters().at("c.only_sometimes").value);
  EXPECT_EQ(a.gauges().at("g.level").value, full.gauges().at("g.level").value);
  EXPECT_EQ(a.histograms().at("h.sizes"), full.histograms().at("h.sizes"));
  EXPECT_EQ(a.phases().at("p.step").count, full.phases().at("p.step").count);
  EXPECT_EQ(a.phases().at("p.step").total_ns,
            full.phases().at("p.step").total_ns);
}

TEST(ObsMetricsSink, MergeConsumesArgumentAndHandlesDisjointNames) {
  obs::MetricsSink a, b;
  a.counter("x").add(1);
  b.counter("y").add(2);
  b.histogram("h", 0, 3, 2).record(10.0);
  a.merge(std::move(b));
  EXPECT_EQ(a.counters().at("x").value, 1u);
  EXPECT_EQ(a.counters().at("y").value, 2u);
  EXPECT_EQ(a.histograms().at("h").total(), 1u);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): documented
}

TEST(ObsMetricsSink, SatisfiesMergeableAnalyzerConcept) {
  static_assert(core::MergeableAnalyzer<obs::MetricsSink>);
  obs::MetricsSink s;
  s.finalize();
  EXPECT_TRUE(s.empty());
}

TEST(ObsRegistry, ConcurrentMergesSumExactly) {
  obs::MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&registry] {
      for (int i = 0; i < 100; ++i) {
        obs::MetricsSink s;
        s.counter("c").add(1);
        registry.merge(std::move(s));
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.snapshot().counters().at("c").value, 800u);
}

TEST(ObsRegistry, PointUpdatesAndReset) {
  obs::MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  registry.add_counter("c", 3);
  registry.set_gauge("g", 1.25);
  registry.record_phase("p", 1000);
  auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters().at("c").value, 3u);
  EXPECT_EQ(snap.gauges().at("g").value, 1.25);
  EXPECT_EQ(snap.phases().at("p").count, 1u);
  registry.reset();
  EXPECT_TRUE(registry.empty());
}

TEST(ObsRegistry, GlobalIsASingleton) {
  EXPECT_EQ(&obs::MetricsRegistry::global(), &obs::MetricsRegistry::global());
}

TEST(ObsPeakRss, ReportsSomethingPlausible) {
  std::uint64_t rss = obs::peak_rss_bytes();
  EXPECT_GT(rss, 1u << 20);  // a running gtest binary exceeds 1 MiB
}

// -------------------------------------------------------------- JSON export

obs::MetricsMeta test_meta() {
  obs::MetricsMeta meta;
  meta.binary = "test_obs";
  meta.scale = 0.05;
  meta.seed = 1;
  meta.window_hours = 6000;
  meta.threads = 4;
  return meta;
}

TEST(ObsJson, SchemaVersionAndSections) {
  std::string json = obs::metrics_to_json(make_sink(1), test_meta());
  EXPECT_NE(json.find("\"schema\": \"dynamips.metrics.v1\""),
            std::string::npos);
  for (const char* key :
       {"\"meta\"", "\"counters\"", "\"gauges\"", "\"phases\"",
        "\"histograms\"", "\"binary\"", "\"scale\"", "\"threads\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  EXPECT_NE(json.find("\"c.events\": 1"), std::string::npos);
}

TEST(ObsJson, StableByteIdenticalSerialization) {
  // Same state serialized twice — and built in a different insertion
  // order — must produce byte-identical documents.
  obs::MetricsSink a, b;
  a.counter("zz").add(1);
  a.counter("aa").add(2);
  b.counter("aa").add(2);
  b.counter("zz").add(1);
  EXPECT_EQ(obs::metrics_to_json(a, test_meta()),
            obs::metrics_to_json(b, test_meta()));
  // Sorted key order: "aa" precedes "zz" in the document.
  std::string json = obs::metrics_to_json(a, test_meta());
  EXPECT_LT(json.find("\"aa\""), json.find("\"zz\""));
}

TEST(ObsJson, EscapesControlAndQuoteCharacters) {
  obs::MetricsSink s;
  s.counter("weird\"name\\with\nnoise").add(1);
  std::string json = obs::metrics_to_json(s, test_meta());
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nnoise"), std::string::npos);
}

TEST(ObsJson, WriteToFileRoundTrips) {
  std::string path = testing::TempDir() + "/obs_metrics.json";
  ASSERT_TRUE(obs::write_metrics_json(path, make_sink(2), test_meta()));
  std::ifstream is(path);
  std::string contents((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, obs::metrics_to_json(make_sink(2), test_meta()));
  EXPECT_FALSE(
      obs::write_metrics_json("/nonexistent-dir/x.json", make_sink(2),
                              test_meta()));
}

// ------------------------------------------- pipeline integration contracts

core::AtlasStudyConfig small_atlas_config(obs::MetricsRegistry* registry,
                                          unsigned threads) {
  core::AtlasStudyConfig cfg;
  cfg.atlas.probe_scale = 0.05;
  cfg.atlas.window_hours = 6000;
  cfg.atlas.seed = 7;
  cfg.threads = threads;
  cfg.metrics = registry;
  return cfg;
}

TEST(ObsPipeline, DisabledMetricsRecordNothingAndChangeNothing) {
  auto isps = simnet::paper_isps();
  isps.resize(2);

  obs::MetricsRegistry registry;
  auto metered =
      core::run_atlas_study(isps, small_atlas_config(&registry, 2));
  EXPECT_FALSE(registry.empty());

  obs::MetricsRegistry untouched;
  auto plain = core::run_atlas_study(isps, small_atlas_config(nullptr, 2));
  EXPECT_TRUE(untouched.empty());

  // Metrics on vs off: study results are identical.
  EXPECT_EQ(plain.sanitize.probes_seen, metered.sanitize.probes_seen);
  EXPECT_EQ(plain.sanitize.virtual_probes, metered.sanitize.virtual_probes);
  ASSERT_EQ(plain.durations.size(), metered.durations.size());
  for (const auto& [asn, stats] : metered.durations) {
    EXPECT_EQ(plain.durations.at(asn).v4_changes, stats.v4_changes);
    EXPECT_EQ(plain.durations.at(asn).v6_changes, stats.v6_changes);
    EXPECT_EQ(plain.durations.at(asn).probes, stats.probes);
  }
}

TEST(ObsPipeline, AtlasCountersThreadInvariant) {
  auto isps = simnet::paper_isps();
  isps.resize(3);

  obs::MetricsRegistry serial, sharded;
  core::run_atlas_study(isps, small_atlas_config(&serial, 1));
  core::run_atlas_study(isps, small_atlas_config(&sharded, 4));

  auto a = serial.snapshot(), b = sharded.snapshot();
  ASSERT_EQ(a.counters().size(), b.counters().size());
  for (const auto& [name, counter] : a.counters())
    EXPECT_EQ(counter.value, b.counters().at(name).value) << name;
  ASSERT_EQ(a.histograms().size(), b.histograms().size());
  for (const auto& [name, hist] : a.histograms())
    EXPECT_TRUE(hist == b.histograms().at(name)) << name;
  // Sanity: the expected metric families are present.
  EXPECT_GT(a.counters().at("atlas.echo_records").value, 0u);
  EXPECT_GT(a.counters().at("sanitize.probes_seen").value, 0u);
  EXPECT_GT(a.counters().at("atlas.gen.probes").value, 0u);
  EXPECT_GT(a.phases().at("atlas.generate").count, 0u);
  EXPECT_TRUE(b.gauges().count("atlas.shard_imbalance"));
}

TEST(ObsPipeline, CdnCountersThreadInvariant) {
  auto population = cdn::default_cdn_population(0.05);
  core::CdnStudyConfig cfg;
  cfg.cdn.subscriber_scale = 0.05;
  cfg.cdn.seed = 13;

  obs::MetricsRegistry serial, sharded;
  cfg.threads = 1;
  cfg.metrics = &serial;
  core::run_cdn_study(population, cfg);
  cfg.threads = 4;
  cfg.metrics = &sharded;
  core::run_cdn_study(population, cfg);

  auto a = serial.snapshot(), b = sharded.snapshot();
  ASSERT_EQ(a.counters().size(), b.counters().size());
  for (const auto& [name, counter] : a.counters())
    EXPECT_EQ(counter.value, b.counters().at(name).value) << name;
  for (const auto& [name, hist] : a.histograms())
    EXPECT_TRUE(hist == b.histograms().at(name)) << name;
  EXPECT_GT(a.counters().at("cdn.association_tuples").value, 0u);
  EXPECT_EQ(a.counters().at("cdn.logs_generated").value,
            population.size());
  // The kept/mismatched split covers every generated tuple.
  EXPECT_EQ(a.counters().at("cdn.tuples_kept").value +
                a.counters().at("cdn.tuples_mismatched").value,
            a.counters().at("cdn.association_tuples").value);
}

TEST(ObsPipeline, MetricsJsonStableAcrossIdenticalRuns) {
  auto isps = simnet::paper_isps();
  isps.resize(2);
  obs::MetricsRegistry r1, r2;
  core::run_atlas_study(isps, small_atlas_config(&r1, 2));
  core::run_atlas_study(isps, small_atlas_config(&r2, 2));

  // Counters/histograms (the gated sections) are deterministic run to
  // run; timings differ, so compare documents with phases/gauges zeroed.
  auto strip = [](const obs::MetricsSink& sink) {
    obs::MetricsSink out;
    for (const auto& [name, c] : sink.counters())
      out.counter(name).add(c.value);
    for (const auto& [name, h] : sink.histograms()) {
      auto& copy = out.histogram(name, h.lo_exp(), h.hi_exp(),
                                 h.bins_per_decade());
      copy.merge(h);
    }
    return out;
  };
  EXPECT_EQ(obs::metrics_to_json(strip(r1.snapshot()), test_meta()),
            obs::metrics_to_json(strip(r2.snapshot()), test_meta()));
}

}  // namespace
}  // namespace dynamips
