#include "bgp/rib.h"

#include <gtest/gtest.h>

namespace dynamips::bgp {
namespace {

using net::IPv4Address;
using net::IPv6Address;
using net::Prefix4;
using net::Prefix6;

TEST(Rib, EmptyLookups) {
  Rib rib;
  EXPECT_FALSE(rib.lookup(*IPv4Address::parse("8.8.8.8")).has_value());
  EXPECT_FALSE(rib.lookup(*IPv6Address::parse("2001:db8::1")).has_value());
  EXPECT_EQ(rib.asn_of(*IPv4Address::parse("8.8.8.8")), 0u);
}

TEST(Rib, V4LongestMatch) {
  Rib rib;
  rib.announce(*Prefix4::parse("80.0.0.0/8"), {3320, Registry::kRipe});
  rib.announce(*Prefix4::parse("80.128.0.0/11"), {3320, Registry::kRipe});
  auto r = rib.lookup(*IPv4Address::parse("80.129.1.2"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->prefix.to_string(), "80.128.0.0/11");
  EXPECT_EQ(r->origin.asn, 3320u);
  r = rib.lookup(*IPv4Address::parse("80.1.1.2"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->prefix.to_string(), "80.0.0.0/8");
}

TEST(Rib, V6LongestMatch) {
  Rib rib;
  rib.announce(*Prefix6::parse("2003::/19"), {3320, Registry::kRipe});
  rib.announce(*Prefix6::parse("2003:40::/26"), {3320, Registry::kRipe});
  auto r = rib.lookup(*IPv6Address::parse("2003:40:1::1"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->prefix.to_string(), "2003:40::/26");
  r = rib.lookup(*IPv6Address::parse("2003:1ec5::1"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->prefix.to_string(), "2003::/19");
  EXPECT_EQ(rib.asn_of(*IPv6Address::parse("2003::1")), 3320u);
  EXPECT_EQ(rib.asn_of(*IPv6Address::parse("2a02::1")), 0u);
}

TEST(Rib, DistinctOrigins) {
  Rib rib;
  rib.announce(*Prefix4::parse("24.0.0.0/12"), {7922, Registry::kArin});
  rib.announce(*Prefix4::parse("2.0.0.0/12"), {3215, Registry::kRipe});
  EXPECT_EQ(rib.asn_of(*IPv4Address::parse("24.1.2.3")), 7922u);
  EXPECT_EQ(rib.asn_of(*IPv4Address::parse("2.1.2.3")), 3215u);
  auto r = rib.lookup(*IPv4Address::parse("24.1.2.3"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->origin.registry, Registry::kArin);
}

TEST(Rib, RoutesEnumeration) {
  Rib rib;
  rib.announce(*Prefix4::parse("10.0.0.0/8"), {1, Registry::kArin});
  rib.announce(*Prefix4::parse("20.0.0.0/8"), {2, Registry::kRipe});
  rib.announce(*Prefix6::parse("2001:db8::/32"), {3, Registry::kApnic});
  EXPECT_EQ(rib.v4_size(), 2u);
  EXPECT_EQ(rib.v6_size(), 1u);
  auto v4 = rib.v4_routes();
  EXPECT_EQ(v4.size(), 2u);
  auto v6 = rib.v6_routes();
  ASSERT_EQ(v6.size(), 1u);
  EXPECT_EQ(v6[0].prefix.to_string(), "2001:db8::/32");
  EXPECT_EQ(v6[0].origin.asn, 3u);
}

TEST(Rib, RegistryNames) {
  EXPECT_STREQ(registry_name(Registry::kArin), "ARIN");
  EXPECT_STREQ(registry_name(Registry::kRipe), "RIPE");
  EXPECT_STREQ(registry_name(Registry::kApnic), "APNIC");
  EXPECT_STREQ(registry_name(Registry::kLacnic), "LACNIC");
  EXPECT_STREQ(registry_name(Registry::kAfrinic), "AFRINIC");
}

TEST(Rib, OverwriteAnnouncement) {
  Rib rib;
  rib.announce(*Prefix4::parse("10.0.0.0/8"), {1, Registry::kArin});
  rib.announce(*Prefix4::parse("10.0.0.0/8"), {99, Registry::kRipe});
  EXPECT_EQ(rib.v4_size(), 1u);
  EXPECT_EQ(rib.asn_of(*IPv4Address::parse("10.1.1.1")), 99u);
}

}  // namespace
}  // namespace dynamips::bgp
