#include "core/changes.h"

#include <gtest/gtest.h>

namespace dynamips::core {
namespace {

using net::IPv4Address;
using net::IPv6Address;

Obs4 o4(Hour h, const char* addr) {
  return {h, *IPv4Address::parse(addr), false};
}

Obs6 o6(Hour h, const char* addr) {
  return {h, *IPv6Address::parse(addr), true};
}

TEST(Changes, EmptyObservations) {
  EXPECT_TRUE(extract_spans4({}).empty());
  EXPECT_TRUE(extract_spans6({}).empty());
}

TEST(Changes, SingleSpan) {
  std::vector<Obs4> obs{o4(1, "10.0.0.1"), o4(2, "10.0.0.1"),
                        o4(5, "10.0.0.1")};
  auto spans = extract_spans4(obs);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].first_seen, 1u);
  EXPECT_EQ(spans[0].last_seen, 5u);
  EXPECT_TRUE(extract_changes4(spans).empty());
  EXPECT_TRUE(sandwiched_durations4(spans).empty())
      << "a single span is censored on both sides";
}

TEST(Changes, BasicChangeDetection) {
  std::vector<Obs4> obs{o4(0, "10.0.0.1"), o4(1, "10.0.0.1"),
                        o4(2, "10.0.0.2"), o4(3, "10.0.0.2"),
                        o4(4, "10.0.0.3")};
  auto spans = extract_spans4(obs);
  ASSERT_EQ(spans.size(), 3u);
  auto changes = extract_changes4(spans);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].at, 2u);
  EXPECT_EQ(changes[0].prev.to_string(), "10.0.0.1");
  EXPECT_EQ(changes[0].next.to_string(), "10.0.0.2");
  EXPECT_EQ(changes[1].at, 4u);
}

TEST(Changes, SandwichedDurationOnly) {
  // Spans: A [0..23], B [24..47], C [48..]. Only B is sandwiched.
  std::vector<Obs4> obs;
  for (Hour h = 0; h < 72; ++h)
    obs.push_back(o4(h, h < 24 ? "10.0.0.1" : h < 48 ? "10.0.0.2"
                                                     : "10.0.0.3"));
  auto spans = extract_spans4(obs);
  auto durations = sandwiched_durations4(spans);
  ASSERT_EQ(durations.size(), 1u);
  EXPECT_EQ(durations[0], 24u);
}

TEST(Changes, ReturnToSameAddressIsANewSpan) {
  std::vector<Obs4> obs{o4(0, "10.0.0.1"), o4(1, "10.0.0.2"),
                        o4(2, "10.0.0.1")};
  auto spans = extract_spans4(obs);
  EXPECT_EQ(spans.size(), 3u) << "A->B->A yields three spans";
}

TEST(Changes, GapRuleExcludesUncertainDurations) {
  // B's start boundary is preceded by a 100-hour measurement gap.
  std::vector<Obs4> obs{o4(0, "10.0.0.1"),   o4(10, "10.0.0.1"),
                        o4(110, "10.0.0.2"), o4(130, "10.0.0.2"),
                        o4(131, "10.0.0.3"), o4(140, "10.0.0.3"),
                        o4(141, "10.0.0.4")};
  auto spans = extract_spans4(obs);
  ASSERT_EQ(spans.size(), 4u);
  ChangeOptions strict;
  strict.max_boundary_gap = 48;
  auto durations = sandwiched_durations4(spans, strict);
  // Span B [110..130] has an uncertain start; span C [131..140] is clean.
  ASSERT_EQ(durations.size(), 1u);
  EXPECT_EQ(durations[0], 141u - 131u);
  ChangeOptions lenient;
  lenient.max_boundary_gap = 1000;
  EXPECT_EQ(sandwiched_durations4(spans, lenient).size(), 2u);
}

TEST(Changes, V6SpansKeyOnNetworkComponent) {
  // Same /64, different IIDs: no change (privacy addresses rotate hosts).
  std::vector<Obs6> obs{o6(0, "2003:e1:20:100::1"),
                        o6(1, "2003:e1:20:100:abcd::2"),
                        o6(2, "2003:e1:20:200::1")};
  auto spans = extract_spans6(obs);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].net64, 0x2003'00e1'0020'0100ull);
  auto changes = extract_changes6(spans);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].at, 2u);
}

TEST(Changes, DurationUsesNextSpanStart) {
  // Duration of a sandwiched span is next.first_seen - this.first_seen,
  // so intra-span measurement gaps do not shorten it.
  std::vector<Obs4> obs{o4(0, "10.0.0.1"), o4(5, "10.0.0.2"),
                        o4(6, "10.0.0.2"), o4(20, "10.0.0.2"),
                        o4(25, "10.0.0.3"), o4(26, "10.0.0.3")};
  auto spans = extract_spans4(obs);
  auto durations = sandwiched_durations4(spans);
  ASSERT_EQ(durations.size(), 1u);
  EXPECT_EQ(durations[0], 20u);  // 25 - 5
}

TEST(Changes, CooccurrenceAllMatch) {
  std::vector<Change4> v4{{10, {}, {}}, {20, {}, {}}};
  std::vector<Change6> v6{{10, 0, 1}, {21, 1, 2}};
  auto c = change_cooccurrence(v4, v6, 1);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(*c, 1.0);
}

TEST(Changes, CooccurrencePartial) {
  std::vector<Change4> v4{{10, {}, {}}, {50, {}, {}}, {90, {}, {}}};
  std::vector<Change6> v6{{10, 0, 1}};
  auto c = change_cooccurrence(v4, v6, 1);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(*c, 1.0 / 3.0, 1e-9);
}

TEST(Changes, CooccurrenceEmpty) {
  EXPECT_FALSE(change_cooccurrence({}, {}, 1).has_value());
  std::vector<Change4> v4{{10, {}, {}}};
  auto c = change_cooccurrence(v4, {}, 1);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(*c, 0.0);
}

TEST(Changes, CooccurrenceWindow) {
  std::vector<Change4> v4{{10, {}, {}}};
  std::vector<Change6> v6{{13, 0, 1}};
  EXPECT_DOUBLE_EQ(*change_cooccurrence(v4, v6, 1), 0.0);
  EXPECT_DOUBLE_EQ(*change_cooccurrence(v4, v6, 3), 1.0);
}

}  // namespace
}  // namespace dynamips::core
