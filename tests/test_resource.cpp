// test_resource.cpp — the resource governor (core/resource.h).
//
// The governor's contract: budgets in, pressure predicates out, every
// probe cadence-limited, every degradation decision observable through
// `resource.*` metrics. Tests drive the full ladder (ok -> memory
// pressure, ok -> disk soft -> disk hard) with injected probes and a fake
// clock; the real /proc + statvfs probes get a smoke test only.
#include "core/resource.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace dynamips {
namespace {

constexpr std::uint64_t kMiB = 1024 * 1024;

double counter_value(const obs::MetricsSink& snap, const std::string& name) {
  auto it = snap.counters().find(name);
  return it == snap.counters().end() ? -1.0 : double(it->second.value);
}

double gauge_value(const obs::MetricsSink& snap, const std::string& name) {
  auto it = snap.gauges().find(name);
  return it == snap.gauges().end() ? -1.0 : it->second.value;
}

TEST(ResourceProbes, RealRssProbeSeesThisProcess) {
  // Any live Linux process has a nonzero resident set; the exact value is
  // the kernel's business.
  EXPECT_GT(core::current_rss_bytes(), 0u);
}

TEST(ResourceProbes, RealDiskProbeSeesTheTempFilesystem) {
  EXPECT_GT(core::disk_free_bytes(::testing::TempDir()), 0u);
  // Unprobeable paths report 0 ("unknown"), never an error.
  EXPECT_EQ(core::disk_free_bytes("/nonexistent/no/such/dir"), 0u);
}

TEST(ResourceGovernor, NoBudgetsMeansNeverDegraded) {
  core::ResourceBudgets budgets;
  budgets.sample_interval_ms = 0;
  budgets.rss_probe = [] { return std::uint64_t(100000) * kMiB; };
  budgets.disk_free_probe = [](const std::string&) { return std::uint64_t(1); };
  budgets.disk_paths = {"x"};
  core::ResourceGovernor gov(budgets);
  EXPECT_FALSE(gov.memory_pressure());
  EXPECT_FALSE(gov.disk_soft());
  EXPECT_FALSE(gov.disk_hard());
  EXPECT_FALSE(gov.sample().degraded());
}

TEST(ResourceGovernor, MemoryPressureAtTheBudget) {
  obs::MetricsRegistry registry;
  std::uint64_t rss = 10 * kMiB;
  core::ResourceBudgets budgets;
  budgets.max_rss_mb = 64;
  budgets.sample_interval_ms = 0;
  budgets.metrics = &registry;
  budgets.rss_probe = [&] { return rss; };
  core::ResourceGovernor gov(budgets);

  EXPECT_FALSE(gov.memory_pressure());
  rss = 64 * kMiB;  // exactly at the budget trips (>=)
  EXPECT_TRUE(gov.memory_pressure());
  EXPECT_TRUE(gov.sample().degraded());
  EXPECT_EQ(gauge_value(registry.snapshot(), "resource.rss_mb"), 64.0);
  rss = 32 * kMiB;  // live RSS, so recovery is visible
  EXPECT_FALSE(gov.memory_pressure());
}

TEST(ResourceGovernor, DiskLadderSoftThenHard) {
  std::uint64_t free_mb = 1000;
  core::ResourceBudgets budgets;
  budgets.min_disk_free_mb = 100;
  budgets.sample_interval_ms = 0;
  budgets.disk_paths = {"out"};
  budgets.disk_free_probe = [&](const std::string&) { return free_mb * kMiB; };
  core::ResourceGovernor gov(budgets);

  EXPECT_FALSE(gov.disk_soft());
  free_mb = 99;  // below the floor: soft
  EXPECT_TRUE(gov.disk_soft());
  EXPECT_FALSE(gov.disk_hard());
  EXPECT_EQ(gov.sample().disk, core::DiskPressure::kSoft);
  free_mb = 49;  // below half the floor: hard (hard implies soft)
  EXPECT_TRUE(gov.disk_hard());
  EXPECT_TRUE(gov.disk_soft());
  EXPECT_EQ(gov.sample().disk, core::DiskPressure::kHard);
  free_mb = 1000;
  EXPECT_EQ(gov.sample().disk, core::DiskPressure::kOk);
}

TEST(ResourceGovernor, MinAcrossDiskPathsSkippingUnprobeable) {
  core::ResourceBudgets budgets;
  budgets.min_disk_free_mb = 100;
  budgets.sample_interval_ms = 0;
  budgets.disk_paths = {"full", "roomy", "gone"};
  budgets.disk_free_probe = [](const std::string& path) -> std::uint64_t {
    if (path == "full") return 60 * kMiB;
    if (path == "roomy") return 10000 * kMiB;
    return 0;  // unprobeable: unknown, not empty
  };
  core::ResourceGovernor gov(budgets);
  core::ResourceState state = gov.sample();
  EXPECT_TRUE(state.disk_sampled);
  EXPECT_EQ(state.disk_free_mb, 60u);  // governed by the tightest filesystem
  EXPECT_EQ(state.disk, core::DiskPressure::kSoft);
}

TEST(ResourceGovernor, UnprobeableDisksNeverReportPressure) {
  core::ResourceBudgets budgets;
  budgets.min_disk_free_mb = 100;
  budgets.sample_interval_ms = 0;
  budgets.disk_paths = {"gone"};
  budgets.disk_free_probe = [](const std::string&) { return std::uint64_t(0); };
  core::ResourceGovernor gov(budgets);
  core::ResourceState state = gov.sample();
  EXPECT_FALSE(state.disk_sampled);
  EXPECT_EQ(state.disk, core::DiskPressure::kOk);  // a stat hiccup must not
                                                   // wedge ingest
}

TEST(ResourceGovernor, SamplingIsCadenceLimited) {
  std::uint64_t now = 0, probes = 0;
  core::ResourceBudgets budgets;
  budgets.max_rss_mb = 1;
  budgets.sample_interval_ms = 500;
  budgets.clock_ms = [&] { return now; };
  budgets.rss_probe = [&] {
    ++probes;
    return std::uint64_t(2) * kMiB;
  };
  core::ResourceGovernor gov(budgets);

  EXPECT_TRUE(gov.memory_pressure());  // first call always probes
  EXPECT_EQ(probes, 1u);
  now = 499;
  EXPECT_TRUE(gov.memory_pressure());  // inside the window: cached
  EXPECT_EQ(probes, 1u);
  now = 500;
  EXPECT_TRUE(gov.memory_pressure());  // window elapsed: re-probe
  EXPECT_EQ(probes, 2u);
  // state() never probes.
  now = 5000;
  EXPECT_TRUE(gov.state().memory_pressure);
  EXPECT_EQ(probes, 2u);
}

TEST(ResourceGovernor, CountAndBacklogLandInTheRegistry) {
  obs::MetricsRegistry registry;
  core::ResourceBudgets budgets;
  budgets.metrics = &registry;
  core::ResourceGovernor gov(budgets);

  gov.count("ingest_pauses");
  gov.count("quarantine_shed", 7);
  gov.count("quarantine_shed", 0);  // zero adds are dropped, not recorded
  gov.note_backlog(12);

  auto snap = registry.snapshot();
  EXPECT_EQ(counter_value(snap, "resource.ingest_pauses"), 1.0);
  EXPECT_EQ(counter_value(snap, "resource.quarantine_shed"), 7.0);
  EXPECT_EQ(gauge_value(snap, "resource.backlog_batches"), 12.0);
  EXPECT_EQ(gov.state().backlog_batches, 12u);
}

TEST(ResourceGovernor, NullRegistryIsSafe) {
  core::ResourceBudgets budgets;
  budgets.sample_interval_ms = 0;
  core::ResourceGovernor gov(budgets);
  gov.count("ingest_pauses");
  gov.note_backlog(3);
  EXPECT_FALSE(gov.sample().degraded());
}

TEST(ResourceGovernor, PressureNames) {
  EXPECT_EQ(core::disk_pressure_name(core::DiskPressure::kOk), "ok");
  EXPECT_EQ(core::disk_pressure_name(core::DiskPressure::kSoft), "soft");
  EXPECT_EQ(core::disk_pressure_name(core::DiskPressure::kHard), "hard");
}

}  // namespace
}  // namespace dynamips
