#include "netaddr/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace dynamips::net {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(11);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[rng.uniform(8)];
  EXPECT_EQ(counts.size(), 8u);
  for (auto& [v, c] : counts) {
    EXPECT_GT(c, 1000) << v;  // ~1250 expected
    EXPECT_LT(c, 1500) << v;
  }
}

TEST(Rng, UniformInInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(double(hits) / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(24.0);
  EXPECT_NEAR(sum / n, 24.0, 0.5);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(31);
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(double(counts[2]) / double(counts[0]), 3.0, 0.3);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.fork();
  Rng parent2(5);
  Rng child2 = parent2.fork();
  // Forks are deterministic...
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
  // ...and differ from the parent stream.
  Rng p3(5);
  p3.fork();
  int same = 0;
  Rng c3 = Rng(5).fork();
  for (int i = 0; i < 64; ++i)
    if (c3.next_u64() == p3.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace dynamips::net
