#include "cdn/generator.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace dynamips::cdn {
namespace {

CdnConfig small_config() {
  CdnConfig cfg;
  cfg.days = 40;
  cfg.subscriber_scale = 0.02;
  cfg.seed = 3;
  return cfg;
}

TEST(Cdn, PopulationHasFixedAndMobilePerRegistry) {
  auto pop = default_cdn_population(1.0);
  std::set<std::pair<bgp::Registry, bool>> classes;
  for (const auto& e : pop) classes.insert({e.isp.registry, e.isp.mobile});
  for (bgp::Registry reg : bgp::kAllRegistries) {
    EXPECT_TRUE(classes.count({reg, false})) << bgp::registry_name(reg);
    EXPECT_TRUE(classes.count({reg, true})) << bgp::registry_name(reg);
  }
}

TEST(Cdn, PopulationAsnsUnique) {
  auto pop = default_cdn_population(1.0);
  std::set<bgp::Asn> asns;
  for (const auto& e : pop)
    EXPECT_TRUE(asns.insert(e.isp.asn).second) << e.isp.name;
}

TEST(Cdn, ShrinkRestrictsV4Blocks) {
  auto dtag = *simnet::find_isp("DTAG");
  auto shrunk = shrink_v4_for_cdn(dtag, 20);
  ASSERT_EQ(shrunk.bgp4.size(), dtag.bgp4.size());
  for (std::size_t i = 0; i < shrunk.bgp4.size(); ++i) {
    EXPECT_EQ(shrunk.bgp4[i].length(), 20);
    EXPECT_TRUE(dtag.bgp4[i].contains(shrunk.bgp4[i]));
  }
  // Already-small blocks are untouched.
  auto same = shrink_v4_for_cdn(shrunk, 24);
  EXPECT_EQ(same.bgp4[0].length(), 24);
  auto untouched = shrink_v4_for_cdn(shrunk, 18);
  EXPECT_EQ(untouched.bgp4[0].length(), 20);
}

TEST(Cdn, MobileAsnsMatchPopulation) {
  auto pop = default_cdn_population(0.02);
  CdnSimulator sim(pop, small_config());
  auto mobile = sim.mobile_asns();
  for (const auto& e : pop)
    EXPECT_EQ(mobile.count(e.isp.asn) > 0, e.isp.mobile) << e.isp.name;
  EXPECT_TRUE(mobile.count(12576)) << "EE Ltd is cellular";
}

TEST(Cdn, RecordsWellFormed) {
  auto pop = default_cdn_population(0.02);
  CdnSimulator sim(pop, small_config());
  for (std::size_t e = 0; e < sim.entry_count(); ++e) {
    AssociationLog log = sim.generate(e);
    const auto& isp = sim.entry(e).isp;
    EXPECT_EQ(log.asn, isp.asn);
    EXPECT_EQ(log.mobile, isp.mobile);
    std::uint32_t prev_day = 0;
    for (const auto& rec : log.records) {
      EXPECT_LT(rec.day, 40u);
      EXPECT_GE(rec.day, prev_day);
      prev_day = rec.day;
      EXPECT_EQ(rec.v4_24.length(), 24);
      EXPECT_EQ(rec.v6_64.length(), 64);
      EXPECT_EQ(rec.asn6, isp.asn);
      if (rec.asn4 == rec.asn6) {
        bool inside = false;
        for (const auto& p : isp.bgp4)
          inside |= p.contains(rec.v4_24.address());
        EXPECT_TRUE(inside) << rec.v4_24.to_string();
        bool inside6 = false;
        for (const auto& p : isp.bgp6)
          inside6 |= p.contains(rec.v6_64.address());
        EXPECT_TRUE(inside6) << rec.v6_64.to_string();
      }
    }
  }
}

TEST(Cdn, CrossNetworkNoiseExists) {
  auto pop = default_cdn_population(0.05);
  CdnConfig cfg = small_config();
  cfg.subscriber_scale = 0.05;
  cfg.cross_network_noise = 0.05;
  CdnSimulator sim(pop, cfg);
  std::uint64_t mismatched = 0, total = 0;
  for (std::size_t e = 0; e < sim.entry_count(); ++e) {
    AssociationLog log = sim.generate(e);
    for (const auto& rec : log.records) {
      ++total;
      mismatched += rec.asn4 != rec.asn6;
    }
  }
  ASSERT_GT(total, 1000u);
  double share = double(mismatched) / double(total);
  EXPECT_GT(share, 0.02);
  EXPECT_LT(share, 0.09);
}

TEST(Cdn, Deterministic) {
  auto pop = default_cdn_population(0.02);
  CdnSimulator a(pop, small_config());
  CdnSimulator b(pop, small_config());
  auto la = a.generate(0);
  auto lb = b.generate(0);
  ASSERT_EQ(la.records.size(), lb.records.size());
  for (std::size_t i = 0; i < la.records.size(); ++i) {
    EXPECT_EQ(la.records[i].day, lb.records[i].day);
    EXPECT_EQ(la.records[i].v6_64, lb.records[i].v6_64);
  }
}

TEST(Cdn, MobileEgressPoolIsSmall) {
  auto pop = default_cdn_population(0.05);
  CdnConfig cfg = small_config();
  cfg.subscriber_scale = 0.05;
  CdnSimulator sim(pop, cfg);
  for (std::size_t e = 0; e < sim.entry_count(); ++e) {
    if (!sim.entry(e).isp.mobile) continue;
    AssociationLog log = sim.generate(e);
    std::unordered_set<net::Prefix4> blocks;
    std::unordered_set<std::uint64_t> v64s;
    for (const auto& rec : log.records) {
      if (rec.asn4 != rec.asn6) continue;
      blocks.insert(rec.v4_24);
      v64s.insert(rec.v6_64.address().network64());
    }
    EXPECT_LE(blocks.size(), 4u) << "CGNAT egress is a handful of /24s";
    EXPECT_GT(v64s.size(), blocks.size() * 10)
        << "many UEs share each egress /24";
  }
}

TEST(Cdn, MobileDelegationsAreBare64s) {
  auto pop = default_cdn_population(1.0);
  for (const auto& e : pop) {
    if (!e.isp.mobile) continue;
    ASSERT_EQ(e.isp.delegation.entries.size(), 1u) << e.isp.name;
    EXPECT_EQ(e.isp.delegation.entries[0].length, 64) << e.isp.name;
  }
}

TEST(Cdn, BlockSizingTracksScale) {
  // Larger populations must spread over more /24s (lower block lengths).
  auto small = default_cdn_population(0.1);
  auto large = default_cdn_population(4.0);
  ASSERT_EQ(small.size(), large.size());
  for (std::size_t i = 0; i < small.size(); ++i) {
    if (small[i].isp.mobile) continue;
    EXPECT_LE(large[i].isp.bgp4[0].length(), small[i].isp.bgp4[0].length())
        << small[i].isp.name;
  }
}

}  // namespace
}  // namespace dynamips::cdn
