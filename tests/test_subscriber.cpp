#include "simnet/subscriber.h"

#include <gtest/gtest.h>

#include <set>

namespace dynamips::simnet {
namespace {

IspProfile test_profile() {
  auto p = *find_isp("DTAG");
  return p;
}

TEST(Subscriber, TimelinesAreContiguousAndCoverWindow) {
  TimelineGenerator gen(test_profile(), 42);
  for (std::uint32_t id = 0; id < 50; ++id) {
    auto tl = gen.generate(id, 100, 9000);
    ASSERT_FALSE(tl.v4.empty());
    EXPECT_EQ(tl.v4.front().start, 100u);
    EXPECT_EQ(tl.v4.back().end, 9000u);
    for (std::size_t i = 0; i < tl.v4.size(); ++i) {
      EXPECT_LT(tl.v4[i].start, tl.v4[i].end);
      if (i) {
        EXPECT_EQ(tl.v4[i].start, tl.v4[i - 1].end);
      }
    }
    if (tl.dual_stack) {
      ASSERT_FALSE(tl.v6.empty());
      EXPECT_EQ(tl.v6.front().start, 100u);
      EXPECT_EQ(tl.v6.back().end, 9000u);
      for (std::size_t i = 1; i < tl.v6.size(); ++i)
        EXPECT_EQ(tl.v6[i].start, tl.v6[i - 1].end);
    } else {
      EXPECT_TRUE(tl.v6.empty());
    }
  }
}

TEST(Subscriber, Deterministic) {
  TimelineGenerator gen(test_profile(), 7);
  auto a = gen.generate(3, 0, 5000);
  auto b = gen.generate(3, 0, 5000);
  ASSERT_EQ(a.v4.size(), b.v4.size());
  ASSERT_EQ(a.v6.size(), b.v6.size());
  for (std::size_t i = 0; i < a.v4.size(); ++i) {
    EXPECT_EQ(a.v4[i].addr, b.v4[i].addr);
    EXPECT_EQ(a.v4[i].start, b.v4[i].start);
  }
  for (std::size_t i = 0; i < a.v6.size(); ++i)
    EXPECT_EQ(a.v6[i].lan64, b.v6[i].lan64);
}

TEST(Subscriber, DifferentIdsDiffer) {
  TimelineGenerator gen(test_profile(), 7);
  auto a = gen.generate(1, 0, 5000);
  auto b = gen.generate(2, 0, 5000);
  // The initial addresses collide with negligible probability.
  EXPECT_NE(a.v4.front().addr, b.v4.front().addr);
}

TEST(Subscriber, AddressesStayInsideAnnouncements) {
  auto profile = test_profile();
  TimelineGenerator gen(profile, 11);
  for (std::uint32_t id = 0; id < 30; ++id) {
    auto tl = gen.generate(id, 0, 8760);
    for (const auto& seg : tl.v4) {
      bool inside = false;
      for (const auto& p : profile.bgp4) inside |= p.contains(seg.addr);
      EXPECT_TRUE(inside) << seg.addr.to_string();
    }
    for (const auto& seg : tl.v6) {
      bool inside = false;
      for (const auto& p : profile.bgp6) inside |= p.contains(seg.delegated);
      EXPECT_TRUE(inside) << seg.delegated.to_string();
      // The advertised LAN /64 sits inside the delegated prefix.
      net::IPv6Address lan{seg.lan64, 0};
      EXPECT_TRUE(seg.delegated.contains(lan));
      EXPECT_EQ(seg.delegated.length(), tl.delegated_len);
    }
  }
}

TEST(Subscriber, ConsecutiveSegmentsChangeAddress) {
  TimelineGenerator gen(test_profile(), 13);
  for (std::uint32_t id = 0; id < 30; ++id) {
    auto tl = gen.generate(id, 0, 8760);
    for (std::size_t i = 1; i < tl.v4.size(); ++i)
      EXPECT_NE(tl.v4[i].addr, tl.v4[i - 1].addr);
    for (std::size_t i = 1; i < tl.v6.size(); ++i)
      EXPECT_NE(tl.v6[i].lan64, tl.v6[i - 1].lan64)
          << "every v6 change must change the advertised /64";
  }
}

TEST(Subscriber, ZeroFillCpeAnnouncesLowest64) {
  auto profile = test_profile();
  profile.cpe_scramble_share = 0.0;  // force zero-fill (modulo 3% constant)
  TimelineGenerator gen(profile, 17);
  int zerofill_checked = 0;
  for (std::uint32_t id = 0; id < 40; ++id) {
    auto tl = gen.generate(id, 0, 8760);
    if (tl.cpe_mode != CpeSubnetMode::kZeroFill) continue;
    for (const auto& seg : tl.v6) {
      EXPECT_EQ(seg.lan64, seg.delegated.address().network64());
      ++zerofill_checked;
    }
  }
  EXPECT_GT(zerofill_checked, 0);
}

TEST(Subscriber, ScrambleCpeKeepsDelegationOnScramble) {
  auto profile = test_profile();
  profile.cpe_scramble_share = 1.0;
  profile.scramble_cpe.scrambles_per_year = 50;  // frequent
  TimelineGenerator gen(profile, 19);
  int scrambles = 0;
  for (std::uint32_t id = 0; id < 30; ++id) {
    auto tl = gen.generate(id, 0, 8760);
    for (std::size_t i = 0; i + 1 < tl.v6.size(); ++i) {
      if (tl.v6[i].end_cause == ChangeCause::kCpeScramble) {
        EXPECT_EQ(tl.v6[i].delegated, tl.v6[i + 1].delegated)
            << "scramble must not change the ISP delegation";
        EXPECT_NE(tl.v6[i].lan64, tl.v6[i + 1].lan64);
        ++scrambles;
      }
    }
  }
  EXPECT_GT(scrambles, 50);
}

TEST(Subscriber, StaticSubscribersNeverChange) {
  auto profile = test_profile();
  profile.static_share = 1.0;
  TimelineGenerator gen(profile, 23);
  for (std::uint32_t id = 0; id < 20; ++id) {
    auto tl = gen.generate(id, 0, 20000);
    EXPECT_TRUE(tl.is_static);
    EXPECT_EQ(tl.v4.size(), 1u);
    if (tl.dual_stack) {
      EXPECT_EQ(tl.v6.size(), 1u);
    }
  }
}

TEST(Subscriber, CouplingProducesSimultaneousChanges) {
  auto profile = test_profile();
  profile.couple_v6_to_v4 = 1.0;
  profile.static_share = 0.0;
  profile.dualstack_share = 1.0;
  profile.cpe_scramble_share = 0.0;
  profile.scramble_cpe.scrambles_per_year = 0;
  // Make the v6 own process silent so all v6 changes are coupled.
  profile.v6 = ChangePolicy{};
  TimelineGenerator gen(profile, 29);
  for (std::uint32_t id = 0; id < 20; ++id) {
    auto tl = gen.generate(id, 0, 8760);
    std::set<Hour> v4_changes;
    for (std::size_t i = 0; i + 1 < tl.v4.size(); ++i)
      v4_changes.insert(tl.v4[i].end);
    for (std::size_t i = 0; i + 1 < tl.v6.size(); ++i) {
      EXPECT_TRUE(v4_changes.count(tl.v6[i].end))
          << "every v6 change must coincide with a v4 change";
      EXPECT_EQ(tl.v6[i].end_cause, ChangeCause::kCoupled);
    }
  }
}

TEST(Subscriber, NoCouplingNoCoupledCauses) {
  auto profile = test_profile();
  profile.couple_v6_to_v4 = 0.0;
  TimelineGenerator gen(profile, 31);
  for (std::uint32_t id = 0; id < 20; ++id) {
    auto tl = gen.generate(id, 0, 8760);
    for (const auto& seg : tl.v6)
      EXPECT_NE(seg.end_cause, ChangeCause::kCoupled);
  }
}

TEST(Subscriber, DelegationLengthMatchesGroundTruth) {
  auto profile = test_profile();
  profile.delegation.entries = {{60, 1.0}};
  TimelineGenerator gen(profile, 37);
  for (std::uint32_t id = 0; id < 20; ++id) {
    auto tl = gen.generate(id, 0, 4000);
    EXPECT_EQ(tl.delegated_len, 60);
    for (const auto& seg : tl.v6) EXPECT_EQ(seg.delegated.length(), 60);
  }
}

TEST(Subscriber, DualStackShareRespected) {
  auto profile = test_profile();
  profile.dualstack_share = 0.5;
  TimelineGenerator gen(profile, 41);
  int ds = 0;
  const int n = 2000;
  for (std::uint32_t id = 0; id < n; ++id)
    ds += gen.generate(id, 0, 200).dual_stack;
  EXPECT_NEAR(double(ds) / n, 0.5, 0.04);
}

TEST(Subscriber, HomePoolsContainAllDelegations) {
  TimelineGenerator gen(test_profile(), 43);
  for (std::uint32_t id = 0; id < 30; ++id) {
    auto tl = gen.generate(id, 0, 8760);
    for (const auto& seg : tl.v6) {
      bool inside = false;
      for (const auto& pool : tl.home.pools)
        inside |= pool.contains(seg.delegated);
      EXPECT_TRUE(inside);
    }
  }
}

}  // namespace
}  // namespace dynamips::simnet
