#include "core/blocklist.h"

#include <gtest/gtest.h>

#include "simnet/isp.h"
#include "simnet/subscriber.h"

namespace dynamips::core {
namespace {

using simnet::Assignment6;
using simnet::SubscriberTimeline;

SubscriberTimeline timeline_with(std::vector<Assignment6> v6) {
  SubscriberTimeline tl;
  tl.dual_stack = true;
  tl.v6 = std::move(v6);
  return tl;
}

TEST(Blocklist, StableOffenderNeverEvadesExact64) {
  // One offender holding the same /64 for the whole window.
  auto offender = timeline_with({{0, 1000, {}, 0x2003000000001100ull, {}}});
  BlocklistSimulator sim({offender});
  auto out = sim.evaluate({64, 500}, 1);
  EXPECT_EQ(out.incidents, 1u);
  EXPECT_EQ(out.evaded, 0u);
  EXPECT_EQ(out.collateral_subscribers, 0u);
}

TEST(Blocklist, ScramblerEvadesA64BlockButNotA56) {
  // Offender rotates /64s inside its /56 delegation during the block.
  auto offender = timeline_with({
      {0, 100, {}, 0x2003000000001100ull, {}},
      {100, 200, {}, 0x2003000000001180ull, {}},  // same /56
      {200, 1000, {}, 0x20030000000011c0ull, {}},
  });
  BlocklistSimulator sim({offender});
  // Incident anchors on the middle segment (start 100).
  auto narrow = sim.evaluate({64, 500}, 1);
  EXPECT_EQ(narrow.evaded, 1u) << "a /64 block is evadable by rotation";
  auto wide = sim.evaluate({56, 500}, 1);
  EXPECT_EQ(wide.evaded, 0u) << "a /56 block contains the rotation";
}

TEST(Blocklist, RenumberingOffenderEvadesOnceBlockOutlivesAssignment) {
  auto offender = timeline_with({
      {0, 100, {}, 0x2003000000001100ull, {}},
      {100, 200, {}, 0x2003000000002200ull, {}},   // different /48
      {200, 1000, {}, 0x2003000000003300ull, {}},
  });
  BlocklistSimulator sim({offender});
  auto short_block = sim.evaluate({56, 50}, 1);  // expires before the move
  EXPECT_EQ(short_block.evaded, 0u);
  auto long_block = sim.evaluate({56, 500}, 1);
  EXPECT_EQ(long_block.evaded, 1u);
}

TEST(Blocklist, CollateralWhenInnocentInheritsBlockedPrefix) {
  auto offender = timeline_with({
      {0, 100, {}, 0x2003000000001100ull, {}},
      {100, 1000, {}, 0x2003000000099900ull, {}},
  });
  // Incident anchors on the second segment (start 100)... make the middle
  // segment explicit: with two segments, v6[1] is the anchor. The innocent
  // later holds a /64 inside the anchor's /56.
  auto innocent = timeline_with({
      {0, 300, {}, 0x2003000000770000ull, {}},
      {300, 1000, {}, 0x2003000000099980ull, {}},  // same /56 as anchor
  });
  BlocklistSimulator sim({offender, innocent});
  auto out = sim.evaluate({56, 800}, 2);  // only subscriber 0 offends
  EXPECT_EQ(out.incidents, 1u);
  EXPECT_EQ(out.collateral_subscribers, 1u);
  // A shorter-lived block expires before the innocent arrives.
  auto brief = sim.evaluate({56, 100}, 2);
  EXPECT_EQ(brief.collateral_subscribers, 0u);
}

TEST(Blocklist, PoolWideBlockMaximizesCollateral) {
  // Everyone in the same /40 pool: a /40 block hits every active bystander.
  std::vector<SubscriberTimeline> population;
  for (int k = 0; k < 10; ++k)
    population.push_back(timeline_with(
        {{0, 1000, {}, 0x20030000aa000000ull | (std::uint64_t(k) << 8),
          {}}}));
  BlocklistSimulator sim(population);
  auto out = sim.evaluate({40, 500}, 100);  // one incident
  EXPECT_EQ(out.incidents, 1u);
  EXPECT_EQ(out.collateral_subscribers, 9u);
}

TEST(Blocklist, EndToEndTradeoffOnSimulatedIsp) {
  // On a renumbering ISP, widening the block from /64 to the delegation
  // length cuts evasion; stretching duration raises collateral.
  auto isp = *simnet::find_isp("DTAG");
  simnet::TimelineGenerator gen(isp, 31);
  std::vector<SubscriberTimeline> population;
  for (std::uint32_t id = 0; id < 120; ++id) {
    auto tl = gen.generate(id, 0, 24 * 60);
    if (tl.dual_stack) population.push_back(std::move(tl));
  }
  BlocklistSimulator sim(std::move(population));

  auto narrow = sim.evaluate({64, 72});
  auto at_delegation = sim.evaluate({56, 72});
  EXPECT_LE(at_delegation.evasion_rate(), narrow.evasion_rate())
      << "blocking the whole delegation cannot be easier to evade";

  auto brief = sim.evaluate({56, 24});
  auto week = sim.evaluate({56, 24 * 28});
  EXPECT_GE(week.collateral_per_incident(),
            brief.collateral_per_incident())
      << "longer blocks accumulate collateral";
}

TEST(Blocklist, EmptyPopulation) {
  BlocklistSimulator sim({});
  auto out = sim.evaluate({64, 24});
  EXPECT_EQ(out.incidents, 0u);
  EXPECT_DOUBLE_EQ(out.evasion_rate(), 0.0);
}

}  // namespace
}  // namespace dynamips::core
