// test_failpoint — the deterministic fault-injection registry
// (core/failpoint.h): spec grammar, hit-range and seeded probabilistic
// predicates, replayability (same spec + same seed => identical injection
// sequence, the contract every chaos-soak run leans on), staged arming
// semantics, and the disarmed fast path.
#include "core/failpoint.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <string>
#include <vector>

namespace dynamips::core {
namespace {

/// Every test starts and ends disarmed; failpoint state is process-global.
class Failpoint : public ::testing::Test {
 protected:
  void SetUp() override { disarm_failpoints(); }
  void TearDown() override {
    disarm_failpoints();
    ::unsetenv("DYNAMIPS_FAILPOINTS");
  }
};

TEST_F(Failpoint, DisarmedIsInert) {
  EXPECT_FALSE(failpoints_armed());
  FailpointHit hit = failpoint("anything.at.all");
  EXPECT_FALSE(hit);
  EXPECT_EQ(hit.kind, FailpointHit::Kind::kNone);
  EXPECT_EQ(failpoint_report(), "");
}

TEST_F(Failpoint, ErrDefaultsToEio) {
  ASSERT_TRUE(arm_failpoints("x=err").ok());
  EXPECT_TRUE(failpoints_armed());
  FailpointHit hit = failpoint("x");
  ASSERT_TRUE(hit.is_error());
  EXPECT_EQ(hit.err, EIO);
  EXPECT_STREQ(hit.errno_name(), "EIO");
  // Unlisted names never fire even while others are armed.
  EXPECT_FALSE(failpoint("y"));
}

TEST_F(Failpoint, NamedErrnoAndDelayAndShort) {
  ASSERT_TRUE(
      arm_failpoints("a=err(ENOSPC); b=short; c=delay(50ms)").ok());
  FailpointHit a = failpoint("a");
  ASSERT_TRUE(a.is_error());
  EXPECT_EQ(a.err, ENOSPC);
  EXPECT_STREQ(a.errno_name(), "ENOSPC");
  EXPECT_TRUE(failpoint("b").is_short_write());
  FailpointHit c = failpoint("c");
  ASSERT_TRUE(c.is_delay());
  EXPECT_EQ(c.delay_ms, 50u);
}

TEST_F(Failpoint, ExactHitPredicate) {
  ASSERT_TRUE(arm_failpoints("x=err@3").ok());
  EXPECT_FALSE(failpoint("x"));  // hit 1
  EXPECT_FALSE(failpoint("x"));  // hit 2
  EXPECT_TRUE(failpoint("x"));   // hit 3 fires
  EXPECT_FALSE(failpoint("x"));  // hit 4
  EXPECT_EQ(failpoint_fired("x"), 1u);
}

TEST_F(Failpoint, RangeAndOpenEndedPredicates) {
  ASSERT_TRUE(arm_failpoints("r=err@2..4; o=err@3..").ok());
  std::vector<bool> r_fired, o_fired;
  for (int i = 0; i < 6; ++i) {
    r_fired.push_back(bool(failpoint("r")));
    o_fired.push_back(bool(failpoint("o")));
  }
  EXPECT_EQ(r_fired, (std::vector<bool>{false, true, true, true, false,
                                        false}));
  EXPECT_EQ(o_fired, (std::vector<bool>{false, false, true, true, true,
                                        true}));
}

TEST_F(Failpoint, SameSpecAndSeedReplaysIdenticalSequence) {
  // The chaos-replay contract: arming the same spec resets the counters,
  // and the per-hit decisions depend only on (seed, hit index), so two
  // arrings of the same spec produce bit-identical injection sequences.
  const char* spec = "p=err*0.25%12345";
  auto sequence = [&] {
    std::vector<bool> fired;
    for (int i = 0; i < 500; ++i) fired.push_back(bool(failpoint("p")));
    return fired;
  };
  ASSERT_TRUE(arm_failpoints(spec).ok());
  std::vector<bool> first = sequence();
  ASSERT_TRUE(arm_failpoints(spec).ok());  // re-arm resets counters
  std::vector<bool> second = sequence();
  EXPECT_EQ(first, second);

  // ...and it actually fires probabilistically, not always/never.
  std::size_t fires = 0;
  for (bool f : first) fires += f;
  EXPECT_GT(fires, 50u);
  EXPECT_LT(fires, 250u);

  // A different seed gives a different (still deterministic) sequence.
  ASSERT_TRUE(arm_failpoints("p=err*0.25%54321").ok());
  EXPECT_NE(first, sequence());
}

TEST_F(Failpoint, TextualSeedTokenIsValidAndReproducible) {
  ASSERT_TRUE(arm_failpoints("p=err*0.5%seed").ok());
  std::vector<bool> first;
  for (int i = 0; i < 100; ++i) first.push_back(bool(failpoint("p")));
  ASSERT_TRUE(arm_failpoints("p=err*0.5%seed").ok());
  std::vector<bool> second;
  for (int i = 0; i < 100; ++i) second.push_back(bool(failpoint("p")));
  EXPECT_EQ(first, second);
}

TEST_F(Failpoint, OffErasesAndEmptySpecDisarms) {
  ASSERT_TRUE(arm_failpoints("x=err; y=err").ok());
  ASSERT_TRUE(arm_failpoints("x=err; x=off").ok());
  EXPECT_FALSE(failpoint("x"));
  EXPECT_FALSE(failpoint("y"));  // arming replaces the whole set
  ASSERT_TRUE(arm_failpoints("").ok());
  EXPECT_FALSE(failpoints_armed());
}

TEST_F(Failpoint, BadSpecLeavesCurrentArmingUntouched) {
  ASSERT_TRUE(arm_failpoints("x=err@2").ok());
  EXPECT_FALSE(failpoint("x"));  // hit 1 consumed

  EXPECT_EQ(arm_failpoints("x=bogus").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(arm_failpoints("noequals").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(arm_failpoints("x=err@0").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(arm_failpoints("x=err@5..2").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(arm_failpoints("x=err*0.5").code(),  // *F without %SEED
            StatusCode::kInvalidArgument);
  EXPECT_EQ(arm_failpoints("x=err*1.5%1").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(arm_failpoints("x=err(EWHATEVER)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(arm_failpoints("x=delay(ms)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(arm_failpoints("x=off@1").code(),
            StatusCode::kInvalidArgument);

  // The original arming survived every failed re-arm: hit 2 still fires.
  EXPECT_TRUE(failpoint("x"));
}

TEST_F(Failpoint, ReportCountsHitsAndFires) {
  ASSERT_TRUE(arm_failpoints("x=err@2").ok());
  failpoint("x");
  failpoint("x");
  failpoint("x");
  EXPECT_EQ(failpoint_report(), "x: hits=3 fired=1");
  EXPECT_EQ(failpoint_fired("x"), 1u);
  EXPECT_EQ(failpoint_fired("nope"), 0u);
}

TEST_F(Failpoint, ArmsFromEnvironment) {
  // Unset or empty is a successful no-op.
  ::unsetenv("DYNAMIPS_FAILPOINTS");
  ASSERT_TRUE(arm_failpoints_from_env().ok());
  EXPECT_FALSE(failpoints_armed());

  ::setenv("DYNAMIPS_FAILPOINTS", "e=err(EPIPE)@1", 1);
  ASSERT_TRUE(arm_failpoints_from_env().ok());
  FailpointHit hit = failpoint("e");
  ASSERT_TRUE(hit.is_error());
  EXPECT_EQ(hit.err, EPIPE);

  ::setenv("DYNAMIPS_FAILPOINTS", "broken spec", 1);
  EXPECT_EQ(arm_failpoints_from_env().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(Failpoint, WhitespaceTolerantGrammar) {
  ASSERT_TRUE(
      arm_failpoints(" a = err( ENOSPC ) @ 2 .. 3 ; b = delay( 5 ms) ")
          .ok());
  EXPECT_FALSE(failpoint("a"));
  EXPECT_TRUE(failpoint("a").is_error());
  EXPECT_TRUE(failpoint("b").is_delay());
}

}  // namespace
}  // namespace dynamips::core
