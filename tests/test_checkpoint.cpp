// test_checkpoint — crash-safe studies: the checkpoint codec and container
// (io/checkpoint.h), atomic file publication (io/atomic_file.h), analyzer
// save/load round-trips, and the end-to-end guarantee of the supervised
// pipeline: a run interrupted at every round boundary and resumed — at any
// thread count — produces results byte-identical to an uninterrupted run.
//
// Corruption coverage is exhaustive at this file size: every single-byte
// flip and every truncation of an encoded checkpoint must be rejected with
// a descriptive Status, never a crash or a silently wrong resume.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "atlas/generator.h"
#include "cdn/generator.h"
#include "core/failpoint.h"
#include "core/pipeline.h"
#include "core/shutdown.h"
#include "io/atomic_file.h"
#include "io/checkpoint.h"
#include "io/dataset_io.h"
#include "io/results_io.h"
#include "obs/metrics.h"
#include "simnet/isp.h"

namespace dynamips {
namespace {

using io::ckpt::Reader;
using io::ckpt::Writer;

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// ------------------------------------------------------------------- codec

TEST(CheckpointCodec, RoundTripsEveryType) {
  Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.f64(0.1);            // not exactly representable: must be bit-exact
  w.f64(-0.0);           // sign of zero must survive
  w.str("hello\0world");  // embedded NUL via string_view would stop at \0;
  w.str(std::string("a\0b", 3));  // explicit length keeps it
  w.str("");

  Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.f64(), 0.1);
  double z = r.f64();
  EXPECT_EQ(z, 0.0);
  EXPECT_TRUE(std::signbit(z));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), std::string("a\0b", 3));
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(CheckpointCodec, ReaderFailsStickyOnUnderflow) {
  Writer w;
  w.u32(7);
  Reader r(w.buffer());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.u64(), 0u);  // out of bytes
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // sticky: every later read is zero
  EXPECT_FALSE(r.ok());
}

TEST(CheckpointCodec, SizeGuardRejectsImpossibleCounts) {
  Writer w;
  w.u64(1u << 30);  // claims 2^30 elements with no bytes behind it
  Reader r(w.buffer());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(CheckpointCodec, Crc32MatchesKnownVector) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(io::ckpt::crc32("123456789"), 0xCBF43926u);
}

// --------------------------------------------------------------- container

io::StudyCheckpoint sample_checkpoint() {
  io::StudyCheckpoint ck;
  ck.kind = io::kCkptAtlasGen;
  ck.config_fingerprint = 0x1122334455667788ull;
  ck.item_count = 10;
  ck.shards = {{0, 5, 3, "shard-zero-state"}, {5, 10, 5, "shard-one"}};
  ck.registry_blob = "registry-bytes";
  ck.supervisor_blob = "supervisor-bytes";
  return ck;
}

TEST(CheckpointContainer, EncodeDecodeRoundTrips) {
  io::StudyCheckpoint ck = sample_checkpoint();
  auto decoded = io::decode_checkpoint(io::encode_checkpoint(ck));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->kind, ck.kind);
  EXPECT_EQ(decoded->config_fingerprint, ck.config_fingerprint);
  EXPECT_EQ(decoded->item_count, ck.item_count);
  ASSERT_EQ(decoded->shards.size(), 2u);
  EXPECT_EQ(decoded->shards[0].begin, 0u);
  EXPECT_EQ(decoded->shards[0].next, 3u);
  EXPECT_EQ(decoded->shards[0].blob, "shard-zero-state");
  EXPECT_EQ(decoded->shards[1].blob, "shard-one");
  EXPECT_EQ(decoded->registry_blob, "registry-bytes");
  EXPECT_EQ(decoded->supervisor_blob, "supervisor-bytes");
  EXPECT_EQ(decoded->items_done(), 3u + 0u);
}

TEST(CheckpointContainer, EveryByteFlipIsRejected) {
  std::string bytes = io::encode_checkpoint(sample_checkpoint());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string damaged = bytes;
    damaged[i] = char(damaged[i] ^ 0x20);
    auto decoded = io::decode_checkpoint(damaged);
    ASSERT_FALSE(decoded.ok()) << "flip at byte " << i << " was accepted";
    EXPECT_FALSE(decoded.status().message().empty());
  }
}

TEST(CheckpointContainer, EveryTruncationIsRejected) {
  std::string bytes = io::encode_checkpoint(sample_checkpoint());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    auto decoded =
        io::decode_checkpoint(std::string_view(bytes).substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "truncation to " << len << " was accepted";
    EXPECT_EQ(decoded.status().code(), core::StatusCode::kDataLoss);
  }
}

TEST(CheckpointContainer, VersionSkewIsFailedPrecondition) {
  std::string bytes = io::encode_checkpoint(sample_checkpoint());
  bytes[8] = char(io::kCheckpointVersion + 1);  // u32 LE version low byte
  // Re-stamp the whole-file CRC so only the version differs.
  std::uint32_t crc =
      io::ckpt::crc32(std::string_view(bytes).substr(0, bytes.size() - 4));
  for (int i = 0; i < 4; ++i)
    bytes[bytes.size() - 4 + std::size_t(i)] = char((crc >> (8 * i)) & 0xFF);
  auto decoded = io::decode_checkpoint(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), core::StatusCode::kFailedPrecondition);
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
}

TEST(CheckpointContainer, InconsistentShardTableIsRejected) {
  io::StudyCheckpoint ck = sample_checkpoint();
  ck.shards[1].begin = 6;  // gap after shard 0
  auto decoded = io::decode_checkpoint(io::encode_checkpoint(ck));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), core::StatusCode::kDataLoss);
}

// ------------------------------------------------------- files & retention

TEST(CheckpointFiles, MissingFileIsNotFound) {
  auto loaded = io::read_checkpoint(temp_path("no_such.ckpt"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kNotFound);
}

TEST(CheckpointFiles, WriteRetainsPreviousAndFallsBackToIt) {
  const std::string path = temp_path("retained.ckpt");
  io::remove_checkpoint_files(path);

  io::StudyCheckpoint first = sample_checkpoint();
  ASSERT_TRUE(io::write_checkpoint(path, first).ok());
  io::StudyCheckpoint second = sample_checkpoint();
  second.shards[0].next = 5;
  ASSERT_TRUE(io::write_checkpoint(path, second).ok());

  // The previous snapshot survives as .prev.
  auto prev = io::read_checkpoint(path + ".prev");
  ASSERT_TRUE(prev.ok()) << prev.status().to_string();
  EXPECT_EQ(prev->shards[0].next, 3u);

  // Damage the primary: the fallback reader serves .prev and says so.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not a checkpoint";
  }
  std::string used;
  auto fallback = io::read_checkpoint_with_fallback(path, &used);
  ASSERT_TRUE(fallback.ok()) << fallback.status().to_string();
  EXPECT_EQ(used, path + ".prev");
  EXPECT_EQ(fallback->shards[0].next, 3u);

  // With both damaged the Status describes both attempts.
  {
    std::ofstream out(path + ".prev", std::ios::binary | std::ios::trunc);
    out << "also not a checkpoint";
  }
  auto none = io::read_checkpoint_with_fallback(path, &used);
  ASSERT_FALSE(none.ok());
  EXPECT_NE(none.status().message().find(".prev"), std::string::npos);

  io::remove_checkpoint_files(path);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".prev"));
}

TEST(AtomicFile, AbandonedWriterLeavesDestinationUntouched) {
  const std::string path = temp_path("atomic_abandon.txt");
  ASSERT_TRUE(io::write_file_atomic(path, "original").ok());
  {
    io::AtomicFileWriter w(path);
    ASSERT_TRUE(w.ok());
    w.stream() << "half-written";
    // no commit: simulated crash
  }
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "original");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(AtomicFile, DoubleCommitIsFailedPrecondition) {
  const std::string path = temp_path("atomic_double.txt");
  io::AtomicFileWriter w(path);
  ASSERT_TRUE(w.ok());
  w.stream() << "bytes";
  ASSERT_TRUE(w.commit().ok());
  EXPECT_EQ(w.commit().code(), core::StatusCode::kFailedPrecondition);
  std::filesystem::remove(path);
}

// ------------------------------------------------------- fault injection
//
// The same crash-safety claims, but exercised through core/failpoint.h
// instead of hoping the error paths never run: injected ENOSPC, torn
// writes, fsync failures, and primary-corruption must all leave the last
// good version readable and never publish a partial file.

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

class FailpointInjection : public ::testing::Test {
 protected:
  void SetUp() override { core::disarm_failpoints(); }
  void TearDown() override { core::disarm_failpoints(); }
};

TEST_F(FailpointInjection, InjectedEnospcRemovesTmpAndKeepsDestination) {
  const std::string path = temp_path("fp_enospc.txt");
  ASSERT_TRUE(io::write_file_atomic(path, "original").ok());

  ASSERT_TRUE(core::arm_failpoints("atomic_file.write=err(ENOSPC)@1").ok());
  core::Status st = io::write_file_atomic(path, "replacement");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("ENOSPC"), std::string::npos);
  EXPECT_EQ(slurp(path), "original");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // Disarmed again, the very same write goes through.
  core::disarm_failpoints();
  ASSERT_TRUE(io::write_file_atomic(path, "replacement").ok());
  EXPECT_EQ(slurp(path), "replacement");
  std::filesystem::remove(path);
}

TEST_F(FailpointInjection, TornWriteLeavesTmpButNeverTouchesDestination) {
  const std::string path = temp_path("fp_torn.txt");
  ASSERT_TRUE(io::write_file_atomic(path, "original").ok());

  ASSERT_TRUE(core::arm_failpoints("atomic_file.write=short@1").ok());
  const std::string contents = "0123456789abcdef";
  ASSERT_FALSE(io::write_file_atomic(path, contents).ok());
  // The torn .tmp is exactly what a crash leaves behind: a prefix, never
  // published. The destination still holds the previous good bytes.
  EXPECT_EQ(slurp(path), "original");
  ASSERT_TRUE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(slurp(path + ".tmp"), contents.substr(0, contents.size() / 2));

  // The torn leftover is ignored (overwritten) by the next write and
  // cleaned by the checkpoint retirement helper.
  core::disarm_failpoints();
  ASSERT_TRUE(io::write_file_atomic(path, contents).ok());
  EXPECT_EQ(slurp(path), contents);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST_F(FailpointInjection, FsyncFailureRemovesTmpAndKeepsDestination) {
  const std::string path = temp_path("fp_fsync.txt");
  ASSERT_TRUE(io::write_file_atomic(path, "original").ok());

  ASSERT_TRUE(core::arm_failpoints("atomic_file.fsync=err@1").ok());
  core::Status st = io::write_file_atomic(path, "replacement");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("fsync"), std::string::npos);
  EXPECT_EQ(slurp(path), "original");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST_F(FailpointInjection, DirsyncFailureSurfacesThroughStatus) {
  const std::string path = temp_path("fp_dirsync.txt");
  ASSERT_TRUE(core::arm_failpoints("atomic_file.dirsync=err@1").ok());
  core::Status st = io::write_file_atomic(path, "bytes");
  // The rename happened but its durability could not be guaranteed; the
  // caller hears about it instead of silently trusting the publish.
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("directory fsync"), std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(FailpointInjection, EnospcMidCheckpointKeepsLastSnapshotLoadable) {
  const std::string path = temp_path("fp_ckpt_enospc.ckpt");
  io::remove_checkpoint_files(path);
  io::StudyCheckpoint first = sample_checkpoint();
  ASSERT_TRUE(io::write_checkpoint(path, first).ok());

  ASSERT_TRUE(core::arm_failpoints("checkpoint.write=err(ENOSPC)@1").ok());
  io::StudyCheckpoint second = sample_checkpoint();
  second.shards[0].next = 5;
  core::Status st = io::write_checkpoint(path, second);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("ENOSPC"), std::string::npos);

  // The disk still holds the first snapshot, byte-for-byte loadable.
  auto loaded = io::read_checkpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->shards[0].next, 3u);
  io::remove_checkpoint_files(path);
}

TEST_F(FailpointInjection, TornCheckpointSectionFallsBackToPrev) {
  const std::string path = temp_path("fp_ckpt_torn.ckpt");
  io::remove_checkpoint_files(path);
  io::StudyCheckpoint first = sample_checkpoint();
  ASSERT_TRUE(io::write_checkpoint(path, first).ok());
  io::StudyCheckpoint second = sample_checkpoint();
  second.shards[0].next = 5;
  ASSERT_TRUE(io::write_checkpoint(path, second).ok());
  // .prev now holds `first`, the primary holds `second`.

  // A torn section write clobbers the primary non-atomically (the failure
  // mode the atomic writer exists to prevent, forced on purpose).
  ASSERT_TRUE(core::arm_failpoints("checkpoint.torn=short@1").ok());
  io::StudyCheckpoint third = sample_checkpoint();
  third.shards[0].next = 4;
  EXPECT_EQ(io::write_checkpoint(path, third).code(),
            core::StatusCode::kDataLoss);

  // The primary is now torn garbage; resume falls back to .prev and says
  // so — no crash, no silently wrong state.
  ASSERT_FALSE(io::read_checkpoint(path).ok());
  std::string used;
  auto fallback = io::read_checkpoint_with_fallback(path, &used);
  ASSERT_TRUE(fallback.ok()) << fallback.status().to_string();
  EXPECT_EQ(used, path + ".prev");
  EXPECT_EQ(fallback->shards[0].next, 3u);
  io::remove_checkpoint_files(path);
}

TEST_F(FailpointInjection, RenameFailureLeavesDestinationUntouched) {
  const std::string path = temp_path("fp_rename.txt");
  ASSERT_TRUE(io::write_file_atomic(path, "original").ok());
  ASSERT_TRUE(core::arm_failpoints("atomic_file.rename=err@1").ok());
  ASSERT_FALSE(io::write_file_atomic(path, "replacement").ok());
  EXPECT_EQ(slurp(path), "original");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
}

// ------------------------------------------------- analyzer save/load state
//
// Serialized bytes are a pure function of analyzer state, so "load restores
// the state exactly" reduces to: feed half the data, round-trip through
// save/load, feed the other half to both the original and the loaded copy,
// and compare the final serializations byte for byte.

template <typename T>
std::string saved_bytes(const T& t) {
  Writer w;
  t.save(w);
  return w.take();
}

struct AtlasFixture {
  bgp::Rib rib;
  std::vector<atlas::ProbeSeries> series;
};

const AtlasFixture& atlas_fixture() {
  static AtlasFixture* fx = [] {
    auto* f = new AtlasFixture;
    auto isps = simnet::paper_isps();
    isps.resize(2);
    simnet::announce_all(isps, f->rib);
    atlas::AtlasConfig cfg;
    cfg.probe_scale = 0.05;
    cfg.window_hours = 6000;
    cfg.seed = 42;
    atlas::AtlasSimulator sim(isps, cfg);
    for (std::size_t i = 0; i < sim.probe_count(); ++i)
      f->series.push_back(sim.series_for(i));
    EXPECT_GT(f->series.size(), 10u);
    return f;
  }();
  return *fx;
}

/// Round-trip `half_fed` through save/load into `fresh`, then feed the
/// second half of the fixture to both via `feed` and compare bytes.
template <typename T, typename Feed>
void expect_continue_after_load_identical(T& half_fed, T fresh, Feed&& feed,
                                          std::size_t half,
                                          std::size_t count) {
  std::string snapshot = saved_bytes(half_fed);
  Reader r(snapshot);
  ASSERT_TRUE(fresh.load(r));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(saved_bytes(fresh), snapshot);

  for (std::size_t i = half; i < count; ++i) {
    feed(half_fed, i);
    feed(fresh, i);
  }
  EXPECT_EQ(saved_bytes(fresh), saved_bytes(half_fed));
}

TEST(AnalyzerState, SanitizerSaveLoadContinues) {
  const auto& fx = atlas_fixture();
  std::size_t half = fx.series.size() / 2;
  core::Sanitizer a(fx.rib, {});
  auto feed = [&](core::Sanitizer& s, std::size_t i) {
    s.sanitize(core::from_series(fx.series[i]));
  };
  for (std::size_t i = 0; i < half; ++i) feed(a, i);
  expect_continue_after_load_identical(a, core::Sanitizer(fx.rib, {}), feed,
                                       half, fx.series.size());
}

TEST(AnalyzerState, AtlasAnalyzersSaveLoadContinue) {
  const auto& fx = atlas_fixture();
  // Pre-sanitize into CleanProbes shared by all three analyzers.
  core::Sanitizer sanitizer(fx.rib, {});
  std::vector<core::CleanProbe> probes;
  for (const auto& s : fx.series)
    for (auto& cp : sanitizer.sanitize(core::from_series(s)))
      probes.push_back(std::move(cp));
  ASSERT_GT(probes.size(), 10u);
  std::size_t half = probes.size() / 2;

  core::DurationAnalyzer dur;
  auto feed_dur = [&](core::DurationAnalyzer& d, std::size_t i) {
    d.add(probes[i]);
  };
  for (std::size_t i = 0; i < half; ++i) feed_dur(dur, i);
  expect_continue_after_load_identical(dur, core::DurationAnalyzer(),
                                       feed_dur, half, probes.size());

  core::SpatialAnalyzer spa(fx.rib);
  auto feed_spa = [&](core::SpatialAnalyzer& s, std::size_t i) {
    s.add(probes[i]);
  };
  for (std::size_t i = 0; i < half; ++i) feed_spa(spa, i);
  expect_continue_after_load_identical(spa, core::SpatialAnalyzer(fx.rib),
                                       feed_spa, half, probes.size());

  core::InferenceCollector inf;
  auto feed_inf = [&](core::InferenceCollector& c, std::size_t i) {
    c.add(probes[i]);
  };
  for (std::size_t i = 0; i < half; ++i) feed_inf(inf, i);
  expect_continue_after_load_identical(inf, core::InferenceCollector(),
                                       feed_inf, half, probes.size());
}

TEST(AnalyzerState, CdnAnalyzerSaveLoadContinues) {
  auto population = cdn::default_cdn_population(0.05);
  cdn::CdnConfig cfg;
  cfg.subscriber_scale = 0.05;
  cfg.seed = 99;
  cdn::CdnSimulator sim(population, cfg);
  std::size_t half = sim.entry_count() / 2;
  core::CdnAnalyzer a({}, sim.mobile_asns());
  auto feed = [&](core::CdnAnalyzer& c, std::size_t i) {
    c.add_log(sim.generate(i));
  };
  for (std::size_t i = 0; i < half; ++i) feed(a, i);
  expect_continue_after_load_identical(
      a, core::CdnAnalyzer({}, sim.mobile_asns()), feed, half,
      sim.entry_count());
}

TEST(AnalyzerState, MetricsSinkSaveLoadRoundTrips) {
  obs::MetricsSink sink;
  sink.counter("a.count").add(7);
  sink.counter("b.count").add(1);
  sink.gauge("g").set(2.5);
  sink.histogram("h").record(12.0, 3);
  sink.phase("p").record(1000);
  sink.phase("p").record(5000);

  std::string bytes = saved_bytes(sink);
  obs::MetricsSink loaded;
  Reader r(bytes);
  ASSERT_TRUE(loaded.load(r));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(saved_bytes(loaded), bytes);
  EXPECT_EQ(loaded.counters().at("a.count").value, 7u);
  EXPECT_EQ(loaded.gauges().at("g").value, 2.5);
  EXPECT_TRUE(loaded.histograms().at("h") == sink.histograms().at("h"));
  EXPECT_EQ(loaded.phases().at("p").count, 2u);

  // A corrupted sink blob fails load() instead of faulting.
  std::string damaged = bytes.substr(0, bytes.size() / 2);
  obs::MetricsSink reject;
  Reader rr(damaged);
  EXPECT_FALSE(reject.load(rr));
}

// --------------------------------------------------------------- shutdown

TEST(Shutdown, RequestIsSticky) {
  core::ShutdownToken token;
  EXPECT_FALSE(token.requested());
  token.request();
  EXPECT_TRUE(token.requested());
  token.clear();
  EXPECT_FALSE(token.requested());
}

TEST(Shutdown, DeadlineTrips) {
  core::ShutdownToken token;
  token.arm_deadline_seconds(1e-4);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!token.requested() &&
         std::chrono::steady_clock::now() < deadline) {
  }
  EXPECT_TRUE(token.requested());
  token.arm_deadline_seconds(0);  // non-positive disarms
  token.clear();
  EXPECT_FALSE(token.requested());
}

// Regression: seconds * 1e9 used to overflow the ns conversion for large
// values (UB on float->integer casts out of range), which could arm an
// already-expired deadline. Huge deadlines must clamp and never trip.
TEST(Shutdown, HugeDeadlineClampsInsteadOfOverflowing) {
  core::ShutdownToken token;
  for (double secs : {1e10, 1e18, 1e30, 1e300}) {
    token.clear();
    token.arm_deadline_seconds(secs);
    EXPECT_FALSE(token.requested()) << "seconds=" << secs;
  }
  token.arm_deadline_seconds(0);
  token.clear();
}

// ------------------------------------------- end-to-end interrupt & resume
//
// The acceptance criterion of the crash-safety work: interrupt the study at
// EVERY round boundary, resume each time from the freshly written
// checkpoint (re-read from disk, exactly as a new process would), and the
// final results must be byte-identical to an uninterrupted run — at every
// thread count, including resuming under a different one.

std::string atlas_bytes(const core::AtlasStudy& s) {
  std::ostringstream os;
  io::write_duration_curves_csv(os, s);
  io::write_cpl_csv(os, s);
  io::write_bgp_moves_csv(os, s);
  io::write_inference_csv(os, s);
  return os.str();
}

std::string cdn_bytes(const core::CdnStudy& s) {
  std::ostringstream os;
  io::write_assoc_durations_csv(os, s);
  io::write_degrees_csv(os, s);
  io::write_zero_boundaries_csv(os, s);
  return os.str();
}

std::vector<simnet::IspProfile> study_isps() {
  auto isps = simnet::paper_isps();
  isps.resize(3);
  return isps;
}

core::AtlasStudyConfig small_atlas_config(unsigned threads,
                                          obs::MetricsRegistry* metrics) {
  core::AtlasStudyConfig cfg;
  cfg.atlas.probe_scale = 0.05;
  cfg.atlas.window_hours = 6000;
  cfg.atlas.seed = 7;
  cfg.threads = threads;
  cfg.metrics = metrics;
  return cfg;
}

core::CdnStudyConfig small_cdn_config(unsigned threads,
                                      obs::MetricsRegistry* metrics) {
  core::CdnStudyConfig cfg;
  cfg.cdn.subscriber_scale = 0.05;
  cfg.cdn.seed = 13;
  cfg.threads = threads;
  cfg.metrics = metrics;
  return cfg;
}

/// Run `attempt(checkpoint_config)` with a pre-tripped shutdown token until
/// it completes: every attempt makes exactly one round of progress, gets
/// cancelled at the boundary, and the next attempt resumes from the
/// checkpoint file — re-read from disk each time, like a fresh process.
/// Returns the completed result and the number of interrupts survived.
template <typename Run>
auto chain_resume(const std::string& path, std::uint64_t every_items,
                  Run&& attempt, int* interrupts_out = nullptr) {
  io::remove_checkpoint_files(path);
  std::optional<io::StudyCheckpoint> ck;
  int interrupts = 0;
  for (;;) {
    core::ShutdownToken token;
    token.request();  // cancel at the first round boundary
    core::CheckpointConfig cc;
    cc.every_items = every_items;
    cc.path = path;
    cc.token = &token;
    cc.resume = ck ? &*ck : nullptr;
    auto result = attempt(cc);
    if (result.ok()) {
      if (interrupts_out) *interrupts_out = interrupts;
      io::remove_checkpoint_files(path);
      return result.take();
    }
    EXPECT_EQ(result.status().code(), core::StatusCode::kCancelled)
        << result.status().to_string();
    auto loaded = io::read_checkpoint_with_fallback(path);
    if (!loaded.ok()) {
      ADD_FAILURE() << "no checkpoint after interrupt: "
                    << loaded.status().to_string();
      std::abort();
    }
    ck = loaded.take();
    if (++interrupts >= 10000) {
      ADD_FAILURE() << "resume chain does not converge";
      std::abort();
    }
  }
}

TEST(InterruptResume, AtlasByteIdenticalAcrossInterruptsAndThreads) {
  auto isps = study_isps();
  std::string reference =
      atlas_bytes(core::run_atlas_study(isps, small_atlas_config(1, nullptr)));

  const std::string path = temp_path("atlas_chain.ckpt");
  for (unsigned threads : {1u, 4u}) {
    int interrupts = 0;
    auto resumed = chain_resume(
        path, 7,
        [&](const core::CheckpointConfig& cc) {
          return core::run_atlas_study_supervised(
              isps, small_atlas_config(threads, nullptr), cc);
        },
        &interrupts);
    EXPECT_GT(interrupts, 1) << "test never actually interrupted the study";
    EXPECT_EQ(atlas_bytes(resumed), reference) << "threads=" << threads;
  }
}

TEST(InterruptResume, CdnByteIdenticalAcrossInterruptsAndThreads) {
  std::string reference = cdn_bytes(core::run_cdn_study(
      cdn::default_cdn_population(0.05), small_cdn_config(1, nullptr)));

  const std::string path = temp_path("cdn_chain.ckpt");
  for (unsigned threads : {1u, 4u}) {
    int interrupts = 0;
    auto resumed = chain_resume(
        path, 1,
        [&](const core::CheckpointConfig& cc) {
          return core::run_cdn_study_supervised(
              cdn::default_cdn_population(0.05),
              small_cdn_config(threads, nullptr), cc);
        },
        &interrupts);
    EXPECT_GT(interrupts, 1) << "test never actually interrupted the study";
    EXPECT_EQ(cdn_bytes(resumed), reference) << "threads=" << threads;
  }
}

TEST(InterruptResume, ResumeUnderDifferentThreadCountIsIdentical) {
  auto isps = study_isps();
  std::string reference =
      atlas_bytes(core::run_atlas_study(isps, small_atlas_config(4, nullptr)));

  // Interrupt once at threads=4, then finish the run at threads=1: the
  // shard partition comes from the checkpoint, so results cannot move.
  const std::string path = temp_path("atlas_crossthread.ckpt");
  io::remove_checkpoint_files(path);
  core::ShutdownToken token;
  token.request();
  core::CheckpointConfig cc;
  cc.every_items = 11;
  cc.path = path;
  cc.token = &token;
  auto first = core::run_atlas_study_supervised(
      isps, small_atlas_config(4, nullptr), cc);
  ASSERT_FALSE(first.ok());
  ASSERT_EQ(first.status().code(), core::StatusCode::kCancelled);

  auto ck = io::read_checkpoint(path);
  ASSERT_TRUE(ck.ok()) << ck.status().to_string();
  ASSERT_EQ(ck->shards.size(), 4u);
  core::CheckpointConfig resume_cc;
  resume_cc.resume = &*ck;
  auto finished = core::run_atlas_study_supervised(
      isps, small_atlas_config(1, nullptr), resume_cc);
  ASSERT_TRUE(finished.ok()) << finished.status().to_string();
  EXPECT_EQ(atlas_bytes(*finished), reference);
  io::remove_checkpoint_files(path);
}

// Counter equality of interrupted-and-resumed vs straight runs: everything
// except the supervisor's own checkpoint.* accounting must match exactly.
std::map<std::string, std::uint64_t> counters_except_checkpoint(
    const obs::MetricsSink& sink) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : sink.counters())
    if (name.rfind("checkpoint.", 0) != 0) out[name] = counter.value;
  return out;
}

TEST(InterruptResume, CountersMatchStraightRunModuloCheckpoint) {
  auto isps = study_isps();
  obs::MetricsRegistry straight;
  auto expected = core::run_atlas_study_supervised(
      isps, small_atlas_config(2, &straight), {});
  ASSERT_TRUE(expected.ok());

  const std::string path = temp_path("atlas_counters.ckpt");
  obs::MetricsRegistry resumed;
  // A single registry across attempts would double-count: each cancelled
  // attempt flushes its partial sinks. Use one registry per attempt and
  // keep the last, exactly like a real re-executed process.
  io::remove_checkpoint_files(path);
  std::optional<io::StudyCheckpoint> ck;
  for (int attempt = 0;; ++attempt) {
    ASSERT_LT(attempt, 10000);
    obs::MetricsRegistry fresh;
    core::ShutdownToken token;
    token.request();
    core::CheckpointConfig cc;
    cc.every_items = 9;
    cc.path = path;
    cc.token = &token;
    cc.resume = ck ? &*ck : nullptr;
    auto result = core::run_atlas_study_supervised(
        isps, small_atlas_config(2, &fresh), cc);
    if (result.ok()) {
      resumed.merge(fresh.snapshot());
      break;
    }
    ASSERT_EQ(result.status().code(), core::StatusCode::kCancelled);
    auto loaded = io::read_checkpoint(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
    ck = loaded.take();
  }
  io::remove_checkpoint_files(path);

  // snapshot() returns by value; keep it alive past the full expression.
  obs::MetricsSink snap = resumed.snapshot();
  EXPECT_EQ(counters_except_checkpoint(snap),
            counters_except_checkpoint(straight.snapshot()));
  // The supervisor accounting itself must exist on the resumed side.
  // (`checkpoint.writes` lives only in the interrupted attempts' registries,
  // which a re-executed process discards, so it is absent here by design.)
  EXPECT_TRUE(snap.counters().count("checkpoint.resumes"));
  EXPECT_TRUE(snap.counters().count("checkpoint.rounds"));
}

// ------------------------------------------------- resume rejection paths

TEST(ResumeValidation, WrongStudyKindIsRejected) {
  auto isps = study_isps();
  const std::string path = temp_path("kind_mismatch.ckpt");
  io::remove_checkpoint_files(path);
  core::ShutdownToken token;
  token.request();
  core::CheckpointConfig cc;
  cc.every_items = 5;
  cc.path = path;
  cc.token = &token;
  auto first = core::run_atlas_study_supervised(
      isps, small_atlas_config(2, nullptr), cc);
  ASSERT_EQ(first.status().code(), core::StatusCode::kCancelled);
  auto ck = io::read_checkpoint(path);
  ASSERT_TRUE(ck.ok());

  core::CheckpointConfig wrong;
  wrong.resume = &*ck;
  auto cdn = core::run_cdn_study_supervised(cdn::default_cdn_population(0.05),
                                            small_cdn_config(1, nullptr),
                                            wrong);
  ASSERT_FALSE(cdn.ok());
  EXPECT_EQ(cdn.status().code(), core::StatusCode::kFailedPrecondition);
  EXPECT_NE(cdn.status().message().find("atlas"), std::string::npos);
  io::remove_checkpoint_files(path);
}

TEST(ResumeValidation, ChangedConfigIsRejected) {
  auto isps = study_isps();
  const std::string path = temp_path("fingerprint_mismatch.ckpt");
  io::remove_checkpoint_files(path);
  core::ShutdownToken token;
  token.request();
  core::CheckpointConfig cc;
  cc.every_items = 5;
  cc.path = path;
  cc.token = &token;
  auto first = core::run_atlas_study_supervised(
      isps, small_atlas_config(2, nullptr), cc);
  ASSERT_EQ(first.status().code(), core::StatusCode::kCancelled);
  auto ck = io::read_checkpoint(path);
  ASSERT_TRUE(ck.ok());

  auto changed = small_atlas_config(2, nullptr);
  changed.atlas.seed = 8;  // different run: resuming would be silently wrong
  core::CheckpointConfig resume_cc;
  resume_cc.resume = &*ck;
  auto result = core::run_atlas_study_supervised(isps, changed, resume_cc);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("fingerprint"), std::string::npos);

  // Same config but a tampered item count: also rejected, other message.
  io::StudyCheckpoint tampered = *ck;
  tampered.item_count += 1;
  tampered.shards.back().end += 1;
  core::CheckpointConfig tampered_cc;
  tampered_cc.resume = &tampered;
  auto result2 = core::run_atlas_study_supervised(
      isps, small_atlas_config(2, nullptr), tampered_cc);
  ASSERT_FALSE(result2.ok());
  EXPECT_EQ(result2.status().code(), core::StatusCode::kFailedPrecondition);
  io::remove_checkpoint_files(path);
}

TEST(ResumeValidation, CorruptShardBlobIsDataLoss) {
  auto isps = study_isps();
  const std::string path = temp_path("blob_corrupt.ckpt");
  io::remove_checkpoint_files(path);
  core::ShutdownToken token;
  token.request();
  core::CheckpointConfig cc;
  cc.every_items = 5;
  cc.path = path;
  cc.token = &token;
  auto first = core::run_atlas_study_supervised(
      isps, small_atlas_config(2, nullptr), cc);
  ASSERT_EQ(first.status().code(), core::StatusCode::kCancelled);
  auto ck = io::read_checkpoint(path);
  ASSERT_TRUE(ck.ok());

  // Container-valid but semantically damaged shard state (the container
  // CRCs pass because we damage the in-memory struct, mimicking an
  // encoder-side bug): load() must reject it, not crash or mis-resume.
  io::StudyCheckpoint damaged = *ck;
  ASSERT_FALSE(damaged.shards.empty());
  damaged.shards[0].blob = damaged.shards[0].blob.substr(
      0, damaged.shards[0].blob.size() / 2);
  core::CheckpointConfig resume_cc;
  resume_cc.resume = &damaged;
  auto result = core::run_atlas_study_supervised(
      isps, small_atlas_config(2, nullptr), resume_cc);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kDataLoss);
  io::remove_checkpoint_files(path);
}

// --------------------------------------------- file-driven study resume

TEST(InterruptResume, FileStudiesResumeByteIdentical) {
  const auto& fx = atlas_fixture();
  const std::string echo_path = temp_path("resume_echo.csv");
  {
    io::AtomicFileWriter out(echo_path);
    ASSERT_TRUE(out.ok());
    io::write_echo_dataset(out.stream(), fx.series);
    ASSERT_TRUE(out.commit().ok());
  }
  auto isps = study_isps();
  core::AtlasFileStudyConfig cfg;
  cfg.threads = 2;
  auto straight =
      core::run_atlas_study_from_files({echo_path}, isps, cfg, nullptr, {});
  ASSERT_TRUE(straight.ok()) << straight.status().to_string();
  std::string reference = atlas_bytes(*straight);

  const std::string path = temp_path("atlas_file_chain.ckpt");
  int interrupts = 0;
  auto resumed = chain_resume(
      path, 7,
      [&](const core::CheckpointConfig& cc) {
        return core::run_atlas_study_from_files({echo_path}, isps, cfg,
                                                nullptr, cc);
      },
      &interrupts);
  EXPECT_GT(interrupts, 1);
  EXPECT_EQ(atlas_bytes(resumed), reference);

  // CDN file study, same drill.
  auto population = cdn::default_cdn_population(0.05);
  cdn::CdnConfig gen_cfg;
  gen_cfg.subscriber_scale = 0.05;
  gen_cfg.seed = 13;
  cdn::CdnSimulator sim(population, gen_cfg);
  std::vector<cdn::AssociationLog> logs;
  for (std::size_t i = 0; i < sim.entry_count(); ++i)
    logs.push_back(sim.generate(i));
  const std::string assoc_path = temp_path("resume_assoc.csv");
  {
    io::AtomicFileWriter out(assoc_path);
    ASSERT_TRUE(out.ok());
    io::write_assoc_dataset(out.stream(), logs);
    ASSERT_TRUE(out.commit().ok());
  }
  core::CdnFileStudyConfig ccfg;
  ccfg.threads = 2;
  for (const auto& entry : population) {
    if (entry.isp.mobile) ccfg.mobile_asns.insert(entry.isp.asn);
    ccfg.registries[entry.isp.asn] = entry.isp.registry;
    ccfg.asn_names[entry.isp.asn] = entry.isp.name;
  }
  auto cdn_straight =
      core::run_cdn_study_from_files({assoc_path}, ccfg, nullptr, {});
  ASSERT_TRUE(cdn_straight.ok()) << cdn_straight.status().to_string();
  std::string cdn_reference = cdn_bytes(*cdn_straight);

  const std::string cdn_ckpt = temp_path("cdn_file_chain.ckpt");
  interrupts = 0;
  auto cdn_resumed = chain_resume(
      cdn_ckpt, 1,
      [&](const core::CheckpointConfig& cc) {
        return core::run_cdn_study_from_files({assoc_path}, ccfg, nullptr,
                                              cc);
      },
      &interrupts);
  EXPECT_GT(interrupts, 1);
  EXPECT_EQ(cdn_bytes(cdn_resumed), cdn_reference);

  std::filesystem::remove(echo_path);
  std::filesystem::remove(assoc_path);
}

// Supervision disabled (default CheckpointConfig) must be exactly the
// legacy single-round path: no checkpoint file side effects either.
TEST(InterruptResume, DefaultConfigMatchesLegacyRunner) {
  auto isps = study_isps();
  auto legacy = core::run_atlas_study(isps, small_atlas_config(2, nullptr));
  auto supervised = core::run_atlas_study_supervised(
      isps, small_atlas_config(2, nullptr), {});
  ASSERT_TRUE(supervised.ok());
  EXPECT_EQ(atlas_bytes(*supervised), atlas_bytes(legacy));
}

TEST(InterruptResume, PeriodicCheckpointWithoutPathIsInvalid) {
  auto isps = study_isps();
  core::CheckpointConfig cc;
  cc.every_items = 5;  // no path
  auto result = core::run_atlas_study_supervised(
      isps, small_atlas_config(1, nullptr), cc);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kInvalidArgument);
}

// --------------------------------------------------- multi-process shards
//
// `--shard i/N` runs analyze one contiguous item slice each and emit their
// completed checkpoint as the output; io::combine_shard_checkpoints glues
// the per-process slices back into one table, and resuming from the merged
// checkpoint must finalize to bytes identical to a single-process run.

/// A checkpoint whose shard table covers only `[begin, end)` of
/// `item_count` — what a `--shard i/N` process writes.
io::StudyCheckpoint slice_checkpoint(std::uint64_t begin, std::uint64_t end,
                                     std::uint64_t item_count,
                                     std::uint64_t done) {
  io::StudyCheckpoint ck;
  ck.kind = io::kCkptCdnGen;
  ck.config_fingerprint = 0x5eedf00d;
  ck.item_count = item_count;
  ck.shards.push_back({begin, end, done, "slice-blob"});
  return ck;
}

TEST(ShardedStudy, SliceCheckpointsDecode) {
  // The container accepts shard tables that neither start at 0 nor cover
  // every item: each shard process checkpoints only its slice. Coverage is
  // the merge step's job, not the codec's.
  auto mid = io::decode_checkpoint(
      io::encode_checkpoint(slice_checkpoint(5, 10, 20, 7)));
  ASSERT_TRUE(mid.ok()) << mid.status().to_string();
  EXPECT_EQ(mid->shards[0].begin, 5u);
  EXPECT_EQ(mid->items_done(), 2u);

  auto tail = io::decode_checkpoint(
      io::encode_checkpoint(slice_checkpoint(10, 20, 20, 20)));
  ASSERT_TRUE(tail.ok()) << tail.status().to_string();

  // Still rejected: ranges beyond item_count, progress outside the range,
  // and non-contiguous tables.
  auto over = io::decode_checkpoint(
      io::encode_checkpoint(slice_checkpoint(5, 25, 20, 6)));
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), core::StatusCode::kDataLoss);
  auto behind = io::decode_checkpoint(
      io::encode_checkpoint(slice_checkpoint(5, 10, 20, 3)));
  ASSERT_FALSE(behind.ok());
  io::StudyCheckpoint gap = slice_checkpoint(0, 5, 20, 5);
  gap.shards.push_back({6, 10, 10, "after-gap"});
  auto gapped = io::decode_checkpoint(io::encode_checkpoint(gap));
  ASSERT_FALSE(gapped.ok());
  EXPECT_EQ(gapped.status().code(), core::StatusCode::kDataLoss);
}

TEST(ShardedStudy, CombineValidatesTilingAndCompleteness) {
  const std::string p0 = temp_path("combine_s0.ckpt");
  const std::string p1 = temp_path("combine_s1.ckpt");
  io::remove_checkpoint_files(p0);
  io::remove_checkpoint_files(p1);
  ASSERT_TRUE(io::write_checkpoint(p0, slice_checkpoint(0, 5, 10, 5)).ok());
  ASSERT_TRUE(io::write_checkpoint(p1, slice_checkpoint(5, 10, 10, 10)).ok());

  // Happy path, in either argument order: slices are sorted by begin.
  for (auto paths : {std::vector<std::string>{p0, p1},
                     std::vector<std::string>{p1, p0}}) {
    auto combined = io::combine_shard_checkpoints(paths);
    ASSERT_TRUE(combined.ok()) << combined.status().to_string();
    EXPECT_EQ(combined->item_count, 10u);
    ASSERT_EQ(combined->shards.size(), 2u);
    EXPECT_EQ(combined->shards[0].begin, 0u);
    EXPECT_EQ(combined->shards[1].begin, 5u);
    EXPECT_EQ(combined->items_done(), 10u);
  }

  // A missing slice is a gap, a doubled slice is an overlap — both refuse.
  auto missing = io::combine_shard_checkpoints({p1});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), core::StatusCode::kFailedPrecondition);
  auto doubled = io::combine_shard_checkpoints({p0, p0, p1});
  ASSERT_FALSE(doubled.ok());
  EXPECT_EQ(doubled.status().code(), core::StatusCode::kFailedPrecondition);

  // An interrupted shard (next < end) must be finished before merging.
  const std::string part = temp_path("combine_partial.ckpt");
  io::remove_checkpoint_files(part);
  ASSERT_TRUE(
      io::write_checkpoint(part, slice_checkpoint(5, 10, 10, 7)).ok());
  auto incomplete = io::combine_shard_checkpoints({p0, part});
  ASSERT_FALSE(incomplete.ok());
  EXPECT_EQ(incomplete.status().code(),
            core::StatusCode::kFailedPrecondition);
  EXPECT_NE(incomplete.status().message().find("incomplete"),
            std::string::npos);

  // Config skew and study-kind mismatches across shard files refuse too.
  io::StudyCheckpoint skewed = slice_checkpoint(5, 10, 10, 10);
  skewed.config_fingerprint = 0xdead;
  ASSERT_TRUE(io::write_checkpoint(part, skewed).ok());
  auto skew = io::combine_shard_checkpoints({p0, part});
  ASSERT_FALSE(skew.ok());
  EXPECT_EQ(skew.status().code(), core::StatusCode::kFailedPrecondition);
  io::StudyCheckpoint other_kind = slice_checkpoint(5, 10, 10, 10);
  other_kind.kind = io::kCkptAtlasGen;
  ASSERT_TRUE(io::write_checkpoint(part, other_kind).ok());
  auto kinds = io::combine_shard_checkpoints({p0, part});
  ASSERT_FALSE(kinds.ok());
  EXPECT_EQ(kinds.status().code(), core::StatusCode::kFailedPrecondition);

  io::remove_checkpoint_files(p0);
  io::remove_checkpoint_files(p1);
  io::remove_checkpoint_files(part);
}

TEST(ShardedStudy, TwoProcessCdnRunMergesByteIdentical) {
  auto population = cdn::default_cdn_population(0.05);
  std::string reference =
      cdn_bytes(core::run_cdn_study(population, small_cdn_config(1, nullptr)));

  // Two "processes", each analyzing half the population and leaving its
  // completed checkpoint behind (the shard's only output).
  std::vector<std::string> shard_paths;
  for (std::uint32_t i = 0; i < 2; ++i) {
    const std::string path =
        temp_path("cdn_shard_" + std::to_string(i) + ".ckpt");
    io::remove_checkpoint_files(path);
    core::CheckpointConfig cc;
    cc.path = path;
    cc.shard_index = i;
    cc.shard_count = 2;
    auto partial = core::run_cdn_study_supervised(
        population, small_cdn_config(2, nullptr), cc);
    ASSERT_TRUE(partial.ok()) << partial.status().to_string();
    ASSERT_TRUE(std::filesystem::exists(path));
    shard_paths.push_back(path);
  }

  auto combined = io::combine_shard_checkpoints(shard_paths);
  ASSERT_TRUE(combined.ok()) << combined.status().to_string();
  EXPECT_EQ(combined->items_done(), combined->item_count);

  // The merge process resumes from the combined table — all slices done,
  // so it goes straight to the ordered reduction — at a thread count
  // different from both shard runs.
  core::CheckpointConfig merge_cc;
  merge_cc.resume = &*combined;
  auto merged = core::run_cdn_study_supervised(
      population, small_cdn_config(4, nullptr), merge_cc);
  ASSERT_TRUE(merged.ok()) << merged.status().to_string();
  EXPECT_EQ(cdn_bytes(*merged), reference);

  for (const auto& path : shard_paths) io::remove_checkpoint_files(path);
}

TEST(ShardedStudy, TwoProcessAtlasRunMergesByteIdentical) {
  auto isps = study_isps();
  std::string reference =
      atlas_bytes(core::run_atlas_study(isps, small_atlas_config(1, nullptr)));

  std::vector<std::string> shard_paths;
  for (std::uint32_t i = 0; i < 2; ++i) {
    const std::string path =
        temp_path("atlas_shard_" + std::to_string(i) + ".ckpt");
    io::remove_checkpoint_files(path);
    core::CheckpointConfig cc;
    cc.path = path;
    cc.shard_index = i;
    cc.shard_count = 2;
    auto partial = core::run_atlas_study_supervised(
        isps, small_atlas_config(2, nullptr), cc);
    ASSERT_TRUE(partial.ok()) << partial.status().to_string();
    shard_paths.push_back(path);
  }

  auto combined = io::combine_shard_checkpoints(shard_paths);
  ASSERT_TRUE(combined.ok()) << combined.status().to_string();
  core::CheckpointConfig merge_cc;
  merge_cc.resume = &*combined;
  auto merged = core::run_atlas_study_supervised(
      isps, small_atlas_config(1, nullptr), merge_cc);
  ASSERT_TRUE(merged.ok()) << merged.status().to_string();
  EXPECT_EQ(atlas_bytes(*merged), reference);

  for (const auto& path : shard_paths) io::remove_checkpoint_files(path);
}

TEST(ShardedStudy, InterruptedShardResumesThenMerges) {
  // A shard process is itself interruptible: chain-resume shard 1 of 2 at
  // every round boundary, then merge with an uninterrupted shard 0 — still
  // byte-identical to the single-process run.
  auto population = cdn::default_cdn_population(0.05);
  std::string reference =
      cdn_bytes(core::run_cdn_study(population, small_cdn_config(1, nullptr)));

  const std::string p0 = temp_path("cdn_shard_chain_0.ckpt");
  const std::string p1 = temp_path("cdn_shard_chain_1.ckpt");
  io::remove_checkpoint_files(p0);
  io::remove_checkpoint_files(p1);
  {
    core::CheckpointConfig cc;
    cc.path = p0;
    cc.shard_index = 0;
    cc.shard_count = 2;
    auto partial = core::run_cdn_study_supervised(
        population, small_cdn_config(1, nullptr), cc);
    ASSERT_TRUE(partial.ok()) << partial.status().to_string();
  }
  std::optional<io::StudyCheckpoint> ck;
  int interrupts = 0;
  for (;;) {
    core::ShutdownToken token;
    token.request();
    core::CheckpointConfig cc;
    cc.every_items = 1;
    cc.path = p1;
    cc.token = &token;
    cc.resume = ck ? &*ck : nullptr;
    cc.shard_index = 1;
    cc.shard_count = 2;
    auto result = core::run_cdn_study_supervised(
        population, small_cdn_config(1, nullptr), cc);
    if (result.ok()) break;
    ASSERT_EQ(result.status().code(), core::StatusCode::kCancelled)
        << result.status().to_string();
    auto loaded = io::read_checkpoint_with_fallback(p1);
    ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
    ck = loaded.take();
    ASSERT_LT(++interrupts, 10000) << "shard resume chain does not converge";
  }
  EXPECT_GT(interrupts, 1);

  auto combined = io::combine_shard_checkpoints({p0, p1});
  ASSERT_TRUE(combined.ok()) << combined.status().to_string();
  core::CheckpointConfig merge_cc;
  merge_cc.resume = &*combined;
  auto merged = core::run_cdn_study_supervised(
      population, small_cdn_config(2, nullptr), merge_cc);
  ASSERT_TRUE(merged.ok()) << merged.status().to_string();
  EXPECT_EQ(cdn_bytes(*merged), reference);

  io::remove_checkpoint_files(p0);
  io::remove_checkpoint_files(p1);
}

}  // namespace
}  // namespace dynamips
