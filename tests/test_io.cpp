#include "io/dataset_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/failpoint.h"
#include "io/csv.h"
#include "io/readers.h"

namespace dynamips::io {
namespace {

TEST(Csv, SplitBasic) {
  auto f = split_csv("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(Csv, SplitEmptyFields) {
  auto f = split_csv("a,,c,");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[3], "");
}

TEST(Csv, JoinRoundTrip) {
  EXPECT_EQ(join_csv({"x", "y", "z"}), "x,y,z");
  EXPECT_EQ(join_csv({}), "");
}

TEST(EchoIo, V4RoundTrip) {
  atlas::EchoRecord r;
  r.probe_id = 12345;
  r.hour = 99;
  r.family = atlas::Family::kV4;
  r.x_client_ip4 = *net::IPv4Address::parse("80.1.2.3");
  r.src_addr4 = *net::IPv4Address::parse("192.168.1.5");
  std::string line = to_csv(r);
  EXPECT_EQ(line, "12345,99,4,80.1.2.3,192.168.1.5");
  auto parsed = echo_from_csv(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->probe_id, r.probe_id);
  EXPECT_EQ(parsed->hour, r.hour);
  EXPECT_EQ(parsed->x_client_ip4, r.x_client_ip4);
  EXPECT_EQ(parsed->src_addr4, r.src_addr4);
}

TEST(EchoIo, V6RoundTrip) {
  atlas::EchoRecord r;
  r.probe_id = 7;
  r.hour = 1;
  r.family = atlas::Family::kV6;
  r.x_client_ip6 = *net::IPv6Address::parse("2003:ec57:1100::1");
  r.src_addr6 = r.x_client_ip6;
  auto parsed = echo_from_csv(to_csv(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->family, atlas::Family::kV6);
  EXPECT_EQ(parsed->x_client_ip6, r.x_client_ip6);
}

TEST(EchoIo, RejectsMalformed) {
  EXPECT_FALSE(echo_from_csv("").has_value());
  EXPECT_FALSE(echo_from_csv("1,2,3").has_value());
  EXPECT_FALSE(echo_from_csv("1,2,5,80.1.2.3,192.168.1.5").has_value());
  EXPECT_FALSE(echo_from_csv("x,2,4,80.1.2.3,192.168.1.5").has_value());
  EXPECT_FALSE(echo_from_csv("1,2,4,not-an-ip,192.168.1.5").has_value());
  EXPECT_FALSE(echo_from_csv("1,2,6,2003::1,not-v6").has_value());
  EXPECT_FALSE(echo_from_csv("1,2,4,2003::1,2003::1").has_value())
      << "v6 address in a v4 record";
}

TEST(EchoIo, StreamRoundTripWithHeader) {
  atlas::ProbeSeries series;
  series.meta.probe_id = 42;
  for (int i = 0; i < 5; ++i) {
    atlas::EchoRecord r;
    r.probe_id = 42;
    r.hour = simnet::Hour(i);
    r.family = i % 2 ? atlas::Family::kV6 : atlas::Family::kV4;
    r.x_client_ip4 = *net::IPv4Address::parse("80.1.2.3");
    r.src_addr4 = *net::IPv4Address::parse("192.168.1.5");
    r.x_client_ip6 = *net::IPv6Address::parse("2003::1");
    r.src_addr6 = r.x_client_ip6;
    series.records.push_back(r);
  }
  std::stringstream ss;
  write_echo_csv(ss, series);
  auto loaded = read_echo_csv(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.probe_id, 42u);
  ASSERT_EQ(loaded->records.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(loaded->records[i].family, series.records[i].family);
}

TEST(EchoIo, InjectedReadFailureSurfacesWithLineNumber) {
  // The readers.line failpoint stands in for a failing disk mid-ingest:
  // the reader must stop with a precise, attributable error — not a
  // silently truncated dataset — and be fully healthy once disarmed.
  const std::string data =
      "1,0,4,80.1.2.3,192.168.1.5\n"
      "1,1,4,80.1.2.3,192.168.1.5\n"
      "1,2,4,80.1.2.3,192.168.1.5\n";
  ASSERT_TRUE(core::arm_failpoints("readers.line=err(EIO)@2").ok());
  std::stringstream ss(data);
  auto failed = read_echo_dataset(ss);
  core::disarm_failpoints();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), core::StatusCode::kInternal);
  EXPECT_NE(failed.status().message().find(
                "injected read failure (EIO) at line 2"),
            std::string::npos)
      << failed.status().to_string();

  std::stringstream again(data);
  auto loaded = read_echo_dataset(again);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].records.size(), 3u);
}

TEST(EchoIo, StreamRejectsMixedProbes) {
  std::stringstream ss;
  ss << "1,0,4,80.1.2.3,192.168.1.5\n2,1,4,80.1.2.4,192.168.1.5\n";
  EXPECT_FALSE(read_echo_csv(ss).has_value());
}

TEST(AssocIo, RoundTrip) {
  cdn::AssociationRecord r;
  r.day = 17;
  r.v4_24 = *net::Prefix4::parse("80.1.2.0/24");
  r.v6_64 = *net::Prefix6::parse("2003:ec57:11:2200::/64");
  r.asn4 = 3320;
  r.asn6 = 3320;
  std::string line = to_csv(r);
  EXPECT_EQ(line, "17,80.1.2.0/24,2003:ec57:11:2200::/64,3320,3320");
  auto parsed = assoc_from_csv(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->day, 17u);
  EXPECT_EQ(parsed->v4_24, r.v4_24);
  EXPECT_EQ(parsed->v6_64, r.v6_64);
  EXPECT_EQ(parsed->asn4, 3320u);
}

TEST(AssocIo, RejectsMalformed) {
  EXPECT_FALSE(assoc_from_csv("").has_value());
  EXPECT_FALSE(assoc_from_csv("1,2,3,4").has_value());
  EXPECT_FALSE(assoc_from_csv("x,80.1.2.0/24,2003::/64,1,1").has_value());
  EXPECT_FALSE(assoc_from_csv("1,80.1.2.0,2003::/64,1,1").has_value())
      << "missing prefix length";
  EXPECT_FALSE(assoc_from_csv("1,80.1.2.0/24,2003::,1,1").has_value());
}

TEST(AssocIo, StreamRoundTrip) {
  cdn::AssociationLog log;
  for (int d = 0; d < 4; ++d) {
    cdn::AssociationRecord r;
    r.day = std::uint32_t(d);
    r.v4_24 = *net::Prefix4::parse("80.1.2.0/24");
    r.v6_64 = *net::Prefix6::parse("2003:ec57:11:2200::/64");
    r.asn4 = r.asn6 = 3320;
    log.records.push_back(r);
  }
  std::stringstream ss;
  write_assoc_csv(ss, log);
  auto loaded = read_assoc_csv(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->records.size(), 4u);
}

TEST(AssocIo, EmptyStreamYieldsEmptyLog) {
  std::stringstream ss;
  auto loaded = read_assoc_csv(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->records.empty());
}


TEST(Csv, SplitCapsFieldCount) {
  // Once the cap is reached the remainder (commas included) becomes the
  // final field, so allocation is bounded and width checks still reject.
  auto f = split_csv("a,b,c,d,e,f", 3);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c,d,e,f");

  std::string commas(1000, ',');
  EXPECT_EQ(split_csv(commas).size(), kMaxCsvFields);
  EXPECT_EQ(split_csv(commas, 0).size(), 1u);  // cap 0 degrades to 1
}

TEST(Csv, SplitCapExactWidthUnchanged) {
  auto f = split_csv("a,b,c", 3);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[2], "c");
}

TEST(Csv, ChompCr) {
  EXPECT_EQ(chomp_cr("abc\r"), "abc");
  EXPECT_EQ(chomp_cr("abc"), "abc");
  EXPECT_EQ(chomp_cr("\r"), "");
  EXPECT_EQ(chomp_cr(""), "");
  EXPECT_EQ(chomp_cr("a\rb"), "a\rb");  // only a trailing CR is stripped
}

TEST(Csv, StripUtf8Bom) {
  EXPECT_EQ(strip_utf8_bom("\xEF\xBB\xBF" "day"), "day");
  EXPECT_EQ(strip_utf8_bom("day"), "day");
  EXPECT_EQ(strip_utf8_bom("\xEF\xBB"), "\xEF\xBB");  // partial BOM kept
  EXPECT_EQ(strip_utf8_bom(""), "");
}

TEST(Csv, ParseCsvNum) {
  EXPECT_EQ(parse_csv_num<std::uint32_t>("42"), 42u);
  EXPECT_EQ(parse_csv_num<std::uint32_t>("0"), 0u);
  EXPECT_FALSE(parse_csv_num<std::uint32_t>("").has_value());
  EXPECT_FALSE(parse_csv_num<std::uint32_t>("4x").has_value());
  EXPECT_FALSE(parse_csv_num<std::uint32_t>(" 4").has_value());
  EXPECT_FALSE(parse_csv_num<std::uint32_t>("-4").has_value());
  EXPECT_FALSE(parse_csv_num<std::uint8_t>("256").has_value());
}

}  // namespace
}  // namespace dynamips::io
