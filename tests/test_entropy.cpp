#include "core/entropy.h"

#include <gtest/gtest.h>

#include <vector>

#include "netaddr/rng.h"
#include "simnet/isp.h"
#include "simnet/subscriber.h"

namespace dynamips::core {
namespace {

TEST(Entropy, EmptyAndSingle) {
  auto e = nibble_entropy({});
  for (double h : e) EXPECT_DOUBLE_EQ(h, 0.0);
  std::vector<std::uint64_t> one{0x2003aabbccdd1100ull};
  e = nibble_entropy(one);
  for (double h : e) EXPECT_DOUBLE_EQ(h, 0.0);
  EXPECT_DOUBLE_EQ(total_entropy(one), 0.0);
}

TEST(Entropy, UniformNibbleIsFourBits) {
  // All sixteen values of the last nibble, equally often.
  std::vector<std::uint64_t> nets;
  for (std::uint64_t v = 0; v < 16; ++v)
    nets.push_back(0x2003000000000000ull | v);
  auto e = nibble_entropy(nets);
  EXPECT_NEAR(e[15], 4.0, 1e-9);
  for (int n = 0; n < 15; ++n) EXPECT_DOUBLE_EQ(e[std::size_t(n)], 0.0);
  EXPECT_NEAR(total_entropy(nets), 4.0, 1e-9);
}

TEST(Entropy, TwoValuesOneBit) {
  std::vector<std::uint64_t> nets{0x2003000000000000ull,
                                  0x2003000000000001ull};
  auto e = nibble_entropy(nets);
  EXPECT_NEAR(e[15], 1.0, 1e-9);
}

TEST(Entropy, StructuredPoolAddressesShowTheScanStructure) {
  // /56 zero-filled delegations inside one /40 pool: announcement and pool
  // nibbles frozen, subscriber nibbles (10..13) hot, subnet nibble 14..15
  // cold again.
  net::Rng rng(5);
  std::vector<std::uint64_t> nets;
  std::uint64_t pool = 0x2003e1aa00000000ull;  // /40 pool
  for (int i = 0; i < 4000; ++i)
    nets.push_back(pool | ((rng.next_u64() & 0xffff) << 8));
  auto e = nibble_entropy(nets);
  for (int n = 0; n < 10; ++n)
    EXPECT_LT(e[std::size_t(n)], 0.01) << "announcement+pool nibble " << n;
  for (int n = 10; n < 14; ++n)
    EXPECT_GT(e[std::size_t(n)], 3.8) << "subscriber nibble " << n;
  EXPECT_LT(e[14], 0.01) << "zero-filled subnet nibbles";
  EXPECT_LT(e[15], 0.01);
  // Total structure: ~16 bits of search space, matching the /40->/56 gap.
  EXPECT_NEAR(total_entropy(nets), 16.0, 0.5);
}

TEST(Entropy, SimulatedIspMatchesPoolArithmetic) {
  // Addresses observed from one ISP: total entropy far below the naive
  // 64 - announcement bits, close to pool + subscriber structure.
  auto isp = *simnet::find_isp("Orange");
  isp.cpe_scramble_share = 0;
  simnet::TimelineGenerator gen(isp, 9);
  std::vector<std::uint64_t> nets;
  for (std::uint32_t id = 0; id < 300; ++id) {
    auto tl = gen.generate(id, 0, 8760);
    for (const auto& seg : tl.v6) nets.push_back(seg.lan64);
  }
  ASSERT_GT(nets.size(), 300u);
  double h = total_entropy(nets);
  int announced_free = 64 - isp.bgp6.front().length();  // 45 bits naive
  // Marginal per-nibble entropy cannot see correlations between pool
  // nibbles, so the visible saving here is the zero-filled /56 subnet byte
  // (8 bits). Pool structure on top of that needs the joint analysis the
  // pool-inference module performs.
  EXPECT_LT(h, double(announced_free) - 6.0)
      << "the frozen subnet byte must show up in the marginals";
  EXPECT_GT(h, 8.0) << "but subscriber bits remain";
}

}  // namespace
}  // namespace dynamips::core
