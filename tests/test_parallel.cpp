// test_parallel — shard-and-merge execution (core/parallel.h) and the
// thread-count invariance of the study pipeline.
//
// Three layers of coverage:
//  * the primitives: shard_ranges partitioning and ShardExecutor dispatch;
//  * merge-correctness of every mergeable accumulator and analyzer:
//    feeding two halves into two instances and merging must equal feeding
//    everything into one instance;
//  * end-to-end: run_atlas_study / run_cdn_study with threads=1 and
//    threads=4 produce identical results, down to vector element order.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "atlas/generator.h"
#include "core/parallel.h"
#include "core/pipeline.h"
#include "simnet/isp.h"
#include "stats/ecdf.h"
#include "stats/loghist.h"
#include "stats/periodicity.h"
#include "stats/ttf.h"

namespace dynamips {
namespace {

// ---------------------------------------------------------------- primitives

TEST(ShardRanges, PartitionsIndexSpace) {
  for (std::size_t count : {0ul, 1ul, 2ul, 7ul, 64ul, 1000ul}) {
    for (unsigned shards : {0u, 1u, 2u, 3u, 8u, 200u}) {
      auto ranges = core::shard_ranges(count, shards);
      ASSERT_FALSE(ranges.empty());
      // Never more ranges than items (except the single empty range for 0).
      if (count > 0) {
        EXPECT_LE(ranges.size(), count);
      }
      // Contiguous cover of [0, count).
      EXPECT_EQ(ranges.front().begin, 0u);
      EXPECT_EQ(ranges.back().end, count);
      std::size_t total = 0, max_len = 0, min_len = count + 1;
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        if (i > 0) {
          EXPECT_EQ(ranges[i].begin, ranges[i - 1].end);
        }
        total += ranges[i].size();
        max_len = std::max(max_len, ranges[i].size());
        min_len = std::min(min_len, ranges[i].size());
      }
      EXPECT_EQ(total, count);
      // Balanced: lengths differ by at most one.
      if (count > 0) {
        EXPECT_LE(max_len - min_len, 1u);
      }
    }
  }
}

TEST(ShardRanges, ZeroCountYieldsSingleEmptyRange) {
  auto ranges = core::shard_ranges(0, 4);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_TRUE(ranges[0].empty());
}

TEST(ShardExecutor, RunsEveryTaskExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u}) {
    core::ShardExecutor exec(threads);
    EXPECT_EQ(exec.thread_count(), threads);
    std::vector<std::atomic<int>> hits(101);
    for (auto& h : hits) h = 0;
    exec.dispatch(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ShardExecutor, ReusableAcrossDispatches) {
  core::ShardExecutor exec(4);
  for (int round = 0; round < 3; ++round) {
    std::atomic<std::size_t> sum{0};
    exec.dispatch(50, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 50u * 49u / 2u);
  }
  exec.dispatch(0, [](std::size_t) { FAIL() << "no tasks expected"; });
}

TEST(ShardExecutor, PropagatesTaskExceptions) {
  for (unsigned threads : {1u, 4u}) {
    core::ShardExecutor exec(threads);
    EXPECT_THROW(
        exec.dispatch(8,
                      [](std::size_t i) {
                        if (i == 3) throw std::runtime_error("boom");
                      }),
        std::runtime_error);
    // The pool must still be usable after a failed dispatch.
    std::atomic<int> ran{0};
    exec.dispatch(8, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 8);
  }
}

TEST(ResolveThreads, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(core::resolve_threads(0), 1u);
  EXPECT_EQ(core::resolve_threads(3), 3u);
}

// ------------------------------------------------- accumulator merge algebra

TEST(MergeAccumulators, TotalTimeFraction) {
  stats::TotalTimeFraction full, a, b;
  for (std::uint64_t h : {24u, 24u, 48u, 7u, 24u, 168u}) full.add(h);
  for (std::uint64_t h : {24u, 24u, 48u}) a.add(h);
  for (std::uint64_t h : {7u, 24u, 168u}) b.add(h);
  a.merge(b);
  EXPECT_EQ(a.counts(), full.counts());
  EXPECT_EQ(a.total_hours(), full.total_hours());
  EXPECT_EQ(a.total_count(), full.total_count());
}

TEST(MergeAccumulators, Ecdf) {
  stats::Ecdf full, a, b;
  for (double x : {5.0, 1.0, 3.0, 9.0, 2.0, 2.0}) full.add(x);
  for (double x : {5.0, 1.0, 3.0}) a.add(x);
  for (double x : {9.0, 2.0, 2.0}) b.add(x);
  a.merge(b);  // merge finalizes: samples come back sorted
  full.finalize();
  EXPECT_EQ(a.samples(), full.samples());
  a.merge(stats::Ecdf{});  // merging an empty ECDF is a no-op
  EXPECT_EQ(a.size(), full.size());
}

// Regression for a data race: Ecdf::at/quantile used to sort the sample
// buffer lazily under `mutable`, so two threads reading the same finalized
// ECDF could both kick off a sort. Reads are now const-clean after
// finalize(); this fails under TSAN if lazy mutation ever comes back.
TEST(MergeAccumulators, EcdfConcurrentReadsAreConst) {
  stats::Ecdf e;
  for (int i = 1000; i > 0; --i) e.add(double(i));
  e.finalize();
  std::vector<std::thread> readers;
  std::array<double, 8> got{};
  for (std::size_t t = 0; t < got.size(); ++t) {
    readers.emplace_back([&, t] {
      double acc = 0;
      for (int i = 0; i < 1000; ++i) {
        acc += e.quantile(0.5);
        acc += e.at(250.0);
      }
      got[t] = acc;
    });
  }
  for (auto& r : readers) r.join();
  for (double g : got) EXPECT_EQ(g, got[0]);
}

TEST(MergeAccumulators, LogHistogram) {
  stats::LogHistogram full(0, 6, 10), a(0, 6, 10), b(0, 6, 10);
  for (double v : {1.0, 10.0, 256.0, 80000.0}) full.add(v, 2.0);
  for (double v : {1.0, 10.0}) a.add(v, 2.0);
  for (double v : {256.0, 80000.0}) b.add(v, 2.0);
  a.merge(b);
  EXPECT_EQ(a.total_weight(), full.total_weight());
  EXPECT_EQ(a.density(), full.density());
  EXPECT_EQ(a.mode_bin(), full.mode_bin());
}

TEST(MergeAccumulators, CplHistogram) {
  core::CplHistogram full{}, a{}, b{};
  full.changes[40] = 3;
  full.probes[40] = 2;
  full.changes[64] = 1;
  a.changes[40] = 1;
  a.probes[40] = 1;
  b.changes[40] = 2;
  b.probes[40] = 1;
  b.changes[64] = 1;
  a.merge(b);
  EXPECT_EQ(a.changes, full.changes);
  EXPECT_EQ(a.probes, full.probes);
}

TEST(MergeAccumulators, ZeroBoundaryCounts) {
  core::ZeroBoundaryCounts full{}, a{}, b{};
  full.add(core::ZeroBoundary::k56);
  full.add(core::ZeroBoundary::k56);
  full.add(core::ZeroBoundary::kNone);
  a.add(core::ZeroBoundary::k56);
  b.add(core::ZeroBoundary::k56);
  b.add(core::ZeroBoundary::kNone);
  a.merge(b);
  EXPECT_EQ(a.counts, full.counts);
}

TEST(MergeAccumulators, PeriodicNetworkCounter) {
  // A strongly periodic accumulator (24h mode) and an aperiodic one.
  stats::TotalTimeFraction periodic, flat;
  periodic.add(24, 500);
  periodic.add(48, 10);
  // Spread over [1, 100] so no candidate period captures >= 25% of time.
  for (std::uint64_t h = 1; h <= 100; h += 3) flat.add(h);

  stats::PeriodicNetworkCounter full, a, b;
  full.add(periodic);
  full.add(flat);
  full.add(periodic);
  a.add(periodic);
  a.add(flat);
  b.add(periodic);
  a.merge(b);
  EXPECT_EQ(a.networks(), full.networks());
  EXPECT_EQ(a.periodic_networks(), full.periodic_networks());
  EXPECT_EQ(a.by_period(), full.by_period());
  EXPECT_EQ(full.networks(), 3u);
  EXPECT_EQ(full.periodic_networks(), 2u);
}

// --------------------------------------------------- analyzer merge algebra

// Shared small Atlas dataset: all CleanProbes of a two-ISP deployment.
struct CleanDataset {
  bgp::Rib rib;
  std::vector<core::CleanProbe> probes;
};

const CleanDataset& clean_dataset() {
  static CleanDataset* ds = [] {
    auto* d = new CleanDataset;
    auto isps = simnet::paper_isps();
    isps.resize(2);
    simnet::announce_all(isps, d->rib);
    atlas::AtlasConfig cfg;
    cfg.probe_scale = 0.05;
    cfg.window_hours = 6000;
    cfg.seed = 42;
    atlas::AtlasSimulator sim(isps, cfg);
    core::Sanitizer sanitizer(d->rib, {});
    for (std::size_t i = 0; i < sim.probe_count(); ++i) {
      auto obs = core::from_series(sim.series_for(i));
      for (auto& cp : sanitizer.sanitize(obs))
        d->probes.push_back(std::move(cp));
    }
    EXPECT_GT(d->probes.size(), 10u);
    return d;
  }();
  return *ds;
}

void expect_eq(const core::AsDurationStats& a, const core::AsDurationStats& b) {
  EXPECT_EQ(a.v4_nds.counts(), b.v4_nds.counts());
  EXPECT_EQ(a.v4_ds.counts(), b.v4_ds.counts());
  EXPECT_EQ(a.v6.counts(), b.v6.counts());
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.ds_probes, b.ds_probes);
  EXPECT_EQ(a.probes_with_change, b.probes_with_change);
  EXPECT_EQ(a.v4_changes, b.v4_changes);
  EXPECT_EQ(a.v4_changes_ds, b.v4_changes_ds);
  EXPECT_EQ(a.v6_changes, b.v6_changes);
  EXPECT_EQ(a.cooccur_hits, b.cooccur_hits);
  EXPECT_EQ(a.cooccur_total, b.cooccur_total);
}

void expect_eq(const core::AsSpatialStats& a, const core::AsSpatialStats& b) {
  EXPECT_EQ(a.cpl.changes, b.cpl.changes);
  EXPECT_EQ(a.cpl.probes, b.cpl.probes);
  EXPECT_EQ(a.v4_changes, b.v4_changes);
  EXPECT_EQ(a.v4_diff_24, b.v4_diff_24);
  EXPECT_EQ(a.v4_diff_bgp, b.v4_diff_bgp);
  EXPECT_EQ(a.v6_changes, b.v6_changes);
  EXPECT_EQ(a.v6_diff_bgp, b.v6_diff_bgp);
  EXPECT_EQ(a.unique_prefixes, b.unique_prefixes);
  EXPECT_EQ(a.unique_bgp, b.unique_bgp);
}

TEST(MergeAnalyzers, DurationAnalyzerHalvesEqualFull) {
  const auto& ds = clean_dataset();
  std::size_t half = ds.probes.size() / 2;
  core::DurationAnalyzer full, a, b;
  for (std::size_t i = 0; i < ds.probes.size(); ++i) {
    full.add(ds.probes[i]);
    (i < half ? a : b).add(ds.probes[i]);
  }
  a.merge(std::move(b));
  ASSERT_EQ(a.by_as().size(), full.by_as().size());
  for (const auto& [asn, stats] : full.by_as()) {
    ASSERT_TRUE(a.by_as().count(asn));
    expect_eq(a.by_as().at(asn), stats);
  }
}

TEST(MergeAnalyzers, SpatialAnalyzerHalvesEqualFull) {
  const auto& ds = clean_dataset();
  std::size_t half = ds.probes.size() / 2;
  core::SpatialAnalyzer full(ds.rib), a(ds.rib), b(ds.rib);
  for (std::size_t i = 0; i < ds.probes.size(); ++i) {
    full.add(ds.probes[i]);
    (i < half ? a : b).add(ds.probes[i]);
  }
  a.merge(std::move(b));
  ASSERT_EQ(a.by_as().size(), full.by_as().size());
  for (const auto& [asn, stats] : full.by_as()) {
    ASSERT_TRUE(a.by_as().count(asn));
    expect_eq(a.by_as().at(asn), stats);
  }
}

TEST(MergeAnalyzers, InferenceCollectorHalvesEqualFull) {
  const auto& ds = clean_dataset();
  std::size_t half = ds.probes.size() / 2;
  core::InferenceCollector full, a, b;
  for (std::size_t i = 0; i < ds.probes.size(); ++i) {
    full.add(ds.probes[i]);
    (i < half ? a : b).add(ds.probes[i]);
  }
  a.merge(std::move(b));
  ASSERT_EQ(a.subscriber().size(), full.subscriber().size());
  for (const auto& [asn, infs] : full.subscriber()) {
    const auto& got = a.subscriber().at(asn);
    ASSERT_EQ(got.size(), infs.size());
    for (std::size_t i = 0; i < infs.size(); ++i) {
      EXPECT_EQ(got[i].inferred_len, infs[i].inferred_len);
      EXPECT_EQ(got[i].changes, infs[i].changes);
    }
  }
  ASSERT_EQ(a.pools().size(), full.pools().size());
  for (const auto& [asn, infs] : full.pools()) {
    const auto& got = a.pools().at(asn);
    ASSERT_EQ(got.size(), infs.size());
    for (std::size_t i = 0; i < infs.size(); ++i) {
      EXPECT_EQ(got[i].pool_len, infs[i].pool_len);
      EXPECT_EQ(got[i].coverage, infs[i].coverage);
    }
  }
}

TEST(MergeAnalyzers, SanitizerStatsHalvesEqualFull) {
  auto isps = simnet::paper_isps();
  isps.resize(2);
  bgp::Rib rib;
  simnet::announce_all(isps, rib);
  atlas::AtlasConfig cfg;
  cfg.probe_scale = 0.05;
  cfg.window_hours = 6000;
  cfg.seed = 42;
  atlas::AtlasSimulator sim(isps, cfg);
  core::Sanitizer full(rib, {}), a(rib, {}), b(rib, {});
  std::size_t half = sim.probe_count() / 2;
  for (std::size_t i = 0; i < sim.probe_count(); ++i) {
    auto obs = core::from_series(sim.series_for(i));
    full.sanitize(obs);
    (i < half ? a : b).sanitize(obs);
  }
  a.merge(std::move(b));
  const auto& fs = full.stats();
  const auto& as = a.stats();
  EXPECT_EQ(as.probes_seen, fs.probes_seen);
  EXPECT_EQ(as.probes_kept, fs.probes_kept);
  EXPECT_EQ(as.virtual_probes, fs.virtual_probes);
  EXPECT_EQ(as.split_probes, fs.split_probes);
  EXPECT_EQ(as.dropped_short, fs.dropped_short);
  EXPECT_EQ(as.dropped_bad_tag, fs.dropped_bad_tag);
  EXPECT_EQ(as.dropped_public_src, fs.dropped_public_src);
  EXPECT_EQ(as.dropped_v6_mismatch, fs.dropped_v6_mismatch);
  EXPECT_EQ(as.dropped_multihomed, fs.dropped_multihomed);
  EXPECT_EQ(as.test_address_records, fs.test_address_records);
}

// Works for any mix of CdnAnalyzer and CdnSnapshot (same accessor surface).
template <typename A, typename B>
void expect_eq_cdn(const A& a, const B& b) {
  ASSERT_EQ(a.by_asn().size(), b.by_asn().size());
  for (const auto& [asn, stats] : b.by_asn()) {
    const auto& got = a.by_asn().at(asn);
    EXPECT_EQ(got.mobile, stats.mobile);
    EXPECT_EQ(got.registry, stats.registry);
    EXPECT_EQ(got.durations_days, stats.durations_days);
    EXPECT_EQ(got.tuples, stats.tuples);
    EXPECT_EQ(got.mismatched, stats.mismatched);
    EXPECT_EQ(got.unique_64s, stats.unique_64s);
  }
  ASSERT_EQ(a.registry_durations().size(), b.registry_durations().size());
  for (const auto& [cls, durations] : b.registry_durations())
    EXPECT_EQ(a.registry_durations().at(cls), durations);
  EXPECT_EQ(a.degrees(), b.degrees());
  ASSERT_EQ(a.zero_counts().size(), b.zero_counts().size());
  for (const auto& [cls, counts] : b.zero_counts())
    EXPECT_EQ(a.zero_counts().at(cls).counts, counts.counts);
  EXPECT_EQ(a.total_tuples(), b.total_tuples());
  EXPECT_EQ(a.total_mismatched(), b.total_mismatched());
  EXPECT_EQ(a.fraction_64s_with_single_24(false),
            b.fraction_64s_with_single_24(false));
  EXPECT_EQ(a.fraction_64s_with_single_24(true),
            b.fraction_64s_with_single_24(true));
}

TEST(MergeAnalyzers, CdnAnalyzerHalvesEqualFull) {
  auto population = cdn::default_cdn_population(0.05);
  cdn::CdnConfig cfg;
  cfg.subscriber_scale = 0.05;
  cfg.seed = 99;
  cdn::CdnSimulator sim(population, cfg);
  core::AssocOptions opts;
  core::CdnAnalyzer full(opts, sim.mobile_asns()), a(opts, sim.mobile_asns()),
      b(opts, sim.mobile_asns());
  std::size_t half = sim.entry_count() / 2;
  for (std::size_t i = 0; i < sim.entry_count(); ++i) {
    auto log = sim.generate(i);
    full.add(log);
    (i < half ? a : b).add(log);
  }
  a.merge(std::move(b));
  expect_eq_cdn(a, full);
}

// --------------------------------------------------- end-to-end invariance

void expect_eq(const core::AtlasStudy& a, const core::AtlasStudy& b) {
  EXPECT_EQ(a.sanitize.probes_seen, b.sanitize.probes_seen);
  EXPECT_EQ(a.sanitize.virtual_probes, b.sanitize.virtual_probes);
  EXPECT_EQ(a.sanitize.dropped_short, b.sanitize.dropped_short);
  EXPECT_EQ(a.sanitize.dropped_multihomed, b.sanitize.dropped_multihomed);
  ASSERT_EQ(a.durations.size(), b.durations.size());
  for (const auto& [asn, stats] : b.durations)
    expect_eq(a.durations.at(asn), stats);
  ASSERT_EQ(a.spatial.size(), b.spatial.size());
  for (const auto& [asn, stats] : b.spatial)
    expect_eq(a.spatial.at(asn), stats);
  ASSERT_EQ(a.subscriber_inference.size(), b.subscriber_inference.size());
  for (const auto& [asn, infs] : b.subscriber_inference) {
    const auto& got = a.subscriber_inference.at(asn);
    ASSERT_EQ(got.size(), infs.size());
    for (std::size_t i = 0; i < infs.size(); ++i) {
      EXPECT_EQ(got[i].inferred_len, infs[i].inferred_len);
      EXPECT_EQ(got[i].changes, infs[i].changes);
    }
  }
  ASSERT_EQ(a.pool_inference.size(), b.pool_inference.size());
  for (const auto& [asn, infs] : b.pool_inference) {
    const auto& got = a.pool_inference.at(asn);
    ASSERT_EQ(got.size(), infs.size());
    for (std::size_t i = 0; i < infs.size(); ++i) {
      EXPECT_EQ(got[i].pool_len, infs[i].pool_len);
      EXPECT_EQ(got[i].coverage, infs[i].coverage);
    }
  }
  EXPECT_EQ(a.as_names, b.as_names);
}

TEST(PipelineInvariance, AtlasStudyIdenticalAcrossThreadCounts) {
  core::AtlasStudyConfig cfg;
  cfg.atlas.probe_scale = 0.05;
  cfg.atlas.window_hours = 6000;
  cfg.atlas.seed = 7;
  auto isps = simnet::paper_isps();
  isps.resize(3);

  cfg.threads = 1;
  auto serial = core::run_atlas_study(isps, cfg);
  cfg.threads = 4;
  auto sharded = core::run_atlas_study(isps, cfg);
  expect_eq(sharded, serial);
}

TEST(PipelineInvariance, CdnStudyIdenticalAcrossThreadCounts) {
  core::CdnStudyConfig cfg;
  cfg.cdn.subscriber_scale = 0.05;
  cfg.cdn.seed = 13;
  auto population = cdn::default_cdn_population(0.05);

  cfg.threads = 1;
  auto serial = core::run_cdn_study(population, cfg);
  cfg.threads = 4;
  auto sharded = core::run_cdn_study(population, cfg);
  expect_eq_cdn(sharded.analyzer, serial.analyzer);
  EXPECT_EQ(sharded.asn_names, serial.asn_names);
}

}  // namespace
}  // namespace dynamips
