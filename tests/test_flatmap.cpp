// test_flatmap.cpp — the sorted-vector map behind the per-AS accumulators.
//
// FlatMap's contract is "std::map's observable behaviour without the
// per-node allocations": identical in-order iteration (which is what makes
// analyzer serialization and CSV emission byte-identical after the swap),
// identical merge algebra under try_emplace, and a checkpoint round trip
// that reproduces the exact bytes a std::map-backed analyzer wrote. The
// allocation-count test at the bottom pins down the point of the exercise:
// the CDN add-loop must not allocate per record in steady state.
#include "stats/flatmap.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bgp/rib.h"
#include "core/assoc.h"
#include "io/checkpoint.h"

// ----------------------------------------------------- allocation counting
//
// Each test file is its own executable (tests/CMakeLists.txt), so a global
// operator new override here observes only this binary. Counting is gated
// on a flag so gtest's own bookkeeping does not pollute the counts.

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};

struct AllocationScope {
  AllocationScope() {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
  }
  ~AllocationScope() { g_count_allocs.store(false, std::memory_order_relaxed); }
  std::uint64_t count() const {
    return g_alloc_count.load(std::memory_order_relaxed);
  }
};

}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace dynamips {
namespace {

using stats::FlatMap;

// ------------------------------------------------------------- map basics

TEST(FlatMap, IteratesInKeyOrderLikeStdMap) {
  std::mt19937 rng(7);
  FlatMap<int, int> fm;
  std::map<int, int> sm;
  for (int i = 0; i < 500; ++i) {
    int k = int(rng() % 997);
    ++fm[k];
    ++sm[k];
  }
  ASSERT_EQ(fm.size(), sm.size());
  auto it = sm.begin();
  for (const auto& [k, v] : fm) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST(FlatMap, LookupFamilyMatchesStdMap) {
  FlatMap<int, std::string> fm;
  fm[3] = "c";
  fm[1] = "a";
  fm[2] = "b";
  EXPECT_EQ(fm.size(), 3u);
  EXPECT_TRUE(fm.contains(2));
  EXPECT_EQ(fm.count(2), 1u);
  EXPECT_EQ(fm.count(9), 0u);
  EXPECT_EQ(fm.at(1), "a");
  EXPECT_EQ(fm.find(3)->second, "c");
  EXPECT_EQ(fm.find(4), fm.end());
  EXPECT_EQ(fm.lower_bound(2)->first, 2);
  EXPECT_THROW(fm.at(9), std::out_of_range);

  const auto& cfm = fm;
  EXPECT_EQ(cfm.at(2), "b");
  EXPECT_EQ(cfm.find(9), cfm.end());

  EXPECT_EQ(fm.erase(2), 1u);
  EXPECT_EQ(fm.erase(2), 0u);
  EXPECT_EQ(fm.size(), 2u);
  fm.clear();
  EXPECT_TRUE(fm.empty());
}

TEST(FlatMap, TryEmplaceKeepsExistingValue) {
  FlatMap<int, std::vector<int>> fm;
  auto [it1, inserted1] = fm.try_emplace(5, std::vector<int>{1, 2});
  EXPECT_TRUE(inserted1);
  auto [it2, inserted2] = fm.try_emplace(5, std::vector<int>{9});
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, (std::vector<int>{1, 2}));
  EXPECT_EQ(it1, it2);
}

// The shard-reduction pattern every analyzer uses: try_emplace the other
// shard's entry, merge on collision. Split-vs-serial must agree exactly.
TEST(FlatMap, MergeAlgebraMatchesSerialAccumulation) {
  std::mt19937 rng(11);
  FlatMap<int, std::uint64_t> serial, a, b;
  for (int i = 0; i < 400; ++i) {
    int k = int(rng() % 53);
    std::uint64_t w = rng() % 100;
    serial[k] += w;
    (i % 2 ? a : b)[k] += w;
  }
  for (auto& [k, v] : b) {
    auto [it, inserted] = a.try_emplace(k, v);
    if (!inserted) it->second += v;
  }
  EXPECT_EQ(a, serial);
}

// -------------------------------------------------- checkpoint round trip

// A FlatMap-backed analyzer must write the same checkpoint bytes the
// std::map-backed one did (ordered iteration) and read them back intact.
TEST(FlatMap, CheckpointBytesMatchStdMapAndRoundTrip) {
  std::mt19937 rng(13);
  FlatMap<std::uint32_t, std::uint64_t> fm;
  std::map<std::uint32_t, std::uint64_t> sm;
  for (int i = 0; i < 200; ++i) {
    std::uint32_t k = rng() % 313;
    std::uint64_t v = rng();
    fm[k] = v;
    sm[k] = v;
  }

  auto serialize = [](const auto& m) {
    io::ckpt::Writer w;
    w.u64(m.size());
    for (const auto& [k, v] : m) {
      w.u32(k);
      w.u64(v);
    }
    return std::string(w.buffer().begin(), w.buffer().end());
  };
  std::string flat_bytes = serialize(fm);
  EXPECT_EQ(flat_bytes, serialize(sm));

  FlatMap<std::uint32_t, std::uint64_t> loaded;
  io::ckpt::Reader r(flat_bytes);
  std::uint64_t n = r.size();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    std::uint32_t k = r.u32();
    loaded[k] = r.u64();
  }
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(loaded, fm);
}

// ------------------------------------------------- steady-state allocation

// Build a synthetic association log the same way the CDN generator shapes
// them: day-sorted records, a bounded set of /64s and /24s.
cdn::AssociationLog make_log(std::uint32_t seed, std::size_t records) {
  std::mt19937 rng(seed);
  cdn::AssociationLog log;
  log.asn = 100;
  log.registry = bgp::Registry::kRipe;
  log.records.reserve(records);
  for (std::size_t i = 0; i < records; ++i) {
    cdn::AssociationRecord rec;
    rec.day = std::uint32_t(i * 30 / records);
    rec.v6_64 = net::Prefix6(
        net::IPv6Address{0x2001'0db8'0000'0000ull | (rng() % 64), 0}, 64);
    rec.v4_24 = net::slash24_of(net::IPv4Address(0x0a000000u |
                                                 ((rng() % 16) << 8)));
    rec.asn4 = rec.asn6 = 100;
    log.records.push_back(rec);
  }
  return log;
}

// The tentpole claim, pinned: after warm-up, feeding a full log through
// CdnAnalyzer::add must do (almost) no heap allocation — the tuple/pair
// scratch lives in the analyzer's arena and the accumulator maps' key sets
// have stopped growing. The generous bound (vs thousands of records) is
// there to catch a reintroduced per-record or per-/64 allocation, not to
// play code golf.
TEST(FlatMap, CdnAddLoopIsAllocationLeanInSteadyState) {
  core::CdnAnalyzer analyzer({}, {});
  for (std::uint32_t seed = 0; seed < 8; ++seed)
    analyzer.add(make_log(seed, 4096));  // warm up arena + accumulators

  auto log = make_log(99, 4096);
  std::uint64_t allocs = 0;
  {
    AllocationScope scope;
    analyzer.add(log);
    allocs = scope.count();
  }
  // Per-/64 run durations still append to growable vectors (amortized),
  // and stable_sort may grab a temp buffer; anything beyond a few dozen
  // means per-record allocation came back.
  EXPECT_LE(allocs, 64u) << "CdnAnalyzer::add allocated " << allocs
                         << " times on a warm 4096-record log";
}

}  // namespace
}  // namespace dynamips
