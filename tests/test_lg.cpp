// Looking-glass service tests: HTTP head parsing edge cases, request
// routing over real study snapshots (wrong inputs are client errors, never
// 500s), SnapshotStore publication under concurrent readers, and one
// socket-level round trip through LgServer.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/failpoint.h"
#include "core/pipeline.h"
#include "core/resource.h"
#include "gtest/gtest.h"
#include "lg/http.h"
#include "lg/server.h"
#include "lg/service.h"
#include "lg/snapshot_store.h"
#include "simnet/isp.h"

namespace dynamips {
namespace {

// ---------------------------------------------------------------- http

lg::Request parse_ok(const std::string& head) {
  lg::Response error;
  auto req = lg::parse_request_head(head, &error);
  EXPECT_TRUE(req.has_value()) << head << " -> " << error.status;
  return req.value_or(lg::Request{});
}

int parse_status(const std::string& head) {
  lg::Response error;
  auto req = lg::parse_request_head(head, &error);
  return req ? 200 : error.status;
}

TEST(LgHttp, ParsesSimpleGet) {
  lg::Request req = parse_ok("GET /v1/healthz HTTP/1.1\r\nHost: x\r\n");
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/v1/healthz");
  EXPECT_TRUE(req.keep_alive);
}

TEST(LgHttp, StripsQueryAndDecodesPercent) {
  EXPECT_EQ(parse_ok("GET /v1/pfx2as/2003%3A%3A1?x=1 HTTP/1.1\r\n").path,
            "/v1/pfx2as/2003::1");
  // Invalid escapes survive verbatim instead of failing the request.
  EXPECT_EQ(lg::percent_decode("%zz%4"), "%zz%4");
}

TEST(LgHttp, ConnectionSemantics) {
  EXPECT_TRUE(parse_ok("GET / HTTP/1.1\r\n").keep_alive);
  EXPECT_FALSE(parse_ok("GET / HTTP/1.0\r\n").keep_alive);
  EXPECT_FALSE(parse_ok("GET / HTTP/1.1\r\nConnection: close\r\n")
                   .keep_alive);
  EXPECT_TRUE(parse_ok("GET / HTTP/1.0\r\nConnection: keep-alive\r\n")
                  .keep_alive);
}

TEST(LgHttp, RejectsWithPreciseStatus) {
  EXPECT_EQ(parse_status("POST /v1/healthz HTTP/1.1\r\n"), 405);
  EXPECT_EQ(parse_status("DELETE / HTTP/1.1\r\n"), 405);
  EXPECT_EQ(parse_status("GET / HTTP/2.0\r\n"), 505);
  EXPECT_EQ(parse_status("GET /\r\n"), 400);             // no version
  EXPECT_EQ(parse_status("GET  / HTTP/1.1\r\n"), 400);   // extra space
  EXPECT_EQ(parse_status("GET nopath HTTP/1.1\r\n"), 400);
  EXPECT_EQ(parse_status(""), 400);
  EXPECT_EQ(parse_status("GET / HTTP/1.1\r\nbadheader\r\n"), 400);
  std::string oversize = "GET /" + std::string(lg::kMaxRequestLine, 'a') +
                         " HTTP/1.1\r\n";
  EXPECT_EQ(parse_status(oversize), 414);
}

TEST(LgHttp, RenderCarriesLengthAndConnection) {
  lg::Response r;
  r.body = "{\"x\": 1}\n";
  std::string wire = lg::render_response(r, true);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 9\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(lg::render_response(r, false).find("Connection: close"),
            std::string::npos);
}

// ------------------------------------------------------------- service

const core::AtlasStudy& atlas_study() {
  static core::AtlasStudy study = [] {
    core::AtlasStudyConfig cfg;
    cfg.atlas.probe_scale = 0.05;
    cfg.atlas.window_hours = 3000;
    cfg.atlas.seed = 11;
    return core::run_atlas_study(simnet::paper_isps(), cfg);
  }();
  return study;
}

lg::Response get(const lg::LgService& service, const std::string& path) {
  lg::Request req;
  req.method = "GET";
  req.path = path;
  req.version = "HTTP/1.1";
  return service.handle(req);
}

TEST(LgService, HealthzAlwaysAnswers) {
  lg::LgService empty;
  EXPECT_EQ(get(empty, "/v1/healthz").status, 200);
  EXPECT_NE(get(empty, "/v1/healthz").body.find("\"atlas\": null"),
            std::string::npos);
}

TEST(LgService, ReadyzWithoutGovernorIsPlainLiveness) {
  lg::LgService service;
  lg::Response r = get(service, "/v1/readyz");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"status\": \"ready\""), std::string::npos);
}

TEST(LgService, ReadyzReportsGovernorStateWhenHealthy) {
  core::ResourceBudgets budgets;
  budgets.max_rss_mb = 1000000;  // far above any real RSS
  budgets.sample_interval_ms = 0;
  budgets.rss_probe = [] { return std::uint64_t(64) * 1024 * 1024; };
  core::ResourceGovernor governor(budgets);
  governor.note_backlog(3);
  lg::ServiceConfig config;
  config.governor = &governor;
  lg::LgService service(config);

  lg::Response r = get(service, "/v1/readyz");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"status\": \"ready\""), std::string::npos);
  EXPECT_NE(r.body.find("\"rss_mb\": 64"), std::string::npos);
  EXPECT_NE(r.body.find("\"backlog_batches\": 3"), std::string::npos);
  EXPECT_NE(r.body.find("\"disk_pressure\": \"ok\""), std::string::npos);
  EXPECT_TRUE(r.extra_headers.empty());
}

TEST(LgService, ReadyzTurns503WithRetryAfterWhileDegraded) {
  // Healthz must stay 200 through the same degradation: liveness probes
  // must not kill a process that is shedding load on purpose.
  core::ResourceBudgets budgets;
  budgets.max_rss_mb = 16;
  budgets.sample_interval_ms = 0;
  budgets.rss_probe = [] { return std::uint64_t(64) * 1024 * 1024; };
  core::ResourceGovernor governor(budgets);
  lg::ServiceConfig config;
  config.governor = &governor;
  lg::LgService service(config);

  lg::Response r = get(service, "/v1/readyz");
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("\"status\": \"degraded\""), std::string::npos);
  EXPECT_NE(r.body.find("\"memory_pressure\": true"), std::string::npos);
  bool has_retry_after = false;
  for (const auto& [name, value] : r.extra_headers)
    has_retry_after = has_retry_after || name == "Retry-After";
  EXPECT_TRUE(has_retry_after);
  EXPECT_EQ(get(service, "/v1/healthz").status, 200);
}

TEST(LgService, QueriesBeforeFirstPublishAre503) {
  lg::LgService empty;
  EXPECT_EQ(get(empty, "/v1/durations/3320").status, 503);
  EXPECT_EQ(get(empty, "/v1/assoc/3320").status, 503);
  EXPECT_EQ(get(empty, "/v1/infer/1.2.3.0/24").status, 503);
  EXPECT_EQ(get(empty, "/v1/pfx2as/1.2.3.4").status, 503);
  EXPECT_EQ(get(empty, "/v1/metricsz").status, 503);  // no registry wired
}

class LgServiceWithStudy : public ::testing::Test {
 protected:
  void SetUp() override {
    service_.publish_atlas(lg::build_atlas_snapshot(
        atlas_study(), 1, 0, atlas_study().sanitize.probes_seen));
  }
  lg::LgService service_;
};

TEST_F(LgServiceWithStudy, KnownAsnRoundTrips) {
  lg::Response r = get(service_, "/v1/durations/3320");
  ASSERT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"asn\": 3320"), std::string::npos);
  EXPECT_NE(r.body.find("\"snapshot\": 1"), std::string::npos);
  EXPECT_NE(r.body.find("\"v4_nds\""), std::string::npos);
}

TEST_F(LgServiceWithStudy, BadInputsAreClientErrorsNot500) {
  EXPECT_EQ(get(service_, "/v1/durations/notanasn").status, 400);
  EXPECT_EQ(get(service_, "/v1/durations/").status, 400);
  EXPECT_EQ(get(service_, "/v1/durations/99999999999").status, 400);
  EXPECT_EQ(get(service_, "/v1/durations/64511").status, 404);  // unknown AS
  EXPECT_EQ(get(service_, "/v1/infer/zzz").status, 400);
  EXPECT_EQ(get(service_, "/v1/infer/10.0.0.0/8").status, 404);  // no route
  EXPECT_EQ(get(service_, "/v1/pfx2as/not-an-addr").status, 400);
  EXPECT_EQ(get(service_, "/v1/pfx2as/203.0.113.9").status, 404);
  EXPECT_EQ(get(service_, "/nope").status, 404);
  EXPECT_EQ(get(service_, "/v1/").status, 404);
}

TEST_F(LgServiceWithStudy, InferAndPfx2asAgreeOnOrigin) {
  lg::Response lpm = get(service_, "/v1/pfx2as/79.200.1.2");
  ASSERT_EQ(lpm.status, 200);
  EXPECT_NE(lpm.body.find("\"asn\": 3320"), std::string::npos);
  lg::Response infer = get(service_, "/v1/infer/79.192.0.0/11");
  ASSERT_EQ(infer.status, 200);
  EXPECT_NE(infer.body.find("\"inference\""), std::string::npos);
}

TEST_F(LgServiceWithStudy, ResponsesAreByteDeterministic) {
  lg::Response a = get(service_, "/v1/durations/3320");
  lg::Response b = get(service_, "/v1/durations/3320");
  EXPECT_EQ(a.body, b.body);
}

// ------------------------------------------------------ snapshot store

TEST(LgSnapshotStore, SwapUnderConcurrentReaders) {
  // Property: a reader always sees a complete generation — the payload it
  // reads matches the generation stamp — and generations never run
  // backwards within one reader. A torn or partially-published snapshot
  // would break the first invariant; a non-atomic pointer swap the second.
  struct Gen {
    std::uint64_t generation;
    std::string payload;
  };
  lg::SnapshotStore<Gen> store;
  constexpr int kReaders = 4;
  constexpr std::uint64_t kGenerations = 2000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const Gen> snap = store.get();
        if (!snap) continue;
        if (snap->payload != "gen-" + std::to_string(snap->generation))
          violations.fetch_add(1, std::memory_order_relaxed);
        if (snap->generation < last)
          violations.fetch_add(1, std::memory_order_relaxed);
        last = snap->generation;
      }
    });
  }
  for (std::uint64_t g = 1; g <= kGenerations; ++g) {
    auto next = std::make_shared<Gen>();
    next->generation = g;
    next->payload = "gen-" + std::to_string(g);
    store.publish(std::move(next));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);
  ASSERT_TRUE(store.get());
  EXPECT_EQ(store.get()->generation, kGenerations);
}

// -------------------------------------------------------------- server

std::string http_round_trip(int fd, const std::string& request) {
  EXPECT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            ssize_t(request.size()));
  // Read the head, then drain exactly Content-Length body bytes so a
  // keep-alive connection is left aligned on a message boundary.
  std::string buf;
  char chunk[2048];
  std::size_t head_end;
  while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return buf;
    buf.append(chunk, std::size_t(n));
  }
  std::size_t want = buf.size();
  std::size_t cl = buf.find("Content-Length: ");
  if (cl != std::string::npos && cl < head_end)
    want = head_end + 4 +
           std::strtoull(buf.c_str() + cl + 16, nullptr, 10);
  while (buf.size() < want) {
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buf.append(chunk, std::size_t(n));
  }
  return buf;
}

TEST(LgServer, ServesOverRealSocket) {
  lg::LgService service;
  service.publish_atlas(lg::build_atlas_snapshot(
      atlas_study(), 1, 0, atlas_study().sanitize.probes_seen));

  lg::ServerConfig cfg;
  cfg.port = 0;  // ephemeral
  cfg.threads = 2;
  lg::LgServer server(service, cfg);
  ASSERT_TRUE(server.start().ok());
  ASSERT_GT(server.port(), 0);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);

  // Two requests on one keep-alive connection, then an error status.
  std::string first =
      http_round_trip(fd, "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(first.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(first.find("\"status\": \"ok\""), std::string::npos);
  std::string second = http_round_trip(
      fd, "GET /v1/durations/3320 HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(second.find("\"asn\": 3320"), std::string::npos);
  std::string third = http_round_trip(
      fd, "POST /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(third.find("HTTP/1.1 405"), std::string::npos);
  ::close(fd);

  server.stop();
  lg::ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.responses_2xx, 2u);
  EXPECT_EQ(stats.responses_4xx, 1u);

  // The port is free again: a second server can bind it immediately.
  lg::ServerConfig again = cfg;
  again.port = server.port();
  lg::LgServer rebind(service, again);
  EXPECT_TRUE(rebind.start().ok());
  rebind.stop();
}

// ----------------------------------------------------- overload handling

int connect_to(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(std::uint16_t(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string read_until_close(int fd) {
  std::string buf;
  char chunk[1024];
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return buf;
    buf.append(chunk, std::size_t(n));
  }
}

/// Failpoint-armed tests leave the process disarmed even when they fail.
class LgServerOverload : public ::testing::Test {
 protected:
  void SetUp() override { core::disarm_failpoints(); }
  void TearDown() override { core::disarm_failpoints(); }
};

TEST_F(LgServerOverload, SlowClientHitsSendDeadlineAndWorkerIsReclaimed) {
  lg::LgService service;
  service.publish_atlas(lg::build_atlas_snapshot(
      atlas_study(), 1, 0, atlas_study().sanitize.probes_seen));

  lg::ServerConfig cfg;
  cfg.port = 0;
  cfg.threads = 1;  // a stalled send would wedge the whole server
  cfg.send_timeout_ms = 150;
  lg::LgServer server(service, cfg);
  ASSERT_TRUE(server.start().ok());

  // The injected delay stands in for a peer that stops reading while the
  // response is in flight; it must burn through the 150ms budget and trip
  // the deadline, not block the lone worker for 10 seconds.
  ASSERT_TRUE(core::arm_failpoints("lg.send=delay(10000ms)@1").ok());
  int slow = connect_to(server.port());
  ASSERT_GE(slow, 0);
  const std::string req = "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_EQ(::send(slow, req.data(), req.size(), MSG_NOSIGNAL),
            ssize_t(req.size()));
  // The server drops us without a byte of response.
  EXPECT_EQ(read_until_close(slow), "");
  ::close(slow);
  core::disarm_failpoints();

  // The worker was reclaimed: a fresh connection is served normally.
  int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  std::string ok = http_round_trip(fd, req);
  EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos);
  ::close(fd);

  server.stop();
  lg::ServerStats stats = server.stats();
  EXPECT_EQ(stats.slow_client_drops, 1u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST_F(LgServerOverload, AdmissionCapShedsWith503AndRetryAfter) {
  lg::LgService service;
  service.publish_atlas(lg::build_atlas_snapshot(
      atlas_study(), 1, 0, atlas_study().sanitize.probes_seen));

  lg::ServerConfig cfg;
  cfg.port = 0;
  cfg.threads = 1;
  cfg.max_connections = 1;
  lg::LgServer server(service, cfg);
  ASSERT_TRUE(server.start().ok());

  // Fill the single admission slot with a keep-alive connection (the round
  // trip guarantees the acceptor has already counted it).
  int held = connect_to(server.port());
  ASSERT_GE(held, 0);
  std::string first = http_round_trip(
      held, "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  ASSERT_NE(first.find("HTTP/1.1 200 OK"), std::string::npos);

  // The next arrival is shed at accept time: 503, Retry-After, close —
  // without ever waiting behind the held connection.
  int shed = connect_to(server.port());
  ASSERT_GE(shed, 0);
  std::string refusal = read_until_close(shed);
  EXPECT_NE(refusal.find("HTTP/1.1 503"), std::string::npos) << refusal;
  EXPECT_NE(refusal.find("Retry-After: 1"), std::string::npos) << refusal;
  ::close(shed);

  // Releasing the slot re-opens admission.
  ::close(held);
  std::string ok;
  for (int i = 0; i < 100 && ok.find("HTTP/1.1 200 OK") == std::string::npos;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    int fd = connect_to(server.port());
    ASSERT_GE(fd, 0);
    ok = http_round_trip(fd, "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    ::close(fd);
  }
  EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos);

  server.stop();
  lg::ServerStats stats = server.stats();
  EXPECT_GE(stats.shed, 1u);
}

}  // namespace
}  // namespace dynamips
