// test_stream.cpp — the streaming incremental pipeline.
//
// Covers the re-finalizable analyzer lifecycle (add / merge / snapshot)
// and the directory-watching stream driver end to end: every analyzer's
// interleaved add+finalize+snapshot sequence must leave state byte-identical
// to a one-shot run over the same items; the stream checkpoint must carry
// the consumed-batch high-water mark; and a streamed study over batch files
// B1..Bk — at any thread count, across a resume at a different thread
// count, and across a cooperative interrupt — must produce result CSVs
// byte-identical to a one-shot file study over [B1, ..., Bk].
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "atlas/generator.h"
#include "cdn/generator.h"
#include "core/failpoint.h"
#include "core/observations.h"
#include "core/resource.h"
#include "core/sanitize.h"
#include "io/checkpoint.h"
#include "io/columnar.h"
#include "io/results_io.h"
#include "simnet/isp.h"
#include "stats/ecdf.h"

namespace dynamips {
namespace {

namespace fs = std::filesystem;
using core::Status;
using core::StatusCode;

// ------------------------------------------------------------ test helpers

/// Fresh per-test scratch directory (removed and recreated on each call).
fs::path temp_dir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Serialize every Atlas artifact; byte equality here is the "results are
/// identical" acceptance criterion (same helper as test_ingest.cpp).
std::string atlas_signature(const core::AtlasStudy& study) {
  std::ostringstream os;
  io::write_duration_curves_csv(os, study);
  io::write_cpl_csv(os, study);
  io::write_bgp_moves_csv(os, study);
  io::write_inference_csv(os, study);
  return os.str();
}

std::string cdn_signature(const core::CdnStudy& study) {
  std::ostringstream os;
  io::write_assoc_durations_csv(os, study);
  io::write_degrees_csv(os, study);
  io::write_zero_boundaries_csv(os, study);
  return os.str();
}

template <typename A>
std::string save_bytes(const A& analyzer) {
  io::ckpt::Writer w;
  analyzer.save(w);
  return w.take();
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// Shared Atlas fixture: a small generated dataset plus the CleanProbes a
// producer-side sanitizer extracts from it (the analyzer property tests
// feed those probes; the stream tests feed the raw series as batch files).
struct AtlasFixture {
  std::vector<simnet::IspProfile> isps;
  bgp::Rib rib;
  std::vector<atlas::ProbeSeries> dataset;
  std::vector<core::CleanProbe> probes;
};

const AtlasFixture& atlas_fixture() {
  static const AtlasFixture* fixture = [] {
    auto* f = new AtlasFixture;
    f->isps = simnet::paper_isps();
    f->isps.resize(3);
    atlas::AtlasConfig cfg;
    cfg.probe_scale = 0.02;
    cfg.window_hours = 3000;
    cfg.seed = 5;
    atlas::AtlasSimulator sim(f->isps, cfg);
    f->dataset.reserve(sim.probe_count());
    for (std::size_t i = 0; i < sim.probe_count(); ++i)
      f->dataset.push_back(sim.series_for(i));
    simnet::announce_all(f->isps, f->rib);
    core::Sanitizer producer(f->rib, {});
    for (const auto& series : f->dataset) {
      auto cleaned = producer.sanitize(core::from_series(series));
      f->probes.insert(f->probes.end(), cleaned.begin(), cleaned.end());
    }
    return f;
  }();
  return *fixture;
}

struct CdnFixture {
  std::vector<cdn::PopulationEntry> population;
  std::vector<cdn::AssociationLog> logs;
  std::unordered_set<bgp::Asn> mobile_asns;
};

const CdnFixture& cdn_fixture() {
  static const CdnFixture* fixture = [] {
    auto* f = new CdnFixture;
    f->population = cdn::default_cdn_population(0.02);
    cdn::CdnConfig cfg;
    cfg.subscriber_scale = 0.02;
    cfg.seed = 13;
    cdn::CdnSimulator sim(f->population, cfg);
    f->logs.reserve(sim.entry_count());
    for (std::size_t i = 0; i < sim.entry_count(); ++i)
      f->logs.push_back(sim.generate(i));
    f->mobile_asns = sim.mobile_asns();
    return f;
  }();
  return *fixture;
}

/// Split an echo dataset into `nbatches` batch files by record hour
/// (equal-width slices, same scheme as tools/stream_feed.py) and write
/// them into `dir` with lexicographically ordered names. Returns the paths
/// in production order.
std::vector<std::string> write_atlas_batches(
    const fs::path& dir, const std::vector<atlas::ProbeSeries>& dataset,
    std::size_t nbatches) {
  std::uint64_t tmin = ~std::uint64_t(0), tmax = 0;
  for (const auto& series : dataset)
    for (const auto& r : series.records) {
      tmin = std::min<std::uint64_t>(tmin, r.hour);
      tmax = std::max<std::uint64_t>(tmax, r.hour);
    }
  const std::uint64_t span = tmax - tmin + 1;
  auto slice_of = [&](std::uint64_t t) {
    return std::min(nbatches - 1, std::size_t((t - tmin) * nbatches / span));
  };
  std::vector<std::string> paths;
  for (std::size_t b = 0; b < nbatches; ++b) {
    std::vector<atlas::ProbeSeries> slice;
    for (const auto& series : dataset) {
      atlas::ProbeSeries s;
      s.meta = series.meta;
      for (const auto& r : series.records)
        if (slice_of(r.hour) == b) s.records.push_back(r);
      if (!s.records.empty()) slice.push_back(std::move(s));
    }
    char name[32];
    std::snprintf(name, sizeof name, "batch-%03zu.csv", b);
    std::ofstream out(dir / name, std::ios::binary);
    io::write_echo_dataset(out, slice);
    paths.push_back((dir / name).string());
  }
  return paths;
}

/// Association-side analog: split by record day.
std::vector<std::string> write_cdn_batches(
    const fs::path& dir, const std::vector<cdn::AssociationLog>& logs,
    std::size_t nbatches) {
  std::uint32_t tmin = ~std::uint32_t(0), tmax = 0;
  for (const auto& log : logs)
    for (const auto& r : log.records) {
      tmin = std::min(tmin, r.day);
      tmax = std::max(tmax, r.day);
    }
  const std::uint64_t span = std::uint64_t(tmax) - tmin + 1;
  auto slice_of = [&](std::uint32_t t) {
    return std::min(nbatches - 1,
                    std::size_t(std::uint64_t(t - tmin) * nbatches / span));
  };
  std::vector<std::string> paths;
  for (std::size_t b = 0; b < nbatches; ++b) {
    std::vector<cdn::AssociationLog> slice;
    for (const auto& log : logs) {
      cdn::AssociationLog l;
      l.asn = log.asn;
      l.mobile = log.mobile;
      l.registry = log.registry;
      for (const auto& r : log.records)
        if (slice_of(r.day) == b) l.records.push_back(r);
      if (!l.records.empty()) slice.push_back(std::move(l));
    }
    char name[32];
    std::snprintf(name, sizeof name, "batch-%03zu.csv", b);
    std::ofstream out(dir / name, std::ios::binary);
    io::write_assoc_dataset(out, slice);
    paths.push_back((dir / name).string());
  }
  return paths;
}

void drop_sentinel(const fs::path& dir, const std::string& name) {
  std::ofstream(dir / name, std::ios::binary).put('\n');
}

core::CdnFileStudyConfig cdn_file_config(unsigned threads) {
  const CdnFixture& fx = cdn_fixture();
  core::CdnFileStudyConfig cfg;
  cfg.threads = threads;
  cfg.mobile_asns = fx.mobile_asns;
  for (const auto& entry : fx.population) {
    cfg.registries[entry.isp.asn] = entry.isp.registry;
    cfg.asn_names[entry.isp.asn] = entry.isp.name;
  }
  return cfg;
}

// ------------------------------------------- re-finalizable accumulators

TEST(EcdfRefinalize, IncrementalFinalizeMatchesOneShot) {
  // Deterministic sample stream (LCG), added in windows with a finalize()
  // after each window — the streaming access pattern.
  std::vector<double> samples;
  std::uint64_t state = 42;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    samples.push_back(double(state >> 11) / double(1ull << 53));
  }

  stats::Ecdf inc, once;
  const std::size_t kWindows = 7;
  const std::size_t per = (samples.size() + kWindows - 1) / kWindows;
  for (std::size_t b = 0; b < kWindows; ++b) {
    const std::size_t lo = b * per;
    const std::size_t hi = std::min(samples.size(), lo + per);
    for (std::size_t i = lo; i < hi; ++i) inc.add(samples[i]);
    inc.finalize();
    ASSERT_TRUE(inc.finalized());
  }
  for (double s : samples) once.add(s);
  once.finalize();

  // The incremental tail-sort + inplace_merge must land on the identical
  // sorted buffer a single full sort produces.
  EXPECT_EQ(inc.samples(), once.samples());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0})
    EXPECT_EQ(inc.quantile(q), once.quantile(q)) << "q=" << q;
  for (double x : {0.0, 0.05, 0.33, 0.5, 0.77, 1.0})
    EXPECT_EQ(inc.at(x), once.at(x)) << "x=" << x;
}

TEST(EcdfRefinalize, UnfinalizedQueriesAreExact) {
  stats::Ecdf e;
  for (double s : {0.9, 0.1, 0.5, 0.3, 0.7}) e.add(s);
  e.finalize();
  e.add(0.2);  // unsorted tail past the watermark
  e.add(0.8);
  ASSERT_FALSE(e.finalized());
  stats::Ecdf ref = e;
  ref.finalize();
  // Queries on the unfinalized accumulator fall back to exact linear /
  // copy-sort paths — same answers, no mutation.
  EXPECT_EQ(e.at(0.45), ref.at(0.45));
  EXPECT_EQ(e.quantile(0.5), ref.quantile(0.5));
  EXPECT_FALSE(e.finalized());
  e.finalize();
  EXPECT_EQ(e.samples(), ref.samples());
}

/// Interleaved add+finalize+snapshot windows must leave an analyzer's
/// serialized state byte-identical to one-shot feeding, and snapshot() must
/// never consume (state unchanged across repeated snapshots).
template <typename Item, typename MakeFn, typename FeedFn>
void check_incremental_bytes(const std::vector<Item>& items, MakeFn make,
                             FeedFn feed) {
  ASSERT_FALSE(items.empty());
  auto inc = make();
  auto once = make();
  const std::size_t kWindows = 4;
  const std::size_t per = (items.size() + kWindows - 1) / kWindows;
  for (std::size_t b = 0; b < kWindows; ++b) {
    const std::size_t lo = b * per;
    const std::size_t hi = std::min(items.size(), lo + per);
    for (std::size_t i = lo; i < hi; ++i) feed(inc, items[i]);
    inc.finalize();
    (void)inc.snapshot();
  }
  for (const auto& item : items) feed(once, item);
  once.finalize();
  EXPECT_EQ(save_bytes(inc), save_bytes(once));

  const std::string before = save_bytes(inc);
  (void)inc.snapshot();
  (void)inc.snapshot();
  EXPECT_EQ(save_bytes(inc), before);
}

TEST(AnalyzerRefinalize, SanitizerAccountingMatchesOneShot) {
  const AtlasFixture& fx = atlas_fixture();
  check_incremental_bytes(
      fx.dataset,
      [&] { return core::Sanitizer(fx.rib, core::SanitizeOptions{}); },
      [](core::Sanitizer& a, const atlas::ProbeSeries& s) {
        a.sanitize(core::from_series(s));
      });
}

TEST(AnalyzerRefinalize, DurationAnalyzerMatchesOneShot) {
  const AtlasFixture& fx = atlas_fixture();
  check_incremental_bytes(
      fx.probes, [] { return core::DurationAnalyzer(core::ChangeOptions{}); },
      [](core::DurationAnalyzer& a, const core::CleanProbe& p) { a.add(p); });
}

TEST(AnalyzerRefinalize, SpatialAnalyzerMatchesOneShot) {
  const AtlasFixture& fx = atlas_fixture();
  check_incremental_bytes(
      fx.probes, [&] { return core::SpatialAnalyzer(fx.rib); },
      [](core::SpatialAnalyzer& a, const core::CleanProbe& p) { a.add(p); });
}

TEST(AnalyzerRefinalize, InferenceCollectorMatchesOneShot) {
  const AtlasFixture& fx = atlas_fixture();
  check_incremental_bytes(
      fx.probes, [] { return core::InferenceCollector(); },
      [](core::InferenceCollector& a, const core::CleanProbe& p) { a.add(p); });
}

TEST(AnalyzerRefinalize, CdnAnalyzerMatchesOneShot) {
  const CdnFixture& fx = cdn_fixture();
  check_incremental_bytes(
      fx.logs,
      [&] { return core::CdnAnalyzer(core::AssocOptions{}, fx.mobile_asns); },
      [](core::CdnAnalyzer& a, const cdn::AssociationLog& l) { a.add(l); });
}

void expect_ttf_eq(const stats::TotalTimeFraction& a,
                   const stats::TotalTimeFraction& b) {
  EXPECT_EQ(a.total_hours(), b.total_hours());
  EXPECT_EQ(a.total_count(), b.total_count());
  static constexpr std::uint64_t kGrid[] = {1, 6, 24, 72, 168, 720, 2160};
  EXPECT_EQ(a.cumulative(kGrid), b.cumulative(kGrid));
}

// EvolutionAnalyzer has no checkpoint serialization (it is not part of the
// supervised one-shot studies), so compare the snapshot maps structurally.
TEST(AnalyzerRefinalize, EvolutionAnalyzerMatchesOneShot) {
  const AtlasFixture& fx = atlas_fixture();
  core::EvolutionAnalyzer inc, once;
  const std::size_t kWindows = 4;
  const std::size_t per = (fx.probes.size() + kWindows - 1) / kWindows;
  for (std::size_t b = 0; b < kWindows; ++b) {
    const std::size_t lo = b * per;
    const std::size_t hi = std::min(fx.probes.size(), lo + per);
    for (std::size_t i = lo; i < hi; ++i) inc.add(fx.probes[i]);
    inc.finalize();
    (void)inc.snapshot();
  }
  for (const auto& p : fx.probes) once.add(p);
  once.finalize();

  const auto got = inc.snapshot();
  const auto want = once.snapshot();
  ASSERT_FALSE(want.empty());
  ASSERT_EQ(got.size(), want.size());
  for (auto gi = got.begin(), wi = want.begin(); gi != got.end(); ++gi, ++wi) {
    EXPECT_EQ(gi->first, wi->first);
    expect_ttf_eq(gi->second.v4_nds, wi->second.v4_nds);
    expect_ttf_eq(gi->second.v4_ds, wi->second.v4_ds);
    expect_ttf_eq(gi->second.v6, wi->second.v6);
  }
  // snapshot() must not consume: a second snapshot is identical.
  const auto again = inc.snapshot();
  EXPECT_EQ(again.size(), got.size());
}

TEST(AnalyzerRefinalize, TrackingAnalyzerMatchesOneShot) {
  const AtlasFixture& fx = atlas_fixture();
  core::TrackingAnalyzer inc, once;
  const std::size_t kWindows = 4;
  const std::size_t per = (fx.probes.size() + kWindows - 1) / kWindows;
  for (std::size_t b = 0; b < kWindows; ++b) {
    const std::size_t lo = b * per;
    const std::size_t hi = std::min(fx.probes.size(), lo + per);
    for (std::size_t i = lo; i < hi; ++i) inc.add(fx.probes[i]);
    inc.finalize();
    (void)inc.snapshot();
  }
  for (const auto& p : fx.probes) once.add(p);
  once.finalize();

  const auto got = inc.snapshot();
  const auto want = once.snapshot();
  ASSERT_EQ(got.size(), want.size());
  for (auto gi = got.begin(), wi = want.begin(); gi != got.end(); ++gi, ++wi) {
    EXPECT_EQ(gi->first, wi->first);
    EXPECT_EQ(gi->second.probes, wi->second.probes);
    EXPECT_EQ(gi->second.eui64_probes, wi->second.eui64_probes);
    EXPECT_EQ(gi->second.devices, wi->second.devices);
    EXPECT_EQ(gi->second.eui64_devices, wi->second.eui64_devices);
    EXPECT_EQ(gi->second.cross_network_tracked,
              wi->second.cross_network_tracked);
    EXPECT_EQ(gi->second.eui64_tracked_days, wi->second.eui64_tracked_days);
  }
}

// -------------------------------------------------- stream checkpointing

TEST(StreamCheckpoint, RoundTripCarriesConsumedBatches) {
  io::StudyCheckpoint ck;
  ck.kind = io::kCkptAtlasStream;
  ck.config_fingerprint = 0xfeedfacecafef00dull;
  ck.item_count = 2;
  ck.shards.push_back({0, 2, 2, "accumulated-dataset-blob"});
  ck.supervisor_blob = "stream-sink";
  ck.consumed = {"batch-000.csv", "batch-001.csv"};

  const std::string bytes = io::encode_checkpoint(ck);
  auto back = io::decode_checkpoint(bytes);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->kind, io::kCkptAtlasStream);
  EXPECT_TRUE(io::is_stream_checkpoint_kind(back->kind));
  EXPECT_EQ(back->config_fingerprint, ck.config_fingerprint);
  EXPECT_EQ(back->item_count, 2u);
  ASSERT_EQ(back->shards.size(), 1u);
  EXPECT_EQ(back->shards[0].blob, "accumulated-dataset-blob");
  EXPECT_EQ(back->supervisor_blob, "stream-sink");
  EXPECT_EQ(back->consumed, ck.consumed);
}

TEST(StreamCheckpoint, OneShotKindsOmitTheBatchSection) {
  io::StudyCheckpoint ck;
  ck.kind = io::kCkptAtlasFile;
  ck.config_fingerprint = 7;
  ck.item_count = 1;
  ck.shards.push_back({0, 1, 1, "blob"});
  auto back = io::decode_checkpoint(io::encode_checkpoint(ck));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_FALSE(io::is_stream_checkpoint_kind(back->kind));
  EXPECT_TRUE(back->consumed.empty());
}

// ------------------------------------------------------- batch ordering

TEST(BatchOrdering, NaturalNameLessComparesDigitRunsNumerically) {
  // The regression that blocked billion-tuple runs: once a feed outgrows
  // its zero-pad width, lexicographic order replays batch-1000 before
  // batch-999. Digit runs must compare by numeric value.
  EXPECT_TRUE(core::natural_name_less("batch-999.csv", "batch-1000.csv"));
  EXPECT_FALSE(core::natural_name_less("batch-1000.csv", "batch-999.csv"));
  EXPECT_TRUE(core::natural_name_less("batch-2.csv", "batch-10.csv"));
  EXPECT_TRUE(core::natural_name_less("batch-9.col", "batch-10.col"));
  // Irreflexive and consistent on equal names (strict weak ordering).
  EXPECT_FALSE(core::natural_name_less("batch-007.csv", "batch-007.csv"));
  // Leading zeros: equal values tie-break toward the shorter digit run so
  // the order stays strict; either way 2 < 3 regardless of padding.
  EXPECT_TRUE(core::natural_name_less("batch-2.csv", "batch-002.csv"));
  EXPECT_FALSE(core::natural_name_less("batch-002.csv", "batch-2.csv"));
  EXPECT_TRUE(core::natural_name_less("batch-002.csv", "batch-3.csv"));
  EXPECT_TRUE(core::natural_name_less("batch-2.csv", "batch-003.csv"));
  // Non-digit segments still compare bytewise; digits sort before letters.
  EXPECT_TRUE(core::natural_name_less("alpha.csv", "beta.csv"));
  EXPECT_TRUE(core::natural_name_less("batch-10.csv", "batch-a.csv"));
  // Multiple digit runs: earliest differing run decides.
  EXPECT_TRUE(
      core::natural_name_less("day2-batch-100.csv", "day10-batch-1.csv"));
  EXPECT_TRUE(
      core::natural_name_less("day2-batch-9.csv", "day2-batch-10.csv"));
  // Prefix of the other sorts first.
  EXPECT_TRUE(core::natural_name_less("batch", "batch-1.csv"));
  // Transitivity over a mixed-width sequence: std::sort must be safe.
  std::vector<std::string> names = {"batch-1000.csv", "batch-2.csv",
                                    "batch-999.csv", "batch-10.csv",
                                    "batch-0.csv"};
  std::sort(names.begin(), names.end(),
            [](const std::string& a, const std::string& b) {
              return core::natural_name_less(a, b);
            });
  EXPECT_EQ(names,
            (std::vector<std::string>{"batch-0.csv", "batch-2.csv",
                                      "batch-10.csv", "batch-999.csv",
                                      "batch-1000.csv"}));
}

TEST(BatchOrdering, MixedWidthNamesConsumeInProductionOrder) {
  // End-to-end regression: batches whose numeric suffixes outgrow the pad
  // width must be consumed in production (numeric) order. Lexicographic
  // order here would be batch-10, batch-1000, batch-2, batch-999 — a
  // different merge order, and a checkpoint `consumed` list that replays
  // the tail before the middle on resume.
  const AtlasFixture& fx = atlas_fixture();
  const fs::path watch = temp_dir("stream_natural_order_watch");
  const fs::path ckdir = temp_dir("stream_natural_order_ckpt");
  const std::string ckpt = (ckdir / "study.ckpt").string();
  const auto padded = write_atlas_batches(watch, fx.dataset, 4);
  const std::vector<std::string> names = {"batch-2.csv", "batch-10.csv",
                                          "batch-999.csv", "batch-1000.csv"};
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < padded.size(); ++i) {
    fs::rename(padded[i], watch / names[i]);
    paths.push_back((watch / names[i]).string());
  }

  // Reference: the one-shot study over the batches in production order.
  core::AtlasFileStudyConfig ref_cfg;
  ref_cfg.threads = 1;
  auto ref = core::run_atlas_study_from_files(paths, fx.isps, ref_cfg);
  ASSERT_TRUE(ref.ok()) << ref.status().to_string();
  const std::string want = atlas_signature(*ref);

  // Phase 1: consume exactly two batches. The checkpoint must record the
  // numerically first two, not the lexicographically first two.
  {
    core::AtlasFileStudyConfig cfg;
    cfg.threads = 1;
    core::StreamConfig stream;
    stream.max_batches = 2;
    stream.checkpoint_path = ckpt;
    core::StreamStats stats;
    auto study = core::run_atlas_stream(watch.string(), fx.isps, cfg, stream,
                                        {}, nullptr, &stats);
    ASSERT_TRUE(study.ok()) << study.status().to_string();
    EXPECT_EQ(stats.batches, 2u);
  }
  auto ck = io::read_checkpoint(ckpt);
  ASSERT_TRUE(ck.ok()) << ck.status().to_string();
  ASSERT_EQ(ck->consumed.size(), 2u);
  EXPECT_EQ(ck->consumed[0], "batch-2.csv");
  EXPECT_EQ(ck->consumed[1], "batch-10.csv");

  // Phase 2: resume past the high-water mark. Only batch-999 and
  // batch-1000 replay — in that order — and the final study matches the
  // one-shot reference byte for byte.
  drop_sentinel(watch, "stream.stop");
  {
    core::AtlasFileStudyConfig cfg;
    cfg.threads = 1;
    core::StreamConfig stream;
    stream.checkpoint_path = ckpt;
    stream.resume = &*ck;
    core::StreamStats stats;
    auto study = core::run_atlas_stream(watch.string(), fx.isps, cfg, stream,
                                        {}, nullptr, &stats);
    ASSERT_TRUE(study.ok()) << study.status().to_string();
    EXPECT_EQ(stats.batches, 4u);
    EXPECT_EQ(atlas_signature(*study), want);
  }
  auto done = io::read_checkpoint(ckpt);
  ASSERT_TRUE(done.ok()) << done.status().to_string();
  EXPECT_EQ(done->consumed,
            (std::vector<std::string>{"batch-2.csv", "batch-10.csv",
                                      "batch-999.csv", "batch-1000.csv"}));
}

TEST(BatchOrdering, ColumnarBatchesMixFreelyWithCsvInOneStream) {
  // The stream driver dispatches per file: `.col` batches ride alongside
  // `.csv` in the same watch directory and land on the same bytes.
  const AtlasFixture& fx = atlas_fixture();
  const fs::path watch = temp_dir("stream_mixed_col_watch");
  const auto paths = write_atlas_batches(watch, fx.dataset, 4);

  core::AtlasFileStudyConfig ref_cfg;
  ref_cfg.threads = 1;
  auto ref = core::run_atlas_study_from_files(paths, fx.isps, ref_cfg);
  ASSERT_TRUE(ref.ok()) << ref.status().to_string();
  const std::string want = atlas_signature(*ref);

  // Re-encode every other batch as columnar, keeping its batch number.
  for (std::size_t i = 0; i < paths.size(); i += 2) {
    auto part = io::load_echo_file(paths[i]);
    ASSERT_TRUE(part.ok()) << part.status().to_string();
    fs::path col = fs::path(paths[i]).replace_extension(".col");
    ASSERT_TRUE(io::write_echo_columnar(col.string(), *part).ok());
    fs::remove(paths[i]);
  }
  drop_sentinel(watch, "stream.stop");

  core::AtlasFileStudyConfig cfg;
  cfg.threads = 2;
  core::StreamConfig stream;
  core::StreamStats stats;
  auto study = core::run_atlas_stream(watch.string(), fx.isps, cfg, stream,
                                      {}, nullptr, &stats);
  ASSERT_TRUE(study.ok()) << study.status().to_string();
  EXPECT_EQ(stats.batches, 4u);
  EXPECT_EQ(atlas_signature(*study), want);
}

// ------------------------------------------------- streaming end to end

TEST(AtlasStream, MatchesOneShotAtAnyThreadCount) {
  const AtlasFixture& fx = atlas_fixture();
  const fs::path watch = temp_dir("stream_atlas_watch");
  const auto paths = write_atlas_batches(watch, fx.dataset, 4);
  drop_sentinel(watch, "stream.stop");

  // Reference: the one-shot file study over the same batches in order.
  core::AtlasFileStudyConfig ref_cfg;
  ref_cfg.threads = 1;
  auto ref = core::run_atlas_study_from_files(paths, fx.isps, ref_cfg);
  ASSERT_TRUE(ref.ok()) << ref.status().to_string();
  const std::string want = atlas_signature(*ref);

  for (unsigned threads : {1u, 4u}) {
    core::AtlasFileStudyConfig cfg;
    cfg.threads = threads;
    core::StreamConfig stream;
    stream.refinalize_every_batches = 2;
    std::uint64_t windowed = 0;
    std::string mid_signature;
    core::StreamStats stats;
    auto study = core::run_atlas_stream(
        watch.string(), fx.isps, cfg, stream,
        [&](const core::AtlasStudy& snap, const core::StreamStats& at) {
          ++windowed;
          EXPECT_GT(at.batches, 0u);
          mid_signature = atlas_signature(snap);
        },
        nullptr, &stats);
    ASSERT_TRUE(study.ok()) << study.status().to_string();
    EXPECT_EQ(atlas_signature(*study), want) << "threads=" << threads;
    EXPECT_EQ(stats.batches, 4u);
    EXPECT_GT(stats.records, 0u);
    // Windowed re-finalizations after batches 2 and 4, plus the final pass.
    EXPECT_EQ(windowed, 2u);
    EXPECT_EQ(stats.refinalizes, 3u);
    // The last windowed snapshot saw all four batches, so it already equals
    // the final study: snapshots never consume the accumulators.
    EXPECT_EQ(mid_signature, want);
  }
}

TEST(AtlasStream, ResumeAtDifferentThreadCountIsByteIdentical) {
  const AtlasFixture& fx = atlas_fixture();
  const fs::path watch = temp_dir("stream_atlas_resume_watch");
  const fs::path ckdir = temp_dir("stream_atlas_resume_ckpt");
  const std::string ckpt = (ckdir / "study.ckpt").string();
  const auto paths = write_atlas_batches(watch, fx.dataset, 4);

  core::AtlasFileStudyConfig ref_cfg;
  ref_cfg.threads = 1;
  auto ref = core::run_atlas_study_from_files(paths, fx.isps, ref_cfg);
  ASSERT_TRUE(ref.ok()) << ref.status().to_string();
  const std::string want = atlas_signature(*ref);

  // Phase 1: consume exactly two batches at threads=1, leaving the batch
  // high-water-mark checkpoint behind.
  {
    core::AtlasFileStudyConfig cfg;
    cfg.threads = 1;
    core::StreamConfig stream;
    stream.max_batches = 2;
    stream.checkpoint_path = ckpt;
    core::StreamStats stats;
    auto study =
        core::run_atlas_stream(watch.string(), fx.isps, cfg, stream, {},
                               nullptr, &stats);
    ASSERT_TRUE(study.ok()) << study.status().to_string();
    EXPECT_EQ(stats.batches, 2u);
  }

  auto ck = io::read_checkpoint(ckpt);
  ASSERT_TRUE(ck.ok()) << ck.status().to_string();
  EXPECT_EQ(ck->kind, io::kCkptAtlasStream);
  ASSERT_EQ(ck->consumed.size(), 2u);
  EXPECT_EQ(ck->consumed[0], "batch-000.csv");
  EXPECT_EQ(ck->consumed[1], "batch-001.csv");

  // Phase 2: resume at threads=4; only the unconsumed batches are replayed.
  drop_sentinel(watch, "stream.stop");
  {
    core::AtlasFileStudyConfig cfg;
    cfg.threads = 4;
    core::StreamConfig stream;
    stream.checkpoint_path = ckpt;
    stream.resume = &*ck;
    core::StreamStats stats;
    auto study =
        core::run_atlas_stream(watch.string(), fx.isps, cfg, stream, {},
                               nullptr, &stats);
    ASSERT_TRUE(study.ok()) << study.status().to_string();
    EXPECT_EQ(atlas_signature(*study), want);
    EXPECT_EQ(stats.batches, 4u);
  }

  // Retention: tmp + rename with a `.prev` survivor means the checkpoint
  // directory never holds more than the live file and one predecessor.
  std::set<std::string> entries;
  for (const auto& e : fs::directory_iterator(ckdir))
    entries.insert(e.path().filename().string());
  EXPECT_EQ(entries,
            (std::set<std::string>{"study.ckpt", "study.ckpt.prev"}));
}

TEST(AtlasStream, PreTrippedTokenCancelsWithDurableCheckpoint) {
  const AtlasFixture& fx = atlas_fixture();
  const fs::path watch = temp_dir("stream_atlas_cancel_watch");
  const fs::path ckdir = temp_dir("stream_atlas_cancel_ckpt");
  const std::string ckpt = (ckdir / "study.ckpt").string();
  const auto paths = write_atlas_batches(watch, fx.dataset, 3);
  drop_sentinel(watch, "stream.stop");

  core::AtlasFileStudyConfig ref_cfg;
  ref_cfg.threads = 1;
  auto ref = core::run_atlas_study_from_files(paths, fx.isps, ref_cfg);
  ASSERT_TRUE(ref.ok()) << ref.status().to_string();
  const std::string want = atlas_signature(*ref);

  core::ShutdownToken token;
  token.request();
  core::AtlasFileStudyConfig cfg;
  cfg.threads = 1;
  core::StreamConfig stream;
  stream.checkpoint_path = ckpt;
  stream.token = &token;
  auto cancelled =
      core::run_atlas_stream(watch.string(), fx.isps, cfg, stream);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(contains(cancelled.status().message(),
                       "interrupted by shutdown request"))
      << cancelled.status().to_string();
  ASSERT_TRUE(fs::exists(ckpt));

  // Resuming the zero-batch checkpoint replays everything and still lands
  // on the one-shot results.
  token.clear();
  auto ck = io::read_checkpoint(ckpt);
  ASSERT_TRUE(ck.ok()) << ck.status().to_string();
  EXPECT_TRUE(ck->consumed.empty());
  core::StreamConfig stream2;
  stream2.checkpoint_path = ckpt;
  stream2.token = &token;
  stream2.resume = &*ck;
  core::StreamStats stats;
  auto study = core::run_atlas_stream(watch.string(), fx.isps, cfg, stream2,
                                      {}, nullptr, &stats);
  ASSERT_TRUE(study.ok()) << study.status().to_string();
  EXPECT_EQ(atlas_signature(*study), want);
  EXPECT_EQ(stats.batches, 3u);
}

TEST(AtlasStream, ResumeValidationRejectsMismatches) {
  const AtlasFixture& fx = atlas_fixture();
  const fs::path watch = temp_dir("stream_atlas_validate_watch");
  const fs::path ckdir = temp_dir("stream_atlas_validate_ckpt");
  const std::string ckpt = (ckdir / "study.ckpt").string();
  write_atlas_batches(watch, fx.dataset, 2);

  core::AtlasFileStudyConfig cfg;
  cfg.threads = 1;

  // Missing watch directory.
  {
    core::StreamConfig stream;
    auto missing = core::run_atlas_stream(
        (watch / "does-not-exist").string(), fx.isps, cfg, stream);
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  }

  // A CDN-stream checkpoint cannot resume the Atlas stream.
  {
    io::StudyCheckpoint wrong;
    wrong.kind = io::kCkptCdnStream;
    core::StreamConfig stream;
    stream.resume = &wrong;
    auto rejected =
        core::run_atlas_stream(watch.string(), fx.isps, cfg, stream);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_TRUE(contains(rejected.status().message(), "cannot resume"))
        << rejected.status().to_string();
  }

  // A genuine checkpoint taken under different analysis options is refused:
  // the config fingerprint no longer matches.
  {
    core::StreamConfig stream;
    stream.max_batches = 1;
    stream.checkpoint_path = ckpt;
    auto phase1 =
        core::run_atlas_stream(watch.string(), fx.isps, cfg, stream);
    ASSERT_TRUE(phase1.ok()) << phase1.status().to_string();
    auto ck = io::read_checkpoint(ckpt);
    ASSERT_TRUE(ck.ok()) << ck.status().to_string();

    core::AtlasFileStudyConfig other = cfg;
    other.sanitize.min_observation_hours += 1;
    core::StreamConfig resume;
    resume.resume = &*ck;
    auto rejected =
        core::run_atlas_stream(watch.string(), fx.isps, other, resume);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_TRUE(contains(rejected.status().message(), "fingerprint"))
        << rejected.status().to_string();
  }
}

TEST(CdnStream, ResumeAtDifferentThreadCountIsByteIdentical) {
  const CdnFixture& fx = cdn_fixture();
  const fs::path watch = temp_dir("stream_cdn_watch");
  const fs::path ckdir = temp_dir("stream_cdn_ckpt");
  const std::string ckpt = (ckdir / "study.ckpt").string();
  const auto paths = write_cdn_batches(watch, fx.logs, 3);

  auto ref = core::run_cdn_study_from_files(paths, cdn_file_config(1));
  ASSERT_TRUE(ref.ok()) << ref.status().to_string();
  const std::string want = cdn_signature(*ref);

  // Phase 1 at threads=4 stops after one batch; phase 2 resumes at
  // threads=1 — the thread knob must not leak into results.
  {
    core::StreamConfig stream;
    stream.max_batches = 1;
    stream.checkpoint_path = ckpt;
    core::StreamStats stats;
    auto study = core::run_cdn_stream(watch.string(), cdn_file_config(4),
                                      stream, {}, nullptr, &stats);
    ASSERT_TRUE(study.ok()) << study.status().to_string();
    EXPECT_EQ(stats.batches, 1u);
  }

  auto ck = io::read_checkpoint(ckpt);
  ASSERT_TRUE(ck.ok()) << ck.status().to_string();
  EXPECT_EQ(ck->kind, io::kCkptCdnStream);
  ASSERT_EQ(ck->consumed.size(), 1u);

  drop_sentinel(watch, "stream.stop");
  {
    core::StreamConfig stream;
    stream.checkpoint_path = ckpt;
    stream.resume = &*ck;
    core::StreamStats stats;
    auto study = core::run_cdn_stream(watch.string(), cdn_file_config(1),
                                      stream, {}, nullptr, &stats);
    ASSERT_TRUE(study.ok()) << study.status().to_string();
    EXPECT_EQ(cdn_signature(*study), want);
    EXPECT_EQ(stats.batches, 3u);
  }
}

// ---------------------------------------------- injected-fault streaming

/// Every test arms failpoints and must leave the process disarmed even on
/// assertion failure; state is global (see core/failpoint.h).
class StreamFailpoints : public ::testing::Test {
 protected:
  void SetUp() override { core::disarm_failpoints(); }
  void TearDown() override { core::disarm_failpoints(); }
};

TEST_F(StreamFailpoints, TransientIoFaultsRetryAndConverge) {
  const AtlasFixture& fx = atlas_fixture();
  const fs::path watch = temp_dir("stream_fp_transient_watch");
  const fs::path ckdir = temp_dir("stream_fp_transient_ckpt");
  const std::string ckpt = (ckdir / "study.ckpt").string();
  const auto paths = write_atlas_batches(watch, fx.dataset, 3);
  drop_sentinel(watch, "stream.stop");

  // Reference computed before arming: the fault-free one-shot study.
  core::AtlasFileStudyConfig ref_cfg;
  ref_cfg.threads = 1;
  auto ref = core::run_atlas_study_from_files(paths, fx.isps, ref_cfg);
  ASSERT_TRUE(ref.ok()) << ref.status().to_string();
  const std::string want = atlas_signature(*ref);

  // One directory-scan failure, one checkpoint-write failure, one read
  // failure mid-batch: each transient, each inside the default 3-attempt
  // retry budget. The streamed results must still be byte-identical to
  // the fault-free reference — retried work never double-merges.
  ASSERT_TRUE(core::arm_failpoints("stream.scan=err@1; "
                                   "checkpoint.write=err(EIO)@1; "
                                   "readers.line=err@7")
                  .ok());
  obs::MetricsRegistry reg;
  core::AtlasFileStudyConfig cfg;
  cfg.threads = 1;
  cfg.metrics = &reg;
  core::StreamConfig stream;
  stream.checkpoint_path = ckpt;
  stream.poll_ms = 10;
  stream.io_retry_base_ms = 1;
  stream.io_retry_seed = 42;
  core::StreamStats stats;
  auto study = core::run_atlas_stream(watch.string(), fx.isps, cfg, stream,
                                      {}, nullptr, &stats);
  ASSERT_TRUE(study.ok()) << study.status().to_string();
  EXPECT_EQ(atlas_signature(*study), want);
  EXPECT_EQ(stats.batches, 3u);

  auto snap = reg.snapshot();
  EXPECT_GE(snap.counter("io.retries").value, 3u);
  EXPECT_EQ(snap.counter("io.giveups").value, 0u);
  EXPECT_EQ(snap.counter("checkpoint.write_failures").value, 1u);
}

TEST_F(StreamFailpoints, ExhaustedRetriesGiveUpResumably) {
  const AtlasFixture& fx = atlas_fixture();
  const fs::path watch = temp_dir("stream_fp_giveup_watch");
  const fs::path ckdir = temp_dir("stream_fp_giveup_ckpt");
  const std::string ckpt = (ckdir / "study.ckpt").string();
  const auto paths = write_atlas_batches(watch, fx.dataset, 3);
  drop_sentinel(watch, "stream.stop");

  core::AtlasFileStudyConfig ref_cfg;
  ref_cfg.threads = 1;
  auto ref = core::run_atlas_study_from_files(paths, fx.isps, ref_cfg);
  ASSERT_TRUE(ref.ok()) << ref.status().to_string();
  const std::string want = atlas_signature(*ref);

  // Every checkpoint write from the second on fails — a disk going hard
  // read-only after one durable snapshot. The run must give up resumably:
  // kCancelled, pointing at the intact high-water-mark checkpoint.
  ASSERT_TRUE(core::arm_failpoints("checkpoint.write=err(ENOSPC)@2..").ok());
  core::AtlasFileStudyConfig cfg;
  cfg.threads = 1;
  core::StreamConfig stream;
  stream.checkpoint_path = ckpt;
  stream.poll_ms = 10;
  stream.io_retry_attempts = 2;
  stream.io_retry_base_ms = 1;
  auto gave_up =
      core::run_atlas_stream(watch.string(), fx.isps, cfg, stream);
  ASSERT_FALSE(gave_up.ok());
  EXPECT_EQ(gave_up.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(contains(gave_up.status().message(), "is intact"))
      << gave_up.status().to_string();

  // The checkpoint it points at is genuinely loadable, and resuming it
  // fault-free finishes the study byte-identical to the reference.
  core::disarm_failpoints();
  auto ck = io::read_checkpoint(ckpt);
  ASSERT_TRUE(ck.ok()) << ck.status().to_string();
  ASSERT_EQ(ck->consumed.size(), 1u);
  core::StreamConfig resume;
  resume.checkpoint_path = ckpt;
  resume.resume = &*ck;
  core::StreamStats stats;
  auto study = core::run_atlas_stream(watch.string(), fx.isps, cfg, resume,
                                      {}, nullptr, &stats);
  ASSERT_TRUE(study.ok()) << study.status().to_string();
  EXPECT_EQ(atlas_signature(*study), want);
  EXPECT_EQ(stats.batches, 3u);
}

TEST(StreamDriver, ReusesOneExecutorAcrossFollows) {
  // The long-lived driver owns the pool; back-to-back follows on one driver
  // must behave exactly like fresh runs (state is per-follow, not per-pool).
  const AtlasFixture& fx = atlas_fixture();
  const fs::path watch = temp_dir("stream_driver_watch");
  const auto paths = write_atlas_batches(watch, fx.dataset, 2);
  drop_sentinel(watch, "stream.stop");

  core::AtlasFileStudyConfig ref_cfg;
  ref_cfg.threads = 1;
  auto ref = core::run_atlas_study_from_files(paths, fx.isps, ref_cfg);
  ASSERT_TRUE(ref.ok()) << ref.status().to_string();
  const std::string want = atlas_signature(*ref);

  core::StreamDriver driver(2);
  EXPECT_EQ(driver.thread_count(), 2u);
  core::AtlasFileStudyConfig cfg;  // threads ignored: the driver's pool runs
  for (int round = 0; round < 2; ++round) {
    core::StreamConfig stream;
    core::StreamStats stats;
    auto study = driver.follow_atlas(watch.string(), fx.isps, cfg, stream, {},
                                     nullptr, &stats);
    ASSERT_TRUE(study.ok()) << study.status().to_string();
    EXPECT_EQ(atlas_signature(*study), want) << "round=" << round;
    EXPECT_EQ(stats.batches, 2u);
  }
}

// ------------------------------------------- resource-governed streaming
//
// The degradation ladder (core/resource.h) must be results-safe: every
// test here pins the final CSVs byte-identical to the unpressured
// reference while asserting the governor's named `resource.*` counters
// actually moved. Probes are injected, so pressure is deterministic.

constexpr std::uint64_t kMiB = 1024 * 1024;

TEST(StreamGovernor, MemoryPressureDefersIntermediateRefinalizes) {
  const AtlasFixture& fx = atlas_fixture();
  const fs::path watch = temp_dir("stream_gov_mem_watch");
  const auto paths = write_atlas_batches(watch, fx.dataset, 4);
  drop_sentinel(watch, "stream.stop");

  core::AtlasFileStudyConfig ref_cfg;
  ref_cfg.threads = 1;
  auto ref = core::run_atlas_study_from_files(paths, fx.isps, ref_cfg);
  ASSERT_TRUE(ref.ok()) << ref.status().to_string();
  const std::string want = atlas_signature(*ref);

  for (unsigned threads : {1u, 4u}) {
    const fs::path ckdir =
        temp_dir("stream_gov_mem_ckpt_" + std::to_string(threads));
    obs::MetricsRegistry govreg;
    core::ResourceBudgets budgets;
    budgets.max_rss_mb = 1;
    budgets.sample_interval_ms = 0;
    budgets.metrics = &govreg;
    budgets.rss_probe = [] { return std::uint64_t(4096) * kMiB; };  // over
    core::ResourceGovernor governor(budgets);

    core::AtlasFileStudyConfig cfg;
    cfg.threads = threads;
    core::StreamConfig stream;
    stream.refinalize_every_batches = 2;
    stream.checkpoint_path = (ckdir / "study.ckpt").string();
    stream.governor = &governor;
    std::uint64_t windowed = 0;
    core::StreamStats stats;
    auto study = core::run_atlas_stream(
        watch.string(), fx.isps, cfg, stream,
        [&](const core::AtlasStudy&, const core::StreamStats&) {
          ++windowed;
        },
        nullptr, &stats);
    ASSERT_TRUE(study.ok()) << study.status().to_string();
    // Intermediate publications were all deferred; the final pass still
    // ran and the results are byte-identical to the unpressured run.
    EXPECT_EQ(windowed, 0u) << "threads=" << threads;
    EXPECT_EQ(stats.refinalizes, 1u);
    EXPECT_EQ(atlas_signature(*study), want) << "threads=" << threads;
    auto snap = govreg.snapshot();
    EXPECT_GE(snap.counter("resource.refinalize_deferred").value, 1u);
    // The rising edge of pressure forced one early checkpoint.
    EXPECT_GE(snap.counter("resource.early_checkpoints").value, 1u);
    EXPECT_TRUE(fs::exists(stream.checkpoint_path));
  }
}

TEST(StreamGovernor, DiskSoftPressureDropsRetentionAndShedsQuarantine) {
  const AtlasFixture& fx = atlas_fixture();
  const fs::path watch = temp_dir("stream_gov_soft_watch");
  const fs::path ckdir = temp_dir("stream_gov_soft_ckpt");
  const auto paths = write_atlas_batches(watch, fx.dataset, 4);
  drop_sentinel(watch, "stream.stop");
  // One malformed line in the first batch: rejected (and normally
  // quarantined) identically by the reference and the streamed run.
  {
    std::ofstream out(paths[0], std::ios::binary | std::ios::app);
    out << "this,is,not,an,echo,record\n";
  }

  core::AtlasFileStudyConfig cfg;
  cfg.threads = 1;
  std::ostringstream ref_quarantine;
  cfg.reader.quarantine = &ref_quarantine;
  auto ref = core::run_atlas_study_from_files(paths, fx.isps, cfg);
  ASSERT_TRUE(ref.ok()) << ref.status().to_string();
  const std::string want = atlas_signature(*ref);
  EXPECT_TRUE(contains(ref_quarantine.str(), "this,is,not"));

  obs::MetricsRegistry govreg;
  core::ResourceBudgets budgets;
  budgets.min_disk_free_mb = 100;
  budgets.sample_interval_ms = 0;
  budgets.metrics = &govreg;
  budgets.disk_paths = {ckdir.string()};
  // Between min/2 and min: soft but never hard.
  budgets.disk_free_probe = [](const std::string&) {
    return std::uint64_t(80) * kMiB;
  };
  core::ResourceGovernor governor(budgets);

  std::ostringstream stream_quarantine;
  cfg.reader.quarantine = &stream_quarantine;
  core::StreamConfig stream;
  stream.checkpoint_path = (ckdir / "study.ckpt").string();
  stream.governor = &governor;
  core::StreamStats stats;
  auto study = core::run_atlas_stream(watch.string(), fx.isps, cfg, stream,
                                      {}, nullptr, &stats);
  ASSERT_TRUE(study.ok()) << study.status().to_string();
  EXPECT_EQ(atlas_signature(*study), want);
  EXPECT_EQ(stats.batches, 4u);

  // Keep-last-1 retention: four checkpoint writes, no `.prev` survivor.
  std::set<std::string> entries;
  for (const auto& e : fs::directory_iterator(ckdir))
    entries.insert(e.path().filename().string());
  EXPECT_EQ(entries, (std::set<std::string>{"study.ckpt"}));

  // The quarantine copy was shed — but the reject stayed counted and the
  // shed volume is observable.
  EXPECT_TRUE(stream_quarantine.str().empty()) << stream_quarantine.str();
  auto snap = govreg.snapshot();
  EXPECT_GE(snap.counter("resource.retention_drops").value, 1u);
  EXPECT_GE(snap.counter("resource.quarantine_shed").value, 1u);
}

TEST(StreamGovernor, DiskHardPressurePausesIngestUntilSpaceRecovers) {
  const AtlasFixture& fx = atlas_fixture();
  const fs::path watch = temp_dir("stream_gov_hard_watch");
  const fs::path ckdir = temp_dir("stream_gov_hard_ckpt");
  const auto paths = write_atlas_batches(watch, fx.dataset, 3);
  drop_sentinel(watch, "stream.stop");

  core::AtlasFileStudyConfig ref_cfg;
  ref_cfg.threads = 1;
  auto ref = core::run_atlas_study_from_files(paths, fx.isps, ref_cfg);
  ASSERT_TRUE(ref.ok()) << ref.status().to_string();
  const std::string want = atlas_signature(*ref);

  // The first few probes see a nearly full disk (below min/2: hard), then
  // space recovers — as if an operator cleared logs mid-pause.
  obs::MetricsRegistry govreg;
  std::uint64_t probe_calls = 0;
  core::ResourceBudgets budgets;
  budgets.min_disk_free_mb = 100;
  budgets.sample_interval_ms = 0;
  budgets.metrics = &govreg;
  budgets.disk_paths = {ckdir.string()};
  budgets.disk_free_probe = [&](const std::string&) {
    return (++probe_calls <= 3 ? std::uint64_t(10) : std::uint64_t(10000)) *
           kMiB;
  };
  core::ResourceGovernor governor(budgets);

  core::AtlasFileStudyConfig cfg;
  cfg.threads = 1;
  core::StreamConfig stream;
  stream.checkpoint_path = (ckdir / "study.ckpt").string();
  stream.governor = &governor;
  stream.poll_ms = 5;
  core::StreamStats stats;
  auto study = core::run_atlas_stream(watch.string(), fx.isps, cfg, stream,
                                      {}, nullptr, &stats);
  ASSERT_TRUE(study.ok()) << study.status().to_string();
  EXPECT_EQ(atlas_signature(*study), want);
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_GE(govreg.snapshot().counter("resource.ingest_pauses").value, 1u);
}

TEST(StreamGovernor, LagBackpressureSkipsIntermediateRefinalizes) {
  const AtlasFixture& fx = atlas_fixture();
  const fs::path watch = temp_dir("stream_gov_lag_watch");
  const auto paths = write_atlas_batches(watch, fx.dataset, 4);
  drop_sentinel(watch, "stream.stop");
  // Every batch is an hour old by mtime: the stream is far behind its
  // producer, so intermediate publications must yield to catch-up.
  for (const auto& p : paths)
    fs::last_write_time(
        p, fs::file_time_type::clock::now() - std::chrono::hours(1));

  core::AtlasFileStudyConfig ref_cfg;
  ref_cfg.threads = 1;
  auto ref = core::run_atlas_study_from_files(paths, fx.isps, ref_cfg);
  ASSERT_TRUE(ref.ok()) << ref.status().to_string();
  const std::string want = atlas_signature(*ref);

  obs::MetricsRegistry reg;
  core::AtlasFileStudyConfig cfg;
  cfg.threads = 1;
  cfg.metrics = &reg;
  core::StreamConfig stream;
  stream.refinalize_every_batches = 2;
  stream.max_lag_seconds = 1.0;
  std::uint64_t windowed = 0;
  core::StreamStats stats;
  auto study = core::run_atlas_stream(
      watch.string(), fx.isps, cfg, stream,
      [&](const core::AtlasStudy&, const core::StreamStats&) { ++windowed; },
      nullptr, &stats);
  ASSERT_TRUE(study.ok()) << study.status().to_string();
  EXPECT_EQ(windowed, 0u);
  EXPECT_EQ(atlas_signature(*study), want);
  EXPECT_GE(reg.snapshot().counter("stream.refinalize_skipped").value, 1u);
}

TEST(StreamGovernor, BoundedBacklogStillConsumesEveryBatch) {
  const AtlasFixture& fx = atlas_fixture();
  const fs::path watch = temp_dir("stream_gov_backlog_watch");
  const auto paths = write_atlas_batches(watch, fx.dataset, 4);
  drop_sentinel(watch, "stream.stop");

  core::AtlasFileStudyConfig ref_cfg;
  ref_cfg.threads = 1;
  auto ref = core::run_atlas_study_from_files(paths, fx.isps, ref_cfg);
  ASSERT_TRUE(ref.ok()) << ref.status().to_string();
  const std::string want = atlas_signature(*ref);

  // Admit one batch per sweep: a four-batch burst takes four sweeps, but
  // nothing is dropped and the sentinel cannot finalize early.
  core::AtlasFileStudyConfig cfg;
  cfg.threads = 1;
  core::StreamConfig stream;
  stream.max_backlog_batches = 1;
  stream.poll_ms = 5;
  core::StreamStats stats;
  auto study = core::run_atlas_stream(watch.string(), fx.isps, cfg, stream,
                                      {}, nullptr, &stats);
  ASSERT_TRUE(study.ok()) << study.status().to_string();
  EXPECT_EQ(stats.batches, 4u);
  EXPECT_EQ(atlas_signature(*study), want);
}

}  // namespace
}  // namespace dynamips
