// dataset_roundtrip — running the pipeline on external data.
//
// The analyzers consume plain record types, not the simulator: this example
// serializes a simulated probe's IP-echo history and an ISP's association
// log to CSV, reads them back through io/, and shows that the analysis of
// the round-tripped data is identical. The same path loads real datasets
// converted to the documented CSV schemas.
#include <cstdio>
#include <sstream>

#include "atlas/generator.h"
#include "cdn/generator.h"
#include "core/assoc.h"
#include "core/durations.h"
#include "core/sanitize.h"
#include "io/dataset_io.h"
#include "simnet/isp.h"

using namespace dynamips;

int main() {
  // --- Atlas echo records ----------------------------------------------
  atlas::AtlasConfig acfg;
  acfg.probe_scale = 0.02;
  acfg.window_hours = 4380;  // six months
  atlas::AtlasSimulator sim({*simnet::find_isp("DTAG")}, acfg);
  atlas::ProbeSeries original = sim.series_for(0);

  std::stringstream buf;
  io::write_echo_csv(buf, original);
  std::printf("echo CSV: %zu records, %zu bytes\n", original.records.size(),
              buf.str().size());

  auto loaded = io::read_echo_csv(buf);
  if (!loaded) {
    std::printf("FAILED to parse round-tripped echo CSV\n");
    return 1;
  }
  auto spans_a = core::extract_spans4(core::from_series(original).v4);
  auto spans_b = core::extract_spans4(core::from_series(*loaded).v4);
  std::printf("v4 spans original=%zu loaded=%zu -> %s\n", spans_a.size(),
              spans_b.size(),
              spans_a.size() == spans_b.size() ? "identical" : "MISMATCH");

  // --- CDN association records ------------------------------------------
  cdn::CdnConfig ccfg;
  ccfg.subscriber_scale = 0.01;
  auto population = cdn::default_cdn_population(ccfg.subscriber_scale);
  cdn::CdnSimulator csim(population, ccfg);
  cdn::AssociationLog log = csim.generate(0);

  std::stringstream abuf;
  io::write_assoc_csv(abuf, log);
  auto alog = io::read_assoc_csv(abuf);
  if (!alog) {
    std::printf("FAILED to parse round-tripped association CSV\n");
    return 1;
  }
  alog->asn = log.asn;
  alog->registry = log.registry;

  core::CdnAnalyzer a1({}, csim.mobile_asns()), a2({}, csim.mobile_asns());
  a1.add_log(log);
  a2.add_log(*alog);
  std::printf("assoc CSV: %zu records; tuples analyzed original=%llu "
              "loaded=%llu -> %s\n",
              log.records.size(), (unsigned long long)a1.total_tuples(),
              (unsigned long long)a2.total_tuples(),
              a1.total_tuples() == a2.total_tuples() ? "identical"
                                                     : "MISMATCH");
  return 0;
}
