// dataset_roundtrip — running the pipeline on external data.
//
// The analyzers consume plain record types, not the simulator: this example
// serializes a simulated probe's IP-echo history and an ISP's association
// log to CSV, reads them back through io/, and shows that the analysis of
// the round-tripped data is identical. The same path loads real datasets
// converted to the documented CSV schemas.
//
// Export mode writes full multi-probe / multi-ISP datasets to disk instead
// — the fixture generator for `dynamips_study --atlas-in/--cdn-in` and the
// CI corruption-resilience check:
//   dataset_roundtrip --echo-out echo.csv --assoc-out assoc.csv
//       [--scale S] [--window HOURS] [--seed N]
// An output path ending in `.col` switches that file to the binary
// columnar batch format (io/columnar.h) — same records, same downstream
// results, ~an order of magnitude faster to ingest.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "atlas/generator.h"
#include "cdn/generator.h"
#include "core/assoc.h"
#include "core/durations.h"
#include "core/sanitize.h"
#include "io/atomic_file.h"
#include "io/columnar.h"
#include "io/dataset_io.h"
#include "io/readers.h"
#include "simnet/isp.h"

using namespace dynamips;

namespace {

int export_datasets(const std::string& echo_out, const std::string& assoc_out,
                    double scale, std::uint64_t window, std::uint64_t seed) {
  if (!echo_out.empty()) {
    atlas::AtlasConfig acfg;
    acfg.probe_scale = scale;
    acfg.window_hours = window;
    acfg.seed = seed;
    atlas::AtlasSimulator sim(simnet::paper_isps(), acfg);
    std::vector<atlas::ProbeSeries> dataset;
    dataset.reserve(sim.probe_count());
    for (std::size_t i = 0; i < sim.probe_count(); ++i)
      dataset.push_back(sim.series_for(i));
    if (io::is_columnar_path(echo_out)) {
      if (core::Status st = io::write_echo_columnar(echo_out, dataset);
          !st.ok()) {
        std::fprintf(stderr, "cannot write %s: %s\n", echo_out.c_str(),
                     st.message().c_str());
        return 1;
      }
    } else {
      io::AtomicFileWriter out(echo_out);
      if (!out.ok()) {
        std::fprintf(stderr, "cannot open %s\n", echo_out.c_str());
        return 1;
      }
      io::write_echo_dataset(out.stream(), dataset);
      if (core::Status st = out.commit(); !st.ok()) {
        std::fprintf(stderr, "cannot write %s: %s\n", echo_out.c_str(),
                     st.message().c_str());
        return 1;
      }
    }
    std::printf("wrote %zu probes to %s\n", dataset.size(),
                echo_out.c_str());
  }
  if (!assoc_out.empty()) {
    cdn::CdnConfig ccfg;
    ccfg.subscriber_scale = scale;
    ccfg.seed = seed;
    cdn::CdnSimulator sim(cdn::default_cdn_population(scale), ccfg);
    std::vector<cdn::AssociationLog> dataset;
    dataset.reserve(sim.entry_count());
    for (std::size_t i = 0; i < sim.entry_count(); ++i)
      dataset.push_back(sim.generate(i));
    if (io::is_columnar_path(assoc_out)) {
      if (core::Status st = io::write_assoc_columnar(assoc_out, dataset);
          !st.ok()) {
        std::fprintf(stderr, "cannot write %s: %s\n", assoc_out.c_str(),
                     st.message().c_str());
        return 1;
      }
    } else {
      io::AtomicFileWriter out(assoc_out);
      if (!out.ok()) {
        std::fprintf(stderr, "cannot open %s\n", assoc_out.c_str());
        return 1;
      }
      io::write_assoc_dataset(out.stream(), dataset);
      if (core::Status st = out.commit(); !st.ok()) {
        std::fprintf(stderr, "cannot write %s: %s\n", assoc_out.c_str(),
                     st.message().c_str());
        return 1;
      }
    }
    std::printf("wrote %zu association logs to %s\n", dataset.size(),
                assoc_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string echo_out, assoc_out;
  double scale = 0.05;
  std::uint64_t window = 6000, seed = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--echo-out F] [--assoc-out F] [--scale S] "
                     "[--window HOURS] [--seed N]\n",
                     argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--echo-out")
      echo_out = next();
    else if (arg == "--assoc-out")
      assoc_out = next();
    else if (arg == "--scale")
      scale = std::atof(next());
    else if (arg == "--window")
      window = std::strtoull(next(), nullptr, 10);
    else if (arg == "--seed")
      seed = std::strtoull(next(), nullptr, 10);
    else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (!echo_out.empty() || !assoc_out.empty())
    return export_datasets(echo_out, assoc_out, scale, window, seed);
  // --- Atlas echo records ----------------------------------------------
  atlas::AtlasConfig acfg;
  acfg.probe_scale = 0.02;
  acfg.window_hours = 4380;  // six months
  atlas::AtlasSimulator sim({*simnet::find_isp("DTAG")}, acfg);
  atlas::ProbeSeries original = sim.series_for(0);

  std::stringstream buf;
  io::write_echo_csv(buf, original);
  std::printf("echo CSV: %zu records, %zu bytes\n", original.records.size(),
              buf.str().size());

  auto loaded = io::read_echo_csv(buf);
  if (!loaded) {
    std::printf("FAILED to parse round-tripped echo CSV\n");
    return 1;
  }
  auto spans_a = core::extract_spans4(core::from_series(original).v4);
  auto spans_b = core::extract_spans4(core::from_series(*loaded).v4);
  std::printf("v4 spans original=%zu loaded=%zu -> %s\n", spans_a.size(),
              spans_b.size(),
              spans_a.size() == spans_b.size() ? "identical" : "MISMATCH");

  // --- CDN association records ------------------------------------------
  cdn::CdnConfig ccfg;
  ccfg.subscriber_scale = 0.01;
  auto population = cdn::default_cdn_population(ccfg.subscriber_scale);
  cdn::CdnSimulator csim(population, ccfg);
  cdn::AssociationLog log = csim.generate(0);

  std::stringstream abuf;
  io::write_assoc_csv(abuf, log);
  auto alog = io::read_assoc_csv(abuf);
  if (!alog) {
    std::printf("FAILED to parse round-tripped association CSV\n");
    return 1;
  }
  alog->asn = log.asn;
  alog->registry = log.registry;

  core::CdnAnalyzer a1({}, csim.mobile_asns()), a2({}, csim.mobile_asns());
  a1.add_log(log);
  a2.add_log(*alog);
  std::printf("assoc CSV: %zu records; tuples analyzed original=%llu "
              "loaded=%llu -> %s\n",
              log.records.size(), (unsigned long long)a1.total_tuples(),
              (unsigned long long)a2.total_tuples(),
              a1.total_tuples() == a2.total_tuples() ? "identical"
                                                     : "MISMATCH");
  return 0;
}
