// quickstart — a five-minute tour of the library.
//
// Parses addresses, computes the paper's two key per-address quantities
// (common prefix length and trailing zero bits), simulates one small ISP,
// and runs the duration analysis end to end.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/pipeline.h"
#include "netaddr/ipv6.h"
#include "simnet/isp.h"
#include "stats/ttf.h"

using namespace dynamips;

int main() {
  // --- 1. Address primitives -------------------------------------------
  auto a = *net::IPv6Address::parse("2604:3d08:4b80:aa00::1");
  auto b = *net::IPv6Address::parse("2604:3d08:4b80:aaf0::1");
  std::printf("CPL(%s, %s) = %d bits\n", a.to_string().c_str(),
              b.to_string().c_str(), net::common_prefix_length(a, b));
  std::printf("trailing zeros of %s's /64: %d -> inferred delegation /%d\n",
              a.to_string().c_str(),
              net::trailing_zero_bits64(a.network64()),
              net::inferred_delegation_from_zeros(a.network64()));

  // --- 2. Simulate one ISP and analyze it ------------------------------
  // DTAG: 24-hour renumbering, /56 delegations, /40 pools, scrambling CPEs.
  auto dtag = *simnet::find_isp("DTAG");
  core::AtlasStudyConfig cfg;
  cfg.atlas.probe_scale = 0.1;      // ~59 probes
  cfg.atlas.window_hours = 8760;    // one simulated year
  auto study = core::run_atlas_study({dtag}, cfg);

  const auto& d = study.durations.at(dtag.asn);
  std::printf("\nDTAG, one simulated year, %llu probes:\n",
              (unsigned long long)d.probes);
  std::printf("  v4 changes: %llu   v6 changes: %llu   co-occurrence: %.0f%%\n",
              (unsigned long long)d.v4_changes,
              (unsigned long long)d.v6_changes, 100.0 * d.cooccurrence());

  auto thresholds = stats::fig1_thresholds();
  auto curve = d.v6.cumulative(thresholds);
  std::printf("  cumulative total time fraction of v6 /64 durations:\n   ");
  for (std::size_t i = 0; i < thresholds.size(); ++i)
    std::printf(" %s=%.2f", stats::duration_label(thresholds[i]), curve[i]);
  std::printf("\n");

  // --- 3. Subscriber-prefix inference ----------------------------------
  auto it = study.subscriber_inference.find(dtag.asn);
  if (it != study.subscriber_inference.end()) {
    int at56 = 0;
    for (const auto& inf : it->second) at56 += inf.inferred_len == 56;
    std::printf("  zero-bits inference: %d of %zu probes resolve to /56 "
                "(ground truth: DTAG delegates /56)\n",
                at56, it->second.size());
  }
  return 0;
}
