// anonymization_audit — the §6 privacy application.
//
// Auditing "anonymization by truncation": Google Analytics-style IP
// masking truncates IPv6 addresses to /48 before storage. The paper shows
// this is fallacious where ISPs delegate entire /48s to single subscribers
// (Netcologne). This tool measures, per ISP, the share of subscribers for
// whom a given truncation length still identifies a single household, and
// recommends the truncation needed to cover a whole dynamic pool.
#include <cstdio>
#include <map>

#include "core/pipeline.h"
#include "simnet/isp.h"

using namespace dynamips;

int main() {
  core::AtlasStudyConfig cfg;
  cfg.atlas.probe_scale = 0.25;
  auto study = core::run_atlas_study(simnet::paper_isps(), cfg);

  const int kTruncations[] = {64, 56, 48};
  std::printf("Anonymization audit — share of subscribers still uniquely "
              "identified after truncating stored addresses\n\n");
  std::printf("%-14s %10s %10s %10s %22s\n", "AS", "keep /64", "keep /56",
              "keep /48", "safe truncation");

  for (const auto& isp : simnet::paper_isps()) {
    auto it = study.subscriber_inference.find(isp.asn);
    if (it == study.subscriber_inference.end() || it->second.empty())
      continue;
    double total = double(it->second.size());

    std::printf("%-14s", isp.name.c_str());
    for (int keep : kTruncations) {
      // A truncated prefix still identifies one subscriber when the
      // subscriber's whole delegation fits inside (or equals) it.
      int exposed = 0;
      for (const auto& inf : it->second) exposed += inf.inferred_len <= keep;
      std::printf(" %9.0f%%", 100.0 * exposed / total);
    }

    // Safe truncation: strictly shorter than the pool boundary, so each
    // stored prefix aggregates a whole pool of subscribers.
    int pool = 0;
    if (auto pit = study.pool_inference.find(isp.asn);
        pit != study.pool_inference.end() && !pit->second.empty()) {
      std::map<int, int> hist;
      for (const auto& p : pit->second) ++hist[p.pool_len];
      int best = 0, n = 0;
      for (auto& [len, c] : hist)
        if (c > n) { best = len; n = c; }
      pool = best;
    }
    if (pool > 0)
      std::printf("        <= /%d (pool)", pool);
    std::printf("\n");
  }

  std::printf("\nReading Netcologne's row: truncating to /48 leaves most "
              "subscribers uniquely identified, because the ISP delegates "
              "whole /48s to households — exactly the paper's warning "
              "about fixed-length masking (§6). Safe aggregation must use "
              "per-network pool boundaries instead.\n");
  return 0;
}
