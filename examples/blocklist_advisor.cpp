// blocklist_advisor — the §6 host-reputation application.
//
// For each ISP, derives two operational recommendations for blocklist
// operators from measured assignment dynamics:
//   * how long a blocklist entry can stay active before it mostly punishes
//     an innocent re-assignee (the time by which X% of assignments have
//     rotated), and
//   * what prefix granularity to block in IPv6 — wide enough that the
//     offender cannot dodge by rotating inside their delegation, narrow
//     enough to avoid collateral damage to the whole pool.
#include <algorithm>
#include <cstdio>
#include <map>

#include "core/pipeline.h"
#include "simnet/isp.h"

using namespace dynamips;

namespace {

// Smallest duration threshold by which `target` of the assignment time has
// rotated (i.e. P[assignment still held] < 1 - target).
simnet::Hour safe_block_hours(const stats::TotalTimeFraction& ttf,
                              double target) {
  if (ttf.empty()) return 0;
  double acc = 0;
  for (const auto& [hours, count] : ttf.counts()) {
    acc += double(count) * double(hours) / double(ttf.total_hours());
    if (acc >= target) return hours;
  }
  return ttf.counts().rbegin()->first;
}

}  // namespace

int main() {
  core::AtlasStudyConfig cfg;
  cfg.atlas.probe_scale = 0.25;
  auto study = core::run_atlas_study(simnet::paper_isps(), cfg);

  std::printf("Blocklist advisor — per-ISP recommendations derived from "
              "measured assignment dynamics\n\n");
  std::printf("%-14s %16s %16s %18s %14s\n", "AS", "v4 block <= (h)",
              "v6 block <= (h)", "v6 granularity", "pool (avoid >)");
  for (const auto& isp : simnet::paper_isps()) {
    auto dit = study.durations.find(isp.asn);
    if (dit == study.durations.end()) continue;
    const auto& d = dit->second;

    // Block no longer than the time by which half the population rotated.
    stats::TotalTimeFraction v4_all = d.v4_nds;
    v4_all.merge(d.v4_ds);
    simnet::Hour v4_block = safe_block_hours(v4_all, 0.5);
    simnet::Hour v6_block = safe_block_hours(d.v6, 0.5);

    // Granularity: the modal inferred subscriber prefix — blocking longer
    // prefixes is evadable, shorter ones over-block.
    int granularity = 64;
    auto iit = study.subscriber_inference.find(isp.asn);
    if (iit != study.subscriber_inference.end() && !iit->second.empty()) {
      std::map<int, int> hist;
      for (const auto& inf : iit->second) ++hist[inf.inferred_len];
      granularity =
          std::max_element(hist.begin(), hist.end(),
                           [](auto& a, auto& b) { return a.second < b.second; })
              ->first;
    }

    // Pool boundary: blocking anything shorter than this hits a whole
    // dynamic pool of unrelated subscribers.
    int pool = 0;
    auto pit = study.pool_inference.find(isp.asn);
    if (pit != study.pool_inference.end() && !pit->second.empty()) {
      std::map<int, int> hist;
      for (const auto& p : pit->second) ++hist[p.pool_len];
      pool =
          std::max_element(hist.begin(), hist.end(),
                           [](auto& a, auto& b) { return a.second < b.second; })
              ->first;
    }

    char pool_text[16];
    if (pool > 0)
      std::snprintf(pool_text, sizeof pool_text, "/%d", pool);
    else
      std::snprintf(pool_text, sizeof pool_text, "n/a");
    std::printf("%-14s %16llu %16llu %17s%d %14s\n", isp.name.c_str(),
                (unsigned long long)v4_block, (unsigned long long)v6_block,
                "/", granularity, pool_text);
  }
  std::printf("\nReading DTAG's row: a v4 blocklist entry older than ~a day "
              "mostly hits innocent parties; block the /56 (not the /64 — "
              "scrambling CPEs rotate /64s inside the delegation), and "
              "never block shorter than the /40 pool.\n");
  return 0;
}
