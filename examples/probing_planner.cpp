// probing_planner — the §6 active-scanning application.
//
// A measurement target (e.g. a CPE with a stable EUI-64 IID) disappears
// when its delegated prefix changes. This tool quantifies, per ISP, how
// large the search space for re-finding it is under three scoping
// strategies the paper discusses:
//   * naive: rescan the whole BGP announcement (hopeless in IPv6),
//   * pool-scoped: scan /64s inside the inferred dynamic pool (§5.2),
//   * subscriber-stride-scoped: additionally step at the inferred
//     delegated-prefix stride, since zero-filling CPEs only occupy the
//     first /64 of each delegation (§5.3).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "core/pipeline.h"
#include "simnet/isp.h"

using namespace dynamips;

namespace {

double log2_search_space(int from_len, int to_len) {
  return double(to_len - from_len);
}

int modal_len(const std::map<int, int>& hist, int fallback) {
  if (hist.empty()) return fallback;
  return std::max_element(hist.begin(), hist.end(), [](auto& a, auto& b) {
           return a.second < b.second;
         })->first;
}

}  // namespace

int main() {
  core::AtlasStudyConfig cfg;
  cfg.atlas.probe_scale = 0.25;
  auto study = core::run_atlas_study(simnet::paper_isps(), cfg);

  std::printf("Probing planner — search space (log2 of /64s to scan) for "
              "re-finding a device after a prefix change\n\n");
  std::printf("%-14s %8s %12s %12s %16s %22s\n", "AS", "BGP", "pool len",
              "deleg len", "scan-pool (2^n)", "scan-pool+stride (2^n)");

  for (const auto& isp : simnet::paper_isps()) {
    if (!isp.in_table1) continue;
    int bgp_len = isp.bgp6.empty() ? 32 : isp.bgp6.front().length();

    std::map<int, int> pool_hist;
    if (auto it = study.pool_inference.find(isp.asn);
        it != study.pool_inference.end())
      for (const auto& p : it->second) ++pool_hist[p.pool_len];
    int pool_len = modal_len(pool_hist, bgp_len);

    std::map<int, int> deleg_hist;
    if (auto it = study.subscriber_inference.find(isp.asn);
        it != study.subscriber_inference.end())
      for (const auto& inf : it->second) ++deleg_hist[inf.inferred_len];
    int deleg_len = modal_len(deleg_hist, 64);

    double naive = log2_search_space(bgp_len, 64);
    double pool = log2_search_space(pool_len, 64);
    // Stepping at the delegation stride: one probe per delegation inside
    // the pool instead of one per /64.
    double strided = log2_search_space(pool_len, deleg_len);

    std::printf("%-14s %7d %12d %12d %13.0f bits %19.0f bits  (naive: %.0f)\n",
                isp.name.c_str(), bgp_len, pool_len, deleg_len, pool,
                strided, naive);
  }

  std::printf("\nReading DTAG's row: instead of 2^45 /64s under the /19 "
              "announcement, an EUI-64 target is findable by scanning "
              "2^24 /64s inside its /40 pool — or just 2^16 probes when "
              "stepping at the /56 delegation stride (paper: search space "
              "reduced from 2^45 to 2^24 networks, §5.2).\n");
  return 0;
}
