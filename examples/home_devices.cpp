// home_devices — the §2.3 privacy story at device granularity.
//
// Simulates a DTAG household (daily prefix renumbering) populated with
// devices using the three IID strategies, then shows what an outside
// observer who records full addresses can and cannot link:
//  * the EUI-64 printer is one track spanning every network the home held;
//  * the RFC 4941 phone fragments into a new identity every day;
//  * the RFC 7217 laptop is stable per network but unlinkable across;
//  * and regardless of device strategy, the /64 network component itself
//    links the whole household for as long as the delegation lasts — the
//    paper's central privacy point.
#include <cstdio>

#include "core/tracking.h"
#include "simnet/home.h"
#include "simnet/isp.h"
#include "simnet/subscriber.h"

using namespace dynamips;

int main() {
  auto isp = *simnet::find_isp("DTAG");
  isp.static_share = 0;
  isp.dualstack_share = 1;
  simnet::TimelineGenerator gen(isp, 2024);
  auto tl = gen.generate(/*id=*/7, 0, 24 * 30);  // one month

  std::vector<simnet::DeviceProfile> devices{
      {simnet::IidMode::kEui64, 24},         // legacy printer
      {simnet::IidMode::kPrivacy, 24},       // phone
      {simnet::IidMode::kStableOpaque, 24},  // laptop
  };
  const char* device_names[] = {"printer (EUI-64)", "phone (RFC 4941)",
                                "laptop (RFC 7217)"};

  auto obs = simnet::simulate_home_devices(tl, devices, 99, 1);

  core::CleanProbe cp;
  cp.probe_id = 7;
  cp.asn = isp.asn;
  for (const auto& o : obs) cp.v6.push_back({o.hour, o.addr, true});
  auto tracks = core::TrackingAnalyzer::tracks_of(cp);

  std::printf("One simulated DTAG home, 30 days, %zu prefix changes:\n\n",
              tl.v6.size() - 1);

  // Group tracks by which device produced them (re-derive by replay).
  std::vector<int> track_count(devices.size(), 0);
  std::vector<int> networks_linked(devices.size(), 0);
  for (const auto& t : tracks) {
    // Find the device whose observations include this IID.
    for (std::size_t d = 0; d < devices.size(); ++d) {
      bool mine = false;
      for (const auto& o : obs)
        if (o.device == d && o.addr.iid() == t.iid) {
          mine = true;
          break;
        }
      if (mine) {
        ++track_count[d];
        networks_linked[d] =
            std::max(networks_linked[d], int(t.distinct_64s));
      }
    }
  }
  std::printf("%-20s %16s %22s\n", "device", "identities seen",
              "most networks linked");
  for (std::size_t d = 0; d < devices.size(); ++d)
    std::printf("%-20s %16d %22d\n", device_names[d], track_count[d],
                networks_linked[d]);

  std::printf("\nThe EUI-64 device is a single identity across every "
              "network; privacy extensions fragment into ~daily "
              "identities; RFC 7217 yields one identity per network. But "
              "all three shared each /64 — tracking the network component "
              "links the household regardless (the paper's point that "
              "privacy addresses do not defeat /64-level tracking).\n");
  return 0;
}
