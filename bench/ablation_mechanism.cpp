// ablation_mechanism — cross-validation of the statistical timeline model
// against the protocol-level DHCP/RADIUS machinery (simnet/dhcpd.h). Both
// model a German-style ISP: 24-hour sessions, no binding memory, occasional
// CPE reboots. The emergent duration distributions must agree on the
// structure the paper measures: a dominant 24 h mode with mass at exact
// multiples of the lease.
#include <cstdio>

#include "bench/bench_util.h"
#include "simnet/dhcpd.h"
#include "simnet/subscriber.h"
#include "stats/periodicity.h"
#include "stats/ttf.h"

using namespace dynamips;
using simnet::Hour;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Ablation: statistical vs protocol-level mechanism",
                      "24-hour RADIUS-style ISP, two independent models");

  const Hour window = 8760;
  const int subscribers = 300;

  // --- Model A: statistical draws (the pipeline's default) --------------
  simnet::IspProfile stat = *simnet::find_isp("Versatel");
  stat.static_share = 0;
  stat.dualstack_share = 0;
  simnet::TimelineGenerator gen(stat, 1);
  stats::TotalTimeFraction stat_ttf;
  for (int sub = 0; sub < subscribers; ++sub) {
    auto tl = gen.generate(std::uint32_t(sub), 0, window);
    // interior segments only (sandwiched)
    for (std::size_t i = 1; i + 1 < tl.v4.size(); ++i)
      stat_ttf.add(tl.v4[i].end - tl.v4[i].start);
  }

  // --- Model B: protocol-level RADIUS session machinery ------------------
  // Every SessionTimeout the PPP session tears down and the CPE reconnects;
  // the allocator keeps no binding memory, so (almost) every session gets
  // a new address. Occasional CPE reboots end sessions early.
  simnet::V4AddressPlan plan({*net::Prefix4::parse("89.244.0.0/14")}, 0.07,
                             1.0);
  simnet::RadiusAllocator radius(plan, {.session_timeout = 24}, 2);
  net::Rng rng(3);
  stats::TotalTimeFraction proto_ttf;
  for (int sub = 0; sub < subscribers; ++sub) {
    std::vector<Hour> change_hours;
    net::IPv4Address prev{};
    Hour t = 0;
    // Pre-drawn reboot instants (rate as in the statistical profile).
    Hour next_reboot = Hour(rng.exponential(8760.0 / 4.0));
    while (t < window) {
      auto session = radius.connect(simnet::ClientId(sub), t);
      if (session.addr != prev) change_hours.push_back(t);
      prev = session.addr;
      Hour session_end = session.timeout_at;
      if (next_reboot > t && next_reboot < session_end) {
        session_end = next_reboot;  // reboot ends the session early
        next_reboot = session_end + 1 + Hour(rng.exponential(8760.0 / 4.0));
      }
      t = session_end;
    }
    for (std::size_t i = 1; i + 1 < change_hours.size(); ++i)
      proto_ttf.add(change_hours[i + 1] - change_hours[i]);
  }

  auto thresholds = stats::fig1_thresholds();
  std::printf("%-14s", "model");
  for (auto t : thresholds) std::printf(" %6s", stats::duration_label(t));
  std::printf("\n%-14s", "statistical");
  for (double v : stat_ttf.cumulative(thresholds)) std::printf(" %6.3f", v);
  std::printf("\n%-14s", "protocol");
  for (double v : proto_ttf.cumulative(thresholds)) std::printf(" %6.3f", v);
  std::printf("\n");

  stats::PeriodicityDetector det;
  auto m1 = det.dominant(stat_ttf);
  auto m2 = det.dominant(proto_ttf);
  std::printf("\ndominant period: statistical=%s%llu h (%.0f%%), "
              "protocol=%s%llu h (%.0f%%)\n",
              m1 ? "" : "none ", m1 ? (unsigned long long)m1->period_hours : 0,
              m1 ? 100 * m1->time_fraction : 0.0, m2 ? "" : "none ",
              m2 ? (unsigned long long)m2->period_hours : 0,
              m2 ? 100 * m2->time_fraction : 0.0);
  std::printf("\nBoth models put the bulk of observed time at the 24 h "
              "session boundary; the protocol model derives it from lease "
              "expiry mechanics rather than a calibrated draw — the "
              "cross-check that the calibration is not baking in the "
              "conclusion.\n");
  return bench::finish();
}
