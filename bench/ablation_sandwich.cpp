// ablation_sandwich — why durations are only measured between two observed
// changes (§3.1). Counting censored spans (first/last of each history, cut
// off by the observation window) as durations biases the distribution:
// long-lived assignments are exactly the ones most likely to be censored.
#include <cstdio>

#include "atlas/generator.h"
#include "bench/bench_util.h"
#include "core/durations.h"
#include "core/sanitize.h"
#include "stats/ttf.h"

using namespace dynamips;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Ablation: sandwiched-duration rule",
                      "durations measured between changes vs including "
                      "window-censored spans");

  auto cfg = bench::default_atlas_config();
  atlas::AtlasSimulator sim(simnet::paper_isps(), cfg.atlas);
  bgp::Rib rib;
  simnet::announce_all(sim.isps(), rib);
  core::Sanitizer sanitizer(rib, cfg.sanitize);

  std::map<bgp::Asn, stats::TotalTimeFraction> sandwiched, with_censored;
  std::map<bgp::Asn, std::string> names;
  for (const auto& isp : sim.isps()) names[isp.asn] = isp.name;

  for (std::size_t i = 0; i < sim.probe_count(); ++i) {
    auto obs = core::from_series(sim.series_for(i));
    for (const auto& cp : sanitizer.sanitize(obs)) {
      auto spans = core::extract_spans4(cp.v4);
      for (auto d : core::sandwiched_durations4(spans, cfg.changes))
        sandwiched[cp.asn].add(d);
      for (const auto& s : spans) {
        simnet::Hour d = s.last_seen - s.first_seen + 1;
        if (d > 0) with_censored[cp.asn].add(d);
      }
    }
  }

  auto thresholds = stats::fig1_thresholds();
  std::printf("%-12s %-11s", "AS", "rule");
  for (auto t : thresholds) std::printf(" %6s", stats::duration_label(t));
  std::printf("\n");
  for (const char* name : {"DTAG", "Orange", "BT"}) {
    bgp::Asn asn = 0;
    for (auto& [a, n] : names)
      if (n == name) asn = a;
    auto c1 = sandwiched[asn].cumulative(thresholds);
    auto c2 = with_censored[asn].cumulative(thresholds);
    std::printf("%-12s %-11s", name, "sandwiched");
    for (double v : c1) std::printf(" %6.3f", v);
    std::printf("\n%-12s %-11s", "", "+censored");
    for (double v : c2) std::printf(" %6.3f", v);
    std::printf("\n");
  }
  std::printf("\nCensored spans are truncated by the observation window, so "
              "including them *shortens* apparent durations for stable ISPs "
              "and muddies the periodic modes — the curves differ most "
              "exactly where the paper draws conclusions.\n");
  return bench::finish();
}
