// ablation_asn_filter — the §4.1 pre-processing step that discards
// association tuples whose v4 and v6 origin ASNs differ. Without it,
// smartphones switching between WiFi and cellular mid-visit inject foreign
// /24s into fixed-line /64 histories, breaking association runs and
// inflating /24 degrees.
#include <cstdio>

#include "bench/bench_util.h"
#include "stats/summary.h"

using namespace dynamips;

namespace {

struct Summary {
  double fixed_median_duration;
  double fixed_degree_median;
  std::uint64_t tuples;
  std::uint64_t dropped;
};

Summary run(bool filter) {
  auto cfg = bench::default_cdn_config();
  cfg.assoc.require_asn_match = filter;
  cfg.cdn.cross_network_noise = 0.05;  // pronounced noise for the ablation
  auto study = core::run_cdn_study(
      cdn::default_cdn_population(cfg.cdn.subscriber_scale), cfg);

  std::vector<double> durations, degrees;
  for (const auto& [cls, d] : study.analyzer.registry_durations())
    if (!cls.mobile) durations.insert(durations.end(), d.begin(), d.end());
  for (const auto& [deg, mobile] : study.analyzer.degrees())
    if (!mobile) degrees.push_back(double(deg));
  return {stats::median(durations), stats::median(degrees),
          study.analyzer.total_tuples(),
          study.analyzer.total_mismatched()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Ablation: ASN-match pre-filter",
                      "CDN analyses with and without discarding "
                      "asn4 != asn6 tuples (noise raised to 5%)");
  Summary with = run(true);
  Summary without = run(false);

  std::printf("%-28s %14s %14s\n", "", "with filter", "without");
  std::printf("%-28s %14llu %14llu\n", "tuples analyzed",
              (unsigned long long)with.tuples,
              (unsigned long long)without.tuples);
  std::printf("%-28s %14llu %14llu\n", "tuples dropped",
              (unsigned long long)with.dropped,
              (unsigned long long)without.dropped);
  std::printf("%-28s %13.0fd %13.0fd\n", "fixed median assoc duration",
              with.fixed_median_duration, without.fixed_median_duration);
  std::printf("%-28s %14.0f %14.0f\n", "fixed median /24 degree",
              with.fixed_degree_median, without.fixed_degree_median);
  std::printf("\nWithout the filter, foreign /24s split long fixed-line "
              "associations (shorter median) — exactly the spurious-churn "
              "artifact §4.1 pre-processing exists to remove.\n");
  return bench::finish();
}
