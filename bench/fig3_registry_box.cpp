// fig3_registry_box — regenerates Fig. 3: box statistics of CDN association
// durations per Internet registry, split fixed vs mobile, plus the §4.2
// headline statistics.
#include <cstdio>

#include "bench/bench_util.h"
#include "stats/summary.h"

using namespace dynamips;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Figure 3",
                      "CDN association durations by registry (days; "
                      "whiskers p5/p95, box q1/q3)");
  const auto& study = bench::shared_cdn_study();

  std::vector<double> all_fixed, all_mobile;
  for (const auto& [cls, durations] : study.analyzer.registry_durations()) {
    auto& sink = cls.mobile ? all_mobile : all_fixed;
    sink.insert(sink.end(), durations.begin(), durations.end());
  }

  auto print_box = [](const char* reg, const char* kind,
                      std::vector<double> xs) {
    auto b = stats::BoxStats::of(std::move(xs));
    std::printf("%-9s %-7s %6.1f %6.1f %6.1f %6.1f %6.1f %9zu\n", reg, kind,
                b.p5, b.q1, b.median, b.q3, b.p95, b.n);
  };

  std::printf("%-9s %-7s %6s %6s %6s %6s %6s %9s\n", "registry", "class",
              "p5", "q1", "median", "q3", "p95", "n");
  print_box("ALL", "fixed", all_fixed);
  print_box("ALL", "mobile", all_mobile);
  for (bgp::Registry reg : bgp::kAllRegistries) {
    for (bool mobile : {false, true}) {
      auto it = study.analyzer.registry_durations().find(
          core::RegistryClass{reg, mobile});
      if (it == study.analyzer.registry_durations().end()) continue;
      print_box(bgp::registry_name(reg), mobile ? "mobile" : "fixed",
                it->second);
    }
  }

  // §4.2 headline numbers.
  auto fixed_box = stats::BoxStats::of(all_fixed);
  auto mobile_box = stats::BoxStats::of(all_mobile);
  std::printf("\nSec. 4.2: fixed median %.0f days vs mobile median %.0f "
              "days (paper: 61 days vs ~1 day, a ~60x gap)\n",
              fixed_box.median, mobile_box.median);
  std::printf("Mobile associations <= 1 day: %.0f%% (paper: ~75%%)\n",
              [&] {
                std::size_t c = 0;
                for (double d : all_mobile) c += d <= 1.0;
                return all_mobile.empty()
                           ? 0.0
                           : 100.0 * double(c) / double(all_mobile.size());
              }());
  std::printf("ASN-mismatch tuples removed: %llu of %llu\n",
              (unsigned long long)study.analyzer.total_mismatched(),
              (unsigned long long)(study.analyzer.total_tuples() +
                                   study.analyzer.total_mismatched()));
  std::printf("\nExpected shape (paper): fixed boxes span weeks-months "
              "(ARIN longest); mobile boxes hug 1 day except the RIPE tail "
              "(EE Ltd reaching ~50 days).\n");
  return bench::finish();
}
