// bench_util.h — shared scaffolding for the table/figure regeneration
// binaries.
//
// Every bench binary reproduces one artifact of the paper's evaluation.
// They share one Atlas study and one CDN study (computed once per process)
// at a scale controlled by environment variables:
//   DYNAMIPS_SCALE        probe/subscriber scale factor (default 0.3)
//   DYNAMIPS_WINDOW_HOURS Atlas observation window (default 30000 ~ 3.4 y)
//   DYNAMIPS_SEED         simulation seed (default 1)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.h"
#include "simnet/isp.h"

namespace dynamips::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoull(v, nullptr, 10) : fallback;
}

inline core::AtlasStudyConfig default_atlas_config() {
  core::AtlasStudyConfig cfg;
  cfg.atlas.probe_scale = env_double("DYNAMIPS_SCALE", 0.3);
  cfg.atlas.window_hours = env_u64("DYNAMIPS_WINDOW_HOURS", 30000);
  cfg.atlas.seed = env_u64("DYNAMIPS_SEED", 1);
  return cfg;
}

inline core::CdnStudyConfig default_cdn_config() {
  core::CdnStudyConfig cfg;
  cfg.cdn.subscriber_scale = env_double("DYNAMIPS_SCALE", 0.3);
  cfg.cdn.seed = env_u64("DYNAMIPS_SEED", 1) * 977;
  return cfg;
}

/// The Atlas study, computed once per process.
inline const core::AtlasStudy& shared_atlas_study() {
  static core::AtlasStudy study =
      core::run_atlas_study(simnet::paper_isps(), default_atlas_config());
  return study;
}

/// The CDN study, computed once per process.
inline const core::CdnStudy& shared_cdn_study() {
  static core::CdnStudy study = [] {
    auto cfg = default_cdn_config();
    return core::run_cdn_study(
        cdn::default_cdn_population(cfg.cdn.subscriber_scale), cfg);
  }();
  return study;
}

/// Find the ASN for an ISP name; 0 when unknown.
inline bgp::Asn asn_of(const core::AtlasStudy& study,
                       const std::string& name) {
  for (const auto& [asn, n] : study.as_names)
    if (n == name) return asn;
  return 0;
}

inline void print_banner(const char* artifact, const char* description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("(synthetic reproduction; compare shapes, not absolute counts)\n");
  std::printf("================================================================\n");
}

}  // namespace dynamips::bench
