// bench_util.h — shared scaffolding for the table/figure regeneration
// binaries.
//
// Every bench binary reproduces one artifact of the paper's evaluation.
// They share one Atlas study and one CDN study (computed once per process)
// at a scale controlled by environment variables:
//   DYNAMIPS_SCALE        probe/subscriber scale factor (default 0.3)
//   DYNAMIPS_WINDOW_HOURS Atlas observation window (default 30000 ~ 3.4 y)
//   DYNAMIPS_SEED         simulation seed (default 1)
//   DYNAMIPS_THREADS      pipeline shard/thread count (default 0 = all cores)
//   DYNAMIPS_METRICS      metrics JSON output path (empty = metrics off)
//   DYNAMIPS_CHECKPOINT_EVERY  checkpoint every N items/shard (0 = off)
//   DYNAMIPS_CHECKPOINT_OUT    checkpoint path (default <binary>.ckpt)
//   DYNAMIPS_RESUME_FROM       checkpoint to resume the shared studies from
//   DYNAMIPS_DEADLINE_SECONDS  soft watchdog; interrupt after S seconds
// plus `--threads N`, `--metrics-out FILE`, `--checkpoint-every N`,
// `--checkpoint-out FILE`, `--resume-from FILE` and `--deadline-seconds S`
// flags (parsed by bench::init) that override the env vars. Thread count
// never changes results — only wall-clock, which each study reports to
// stderr together with its throughput. When metrics are enabled the shared
// studies record into the process-wide obs::MetricsRegistry and
// bench::finish() (call it from the end of main) writes the
// schema-versioned JSON document.
//
// Crash safety: init() installs SIGINT/SIGTERM handlers wired to the
// global shutdown token; an interrupted shared study writes a checkpoint
// (when a path is configured), flushes partial metrics, and exits with
// code 3. Re-running with --resume-from continues it to byte-identical
// results at any thread count.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/pipeline.h"
#include "core/shutdown.h"
#include "io/checkpoint.h"
#include "obs/metrics.h"
#include "obs/metrics_json.h"
#include "simnet/isp.h"
#include "stats/summary.h"

namespace dynamips::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoull(v, nullptr, 10) : fallback;
}

/// Shard/thread count used by both shared studies: 0 = hardware_concurrency.
inline unsigned& thread_setting() {
  static unsigned threads = unsigned(env_u64("DYNAMIPS_THREADS", 0));
  return threads;
}

/// Metrics JSON output path; empty disables metrics entirely.
inline std::string& metrics_out_setting() {
  static std::string path = [] {
    const char* v = std::getenv("DYNAMIPS_METRICS");
    return v ? std::string(v) : std::string();
  }();
  return path;
}

inline bool metrics_enabled() { return !metrics_out_setting().empty(); }

inline std::string env_string(const char* name) {
  const char* v = std::getenv(name);
  return v ? std::string(v) : std::string();
}

/// Periodic-checkpoint interval in work items per shard; 0 disables.
inline std::uint64_t& checkpoint_every_setting() {
  static std::uint64_t every = env_u64("DYNAMIPS_CHECKPOINT_EVERY", 0);
  return every;
}

/// Explicit checkpoint path; empty = derive from the binary name when
/// checkpointing or resuming is requested.
inline std::string& checkpoint_out_setting() {
  static std::string path = env_string("DYNAMIPS_CHECKPOINT_OUT");
  return path;
}

/// Checkpoint to resume the shared studies from; empty = start fresh.
inline std::string& resume_from_setting() {
  static std::string path = env_string("DYNAMIPS_RESUME_FROM");
  return path;
}

/// Soft watchdog in seconds; 0 disables.
inline double& deadline_setting() {
  static double seconds = env_double("DYNAMIPS_DEADLINE_SECONDS", 0);
  return seconds;
}

/// argv[0] basename, stamped into the metrics document's meta.binary.
inline std::string& binary_name() {
  static std::string name = "bench";
  return name;
}

/// Parse shared command-line flags (`--threads N`, `--metrics-out FILE`,
/// and their `=` forms). Call first thing in main, before touching the
/// studies. Consumed flags are stripped from argv (argc is updated), so
/// binaries with their own argument parsing — e.g. google-benchmark in
/// bench_micro — never see them.
inline void init(int& argc, char** argv) {
  if (argc > 0 && argv[0]) {
    const char* base = std::strrchr(argv[0], '/');
    binary_name() = base ? base + 1 : argv[0];
  }
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      thread_setting() = unsigned(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      thread_setting() = unsigned(std::strtoul(arg + 10, nullptr, 10));
    } else if (std::strcmp(arg, "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out_setting() = argv[++i];
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_out_setting() = arg + 14;
    } else if (std::strcmp(arg, "--checkpoint-every") == 0 && i + 1 < argc) {
      checkpoint_every_setting() = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strncmp(arg, "--checkpoint-every=", 19) == 0) {
      checkpoint_every_setting() = std::strtoull(arg + 19, nullptr, 10);
    } else if (std::strcmp(arg, "--checkpoint-out") == 0 && i + 1 < argc) {
      checkpoint_out_setting() = argv[++i];
    } else if (std::strncmp(arg, "--checkpoint-out=", 17) == 0) {
      checkpoint_out_setting() = arg + 17;
    } else if (std::strcmp(arg, "--resume-from") == 0 && i + 1 < argc) {
      resume_from_setting() = argv[++i];
    } else if (std::strncmp(arg, "--resume-from=", 14) == 0) {
      resume_from_setting() = arg + 14;
    } else if (std::strcmp(arg, "--deadline-seconds") == 0 && i + 1 < argc) {
      deadline_setting() = std::atof(argv[++i]);
    } else if (std::strncmp(arg, "--deadline-seconds=", 19) == 0) {
      deadline_setting() = std::atof(arg + 19);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  core::install_shutdown_handlers();
  if (deadline_setting() > 0)
    core::global_shutdown_token().arm_deadline_seconds(deadline_setting());
}

/// The checkpoint path in effect: the explicit setting, or `<binary>.ckpt`
/// when checkpointing/resuming was requested without one. Empty when
/// supervision is signal-only (interrupts then exit without a snapshot).
inline std::string checkpoint_path() {
  if (!checkpoint_out_setting().empty()) return checkpoint_out_setting();
  if (checkpoint_every_setting() > 0 || !resume_from_setting().empty())
    return binary_name() + ".ckpt";
  return {};
}

/// The resume checkpoint, loaded (with `.prev` fallback) on first use.
/// An unusable checkpoint aborts the process with a descriptive message.
inline const io::StudyCheckpoint* resume_checkpoint() {
  static std::optional<io::StudyCheckpoint> loaded =
      []() -> std::optional<io::StudyCheckpoint> {
    const std::string& path = resume_from_setting();
    if (path.empty()) return std::nullopt;
    std::string used;
    auto ck = io::read_checkpoint_with_fallback(path, &used);
    if (!ck.ok()) {
      std::fprintf(stderr, "[bench] cannot resume: %s\n",
                   ck.status().to_string().c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "[bench] resuming from %s (%s, %llu of %llu items)\n",
                 used.c_str(), io::checkpoint_kind_name(ck->kind),
                 (unsigned long long)ck->items_done(),
                 (unsigned long long)ck->item_count);
    return ck.take();
  }();
  return loaded ? &*loaded : nullptr;
}

/// Supervision config for one shared study. The resume checkpoint is routed
/// by its kind, so a cdn-study checkpoint never reaches the atlas study
/// (which simply recomputes — it completed before the interrupt only when
/// the bench consumes both studies in order).
inline core::CheckpointConfig study_checkpoint_config(bool atlas_study) {
  core::CheckpointConfig cc;
  cc.every_items = checkpoint_every_setting();
  cc.path = checkpoint_path();
  cc.token = &core::global_shutdown_token();
  const io::StudyCheckpoint* ck = resume_checkpoint();
  if (ck && (atlas_study ? io::is_atlas_checkpoint_kind(ck->kind)
                         : io::is_cdn_checkpoint_kind(ck->kind)))
    cc.resume = ck;
  return cc;
}

/// Set when a shared study was interrupted: finish() then keeps the
/// checkpoint chain on disk for the resume.
inline bool& run_cancelled() {
  static bool cancelled = false;
  return cancelled;
}

/// Registry handed to the shared studies: the process-wide one when
/// metrics are enabled, null (all metric work skipped) otherwise.
inline obs::MetricsRegistry* study_metrics() {
  return metrics_enabled() ? &obs::MetricsRegistry::global() : nullptr;
}

/// Write the metrics JSON document if `--metrics-out`/`DYNAMIPS_METRICS`
/// was given. Returns main()'s exit status: 0 on success (or when metrics
/// are off), 1 when the file cannot be written.
inline int finish() {
  if (!run_cancelled()) {
    const std::string ckpt = checkpoint_path();
    if (!ckpt.empty()) io::remove_checkpoint_files(ckpt);
  }
  const std::string& path = metrics_out_setting();
  if (path.empty()) return 0;
  auto& registry = obs::MetricsRegistry::global();
  registry.add_counter("stats.nan_dropped", stats::nan_dropped());
  registry.set_gauge("process.peak_rss_bytes",
                     double(obs::peak_rss_bytes()));
  obs::MetricsMeta meta;
  meta.binary = binary_name();
  meta.scale = env_double("DYNAMIPS_SCALE", 0.3);
  meta.seed = env_u64("DYNAMIPS_SEED", 1);
  meta.window_hours = env_u64("DYNAMIPS_WINDOW_HOURS", 30000);
  meta.threads = core::resolve_threads(thread_setting());
  if (!obs::write_metrics_json(path, registry.snapshot(), meta)) {
    std::fprintf(stderr, "[bench] cannot write metrics to %s\n",
                 path.c_str());
    return 1;
  }
  std::fprintf(stderr, "[bench] wrote metrics to %s\n", path.c_str());
  return 0;
}

/// Unwrap a supervised study result. kCancelled flushes partial metrics and
/// exits with code 3 (pointing at the checkpoint to resume from); any other
/// failure exits with code 1.
template <typename T>
inline T take_or_exit(core::Expected<T> result, const char* what) {
  if (result.ok()) return result.take();
  if (result.status().code() == core::StatusCode::kCancelled) {
    std::fprintf(stderr, "[bench] %s\n",
                 result.status().to_string().c_str());
    const std::string ckpt = checkpoint_path();
    if (!ckpt.empty())
      std::fprintf(stderr, "[bench] resume with --resume-from %s\n",
                   ckpt.c_str());
    run_cancelled() = true;
    finish();
    std::exit(3);
  }
  std::fprintf(stderr, "[bench] %s failed: %s\n", what,
               result.status().to_string().c_str());
  std::exit(1);
}

inline core::AtlasStudyConfig default_atlas_config() {
  core::AtlasStudyConfig cfg;
  cfg.atlas.probe_scale = env_double("DYNAMIPS_SCALE", 0.3);
  cfg.atlas.window_hours = env_u64("DYNAMIPS_WINDOW_HOURS", 30000);
  cfg.atlas.seed = env_u64("DYNAMIPS_SEED", 1);
  cfg.threads = thread_setting();
  cfg.metrics = study_metrics();
  return cfg;
}

inline core::CdnStudyConfig default_cdn_config() {
  core::CdnStudyConfig cfg;
  cfg.cdn.subscriber_scale = env_double("DYNAMIPS_SCALE", 0.3);
  cfg.cdn.seed = env_u64("DYNAMIPS_SEED", 1) * 977;
  cfg.threads = thread_setting();
  cfg.metrics = study_metrics();
  return cfg;
}

/// The Atlas study, computed once per process. Reports wall-clock time and
/// probe throughput to stderr so table output stays clean.
inline const core::AtlasStudy& shared_atlas_study() {
  static core::AtlasStudy study = [] {
    auto cfg = default_atlas_config();
    auto t0 = std::chrono::steady_clock::now();
    auto s = take_or_exit(
        core::run_atlas_study_supervised(simnet::paper_isps(), cfg,
                                         study_checkpoint_config(true)),
        "atlas study");
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    if (metrics_enabled())
      obs::MetricsRegistry::global().record_phase(
          "bench.atlas_study_wall", std::uint64_t(secs * 1e9));
    std::fprintf(stderr,
                 "[bench] atlas study: %llu probes in %.2fs "
                 "(%.0f probes/s, %u threads)\n",
                 (unsigned long long)s.sanitize.probes_seen, secs,
                 secs > 0 ? double(s.sanitize.probes_seen) / secs : 0.0,
                 core::resolve_threads(cfg.threads));
    return s;
  }();
  return study;
}

/// The CDN study, computed once per process. Reports wall-clock time and
/// log/tuple throughput to stderr.
inline const core::CdnStudy& shared_cdn_study() {
  static core::CdnStudy study = [] {
    auto cfg = default_cdn_config();
    auto population = cdn::default_cdn_population(cfg.cdn.subscriber_scale);
    auto t0 = std::chrono::steady_clock::now();
    auto s = take_or_exit(
        core::run_cdn_study_supervised(population, cfg,
                                       study_checkpoint_config(false)),
        "cdn study");
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    if (metrics_enabled())
      obs::MetricsRegistry::global().record_phase(
          "bench.cdn_study_wall", std::uint64_t(secs * 1e9));
    std::uint64_t tuples =
        s.analyzer.total_tuples() + s.analyzer.total_mismatched();
    std::fprintf(stderr,
                 "[bench] cdn study: %zu logs / %llu tuples in %.2fs "
                 "(%.0f tuples/s, %u threads)\n",
                 population.size(), (unsigned long long)tuples, secs,
                 secs > 0 ? double(tuples) / secs : 0.0,
                 core::resolve_threads(cfg.threads));
    return s;
  }();
  return study;
}

/// Find the ASN for an ISP name; 0 when unknown.
inline bgp::Asn asn_of(const core::AtlasStudy& study,
                       const std::string& name) {
  for (const auto& [asn, n] : study.as_names)
    if (n == name) return asn;
  return 0;
}

inline void print_banner(const char* artifact, const char* description) {
  std::printf(
      "================================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf(
      "(synthetic reproduction; compare shapes, not absolute counts)\n");
  std::printf(
      "================================================================\n");
}

}  // namespace dynamips::bench
