// bench_util.h — shared scaffolding for the table/figure regeneration
// binaries.
//
// Every bench binary reproduces one artifact of the paper's evaluation.
// They share one Atlas study and one CDN study (computed once per process)
// at a scale controlled by environment variables:
//   DYNAMIPS_SCALE        probe/subscriber scale factor (default 0.3)
//   DYNAMIPS_WINDOW_HOURS Atlas observation window (default 30000 ~ 3.4 y)
//   DYNAMIPS_SEED         simulation seed (default 1)
//   DYNAMIPS_THREADS      pipeline shard/thread count (default 0 = all cores)
// plus a `--threads N` flag (parsed by bench::init) that overrides the env
// var. Thread count never changes results — only wall-clock, which each
// study reports to stderr together with its throughput.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/pipeline.h"
#include "simnet/isp.h"

namespace dynamips::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoull(v, nullptr, 10) : fallback;
}

/// Shard/thread count used by both shared studies: 0 = hardware_concurrency.
inline unsigned& thread_setting() {
  static unsigned threads = unsigned(env_u64("DYNAMIPS_THREADS", 0));
  return threads;
}

/// Parse shared command-line flags (currently just `--threads N` /
/// `--threads=N`). Call first thing in main, before touching the studies.
inline void init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      thread_setting() = unsigned(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      thread_setting() = unsigned(std::strtoul(arg + 10, nullptr, 10));
    }
  }
}

inline core::AtlasStudyConfig default_atlas_config() {
  core::AtlasStudyConfig cfg;
  cfg.atlas.probe_scale = env_double("DYNAMIPS_SCALE", 0.3);
  cfg.atlas.window_hours = env_u64("DYNAMIPS_WINDOW_HOURS", 30000);
  cfg.atlas.seed = env_u64("DYNAMIPS_SEED", 1);
  cfg.threads = thread_setting();
  return cfg;
}

inline core::CdnStudyConfig default_cdn_config() {
  core::CdnStudyConfig cfg;
  cfg.cdn.subscriber_scale = env_double("DYNAMIPS_SCALE", 0.3);
  cfg.cdn.seed = env_u64("DYNAMIPS_SEED", 1) * 977;
  cfg.threads = thread_setting();
  return cfg;
}

/// The Atlas study, computed once per process. Reports wall-clock time and
/// probe throughput to stderr so table output stays clean.
inline const core::AtlasStudy& shared_atlas_study() {
  static core::AtlasStudy study = [] {
    auto cfg = default_atlas_config();
    auto t0 = std::chrono::steady_clock::now();
    auto s = core::run_atlas_study(simnet::paper_isps(), cfg);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    std::fprintf(stderr,
                 "[bench] atlas study: %llu probes in %.2fs "
                 "(%.0f probes/s, %u threads)\n",
                 (unsigned long long)s.sanitize.probes_seen, secs,
                 secs > 0 ? double(s.sanitize.probes_seen) / secs : 0.0,
                 core::resolve_threads(cfg.threads));
    return s;
  }();
  return study;
}

/// The CDN study, computed once per process. Reports wall-clock time and
/// log/tuple throughput to stderr.
inline const core::CdnStudy& shared_cdn_study() {
  static core::CdnStudy study = [] {
    auto cfg = default_cdn_config();
    auto population = cdn::default_cdn_population(cfg.cdn.subscriber_scale);
    auto t0 = std::chrono::steady_clock::now();
    auto s = core::run_cdn_study(population, cfg);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    std::uint64_t tuples =
        s.analyzer.total_tuples() + s.analyzer.total_mismatched();
    std::fprintf(stderr,
                 "[bench] cdn study: %zu logs / %llu tuples in %.2fs "
                 "(%.0f tuples/s, %u threads)\n",
                 population.size(), (unsigned long long)tuples, secs,
                 secs > 0 ? double(tuples) / secs : 0.0,
                 core::resolve_threads(cfg.threads));
    return s;
  }();
  return study;
}

/// Find the ASN for an ISP name; 0 when unknown.
inline bgp::Asn asn_of(const core::AtlasStudy& study,
                       const std::string& name) {
  for (const auto& [asn, n] : study.as_names)
    if (n == name) return asn;
  return 0;
}

inline void print_banner(const char* artifact, const char* description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("(synthetic reproduction; compare shapes, not absolute counts)\n");
  std::printf("================================================================\n");
}

}  // namespace dynamips::bench
