// bench_util.h — shared scaffolding for the table/figure regeneration
// binaries.
//
// Every bench binary reproduces one artifact of the paper's evaluation.
// They share one Atlas study and one CDN study (computed once per process)
// at a scale controlled by environment variables:
//   DYNAMIPS_SCALE        probe/subscriber scale factor (default 0.3)
//   DYNAMIPS_WINDOW_HOURS Atlas observation window (default 30000 ~ 3.4 y)
//   DYNAMIPS_SEED         simulation seed (default 1)
//   DYNAMIPS_THREADS      pipeline shard/thread count (default 0 = all cores)
//   DYNAMIPS_METRICS      metrics JSON output path (empty = metrics off)
// plus `--threads N` and `--metrics-out FILE` flags (parsed by bench::init)
// that override the env vars. Thread count never changes results — only
// wall-clock, which each study reports to stderr together with its
// throughput. When metrics are enabled the shared studies record into the
// process-wide obs::MetricsRegistry and bench::finish() (call it from the
// end of main) writes the schema-versioned JSON document.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/metrics_json.h"
#include "simnet/isp.h"

namespace dynamips::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoull(v, nullptr, 10) : fallback;
}

/// Shard/thread count used by both shared studies: 0 = hardware_concurrency.
inline unsigned& thread_setting() {
  static unsigned threads = unsigned(env_u64("DYNAMIPS_THREADS", 0));
  return threads;
}

/// Metrics JSON output path; empty disables metrics entirely.
inline std::string& metrics_out_setting() {
  static std::string path = [] {
    const char* v = std::getenv("DYNAMIPS_METRICS");
    return v ? std::string(v) : std::string();
  }();
  return path;
}

inline bool metrics_enabled() { return !metrics_out_setting().empty(); }

/// argv[0] basename, stamped into the metrics document's meta.binary.
inline std::string& binary_name() {
  static std::string name = "bench";
  return name;
}

/// Parse shared command-line flags (`--threads N`, `--metrics-out FILE`,
/// and their `=` forms). Call first thing in main, before touching the
/// studies. Consumed flags are stripped from argv (argc is updated), so
/// binaries with their own argument parsing — e.g. google-benchmark in
/// bench_micro — never see them.
inline void init(int& argc, char** argv) {
  if (argc > 0 && argv[0]) {
    const char* base = std::strrchr(argv[0], '/');
    binary_name() = base ? base + 1 : argv[0];
  }
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      thread_setting() = unsigned(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      thread_setting() = unsigned(std::strtoul(arg + 10, nullptr, 10));
    } else if (std::strcmp(arg, "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out_setting() = argv[++i];
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_out_setting() = arg + 14;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
}

/// Registry handed to the shared studies: the process-wide one when
/// metrics are enabled, null (all metric work skipped) otherwise.
inline obs::MetricsRegistry* study_metrics() {
  return metrics_enabled() ? &obs::MetricsRegistry::global() : nullptr;
}

/// Write the metrics JSON document if `--metrics-out`/`DYNAMIPS_METRICS`
/// was given. Returns main()'s exit status: 0 on success (or when metrics
/// are off), 1 when the file cannot be written.
inline int finish() {
  const std::string& path = metrics_out_setting();
  if (path.empty()) return 0;
  auto& registry = obs::MetricsRegistry::global();
  registry.set_gauge("process.peak_rss_bytes",
                     double(obs::peak_rss_bytes()));
  obs::MetricsMeta meta;
  meta.binary = binary_name();
  meta.scale = env_double("DYNAMIPS_SCALE", 0.3);
  meta.seed = env_u64("DYNAMIPS_SEED", 1);
  meta.window_hours = env_u64("DYNAMIPS_WINDOW_HOURS", 30000);
  meta.threads = core::resolve_threads(thread_setting());
  if (!obs::write_metrics_json(path, registry.snapshot(), meta)) {
    std::fprintf(stderr, "[bench] cannot write metrics to %s\n",
                 path.c_str());
    return 1;
  }
  std::fprintf(stderr, "[bench] wrote metrics to %s\n", path.c_str());
  return 0;
}

inline core::AtlasStudyConfig default_atlas_config() {
  core::AtlasStudyConfig cfg;
  cfg.atlas.probe_scale = env_double("DYNAMIPS_SCALE", 0.3);
  cfg.atlas.window_hours = env_u64("DYNAMIPS_WINDOW_HOURS", 30000);
  cfg.atlas.seed = env_u64("DYNAMIPS_SEED", 1);
  cfg.threads = thread_setting();
  cfg.metrics = study_metrics();
  return cfg;
}

inline core::CdnStudyConfig default_cdn_config() {
  core::CdnStudyConfig cfg;
  cfg.cdn.subscriber_scale = env_double("DYNAMIPS_SCALE", 0.3);
  cfg.cdn.seed = env_u64("DYNAMIPS_SEED", 1) * 977;
  cfg.threads = thread_setting();
  cfg.metrics = study_metrics();
  return cfg;
}

/// The Atlas study, computed once per process. Reports wall-clock time and
/// probe throughput to stderr so table output stays clean.
inline const core::AtlasStudy& shared_atlas_study() {
  static core::AtlasStudy study = [] {
    auto cfg = default_atlas_config();
    auto t0 = std::chrono::steady_clock::now();
    auto s = core::run_atlas_study(simnet::paper_isps(), cfg);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    if (metrics_enabled())
      obs::MetricsRegistry::global().record_phase(
          "bench.atlas_study_wall", std::uint64_t(secs * 1e9));
    std::fprintf(stderr,
                 "[bench] atlas study: %llu probes in %.2fs "
                 "(%.0f probes/s, %u threads)\n",
                 (unsigned long long)s.sanitize.probes_seen, secs,
                 secs > 0 ? double(s.sanitize.probes_seen) / secs : 0.0,
                 core::resolve_threads(cfg.threads));
    return s;
  }();
  return study;
}

/// The CDN study, computed once per process. Reports wall-clock time and
/// log/tuple throughput to stderr.
inline const core::CdnStudy& shared_cdn_study() {
  static core::CdnStudy study = [] {
    auto cfg = default_cdn_config();
    auto population = cdn::default_cdn_population(cfg.cdn.subscriber_scale);
    auto t0 = std::chrono::steady_clock::now();
    auto s = core::run_cdn_study(population, cfg);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    if (metrics_enabled())
      obs::MetricsRegistry::global().record_phase(
          "bench.cdn_study_wall", std::uint64_t(secs * 1e9));
    std::uint64_t tuples =
        s.analyzer.total_tuples() + s.analyzer.total_mismatched();
    std::fprintf(stderr,
                 "[bench] cdn study: %zu logs / %llu tuples in %.2fs "
                 "(%.0f tuples/s, %u threads)\n",
                 population.size(), (unsigned long long)tuples, secs,
                 secs > 0 ? double(tuples) / secs : 0.0,
                 core::resolve_threads(cfg.threads));
    return s;
  }();
  return study;
}

/// Find the ASN for an ISP name; 0 when unknown.
inline bgp::Asn asn_of(const core::AtlasStudy& study,
                       const std::string& name) {
  for (const auto& [asn, n] : study.as_names)
    if (n == name) return asn;
  return 0;
}

inline void print_banner(const char* artifact, const char* description) {
  std::printf(
      "================================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf(
      "(synthetic reproduction; compare shapes, not absolute counts)\n");
  std::printf(
      "================================================================\n");
}

}  // namespace dynamips::bench
