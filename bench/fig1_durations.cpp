// fig1_durations — regenerates Fig. 1: cumulative total time fraction of
// IPv4 (non-dual-stack and dual-stack) and IPv6 assignment durations for
// the six large ASes.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "stats/ttf.h"

using namespace dynamips;

namespace {

void print_panel(const char* title, const core::AtlasStudy& study,
                 const std::vector<std::string>& names,
                 const stats::TotalTimeFraction
                     core::AsDurationStats::*member) {
  auto thresholds = stats::fig1_thresholds();
  std::printf("\n-- %s (cumulative total time fraction) --\n", title);
  std::printf("%-10s", "AS");
  for (auto t : thresholds) std::printf(" %6s", stats::duration_label(t));
  std::printf("   total-years\n");
  for (const auto& name : names) {
    bgp::Asn asn = bench::asn_of(study, name);
    auto it = study.durations.find(asn);
    if (it == study.durations.end()) continue;
    const stats::TotalTimeFraction& ttf = it->second.*member;
    auto curve = ttf.cumulative(thresholds);
    std::printf("%-10s", name.c_str());
    for (double v : curve) std::printf(" %6.3f", v);
    std::printf("   %.2f\n", double(ttf.total_hours()) / 8760.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Figure 1",
                      "cumulative total time fraction of assignment "
                      "durations in six large ASes");
  const auto& study = bench::shared_atlas_study();
  std::vector<std::string> names{"DTAG", "Orange", "Comcast",
                                 "LGI",  "BT",     "Proximus"};

  print_panel("IPv4, non dual-stack", study, names,
              &core::AsDurationStats::v4_nds);
  print_panel("IPv4, dual-stack", study, names,
              &core::AsDurationStats::v4_ds);
  print_panel("IPv6 /64", study, names, &core::AsDurationStats::v6);

  std::printf("\nExpected shapes (paper): v6 curves sit right of v4; DTAG "
              "mode at 1d, Proximus at 1.5d, Orange at 1w, BT at 2w in "
              "non-dual-stack v4; dual-stack v4 is right of non-dual-stack.\n");
  return bench::finish();
}
