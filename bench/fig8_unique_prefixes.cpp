// fig8_unique_prefixes — regenerates Fig. 8 (Appendix): distribution of the
// number of unique prefixes, at several aggregation lengths, observed per
// probe. Printed as quantiles of each per-AS distribution.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "stats/summary.h"

using namespace dynamips;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Figure 8",
                      "unique prefixes of various lengths observed per "
                      "probe (median / p90 / max)");
  const auto& study = bench::shared_atlas_study();

  for (const char* name :
       {"Comcast", "DTAG", "Orange", "Proximus", "LGI", "BT"}) {
    bgp::Asn asn = bench::asn_of(study, name);
    auto it = study.spatial.find(asn);
    if (it == study.spatial.end()) continue;
    const auto& s = it->second;
    std::printf("\n-- %s --\n", name);
    std::printf("%6s %8s %8s %8s\n", "len", "median", "p90", "max");
    for (int len : core::kFig8Lengths) {
      auto cit = s.unique_prefixes.find(len);
      if (cit == s.unique_prefixes.end() || cit->second.empty()) continue;
      std::vector<double> xs(cit->second.begin(), cit->second.end());
      std::sort(xs.begin(), xs.end());
      std::printf("  /%-4d %8.0f %8.0f %8.0f\n", len,
                  stats::quantile_sorted(xs, 0.5),
                  stats::quantile_sorted(xs, 0.9), xs.back());
    }
    if (!s.unique_bgp.empty()) {
      std::vector<double> xs(s.unique_bgp.begin(), s.unique_bgp.end());
      std::sort(xs.begin(), xs.end());
      std::printf("  %-5s %8.0f %8.0f %8.0f\n", "BGP",
                  stats::quantile_sorted(xs, 0.5),
                  stats::quantile_sorted(xs, 0.9), xs.back());
    }
  }
  std::printf("\nExpected shape (paper): unique /56 and /48 counts track "
              "the /64 count (few repeats), while /40 and shorter collapse "
              "to a handful — most assignments stay within the same /40 "
              "pool, and BGP prefixes rarely exceed 1-2.\n");
  return bench::finish();
}
