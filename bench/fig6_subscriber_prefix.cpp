// fig6_subscriber_prefix — regenerates Fig. 6: inferred prefix lengths
// identifying an individual subscriber, per ISP, from the trailing zero
// bits of all /64s each probe observed.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"

using namespace dynamips;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Figure 6",
                      "inferred subscriber prefix lengths per ISP (probes "
                      "with >= 1 IPv6 assignment change)");
  const auto& study = bench::shared_atlas_study();

  for (const char* name :
       {"DTAG", "Orange", "LGI", "Comcast", "Versatel", "Free SAS",
        "Kabel DE", "Netcologne", "BT", "Sky U.K."}) {
    bgp::Asn asn = bench::asn_of(study, name);
    auto it = study.subscriber_inference.find(asn);
    if (it == study.subscriber_inference.end() || it->second.empty()) {
      std::printf("\n-- %s: no probes with v6 changes --\n", name);
      continue;
    }
    std::map<int, int> hist;
    for (const auto& inf : it->second) ++hist[inf.inferred_len];
    double total = double(it->second.size());
    std::printf("\n-- %s (%d probes) --\n", name, int(total));
    for (const auto& [len, count] : hist)
      std::printf("  /%-3d %5.1f%%  %s\n", len, 100.0 * count / total,
                  std::string(std::size_t(50.0 * count / total), '#')
                      .c_str());
  }
  std::printf("\nExpected shapes (paper): /56 concentration for DTAG, "
              "Orange, Sky U.K. and Versatel; /62 for Kabel DE; /48 bars "
              "for Netcologne; a second DTAG spike at /64 caused by "
              "CPE scrambling; Comcast spread across /60 and /64.\n");
  return bench::finish();
}
