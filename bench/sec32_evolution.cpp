// sec32_evolution — the §3.2 "Evolution over time" finding: assignment
// durations grew across the measurement years, most visibly for DTAG and
// Orange. Uses the evolution variants of the ISP profiles (policy era
// switches mid-window) and reports the share of time spent in short
// assignments per year: a falling series means durations grew.
#include <cstdio>

#include "atlas/generator.h"
#include "bench/bench_util.h"
#include "core/evolution.h"
#include "core/sanitize.h"

using namespace dynamips;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Section 3.2 (evolution)",
                      "per-year duration trends under evolving policies");

  auto cfg = bench::default_atlas_config();
  cfg.atlas.window_hours = 4 * 8760;  // four simulated years

  // Evolution variants: policies loosen at the end of year 2.
  std::vector<simnet::IspProfile> isps;
  for (const char* name : {"DTAG", "Orange", "BT", "Comcast"})
    isps.push_back(simnet::with_duration_growth(*simnet::find_isp(name),
                                                2 * 8760, 0.5));

  atlas::AtlasSimulator sim(isps, cfg.atlas);
  bgp::Rib rib;
  simnet::announce_all(isps, rib);
  core::Sanitizer sanitizer(rib, cfg.sanitize);
  core::EvolutionAnalyzer evolution(cfg.changes);
  for (std::size_t i = 0; i < sim.probe_count(); ++i) {
    auto obs = core::from_series(sim.series_for(i));
    for (const auto& cp : sanitizer.sanitize(obs)) evolution.add_probe(cp);
  }

  struct Panel {
    const char* label;
    const stats::TotalTimeFraction core::YearDurations::*split;
    std::uint64_t threshold;
  };
  const Panel panels[] = {
      {"v4 non-dual-stack, time in <=2w assignments",
       &core::YearDurations::v4_nds, 336},
      {"v4 dual-stack,     time in <=2w assignments",
       &core::YearDurations::v4_ds, 336},
      {"v6,                time in <=1m assignments",
       &core::YearDurations::v6, 730},
  };

  for (const auto& panel : panels) {
    std::printf("\n-- %s --\n%-10s", panel.label, "AS");
    for (int y = 0; y < 4; ++y) std::printf("   year%d", y);
    std::printf("\n");
    for (const auto& isp : isps) {
      auto trend = evolution.trend(isp.asn, panel.threshold, panel.split);
      std::printf("%-10s", isp.name.c_str());
      for (int y = 0; y < 4; ++y) {
        auto it = trend.find(y);
        if (it == trend.end())
          std::printf("       -");
        else
          std::printf("  %6.3f", it->second);
      }
      std::printf("\n");
    }
  }
  std::printf("\nExpected shape (paper): the short-duration share falls in "
              "the later years — durations increased over time, especially "
              "for DTAG and Orange; Comcast was already long.\n");
  return bench::finish();
}
