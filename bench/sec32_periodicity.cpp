// sec32_periodicity — regenerates the §3.2 periodic-renumbering findings:
// detected renumbering periods per AS and family, the count of consistently
// periodic networks, and the total-time-fraction vs naive-PMF ablation.
#include <cstdio>

#include "bench/bench_util.h"
#include "stats/periodicity.h"

using namespace dynamips;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Section 3.2",
                      "periodic renumbering detection and the "
                      "total-time-fraction metric ablation");
  const auto& study = bench::shared_atlas_study();
  stats::PeriodicityDetector detector;
  stats::PeriodicNetworkCounter counter;

  std::printf("%-14s %-22s %-22s %-22s %6s\n", "AS", "v4 non-dual-stack",
              "v4 dual-stack", "v6", "cooc%");
  for (const auto& [asn, d] : study.durations) {
    auto fmt = [&](const stats::TotalTimeFraction& ttf, char* buf,
                   std::size_t n) {
      auto mode = detector.dominant(ttf);
      if (mode)
        std::snprintf(buf, n, "%lluh (%.0f%% of time)",
                      (unsigned long long)mode->period_hours,
                      100.0 * mode->time_fraction);
      else
        std::snprintf(buf, n, "-");
      return mode.has_value();
    };
    char b1[32], b2[32], b3[32];
    fmt(d.v4_nds, b1, sizeof b1);
    fmt(d.v4_ds, b2, sizeof b2);
    fmt(d.v6, b3, sizeof b3);
    counter.add(d.v4_nds);
    std::printf("%-14s %-22s %-22s %-22s %5.0f%%\n",
                study.as_names.at(asn).c_str(), b1, b2, b3,
                100.0 * d.cooccurrence());
  }
  std::printf("\nNetworks with consistent periodic non-dual-stack v4 "
              "renumbering: %llu of %llu (paper: 35 across the full probe "
              "set; here scaled to the simulated ISP roster)\n",
              (unsigned long long)counter.periodic_networks(),
              (unsigned long long)counter.networks());
  for (const auto& [period, n] : counter.by_period())
    std::printf("  period %4lluh: %llu network%s\n",
                (unsigned long long)period, (unsigned long long)n,
                n == 1 ? "" : "s");

  // Ablation: naive PMF vs total time fraction on DTAG non-dual-stack v4.
  bgp::Asn dtag = bench::asn_of(study, "DTAG");
  auto it = study.durations.find(dtag);
  if (it != study.durations.end()) {
    auto thresholds = stats::fig1_thresholds();
    auto naive = it->second.v4_nds.cumulative_naive(thresholds);
    auto ttf = it->second.v4_nds.cumulative(thresholds);
    std::printf("\n-- Metric ablation (DTAG v4 non-dual-stack, cumulative "
                "at thresholds) --\n%-8s", "");
    for (auto t : thresholds) std::printf(" %6s", stats::duration_label(t));
    std::printf("\n%-8s", "naive");
    for (double v : naive) std::printf(" %6.3f", v);
    std::printf("\n%-8s", "ttf");
    for (double v : ttf) std::printf(" %6.3f", v);
    std::printf("\nNaive PMF overweights short durations (§3.2.1): the "
                "naive curve sits above the total-time-fraction curve at "
                "every threshold below the mode.\n");
  }
  return bench::finish();
}
