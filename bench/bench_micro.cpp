// bench_micro — google-benchmark microbenchmarks of the hot data paths:
// address parsing/formatting, trie insert/LPM, span extraction, and the
// total-time-fraction accumulator. These are the operations that dominate
// full-dataset analysis runs.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "core/changes.h"
#include "netaddr/ipv4.h"
#include "netaddr/ipv6.h"
#include "netaddr/rng.h"
#include "rtrie/prefix_trie.h"
#include "stats/ttf.h"

using namespace dynamips;

namespace {

void BM_ParseIPv4(benchmark::State& state) {
  for (auto _ : state) {
    auto a = net::IPv4Address::parse("192.0.2.123");
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ParseIPv4);

void BM_ParseIPv6(benchmark::State& state) {
  for (auto _ : state) {
    auto a = net::IPv6Address::parse("2003:ec57:1234:5600::1");
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ParseIPv6);

void BM_FormatIPv6(benchmark::State& state) {
  net::IPv6Address a{0x2003ec5712345600ull, 0x1};
  for (auto _ : state) {
    auto s = a.to_string();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_FormatIPv6);

void BM_TrieInsert(benchmark::State& state) {
  net::Rng rng(1);
  std::vector<net::U128> keys;
  for (int i = 0; i < 4096; ++i)
    keys.push_back({rng.next_u64(), rng.next_u64()});
  for (auto _ : state) {
    rtrie::PrefixTrie<int> trie;
    for (std::size_t i = 0; i < keys.size(); ++i)
      trie.insert(keys[i], 48, int(i));
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_TrieInsert);

void BM_TrieLongestMatch(benchmark::State& state) {
  net::Rng rng(2);
  rtrie::PrefixTrie<int> trie;
  std::vector<net::U128> keys;
  for (int i = 0; i < int(state.range(0)); ++i) {
    net::U128 k{rng.next_u64(), rng.next_u64()};
    trie.insert(k, 8 + unsigned(rng.uniform(56)), i);
    keys.push_back(k);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto m = trie.longest_match(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLongestMatch)->Arg(1024)->Arg(16384);

void BM_ExtractSpans6(benchmark::State& state) {
  net::Rng rng(3);
  std::vector<core::Obs6> obs;
  std::uint64_t net64 = 0x2003ec5700000000ull;
  for (int h = 0; h < int(state.range(0)); ++h) {
    if (h % 24 == 23) net64 += 0x100;  // daily renumbering
    obs.push_back({simnet::Hour(h), net::IPv6Address{net64, 1}, true});
  }
  for (auto _ : state) {
    auto spans = core::extract_spans6(obs);
    benchmark::DoNotOptimize(spans);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExtractSpans6)->Arg(8760)->Arg(52560);

void BM_TtfAccumulate(benchmark::State& state) {
  net::Rng rng(4);
  std::vector<std::uint64_t> durations;
  for (int i = 0; i < 10000; ++i)
    durations.push_back(24 * (1 + rng.uniform(60)));
  for (auto _ : state) {
    stats::TotalTimeFraction ttf;
    for (auto d : durations) ttf.add(d);
    benchmark::DoNotOptimize(ttf.total_hours());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_TtfAccumulate);

void BM_CommonPrefixLength64(benchmark::State& state) {
  net::Rng rng(5);
  std::vector<std::uint64_t> nets;
  for (int i = 0; i < 1024; ++i) nets.push_back(rng.next_u64());
  std::size_t i = 0;
  for (auto _ : state) {
    int c = net::common_prefix_length64(nets[i % 1024], nets[(i + 1) % 1024]);
    benchmark::DoNotOptimize(c);
    ++i;
  }
}
BENCHMARK(BM_CommonPrefixLength64);

}  // namespace

// Expanded BENCHMARK_MAIN() with the shared bench flags on top:
// bench::init strips --threads/--metrics-out before google-benchmark sees
// argv, and bench::finish emits the metrics document (peak RSS and any
// study phases) like every other bench binary.
int main(int argc, char** argv) {
  bench::init(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return bench::finish();
}
