// fig7_cdn_trailing_zeros — regenerates Fig. 7: frequency of trailing-zero
// patterns in fixed-line /64s per registry, used to infer delegated prefix
// lengths at CDN scale.
#include <cstdio>

#include "bench/bench_util.h"

using namespace dynamips;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Figure 7",
                      "trailing zeros of observed /64s, grouped by longest "
                      "nibble boundary (fixed-line)");
  const auto& study = bench::shared_cdn_study();

  std::printf("%-9s %8s %8s %8s %8s %12s %10s\n", "registry", "/48", "/52",
              "/56", "/60", "inferable%", "unique64s");
  for (bgp::Registry reg : bgp::kAllRegistries) {
    auto it = study.analyzer.zero_counts().find(
        core::RegistryClass{reg, /*mobile=*/false});
    if (it == study.analyzer.zero_counts().end()) continue;
    const auto& z = it->second;
    std::printf("%-9s %8.3f %8.3f %8.3f %8.3f %11.1f%% %10llu\n",
                bgp::registry_name(reg),
                z.fraction(core::ZeroBoundary::k48),
                z.fraction(core::ZeroBoundary::k52),
                z.fraction(core::ZeroBoundary::k56),
                z.fraction(core::ZeroBoundary::k60),
                100.0 * z.inferable_fraction(),
                (unsigned long long)z.total());
  }

  std::printf("\n-- mobile /64s (for contrast) --\n");
  for (bgp::Registry reg : bgp::kAllRegistries) {
    auto it = study.analyzer.zero_counts().find(
        core::RegistryClass{reg, /*mobile=*/true});
    if (it == study.analyzer.zero_counts().end()) continue;
    std::printf("%-9s inferable %.1f%% (expected ~1/16 by chance: mobile "
                "UEs receive bare /64s)\n",
                bgp::registry_name(reg),
                100.0 * it->second.inferable_fraction());
  }
  std::printf("\nExpected shape (paper): RIPE and AFRINIC dominated by /56 "
              "(>60%% of /64s with 8+ trailing zero bits); ARIN split "
              "between /60 and /56 (~59%% inferable); LACNIC mostly "
              "uninferable (~15%%); mobile shows no consistent zeros.\n");
  return bench::finish();
}
