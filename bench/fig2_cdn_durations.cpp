// fig2_cdn_durations — regenerates Fig. 2: CDF of IPv4/IPv6 address
// association durations for the six featured ISPs, observed at the CDN.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "stats/ecdf.h"

using namespace dynamips;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Figure 2",
                      "CDN address-association durations for selected ISPs");
  const auto& study = bench::shared_cdn_study();

  const std::vector<double> thresholds{1, 7, 14, 30, 90, 150};
  const char* labels[] = {"1d", "1w", "2w", "1m", "3m", "5m"};

  std::printf("%-10s", "AS");
  for (auto* l : labels) std::printf(" %6s", l);
  std::printf(" %8s %8s\n", "median", "assoc");

  for (const auto& [asn, stats] : study.analyzer.by_asn()) {
    const std::string& name = study.asn_names.at(asn);
    bool featured = name == "DTAG" || name == "Orange" || name == "LGI" ||
                    name == "BT" || name == "Comcast" || name == "Proximus";
    if (!featured) continue;
    stats::Ecdf cdf;
    for (double d : stats.durations_days) cdf.add(d);
    std::printf("%-10s", name.c_str());
    for (double t : thresholds) std::printf(" %6.3f", cdf.at(t));
    std::printf(" %7.0fd %8zu\n", cdf.quantile(0.5),
                stats.durations_days.size());
  }
  std::printf("\nExpected shape (paper): association durations track the "
              "shorter of the two families' assignment durations — DTAG and "
              "BT medians near their v4 renumbering periods (~1w / ~2w), "
              "the others spread to months.\n");
  return bench::finish();
}
