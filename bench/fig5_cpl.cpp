// fig5_cpl — regenerates Fig. 5: common prefix lengths between subsequent
// IPv6 /64 assignments for the six featured ASes (change counts and probe
// counts per CPL).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace dynamips;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Figure 5",
                      "common prefix length between subsequent IPv6 /64 "
                      "assignments");
  const auto& study = bench::shared_atlas_study();

  for (const char* name :
       {"Comcast", "DTAG", "Orange", "Proximus", "LGI", "BT"}) {
    bgp::Asn asn = bench::asn_of(study, name);
    auto it = study.spatial.find(asn);
    if (it == study.spatial.end()) continue;
    const auto& cpl = it->second.cpl;
    std::printf("\n-- %s (%llu v6 changes) --\n", name,
                (unsigned long long)cpl.total_changes());
    std::printf("%4s %9s %7s\n", "CPL", "changes", "probes");
    for (int c = 0; c <= 64; ++c) {
      if (cpl.changes[std::size_t(c)] == 0) continue;
      std::printf("%4d %9llu %7llu\n", c,
                  (unsigned long long)cpl.changes[std::size_t(c)],
                  (unsigned long long)cpl.probes[std::size_t(c)]);
    }
  }
  std::printf("\nExpected shapes (paper): DTAG bulk at CPL 41..47 with a "
              "secondary cluster >= 56 (CPE scrambling) and nothing below "
              "~19; LGI around 44; Orange between 36 and 48; BT bimodal "
              "(26..32 and 44+).\n");
  return bench::finish();
}
