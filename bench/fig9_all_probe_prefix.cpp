// fig9_all_probe_prefix — regenerates Fig. 9 (Appendix): inferred
// subscriber prefix lengths over the set of ALL probes with at least one
// IPv6 assignment change.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"

using namespace dynamips;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Figure 9",
                      "inferred subscriber prefix lengths, all probes");
  const auto& study = bench::shared_atlas_study();

  std::map<int, int> hist;
  int total = 0;
  for (const auto& [asn, infs] : study.subscriber_inference) {
    for (const auto& inf : infs) {
      ++hist[inf.inferred_len];
      ++total;
    }
  }
  std::printf("%d probes with >= 1 IPv6 assignment change\n\n", total);
  std::printf("%6s %8s %s\n", "len", "probes%", "");
  for (const auto& [len, count] : hist) {
    double pct = 100.0 * count / double(total);
    std::printf("  /%-3d %7.1f%% %s\n", len, pct,
                std::string(std::size_t(pct), '#').c_str());
  }
  std::printf("\nExpected shape (paper): about half the probes yield an "
              "inferable (< /64) prefix, with the largest spike at the /56 "
              "boundary.\n");
  return bench::finish();
}
