// sec6_blocklist — the §6 host-reputation tradeoff, quantified: for three
// contrasting ISPs, sweep block prefix length and duration and report the
// evasion rate and collateral damage of each policy. This is the
// evasion-vs-collateral tradeoff the paper frames ("blocking a short prefix
// for a long time as opposed to a longer prefix for a short time").
#include <cstdio>

#include "bench/bench_util.h"
#include "core/blocklist.h"
#include "simnet/subscriber.h"

using namespace dynamips;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Section 6 (blocklists)",
                      "evasion vs collateral across block policies");

  const simnet::Hour window = 24 * 90;
  for (const char* name : {"DTAG", "Netcologne", "Comcast"}) {
    auto isp = *simnet::find_isp(name);
    simnet::TimelineGenerator gen(isp, 17);
    std::vector<simnet::SubscriberTimeline> population;
    for (std::uint32_t id = 0; id < 250; ++id) {
      auto tl = gen.generate(id, 0, window);
      if (tl.dual_stack) population.push_back(std::move(tl));
    }
    core::BlocklistSimulator sim(std::move(population));

    std::printf("\n-- %s --\n", name);
    std::printf("%8s %10s %10s %12s\n", "block", "duration", "evasion",
                "collateral");
    for (int len : {64, 56, 48, 40}) {
      for (simnet::Hour dur : {simnet::Hour(24), simnet::Hour(24 * 7),
                               simnet::Hour(24 * 30)}) {
        auto out = sim.evaluate({len, dur});
        std::printf("   /%-4d %8llud %9.0f%% %12.2f\n", len,
                    (unsigned long long)(dur / 24),
                    100.0 * out.evasion_rate(),
                    out.collateral_per_incident());
      }
    }
  }
  std::printf("\nExpected shapes: on daily-renumbering ISPs (DTAG, "
              "Netcologne) any block at or below the delegation length is "
              "evaded as soon as the next renumbering lands — blocking "
              "longer than the renumbering period only buys collateral, "
              "the §3.2 durations are the binding constraint. Containing "
              "such offenders requires pool-level (/40) blocks, which hit "
              "innocent pool-mates instead. Comcast's stability makes even "
              "month-long /64 blocks both effective and collateral-free.\n");
  return bench::finish();
}
