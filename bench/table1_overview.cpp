// table1_overview — regenerates Table 1: assignment changes observed per AS
// in the Atlas IP-echo dataset, with the dual-stack split.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace dynamips;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Table 1",
                      "overview of assignment changes for the ten ASes with "
                      "many dual-stack probes");
  const auto& study = bench::shared_atlas_study();

  std::printf("%-12s %-8s %-9s %8s %12s %9s %14s %11s\n", "AS", "ASN",
              "Country", "Probes", "v4 changes", "DS probes",
              "DS v4 changes", "v6 changes");
  for (const auto& isp : simnet::paper_isps()) {
    if (!isp.in_table1) continue;
    auto it = study.durations.find(isp.asn);
    if (it == study.durations.end()) continue;
    const auto& d = it->second;
    double ds_pct = d.v4_changes
                        ? 100.0 * double(d.v4_changes_ds) / double(d.v4_changes)
                        : 0.0;
    std::printf("%-12s %-8u %-9s %8llu %12llu %9llu %9llu (%.0f%%) %11llu\n",
                isp.name.c_str(), isp.asn, isp.country.c_str(),
                (unsigned long long)d.probes,
                (unsigned long long)d.v4_changes,
                (unsigned long long)d.ds_probes,
                (unsigned long long)d.v4_changes_ds, ds_pct,
                (unsigned long long)d.v6_changes);
  }

  const auto& s = study.sanitize;
  std::printf("\nSanitizer (Appendix A.1): %llu probes seen, %llu kept, "
              "%llu virtual probes (%llu split), dropped: %llu short, %llu "
              "bad-tag, %llu public-src, %llu multihomed; %llu test-address "
              "records removed\n",
              (unsigned long long)s.probes_seen,
              (unsigned long long)s.probes_kept,
              (unsigned long long)s.virtual_probes,
              (unsigned long long)s.split_probes,
              (unsigned long long)s.dropped_short,
              (unsigned long long)s.dropped_bad_tag,
              (unsigned long long)s.dropped_public_src,
              (unsigned long long)s.dropped_multihomed,
              (unsigned long long)s.test_address_records);
  return bench::finish();
}
