// ablation_scramble — how CPE subnet scrambling corrupts the zero-bits
// inference (§5.3's caveat, visible as DTAG's second Fig. 6 spike at /64
// and the CPL >= 56 cluster in Fig. 5b). Runs the DTAG profile with the
// scrambling CPE share turned off and at its calibrated value.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"

using namespace dynamips;

namespace {

struct Result {
  std::map<int, int> inferred;  // length -> probes
  std::uint64_t high_cpl_changes = 0;
  std::uint64_t total_changes = 0;
  int probes = 0;
};

Result run(double scramble_share) {
  auto dtag = *simnet::find_isp("DTAG");
  dtag.cpe_scramble_share = scramble_share;
  auto cfg = bench::default_atlas_config();
  auto study = core::run_atlas_study({dtag}, cfg);
  Result r;
  auto iit = study.subscriber_inference.find(dtag.asn);
  if (iit != study.subscriber_inference.end()) {
    r.probes = int(iit->second.size());
    for (const auto& inf : iit->second) ++r.inferred[inf.inferred_len];
  }
  auto sit = study.spatial.find(dtag.asn);
  if (sit != study.spatial.end()) {
    r.total_changes = sit->second.cpl.total_changes();
    for (int c = 56; c <= 64; ++c)
      r.high_cpl_changes += sit->second.cpl.changes[std::size_t(c)];
  }
  return r;
}

void print(const char* label, const Result& r) {
  std::printf("\n-- %s (%d probes with v6 changes) --\n", label, r.probes);
  for (const auto& [len, count] : r.inferred)
    std::printf("  inferred /%-3d %5.1f%%\n", len,
                100.0 * count / double(r.probes));
  std::printf("  changes with CPL >= 56: %.2f%% of %llu\n",
              r.total_changes
                  ? 100.0 * double(r.high_cpl_changes) /
                        double(r.total_changes)
                  : 0.0,
              (unsigned long long)r.total_changes);
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Ablation: CPE subnet scrambling",
                      "DTAG zero-bits inference with and without "
                      "scrambling CPEs");
  print("scramble share = 0 (all CPEs zero-fill)", run(0.0));
  print("scramble share = 0.35 (calibrated)", run(0.35));
  std::printf("\nGround truth is /56 in both runs. Scrambling CPEs fill the "
              "subnet bits, so their probes infer /64 — the paper's caveat "
              "that the method overestimates for such CPEs — and their "
              "intra-delegation rotations create the CPL >= 56 cluster of "
              "Fig. 5b.\n");
  return bench::finish();
}
