// fig4_cardinality — regenerates Fig. 4: distribution of the number of
// IPv6 /64s associated with each IPv4 /24, mobile vs fixed, unweighted and
// hit-weighted.
#include <cstdio>

#include "bench/bench_util.h"
#include "stats/loghist.h"

using namespace dynamips;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Figure 4",
                      "IPv6 /64s associated per IPv4 /24 (log-binned "
                      "density)");
  const auto& study = bench::shared_cdn_study();

  for (bool mobile : {true, false}) {
    stats::LogHistogram uniq(0, 6, 4), weighted(0, 6, 4);
    std::size_t n24 = 0;
    for (const auto& [degree, is_mobile] : study.analyzer.degrees()) {
      if (is_mobile != mobile) continue;
      ++n24;
      uniq.add(double(degree));
      weighted.add(double(degree), double(degree));
    }
    std::printf("\n-- %s /24 degree (%zu blocks) --\n",
                mobile ? "Mobile" : "Fixed", n24);
    std::printf("%12s %10s %10s\n", "degree-bin", "unique", "weighted");
    auto du = uniq.density();
    auto dw = weighted.density();
    for (std::size_t i = 0; i < du.size(); ++i) {
      if (du[i] < 1e-9 && dw[i] < 1e-9) continue;
      std::printf("%12.0f %10.3f %10.3f\n", uniq.bin_center(i), du[i],
                  dw[i]);
    }
    std::printf("mode: unique=%.0f weighted=%.0f /64s per /24\n",
                uniq.mode_value(), weighted.mode_value());
  }

  std::printf("\n/64s with exactly one associated /24: mobile %.0f%% "
              "(paper: 87%%), fixed %.0f%%\n",
              100.0 * study.analyzer.fraction_64s_with_single_24(true),
              100.0 * study.analyzer.fraction_64s_with_single_24(false));
  std::printf("\nExpected shape (paper): mobile degrees peak around 10^4.."
              "10^5 (CGNAT multiplexing); fixed degrees peak at ~150-256, "
              "in line with the active-address count of residential /24s.\n");
  return bench::finish();
}
