// sec6_tracking_scan — quantifies two §2.3/§6 text claims:
//  * devices with EUI-64 IIDs remain trackable across network renumbering
//    (privacy-extension devices do not), and
//  * the spatial results turn re-finding a moved device from hopeless
//    (2^45 candidate /64s under DTAG's announcement) into cheap (pool +
//    delegation-stride scoping; 255 neighbours after a CPE scramble).
#include <cstdio>

#include "atlas/generator.h"
#include "bench/bench_util.h"
#include "core/hitlist.h"
#include "core/sanitize.h"
#include "core/tracking.h"
#include "stats/summary.h"

using namespace dynamips;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Section 2.3 / 6",
                      "IID-based tracking exposure and scan scoping");

  auto cfg = bench::default_atlas_config();
  cfg.atlas.eui64_share = 0.7;  // mixed device population
  atlas::AtlasSimulator sim(simnet::paper_isps(), cfg.atlas);
  bgp::Rib rib;
  simnet::announce_all(sim.isps(), rib);
  core::Sanitizer sanitizer(rib, cfg.sanitize);
  core::TrackingAnalyzer tracking;
  for (std::size_t i = 0; i < sim.probe_count(); ++i) {
    auto obs = core::from_series(sim.series_for(i));
    for (const auto& cp : sanitizer.sanitize(obs)) tracking.add_probe(cp);
  }

  std::printf("%-14s %8s %12s %18s %16s\n", "AS", "probes",
              "EUI-64 homes", "tracked across >=2", "median trk days");
  std::map<bgp::Asn, std::string> names;
  for (const auto& isp : sim.isps()) names[isp.asn] = isp.name;
  for (const auto& [asn, t] : tracking.by_as()) {
    if (t.probes < 10) continue;
    double med = t.eui64_tracked_days.empty()
                     ? 0
                     : stats::median(t.eui64_tracked_days);
    std::printf("%-14s %8llu %11.0f%% %17.0f%% %15.0fd\n",
                names[asn].c_str(), (unsigned long long)t.probes,
                100.0 * t.eui64_probe_share(),
                100.0 * t.cross_network_share(), med);
  }
  std::printf("(privacy-extension devices rotate IIDs daily and appear as "
              "thousands of one-day device tracks; EUI-64 households stay "
              "linkable for their whole deployment)\n");

  // --- Scan scoping arithmetic (§5.2 numbers) ----------------------------
  auto announcement = *net::Prefix6::parse("2003::/19");
  auto pool = *net::Prefix6::parse("2003:e1:aa00::/40");
  std::printf("\nScan scoping for a DTAG EUI-64 target (expected probes, "
              "random order):\n");
  std::printf("  whole announcement, /64 grid: 2^44   (%.3g)\n",
              core::expected_random_probes(announcement, 64));
  std::printf("  /40 pool, /64 grid:           2^23   (%.3g)\n",
              core::expected_random_probes(pool, 64));
  std::printf("  /40 pool, /56 stride:         2^15   (%.3g)\n",
              core::expected_random_probes(pool, 56));

  // CPE-scramble recovery: neighbours within the same /56.
  std::uint64_t old64 = pool.address().network64() | 0x1140;
  std::uint64_t new64 = pool.address().network64() | 0x11c7;
  auto hops = core::neighbor_probes(old64, new64);
  std::printf("  after an intra-/56 CPE scramble: ring search re-finds the "
              "device in %llu probes (<= 511 worst case)\n",
              hops ? (unsigned long long)*hops : 0ull);
  return bench::finish();
}
