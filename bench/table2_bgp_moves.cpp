// table2_bgp_moves — regenerates Table 2 (Appendix): share of assignment
// changes that cross /24 and BGP-prefix boundaries, per AS and family.
#include <cstdio>

#include "bench/bench_util.h"

using namespace dynamips;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  bench::print_banner("Table 2",
                      "percentage of assignment changes across /24 blocks "
                      "and BGP prefixes");
  const auto& study = bench::shared_atlas_study();

  std::printf("%-12s %10s %14s %14s\n", "AS", "Diff /24", "Diff BGP (v4)",
              "Diff BGP (v6)");
  for (const auto& isp : simnet::paper_isps()) {
    if (!isp.in_table1) continue;
    auto it = study.spatial.find(isp.asn);
    if (it == study.spatial.end()) continue;
    const auto& s = it->second;
    std::printf("%-12s %9.0f%% %13.0f%% %13.0f%%\n", isp.name.c_str(),
                s.pct_v4_diff_24(), s.pct_v4_diff_bgp(),
                s.pct_v6_diff_bgp());
  }
  std::printf("\nExpected shape (paper): v4 changes usually cross /24s and "
              "often BGP prefixes; v6 changes almost never cross BGP "
              "prefixes (Free SAS at 42%% is the outlier).\n");
  return bench::finish();
}
