// ipv6.h — IPv6 address value type with RFC 4291 parsing and RFC 5952
// canonical formatting.
#pragma once

#include <functional>
#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netaddr/u128.h"

namespace dynamips::net {

/// An IPv6 address as a 128-bit value. The upper 64 bits are the "network"
/// component studied throughout the paper (the /64 prefix delegated or
/// advertised to a subscriber LAN); the lower 64 bits are the interface
/// identifier (IID).
class IPv6Address {
 public:
  constexpr IPv6Address() = default;
  constexpr explicit IPv6Address(U128 bits) : bits_(bits) {}
  constexpr IPv6Address(std::uint64_t network, std::uint64_t iid)
      : bits_{network, iid} {}

  /// Build from eight 16-bit groups, most significant first.
  static constexpr IPv6Address from_groups(
      const std::array<std::uint16_t, 8>& g) {
    U128 v{};
    for (int i = 0; i < 4; ++i) v.hi = (v.hi << 16) | g[std::size_t(i)];
    for (int i = 4; i < 8; ++i) v.lo = (v.lo << 16) | g[std::size_t(i)];
    return IPv6Address{v};
  }

  /// Parse RFC 4291 text form, including "::" compression and an embedded
  /// dotted-quad final group ("::ffff:192.0.2.1"). Zone identifiers and
  /// prefix lengths are rejected here (see Prefix6::parse for the latter).
  static std::optional<IPv6Address> parse(std::string_view text);

  /// RFC 5952 canonical text: lowercase hex, leading zeros dropped, the
  /// longest run of two-or-more zero groups (leftmost on tie) compressed.
  std::string to_string() const;

  constexpr U128 bits() const { return bits_; }
  /// Upper 64 bits: the /64 "network" component.
  constexpr std::uint64_t network64() const { return bits_.hi; }
  /// Lower 64 bits: the interface identifier.
  constexpr std::uint64_t iid() const { return bits_.lo; }

  constexpr std::array<std::uint16_t, 8> groups() const {
    std::array<std::uint16_t, 8> g{};
    for (int i = 0; i < 4; ++i)
      g[std::size_t(i)] = std::uint16_t(bits_.hi >> (48 - 16 * i));
    for (int i = 0; i < 4; ++i)
      g[std::size_t(4 + i)] = std::uint16_t(bits_.lo >> (48 - 16 * i));
    return g;
  }

  friend constexpr bool operator==(const IPv6Address&,
                                   const IPv6Address&) = default;
  friend constexpr std::strong_ordering operator<=>(const IPv6Address& a,
                                                    const IPv6Address& b) {
    return a.bits_ <=> b.bits_;
  }

 private:
  U128 bits_{};
};

/// Number of identical leading bits between two IPv6 addresses (0..128).
/// The paper's "Common Prefix Length" (CPL, §5.2) applies this to the
/// network64 component of successive assignments.
constexpr int common_prefix_length(const IPv6Address& a,
                                   const IPv6Address& b) {
  U128 x = a.bits() ^ b.bits();
  if (x.is_zero()) return 128;
  return x.countl_zero();
}

/// CPL restricted to the network component: identical leading bits of the
/// two 64-bit network parts (0..64). This is the quantity plotted in Fig. 5.
constexpr int common_prefix_length64(std::uint64_t net_a,
                                     std::uint64_t net_b) {
  std::uint64_t x = net_a ^ net_b;
  if (x == 0) return 64;
  return std::countl_zero(x);
}

/// Number of consecutive zero bits at the tail of a /64 network component,
/// i.e. zero bits immediately upstream of the /64 boundary. Used by the
/// subscriber-prefix-length inference of §5.3 ("finding the zero bits").
/// Returns 64 when the network component is entirely zero.
constexpr int trailing_zero_bits64(std::uint64_t network) {
  if (network == 0) return 64;
  return std::countr_zero(network);
}

/// The paper's CDN-side classification (Fig. 7) rounds the trailing-zero
/// streak down to a nibble boundary: an address whose network component ends
/// in >= 8 zero bits matches the /56 boundary, >= 16 the /48 boundary, etc.
/// Returns the inferred delegated prefix length (64 - nibble-rounded zeros),
/// or 64 when fewer than four trailing zero bits are present.
constexpr int inferred_delegation_from_zeros(std::uint64_t network) {
  int z = trailing_zero_bits64(network);
  int nibbles = z / 4;
  return 64 - 4 * nibbles;
}

}  // namespace dynamips::net

template <>
struct std::hash<dynamips::net::IPv6Address> {
  std::size_t operator()(const dynamips::net::IPv6Address& a) const noexcept {
    return std::hash<dynamips::net::U128>{}(a.bits());
  }
};
