// u128.h — minimal 128-bit unsigned integer for IPv6 address math.
//
// The standard library offers no portable 128-bit integer; this small value
// type provides exactly the operations the rest of the library needs
// (bitwise ops, shifts, comparison, leading/trailing zero counts) without
// pulling in compiler extensions at the public-interface level.
#pragma once

#include <functional>
#include <bit>
#include <cstddef>
#include <compare>
#include <cstdint>

namespace dynamips::net {

/// 128-bit unsigned integer stored as two 64-bit halves (big-endian order:
/// `hi` holds bits 127..64, `lo` holds bits 63..0). A regular value type:
/// trivially copyable, totally ordered, hashable via `hi`/`lo`.
struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  constexpr U128() = default;
  constexpr U128(std::uint64_t high, std::uint64_t low) : hi(high), lo(low) {}

  /// Construct from a single 64-bit value (placed in the low half).
  static constexpr U128 from_u64(std::uint64_t v) { return U128{0, v}; }

  friend constexpr bool operator==(const U128&, const U128&) = default;
  friend constexpr std::strong_ordering operator<=>(const U128& a,
                                                    const U128& b) {
    if (auto c = a.hi <=> b.hi; c != 0) return c;
    return a.lo <=> b.lo;
  }

  friend constexpr U128 operator&(const U128& a, const U128& b) {
    return U128{a.hi & b.hi, a.lo & b.lo};
  }
  friend constexpr U128 operator|(const U128& a, const U128& b) {
    return U128{a.hi | b.hi, a.lo | b.lo};
  }
  friend constexpr U128 operator^(const U128& a, const U128& b) {
    return U128{a.hi ^ b.hi, a.lo ^ b.lo};
  }
  constexpr U128 operator~() const { return U128{~hi, ~lo}; }

  /// Logical left shift by `n` bits (n in [0,128]; n >= 128 yields zero).
  friend constexpr U128 operator<<(const U128& a, unsigned n) {
    if (n == 0) return a;
    if (n >= 128) return U128{};
    if (n >= 64) return U128{a.lo << (n - 64), 0};
    return U128{(a.hi << n) | (a.lo >> (64 - n)), a.lo << n};
  }

  /// Logical right shift by `n` bits (n in [0,128]; n >= 128 yields zero).
  friend constexpr U128 operator>>(const U128& a, unsigned n) {
    if (n == 0) return a;
    if (n >= 128) return U128{};
    if (n >= 64) return U128{0, a.hi >> (n - 64)};
    return U128{a.hi >> n, (a.lo >> n) | (a.hi << (64 - n))};
  }

  friend constexpr U128 operator+(const U128& a, const U128& b) {
    std::uint64_t lo = a.lo + b.lo;
    std::uint64_t carry = lo < a.lo ? 1 : 0;
    return U128{a.hi + b.hi + carry, lo};
  }

  friend constexpr U128 operator-(const U128& a, const U128& b) {
    std::uint64_t lo = a.lo - b.lo;
    std::uint64_t borrow = a.lo < b.lo ? 1 : 0;
    return U128{a.hi - b.hi - borrow, lo};
  }

  /// Number of leading (most-significant) zero bits; 128 when zero.
  constexpr int countl_zero() const {
    if (hi != 0) return std::countl_zero(hi);
    return 64 + std::countl_zero(lo);
  }

  /// Number of trailing (least-significant) zero bits; 128 when zero.
  constexpr int countr_zero() const {
    if (lo != 0) return std::countr_zero(lo);
    return 64 + std::countr_zero(hi);
  }

  /// Value of bit `i` counted from the most-significant bit (bit 0 = MSB).
  constexpr bool bit_msb(unsigned i) const {
    if (i < 64) return (hi >> (63 - i)) & 1u;
    return (lo >> (127 - i)) & 1u;
  }

  /// True when all 128 bits are zero.
  constexpr bool is_zero() const { return hi == 0 && lo == 0; }
};

/// Mask with the top `len` bits set (len in [0,128]).
constexpr U128 mask128(unsigned len) {
  if (len == 0) return U128{};
  if (len >= 128) return U128{~0ull, ~0ull};
  return (~U128{}) << (128 - len);
}

}  // namespace dynamips::net

template <>
struct std::hash<dynamips::net::U128> {
  std::size_t operator()(const dynamips::net::U128& v) const noexcept {
    // Simple xor-rotate mix; good enough for hash-map bucketing of prefixes.
    std::uint64_t h = v.hi * 0x9e3779b97f4a7c15ull;
    h ^= (v.lo + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
    return static_cast<std::size_t>(h);
  }
};
