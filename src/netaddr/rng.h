// rng.h — deterministic pseudo-random number generation for simulation.
//
// All simulators in this library are seeded and reproducible; we provide a
// single fast PRNG (xoshiro256**) rather than depending on the unspecified
// distribution behaviour of <random>, which differs between standard library
// implementations and would break cross-platform reproducibility of the
// benchmark tables.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace dynamips::net {

/// SplitMix64 finalizer: bijectively scramble a pre-mixed 64-bit value into
/// a well-distributed seed. Shared by every per-entity stream derivation in
/// the library (Atlas probes, CDN logs, subscriber timelines): callers fold
/// (root seed, entity id) into `z` however they like, then finalize here.
/// Deriving one independent `Rng` per entity — instead of sharing a mutable
/// generator — is also what makes the simulators safe to call concurrently
/// from many shards.
constexpr std::uint64_t mix_seed(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** generator seeded via SplitMix64. Deterministic across
/// platforms; not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    auto splitmix = [&x]() {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    for (auto& s : state_) s = splitmix();
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    auto rotl = [](std::uint64_t v, int k) {
      return (v << k) | (v >> (64 - k));
    };
    std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform(std::uint64_t n) {
    // Debiased multiply-shift (Lemire).
    while (true) {
      std::uint64_t x = next_u64();
      __uint128_t m = static_cast<__uint128_t>(x) * n;
      std::uint64_t l = static_cast<std::uint64_t>(m);
      if (l >= n || l >= (-n) % n) return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_in(std::int64_t lo, std::int64_t hi) {
    return lo + std::int64_t(uniform(std::uint64_t(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform_real() {
    return double(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform_real() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform_real();
    // Guard the log: uniform_real can return exactly 0.
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Pareto (heavy-tailed) value with scale `xm` and shape `alpha`.
  double pareto(double xm, double alpha) {
    double u = uniform_real();
    if (u <= 0.0) u = 0x1.0p-53;
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Index drawn from the (unnormalized) discrete weights. Precondition:
  /// weights non-empty with positive sum.
  std::size_t weighted(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double r = uniform_real() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0) return i;
    }
    return weights.size() - 1;
  }

  /// Derive an independent child generator; used to give each simulated
  /// entity its own stream so entity ordering does not perturb results.
  Rng fork() { return Rng{next_u64() ^ 0xd1b54a32d192ed03ull}; }

 private:
  std::uint64_t state_[4];
};

}  // namespace dynamips::net
