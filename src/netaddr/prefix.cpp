#include "netaddr/prefix.h"

#include <charconv>

namespace dynamips::net {

namespace {

std::optional<int> parse_length(std::string_view text, int max_len) {
  if (text.empty() || text.size() > 3) return std::nullopt;
  // Digits only ("-0" must not parse), no leading zeros ("024" is not a
  // canonical length; plain "0" is).
  for (char c : text)
    if (c < '0' || c > '9') return std::nullopt;
  if (text.size() > 1 && text[0] == '0') return std::nullopt;
  int v = -1;
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || p != text.data() + text.size()) return std::nullopt;
  if (v < 0 || v > max_len) return std::nullopt;
  return v;
}

}  // namespace

std::optional<Prefix4> Prefix4::parse(std::string_view text) {
  std::size_t slash = text.rfind('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = IPv4Address::parse(text.substr(0, slash));
  auto len = parse_length(text.substr(slash + 1), 32);
  if (!addr || !len) return std::nullopt;
  return Prefix4{*addr, *len};
}

std::string Prefix4::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

std::optional<Prefix6> Prefix6::parse(std::string_view text) {
  std::size_t slash = text.rfind('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = IPv6Address::parse(text.substr(0, slash));
  auto len = parse_length(text.substr(slash + 1), 128);
  if (!addr || !len) return std::nullopt;
  return Prefix6{*addr, *len};
}

std::string Prefix6::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

}  // namespace dynamips::net
