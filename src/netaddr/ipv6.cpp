#include "netaddr/ipv6.h"

#include <charconv>
#include <vector>

#include "netaddr/ipv4.h"

namespace dynamips::net {

namespace {

// Parse one hex group (1-4 hex digits). Returns nullopt on bad syntax.
std::optional<std::uint16_t> parse_group(std::string_view s) {
  if (s.empty() || s.size() > 4) return std::nullopt;
  unsigned v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 16);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return std::uint16_t(v);
}

}  // namespace

std::optional<IPv6Address> IPv6Address::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;

  // Split on "::" if present. More than one occurrence is invalid.
  std::size_t dc = text.find("::");
  if (dc != std::string_view::npos &&
      text.find("::", dc + 1) != std::string_view::npos)
    return std::nullopt;

  auto split_groups = [](std::string_view part,
                         std::vector<std::string_view>& out) -> bool {
    if (part.empty()) return true;
    std::size_t start = 0;
    while (true) {
      std::size_t colon = part.find(':', start);
      std::string_view tok = colon == std::string_view::npos
                                 ? part.substr(start)
                                 : part.substr(start, colon - start);
      if (tok.empty()) return false;  // "a::b:" or ":a" style junk
      out.push_back(tok);
      // 9+ tokens can never form a valid address; bail instead of
      // growing proportionally to a hostile "1:1:1:..." input.
      if (out.size() > 8) return false;
      if (colon == std::string_view::npos) break;
      start = colon + 1;
    }
    return true;
  };

  std::vector<std::string_view> head, tail;
  if (dc == std::string_view::npos) {
    if (!split_groups(text, head)) return std::nullopt;
  } else {
    if (!split_groups(text.substr(0, dc), head)) return std::nullopt;
    if (!split_groups(text.substr(dc + 2), tail)) return std::nullopt;
  }

  // An embedded IPv4 dotted quad may terminate the address ("::ffff:1.2.3.4").
  auto& last_list = tail.empty() && dc == std::string_view::npos ? head : tail;
  std::optional<IPv4Address> embedded;
  if (!last_list.empty() &&
      last_list.back().find('.') != std::string_view::npos) {
    embedded = IPv4Address::parse(last_list.back());
    if (!embedded) return std::nullopt;
    last_list.pop_back();
  }

  std::array<std::uint16_t, 8> groups{};
  std::size_t total = head.size() + tail.size() + (embedded ? 2 : 0);
  if (dc == std::string_view::npos) {
    if (total != 8) return std::nullopt;
  } else {
    // "::" must stand for at least one zero group.
    if (total > 7) return std::nullopt;
  }

  std::size_t gi = 0;
  for (auto tok : head) {
    auto g = parse_group(tok);
    if (!g) return std::nullopt;
    groups[gi++] = *g;
  }
  std::size_t zero_fill = 8 - total;
  gi += zero_fill;
  for (auto tok : tail) {
    auto g = parse_group(tok);
    if (!g) return std::nullopt;
    groups[gi++] = *g;
  }
  if (embedded) {
    std::uint32_t v = embedded->value();
    groups[6] = std::uint16_t(v >> 16);
    groups[7] = std::uint16_t(v);
  }
  return from_groups(groups);
}

std::string IPv6Address::to_string() const {
  auto g = groups();

  // Find the longest run of >= 2 zero groups (leftmost wins ties).
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (g[std::size_t(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && g[std::size_t(j)] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  char buf[48];
  char* p = buf;
  auto emit_group = [&](int i) {
    auto [next, ec] =
        std::to_chars(p, buf + sizeof buf, unsigned(g[std::size_t(i)]), 16);
    (void)ec;
    p = next;
  };

  for (int i = 0; i < 8;) {
    if (i == best_start) {
      *p++ = ':';
      *p++ = ':';
      i += best_len;
      continue;
    }
    if (i > 0 && i != best_start + best_len) *p++ = ':';
    emit_group(i);
    ++i;
  }
  return std::string(buf, p);
}

}  // namespace dynamips::net
