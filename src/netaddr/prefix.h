// prefix.h — IPv4 and IPv6 prefix (CIDR block) value types.
#pragma once

#include <functional>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netaddr/ipv4.h"
#include "netaddr/ipv6.h"
#include "netaddr/u128.h"

namespace dynamips::net {

/// An IPv4 CIDR prefix. Stored canonically: host bits below `length` are
/// always zero (the constructor masks them).
class Prefix4 {
 public:
  constexpr Prefix4() = default;
  constexpr Prefix4(IPv4Address addr, int length)
      : addr_(IPv4Address{length == 0
                              ? 0
                              : addr.value() &
                                    (~std::uint32_t(0) << (32 - length))}),
        length_(std::uint8_t(length)) {}

  /// Parse "a.b.c.d/len". Host bits are masked, not rejected.
  static std::optional<Prefix4> parse(std::string_view text);

  std::string to_string() const;

  constexpr IPv4Address address() const { return addr_; }
  constexpr int length() const { return length_; }

  /// True when `a` lies inside this prefix.
  constexpr bool contains(IPv4Address a) const {
    if (length_ == 0) return true;
    return (a.value() >> (32 - length_)) == (addr_.value() >> (32 - length_));
  }

  /// True when `other` is equal to or more specific than this prefix.
  constexpr bool contains(const Prefix4& other) const {
    return other.length() >= length_ && contains(other.address());
  }

  friend constexpr bool operator==(const Prefix4&, const Prefix4&) = default;
  friend constexpr std::strong_ordering operator<=>(const Prefix4&,
                                                    const Prefix4&) = default;

 private:
  IPv4Address addr_{};
  std::uint8_t length_ = 0;
};

/// An IPv6 CIDR prefix, canonical (host bits zeroed).
class Prefix6 {
 public:
  constexpr Prefix6() = default;
  constexpr Prefix6(IPv6Address addr, int length)
      : addr_(IPv6Address{addr.bits() & mask128(unsigned(length))}),
        length_(std::uint8_t(length)) {}

  /// Parse "hex:groups::/len". Host bits are masked, not rejected.
  static std::optional<Prefix6> parse(std::string_view text);

  std::string to_string() const;

  constexpr IPv6Address address() const { return addr_; }
  constexpr int length() const { return length_; }

  constexpr bool contains(const IPv6Address& a) const {
    U128 m = mask128(unsigned(length_));
    return (a.bits() & m) == addr_.bits();
  }

  constexpr bool contains(const Prefix6& other) const {
    return other.length() >= length_ && contains(other.address());
  }

  friend constexpr bool operator==(const Prefix6&, const Prefix6&) = default;
  friend constexpr std::strong_ordering operator<=>(const Prefix6&,
                                                    const Prefix6&) = default;

 private:
  IPv6Address addr_{};
  std::uint8_t length_ = 0;
};

/// The enclosing /24 of an IPv4 address — the aggregation granularity used
/// by the CDN dataset and the Diff-/24 analysis (Table 2).
constexpr Prefix4 slash24_of(IPv4Address a) { return Prefix4{a, 24}; }

/// The enclosing /64 of an IPv6 address — the subscriber LAN granularity
/// studied throughout the paper.
constexpr Prefix6 slash64_of(const IPv6Address& a) { return Prefix6{a, 64}; }

}  // namespace dynamips::net

template <>
struct std::hash<dynamips::net::Prefix4> {
  std::size_t operator()(const dynamips::net::Prefix4& p) const noexcept {
    return std::hash<std::uint32_t>{}(p.address().value()) * 31u +
           std::size_t(p.length());
  }
};

template <>
struct std::hash<dynamips::net::Prefix6> {
  std::size_t operator()(const dynamips::net::Prefix6& p) const noexcept {
    return std::hash<dynamips::net::U128>{}(p.address().bits()) * 31u +
           std::size_t(p.length());
  }
};
