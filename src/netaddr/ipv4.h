// ipv4.h — IPv4 address value type.
#pragma once

#include <functional>
#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dynamips::net {

/// An IPv4 address held in host byte order. A regular value type with total
/// ordering (numeric), dotted-quad parsing/formatting, and the small set of
/// bit utilities the analysis pipeline needs.
class IPv4Address {
 public:
  constexpr IPv4Address() = default;
  constexpr explicit IPv4Address(std::uint32_t value) : value_(value) {}

  /// Build from four octets, most significant first: {a,b,c,d} = a.b.c.d.
  static constexpr IPv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c, std::uint8_t d) {
    return IPv4Address{(std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
                       (std::uint32_t(c) << 8) | std::uint32_t(d)};
  }

  /// Parse strict dotted-quad notation ("192.0.2.1"). Rejects leading zeros
  /// beyond a single digit (e.g. "01.2.3.4"), out-of-range octets, and any
  /// trailing characters. Returns nullopt on failure.
  static std::optional<IPv4Address> parse(std::string_view text);

  /// Dotted-quad representation.
  std::string to_string() const;

  constexpr std::uint32_t value() const { return value_; }

  constexpr std::array<std::uint8_t, 4> octets() const {
    return {std::uint8_t(value_ >> 24), std::uint8_t(value_ >> 16),
            std::uint8_t(value_ >> 8), std::uint8_t(value_)};
  }

  /// True if the address lies in RFC 1918 private space.
  constexpr bool is_rfc1918() const {
    return (value_ & 0xff000000u) == 0x0a000000u ||        // 10/8
           (value_ & 0xfff00000u) == 0xac100000u ||        // 172.16/12
           (value_ & 0xffff0000u) == 0xc0a80000u;          // 192.168/16
  }

  /// True if the address lies in RFC 6598 shared (CGNAT) space 100.64/10.
  constexpr bool is_rfc6598() const {
    return (value_ & 0xffc00000u) == 0x64400000u;
  }

  friend constexpr bool operator==(IPv4Address, IPv4Address) = default;
  friend constexpr std::strong_ordering operator<=>(IPv4Address a,
                                                    IPv4Address b) {
    return a.value_ <=> b.value_;
  }

 private:
  std::uint32_t value_ = 0;
};

/// Number of identical leading bits between two IPv4 addresses (0..32).
constexpr int common_prefix_length(IPv4Address a, IPv4Address b) {
  std::uint32_t x = a.value() ^ b.value();
  if (x == 0) return 32;
  int n = 0;
  for (std::uint32_t probe = 0x80000000u; (x & probe) == 0; probe >>= 1) ++n;
  return n;
}

}  // namespace dynamips::net

template <>
struct std::hash<dynamips::net::IPv4Address> {
  std::size_t operator()(dynamips::net::IPv4Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
