#include "netaddr/ipv4.h"

#include <charconv>
#include <cstdio>

namespace dynamips::net {

std::optional<IPv4Address> IPv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
    if (p == end || *p < '0' || *p > '9') return std::nullopt;
    // Reject leading zeros ("01"), which some parsers treat as octal.
    if (*p == '0' && p + 1 != end && p[1] >= '0' && p[1] <= '9')
      return std::nullopt;
    unsigned v = 0;
    auto [next, ec] = std::from_chars(p, end, v);
    if (ec != std::errc{} || v > 255) return std::nullopt;
    p = next;
    value = (value << 8) | v;
  }
  if (p != end) return std::nullopt;
  return IPv4Address{value};
}

std::string IPv4Address::to_string() const {
  char buf[16];
  auto o = octets();
  int n = std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", unsigned(o[0]),
                        unsigned(o[1]), unsigned(o[2]), unsigned(o[3]));
  return std::string(buf, std::size_t(n));
}

}  // namespace dynamips::net
