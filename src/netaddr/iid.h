// iid.h — IPv6 interface-identifier construction strategies.
//
// The paper distinguishes hosts using stable EUI-64 IIDs (trackable across
// network renumbering, §2.3/§6) from hosts using RFC 4941 privacy IIDs
// (ephemeral host parts). The simulator models both so that analyses which
// depend on the host part — e.g. "privacy addresses do not defeat /64
// tracking" — exercise realistic inputs.
#pragma once

#include <array>
#include <cstdint>

#include "netaddr/rng.h"

namespace dynamips::net {

/// A 48-bit IEEE MAC address, most significant octet first.
struct Mac {
  std::array<std::uint8_t, 6> octets{};

  /// Draw a locally-unique unicast MAC (multicast bit clear).
  static Mac random(Rng& rng) {
    Mac m;
    std::uint64_t v = rng.next_u64();
    for (auto& o : m.octets) {
      o = std::uint8_t(v);
      v >>= 8;
    }
    m.octets[0] &= 0xfeu;  // clear multicast bit
    return m;
  }
};

/// Modified EUI-64 IID from a MAC address (RFC 4291 appendix A): the MAC is
/// split around ff:fe and the universal/local bit is inverted. These IIDs
/// are stable for the device's lifetime and therefore trackable.
constexpr std::uint64_t eui64_iid(const Mac& mac) {
  std::uint64_t v = 0;
  v |= std::uint64_t(mac.octets[0] ^ 0x02u) << 56;
  v |= std::uint64_t(mac.octets[1]) << 48;
  v |= std::uint64_t(mac.octets[2]) << 40;
  v |= std::uint64_t(0xffu) << 32;
  v |= std::uint64_t(0xfeu) << 24;
  v |= std::uint64_t(mac.octets[3]) << 16;
  v |= std::uint64_t(mac.octets[4]) << 8;
  v |= std::uint64_t(mac.octets[5]);
  return v;
}

/// True if the IID carries the ff:fe marker of an EUI-64 construction.
constexpr bool is_eui64_iid(std::uint64_t iid) {
  return ((iid >> 24) & 0xffffu) == 0xfffeu;
}

/// RFC 4941 temporary ("privacy") IID: fresh randomness per regeneration.
/// The u/l bit is cleared so privacy IIDs never masquerade as EUI-64.
inline std::uint64_t privacy_iid(Rng& rng) {
  std::uint64_t v = rng.next_u64();
  v &= ~(std::uint64_t(0x02) << 56);  // clear universal/local bit
  // Avoid the ff:fe marker so classification stays unambiguous.
  if (is_eui64_iid(v)) v ^= 0x1ull << 24;
  return v;
}

/// RFC 7217 stable-opaque IID: deterministic per (secret, prefix) pair —
/// stable within a network, different across networks.
inline std::uint64_t stable_opaque_iid(std::uint64_t secret,
                                       std::uint64_t network64) {
  // One round of SplitMix-style mixing over the pair.
  std::uint64_t z = secret ^ (network64 * 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  if (is_eui64_iid(z)) z ^= 0x1ull << 24;
  return z;
}

}  // namespace dynamips::net
