// sanitize.h — the Appendix A.1 dataset sanitizer.
//
// Raw probe histories contain deployments that would corrupt change
// inference: probes observed too briefly, multihomed probes whose reported
// address alternates between upstreams, probes whose owner switched ISP
// (split into per-AS "virtual probes" instead of dropped), probes tagged as
// non-residential, probes not behind a typical NAT, and the RIPE test
// address at the head of histories. The sanitizer applies each filter and
// reports per-reason counts so the filtering itself is auditable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/rib.h"
#include "core/arena.h"
#include "core/intern.h"
#include "core/observations.h"
#include "obs/metrics.h"

namespace dynamips::io::ckpt {
class Writer;
class Reader;
}  // namespace dynamips::io::ckpt

namespace dynamips::core {

struct SanitizeOptions {
  /// Minimum observation span per (virtual) probe; shorter ones are dropped.
  Hour min_observation_hours = 730;  // one month
  /// Tags that disqualify a probe.
  std::vector<std::string> bad_tags{"multihomed", "datacentre", "core",
                                    "system-anchor"};
  /// Share of public-src v4 records above which the probe counts as not
  /// being behind a typical NAT.
  double public_src_threshold = 0.05;
  /// Share of v6 records with src/X-Client-IP mismatch above which the
  /// probe is dropped.
  double v6_mismatch_threshold = 0.05;
  /// Number of AS "runs" (maximal same-AS stretches) above which the
  /// sequence counts as alternating, i.e. multihomed. A clean ISP switch
  /// produces exactly 2 runs; alternation produces many.
  int max_as_runs = 2;
};

/// Why a probe (or part of one) was removed.
enum class FilterReason : std::uint8_t {
  kShortDuration,
  kBadTag,
  kPublicSrc,
  kV6SrcMismatch,
  kMultihomed,
  kUnrouted,  ///< observations outside any announced prefix
};

/// A cleaned per-AS observation series — the unit all downstream analyses
/// operate on. Probes that switched ISP contribute one CleanProbe per AS
/// ("virtual probes", Appendix A.1).
struct CleanProbe {
  std::uint32_t probe_id = 0;
  int virtual_index = 0;  ///< 0 for the first AS span, 1 for the next, ...
  bgp::Asn asn = 0;
  Hour first_hour = 0;
  Hour last_hour = 0;
  std::vector<Obs4> v4;
  std::vector<Obs6> v6;

  Hour observed_span() const { return last_hour - first_hour; }
};

/// Filter accounting, mirroring the counts Appendix A.1 reports.
struct SanitizeStats {
  std::uint64_t probes_seen = 0;
  std::uint64_t probes_kept = 0;       ///< raw probes with >= 1 CleanProbe
  std::uint64_t virtual_probes = 0;    ///< CleanProbes emitted
  std::uint64_t split_probes = 0;      ///< probes split across ASes
  std::uint64_t dropped_short = 0;
  std::uint64_t dropped_bad_tag = 0;
  std::uint64_t dropped_public_src = 0;
  std::uint64_t dropped_v6_mismatch = 0;
  std::uint64_t dropped_multihomed = 0;
  std::uint64_t test_address_records = 0;  ///< 193.0.0.78 records removed

  /// Absorb another shard's accounting; all fields are plain sums.
  void merge(const SanitizeStats& o) {
    probes_seen += o.probes_seen;
    probes_kept += o.probes_kept;
    virtual_probes += o.virtual_probes;
    split_probes += o.split_probes;
    dropped_short += o.dropped_short;
    dropped_bad_tag += o.dropped_bad_tag;
    dropped_public_src += o.dropped_public_src;
    dropped_v6_mismatch += o.dropped_v6_mismatch;
    dropped_multihomed += o.dropped_multihomed;
    test_address_records += o.test_address_records;
  }

  /// Export every accept/reject count as a "sanitize.*" counter, so the
  /// Appendix A.1 filter accounting shows up in the pipeline's metrics
  /// document next to the throughput numbers.
  void publish(obs::MetricsSink& sink) const;

  /// Checkpoint serialization (io/checkpoint.h).
  void save(io::ckpt::Writer& w) const;
  bool load(io::ckpt::Reader& r);
};

/// Stateless per-probe sanitizer (stats accumulate across calls).
class Sanitizer {
 public:
  Sanitizer(const bgp::Rib& rib, SanitizeOptions options);

  /// Sanitize one probe. Returns zero CleanProbes when fully filtered, one
  /// for a typical probe, several for a probe that moved between ASes.
  std::vector<CleanProbe> sanitize(const ProbeObservations& probe);

  /// Absorb another sanitizer's filter accounting (shard reduction).
  void merge(Sanitizer&& other) { stats_.merge(other.stats_); }
  void finalize() {}

  /// Checkpoint serialization: only the accumulated accounting is state;
  /// the RIB reference and options are reconstructed from the run config.
  void save(io::ckpt::Writer& w) const;
  bool load(io::ckpt::Reader& r);

  const SanitizeStats& stats() const { return stats_; }

  /// Snapshot of the filter accounting (core/parallel.h SnapshotAnalyzer):
  /// plain sums, so the copy is the finalized view and sanitizing more
  /// probes afterwards keeps accumulating.
  SanitizeStats snapshot() const { return stats_; }

 private:
  const bgp::Rib& rib_;
  SanitizeOptions options_;
  SanitizeStats stats_;
  std::vector<TagId> bad_tag_ids_;  ///< options_.bad_tags, interned + sorted
  MonotonicArena arena_;            ///< per-call scratch (reset each probe)
};

}  // namespace dynamips::core
