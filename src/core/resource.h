// resource.h — resource governor: bounded memory/disk for always-on runs.
//
// A long-lived `--follow` stream dies from resource exhaustion long before
// it dies from bit-flips (those are PR 8's failpoints): RSS creeps across
// re-finalizations, the checkpoint/output/quarantine files fill the disk,
// and an ingest backlog outruns the analyzer. The `ResourceGovernor` makes
// that failure mode graceful instead of fatal: it samples the process RSS
// (`/proc/self/statm`) and the free space of the checkpoint/output
// directories (`statvfs`) on a cheap cadence, compares them against
// operator budgets (`--max-rss-mb`, `--min-disk-free-mb`), and exposes a
// small set of pressure predicates the stream loop polls at batch
// boundaries to drive a documented degradation ladder:
//
//   memory pressure (rss >= max_rss_mb)
//     -> force an early durable checkpoint (the high-water mark survives
//        an OOM kill) and defer intermediate re-finalizations — the
//        re-finalization pass is the memory-hungry step, it builds a full
//        per-shard analyzer set over the accumulated dataset
//   disk soft pressure (free < min_disk_free_mb)
//     -> drop checkpoint retention to keep-last-1 (the `.prev` sibling is
//        released) and shed quarantine writes — counted, never silent
//   disk hard pressure (free < min_disk_free_mb / 2)
//     -> pause ingest entirely until space recovers
//
// None of the ladder's rungs may change study results: deferral and
// shedding only affect *intermediate* publications and diagnostics, and
// the final re-finalization always runs — a pressured run's outputs are
// byte-identical to an unpressured one at any thread count (gated by
// tests/test_stream.cpp).
//
// Observability contract: every governor action increments a named
// `resource.*` counter and every sample refreshes the `resource.rss_mb` /
// `resource.disk_free_mb` / `resource.backlog_batches` gauges, all
// recorded directly into the metrics registry so they are visible live in
// `/v1/metricsz` and in the `/v1/readyz` readiness document — mid-run, not
// only after the stream's final merge. These metrics describe *this
// process's* pressure history, so they are deliberately not persisted in
// checkpoints and are default-exempt in tools/check_metrics.py compares.
//
// Determinism hooks: the probes and the clock are injectable, so tests
// drive the full ladder with fake pressure and a fake cadence clock.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace dynamips::core {

/// Current resident set size of this process in bytes, from
/// `/proc/self/statm` (0 where the file does not exist). Unlike
/// obs::peak_rss_bytes() this is the *live* value, so a freed
/// re-finalization pass shows up as recovery.
std::uint64_t current_rss_bytes();

/// Free bytes available to unprivileged writes on the filesystem holding
/// `path` (statvfs f_bavail * f_frsize; 0 on error — treating an
/// unprobeable disk as full would wedge ingest on a stat hiccup, so
/// callers treat 0 as "unknown", not "empty").
std::uint64_t disk_free_bytes(const std::string& path);

struct ResourceBudgets {
  /// Memory budget in MiB; 0 disables memory-pressure detection.
  std::uint64_t max_rss_mb = 0;
  /// Free-disk floor in MiB; 0 disables disk-pressure detection. Soft
  /// pressure below the floor, hard pressure below half of it.
  std::uint64_t min_disk_free_mb = 0;
  /// Directories whose filesystems are probed; the minimum free space
  /// across them is the governed value (checkpoint dir + output dir).
  std::vector<std::string> disk_paths;
  /// Minimum milliseconds between probe rounds; calls inside the window
  /// return the cached state. 0 probes on every call (tests).
  std::uint64_t sample_interval_ms = 500;
  /// Gauge/counter destination; null disables all metric work.
  obs::MetricsRegistry* metrics = nullptr;

  // --- test hooks (null = the real /proc + statvfs + steady clock) ------
  std::function<std::uint64_t()> rss_probe;                        // bytes
  std::function<std::uint64_t(const std::string&)> disk_free_probe;  // bytes
  std::function<std::uint64_t()> clock_ms;  // monotonic milliseconds
};

enum class DiskPressure : std::uint8_t {
  kOk = 0,
  kSoft,  ///< free < min_disk_free_mb: drop retention, shed quarantine
  kHard,  ///< free < min_disk_free_mb / 2: pause ingest
};

std::string_view disk_pressure_name(DiskPressure pressure);

/// One sampled view of the governed resources.
struct ResourceState {
  std::uint64_t rss_mb = 0;
  std::uint64_t disk_free_mb = 0;  ///< min across disk_paths; see sampled
  bool disk_sampled = false;       ///< false until a disk probe succeeded
  bool memory_pressure = false;
  DiskPressure disk = DiskPressure::kOk;
  /// Scanned-but-unconsumed batch files, as last reported by the stream
  /// loop (note_backlog); 0 for non-streaming runs.
  std::uint64_t backlog_batches = 0;

  bool degraded() const {
    return memory_pressure || disk != DiskPressure::kOk;
  }
};

/// Thread-safe budget enforcer. The stream loop polls the predicates at
/// batch boundaries; the looking-glass readiness endpoint calls sample()
/// from its worker threads concurrently — all state lives behind one
/// mutex and the probes themselves are cadence-limited.
class ResourceGovernor {
 public:
  explicit ResourceGovernor(ResourceBudgets budgets);

  /// Re-probe when the cadence window has elapsed (always, with
  /// sample_interval_ms == 0) and return the latest state.
  ResourceState sample();

  /// Latest state without probing (cheap; may be stale by one cadence).
  ResourceState state() const;

  // Pressure predicates; each samples first.
  bool memory_pressure() { return sample().memory_pressure; }
  bool disk_soft() { return sample().disk >= DiskPressure::kSoft; }
  bool disk_hard() { return sample().disk == DiskPressure::kHard; }

  /// Record the stream's pending-batch backlog (state + the
  /// `resource.backlog_batches` gauge).
  void note_backlog(std::uint64_t batches);

  /// Count one governor action: bumps counter `resource.<action>` in the
  /// registry. Every degradation must pass through here — the acceptance
  /// contract is "observable, never silent".
  void count(std::string_view action, std::uint64_t n = 1);

  const ResourceBudgets& budgets() const { return budgets_; }

 private:
  std::uint64_t now_ms() const;
  std::uint64_t probe_rss() const;
  std::uint64_t probe_disk(const std::string& path) const;

  ResourceBudgets budgets_;
  mutable std::mutex mu_;
  ResourceState state_;
  std::uint64_t last_sample_ms_ = 0;
  bool sampled_once_ = false;
};

}  // namespace dynamips::core
