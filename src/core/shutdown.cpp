#include "core/shutdown.h"

#include <chrono>
#include <csignal>
#include <limits>
#include <thread>

#ifdef __unix__
#include <ctime>
#endif

namespace dynamips::core {

namespace {

std::uint64_t steady_now_ns() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

extern "C" void shutdown_signal_handler(int) {
  global_shutdown_token().request();
}

}  // namespace

bool ShutdownToken::requested() const noexcept {
  if (requested_.load(std::memory_order_relaxed)) return true;
  std::uint64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  return deadline != 0 && steady_now_ns() >= deadline;
}

void ShutdownToken::arm_deadline_seconds(double seconds) noexcept {
  if (seconds <= 0) {
    deadline_ns_.store(0, std::memory_order_relaxed);
    return;
  }
  // Clamp before converting: for large deadlines `seconds * 1e9` exceeds
  // the uint64 range and the double->uint64 conversion is UB (in practice
  // it wrapped to a deadline in the past, firing the shutdown instantly).
  // Saturate the product and the addition so a huge --deadline-seconds
  // means "effectively never" instead.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  double product_ns = seconds * 1e9;
  std::uint64_t delta =
      product_ns >= double(kMax) ? kMax : std::uint64_t(product_ns);
  std::uint64_t now = steady_now_ns();
  std::uint64_t deadline = delta > kMax - now ? kMax : now + delta;
  deadline_ns_.store(deadline, std::memory_order_relaxed);
}

ShutdownToken& global_shutdown_token() {
  static ShutdownToken token;
  return token;
}

void install_shutdown_handlers() {
  // Touch the token first so its static initialization cannot race a
  // signal delivered right after the handlers are in place.
  global_shutdown_token();
  std::signal(SIGINT, shutdown_signal_handler);
  std::signal(SIGTERM, shutdown_signal_handler);
}

void interruptible_sleep_ms(std::uint64_t ms, const ShutdownToken* token) {
  constexpr std::uint64_t kSliceMs = 50;
  const std::uint64_t start = steady_now_ns();
  const std::uint64_t total_ns = ms * 1000000ull;
  while (true) {
    if (token && token->requested()) return;
    const std::uint64_t elapsed = steady_now_ns() - start;
    if (elapsed >= total_ns) return;
    std::uint64_t remain_ms = (total_ns - elapsed) / 1000000ull + 1;
    std::uint64_t slice = remain_ms < kSliceMs ? remain_ms : kSliceMs;
#ifdef __unix__
    // nanosleep (not std::this_thread::sleep_for) so an EINTR wakeup is
    // explicit: we loop on the measured remainder rather than trusting
    // any one sleep call to run to completion.
    struct timespec req{};
    req.tv_sec = time_t(slice / 1000);
    req.tv_nsec = long((slice % 1000) * 1000000ull);
    ::nanosleep(&req, nullptr);
#else
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
#endif
  }
}

}  // namespace dynamips::core
