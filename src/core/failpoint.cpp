#include "core/failpoint.h"

#include <cstdlib>
#include <utility>
#include <vector>

namespace dynamips::core {

namespace {

using fp_detail::Entry;

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

Status bad_entry(std::string_view entry, std::string_view why) {
  std::string msg = "bad failpoint entry \"";
  msg += entry;
  msg += "\": ";
  msg += why;
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}

/// FNV-1a over the token: any string is a usable probabilistic seed, so
/// `*0.1%seed` means "seeded by the word seed", reproducibly.
std::uint64_t hash_seed_token(std::string_view token) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : token) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

bool parse_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    std::uint64_t next = value * 10 + std::uint64_t(c - '0');
    if (next < value) return false;  // overflow
    value = next;
  }
  *out = value;
  return true;
}

/// predicate := @A | @A..B | @A.. | *F%SEED  (empty = fire on every hit)
Status parse_predicate(std::string_view entry, std::string_view pred,
                       Entry* e) {
  if (pred.empty()) return Status::Ok();
  if (pred.front() == '@') {
    pred.remove_prefix(1);
    std::size_t dots = pred.find("..");
    std::string_view from_text =
        dots == std::string_view::npos ? pred : pred.substr(0, dots);
    if (!parse_u64(trim(from_text), &e->from) || e->from == 0)
      return bad_entry(entry, "@ wants a positive hit number");
    if (dots == std::string_view::npos) {
      e->to = e->from;  // @N: exactly the Nth hit
    } else {
      std::string_view to_text = trim(pred.substr(dots + 2));
      if (to_text.empty()) {
        e->to = ~0ull;  // @N..: open-ended
      } else if (!parse_u64(to_text, &e->to) || e->to < e->from) {
        return bad_entry(entry, "@A..B wants B >= A");
      }
    }
    return Status::Ok();
  }
  if (pred.front() == '*') {
    pred.remove_prefix(1);
    std::size_t pct = pred.find('%');
    if (pct == std::string_view::npos)
      return bad_entry(entry, "*F needs %SEED (determinism is the point)");
    char* end = nullptr;
    std::string frac_text(trim(pred.substr(0, pct)));
    double fraction = std::strtod(frac_text.c_str(), &end);
    if (frac_text.empty() || end != frac_text.c_str() + frac_text.size() ||
        fraction <= 0.0 || fraction > 1.0)
      return bad_entry(entry, "*F wants a fraction in (0, 1]");
    std::string_view seed_text = trim(pred.substr(pct + 1));
    if (seed_text.empty()) return bad_entry(entry, "%SEED must not be empty");
    if (!parse_u64(seed_text, &e->seed)) e->seed = hash_seed_token(seed_text);
    e->probabilistic = true;
    e->threshold = fraction >= 1.0
                       ? ~0ull
                       : static_cast<std::uint64_t>(
                             fraction * 18446744073709551616.0 /* 2^64 */);
    return Status::Ok();
  }
  return bad_entry(entry, "predicate must start with @ or *");
}

/// action := off | err | err(ERRNO) | short | delay(Nms), with the
/// predicate (if any) trailing. Returns true-armed entries through `out`;
/// `off` parses fine but arms nothing.
Status parse_action(std::string_view entry, std::string_view text, Entry* e,
                    bool* armed) {
  *armed = true;
  std::size_t pred_at = text.find_first_of("@*");
  std::string_view action = trim(text.substr(
      0, pred_at == std::string_view::npos ? text.size() : pred_at));
  std::string_view pred =
      pred_at == std::string_view::npos ? std::string_view() : text.substr(pred_at);

  if (action == "off") {
    if (!pred.empty()) return bad_entry(entry, "off takes no predicate");
    *armed = false;
    return Status::Ok();
  }
  if (action == "err") {
    e->hit.kind = FailpointHit::Kind::kError;
    e->hit.err = EIO;
  } else if (action.starts_with("err(") && action.ends_with(")")) {
    std::string_view name = trim(action.substr(4, action.size() - 5));
    int err = parse_errno_name(name);
    if (err == 0) return bad_entry(entry, "unknown errno name");
    e->hit.kind = FailpointHit::Kind::kError;
    e->hit.err = err;
  } else if (action == "short") {
    e->hit.kind = FailpointHit::Kind::kShortWrite;
  } else if (action.starts_with("delay(") && action.ends_with("ms)")) {
    std::string_view ms = trim(action.substr(6, action.size() - 9));
    if (!parse_u64(ms, &e->hit.delay_ms))
      return bad_entry(entry, "delay(Nms) wants an integer millisecond count");
    e->hit.kind = FailpointHit::Kind::kDelay;
  } else {
    return bad_entry(entry, "action must be off, err, err(ERRNO), short, "
                            "or delay(Nms)");
  }
  return parse_predicate(entry, trim(pred), e);
}

}  // namespace

int parse_errno_name(std::string_view name) {
  if (name == "EIO") return EIO;
  if (name == "ENOSPC") return ENOSPC;
  if (name == "EAGAIN") return EAGAIN;
  if (name == "EPIPE") return EPIPE;
  if (name == "ECONNRESET") return ECONNRESET;
  if (name == "ECONNABORTED") return ECONNABORTED;
  if (name == "EINTR") return EINTR;
  if (name == "EMFILE") return EMFILE;
  if (name == "EBADF") return EBADF;
  return 0;
}

Status arm_failpoints(std::string_view spec) {
  // Parse into a staging map first: a bad entry must not clobber (or
  // half-replace) the current arming.
  std::map<std::string, Entry, std::less<>> staged;
  std::string_view rest = spec;
  while (!rest.empty()) {
    std::size_t sep = rest.find(';');
    std::string_view entry = trim(rest.substr(0, sep));
    rest = sep == std::string_view::npos ? std::string_view()
                                         : rest.substr(sep + 1);
    if (entry.empty()) continue;
    std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0)
      return bad_entry(entry, "expected name=action");
    std::string name(trim(entry.substr(0, eq)));
    Entry e;
    bool armed = false;
    if (Status st = parse_action(entry, trim(entry.substr(eq + 1)), &e,
                                 &armed);
        !st.ok())
      return st;
    if (armed)
      staged[name] = e;
    else
      staged.erase(name);
  }

  fp_detail::Registry& reg = fp_detail::registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.entries = std::move(staged);
  fp_detail::g_armed.store(reg.entries.size(), std::memory_order_relaxed);
  return Status::Ok();
}

Status arm_failpoints_from_env() {
  const char* spec = std::getenv("DYNAMIPS_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return Status::Ok();
  return arm_failpoints(spec);
}

void disarm_failpoints() {
  fp_detail::Registry& reg = fp_detail::registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.entries.clear();
  fp_detail::g_armed.store(0, std::memory_order_relaxed);
}

std::uint64_t failpoint_fired(std::string_view name) {
  fp_detail::Registry& reg = fp_detail::registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.entries.find(name);
  return it == reg.entries.end() ? 0 : it->second.fired;
}

std::string failpoint_report() {
  fp_detail::Registry& reg = fp_detail::registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::string out;
  for (const auto& [name, e] : reg.entries) {
    if (!out.empty()) out += "; ";
    out += name;
    out += ": hits=";
    out += std::to_string(e.count);
    out += " fired=";
    out += std::to_string(e.fired);
  }
  return out;
}

}  // namespace dynamips::core
