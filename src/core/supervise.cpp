#include "core/supervise.h"

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "core/shutdown.h"

#ifdef __unix__
#include <cerrno>
#include <csignal>
#include <cstring>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace dynamips::core {

namespace {

std::uint64_t steady_ms() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

std::string outcome_text(const ChildOutcome& out) {
  if (out.term_signal != 0)
    return "killed by signal " + std::to_string(out.term_signal);
  return "exit code " + std::to_string(out.exit_code);
}

}  // namespace

// --------------------------------------------------------- RestartPolicy

std::uint64_t RestartPolicy::on_failure(std::uint64_t now_ms) {
  ++consecutive_;
  failures_.push_back(now_ms);
  if (config_.crash_loop_window_ms > 0) {
    while (!failures_.empty() &&
           now_ms - failures_.front() > config_.crash_loop_window_ms)
      failures_.pop_front();
  }
  const std::uint64_t base =
      config_.backoff_base_ms > 0 ? config_.backoff_base_ms : 1;
  const std::uint64_t shift =
      consecutive_ - 1 < 20 ? consecutive_ - 1 : 20;
  std::uint64_t backoff = base << shift;
  if (config_.backoff_max_ms > 0 && backoff > config_.backoff_max_ms)
    backoff = config_.backoff_max_ms;
  return backoff;
}

void RestartPolicy::on_progress() {
  consecutive_ = 0;
  failures_.clear();
}

bool RestartPolicy::crash_looping(std::uint64_t now_ms) const {
  if (config_.crash_loop_failures == 0) return false;
  std::uint64_t in_window = 0;
  for (std::uint64_t t : failures_) {
    if (config_.crash_loop_window_ms == 0 ||
        now_ms - t <= config_.crash_loop_window_ms)
      ++in_window;
  }
  return in_window >= config_.crash_loop_failures;
}

// ----------------------------------------------------------- ProcessChild

ProcessChild::ProcessChild(std::vector<std::string> argv)
    : argv_(std::move(argv)) {}

ProcessChild::~ProcessChild() {
#ifdef __unix__
  // Never leak a running child past the supervisor: hard-kill and reap so
  // an abnormal supervisor exit cannot leave an unsupervised orphan.
  if (pid_ > 0) {
    ::kill(pid_t(pid_), SIGKILL);
    int status = 0;
    pid_t rc;
    do {
      rc = ::waitpid(pid_t(pid_), &status, 0);
    } while (rc < 0 && errno == EINTR);
  }
#endif
}

Status ProcessChild::start(
    const std::vector<std::string>& extra_args,
    const std::vector<std::pair<std::string, std::string>>& extra_env) {
#ifdef __unix__
  if (pid_ > 0)
    return Status(StatusCode::kFailedPrecondition,
                  "supervised child already running");
  if (argv_.empty())
    return Status(StatusCode::kInvalidArgument, "empty child argv");
  std::vector<std::string> full = argv_;
  full.insert(full.end(), extra_args.begin(), extra_args.end());

  pid_t pid = ::fork();
  if (pid < 0)
    return Status(StatusCode::kInternal,
                  std::string("fork failed: ") + std::strerror(errno));
  if (pid == 0) {
    for (const auto& [name, value] : extra_env)
      ::setenv(name.c_str(), value.c_str(), 1);
    std::vector<char*> cargv;
    cargv.reserve(full.size() + 1);
    for (const std::string& arg : full)
      cargv.push_back(const_cast<char*>(arg.c_str()));
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    std::fprintf(stderr, "supervise: cannot exec %s: %s\n", cargv[0],
                 std::strerror(errno));
    std::_Exit(127);
  }
  pid_ = pid;
  return Status::Ok();
#else
  (void)extra_args;
  (void)extra_env;
  return Status(StatusCode::kUnimplemented,
                "process supervision requires a POSIX platform");
#endif
}

bool ProcessChild::poll(ChildOutcome* out) {
#ifdef __unix__
  if (pid_ <= 0) return false;
  int status = 0;
  pid_t rc = ::waitpid(pid_t(pid_), &status, WNOHANG);
  if (rc == 0) return false;
  if (rc < 0) {
    if (errno == EINTR) return false;  // signal landed mid-wait; re-poll
    pid_ = -1;  // ECHILD etc.: the child is gone but unaccountable
    out->exit_code = 1;
    out->term_signal = 0;
    return true;
  }
  pid_ = -1;
  if (WIFSIGNALED(status)) {
    out->term_signal = WTERMSIG(status);
    out->exit_code = 128 + out->term_signal;
  } else {
    out->term_signal = 0;
    out->exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
  }
  return true;
#else
  (void)out;
  return false;
#endif
}

void ProcessChild::terminate(bool hard) {
#ifdef __unix__
  if (pid_ > 0) ::kill(pid_t(pid_), hard ? SIGKILL : SIGTERM);
#else
  (void)hard;
#endif
}

// -------------------------------------------------------------- supervise

SuperviseReport supervise(ChildProcess& child, const SuperviseConfig& config,
                          const SuperviseHooks& hooks) {
  auto clock = hooks.clock_ms ? hooks.clock_ms : steady_ms;
  auto sleep = hooks.sleep_ms ? hooks.sleep_ms : [](std::uint64_t ms) {
    interruptible_sleep_ms(ms, nullptr);
  };
  auto log = hooks.log ? hooks.log : [](const std::string& line) {
    std::fprintf(stderr, "supervise: %s\n", line.c_str());
  };
  auto count = [&](const char* name, std::uint64_t n = 1) {
    if (hooks.metrics)
      hooks.metrics->add_counter(std::string("supervise.") + name, n);
  };
  auto stop_requested = [&] { return hooks.stop && hooks.stop(); };

  RestartPolicy policy(config);
  SuperviseReport report;
  std::uint64_t last_progress = hooks.progress ? hooks.progress() : 0;
  int last_code = 0;

  for (;;) {
    if (stop_requested()) {
      report.exit_code = last_code;
      report.diagnosis = "stopped by operator before (re)launch";
      log(report.diagnosis);
      return report;
    }

    std::vector<std::string> extra_args;
    std::string resume = hooks.resume_path ? hooks.resume_path() : "";
    if (!resume.empty()) {
      extra_args.push_back("--resume-from");
      extra_args.push_back(resume);
    }
    std::vector<std::pair<std::string, std::string>> extra_env = {
        {"DYNAMIPS_SUPERVISE_LAUNCHES",
         std::to_string(report.launches + 1)},
        {"DYNAMIPS_SUPERVISE_RESTARTS", std::to_string(report.restarts)},
    };

    const std::uint64_t launch_ms = clock();
    Status started = child.start(extra_args, extra_env);
    ChildOutcome out;
    bool launch_failed = !started.ok();
    bool stopping = false;
    bool killed_unresponsive = false;
    if (launch_failed) {
      log("cannot launch child: " + started.to_string());
      out.exit_code = 1;
    } else {
      ++report.launches;
      count("launches");
      log(resume.empty()
              ? "launched child (fresh start, launch " +
                    std::to_string(report.launches) + ")"
              : "launched child (resume from " + resume + ", launch " +
                    std::to_string(report.launches) + ")");

      std::uint64_t progress_anchor = launch_ms;
      std::uint64_t stop_deadline = 0;
      while (!child.poll(&out)) {
        const std::uint64_t now = clock();
        if (stop_requested()) {
          if (!stopping) {
            stopping = true;
            stop_deadline = now + config.term_grace_ms;
            log("stop requested; terminating child");
            child.terminate(/*hard=*/false);
          } else if (now >= stop_deadline) {
            child.terminate(/*hard=*/true);
          }
        } else {
          if (hooks.progress) {
            std::uint64_t cur = hooks.progress();
            if (cur != last_progress) {
              last_progress = cur;
              progress_anchor = now;
              policy.on_progress();
            }
          }
          const bool stalled =
              config.stall_timeout_ms > 0 &&
              now - progress_anchor >= config.stall_timeout_ms;
          bool heartbeat_stale = false;
          if (config.heartbeat_timeout_ms > 0 && hooks.heartbeat_age_ms &&
              now - launch_ms >= config.heartbeat_timeout_ms) {
            std::int64_t age = hooks.heartbeat_age_ms();
            heartbeat_stale =
                age >= 0 && std::uint64_t(age) >= config.heartbeat_timeout_ms;
          }
          if ((stalled || heartbeat_stale) && !killed_unresponsive) {
            killed_unresponsive = true;
            ++report.stall_kills;
            count("stalls");
            log(stalled ? "no checkpoint progress for " +
                              std::to_string(config.stall_timeout_ms) +
                              "ms; killing stalled child"
                        : "heartbeat stale; killing hung child");
            child.terminate(/*hard=*/true);
          }
        }
        sleep(config.poll_ms);
      }
    }

    const std::uint64_t exit_ms = clock();
    last_code = out.exit_code;
    // The child may have checkpointed right before dying; credit it.
    if (hooks.progress) {
      std::uint64_t cur = hooks.progress();
      if (cur != last_progress) {
        last_progress = cur;
        policy.on_progress();
      }
    }

    if (!launch_failed && !killed_unresponsive && out.term_signal == 0 &&
        out.exit_code == 0) {
      report.exit_code = 0;
      log("child completed cleanly after " +
          std::to_string(report.launches) + " launch(es)");
      return report;
    }
    if (stopping || stop_requested()) {
      report.exit_code = out.exit_code;
      report.diagnosis = "stopped by operator; child " + outcome_text(out);
      log(report.diagnosis);
      return report;
    }
    if (!launch_failed && out.term_signal == 0 && out.exit_code == 2) {
      // A usage error restarts into the identical usage error: give the
      // operator the exit code instead of a futile loop.
      report.exit_code = 2;
      report.diagnosis = "child rejected its arguments (exit 2); "
                         "not restartable";
      log(report.diagnosis);
      return report;
    }

    count("failures");
    const std::uint64_t backoff = policy.on_failure(exit_ms);
    std::string checkpoint_note = hooks.describe_checkpoint
                                      ? hooks.describe_checkpoint()
                                      : std::string("no checkpoint tracking");
    if (policy.crash_looping(exit_ms)) {
      report.gave_up = true;
      report.exit_code = 1;
      count("giveups");
      report.diagnosis =
          "crash loop: " + std::to_string(policy.consecutive_failures()) +
          " consecutive failures (last: " + outcome_text(out) + "), " +
          std::to_string(config.crash_loop_failures) + " within " +
          std::to_string(config.crash_loop_window_ms) +
          "ms and no progress; giving up. " + checkpoint_note;
      log(report.diagnosis);
      return report;
    }

    ++report.restarts;
    count("restarts");
    count("backoff_ms", backoff);
    log("child " + outcome_text(out) + " (failure " +
        std::to_string(policy.consecutive_failures()) + "); restarting in " +
        std::to_string(backoff) + "ms. " + checkpoint_note);
    sleep(backoff);
  }
}

// ---------------------------------------------------------- child helpers

void Heartbeat::start(std::string path, std::uint64_t interval_ms) {
  stop();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
  }
  if (interval_ms == 0) interval_ms = 1000;
  thread_ = std::thread([this, path = std::move(path), interval_ms] {
    std::uint64_t beats = 0;
    for (;;) {
      if (std::FILE* f = std::fopen(path.c_str(), "w")) {
        std::fprintf(f, "%llu\n", (unsigned long long)beats++);
        std::fclose(f);
      }
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                       [this] { return stopping_; }))
        return;
    }
  });
}

void Heartbeat::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::int64_t file_age_ms(const std::string& path) {
  std::error_code ec;
  auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return -1;
  auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::filesystem::file_time_type::clock::now() - mtime);
  return delta.count() < 0 ? 0 : std::int64_t(delta.count());
}

std::uint64_t file_progress_token(const std::string& path) {
  std::error_code ec;
  auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return 0;
  std::uint64_t size = std::uint64_t(std::filesystem::file_size(path, ec));
  if (ec) size = 0;
  std::uint64_t ns = std::uint64_t(mtime.time_since_epoch().count());
  // FNV-1a over the two words; 0 is reserved for "missing".
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t word : {ns, size}) {
    for (int i = 0; i < 8; ++i) {
      h ^= (word >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  return h == 0 ? 1 : h;
}

}  // namespace dynamips::core
