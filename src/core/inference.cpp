#include "core/inference.h"

#include <algorithm>
#include <vector>

#include "io/checkpoint.h"
#include "netaddr/ipv6.h"

namespace dynamips::core {

void InferenceCollector::save(io::ckpt::Writer& w) const {
  w.u64(subscriber_.size());
  for (const auto& [asn, results] : subscriber_) {
    w.u32(asn);
    w.u64(results.size());
    for (const SubscriberInference& si : results) {
      w.i32(si.inferred_len);
      w.i32(si.changes);
    }
  }
  w.u64(pool_.size());
  for (const auto& [asn, results] : pool_) {
    w.u32(asn);
    w.u64(results.size());
    for (const PoolInference& pi : results) {
      w.i32(pi.pool_len);
      w.f64(pi.coverage);
    }
  }
}

bool InferenceCollector::load(io::ckpt::Reader& r) {
  subscriber_.clear();
  pool_.clear();
  std::uint64_t n_sub = r.size();
  for (std::uint64_t i = 0; i < n_sub && r.ok(); ++i) {
    bgp::Asn asn = r.u32();
    auto& results = subscriber_[asn];
    std::uint64_t n = r.size();
    results.reserve(n);
    for (std::uint64_t j = 0; j < n && r.ok(); ++j) {
      SubscriberInference si;
      si.inferred_len = r.i32();
      si.changes = r.i32();
      results.push_back(si);
    }
  }
  std::uint64_t n_pool = r.size();
  for (std::uint64_t i = 0; i < n_pool && r.ok(); ++i) {
    bgp::Asn asn = r.u32();
    auto& results = pool_[asn];
    std::uint64_t n = r.size();
    results.reserve(n);
    for (std::uint64_t j = 0; j < n && r.ok(); ++j) {
      PoolInference pi;
      pi.pool_len = r.i32();
      pi.coverage = r.f64();
      results.push_back(pi);
    }
  }
  return r.ok();
}

std::optional<SubscriberInference> infer_subscriber_prefix(
    const CleanProbe& probe) {
  return infer_subscriber_prefix(
      std::span<const Span6>(extract_spans6(probe.v6)));
}

std::optional<SubscriberInference> infer_subscriber_prefix(
    std::span<const Span6> spans) {
  if (spans.size() < 2) return std::nullopt;  // need >= 1 change
  int common_zeros = 64;
  for (const auto& s : spans)
    common_zeros = std::min(common_zeros, net::trailing_zero_bits64(s.net64));
  SubscriberInference out;
  out.inferred_len = 64 - common_zeros;
  out.changes = int(spans.size()) - 1;
  return out;
}

std::optional<PoolInference> infer_pool(const CleanProbe& probe,
                                        double min_coverage,
                                        int min_changes) {
  return infer_pool(std::span<const Span6>(extract_spans6(probe.v6)),
                    min_coverage, min_changes);
}

std::optional<PoolInference> infer_pool(std::span<const Span6> spans,
                                        double min_coverage,
                                        int min_changes) {
  if (int(spans.size()) < min_changes + 1) return std::nullopt;
  double total = double(spans.size());
  // Sort the /64s once: for any length, equal length-prefixes of sorted
  // values are contiguous, so the dominant prefix's multiplicity is the
  // longest run of equal shifted values — the same count the per-length
  // hash tally produced, without building 64 hash maps.
  std::vector<std::uint64_t> nets;
  nets.reserve(spans.size());
  for (const auto& s : spans) nets.push_back(s.net64);
  std::sort(nets.begin(), nets.end());
  // Walk from the most specific length down; the first (longest) length
  // whose dominant prefix covers enough assignments is the pool boundary.
  for (int len = 64; len >= 1; --len) {
    int shift = 64 - len;
    std::uint32_t best = 0, run = 0;
    std::uint64_t prev = 0;
    for (std::uint64_t n : nets) {
      std::uint64_t p = n >> shift;
      run = (run && p == prev) ? run + 1 : 1;
      prev = p;
      best = std::max(best, run);
    }
    double coverage = double(best) / total;
    if (coverage >= min_coverage) return PoolInference{len, coverage};
  }
  return std::nullopt;
}

ZeroBoundary classify_trailing_zeros(std::uint64_t net64) {
  int z = net::trailing_zero_bits64(net64);
  if (z >= 16) return ZeroBoundary::k48;
  if (z >= 12) return ZeroBoundary::k52;
  if (z >= 8) return ZeroBoundary::k56;
  if (z >= 4) return ZeroBoundary::k60;
  return ZeroBoundary::kNone;
}

void InferenceCollector::add(const CleanProbe& probe) {
  // Both inferences consume the same /64 spans; extract them once.
  auto spans = extract_spans6(probe.v6);
  std::span<const Span6> view(spans);
  if (auto inf = infer_subscriber_prefix(view))
    subscriber_[probe.asn].push_back(*inf);
  if (auto pool = infer_pool(view)) pool_[probe.asn].push_back(*pool);
}

void InferenceCollector::merge(InferenceCollector&& other) {
  for (auto& [asn, infs] : other.subscriber_) {
    auto [it, inserted] = subscriber_.try_emplace(asn, std::move(infs));
    if (!inserted)
      it->second.insert(it->second.end(), infs.begin(), infs.end());
  }
  for (auto& [asn, infs] : other.pool_) {
    auto [it, inserted] = pool_.try_emplace(asn, std::move(infs));
    if (!inserted)
      it->second.insert(it->second.end(), infs.begin(), infs.end());
  }
}

const char* zero_boundary_name(ZeroBoundary b) {
  switch (b) {
    case ZeroBoundary::kNone: return "none";
    case ZeroBoundary::k60: return "/60";
    case ZeroBoundary::k56: return "/56";
    case ZeroBoundary::k52: return "/52";
    case ZeroBoundary::k48: return "/48";
  }
  return "?";
}

}  // namespace dynamips::core
