// changes.h — assignment-change detection and duration inference (§3.1).
//
// From an hour-ordered observation series we build "spans": maximal
// stretches during which the reported IPv4 address (or IPv6 /64 network
// component) stayed the same. A change is the boundary between consecutive
// spans. Durations are only measured for spans sandwiched between two
// changes — the first and last spans of a series are censored by the
// observation window and would bias the distribution if counted.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/observations.h"
#include "netaddr/ipv4.h"

namespace dynamips::core {

/// A maximal stretch of identical v4 assignment.
struct Span4 {
  Hour first_seen = 0;
  Hour last_seen = 0;
  net::IPv4Address addr;
};

/// A maximal stretch of identical v6 /64 network component.
struct Span6 {
  Hour first_seen = 0;
  Hour last_seen = 0;
  std::uint64_t net64 = 0;  ///< network component of the reported address
};

/// A v4 change event (boundary between two spans).
struct Change4 {
  Hour at = 0;  ///< first hour the new assignment was observed
  net::IPv4Address prev, next;
};

/// A v6 change event.
struct Change6 {
  Hour at = 0;
  std::uint64_t prev_net64 = 0, next_net64 = 0;
};

struct ChangeOptions {
  /// A duration is trusted only when the measurement gap around both of its
  /// bounding changes is at most this long; longer outages make the change
  /// instant too uncertain (the probe may also have moved).
  Hour max_boundary_gap = 72;
};

std::vector<Span4> extract_spans4(std::span<const Obs4> obs);
std::vector<Span6> extract_spans6(std::span<const Obs6> obs);

std::vector<Change4> extract_changes4(std::span<const Span4> spans);
std::vector<Change6> extract_changes6(std::span<const Span6> spans);

/// A measured duration together with when the assignment began — the
/// "Evolution over time" analysis (§3.2) buckets durations by start year.
struct TimedDuration {
  Hour start = 0;
  Hour duration = 0;
};

/// Exact (hourly-granularity) assignment durations: one entry per span that
/// is sandwiched between two changes whose boundary gaps satisfy `opt`.
/// Duration of span i is spans[i+1].first_seen - spans[i].first_seen.
std::vector<Hour> sandwiched_durations4(std::span<const Span4> spans,
                                        const ChangeOptions& opt = {});
std::vector<Hour> sandwiched_durations6(std::span<const Span6> spans,
                                        const ChangeOptions& opt = {});

/// Same measurement, keeping each duration's start hour.
std::vector<TimedDuration> sandwiched_timed4(std::span<const Span4> spans,
                                             const ChangeOptions& opt = {});
std::vector<TimedDuration> sandwiched_timed6(std::span<const Span6> spans,
                                             const ChangeOptions& opt = {});

/// Fraction of v4 changes with a v6 change in the same hour (+-window).
/// Returns nullopt when there are no v4 changes to compare. Used for the
/// §3.2 co-occurrence result (90.6% in DTAG, rare in Comcast).
std::optional<double> change_cooccurrence(std::span<const Change4> v4,
                                          std::span<const Change6> v6,
                                          Hour window = 1);

}  // namespace dynamips::core
