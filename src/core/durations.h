// durations.h — per-AS assignment-duration study (§3.2, Table 1, Fig. 1).
//
// Aggregates sandwiched durations per AS into total-time-fraction
// accumulators, split three ways as in Fig. 1: v4 durations of
// non-dual-stack probes, v4 durations of dual-stack probes, and v6 /64
// durations. Also accumulates the Table-1 change counts and the §3.2
// v4/v6 change co-occurrence statistic.
#pragma once

#include <cstdint>
#include <map>

#include "bgp/rib.h"
#include "core/changes.h"
#include "core/sanitize.h"
#include "stats/flatmap.h"
#include "stats/ttf.h"

namespace dynamips::core {

/// Accumulated duration statistics for one AS.
struct AsDurationStats {
  bgp::Asn asn = 0;
  stats::TotalTimeFraction v4_nds;  ///< v4 durations, non-dual-stack probes
  stats::TotalTimeFraction v4_ds;   ///< v4 durations, dual-stack probes
  stats::TotalTimeFraction v6;      ///< v6 /64 durations

  std::uint64_t probes = 0;              ///< virtual probes in this AS
  std::uint64_t ds_probes = 0;           ///< of which dual-stack
  std::uint64_t probes_with_change = 0;  ///< >= 1 change in either family
  std::uint64_t v4_changes = 0;          ///< all v4 changes
  std::uint64_t v4_changes_ds = 0;       ///< v4 changes on dual-stack probes
  std::uint64_t v6_changes = 0;

  std::uint64_t cooccur_hits = 0;   ///< v4 changes with same-hour v6 change
  std::uint64_t cooccur_total = 0;  ///< v4 changes on dual-stack probes

  /// §3.2 co-occurrence share (e.g. 0.906 for DTAG), or 0 when undefined.
  double cooccurrence() const {
    return cooccur_total ? double(cooccur_hits) / double(cooccur_total) : 0.0;
  }

  /// Checkpoint serialization (io/checkpoint.h).
  void save(io::ckpt::Writer& w) const;
  bool load(io::ckpt::Reader& r);

  /// Absorb another shard's accumulation for the same AS.
  void merge(const AsDurationStats& o) {
    v4_nds.merge(o.v4_nds);
    v4_ds.merge(o.v4_ds);
    v6.merge(o.v6);
    probes += o.probes;
    ds_probes += o.ds_probes;
    probes_with_change += o.probes_with_change;
    v4_changes += o.v4_changes;
    v4_changes_ds += o.v4_changes_ds;
    v6_changes += o.v6_changes;
    cooccur_hits += o.cooccur_hits;
    cooccur_total += o.cooccur_total;
  }
};

/// Streaming per-AS aggregation over cleaned probes.
class DurationAnalyzer {
 public:
  explicit DurationAnalyzer(ChangeOptions options = {})
      : options_(options) {}

  /// A probe counts as dual-stack when it reports v6 echoes consistently —
  /// at least this fraction of its v4 observation count.
  static constexpr double kDualStackCoverage = 0.5;

  void add_probe(const CleanProbe& probe);

  // Sink interface (core/parallel.h): everything here is a per-AS sum, so
  // merging shards in any order reproduces the serial result exactly.
  void add(const CleanProbe& probe) { add_probe(probe); }
  void merge(DurationAnalyzer&& other);
  void finalize() {}

  /// Checkpoint serialization: the accumulated per-AS map is the whole
  /// state (options come from the run config on resume).
  void save(io::ckpt::Writer& w) const;
  bool load(io::ckpt::Reader& r);

  // FlatMap iterates ASNs in the same ascending order std::map did, so
  // serialization, CSV emission, and the ordered shard reduction all see
  // identical sequences.
  const stats::FlatMap<bgp::Asn, AsDurationStats>& by_as() const {
    return by_as_;
  }

  /// Finalized per-AS results as the std::map the study structs expose,
  /// without consuming the accumulator (core/parallel.h SnapshotAnalyzer):
  /// every field is a plain sum or a TotalTimeFraction, both of which stay
  /// valid accumulators after the copy, so more probes can follow.
  std::map<bgp::Asn, AsDurationStats> snapshot() const {
    return std::map<bgp::Asn, AsDurationStats>(by_as_.begin(), by_as_.end());
  }

  /// Whether a cleaned probe qualifies as dual-stack for the splits.
  static bool is_dual_stack(const CleanProbe& probe);

 private:
  ChangeOptions options_;
  stats::FlatMap<bgp::Asn, AsDurationStats> by_as_;
};

}  // namespace dynamips::core
