// entropy.h — per-nibble entropy of observed network prefixes (§2.3).
//
// Target-generation systems (Entropy/IP, 6Gen) exploit structure in
// observed address sets. This lightweight equivalent computes the Shannon
// entropy of each of the 16 nibbles of the /64 network component over a
// set of observed prefixes: announcement nibbles have (near-)zero entropy,
// pool nibbles low entropy, subscriber-id nibbles high entropy, and
// zero-filled subnet nibbles zero entropy again — the structure that makes
// scanning tractable and that the paper's pool/delegation inferences
// formalise.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace dynamips::core {

/// Shannon entropy (bits, 0..4) of each nibble of the network component,
/// nibble 0 being the most significant. Empty input yields all zeros.
std::array<double, 16> nibble_entropy(std::span<const std::uint64_t> net64s);

/// Total entropy across all nibbles — an upper-bound estimate of the
/// log2 search space an informed scanner faces within this address set.
double total_entropy(std::span<const std::uint64_t> net64s);

}  // namespace dynamips::core
