// blocklist.h — host-reputation blocking policies evaluated against
// assignment dynamics (§6, and the tradeoff of Li & Freeman [26]).
//
// A reputation system observes malicious traffic from an address at some
// instant and installs a block of prefix length L for T hours. Two failure
// modes trade off against each other:
//  * evasion  — the offender's assignment rotates inside a longer-than-L
//    delegation (or simply renumbers) and escapes the block while it is
//    still active;
//  * collateral — the offender moves away and an innocent subscriber is
//    assigned into the blocked prefix while the block is still active.
// The simulator replays ground-truth subscriber timelines against a policy
// and measures both rates, turning the paper's duration and boundary
// results into concrete policy guidance.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/subscriber.h"
#include "simnet/time.h"

namespace dynamips::core {

using simnet::Hour;

/// One blocking policy: block the enclosing /`prefix_len` of the offending
/// /64 for `duration_hours`.
struct BlockPolicy {
  int prefix_len = 64;
  Hour duration_hours = 24;
};

/// Outcome of evaluating a policy over many simulated incidents.
struct BlockOutcome {
  BlockPolicy policy;
  std::uint64_t incidents = 0;
  /// Incidents where the offender reached a /64 outside the blocked prefix
  /// while the block was active (block failed to contain them).
  std::uint64_t evaded = 0;
  /// Innocent subscribers whose active /64 fell inside some block while it
  /// was active, summed over incidents.
  std::uint64_t collateral_subscribers = 0;

  double evasion_rate() const {
    return incidents ? double(evaded) / double(incidents) : 0.0;
  }
  double collateral_per_incident() const {
    return incidents ? double(collateral_subscribers) / double(incidents)
                     : 0.0;
  }
};

/// Evaluates block policies against one ISP's simulated population.
class BlocklistSimulator {
 public:
  /// `population` are ground-truth timelines over a common window; index 0
  /// onward are candidate offenders and bystanders alike.
  explicit BlocklistSimulator(
      std::vector<simnet::SubscriberTimeline> population)
      : population_(std::move(population)) {}

  /// Evaluate one policy: every `incident_stride`-th subscriber offends at
  /// a deterministic instant inside their history; all other subscribers
  /// are bystanders.
  BlockOutcome evaluate(const BlockPolicy& policy,
                        std::uint32_t incident_stride = 7) const;

 private:
  std::vector<simnet::SubscriberTimeline> population_;
};

}  // namespace dynamips::core
