#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "core/failpoint.h"
#include "core/resource.h"
#include "core/shutdown.h"
#include "io/columnar.h"
#include "obs/metrics.h"

namespace dynamips::core {

namespace {

/// One shard's private analyzer set for the Atlas study. The metrics sink
/// is part of the shard state and merges through the same ordered
/// reduction, so counter totals are independent of the thread count.
struct AtlasShard {
  Sanitizer sanitizer;
  DurationAnalyzer durations;
  SpatialAnalyzer spatial;
  InferenceCollector inference;
  obs::MetricsSink metrics;

  AtlasShard(const bgp::Rib& rib, const SanitizeOptions& sanitize,
             const ChangeOptions& changes)
      : sanitizer(rib, sanitize), durations(changes), spatial(rib) {}

  void merge(AtlasShard&& other) {
    sanitizer.merge(std::move(other.sanitizer));
    durations.merge(std::move(other.durations));
    spatial.merge(std::move(other.spatial));
    inference.merge(std::move(other.inference));
    metrics.merge(std::move(other.metrics));
  }

  void finalize() {
    sanitizer.finalize();
    durations.finalize();
    spatial.finalize();
    inference.finalize();
  }

  void save(io::ckpt::Writer& w) const {
    sanitizer.save(w);
    durations.save(w);
    spatial.save(w);
    inference.save(w);
    metrics.save(w);
  }
  bool load(io::ckpt::Reader& r) {
    return sanitizer.load(r) && durations.load(r) && spatial.load(r) &&
           inference.load(r) && metrics.load(r);
  }
};

/// One shard's private state for the CDN study (analyzer + metrics sink),
/// mirroring AtlasShard so both studies checkpoint through the same path.
struct CdnShard {
  CdnAnalyzer analyzer;
  obs::MetricsSink metrics;

  CdnShard(const AssocOptions& options,
           const std::unordered_set<bgp::Asn>& mobile_asns)
      : analyzer(options, mobile_asns) {}

  void merge(CdnShard&& other) {
    analyzer.merge(std::move(other.analyzer));
    metrics.merge(std::move(other.metrics));
  }

  void finalize() { analyzer.finalize(); }

  void save(io::ckpt::Writer& w) const {
    analyzer.save(w);
    metrics.save(w);
  }
  bool load(io::ckpt::Reader& r) {
    return analyzer.load(r) && metrics.load(r);
  }
};

/// Ratio of the slowest shard's wall time to the mean — 1.0 is perfectly
/// balanced. Recorded as a gauge so load skew across shards is visible.
double imbalance_ratio(const std::vector<std::uint64_t>& shard_ns) {
  if (shard_ns.empty()) return 1.0;
  std::uint64_t max = 0, sum = 0;
  for (std::uint64_t ns : shard_ns) {
    sum += ns;
    if (ns > max) max = ns;
  }
  double mean = double(sum) / double(shard_ns.size());
  return mean > 0 ? double(max) / mean : 1.0;
}

// ----------------------------------------------------- crash-safe driving

/// Round size when supervision is active but no explicit interval was set:
/// small enough that a shutdown token is honored promptly, large enough
/// that the per-round dispatch barrier is noise.
constexpr std::uint64_t kDefaultRoundItems = 256;

/// The shard partition plus each shard's next unprocessed index. Fresh
/// runs derive it from the thread count; resumed runs restore it from the
/// checkpoint, which is what makes a resumed run byte-identical to the
/// original regardless of either run's thread setting.
struct ShardPlan {
  std::vector<ShardRange> ranges;
  std::vector<std::size_t> next;
};

// --- config fingerprints -------------------------------------------------
//
// A fingerprint is FNV-1a over a canonical serialization of every parameter
// that influences study results. Resuming under a different fingerprint is
// rejected: the restored analyzer state would silently mix two experiments.
// The thread knob is deliberately excluded (results are thread-invariant);
// whether metrics are enabled is included, because a resumed run cannot
// reconstruct the metric records of items processed before the interrupt.

void fingerprint_atlas_analysis(io::ckpt::Writer& w,
                                const SanitizeOptions& sanitize,
                                const ChangeOptions& changes,
                                const std::vector<simnet::IspProfile>& isps,
                                bool metrics) {
  w.u64(sanitize.min_observation_hours);
  w.u64(sanitize.bad_tags.size());
  for (const auto& tag : sanitize.bad_tags) w.str(tag);
  w.f64(sanitize.public_src_threshold);
  w.f64(sanitize.v6_mismatch_threshold);
  w.i32(sanitize.max_as_runs);
  w.u64(changes.max_boundary_gap);
  w.u64(isps.size());
  for (const auto& isp : isps) w.u32(isp.asn);
  w.u8(metrics ? 1 : 0);
}

std::uint64_t atlas_gen_fingerprint(
    const std::vector<simnet::IspProfile>& isps,
    const AtlasStudyConfig& config) {
  io::ckpt::Writer w;
  w.str("atlas.gen");
  w.u64(config.atlas.window_hours);
  w.f64(config.atlas.probe_scale);
  w.u64(config.atlas.seed);
  w.f64(config.atlas.short_lived_share);
  w.f64(config.atlas.multihomed_share);
  w.f64(config.atlas.as_switch_share);
  w.f64(config.atlas.bad_tag_share);
  w.f64(config.atlas.public_src_share);
  w.f64(config.atlas.test_addr_share);
  w.f64(config.atlas.hourly_presence);
  w.f64(config.atlas.eui64_share);
  fingerprint_atlas_analysis(w, config.sanitize, config.changes, isps,
                             config.metrics != nullptr);
  return io::ckpt::fnv1a(w.buffer());
}

std::uint64_t atlas_file_fingerprint(
    const std::vector<std::string>& paths,
    const std::vector<simnet::IspProfile>& isps,
    const AtlasFileStudyConfig& config) {
  io::ckpt::Writer w;
  w.str("atlas.files");
  w.u64(paths.size());
  for (const auto& path : paths) w.str(path);
  w.f64(config.reader.max_reject_fraction);
  w.u64(config.reader.max_consecutive_rejects);
  fingerprint_atlas_analysis(w, config.sanitize, config.changes, isps,
                             config.metrics != nullptr);
  return io::ckpt::fnv1a(w.buffer());
}

void fingerprint_assoc(io::ckpt::Writer& w, const AssocOptions& assoc) {
  w.u8(assoc.require_asn_match ? 1 : 0);
  w.u32(assoc.max_gap_days);
}

std::uint64_t cdn_gen_fingerprint(
    const std::vector<cdn::PopulationEntry>& population,
    const CdnStudyConfig& config) {
  io::ckpt::Writer w;
  w.str("cdn.gen");
  w.i32(config.cdn.days);
  w.f64(config.cdn.subscriber_scale);
  w.u64(config.cdn.seed);
  w.f64(config.cdn.daily_activity);
  w.f64(config.cdn.cross_network_noise);
  fingerprint_assoc(w, config.assoc);
  w.u64(population.size());
  for (const auto& entry : population) {
    w.u32(entry.isp.asn);
    w.i32(entry.subscribers);
  }
  w.u8(config.metrics != nullptr ? 1 : 0);
  return io::ckpt::fnv1a(w.buffer());
}

std::uint64_t cdn_file_fingerprint(const std::vector<std::string>& paths,
                                   const CdnFileStudyConfig& config) {
  io::ckpt::Writer w;
  w.str("cdn.files");
  w.u64(paths.size());
  for (const auto& path : paths) w.str(path);
  fingerprint_assoc(w, config.assoc);
  w.f64(config.reader.max_reject_fraction);
  w.u64(config.reader.max_consecutive_rejects);
  // Unordered-set iteration order is not canonical; sort before hashing.
  std::vector<bgp::Asn> mobile(config.mobile_asns.begin(),
                               config.mobile_asns.end());
  std::sort(mobile.begin(), mobile.end());
  w.u64(mobile.size());
  for (bgp::Asn asn : mobile) w.u32(asn);
  w.u64(config.registries.size());
  for (const auto& [asn, registry] : config.registries) {
    w.u32(asn);
    w.u8(std::uint8_t(registry));
  }
  w.u8(config.metrics != nullptr ? 1 : 0);
  return io::ckpt::fnv1a(w.buffer());
}

// --- resume validation and state restore ---------------------------------

/// The contiguous item slice this process owns: all of [0, item_count)
/// normally, slice shard_index of shard_count in multi-process mode.
/// Processes whose slice is empty (more shards than items) get an empty
/// range at the end.
ShardRange process_slice(const CheckpointConfig& cc,
                         std::uint64_t item_count) {
  if (!cc.sharded()) return {0, std::size_t(item_count)};
  auto slices = shard_ranges(std::size_t(item_count), cc.shard_count);
  if (cc.shard_index < slices.size()) return slices[cc.shard_index];
  return {std::size_t(item_count), std::size_t(item_count)};
}

Status plan_shards(const CheckpointConfig& cc, std::uint32_t kind,
                   std::uint64_t fingerprint, std::uint64_t item_count,
                   unsigned threads, ShardPlan& plan) {
  if (cc.sharded() && cc.shard_index >= cc.shard_count)
    return Status(StatusCode::kInvalidArgument,
                  "shard index " + std::to_string(cc.shard_index) +
                      " is out of range for " +
                      std::to_string(cc.shard_count) + " shards");
  const ShardRange slice = process_slice(cc, item_count);
  if (!cc.resume) {
    plan.ranges = shard_ranges(slice.end - slice.begin, threads);
    for (auto& r : plan.ranges) {
      r.begin += slice.begin;
      r.end += slice.begin;
    }
    plan.next.clear();
    for (const auto& r : plan.ranges) plan.next.push_back(r.begin);
    return Status::Ok();
  }
  const io::StudyCheckpoint& ck = *cc.resume;
  if (ck.kind != kind)
    return Status(StatusCode::kFailedPrecondition,
                  std::string("checkpoint was written by the ") +
                      io::checkpoint_kind_name(ck.kind) +
                      " study and cannot resume the " +
                      io::checkpoint_kind_name(kind) + " study");
  if (ck.config_fingerprint != fingerprint)
    return Status(StatusCode::kFailedPrecondition,
                  "checkpoint config fingerprint does not match this run; "
                  "resume requires the exact original study parameters");
  if (ck.item_count != item_count)
    return Status(StatusCode::kFailedPrecondition,
                  "checkpoint covers " + std::to_string(ck.item_count) +
                      " work items but this run has " +
                      std::to_string(item_count) +
                      "; the dataset changed since the checkpoint");
  plan.ranges.clear();
  plan.next.clear();
  for (const auto& shard : ck.shards) {
    if (shard.begin > shard.end || shard.next < shard.begin ||
        shard.next > shard.end || shard.end > item_count)
      return Status(StatusCode::kDataLoss,
                    "checkpoint is corrupt: shard range [" +
                        std::to_string(shard.begin) + ", " +
                        std::to_string(shard.end) + ") next " +
                        std::to_string(shard.next) + " is not plausible");
    plan.ranges.push_back(
        {std::size_t(shard.begin), std::size_t(shard.end)});
    plan.next.push_back(std::size_t(shard.next));
  }
  // The restored ranges must tile this process's slice exactly — no gaps,
  // no overlap — or the ordered reduction would silently drop or repeat
  // items. Catches both corrupt shard tables and a checkpoint resumed
  // under different --shard parameters.
  std::vector<ShardRange> sorted = plan.ranges;
  std::sort(sorted.begin(), sorted.end(),
            [](const ShardRange& a, const ShardRange& b) {
              return a.begin < b.begin;
            });
  std::size_t cursor = slice.begin;
  for (const auto& r : sorted) {
    if (r.begin == r.end) continue;  // empty shards carry no items
    if (r.begin != cursor)
      return Status(StatusCode::kDataLoss,
                    "checkpoint is corrupt: shard ranges do not tile items [" +
                        std::to_string(slice.begin) + ", " +
                        std::to_string(slice.end) + ") (gap or overlap at " +
                        std::to_string(r.begin) + ")");
    cursor = r.end;
  }
  if (cursor != slice.end)
    return Status(StatusCode::kDataLoss,
                  "checkpoint is corrupt: shard ranges cover items up to " +
                      std::to_string(cursor) + " of [" +
                      std::to_string(slice.begin) + ", " +
                      std::to_string(slice.end) + ")");
  return Status::Ok();
}

template <typename Shard>
Status restore_shards(const CheckpointConfig& cc, std::vector<Shard>& shards,
                      obs::MetricsSink& sup, obs::MetricsRegistry* registry) {
  if (!cc.resume) return Status::Ok();
  const io::StudyCheckpoint& ck = *cc.resume;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    io::ckpt::Reader r(ck.shards[s].blob);
    if (!shards[s].load(r) || r.remaining() != 0)
      return Status(StatusCode::kDataLoss,
                    "checkpoint is corrupt: shard " + std::to_string(s) +
                        " state failed to parse");
  }
  if (registry && !ck.registry_blob.empty()) {
    obs::MetricsSink snapshot;
    io::ckpt::Reader r(ck.registry_blob);
    if (!snapshot.load(r) || r.remaining() != 0)
      return Status(
          StatusCode::kDataLoss,
          "checkpoint is corrupt: registry snapshot failed to parse");
    registry->merge(std::move(snapshot));
  }
  if (!ck.supervisor_blob.empty()) {
    io::ckpt::Reader r(ck.supervisor_blob);
    if (!sup.load(r) || r.remaining() != 0)
      return Status(
          StatusCode::kDataLoss,
          "checkpoint is corrupt: supervisor state failed to parse");
  }
  sup.counter("checkpoint.resumes").add(1);
  return Status::Ok();
}

// --- the supervised round loop -------------------------------------------

/// Run every shard to completion in rounds. Unsupervised (default
/// CheckpointConfig) this is a single round covering each shard's whole
/// range — exactly the legacy dispatch. Supervised, each round advances
/// every unfinished shard by at most `every_items` (or a small default)
/// items, the shutdown token is polled between rounds, and a checkpoint is
/// written after each round while work remains. An interrupt writes a final
/// checkpoint and returns kCancelled.
///
/// `process(s, from, to)` analyzes items [from, to) of shard s;
/// `save_shard(s)` serializes shard s's state (only called between rounds,
/// never concurrently with process).
template <typename ProcessRange, typename SaveShard>
Status drive_shards(ShardExecutor& exec, const CheckpointConfig& cc,
                    std::uint32_t kind, std::uint64_t fingerprint,
                    std::uint64_t item_count, ShardPlan& plan,
                    obs::MetricsRegistry* registry, obs::MetricsSink& sup,
                    const ProcessRange& process, const SaveShard& save_shard) {
  if (cc.every_items > 0 && cc.path.empty())
    return Status(StatusCode::kInvalidArgument,
                  "periodic checkpoints require a checkpoint path");
  if (cc.sharded() && cc.path.empty())
    return Status(StatusCode::kInvalidArgument,
                  "sharded runs require a checkpoint path (the completed "
                  "checkpoint is the shard's output)");
  const bool supervised = cc.active();
  const std::uint64_t chunk =
      cc.every_items ? cc.every_items : kDefaultRoundItems;

  auto all_done = [&] {
    for (std::size_t s = 0; s < plan.ranges.size(); ++s)
      if (plan.next[s] < plan.ranges[s].end) return false;
    return true;
  };

  // Snapshot the full mid-run state and write it durably. The registry
  // snapshot is taken here — before any partial shard sink is merged into
  // it — so a resumed process restoring it never double-counts.
  auto snapshot = [&]() -> Status {
    obs::PhaseTimer timer(&sup.phase("checkpoint.write"));
    io::StudyCheckpoint ck;
    ck.kind = kind;
    ck.config_fingerprint = fingerprint;
    ck.item_count = item_count;
    ck.shards.reserve(plan.ranges.size());
    for (std::size_t s = 0; s < plan.ranges.size(); ++s)
      ck.shards.push_back({plan.ranges[s].begin, plan.ranges[s].end,
                           plan.next[s], save_shard(s)});
    if (registry) {
      io::ckpt::Writer w;
      registry->snapshot().save(w);
      ck.registry_blob = w.take();
    }
    {
      io::ckpt::Writer w;
      sup.save(w);
      ck.supervisor_blob = w.take();
    }
    Status st = io::write_checkpoint(cc.path, ck);
    if (st.ok())
      sup.counter("checkpoint.writes").add(1);
    else
      sup.counter("checkpoint.write_failures").add(1);
    return st;
  };

  for (;;) {
    Status ran = exec.try_dispatch(plan.ranges.size(), [&](std::size_t s) {
      const std::size_t end = plan.ranges[s].end;
      std::size_t from = plan.next[s];
      std::size_t stop =
          supervised && chunk < end - from ? from + chunk : end;
      process(s, from, stop);
      plan.next[s] = stop;
    });
    if (!ran.ok()) return ran;
    if (supervised) sup.counter("checkpoint.rounds").add(1);
    if (all_done()) {
      // Shard mode: the completed checkpoint IS the output — the merge
      // step combines these per-process files and resumes from the
      // result, so the final write must happen even unsupervised.
      if (cc.sharded()) {
        Status wrote = snapshot();
        if (!wrote.ok()) return wrote;
      }
      return Status::Ok();
    }
    if (cc.token && cc.token->requested()) {
      sup.counter("checkpoint.interrupted").add(1);
      std::string note = "interrupted by shutdown request after " +
                         std::to_string([&] {
                           std::uint64_t done = 0;
                           for (std::size_t s = 0; s < plan.ranges.size(); ++s)
                             done += plan.next[s] - plan.ranges[s].begin;
                           return done;
                         }()) +
                         " of " + std::to_string(item_count) + " items";
      if (!cc.path.empty()) {
        Status wrote = snapshot();
        if (!wrote.ok()) return wrote;
        note += "; checkpoint written to " + cc.path;
      }
      return Status(StatusCode::kCancelled, note);
    }
    if (cc.every_items > 0) {
      Status wrote = snapshot();
      if (!wrote.ok()) return wrote;
    }
  }
}

}  // namespace

Expected<AtlasStudy> run_atlas_study_supervised(
    const std::vector<simnet::IspProfile>& isps,
    const AtlasStudyConfig& config, const CheckpointConfig& checkpoint) {
  AtlasStudy study;
  simnet::announce_all(isps, study.rib);
  for (const auto& isp : isps) study.as_names[isp.asn] = isp.name;

  atlas::AtlasSimulator sim(isps, config.atlas);
  const std::uint64_t fingerprint = atlas_gen_fingerprint(isps, config);

  ShardExecutor exec(config.threads);
  ShardPlan plan;
  Status planned = plan_shards(checkpoint, io::kCkptAtlasGen, fingerprint,
                               sim.probe_count(), exec.thread_count(), plan);
  if (!planned.ok()) return planned.with_context("atlas study");

  std::vector<AtlasShard> shards;
  shards.reserve(plan.ranges.size());
  for (std::size_t s = 0; s < plan.ranges.size(); ++s)
    shards.emplace_back(study.rib, config.sanitize, config.changes);
  obs::MetricsSink sup;
  Status restored =
      restore_shards(checkpoint, shards, sup, config.metrics);
  if (!restored.ok()) return restored.with_context("atlas study");

  // Per-probe generation is a pure function of (config, isps, index), and
  // each shard writes only its own analyzer set, so shards race on nothing.
  auto process = [&](std::size_t s, std::size_t from, std::size_t to) {
    AtlasShard& shard = shards[s];
    if (!config.metrics) {
      for (std::size_t i = from; i < to; ++i) {
        ProbeObservations obs = from_series(sim.series_for(i));
        for (const CleanProbe& cp : shard.sanitizer.sanitize(obs)) {
          shard.durations.add(cp);
          shard.spatial.add(cp);
          shard.inference.add(cp);
        }
      }
      return;
    }
    // Instrumented variant of the loop above: identical analyzer calls,
    // plus shard-local counters and per-phase spans (no shared state).
    obs::MetricsSink& m = shard.metrics;
    obs::Counter& c_probes = m.counter("atlas.probes_generated");
    obs::Counter& c_records = m.counter("atlas.echo_records");
    obs::Counter& c_clean = m.counter("atlas.clean_probes");
    obs::Histogram& h_records = m.histogram("atlas.records_per_probe", 0, 6, 5);
    obs::PhaseStats& p_gen = m.phase("atlas.generate");
    obs::PhaseStats& p_san = m.phase("atlas.sanitize");
    obs::PhaseStats& p_dur = m.phase("atlas.durations.add");
    obs::PhaseStats& p_spa = m.phase("atlas.spatial.add");
    obs::PhaseStats& p_inf = m.phase("atlas.inference.add");
    const std::uint64_t shard_start = obs::now_ns();
    for (std::size_t i = from; i < to; ++i) {
      std::uint64_t t0 = obs::now_ns();
      atlas::ProbeSeries series = sim.series_for(i);
      ProbeObservations obs = from_series(series);
      std::uint64_t t1 = obs::now_ns();
      p_gen.record(t1 - t0);
      c_probes.add(1);
      c_records.add(series.records.size());
      h_records.record(double(series.records.size()));
      auto cleaned = shard.sanitizer.sanitize(obs);
      std::uint64_t t2 = obs::now_ns();
      p_san.record(t2 - t1);
      c_clean.add(cleaned.size());
      for (const CleanProbe& cp : cleaned) {
        std::uint64_t a0 = obs::now_ns();
        shard.durations.add(cp);
        std::uint64_t a1 = obs::now_ns();
        shard.spatial.add(cp);
        std::uint64_t a2 = obs::now_ns();
        shard.inference.add(cp);
        std::uint64_t a3 = obs::now_ns();
        p_dur.record(a1 - a0);
        p_spa.record(a2 - a1);
        p_inf.record(a3 - a2);
      }
    }
    m.phase("atlas.shard_wall").record(obs::now_ns() - shard_start);
  };
  auto save_shard = [&](std::size_t s) {
    io::ckpt::Writer w;
    shards[s].save(w);
    return w.take();
  };

  Status drove =
      drive_shards(exec, checkpoint, io::kCkptAtlasGen, fingerprint,
                   sim.probe_count(), plan, config.metrics, sup, process,
                   save_shard);
  if (!drove.ok()) {
    // The checkpoint (if any) is already durable; fold the partial shard
    // sinks into the registry so an interrupted tool run can still report.
    if (config.metrics) {
      obs::MetricsSink partial;
      for (AtlasShard& shard : shards) partial.merge(std::move(shard.metrics));
      partial.merge(std::move(sup));
      config.metrics->merge(std::move(partial));
    }
    return drove.with_context("atlas study");
  }

  std::vector<std::uint64_t> shard_ns;
  if (config.metrics)
    for (AtlasShard& shard : shards)
      shard_ns.push_back(shard.metrics.phase("atlas.shard_wall").total_ns);

  // Ordered reduction: shard 0 absorbs the rest in index order, which keeps
  // every append-ordered vector in the exact order of the serial run.
  AtlasShard& root = shards.front();
  {
    std::uint64_t t0 = config.metrics ? obs::now_ns() : 0;
    for (std::size_t s = 1; s < shards.size(); ++s)
      root.merge(std::move(shards[s]));
    std::uint64_t t1 = config.metrics ? obs::now_ns() : 0;
    root.finalize();
    if (config.metrics) {
      root.metrics.phase("atlas.merge").record(t1 - t0);
      root.metrics.phase("atlas.finalize").record(obs::now_ns() - t1);
    }
  }

  // Non-consuming extraction: snapshot() yields the finalized results and
  // leaves the accumulators intact (the streaming driver relies on this).
  study.sanitize = root.sanitizer.snapshot();
  study.durations = root.durations.snapshot();
  study.spatial = root.spatial.snapshot();
  InferenceSnapshot inferred = root.inference.snapshot();
  study.subscriber_inference = std::move(inferred.subscriber);
  study.pool_inference = std::move(inferred.pools);

  if (config.metrics) {
    study.sanitize.publish(root.metrics);
    sim.publish_metrics(root.metrics);
    root.metrics.gauge("atlas.shards").set(double(plan.ranges.size()));
    root.metrics.gauge("atlas.shard_imbalance").set(imbalance_ratio(shard_ns));
    root.metrics.merge(std::move(sup));
    config.metrics->merge(std::move(root.metrics));
  }
  return study;
}

AtlasStudy run_atlas_study(const std::vector<simnet::IspProfile>& isps,
                           const AtlasStudyConfig& config) {
  auto study = run_atlas_study_supervised(isps, config, {});
  if (!study.ok()) throw std::runtime_error(study.status().to_string());
  return study.take();
}

Expected<CdnStudy> run_cdn_study_supervised(
    const std::vector<cdn::PopulationEntry>& population,
    const CdnStudyConfig& config, const CheckpointConfig& checkpoint) {
  cdn::CdnSimulator sim(population, config.cdn);
  CdnStudy study;
  for (const auto& entry : population)
    study.asn_names[entry.isp.asn] = entry.isp.name;

  const std::uint64_t fingerprint = cdn_gen_fingerprint(population, config);

  ShardExecutor exec(config.threads);
  ShardPlan plan;
  Status planned = plan_shards(checkpoint, io::kCkptCdnGen, fingerprint,
                               sim.entry_count(), exec.thread_count(), plan);
  if (!planned.ok()) return planned.with_context("cdn study");

  const std::unordered_set<bgp::Asn> mobile = sim.mobile_asns();
  std::vector<CdnShard> shards(plan.ranges.size(),
                               CdnShard(config.assoc, mobile));
  obs::MetricsSink sup;
  Status restored =
      restore_shards(checkpoint, shards, sup, config.metrics);
  if (!restored.ok()) return restored.with_context("cdn study");

  auto process = [&](std::size_t s, std::size_t from, std::size_t to) {
    CdnShard& shard = shards[s];
    if (!config.metrics) {
      for (std::size_t i = from; i < to; ++i)
        shard.analyzer.add(sim.generate(i));
      return;
    }
    obs::MetricsSink& m = shard.metrics;
    obs::Counter& c_logs = m.counter("cdn.logs_generated");
    obs::Counter& c_tuples = m.counter("cdn.association_tuples");
    obs::Histogram& h_tuples = m.histogram("cdn.tuples_per_log", 0, 8, 5);
    obs::PhaseStats& p_gen = m.phase("cdn.generate");
    obs::PhaseStats& p_add = m.phase("cdn.analyzer.add");
    const std::uint64_t shard_start = obs::now_ns();
    for (std::size_t i = from; i < to; ++i) {
      std::uint64_t t0 = obs::now_ns();
      cdn::AssociationLog log = sim.generate(i);
      std::uint64_t t1 = obs::now_ns();
      p_gen.record(t1 - t0);
      c_logs.add(1);
      c_tuples.add(log.records.size());
      h_tuples.record(double(log.records.size()));
      shard.analyzer.add(log);
      p_add.record(obs::now_ns() - t1);
    }
    m.phase("cdn.shard_wall").record(obs::now_ns() - shard_start);
  };
  auto save_shard = [&](std::size_t s) {
    io::ckpt::Writer w;
    shards[s].save(w);
    return w.take();
  };

  Status drove =
      drive_shards(exec, checkpoint, io::kCkptCdnGen, fingerprint,
                   sim.entry_count(), plan, config.metrics, sup, process,
                   save_shard);
  if (!drove.ok()) {
    if (config.metrics) {
      obs::MetricsSink partial;
      for (CdnShard& shard : shards) partial.merge(std::move(shard.metrics));
      partial.merge(std::move(sup));
      config.metrics->merge(std::move(partial));
    }
    return drove.with_context("cdn study");
  }

  std::vector<std::uint64_t> shard_ns;
  if (config.metrics)
    for (CdnShard& shard : shards)
      shard_ns.push_back(shard.metrics.phase("cdn.shard_wall").total_ns);

  {
    std::uint64_t t0 = config.metrics ? obs::now_ns() : 0;
    for (std::size_t s = 1; s < shards.size(); ++s)
      shards.front().merge(std::move(shards[s]));
    std::uint64_t t1 = config.metrics ? obs::now_ns() : 0;
    shards.front().finalize();
    study.analyzer = shards.front().analyzer.snapshot();
    if (config.metrics) {
      shards.front().metrics.phase("cdn.merge").record(t1 - t0);
      shards.front().metrics.phase("cdn.finalize").record(obs::now_ns() - t1);
    }
  }

  if (config.metrics) {
    obs::MetricsSink& m = shards.front().metrics;
    m.counter("cdn.tuples_kept").add(study.analyzer.total_tuples());
    m.counter("cdn.tuples_mismatched").add(study.analyzer.total_mismatched());
    // Spill accounting lives on the analyzer, never in snapshots or
    // checkpoints; resumed shards therefore report only their own spills.
    m.counter("cdn.spill_runs").add(shards.front().analyzer.spill_runs());
    m.counter("cdn.spill_bytes").add(shards.front().analyzer.spill_bytes());
    sim.publish_metrics(m);
    m.gauge("cdn.shards").set(double(plan.ranges.size()));
    m.gauge("cdn.shard_imbalance").set(imbalance_ratio(shard_ns));
    m.merge(std::move(sup));
    config.metrics->merge(std::move(m));
  }
  return study;
}

CdnStudy run_cdn_study(const std::vector<cdn::PopulationEntry>& population,
                       const CdnStudyConfig& config) {
  auto study = run_cdn_study_supervised(population, config, {});
  if (!study.ok()) throw std::runtime_error(study.status().to_string());
  return study.take();
}

// ------------------------------------------------- file-driven entrypoints

namespace {

/// Load one dataset file after another through the given loader,
/// accumulating into `dataset` (shared codepath of both from_files
/// entrypoints). The loader dispatches CSV vs columnar by extension
/// (io::load_echo_file / io::load_assoc_file), so `.col` batches ride
/// alongside `.csv` in any input list.
template <typename Loader, typename Merger, typename Dataset>
Status load_dataset_files(const std::vector<std::string>& paths,
                          const io::ReaderOptions& reader,
                          io::IngestStats* ingest, Loader&& load,
                          Merger&& merge_into, Dataset& dataset) {
  for (const auto& path : paths) {
    auto part = load(path, reader, ingest);
    if (!part.ok()) {
      Status st = part.status();
      return st.with_context(path);
    }
    merge_into(dataset, part.take());
  }
  return Status::Ok();
}

}  // namespace

namespace {

// --- shared analysis passes ----------------------------------------------
//
// One full sharded analysis over an in-memory dataset: plan (or restore)
// the shard partition, drive the shards through `exec`, reduce in index
// order, and extract the finalized results into `study` via the analyzers'
// non-consuming snapshot()s. Both the one-shot _from_files entrypoints and
// the streaming driver's re-finalization passes run through here, which is
// what makes an incremental stream byte-identical to a one-shot run over
// the same batches. `metrics` is passed explicitly (not read from the study
// config) so the streaming driver can run intermediate passes unrecorded
// and record only the final one; `ingest_sink`, when non-null, is folded
// into the registry alongside the per-shard sinks.

Status atlas_analysis_pass(const std::vector<atlas::ProbeSeries>& dataset,
                           const SanitizeOptions& sanitize,
                           const ChangeOptions& changes,
                           obs::MetricsRegistry* metrics, ShardExecutor& exec,
                           const CheckpointConfig& cc, std::uint32_t kind,
                           std::uint64_t fingerprint,
                           obs::MetricsSink* ingest_sink, AtlasStudy& study) {
  ShardPlan plan;
  Status planned = plan_shards(cc, kind, fingerprint, dataset.size(),
                               exec.thread_count(), plan);
  if (!planned.ok()) return planned;

  std::vector<AtlasShard> shards;
  shards.reserve(plan.ranges.size());
  for (std::size_t s = 0; s < plan.ranges.size(); ++s)
    shards.emplace_back(study.rib, sanitize, changes);
  obs::MetricsSink sup;
  Status restored = restore_shards(cc, shards, sup, metrics);
  if (!restored.ok()) return restored;

  auto process = [&](std::size_t s, std::size_t from, std::size_t to) {
    AtlasShard& shard = shards[s];
    if (!metrics) {
      for (std::size_t i = from; i < to; ++i) {
        ProbeObservations obs = from_series(dataset[i]);
        for (const CleanProbe& cp : shard.sanitizer.sanitize(obs)) {
          shard.durations.add(cp);
          shard.spatial.add(cp);
          shard.inference.add(cp);
        }
      }
      return;
    }
    obs::MetricsSink& m = shard.metrics;
    obs::Counter& c_probes = m.counter("atlas.probes_loaded");
    obs::Counter& c_records = m.counter("atlas.echo_records");
    obs::Counter& c_clean = m.counter("atlas.clean_probes");
    obs::Histogram& h_records = m.histogram("atlas.records_per_probe", 0, 6, 5);
    obs::PhaseStats& p_san = m.phase("atlas.sanitize");
    obs::PhaseStats& p_dur = m.phase("atlas.durations.add");
    obs::PhaseStats& p_spa = m.phase("atlas.spatial.add");
    obs::PhaseStats& p_inf = m.phase("atlas.inference.add");
    const std::uint64_t shard_start = obs::now_ns();
    for (std::size_t i = from; i < to; ++i) {
      const atlas::ProbeSeries& series = dataset[i];
      ProbeObservations obs = from_series(series);
      std::uint64_t t1 = obs::now_ns();
      c_probes.add(1);
      c_records.add(series.records.size());
      h_records.record(double(series.records.size()));
      auto cleaned = shard.sanitizer.sanitize(obs);
      std::uint64_t t2 = obs::now_ns();
      p_san.record(t2 - t1);
      c_clean.add(cleaned.size());
      for (const CleanProbe& cp : cleaned) {
        std::uint64_t a0 = obs::now_ns();
        shard.durations.add(cp);
        std::uint64_t a1 = obs::now_ns();
        shard.spatial.add(cp);
        std::uint64_t a2 = obs::now_ns();
        shard.inference.add(cp);
        std::uint64_t a3 = obs::now_ns();
        p_dur.record(a1 - a0);
        p_spa.record(a2 - a1);
        p_inf.record(a3 - a2);
      }
    }
    m.phase("atlas.shard_wall").record(obs::now_ns() - shard_start);
  };
  auto save_shard = [&](std::size_t s) {
    io::ckpt::Writer w;
    shards[s].save(w);
    return w.take();
  };

  Status drove = drive_shards(exec, cc, kind, fingerprint, dataset.size(),
                              plan, metrics, sup, process, save_shard);
  if (!drove.ok()) {
    // The checkpoint (if any) is already durable; fold the partial shard
    // sinks into the registry so an interrupted tool run can still report.
    if (metrics) {
      obs::MetricsSink partial;
      for (AtlasShard& shard : shards) partial.merge(std::move(shard.metrics));
      if (ingest_sink) partial.merge(std::move(*ingest_sink));
      partial.merge(std::move(sup));
      metrics->merge(std::move(partial));
    }
    return drove;
  }

  std::vector<std::uint64_t> shard_ns;
  if (metrics)
    for (AtlasShard& shard : shards)
      shard_ns.push_back(shard.metrics.phase("atlas.shard_wall").total_ns);

  // Ordered reduction: shard 0 absorbs the rest in index order, which keeps
  // every append-ordered vector in the exact order of the serial run.
  AtlasShard& root = shards.front();
  {
    std::uint64_t t0 = metrics ? obs::now_ns() : 0;
    for (std::size_t s = 1; s < shards.size(); ++s)
      root.merge(std::move(shards[s]));
    std::uint64_t t1 = metrics ? obs::now_ns() : 0;
    root.finalize();
    if (metrics) {
      root.metrics.phase("atlas.merge").record(t1 - t0);
      root.metrics.phase("atlas.finalize").record(obs::now_ns() - t1);
    }
  }

  // Non-consuming extraction; the accumulators stay valid for further adds.
  study.sanitize = root.sanitizer.snapshot();
  study.durations = root.durations.snapshot();
  study.spatial = root.spatial.snapshot();
  InferenceSnapshot inferred = root.inference.snapshot();
  study.subscriber_inference = std::move(inferred.subscriber);
  study.pool_inference = std::move(inferred.pools);

  if (metrics) {
    study.sanitize.publish(root.metrics);
    root.metrics.gauge("atlas.shards").set(double(plan.ranges.size()));
    root.metrics.gauge("atlas.shard_imbalance").set(imbalance_ratio(shard_ns));
    if (ingest_sink) root.metrics.merge(std::move(*ingest_sink));
    root.metrics.merge(std::move(sup));
    metrics->merge(std::move(root.metrics));
  }
  return Status::Ok();
}

Status cdn_analysis_pass(std::vector<cdn::AssociationLog>& dataset,
                         const AssocOptions& assoc,
                         const std::unordered_set<bgp::Asn>& mobile_asns,
                         const std::map<bgp::Asn, bgp::Registry>& registries,
                         obs::MetricsRegistry* metrics, ShardExecutor& exec,
                         const CheckpointConfig& cc, std::uint32_t kind,
                         std::uint64_t fingerprint,
                         obs::MetricsSink* ingest_sink, CdnStudy& study) {
  // The CSV schema carries no access-type or registry attribution; graft
  // the caller's ground truth onto the loaded logs. Idempotent — the
  // streaming driver re-grafts on every re-finalization pass.
  for (auto& log : dataset) {
    log.mobile = mobile_asns.count(log.asn) > 0;
    auto reg = registries.find(log.asn);
    log.registry =
        reg == registries.end() ? bgp::Registry::kRipe : reg->second;
  }

  ShardPlan plan;
  Status planned = plan_shards(cc, kind, fingerprint, dataset.size(),
                               exec.thread_count(), plan);
  if (!planned.ok()) return planned;

  std::vector<CdnShard> shards(plan.ranges.size(),
                               CdnShard(assoc, mobile_asns));
  obs::MetricsSink sup;
  Status restored = restore_shards(cc, shards, sup, metrics);
  if (!restored.ok()) return restored;

  auto process = [&](std::size_t s, std::size_t from, std::size_t to) {
    CdnShard& shard = shards[s];
    if (!metrics) {
      for (std::size_t i = from; i < to; ++i) shard.analyzer.add(dataset[i]);
      return;
    }
    obs::MetricsSink& m = shard.metrics;
    obs::Counter& c_logs = m.counter("cdn.logs_loaded");
    obs::Counter& c_tuples = m.counter("cdn.association_tuples");
    obs::Histogram& h_tuples = m.histogram("cdn.tuples_per_log", 0, 8, 5);
    obs::PhaseStats& p_add = m.phase("cdn.analyzer.add");
    const std::uint64_t shard_start = obs::now_ns();
    for (std::size_t i = from; i < to; ++i) {
      const cdn::AssociationLog& log = dataset[i];
      std::uint64_t t0 = obs::now_ns();
      c_logs.add(1);
      c_tuples.add(log.records.size());
      h_tuples.record(double(log.records.size()));
      shard.analyzer.add(log);
      p_add.record(obs::now_ns() - t0);
    }
    m.phase("cdn.shard_wall").record(obs::now_ns() - shard_start);
  };
  auto save_shard = [&](std::size_t s) {
    io::ckpt::Writer w;
    shards[s].save(w);
    return w.take();
  };

  Status drove = drive_shards(exec, cc, kind, fingerprint, dataset.size(),
                              plan, metrics, sup, process, save_shard);
  if (!drove.ok()) {
    if (metrics) {
      obs::MetricsSink partial;
      for (CdnShard& shard : shards) partial.merge(std::move(shard.metrics));
      if (ingest_sink) partial.merge(std::move(*ingest_sink));
      partial.merge(std::move(sup));
      metrics->merge(std::move(partial));
    }
    return drove;
  }

  std::vector<std::uint64_t> shard_ns;
  if (metrics)
    for (CdnShard& shard : shards)
      shard_ns.push_back(shard.metrics.phase("cdn.shard_wall").total_ns);

  {
    std::uint64_t t0 = metrics ? obs::now_ns() : 0;
    for (std::size_t s = 1; s < shards.size(); ++s)
      shards.front().merge(std::move(shards[s]));
    std::uint64_t t1 = metrics ? obs::now_ns() : 0;
    shards.front().finalize();
    study.analyzer = shards.front().analyzer.snapshot();
    if (metrics) {
      shards.front().metrics.phase("cdn.merge").record(t1 - t0);
      shards.front().metrics.phase("cdn.finalize").record(obs::now_ns() - t1);
    }
  }

  if (metrics) {
    obs::MetricsSink& m = shards.front().metrics;
    m.counter("cdn.tuples_kept").add(study.analyzer.total_tuples());
    m.counter("cdn.tuples_mismatched").add(study.analyzer.total_mismatched());
    m.counter("cdn.spill_runs").add(shards.front().analyzer.spill_runs());
    m.counter("cdn.spill_bytes").add(shards.front().analyzer.spill_bytes());
    m.gauge("cdn.shards").set(double(plan.ranges.size()));
    m.gauge("cdn.shard_imbalance").set(imbalance_ratio(shard_ns));
    if (ingest_sink) m.merge(std::move(*ingest_sink));
    m.merge(std::move(sup));
    metrics->merge(std::move(m));
  }
  return Status::Ok();
}

}  // namespace

Expected<AtlasStudy> run_atlas_study_from_files(
    const std::vector<std::string>& paths,
    const std::vector<simnet::IspProfile>& isps,
    const AtlasFileStudyConfig& config, io::IngestStats* ingest,
    const CheckpointConfig& checkpoint) {
  AtlasStudy study;
  simnet::announce_all(isps, study.rib);
  for (const auto& isp : isps) study.as_names[isp.asn] = isp.name;

  // Ingest metrics land in a local sink merged into the registry at the
  // end, like every per-shard sink (no locks while loading). The sink is
  // never checkpointed: a resumed run re-ingests the same files and
  // reproduces identical ingest counters.
  obs::MetricsSink ingest_sink;
  io::ReaderOptions ropts = config.reader;
  if (config.metrics && !ropts.metrics) ropts.metrics = &ingest_sink;

  std::vector<atlas::ProbeSeries> dataset;
  const std::uint64_t load_start = obs::now_ns();
  Status loaded = load_dataset_files(
      paths, ropts, ingest,
      [](const std::string& path, const io::ReaderOptions& r,
         io::IngestStats* st) { return io::load_echo_file(path, r, st); },
      [](std::vector<atlas::ProbeSeries>& into,
         std::vector<atlas::ProbeSeries>&& more) {
        io::merge_echo_datasets(into, std::move(more));
      },
      dataset);
  if (!loaded.ok()) return loaded.with_context("atlas study");
  const std::uint64_t load_ns = obs::now_ns() - load_start;
  if (ingest) ingest->load_wall_ns += load_ns;
  if (config.metrics) ingest_sink.phase("atlas.ingest").record(load_ns);

  const std::uint64_t fingerprint =
      atlas_file_fingerprint(paths, isps, config);

  ShardExecutor exec(config.threads);
  Status ran = atlas_analysis_pass(dataset, config.sanitize, config.changes,
                                   config.metrics, exec, checkpoint,
                                   io::kCkptAtlasFile, fingerprint,
                                   &ingest_sink, study);
  if (!ran.ok()) return ran.with_context("atlas study");
  return study;
}

Expected<CdnStudy> run_cdn_study_from_files(
    const std::vector<std::string>& paths, const CdnFileStudyConfig& config,
    io::IngestStats* ingest, const CheckpointConfig& checkpoint) {
  obs::MetricsSink ingest_sink;
  io::ReaderOptions ropts = config.reader;
  if (config.metrics && !ropts.metrics) ropts.metrics = &ingest_sink;

  std::vector<cdn::AssociationLog> dataset;
  const std::uint64_t load_start = obs::now_ns();
  Status loaded = load_dataset_files(
      paths, ropts, ingest,
      [](const std::string& path, const io::ReaderOptions& r,
         io::IngestStats* st) { return io::load_assoc_file(path, r, st); },
      [](std::vector<cdn::AssociationLog>& into,
         std::vector<cdn::AssociationLog>&& more) {
        io::merge_assoc_datasets(into, std::move(more));
      },
      dataset);
  if (!loaded.ok()) return loaded.with_context("cdn study");
  const std::uint64_t load_ns = obs::now_ns() - load_start;
  if (ingest) ingest->load_wall_ns += load_ns;
  if (config.metrics) ingest_sink.phase("cdn.ingest").record(load_ns);

  CdnStudy study;
  study.asn_names = config.asn_names;

  const std::uint64_t fingerprint = cdn_file_fingerprint(paths, config);

  ShardExecutor exec(config.threads);
  Status ran = cdn_analysis_pass(dataset, config.assoc, config.mobile_asns,
                                 config.registries, config.metrics, exec,
                                 checkpoint, io::kCkptCdnFile, fingerprint,
                                 &ingest_sink, study);
  if (!ran.ok()) return ran.with_context("cdn study");
  return study;
}

// --------------------------------------------------- streaming entrypoints

bool natural_name_less(std::string_view a, std::string_view b) {
  auto digit = [](char c) { return c >= '0' && c <= '9'; };
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (digit(a[i]) && digit(b[j])) {
      std::size_t ia = i, jb = j;
      while (ia < a.size() && digit(a[ia])) ++ia;
      while (jb < b.size() && digit(b[jb])) ++jb;
      std::size_t za = i, zb = j;
      while (za < ia && a[za] == '0') ++za;  // strip leading zeros
      while (zb < jb && b[zb] == '0') ++zb;
      std::string_view va = a.substr(za, ia - za);
      std::string_view vb = b.substr(zb, jb - zb);
      if (va.size() != vb.size()) return va.size() < vb.size();
      if (va != vb) return va < vb;
      if (ia - i != jb - j) return ia - i < jb - j;
      i = ia;
      j = jb;
      continue;
    }
    if (a[i] != b[j]) return a[i] < b[j];
    ++i;
    ++j;
  }
  return a.size() - i < b.size() - j;
}

namespace {

// --- accumulated-dataset blob codecs -------------------------------------
//
// Stream checkpoints carry the merged in-memory dataset, not the source
// CSVs: re-reading the batch files through the CSV readers would re-apply
// per-file deduplication to records that legitimately repeat across
// batches, changing results. Tags are serialized as strings because
// core::tag_pool() ids are assigned in first-intern order and are not
// stable across processes.

void save_echo_dataset(io::ckpt::Writer& w,
                       const std::vector<atlas::ProbeSeries>& dataset) {
  w.u64(dataset.size());
  for (const atlas::ProbeSeries& series : dataset) {
    w.u32(series.meta.probe_id);
    w.u64(series.meta.tags.size());
    for (TagId tag : series.meta.tags) w.str(tag_pool().name_of(tag));
    w.u64(series.records.size());
    for (const atlas::EchoRecord& rec : series.records) {
      w.u64(rec.hour);
      w.u8(std::uint8_t(rec.family));
      w.u32(rec.x_client_ip4.value());
      w.u32(rec.src_addr4.value());
      w.u64(rec.x_client_ip6.bits().hi);
      w.u64(rec.x_client_ip6.bits().lo);
      w.u64(rec.src_addr6.bits().hi);
      w.u64(rec.src_addr6.bits().lo);
    }
  }
}

bool load_echo_dataset(io::ckpt::Reader& r,
                       std::vector<atlas::ProbeSeries>& dataset) {
  dataset.clear();
  std::uint64_t n_series = r.size();
  dataset.reserve(n_series);
  for (std::uint64_t i = 0; i < n_series; ++i) {
    atlas::ProbeSeries series;
    series.meta.probe_id = r.u32();
    std::uint64_t n_tags = r.size();
    series.meta.tags.reserve(n_tags);
    for (std::uint64_t t = 0; t < n_tags; ++t)
      series.meta.tags.push_back(tag_pool().intern(r.str()));
    std::uint64_t n_records = r.size();
    series.records.reserve(n_records);
    for (std::uint64_t k = 0; k < n_records; ++k) {
      atlas::EchoRecord rec;
      rec.probe_id = series.meta.probe_id;
      rec.hour = r.u64();
      std::uint8_t family = r.u8();
      if (family > 1) return false;
      rec.family = atlas::Family(family);
      rec.x_client_ip4 = net::IPv4Address(r.u32());
      rec.src_addr4 = net::IPv4Address(r.u32());
      std::uint64_t hi = r.u64();
      std::uint64_t lo = r.u64();
      rec.x_client_ip6 = net::IPv6Address(hi, lo);
      hi = r.u64();
      lo = r.u64();
      rec.src_addr6 = net::IPv6Address(hi, lo);
      series.records.push_back(rec);
    }
    dataset.push_back(std::move(series));
  }
  return r.ok();
}

void save_assoc_dataset(io::ckpt::Writer& w,
                        const std::vector<cdn::AssociationLog>& dataset) {
  w.u64(dataset.size());
  for (const cdn::AssociationLog& log : dataset) {
    w.u32(log.asn);
    // mobile/registry are grafted from the run config at analysis time,
    // not dataset state; they are deliberately not serialized.
    w.u64(log.records.size());
    for (const cdn::AssociationRecord& rec : log.records) {
      w.u32(rec.day);
      w.u32(rec.v4_24.address().value());
      w.u8(std::uint8_t(rec.v4_24.length()));
      w.u64(rec.v6_64.address().bits().hi);
      w.u64(rec.v6_64.address().bits().lo);
      w.u8(std::uint8_t(rec.v6_64.length()));
      w.u32(rec.asn4);
      w.u32(rec.asn6);
      w.u32(rec.subscriber);
    }
  }
}

bool load_assoc_dataset(io::ckpt::Reader& r,
                        std::vector<cdn::AssociationLog>& dataset) {
  dataset.clear();
  std::uint64_t n_logs = r.size();
  dataset.reserve(n_logs);
  for (std::uint64_t i = 0; i < n_logs; ++i) {
    cdn::AssociationLog log;
    log.asn = r.u32();
    std::uint64_t n_records = r.size();
    log.records.reserve(n_records);
    for (std::uint64_t k = 0; k < n_records; ++k) {
      cdn::AssociationRecord rec;
      rec.day = r.u32();
      std::uint32_t v4 = r.u32();
      std::uint8_t len4 = r.u8();
      if (len4 > 32) return false;
      rec.v4_24 = net::Prefix4(net::IPv4Address(v4), int(len4));
      std::uint64_t hi = r.u64();
      std::uint64_t lo = r.u64();
      std::uint8_t len6 = r.u8();
      if (len6 > 128) return false;
      rec.v6_64 = net::Prefix6(net::IPv6Address(hi, lo), int(len6));
      rec.asn4 = r.u32();
      rec.asn6 = r.u32();
      rec.subscriber = r.u32();
      log.records.push_back(rec);
    }
    dataset.push_back(std::move(log));
  }
  return r.ok();
}

// --- stream fingerprints --------------------------------------------------
//
// Like the file fingerprints but without the input paths: a stream's
// batch list grows over its lifetime and is validated separately through
// the checkpoint's consumed-batch high-water mark. Threads stay excluded
// (results are thread-invariant).

std::uint64_t atlas_stream_fingerprint(
    const std::vector<simnet::IspProfile>& isps,
    const AtlasFileStudyConfig& config) {
  io::ckpt::Writer w;
  w.str("atlas.stream");
  w.f64(config.reader.max_reject_fraction);
  w.u64(config.reader.max_consecutive_rejects);
  fingerprint_atlas_analysis(w, config.sanitize, config.changes, isps,
                             config.metrics != nullptr);
  return io::ckpt::fnv1a(w.buffer());
}

std::uint64_t cdn_stream_fingerprint(const CdnFileStudyConfig& config) {
  io::ckpt::Writer w;
  w.str("cdn.stream");
  fingerprint_assoc(w, config.assoc);
  w.f64(config.reader.max_reject_fraction);
  w.u64(config.reader.max_consecutive_rejects);
  std::vector<bgp::Asn> mobile(config.mobile_asns.begin(),
                               config.mobile_asns.end());
  std::sort(mobile.begin(), mobile.end());
  w.u64(mobile.size());
  for (bgp::Asn asn : mobile) w.u32(asn);
  w.u64(config.registries.size());
  for (const auto& [asn, registry] : config.registries) {
    w.u32(asn);
    w.u8(std::uint8_t(registry));
  }
  w.u8(config.metrics != nullptr ? 1 : 0);
  return io::ckpt::fnv1a(w.buffer());
}

// --- watch-directory scanning ---------------------------------------------

/// Unconsumed batch files in `watch_dir`, sorted by natural name order —
/// the stream's consumption order. Dotfiles, in-flight `.tmp` writes and
/// the stop sentinel are skipped. The byte-identity guarantee assumes
/// producers number batches monotonically (tools/stream_feed.py does);
/// numeric ordering means a feed outgrowing its zero-pad width keeps
/// consuming in production order instead of silently replaying
/// `batch-1000` before `batch-999`. Late out-of-order arrivals are still
/// consumed, just merged in arrival order.
std::vector<std::filesystem::path> scan_batches(
    const std::string& watch_dir, const std::string& sentinel,
    const std::set<std::string>& consumed) {
  std::vector<std::filesystem::path> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(watch_dir, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    std::string name = entry.path().filename().string();
    if (name.empty() || name[0] == '.') continue;
    if (name == sentinel) continue;
    if (name.ends_with(".tmp")) continue;
    if (consumed.count(name)) continue;
    out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end(),
            [](const std::filesystem::path& a, const std::filesystem::path& b) {
              return natural_name_less(a.filename().string(),
                                       b.filename().string());
            });
  return out;
}

/// Seconds between a batch file's mtime and now — the stream.lag_seconds
/// gauge: how far ingestion trails production.
double batch_lag_seconds(const std::filesystem::path& path) {
  std::error_code ec;
  auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return 0.0;
  auto delta = std::chrono::duration_cast<std::chrono::duration<double>>(
      std::filesystem::file_time_type::clock::now() - mtime);
  return delta.count() > 0 ? delta.count() : 0.0;
}

// --- stream policies ------------------------------------------------------
//
// The per-study glue the generic follow_stream() loop needs: how to load a
// batch, how to (de)serialize the accumulated dataset, and how to run one
// analysis pass.

struct AtlasStreamPolicy {
  const std::vector<simnet::IspProfile>& isps;
  const AtlasFileStudyConfig& config;
  ShardExecutor& exec;

  using Dataset = std::vector<atlas::ProbeSeries>;
  using Study = AtlasStudy;
  static constexpr std::uint32_t kind = io::kCkptAtlasStream;
  static constexpr const char* label = "atlas stream";

  std::uint64_t fingerprint() const {
    return atlas_stream_fingerprint(isps, config);
  }
  obs::MetricsRegistry* metrics() const { return config.metrics; }
  const io::ReaderOptions& reader() const { return config.reader; }

  Status load_batch(const std::string& path, const io::ReaderOptions& ropts,
                    io::IngestStats* ingest, Dataset& dataset,
                    std::uint64_t& records) const {
    auto part = io::load_echo_file(path, ropts, ingest);
    if (!part.ok()) return part.status();
    Dataset batch = part.take();
    records = 0;
    for (const atlas::ProbeSeries& series : batch)
      records += series.records.size();
    io::merge_echo_datasets(dataset, std::move(batch));
    return Status::Ok();
  }

  void save_dataset(io::ckpt::Writer& w, const Dataset& dataset) const {
    save_echo_dataset(w, dataset);
  }
  bool load_dataset(io::ckpt::Reader& r, Dataset& dataset) const {
    return load_echo_dataset(r, dataset);
  }

  void init_study(Study& study) const {
    simnet::announce_all(isps, study.rib);
    for (const auto& isp : isps) study.as_names[isp.asn] = isp.name;
  }

  Status run_pass(Dataset& dataset, obs::MetricsRegistry* registry,
                  const CheckpointConfig& cc, std::uint64_t fp,
                  obs::MetricsSink* ingest_sink, Study& study) const {
    return atlas_analysis_pass(dataset, config.sanitize, config.changes,
                               registry, exec, cc, kind, fp, ingest_sink,
                               study);
  }
};

struct CdnStreamPolicy {
  const CdnFileStudyConfig& config;
  ShardExecutor& exec;

  using Dataset = std::vector<cdn::AssociationLog>;
  using Study = CdnStudy;
  static constexpr std::uint32_t kind = io::kCkptCdnStream;
  static constexpr const char* label = "cdn stream";

  std::uint64_t fingerprint() const { return cdn_stream_fingerprint(config); }
  obs::MetricsRegistry* metrics() const { return config.metrics; }
  const io::ReaderOptions& reader() const { return config.reader; }

  Status load_batch(const std::string& path, const io::ReaderOptions& ropts,
                    io::IngestStats* ingest, Dataset& dataset,
                    std::uint64_t& records) const {
    auto part = io::load_assoc_file(path, ropts, ingest);
    if (!part.ok()) return part.status();
    Dataset batch = part.take();
    records = 0;
    for (const cdn::AssociationLog& log : batch) records += log.records.size();
    io::merge_assoc_datasets(dataset, std::move(batch));
    return Status::Ok();
  }

  void save_dataset(io::ckpt::Writer& w, const Dataset& dataset) const {
    save_assoc_dataset(w, dataset);
  }
  bool load_dataset(io::ckpt::Reader& r, Dataset& dataset) const {
    return load_assoc_dataset(r, dataset);
  }

  void init_study(Study& study) const { study.asn_names = config.asn_names; }

  Status run_pass(Dataset& dataset, obs::MetricsRegistry* registry,
                  const CheckpointConfig& cc, std::uint64_t fp,
                  obs::MetricsSink* ingest_sink, Study& study) const {
    return cdn_analysis_pass(dataset, config.assoc, config.mobile_asns,
                             config.registries, registry, exec, cc, kind, fp,
                             ingest_sink, study);
  }
};

// --- the stream loop ------------------------------------------------------

template <typename Policy, typename SnapshotFn>
Expected<typename Policy::Study> follow_stream(const Policy& policy,
                                               const std::string& watch_dir,
                                               const StreamConfig& stream,
                                               const SnapshotFn& on_snapshot,
                                               io::IngestStats* ingest,
                                               StreamStats* stats_out) {
  namespace fs = std::filesystem;
  using Study = typename Policy::Study;

  std::error_code ec;
  if (!fs::is_directory(watch_dir, ec))
    return Status(StatusCode::kNotFound,
                  std::string(Policy::label) +
                      ": watch directory does not exist: " + watch_dir);

  const std::uint64_t fingerprint = policy.fingerprint();
  obs::MetricsRegistry* metrics = policy.metrics();

  // All stream-side accounting (`ingest.*`, `stream.*`, `checkpoint.*`)
  // accumulates in one sink persisted inside every checkpoint: unlike the
  // one-shot file studies, a resumed stream does not re-ingest consumed
  // batches, so the counters must travel with the high-water mark.
  obs::MetricsSink sink;
  typename Policy::Dataset dataset;
  std::vector<std::string> consumed;
  StreamStats stats;

  if (stream.resume) {
    const io::StudyCheckpoint& ck = *stream.resume;
    if (ck.kind != Policy::kind)
      return Status(StatusCode::kFailedPrecondition,
                    std::string("checkpoint was written by the ") +
                        io::checkpoint_kind_name(ck.kind) +
                        " study and cannot resume the " +
                        io::checkpoint_kind_name(Policy::kind) + " study");
    if (ck.config_fingerprint != fingerprint)
      return Status(StatusCode::kFailedPrecondition,
                    "checkpoint config fingerprint does not match this run; "
                    "resume requires the exact original stream parameters");
    if (ck.item_count != ck.consumed.size() || ck.shards.size() != 1)
      return Status(StatusCode::kDataLoss,
                    "checkpoint is corrupt: stream batch accounting is "
                    "inconsistent");
    io::ckpt::Reader r(ck.shards.front().blob);
    if (!policy.load_dataset(r, dataset) || r.remaining() != 0)
      return Status(StatusCode::kDataLoss,
                    "checkpoint is corrupt: accumulated dataset failed to "
                    "parse");
    if (!ck.supervisor_blob.empty()) {
      io::ckpt::Reader sr(ck.supervisor_blob);
      if (!sink.load(sr) || sr.remaining() != 0)
        return Status(StatusCode::kDataLoss,
                      "checkpoint is corrupt: stream accounting failed to "
                      "parse");
    }
    consumed = ck.consumed;
    sink.counter("checkpoint.resumes").add(1);
    stats.batches = consumed.size();
    stats.records = sink.counter("stream.records").value;
    stats.refinalizes = sink.counter("stream.refinalize").value;
  }

  std::set<std::string> consumed_set(consumed.begin(), consumed.end());
  std::uint64_t batches_since_refinalize = 0;
  auto last_refinalize = std::chrono::steady_clock::now();

  io::ReaderOptions base_ropts = policy.reader();
  if (metrics && !base_ropts.metrics) base_ropts.metrics = &sink;

  auto publish_stats = [&] {
    if (stats_out) *stats_out = stats;
  };

  // --- transient-IO retry policy ---
  // Bounded attempts with exponential backoff; the jitter comes from
  // splitmix64 over the configured seed, never from a clock, so a replayed
  // chaos run makes the identical retry/sleep decisions.
  const std::uint64_t max_attempts =
      stream.io_retry_attempts > 0 ? stream.io_retry_attempts : 1;
  auto backoff_ms = [&](std::uint64_t salt,
                        std::uint64_t attempt) -> std::uint64_t {
    const std::uint64_t base =
        stream.io_retry_base_ms > 0 ? stream.io_retry_base_ms : 1;
    const std::uint64_t shift = attempt < 10 ? attempt : 10;
    const std::uint64_t jitter =
        splitmix64(stream.io_retry_seed ^ salt ^ attempt) % (base + 1);
    return (base << shift) + jitter;
  };

  // A giveup is resumable when a durable batch high-water mark exists on
  // disk: the atomic checkpoint writer never tears the previous snapshot,
  // so the run can exit kCancelled (exit 3, `--resume-from`) instead of
  // failing outright and discarding the accumulated stream state.
  auto resumable_or = [&](Status failed) -> Status {
    if (!stream.checkpoint_path.empty() &&
        sink.counter("checkpoint.writes").value > 0)
      return Status(StatusCode::kCancelled,
                    std::string(Policy::label) +
                        ": giving up after repeated IO failures; the last "
                        "durable checkpoint at " +
                        stream.checkpoint_path + " is intact (" +
                        failed.message() + ")");
    return failed;
  };

  // Snapshot the batch high-water mark durably: the consumed-batch list,
  // the accumulated merged dataset, and the stream accounting sink. Written
  // after every batch, so a killed stream replays only unconsumed batches.
  auto write_stream_checkpoint = [&]() -> Status {
    if (stream.checkpoint_path.empty()) return Status::Ok();
    obs::PhaseTimer timer(&sink.phase("checkpoint.write"));
    io::StudyCheckpoint ck;
    ck.kind = Policy::kind;
    ck.config_fingerprint = fingerprint;
    ck.item_count = consumed.size();
    io::ckpt::Writer w;
    policy.save_dataset(w, dataset);
    ck.shards.push_back({0, consumed.size(), consumed.size(), w.take()});
    ck.consumed = consumed;
    io::ckpt::Writer sw;
    sink.save(sw);
    ck.supervisor_blob = sw.take();
    // Disk soft pressure: drop checkpoint retention to keep-last-1 — the
    // `.prev` sibling is roughly a whole extra copy of the accumulated
    // dataset, the cheapest durable bytes to give back.
    bool keep_previous = true;
    if (stream.governor && stream.governor->disk_soft()) {
      keep_previous = false;
      stream.governor->count("retention_drops");
    }
    Status wrote = Status::Ok();
    for (std::uint64_t attempt = 0; attempt < max_attempts; ++attempt) {
      if (attempt > 0) {
        sink.counter("io.retries").add(1);
        interruptible_sleep_ms(
            backoff_ms(/*salt=*/0x636b7074 /*'ckpt'*/, attempt - 1),
            stream.token);
      }
      wrote = io::write_checkpoint(stream.checkpoint_path, ck, keep_previous);
      if (wrote.ok()) {
        sink.counter("checkpoint.writes").add(1);
        return wrote;
      }
      sink.counter("checkpoint.write_failures").add(1);
    }
    sink.counter("io.giveups").add(1);
    return wrote;
  };

  // One re-finalization: a full sharded analysis pass over the accumulated
  // dataset through the persistent executor. Intermediate passes run with a
  // null registry (no metric records, no throwaway totals); only the final
  // pass records analysis metrics and folds the stream sink in, so the
  // registry ends up identical to a one-shot run over the same batches.
  auto refinalize = [&](bool final_pass) -> Expected<Study> {
    sink.counter("stream.refinalize").add(1);
    ++stats.refinalizes;
    Study study;
    policy.init_study(study);
    CheckpointConfig cc;
    cc.token = stream.token;  // poll between rounds; the batch high-water
                              // mark checkpoint is already durable, so no
                              // mid-pass snapshot is needed
    Status ran = policy.run_pass(dataset, final_pass ? metrics : nullptr, cc,
                                 fingerprint, final_pass ? &sink : nullptr,
                                 study);
    if (!ran.ok()) return ran;
    return study;
  };

  auto timer_due = [&] {
    if (stream.refinalize_seconds <= 0) return false;
    auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - last_refinalize);
    return elapsed.count() >= stream.refinalize_seconds;
  };

  // Intermediate re-finalizations are a *publication* convenience — the
  // final pass always runs — which makes them the stream's pressure
  // release valve: deferring one under memory pressure (the pass builds a
  // full per-shard analyzer set over the accumulated dataset) or skipping
  // one while ingestion lags cannot change the final outputs. Both are
  // counted, never silent.
  double last_lag = 0.0;
  bool mem_pressure_prev = false;
  auto intermediate_allowed = [&]() -> bool {
    if (stream.governor && stream.governor->memory_pressure()) {
      stream.governor->count("refinalize_deferred");
      return false;
    }
    if (stream.max_lag_seconds > 0 && last_lag > stream.max_lag_seconds) {
      sink.counter("stream.refinalize_skipped").add(1);
      return false;
    }
    return true;
  };

  for (;;) {
    if (stream.token && stream.token->requested()) {
      sink.counter("checkpoint.interrupted").add(1);
      std::string note = std::string(Policy::label) +
                         " interrupted by shutdown request after " +
                         std::to_string(stats.batches) + " consumed batches";
      if (!stream.checkpoint_path.empty()) {
        Status wrote = write_stream_checkpoint();
        if (!wrote.ok()) {
          publish_stats();
          return resumable_or(wrote);
        }
        note += "; checkpoint written to " + stream.checkpoint_path;
      }
      publish_stats();
      return Status(StatusCode::kCancelled, note);
    }

    if (auto fp = core::failpoint("stream.scan"); fp) {
      if (fp.is_error()) {
        // Transient directory-scan failure: nothing was consumed and
        // nothing merged, so treat it like an empty poll — count the retry,
        // back off, rescan. The shutdown token above keeps even a
        // persistently failing scan drainable.
        sink.counter("io.retries").add(1);
        interruptible_sleep_ms(stream.poll_ms, stream.token);
        continue;
      }
      core::failpoint_sleep(fp);
    }
    std::vector<fs::path> fresh =
        scan_batches(watch_dir, stream.stop_sentinel, consumed_set);
    const bool sentinel_present =
        !stream.stop_sentinel.empty() &&
        fs::exists(fs::path(watch_dir) / stream.stop_sentinel, ec);
    const bool reached_cap =
        stream.max_batches > 0 && stats.batches >= stream.max_batches;

    // Bound the per-sweep backlog: a burst of batches still gets consumed,
    // just across several sweeps, keeping the work list (and the time
    // between token/governor polls at the sweep boundary) bounded.
    if (stream.max_backlog_batches > 0 &&
        fresh.size() > stream.max_backlog_batches)
      fresh.resize(stream.max_backlog_batches);
    sink.gauge("stream.backlog_batches").set(double(fresh.size()));
    if (stream.governor) {
      stream.governor->note_backlog(fresh.size());
      // Memory-pressure rising edge: force the high-water mark to disk
      // *now*, while the process is still healthy enough to write it — if
      // the kernel OOM-kills us anyway, the supervisor resumes from here.
      const bool mem = stream.governor->memory_pressure();
      if (mem && !mem_pressure_prev) {
        stream.governor->count("early_checkpoints");
        Status wrote = write_stream_checkpoint();
        if (!wrote.ok()) {
          publish_stats();
          return resumable_or(wrote);
        }
      }
      mem_pressure_prev = mem;
    }

    if (reached_cap || (fresh.empty() && sentinel_present)) {
      Expected<Study> final_study = refinalize(/*final_pass=*/true);
      publish_stats();
      if (!final_study.ok()) {
        Status st = final_study.status();
        return st.with_context(Policy::label);
      }
      return final_study;
    }

    if (fresh.empty()) {
      if (on_snapshot && batches_since_refinalize > 0 && timer_due() &&
          intermediate_allowed()) {
        Expected<Study> snap = refinalize(/*final_pass=*/false);
        if (!snap.ok()) {
          Status st = snap.status();
          publish_stats();
          return st.with_context(Policy::label);
        }
        on_snapshot(snap.value(), stats);
        batches_since_refinalize = 0;
        last_refinalize = std::chrono::steady_clock::now();
        publish_stats();
        continue;
      }
      interruptible_sleep_ms(stream.poll_ms, stream.token);
      continue;
    }

    for (const fs::path& path : fresh) {
      if (stream.token && stream.token->requested()) break;
      if (stream.max_batches > 0 && stats.batches >= stream.max_batches)
        break;

      // Disk hard pressure: pause ingest until space recovers. The
      // high-water mark on disk is intact and the token stays polled, so
      // a pause is interruptible and resume-safe at any point.
      if (stream.governor && stream.governor->disk_hard()) {
        stream.governor->count("ingest_pauses");
        while (stream.governor->disk_hard() &&
               !(stream.token && stream.token->requested()))
          interruptible_sleep_ms(stream.poll_ms, stream.token);
        if (stream.token && stream.token->requested()) break;
      }

      const double lag = batch_lag_seconds(path);
      last_lag = lag;
      // Load with bounded retries. Each attempt reopens the stream and
      // feeds attempt-local ingest stats and metrics; only a fully
      // successful read merges into the dataset (load_batch's contract)
      // and into the real accounting — so a retried batch leaves the
      // study-facing `ingest.*` counters identical to a fault-free run.
      const std::uint64_t batch_salt =
          splitmix64(std::hash<std::string>{}(path.filename().string()));
      std::uint64_t records = 0;
      Status loaded = Status::Ok();
      for (std::uint64_t attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
          sink.counter("io.retries").add(1);
          interruptible_sleep_ms(backoff_ms(batch_salt, attempt - 1),
                                 stream.token);
        }
        io::ReaderOptions ropts = base_ropts;
        ropts.source_label = path.string();
        // Disk soft pressure: shed quarantine copies of rejected lines —
        // diagnostics, not data; rejects stay counted in `ingest.*` and
        // the shed volume in `resource.quarantine_shed`.
        ropts.shed_quarantine =
            stream.governor && stream.governor->disk_soft();
        obs::MetricsSink attempt_sink;
        if (base_ropts.metrics) ropts.metrics = &attempt_sink;
        io::IngestStats attempt_ingest;
        records = 0;
        loaded = policy.load_batch(path.string(), ropts, &attempt_ingest,
                                   dataset, records);
        if (loaded.ok()) {
          if (ingest) ingest->merge(attempt_ingest);
          if (stream.governor)
            stream.governor->count("quarantine_shed",
                                   attempt_ingest.quarantine_shed);
          if (base_ropts.metrics)
            base_ropts.metrics->merge(std::move(attempt_sink));
          break;
        }
      }
      if (!loaded.ok()) {
        sink.counter("io.giveups").add(1);
        publish_stats();
        return resumable_or(loaded.with_context(path.string()));
      }

      const std::string name = path.filename().string();
      consumed.push_back(name);
      consumed_set.insert(name);
      ++stats.batches;
      stats.records += records;
      sink.counter("stream.batches").add(1);
      sink.counter("stream.records").add(records);
      sink.gauge("stream.lag_seconds").set(lag);
      ++batches_since_refinalize;

      Status wrote = write_stream_checkpoint();
      if (!wrote.ok()) {
        publish_stats();
        return resumable_or(wrote);
      }
      publish_stats();

      if (on_snapshot &&
          ((stream.refinalize_every_batches > 0 &&
            batches_since_refinalize >= stream.refinalize_every_batches) ||
           timer_due()) &&
          intermediate_allowed()) {
        Expected<Study> snap = refinalize(/*final_pass=*/false);
        if (!snap.ok()) {
          Status st = snap.status();
          publish_stats();
          return st.with_context(Policy::label);
        }
        on_snapshot(snap.value(), stats);
        batches_since_refinalize = 0;
        last_refinalize = std::chrono::steady_clock::now();
        publish_stats();
      }
    }
  }
}

}  // namespace

StreamDriver::StreamDriver(unsigned threads) : exec_(threads) {}

unsigned StreamDriver::thread_count() const { return exec_.thread_count(); }

Expected<AtlasStudy> StreamDriver::follow_atlas(
    const std::string& watch_dir, const std::vector<simnet::IspProfile>& isps,
    const AtlasFileStudyConfig& config, const StreamConfig& stream,
    AtlasSnapshotFn on_snapshot, io::IngestStats* ingest, StreamStats* stats) {
  AtlasStreamPolicy policy{isps, config, exec_};
  return follow_stream(policy, watch_dir, stream, on_snapshot, ingest, stats);
}

Expected<CdnStudy> StreamDriver::follow_cdn(const std::string& watch_dir,
                                            const CdnFileStudyConfig& config,
                                            const StreamConfig& stream,
                                            CdnSnapshotFn on_snapshot,
                                            io::IngestStats* ingest,
                                            StreamStats* stats) {
  CdnStreamPolicy policy{config, exec_};
  return follow_stream(policy, watch_dir, stream, on_snapshot, ingest, stats);
}

Expected<AtlasStudy> run_atlas_stream(
    const std::string& watch_dir, const std::vector<simnet::IspProfile>& isps,
    const AtlasFileStudyConfig& config, const StreamConfig& stream,
    AtlasSnapshotFn on_snapshot, io::IngestStats* ingest, StreamStats* stats) {
  StreamDriver driver(config.threads);
  return driver.follow_atlas(watch_dir, isps, config, stream,
                             std::move(on_snapshot), ingest, stats);
}

Expected<CdnStudy> run_cdn_stream(const std::string& watch_dir,
                                  const CdnFileStudyConfig& config,
                                  const StreamConfig& stream,
                                  CdnSnapshotFn on_snapshot,
                                  io::IngestStats* ingest,
                                  StreamStats* stats) {
  StreamDriver driver(config.threads);
  return driver.follow_cdn(watch_dir, config, stream, std::move(on_snapshot),
                           ingest, stats);
}

}  // namespace dynamips::core
