#include "core/pipeline.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace dynamips::core {

namespace {

/// Study structs expose std::map; the analyzers accumulate into FlatMap.
/// FlatMap iterates in key order, so this is a linear in-order build.
template <class K, class V, class C>
std::map<K, V> to_std_map(const stats::FlatMap<K, V, C>& fm) {
  return std::map<K, V>(fm.begin(), fm.end());
}

/// One shard's private analyzer set for the Atlas study. The metrics sink
/// is part of the shard state and merges through the same ordered
/// reduction, so counter totals are independent of the thread count.
struct AtlasShard {
  Sanitizer sanitizer;
  DurationAnalyzer durations;
  SpatialAnalyzer spatial;
  InferenceCollector inference;
  obs::MetricsSink metrics;

  AtlasShard(const bgp::Rib& rib, const SanitizeOptions& sanitize,
             const ChangeOptions& changes)
      : sanitizer(rib, sanitize), durations(changes), spatial(rib) {}

  void merge(AtlasShard&& other) {
    sanitizer.merge(std::move(other.sanitizer));
    durations.merge(std::move(other.durations));
    spatial.merge(std::move(other.spatial));
    inference.merge(std::move(other.inference));
    metrics.merge(std::move(other.metrics));
  }

  void finalize() {
    sanitizer.finalize();
    durations.finalize();
    spatial.finalize();
    inference.finalize();
  }

  void save(io::ckpt::Writer& w) const {
    sanitizer.save(w);
    durations.save(w);
    spatial.save(w);
    inference.save(w);
    metrics.save(w);
  }
  bool load(io::ckpt::Reader& r) {
    return sanitizer.load(r) && durations.load(r) && spatial.load(r) &&
           inference.load(r) && metrics.load(r);
  }
};

/// One shard's private state for the CDN study (analyzer + metrics sink),
/// mirroring AtlasShard so both studies checkpoint through the same path.
struct CdnShard {
  CdnAnalyzer analyzer;
  obs::MetricsSink metrics;

  CdnShard(const AssocOptions& options,
           const std::unordered_set<bgp::Asn>& mobile_asns)
      : analyzer(options, mobile_asns) {}

  void merge(CdnShard&& other) {
    analyzer.merge(std::move(other.analyzer));
    metrics.merge(std::move(other.metrics));
  }

  void finalize() { analyzer.finalize(); }

  void save(io::ckpt::Writer& w) const {
    analyzer.save(w);
    metrics.save(w);
  }
  bool load(io::ckpt::Reader& r) {
    return analyzer.load(r) && metrics.load(r);
  }
};

/// Ratio of the slowest shard's wall time to the mean — 1.0 is perfectly
/// balanced. Recorded as a gauge so load skew across shards is visible.
double imbalance_ratio(const std::vector<std::uint64_t>& shard_ns) {
  if (shard_ns.empty()) return 1.0;
  std::uint64_t max = 0, sum = 0;
  for (std::uint64_t ns : shard_ns) {
    sum += ns;
    if (ns > max) max = ns;
  }
  double mean = double(sum) / double(shard_ns.size());
  return mean > 0 ? double(max) / mean : 1.0;
}

// ----------------------------------------------------- crash-safe driving

/// Round size when supervision is active but no explicit interval was set:
/// small enough that a shutdown token is honored promptly, large enough
/// that the per-round dispatch barrier is noise.
constexpr std::uint64_t kDefaultRoundItems = 256;

/// The shard partition plus each shard's next unprocessed index. Fresh
/// runs derive it from the thread count; resumed runs restore it from the
/// checkpoint, which is what makes a resumed run byte-identical to the
/// original regardless of either run's thread setting.
struct ShardPlan {
  std::vector<ShardRange> ranges;
  std::vector<std::size_t> next;
};

// --- config fingerprints -------------------------------------------------
//
// A fingerprint is FNV-1a over a canonical serialization of every parameter
// that influences study results. Resuming under a different fingerprint is
// rejected: the restored analyzer state would silently mix two experiments.
// The thread knob is deliberately excluded (results are thread-invariant);
// whether metrics are enabled is included, because a resumed run cannot
// reconstruct the metric records of items processed before the interrupt.

void fingerprint_atlas_analysis(io::ckpt::Writer& w,
                                const SanitizeOptions& sanitize,
                                const ChangeOptions& changes,
                                const std::vector<simnet::IspProfile>& isps,
                                bool metrics) {
  w.u64(sanitize.min_observation_hours);
  w.u64(sanitize.bad_tags.size());
  for (const auto& tag : sanitize.bad_tags) w.str(tag);
  w.f64(sanitize.public_src_threshold);
  w.f64(sanitize.v6_mismatch_threshold);
  w.i32(sanitize.max_as_runs);
  w.u64(changes.max_boundary_gap);
  w.u64(isps.size());
  for (const auto& isp : isps) w.u32(isp.asn);
  w.u8(metrics ? 1 : 0);
}

std::uint64_t atlas_gen_fingerprint(
    const std::vector<simnet::IspProfile>& isps,
    const AtlasStudyConfig& config) {
  io::ckpt::Writer w;
  w.str("atlas.gen");
  w.u64(config.atlas.window_hours);
  w.f64(config.atlas.probe_scale);
  w.u64(config.atlas.seed);
  w.f64(config.atlas.short_lived_share);
  w.f64(config.atlas.multihomed_share);
  w.f64(config.atlas.as_switch_share);
  w.f64(config.atlas.bad_tag_share);
  w.f64(config.atlas.public_src_share);
  w.f64(config.atlas.test_addr_share);
  w.f64(config.atlas.hourly_presence);
  w.f64(config.atlas.eui64_share);
  fingerprint_atlas_analysis(w, config.sanitize, config.changes, isps,
                             config.metrics != nullptr);
  return io::ckpt::fnv1a(w.buffer());
}

std::uint64_t atlas_file_fingerprint(
    const std::vector<std::string>& paths,
    const std::vector<simnet::IspProfile>& isps,
    const AtlasFileStudyConfig& config) {
  io::ckpt::Writer w;
  w.str("atlas.files");
  w.u64(paths.size());
  for (const auto& path : paths) w.str(path);
  w.f64(config.reader.max_reject_fraction);
  w.u64(config.reader.max_consecutive_rejects);
  fingerprint_atlas_analysis(w, config.sanitize, config.changes, isps,
                             config.metrics != nullptr);
  return io::ckpt::fnv1a(w.buffer());
}

void fingerprint_assoc(io::ckpt::Writer& w, const AssocOptions& assoc) {
  w.u8(assoc.require_asn_match ? 1 : 0);
  w.u32(assoc.max_gap_days);
}

std::uint64_t cdn_gen_fingerprint(
    const std::vector<cdn::PopulationEntry>& population,
    const CdnStudyConfig& config) {
  io::ckpt::Writer w;
  w.str("cdn.gen");
  w.i32(config.cdn.days);
  w.f64(config.cdn.subscriber_scale);
  w.u64(config.cdn.seed);
  w.f64(config.cdn.daily_activity);
  w.f64(config.cdn.cross_network_noise);
  fingerprint_assoc(w, config.assoc);
  w.u64(population.size());
  for (const auto& entry : population) {
    w.u32(entry.isp.asn);
    w.i32(entry.subscribers);
  }
  w.u8(config.metrics != nullptr ? 1 : 0);
  return io::ckpt::fnv1a(w.buffer());
}

std::uint64_t cdn_file_fingerprint(const std::vector<std::string>& paths,
                                   const CdnFileStudyConfig& config) {
  io::ckpt::Writer w;
  w.str("cdn.files");
  w.u64(paths.size());
  for (const auto& path : paths) w.str(path);
  fingerprint_assoc(w, config.assoc);
  w.f64(config.reader.max_reject_fraction);
  w.u64(config.reader.max_consecutive_rejects);
  // Unordered-set iteration order is not canonical; sort before hashing.
  std::vector<bgp::Asn> mobile(config.mobile_asns.begin(),
                               config.mobile_asns.end());
  std::sort(mobile.begin(), mobile.end());
  w.u64(mobile.size());
  for (bgp::Asn asn : mobile) w.u32(asn);
  w.u64(config.registries.size());
  for (const auto& [asn, registry] : config.registries) {
    w.u32(asn);
    w.u8(std::uint8_t(registry));
  }
  w.u8(config.metrics != nullptr ? 1 : 0);
  return io::ckpt::fnv1a(w.buffer());
}

// --- resume validation and state restore ---------------------------------

Status plan_shards(const CheckpointConfig& cc, std::uint32_t kind,
                   std::uint64_t fingerprint, std::uint64_t item_count,
                   unsigned threads, ShardPlan& plan) {
  if (!cc.resume) {
    plan.ranges = shard_ranges(item_count, threads);
    plan.next.clear();
    for (const auto& r : plan.ranges) plan.next.push_back(r.begin);
    return Status::Ok();
  }
  const io::StudyCheckpoint& ck = *cc.resume;
  if (ck.kind != kind)
    return Status(StatusCode::kFailedPrecondition,
                  std::string("checkpoint was written by the ") +
                      io::checkpoint_kind_name(ck.kind) +
                      " study and cannot resume the " +
                      io::checkpoint_kind_name(kind) + " study");
  if (ck.config_fingerprint != fingerprint)
    return Status(StatusCode::kFailedPrecondition,
                  "checkpoint config fingerprint does not match this run; "
                  "resume requires the exact original study parameters");
  if (ck.item_count != item_count)
    return Status(StatusCode::kFailedPrecondition,
                  "checkpoint covers " + std::to_string(ck.item_count) +
                      " work items but this run has " +
                      std::to_string(item_count) +
                      "; the dataset changed since the checkpoint");
  plan.ranges.clear();
  plan.next.clear();
  for (const auto& shard : ck.shards) {
    plan.ranges.push_back(
        {std::size_t(shard.begin), std::size_t(shard.end)});
    plan.next.push_back(std::size_t(shard.next));
  }
  return Status::Ok();
}

template <typename Shard>
Status restore_shards(const CheckpointConfig& cc, std::vector<Shard>& shards,
                      obs::MetricsSink& sup, obs::MetricsRegistry* registry) {
  if (!cc.resume) return Status::Ok();
  const io::StudyCheckpoint& ck = *cc.resume;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    io::ckpt::Reader r(ck.shards[s].blob);
    if (!shards[s].load(r) || r.remaining() != 0)
      return Status(StatusCode::kDataLoss,
                    "checkpoint is corrupt: shard " + std::to_string(s) +
                        " state failed to parse");
  }
  if (registry && !ck.registry_blob.empty()) {
    obs::MetricsSink snapshot;
    io::ckpt::Reader r(ck.registry_blob);
    if (!snapshot.load(r) || r.remaining() != 0)
      return Status(
          StatusCode::kDataLoss,
          "checkpoint is corrupt: registry snapshot failed to parse");
    registry->merge(std::move(snapshot));
  }
  if (!ck.supervisor_blob.empty()) {
    io::ckpt::Reader r(ck.supervisor_blob);
    if (!sup.load(r) || r.remaining() != 0)
      return Status(
          StatusCode::kDataLoss,
          "checkpoint is corrupt: supervisor state failed to parse");
  }
  sup.counter("checkpoint.resumes").add(1);
  return Status::Ok();
}

// --- the supervised round loop -------------------------------------------

/// Run every shard to completion in rounds. Unsupervised (default
/// CheckpointConfig) this is a single round covering each shard's whole
/// range — exactly the legacy dispatch. Supervised, each round advances
/// every unfinished shard by at most `every_items` (or a small default)
/// items, the shutdown token is polled between rounds, and a checkpoint is
/// written after each round while work remains. An interrupt writes a final
/// checkpoint and returns kCancelled.
///
/// `process(s, from, to)` analyzes items [from, to) of shard s;
/// `save_shard(s)` serializes shard s's state (only called between rounds,
/// never concurrently with process).
template <typename ProcessRange, typename SaveShard>
Status drive_shards(ShardExecutor& exec, const CheckpointConfig& cc,
                    std::uint32_t kind, std::uint64_t fingerprint,
                    std::uint64_t item_count, ShardPlan& plan,
                    obs::MetricsRegistry* registry, obs::MetricsSink& sup,
                    const ProcessRange& process, const SaveShard& save_shard) {
  if (cc.every_items > 0 && cc.path.empty())
    return Status(StatusCode::kInvalidArgument,
                  "periodic checkpoints require a checkpoint path");
  const bool supervised = cc.active();
  const std::uint64_t chunk =
      cc.every_items ? cc.every_items : kDefaultRoundItems;

  auto all_done = [&] {
    for (std::size_t s = 0; s < plan.ranges.size(); ++s)
      if (plan.next[s] < plan.ranges[s].end) return false;
    return true;
  };

  // Snapshot the full mid-run state and write it durably. The registry
  // snapshot is taken here — before any partial shard sink is merged into
  // it — so a resumed process restoring it never double-counts.
  auto snapshot = [&]() -> Status {
    obs::PhaseTimer timer(&sup.phase("checkpoint.write"));
    io::StudyCheckpoint ck;
    ck.kind = kind;
    ck.config_fingerprint = fingerprint;
    ck.item_count = item_count;
    ck.shards.reserve(plan.ranges.size());
    for (std::size_t s = 0; s < plan.ranges.size(); ++s)
      ck.shards.push_back({plan.ranges[s].begin, plan.ranges[s].end,
                           plan.next[s], save_shard(s)});
    if (registry) {
      io::ckpt::Writer w;
      registry->snapshot().save(w);
      ck.registry_blob = w.take();
    }
    {
      io::ckpt::Writer w;
      sup.save(w);
      ck.supervisor_blob = w.take();
    }
    Status st = io::write_checkpoint(cc.path, ck);
    if (st.ok())
      sup.counter("checkpoint.writes").add(1);
    else
      sup.counter("checkpoint.write_failures").add(1);
    return st;
  };

  for (;;) {
    Status ran = exec.try_dispatch(plan.ranges.size(), [&](std::size_t s) {
      const std::size_t end = plan.ranges[s].end;
      std::size_t from = plan.next[s];
      std::size_t stop =
          supervised && chunk < end - from ? from + chunk : end;
      process(s, from, stop);
      plan.next[s] = stop;
    });
    if (!ran.ok()) return ran;
    if (supervised) sup.counter("checkpoint.rounds").add(1);
    if (all_done()) return Status::Ok();
    if (cc.token && cc.token->requested()) {
      sup.counter("checkpoint.interrupted").add(1);
      std::string note = "interrupted by shutdown request after " +
                         std::to_string([&] {
                           std::uint64_t done = 0;
                           for (std::size_t s = 0; s < plan.ranges.size(); ++s)
                             done += plan.next[s] - plan.ranges[s].begin;
                           return done;
                         }()) +
                         " of " + std::to_string(item_count) + " items";
      if (!cc.path.empty()) {
        Status wrote = snapshot();
        if (!wrote.ok()) return wrote;
        note += "; checkpoint written to " + cc.path;
      }
      return Status(StatusCode::kCancelled, note);
    }
    if (cc.every_items > 0) {
      Status wrote = snapshot();
      if (!wrote.ok()) return wrote;
    }
  }
}

}  // namespace

Expected<AtlasStudy> run_atlas_study_supervised(
    const std::vector<simnet::IspProfile>& isps,
    const AtlasStudyConfig& config, const CheckpointConfig& checkpoint) {
  AtlasStudy study;
  simnet::announce_all(isps, study.rib);
  for (const auto& isp : isps) study.as_names[isp.asn] = isp.name;

  atlas::AtlasSimulator sim(isps, config.atlas);
  const std::uint64_t fingerprint = atlas_gen_fingerprint(isps, config);

  ShardExecutor exec(config.threads);
  ShardPlan plan;
  Status planned = plan_shards(checkpoint, io::kCkptAtlasGen, fingerprint,
                               sim.probe_count(), exec.thread_count(), plan);
  if (!planned.ok()) return planned.with_context("atlas study");

  std::vector<AtlasShard> shards;
  shards.reserve(plan.ranges.size());
  for (std::size_t s = 0; s < plan.ranges.size(); ++s)
    shards.emplace_back(study.rib, config.sanitize, config.changes);
  obs::MetricsSink sup;
  Status restored =
      restore_shards(checkpoint, shards, sup, config.metrics);
  if (!restored.ok()) return restored.with_context("atlas study");

  // Per-probe generation is a pure function of (config, isps, index), and
  // each shard writes only its own analyzer set, so shards race on nothing.
  auto process = [&](std::size_t s, std::size_t from, std::size_t to) {
    AtlasShard& shard = shards[s];
    if (!config.metrics) {
      for (std::size_t i = from; i < to; ++i) {
        ProbeObservations obs = from_series(sim.series_for(i));
        for (const CleanProbe& cp : shard.sanitizer.sanitize(obs)) {
          shard.durations.add(cp);
          shard.spatial.add(cp);
          shard.inference.add(cp);
        }
      }
      return;
    }
    // Instrumented variant of the loop above: identical analyzer calls,
    // plus shard-local counters and per-phase spans (no shared state).
    obs::MetricsSink& m = shard.metrics;
    obs::Counter& c_probes = m.counter("atlas.probes_generated");
    obs::Counter& c_records = m.counter("atlas.echo_records");
    obs::Counter& c_clean = m.counter("atlas.clean_probes");
    obs::Histogram& h_records = m.histogram("atlas.records_per_probe", 0, 6, 5);
    obs::PhaseStats& p_gen = m.phase("atlas.generate");
    obs::PhaseStats& p_san = m.phase("atlas.sanitize");
    obs::PhaseStats& p_dur = m.phase("atlas.durations.add");
    obs::PhaseStats& p_spa = m.phase("atlas.spatial.add");
    obs::PhaseStats& p_inf = m.phase("atlas.inference.add");
    const std::uint64_t shard_start = obs::now_ns();
    for (std::size_t i = from; i < to; ++i) {
      std::uint64_t t0 = obs::now_ns();
      atlas::ProbeSeries series = sim.series_for(i);
      ProbeObservations obs = from_series(series);
      std::uint64_t t1 = obs::now_ns();
      p_gen.record(t1 - t0);
      c_probes.add(1);
      c_records.add(series.records.size());
      h_records.record(double(series.records.size()));
      auto cleaned = shard.sanitizer.sanitize(obs);
      std::uint64_t t2 = obs::now_ns();
      p_san.record(t2 - t1);
      c_clean.add(cleaned.size());
      for (const CleanProbe& cp : cleaned) {
        std::uint64_t a0 = obs::now_ns();
        shard.durations.add(cp);
        std::uint64_t a1 = obs::now_ns();
        shard.spatial.add(cp);
        std::uint64_t a2 = obs::now_ns();
        shard.inference.add(cp);
        std::uint64_t a3 = obs::now_ns();
        p_dur.record(a1 - a0);
        p_spa.record(a2 - a1);
        p_inf.record(a3 - a2);
      }
    }
    m.phase("atlas.shard_wall").record(obs::now_ns() - shard_start);
  };
  auto save_shard = [&](std::size_t s) {
    io::ckpt::Writer w;
    shards[s].save(w);
    return w.take();
  };

  Status drove =
      drive_shards(exec, checkpoint, io::kCkptAtlasGen, fingerprint,
                   sim.probe_count(), plan, config.metrics, sup, process,
                   save_shard);
  if (!drove.ok()) {
    // The checkpoint (if any) is already durable; fold the partial shard
    // sinks into the registry so an interrupted tool run can still report.
    if (config.metrics) {
      obs::MetricsSink partial;
      for (AtlasShard& shard : shards) partial.merge(std::move(shard.metrics));
      partial.merge(std::move(sup));
      config.metrics->merge(std::move(partial));
    }
    return drove.with_context("atlas study");
  }

  std::vector<std::uint64_t> shard_ns;
  if (config.metrics)
    for (AtlasShard& shard : shards)
      shard_ns.push_back(shard.metrics.phase("atlas.shard_wall").total_ns);

  // Ordered reduction: shard 0 absorbs the rest in index order, which keeps
  // every append-ordered vector in the exact order of the serial run.
  AtlasShard& root = shards.front();
  {
    std::uint64_t t0 = config.metrics ? obs::now_ns() : 0;
    for (std::size_t s = 1; s < shards.size(); ++s)
      root.merge(std::move(shards[s]));
    std::uint64_t t1 = config.metrics ? obs::now_ns() : 0;
    root.finalize();
    if (config.metrics) {
      root.metrics.phase("atlas.merge").record(t1 - t0);
      root.metrics.phase("atlas.finalize").record(obs::now_ns() - t1);
    }
  }

  study.sanitize = root.sanitizer.stats();
  study.durations = to_std_map(root.durations.by_as());
  study.spatial = to_std_map(root.spatial.by_as());
  study.subscriber_inference = root.inference.take_subscriber();
  study.pool_inference = root.inference.take_pools();

  if (config.metrics) {
    study.sanitize.publish(root.metrics);
    sim.publish_metrics(root.metrics);
    root.metrics.gauge("atlas.shards").set(double(plan.ranges.size()));
    root.metrics.gauge("atlas.shard_imbalance").set(imbalance_ratio(shard_ns));
    root.metrics.merge(std::move(sup));
    config.metrics->merge(std::move(root.metrics));
  }
  return study;
}

AtlasStudy run_atlas_study(const std::vector<simnet::IspProfile>& isps,
                           const AtlasStudyConfig& config) {
  auto study = run_atlas_study_supervised(isps, config, {});
  if (!study.ok()) throw std::runtime_error(study.status().to_string());
  return study.take();
}

Expected<CdnStudy> run_cdn_study_supervised(
    const std::vector<cdn::PopulationEntry>& population,
    const CdnStudyConfig& config, const CheckpointConfig& checkpoint) {
  cdn::CdnSimulator sim(population, config.cdn);
  CdnStudy study{CdnAnalyzer(config.assoc, sim.mobile_asns()), {}};
  for (const auto& entry : population)
    study.asn_names[entry.isp.asn] = entry.isp.name;

  const std::uint64_t fingerprint = cdn_gen_fingerprint(population, config);

  ShardExecutor exec(config.threads);
  ShardPlan plan;
  Status planned = plan_shards(checkpoint, io::kCkptCdnGen, fingerprint,
                               sim.entry_count(), exec.thread_count(), plan);
  if (!planned.ok()) return planned.with_context("cdn study");

  const std::unordered_set<bgp::Asn> mobile = sim.mobile_asns();
  std::vector<CdnShard> shards(plan.ranges.size(),
                               CdnShard(config.assoc, mobile));
  obs::MetricsSink sup;
  Status restored =
      restore_shards(checkpoint, shards, sup, config.metrics);
  if (!restored.ok()) return restored.with_context("cdn study");

  auto process = [&](std::size_t s, std::size_t from, std::size_t to) {
    CdnShard& shard = shards[s];
    if (!config.metrics) {
      for (std::size_t i = from; i < to; ++i)
        shard.analyzer.add(sim.generate(i));
      return;
    }
    obs::MetricsSink& m = shard.metrics;
    obs::Counter& c_logs = m.counter("cdn.logs_generated");
    obs::Counter& c_tuples = m.counter("cdn.association_tuples");
    obs::Histogram& h_tuples = m.histogram("cdn.tuples_per_log", 0, 8, 5);
    obs::PhaseStats& p_gen = m.phase("cdn.generate");
    obs::PhaseStats& p_add = m.phase("cdn.analyzer.add");
    const std::uint64_t shard_start = obs::now_ns();
    for (std::size_t i = from; i < to; ++i) {
      std::uint64_t t0 = obs::now_ns();
      cdn::AssociationLog log = sim.generate(i);
      std::uint64_t t1 = obs::now_ns();
      p_gen.record(t1 - t0);
      c_logs.add(1);
      c_tuples.add(log.records.size());
      h_tuples.record(double(log.records.size()));
      shard.analyzer.add(log);
      p_add.record(obs::now_ns() - t1);
    }
    m.phase("cdn.shard_wall").record(obs::now_ns() - shard_start);
  };
  auto save_shard = [&](std::size_t s) {
    io::ckpt::Writer w;
    shards[s].save(w);
    return w.take();
  };

  Status drove =
      drive_shards(exec, checkpoint, io::kCkptCdnGen, fingerprint,
                   sim.entry_count(), plan, config.metrics, sup, process,
                   save_shard);
  if (!drove.ok()) {
    if (config.metrics) {
      obs::MetricsSink partial;
      for (CdnShard& shard : shards) partial.merge(std::move(shard.metrics));
      partial.merge(std::move(sup));
      config.metrics->merge(std::move(partial));
    }
    return drove.with_context("cdn study");
  }

  std::vector<std::uint64_t> shard_ns;
  if (config.metrics)
    for (CdnShard& shard : shards)
      shard_ns.push_back(shard.metrics.phase("cdn.shard_wall").total_ns);

  {
    std::uint64_t t0 = config.metrics ? obs::now_ns() : 0;
    for (std::size_t s = 1; s < shards.size(); ++s)
      shards.front().merge(std::move(shards[s]));
    study.analyzer.merge(std::move(shards.front().analyzer));
    std::uint64_t t1 = config.metrics ? obs::now_ns() : 0;
    study.analyzer.finalize();
    if (config.metrics) {
      shards.front().metrics.phase("cdn.merge").record(t1 - t0);
      shards.front().metrics.phase("cdn.finalize").record(obs::now_ns() - t1);
    }
  }

  if (config.metrics) {
    obs::MetricsSink& m = shards.front().metrics;
    m.counter("cdn.tuples_kept").add(study.analyzer.total_tuples());
    m.counter("cdn.tuples_mismatched").add(study.analyzer.total_mismatched());
    sim.publish_metrics(m);
    m.gauge("cdn.shards").set(double(plan.ranges.size()));
    m.gauge("cdn.shard_imbalance").set(imbalance_ratio(shard_ns));
    m.merge(std::move(sup));
    config.metrics->merge(std::move(m));
  }
  return study;
}

CdnStudy run_cdn_study(const std::vector<cdn::PopulationEntry>& population,
                       const CdnStudyConfig& config) {
  auto study = run_cdn_study_supervised(population, config, {});
  if (!study.ok()) throw std::runtime_error(study.status().to_string());
  return study.take();
}

// ------------------------------------------------- file-driven entrypoints

namespace {

/// Open + stream one dataset file through the given loader, accumulating
/// into `dataset` (shared codepath of both from_files entrypoints).
template <typename Loader, typename Merger, typename Dataset>
Status load_dataset_files(const std::vector<std::string>& paths,
                          io::ReaderOptions reader, io::IngestStats* ingest,
                          Loader&& load, Merger&& merge_into,
                          Dataset& dataset) {
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
      return Status(StatusCode::kNotFound, "cannot open dataset: " + path);
    reader.source_label = path;
    auto part = load(in, reader, ingest);
    if (!part.ok()) {
      Status st = part.status();
      return st.with_context(path);
    }
    merge_into(dataset, part.take());
  }
  return Status::Ok();
}

}  // namespace

Expected<AtlasStudy> run_atlas_study_from_files(
    const std::vector<std::string>& paths,
    const std::vector<simnet::IspProfile>& isps,
    const AtlasFileStudyConfig& config, io::IngestStats* ingest,
    const CheckpointConfig& checkpoint) {
  AtlasStudy study;
  simnet::announce_all(isps, study.rib);
  for (const auto& isp : isps) study.as_names[isp.asn] = isp.name;

  // Ingest metrics land in a local sink merged into the registry at the
  // end, like every per-shard sink (no locks while loading). The sink is
  // never checkpointed: a resumed run re-ingests the same files and
  // reproduces identical ingest counters.
  obs::MetricsSink ingest_sink;
  io::ReaderOptions ropts = config.reader;
  if (config.metrics && !ropts.metrics) ropts.metrics = &ingest_sink;

  std::vector<atlas::ProbeSeries> dataset;
  const std::uint64_t load_start = config.metrics ? obs::now_ns() : 0;
  Status loaded = load_dataset_files(
      paths, ropts, ingest,
      [](std::istream& in, const io::ReaderOptions& r, io::IngestStats* st) {
        return io::read_echo_dataset(in, r, st);
      },
      [](std::vector<atlas::ProbeSeries>& into,
         std::vector<atlas::ProbeSeries>&& more) {
        io::merge_echo_datasets(into, std::move(more));
      },
      dataset);
  if (!loaded.ok()) return loaded.with_context("atlas study");
  if (config.metrics)
    ingest_sink.phase("atlas.ingest").record(obs::now_ns() - load_start);

  const std::uint64_t fingerprint =
      atlas_file_fingerprint(paths, isps, config);

  ShardExecutor exec(config.threads);
  ShardPlan plan;
  Status planned = plan_shards(checkpoint, io::kCkptAtlasFile, fingerprint,
                               dataset.size(), exec.thread_count(), plan);
  if (!planned.ok()) return planned.with_context("atlas study");

  std::vector<AtlasShard> shards;
  shards.reserve(plan.ranges.size());
  for (std::size_t s = 0; s < plan.ranges.size(); ++s)
    shards.emplace_back(study.rib, config.sanitize, config.changes);
  obs::MetricsSink sup;
  Status restored =
      restore_shards(checkpoint, shards, sup, config.metrics);
  if (!restored.ok()) return restored.with_context("atlas study");

  auto process = [&](std::size_t s, std::size_t from, std::size_t to) {
    AtlasShard& shard = shards[s];
    if (!config.metrics) {
      for (std::size_t i = from; i < to; ++i) {
        ProbeObservations obs = from_series(dataset[i]);
        for (const CleanProbe& cp : shard.sanitizer.sanitize(obs)) {
          shard.durations.add(cp);
          shard.spatial.add(cp);
          shard.inference.add(cp);
        }
      }
      return;
    }
    obs::MetricsSink& m = shard.metrics;
    obs::Counter& c_probes = m.counter("atlas.probes_loaded");
    obs::Counter& c_records = m.counter("atlas.echo_records");
    obs::Counter& c_clean = m.counter("atlas.clean_probes");
    obs::Histogram& h_records = m.histogram("atlas.records_per_probe", 0, 6, 5);
    obs::PhaseStats& p_san = m.phase("atlas.sanitize");
    obs::PhaseStats& p_dur = m.phase("atlas.durations.add");
    obs::PhaseStats& p_spa = m.phase("atlas.spatial.add");
    obs::PhaseStats& p_inf = m.phase("atlas.inference.add");
    const std::uint64_t shard_start = obs::now_ns();
    for (std::size_t i = from; i < to; ++i) {
      const atlas::ProbeSeries& series = dataset[i];
      ProbeObservations obs = from_series(series);
      std::uint64_t t1 = obs::now_ns();
      c_probes.add(1);
      c_records.add(series.records.size());
      h_records.record(double(series.records.size()));
      auto cleaned = shard.sanitizer.sanitize(obs);
      std::uint64_t t2 = obs::now_ns();
      p_san.record(t2 - t1);
      c_clean.add(cleaned.size());
      for (const CleanProbe& cp : cleaned) {
        std::uint64_t a0 = obs::now_ns();
        shard.durations.add(cp);
        std::uint64_t a1 = obs::now_ns();
        shard.spatial.add(cp);
        std::uint64_t a2 = obs::now_ns();
        shard.inference.add(cp);
        std::uint64_t a3 = obs::now_ns();
        p_dur.record(a1 - a0);
        p_spa.record(a2 - a1);
        p_inf.record(a3 - a2);
      }
    }
    m.phase("atlas.shard_wall").record(obs::now_ns() - shard_start);
  };
  auto save_shard = [&](std::size_t s) {
    io::ckpt::Writer w;
    shards[s].save(w);
    return w.take();
  };

  Status drove =
      drive_shards(exec, checkpoint, io::kCkptAtlasFile, fingerprint,
                   dataset.size(), plan, config.metrics, sup, process,
                   save_shard);
  if (!drove.ok()) {
    if (config.metrics) {
      obs::MetricsSink partial;
      for (AtlasShard& shard : shards) partial.merge(std::move(shard.metrics));
      partial.merge(std::move(ingest_sink));
      partial.merge(std::move(sup));
      config.metrics->merge(std::move(partial));
    }
    return drove.with_context("atlas study");
  }

  std::vector<std::uint64_t> shard_ns;
  if (config.metrics)
    for (AtlasShard& shard : shards)
      shard_ns.push_back(shard.metrics.phase("atlas.shard_wall").total_ns);

  AtlasShard& root = shards.front();
  {
    std::uint64_t t0 = config.metrics ? obs::now_ns() : 0;
    for (std::size_t s = 1; s < shards.size(); ++s)
      root.merge(std::move(shards[s]));
    std::uint64_t t1 = config.metrics ? obs::now_ns() : 0;
    root.finalize();
    if (config.metrics) {
      root.metrics.phase("atlas.merge").record(t1 - t0);
      root.metrics.phase("atlas.finalize").record(obs::now_ns() - t1);
    }
  }

  study.sanitize = root.sanitizer.stats();
  study.durations = to_std_map(root.durations.by_as());
  study.spatial = to_std_map(root.spatial.by_as());
  study.subscriber_inference = root.inference.take_subscriber();
  study.pool_inference = root.inference.take_pools();

  if (config.metrics) {
    study.sanitize.publish(root.metrics);
    root.metrics.gauge("atlas.shards").set(double(plan.ranges.size()));
    root.metrics.gauge("atlas.shard_imbalance").set(imbalance_ratio(shard_ns));
    root.metrics.merge(std::move(ingest_sink));
    root.metrics.merge(std::move(sup));
    config.metrics->merge(std::move(root.metrics));
  }
  return study;
}

Expected<CdnStudy> run_cdn_study_from_files(
    const std::vector<std::string>& paths, const CdnFileStudyConfig& config,
    io::IngestStats* ingest, const CheckpointConfig& checkpoint) {
  obs::MetricsSink ingest_sink;
  io::ReaderOptions ropts = config.reader;
  if (config.metrics && !ropts.metrics) ropts.metrics = &ingest_sink;

  std::vector<cdn::AssociationLog> dataset;
  const std::uint64_t load_start = config.metrics ? obs::now_ns() : 0;
  Status loaded = load_dataset_files(
      paths, ropts, ingest,
      [](std::istream& in, const io::ReaderOptions& r, io::IngestStats* st) {
        return io::read_assoc_dataset(in, r, st);
      },
      [](std::vector<cdn::AssociationLog>& into,
         std::vector<cdn::AssociationLog>&& more) {
        io::merge_assoc_datasets(into, std::move(more));
      },
      dataset);
  if (!loaded.ok()) return loaded.with_context("cdn study");
  if (config.metrics)
    ingest_sink.phase("cdn.ingest").record(obs::now_ns() - load_start);

  // The CSV schema carries no access-type or registry attribution; graft
  // the caller's ground truth onto the loaded logs.
  for (auto& log : dataset) {
    log.mobile = config.mobile_asns.count(log.asn) > 0;
    auto reg = config.registries.find(log.asn);
    log.registry =
        reg == config.registries.end() ? bgp::Registry::kRipe : reg->second;
  }

  CdnStudy study{CdnAnalyzer(config.assoc, config.mobile_asns),
                 config.asn_names};

  const std::uint64_t fingerprint = cdn_file_fingerprint(paths, config);

  ShardExecutor exec(config.threads);
  ShardPlan plan;
  Status planned = plan_shards(checkpoint, io::kCkptCdnFile, fingerprint,
                               dataset.size(), exec.thread_count(), plan);
  if (!planned.ok()) return planned.with_context("cdn study");

  std::vector<CdnShard> shards(plan.ranges.size(),
                               CdnShard(config.assoc, config.mobile_asns));
  obs::MetricsSink sup;
  Status restored =
      restore_shards(checkpoint, shards, sup, config.metrics);
  if (!restored.ok()) return restored.with_context("cdn study");

  auto process = [&](std::size_t s, std::size_t from, std::size_t to) {
    CdnShard& shard = shards[s];
    if (!config.metrics) {
      for (std::size_t i = from; i < to; ++i) shard.analyzer.add(dataset[i]);
      return;
    }
    obs::MetricsSink& m = shard.metrics;
    obs::Counter& c_logs = m.counter("cdn.logs_loaded");
    obs::Counter& c_tuples = m.counter("cdn.association_tuples");
    obs::Histogram& h_tuples = m.histogram("cdn.tuples_per_log", 0, 8, 5);
    obs::PhaseStats& p_add = m.phase("cdn.analyzer.add");
    const std::uint64_t shard_start = obs::now_ns();
    for (std::size_t i = from; i < to; ++i) {
      const cdn::AssociationLog& log = dataset[i];
      std::uint64_t t0 = obs::now_ns();
      c_logs.add(1);
      c_tuples.add(log.records.size());
      h_tuples.record(double(log.records.size()));
      shard.analyzer.add(log);
      p_add.record(obs::now_ns() - t0);
    }
    m.phase("cdn.shard_wall").record(obs::now_ns() - shard_start);
  };
  auto save_shard = [&](std::size_t s) {
    io::ckpt::Writer w;
    shards[s].save(w);
    return w.take();
  };

  Status drove =
      drive_shards(exec, checkpoint, io::kCkptCdnFile, fingerprint,
                   dataset.size(), plan, config.metrics, sup, process,
                   save_shard);
  if (!drove.ok()) {
    if (config.metrics) {
      obs::MetricsSink partial;
      for (CdnShard& shard : shards) partial.merge(std::move(shard.metrics));
      partial.merge(std::move(ingest_sink));
      partial.merge(std::move(sup));
      config.metrics->merge(std::move(partial));
    }
    return drove.with_context("cdn study");
  }

  std::vector<std::uint64_t> shard_ns;
  if (config.metrics)
    for (CdnShard& shard : shards)
      shard_ns.push_back(shard.metrics.phase("cdn.shard_wall").total_ns);

  {
    std::uint64_t t0 = config.metrics ? obs::now_ns() : 0;
    for (std::size_t s = 1; s < shards.size(); ++s)
      shards.front().merge(std::move(shards[s]));
    study.analyzer.merge(std::move(shards.front().analyzer));
    std::uint64_t t1 = config.metrics ? obs::now_ns() : 0;
    study.analyzer.finalize();
    if (config.metrics) {
      shards.front().metrics.phase("cdn.merge").record(t1 - t0);
      shards.front().metrics.phase("cdn.finalize").record(obs::now_ns() - t1);
    }
  }

  if (config.metrics) {
    obs::MetricsSink& m = shards.front().metrics;
    m.counter("cdn.tuples_kept").add(study.analyzer.total_tuples());
    m.counter("cdn.tuples_mismatched").add(study.analyzer.total_mismatched());
    m.gauge("cdn.shards").set(double(plan.ranges.size()));
    m.gauge("cdn.shard_imbalance").set(imbalance_ratio(shard_ns));
    m.merge(std::move(ingest_sink));
    m.merge(std::move(sup));
    config.metrics->merge(std::move(m));
  }
  return study;
}

}  // namespace dynamips::core
