#include "core/pipeline.h"

#include <utility>

namespace dynamips::core {

namespace {

/// One shard's private analyzer set for the Atlas study.
struct AtlasShard {
  Sanitizer sanitizer;
  DurationAnalyzer durations;
  SpatialAnalyzer spatial;
  InferenceCollector inference;

  AtlasShard(const bgp::Rib& rib, const AtlasStudyConfig& config)
      : sanitizer(rib, config.sanitize),
        durations(config.changes),
        spatial(rib) {}

  void merge(AtlasShard&& other) {
    sanitizer.merge(std::move(other.sanitizer));
    durations.merge(std::move(other.durations));
    spatial.merge(std::move(other.spatial));
    inference.merge(std::move(other.inference));
  }

  void finalize() {
    sanitizer.finalize();
    durations.finalize();
    spatial.finalize();
    inference.finalize();
  }
};

}  // namespace

AtlasStudy run_atlas_study(const std::vector<simnet::IspProfile>& isps,
                           const AtlasStudyConfig& config) {
  AtlasStudy study;
  simnet::announce_all(isps, study.rib);
  for (const auto& isp : isps) study.as_names[isp.asn] = isp.name;

  atlas::AtlasSimulator sim(isps, config.atlas);

  ShardExecutor exec(config.threads);
  auto ranges = shard_ranges(sim.probe_count(), exec.thread_count());
  std::vector<AtlasShard> shards;
  shards.reserve(ranges.size());
  for (std::size_t s = 0; s < ranges.size(); ++s)
    shards.emplace_back(study.rib, config);

  // Per-probe generation is a pure function of (config, isps, index), and
  // each shard writes only its own analyzer set, so shards race on nothing.
  exec.dispatch(ranges.size(), [&](std::size_t s) {
    AtlasShard& shard = shards[s];
    for (std::size_t i = ranges[s].begin; i < ranges[s].end; ++i) {
      ProbeObservations obs = from_series(sim.series_for(i));
      for (const CleanProbe& cp : shard.sanitizer.sanitize(obs)) {
        shard.durations.add(cp);
        shard.spatial.add(cp);
        shard.inference.add(cp);
      }
    }
  });

  // Ordered reduction: shard 0 absorbs the rest in index order, which keeps
  // every append-ordered vector in the exact order of the serial run.
  AtlasShard& root = shards.front();
  for (std::size_t s = 1; s < shards.size(); ++s)
    root.merge(std::move(shards[s]));
  root.finalize();

  study.sanitize = root.sanitizer.stats();
  study.durations = root.durations.by_as();
  study.spatial = root.spatial.by_as();
  study.subscriber_inference = root.inference.take_subscriber();
  study.pool_inference = root.inference.take_pools();
  return study;
}

CdnStudy run_cdn_study(const std::vector<cdn::PopulationEntry>& population,
                       const CdnStudyConfig& config) {
  cdn::CdnSimulator sim(population, config.cdn);
  CdnStudy study{CdnAnalyzer(config.assoc, sim.mobile_asns()), {}};
  for (const auto& entry : population)
    study.asn_names[entry.isp.asn] = entry.isp.name;

  ShardExecutor exec(config.threads);
  auto ranges = shard_ranges(sim.entry_count(), exec.thread_count());
  std::vector<CdnAnalyzer> shards(
      ranges.size(), CdnAnalyzer(config.assoc, sim.mobile_asns()));

  exec.dispatch(ranges.size(), [&](std::size_t s) {
    for (std::size_t i = ranges[s].begin; i < ranges[s].end; ++i)
      shards[s].add(sim.generate(i));
  });

  for (auto& shard : shards) study.analyzer.merge(std::move(shard));
  study.analyzer.finalize();
  return study;
}

}  // namespace dynamips::core
