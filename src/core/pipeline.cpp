#include "core/pipeline.h"

namespace dynamips::core {

AtlasStudy run_atlas_study(const std::vector<simnet::IspProfile>& isps,
                           const AtlasStudyConfig& config) {
  AtlasStudy study;
  simnet::announce_all(isps, study.rib);
  for (const auto& isp : isps) study.as_names[isp.asn] = isp.name;

  atlas::AtlasSimulator sim(isps, config.atlas);
  Sanitizer sanitizer(study.rib, config.sanitize);
  DurationAnalyzer durations(config.changes);
  SpatialAnalyzer spatial(study.rib);

  for (std::size_t i = 0; i < sim.probe_count(); ++i) {
    ProbeObservations obs = from_series(sim.series_for(i));
    for (const CleanProbe& cp : sanitizer.sanitize(obs)) {
      durations.add_probe(cp);
      spatial.add_probe(cp);
      if (auto inf = infer_subscriber_prefix(cp))
        study.subscriber_inference[cp.asn].push_back(*inf);
      if (auto pool = infer_pool(cp))
        study.pool_inference[cp.asn].push_back(*pool);
    }
  }
  study.sanitize = sanitizer.stats();
  study.durations = durations.by_as();
  study.spatial = spatial.by_as();
  return study;
}

CdnStudy run_cdn_study(const std::vector<cdn::PopulationEntry>& population,
                       const CdnStudyConfig& config) {
  cdn::CdnSimulator sim(population, config.cdn);
  CdnStudy study{CdnAnalyzer(config.assoc, sim.mobile_asns()), {}};
  for (const auto& entry : population)
    study.asn_names[entry.isp.asn] = entry.isp.name;
  for (std::size_t i = 0; i < sim.entry_count(); ++i)
    study.analyzer.add_log(sim.generate(i));
  return study;
}

}  // namespace dynamips::core
