#include "core/pipeline.h"

#include <cstdint>
#include <fstream>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace dynamips::core {

namespace {

/// One shard's private analyzer set for the Atlas study. The metrics sink
/// is part of the shard state and merges through the same ordered
/// reduction, so counter totals are independent of the thread count.
struct AtlasShard {
  Sanitizer sanitizer;
  DurationAnalyzer durations;
  SpatialAnalyzer spatial;
  InferenceCollector inference;
  obs::MetricsSink metrics;

  AtlasShard(const bgp::Rib& rib, const SanitizeOptions& sanitize,
             const ChangeOptions& changes)
      : sanitizer(rib, sanitize), durations(changes), spatial(rib) {}

  void merge(AtlasShard&& other) {
    sanitizer.merge(std::move(other.sanitizer));
    durations.merge(std::move(other.durations));
    spatial.merge(std::move(other.spatial));
    inference.merge(std::move(other.inference));
    metrics.merge(std::move(other.metrics));
  }

  void finalize() {
    sanitizer.finalize();
    durations.finalize();
    spatial.finalize();
    inference.finalize();
  }
};

/// Ratio of the slowest shard's wall time to the mean — 1.0 is perfectly
/// balanced. Recorded as a gauge so load skew across shards is visible.
double imbalance_ratio(const std::vector<std::uint64_t>& shard_ns) {
  if (shard_ns.empty()) return 1.0;
  std::uint64_t max = 0, sum = 0;
  for (std::uint64_t ns : shard_ns) {
    sum += ns;
    if (ns > max) max = ns;
  }
  double mean = double(sum) / double(shard_ns.size());
  return mean > 0 ? double(max) / mean : 1.0;
}

}  // namespace

AtlasStudy run_atlas_study(const std::vector<simnet::IspProfile>& isps,
                           const AtlasStudyConfig& config) {
  AtlasStudy study;
  simnet::announce_all(isps, study.rib);
  for (const auto& isp : isps) study.as_names[isp.asn] = isp.name;

  atlas::AtlasSimulator sim(isps, config.atlas);

  ShardExecutor exec(config.threads);
  auto ranges = shard_ranges(sim.probe_count(), exec.thread_count());
  std::vector<AtlasShard> shards;
  shards.reserve(ranges.size());
  for (std::size_t s = 0; s < ranges.size(); ++s)
    shards.emplace_back(study.rib, config.sanitize, config.changes);

  // Per-probe generation is a pure function of (config, isps, index), and
  // each shard writes only its own analyzer set, so shards race on nothing.
  exec.dispatch(ranges.size(), [&](std::size_t s) {
    AtlasShard& shard = shards[s];
    if (!config.metrics) {
      for (std::size_t i = ranges[s].begin; i < ranges[s].end; ++i) {
        ProbeObservations obs = from_series(sim.series_for(i));
        for (const CleanProbe& cp : shard.sanitizer.sanitize(obs)) {
          shard.durations.add(cp);
          shard.spatial.add(cp);
          shard.inference.add(cp);
        }
      }
      return;
    }
    // Instrumented variant of the loop above: identical analyzer calls,
    // plus shard-local counters and per-phase spans (no shared state).
    obs::MetricsSink& m = shard.metrics;
    obs::Counter& c_probes = m.counter("atlas.probes_generated");
    obs::Counter& c_records = m.counter("atlas.echo_records");
    obs::Counter& c_clean = m.counter("atlas.clean_probes");
    obs::Histogram& h_records = m.histogram("atlas.records_per_probe", 0, 6, 5);
    obs::PhaseStats& p_gen = m.phase("atlas.generate");
    obs::PhaseStats& p_san = m.phase("atlas.sanitize");
    obs::PhaseStats& p_dur = m.phase("atlas.durations.add");
    obs::PhaseStats& p_spa = m.phase("atlas.spatial.add");
    obs::PhaseStats& p_inf = m.phase("atlas.inference.add");
    const std::uint64_t shard_start = obs::now_ns();
    for (std::size_t i = ranges[s].begin; i < ranges[s].end; ++i) {
      std::uint64_t t0 = obs::now_ns();
      atlas::ProbeSeries series = sim.series_for(i);
      ProbeObservations obs = from_series(series);
      std::uint64_t t1 = obs::now_ns();
      p_gen.record(t1 - t0);
      c_probes.add(1);
      c_records.add(series.records.size());
      h_records.record(double(series.records.size()));
      auto cleaned = shard.sanitizer.sanitize(obs);
      std::uint64_t t2 = obs::now_ns();
      p_san.record(t2 - t1);
      c_clean.add(cleaned.size());
      for (const CleanProbe& cp : cleaned) {
        std::uint64_t a0 = obs::now_ns();
        shard.durations.add(cp);
        std::uint64_t a1 = obs::now_ns();
        shard.spatial.add(cp);
        std::uint64_t a2 = obs::now_ns();
        shard.inference.add(cp);
        std::uint64_t a3 = obs::now_ns();
        p_dur.record(a1 - a0);
        p_spa.record(a2 - a1);
        p_inf.record(a3 - a2);
      }
    }
    m.phase("atlas.shard_wall").record(obs::now_ns() - shard_start);
  });

  std::vector<std::uint64_t> shard_ns;
  if (config.metrics)
    for (AtlasShard& shard : shards)
      shard_ns.push_back(shard.metrics.phase("atlas.shard_wall").total_ns);

  // Ordered reduction: shard 0 absorbs the rest in index order, which keeps
  // every append-ordered vector in the exact order of the serial run.
  AtlasShard& root = shards.front();
  {
    std::uint64_t t0 = config.metrics ? obs::now_ns() : 0;
    for (std::size_t s = 1; s < shards.size(); ++s)
      root.merge(std::move(shards[s]));
    std::uint64_t t1 = config.metrics ? obs::now_ns() : 0;
    root.finalize();
    if (config.metrics) {
      root.metrics.phase("atlas.merge").record(t1 - t0);
      root.metrics.phase("atlas.finalize").record(obs::now_ns() - t1);
    }
  }

  study.sanitize = root.sanitizer.stats();
  study.durations = root.durations.by_as();
  study.spatial = root.spatial.by_as();
  study.subscriber_inference = root.inference.take_subscriber();
  study.pool_inference = root.inference.take_pools();

  if (config.metrics) {
    study.sanitize.publish(root.metrics);
    sim.publish_metrics(root.metrics);
    root.metrics.gauge("atlas.shards").set(double(ranges.size()));
    root.metrics.gauge("atlas.shard_imbalance").set(imbalance_ratio(shard_ns));
    config.metrics->merge(std::move(root.metrics));
  }
  return study;
}

CdnStudy run_cdn_study(const std::vector<cdn::PopulationEntry>& population,
                       const CdnStudyConfig& config) {
  cdn::CdnSimulator sim(population, config.cdn);
  CdnStudy study{CdnAnalyzer(config.assoc, sim.mobile_asns()), {}};
  for (const auto& entry : population)
    study.asn_names[entry.isp.asn] = entry.isp.name;

  ShardExecutor exec(config.threads);
  auto ranges = shard_ranges(sim.entry_count(), exec.thread_count());
  std::vector<CdnAnalyzer> shards(
      ranges.size(), CdnAnalyzer(config.assoc, sim.mobile_asns()));
  std::vector<obs::MetricsSink> sinks(ranges.size());

  exec.dispatch(ranges.size(), [&](std::size_t s) {
    if (!config.metrics) {
      for (std::size_t i = ranges[s].begin; i < ranges[s].end; ++i)
        shards[s].add(sim.generate(i));
      return;
    }
    obs::MetricsSink& m = sinks[s];
    obs::Counter& c_logs = m.counter("cdn.logs_generated");
    obs::Counter& c_tuples = m.counter("cdn.association_tuples");
    obs::Histogram& h_tuples = m.histogram("cdn.tuples_per_log", 0, 8, 5);
    obs::PhaseStats& p_gen = m.phase("cdn.generate");
    obs::PhaseStats& p_add = m.phase("cdn.analyzer.add");
    const std::uint64_t shard_start = obs::now_ns();
    for (std::size_t i = ranges[s].begin; i < ranges[s].end; ++i) {
      std::uint64_t t0 = obs::now_ns();
      cdn::AssociationLog log = sim.generate(i);
      std::uint64_t t1 = obs::now_ns();
      p_gen.record(t1 - t0);
      c_logs.add(1);
      c_tuples.add(log.records.size());
      h_tuples.record(double(log.records.size()));
      shards[s].add(log);
      p_add.record(obs::now_ns() - t1);
    }
    m.phase("cdn.shard_wall").record(obs::now_ns() - shard_start);
  });

  std::vector<std::uint64_t> shard_ns;
  if (config.metrics)
    for (obs::MetricsSink& sink : sinks)
      shard_ns.push_back(sink.phase("cdn.shard_wall").total_ns);

  {
    std::uint64_t t0 = config.metrics ? obs::now_ns() : 0;
    for (auto& shard : shards) study.analyzer.merge(std::move(shard));
    for (std::size_t s = 1; s < sinks.size(); ++s)
      sinks.front().merge(std::move(sinks[s]));
    std::uint64_t t1 = config.metrics ? obs::now_ns() : 0;
    study.analyzer.finalize();
    if (config.metrics) {
      sinks.front().phase("cdn.merge").record(t1 - t0);
      sinks.front().phase("cdn.finalize").record(obs::now_ns() - t1);
    }
  }

  if (config.metrics) {
    obs::MetricsSink& m = sinks.front();
    m.counter("cdn.tuples_kept").add(study.analyzer.total_tuples());
    m.counter("cdn.tuples_mismatched").add(study.analyzer.total_mismatched());
    sim.publish_metrics(m);
    m.gauge("cdn.shards").set(double(ranges.size()));
    m.gauge("cdn.shard_imbalance").set(imbalance_ratio(shard_ns));
    config.metrics->merge(std::move(m));
  }
  return study;
}

// ------------------------------------------------- file-driven entrypoints

namespace {

/// Open + stream one dataset file through the given loader, accumulating
/// into `dataset` (shared codepath of both from_files entrypoints).
template <typename Loader, typename Merger, typename Dataset>
Status load_dataset_files(const std::vector<std::string>& paths,
                          io::ReaderOptions reader, io::IngestStats* ingest,
                          Loader&& load, Merger&& merge_into,
                          Dataset& dataset) {
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
      return Status(StatusCode::kNotFound, "cannot open dataset: " + path);
    reader.source_label = path;
    auto part = load(in, reader, ingest);
    if (!part.ok()) {
      Status st = part.status();
      return st.with_context(path);
    }
    merge_into(dataset, part.take());
  }
  return Status::Ok();
}

}  // namespace

Expected<AtlasStudy> run_atlas_study_from_files(
    const std::vector<std::string>& paths,
    const std::vector<simnet::IspProfile>& isps,
    const AtlasFileStudyConfig& config, io::IngestStats* ingest) {
  AtlasStudy study;
  simnet::announce_all(isps, study.rib);
  for (const auto& isp : isps) study.as_names[isp.asn] = isp.name;

  // Ingest metrics land in a local sink merged into the registry at the
  // end, like every per-shard sink (no locks while loading).
  obs::MetricsSink ingest_sink;
  io::ReaderOptions ropts = config.reader;
  if (config.metrics && !ropts.metrics) ropts.metrics = &ingest_sink;

  std::vector<atlas::ProbeSeries> dataset;
  const std::uint64_t load_start = config.metrics ? obs::now_ns() : 0;
  Status loaded = load_dataset_files(
      paths, ropts, ingest,
      [](std::istream& in, const io::ReaderOptions& r, io::IngestStats* st) {
        return io::read_echo_dataset(in, r, st);
      },
      [](std::vector<atlas::ProbeSeries>& into,
         std::vector<atlas::ProbeSeries>&& more) {
        io::merge_echo_datasets(into, std::move(more));
      },
      dataset);
  if (!loaded.ok()) return loaded.with_context("atlas study");
  if (config.metrics)
    ingest_sink.phase("atlas.ingest").record(obs::now_ns() - load_start);

  ShardExecutor exec(config.threads);
  auto ranges = shard_ranges(dataset.size(), exec.thread_count());
  std::vector<AtlasShard> shards;
  shards.reserve(ranges.size());
  for (std::size_t s = 0; s < ranges.size(); ++s)
    shards.emplace_back(study.rib, config.sanitize, config.changes);

  Status ran = exec.try_dispatch(ranges.size(), [&](std::size_t s) {
    AtlasShard& shard = shards[s];
    if (!config.metrics) {
      for (std::size_t i = ranges[s].begin; i < ranges[s].end; ++i) {
        ProbeObservations obs = from_series(dataset[i]);
        for (const CleanProbe& cp : shard.sanitizer.sanitize(obs)) {
          shard.durations.add(cp);
          shard.spatial.add(cp);
          shard.inference.add(cp);
        }
      }
      return;
    }
    obs::MetricsSink& m = shard.metrics;
    obs::Counter& c_probes = m.counter("atlas.probes_loaded");
    obs::Counter& c_records = m.counter("atlas.echo_records");
    obs::Counter& c_clean = m.counter("atlas.clean_probes");
    obs::Histogram& h_records = m.histogram("atlas.records_per_probe", 0, 6, 5);
    obs::PhaseStats& p_san = m.phase("atlas.sanitize");
    obs::PhaseStats& p_dur = m.phase("atlas.durations.add");
    obs::PhaseStats& p_spa = m.phase("atlas.spatial.add");
    obs::PhaseStats& p_inf = m.phase("atlas.inference.add");
    const std::uint64_t shard_start = obs::now_ns();
    for (std::size_t i = ranges[s].begin; i < ranges[s].end; ++i) {
      const atlas::ProbeSeries& series = dataset[i];
      ProbeObservations obs = from_series(series);
      std::uint64_t t1 = obs::now_ns();
      c_probes.add(1);
      c_records.add(series.records.size());
      h_records.record(double(series.records.size()));
      auto cleaned = shard.sanitizer.sanitize(obs);
      std::uint64_t t2 = obs::now_ns();
      p_san.record(t2 - t1);
      c_clean.add(cleaned.size());
      for (const CleanProbe& cp : cleaned) {
        std::uint64_t a0 = obs::now_ns();
        shard.durations.add(cp);
        std::uint64_t a1 = obs::now_ns();
        shard.spatial.add(cp);
        std::uint64_t a2 = obs::now_ns();
        shard.inference.add(cp);
        std::uint64_t a3 = obs::now_ns();
        p_dur.record(a1 - a0);
        p_spa.record(a2 - a1);
        p_inf.record(a3 - a2);
      }
    }
    m.phase("atlas.shard_wall").record(obs::now_ns() - shard_start);
  });
  if (!ran.ok()) return ran.with_context("atlas study");

  std::vector<std::uint64_t> shard_ns;
  if (config.metrics)
    for (AtlasShard& shard : shards)
      shard_ns.push_back(shard.metrics.phase("atlas.shard_wall").total_ns);

  AtlasShard& root = shards.front();
  {
    std::uint64_t t0 = config.metrics ? obs::now_ns() : 0;
    for (std::size_t s = 1; s < shards.size(); ++s)
      root.merge(std::move(shards[s]));
    std::uint64_t t1 = config.metrics ? obs::now_ns() : 0;
    root.finalize();
    if (config.metrics) {
      root.metrics.phase("atlas.merge").record(t1 - t0);
      root.metrics.phase("atlas.finalize").record(obs::now_ns() - t1);
    }
  }

  study.sanitize = root.sanitizer.stats();
  study.durations = root.durations.by_as();
  study.spatial = root.spatial.by_as();
  study.subscriber_inference = root.inference.take_subscriber();
  study.pool_inference = root.inference.take_pools();

  if (config.metrics) {
    study.sanitize.publish(root.metrics);
    root.metrics.gauge("atlas.shards").set(double(ranges.size()));
    root.metrics.gauge("atlas.shard_imbalance").set(imbalance_ratio(shard_ns));
    root.metrics.merge(std::move(ingest_sink));
    config.metrics->merge(std::move(root.metrics));
  }
  return study;
}

Expected<CdnStudy> run_cdn_study_from_files(
    const std::vector<std::string>& paths, const CdnFileStudyConfig& config,
    io::IngestStats* ingest) {
  obs::MetricsSink ingest_sink;
  io::ReaderOptions ropts = config.reader;
  if (config.metrics && !ropts.metrics) ropts.metrics = &ingest_sink;

  std::vector<cdn::AssociationLog> dataset;
  const std::uint64_t load_start = config.metrics ? obs::now_ns() : 0;
  Status loaded = load_dataset_files(
      paths, ropts, ingest,
      [](std::istream& in, const io::ReaderOptions& r, io::IngestStats* st) {
        return io::read_assoc_dataset(in, r, st);
      },
      [](std::vector<cdn::AssociationLog>& into,
         std::vector<cdn::AssociationLog>&& more) {
        io::merge_assoc_datasets(into, std::move(more));
      },
      dataset);
  if (!loaded.ok()) return loaded.with_context("cdn study");
  if (config.metrics)
    ingest_sink.phase("cdn.ingest").record(obs::now_ns() - load_start);

  // The CSV schema carries no access-type or registry attribution; graft
  // the caller's ground truth onto the loaded logs.
  for (auto& log : dataset) {
    log.mobile = config.mobile_asns.count(log.asn) > 0;
    auto reg = config.registries.find(log.asn);
    log.registry =
        reg == config.registries.end() ? bgp::Registry::kRipe : reg->second;
  }

  CdnStudy study{CdnAnalyzer(config.assoc, config.mobile_asns),
                 config.asn_names};

  ShardExecutor exec(config.threads);
  auto ranges = shard_ranges(dataset.size(), exec.thread_count());
  std::vector<CdnAnalyzer> shards(
      ranges.size(), CdnAnalyzer(config.assoc, config.mobile_asns));
  std::vector<obs::MetricsSink> sinks(ranges.size());

  Status ran = exec.try_dispatch(ranges.size(), [&](std::size_t s) {
    if (!config.metrics) {
      for (std::size_t i = ranges[s].begin; i < ranges[s].end; ++i)
        shards[s].add(dataset[i]);
      return;
    }
    obs::MetricsSink& m = sinks[s];
    obs::Counter& c_logs = m.counter("cdn.logs_loaded");
    obs::Counter& c_tuples = m.counter("cdn.association_tuples");
    obs::Histogram& h_tuples = m.histogram("cdn.tuples_per_log", 0, 8, 5);
    obs::PhaseStats& p_add = m.phase("cdn.analyzer.add");
    const std::uint64_t shard_start = obs::now_ns();
    for (std::size_t i = ranges[s].begin; i < ranges[s].end; ++i) {
      const cdn::AssociationLog& log = dataset[i];
      std::uint64_t t0 = obs::now_ns();
      c_logs.add(1);
      c_tuples.add(log.records.size());
      h_tuples.record(double(log.records.size()));
      shards[s].add(log);
      p_add.record(obs::now_ns() - t0);
    }
    m.phase("cdn.shard_wall").record(obs::now_ns() - shard_start);
  });
  if (!ran.ok()) return ran.with_context("cdn study");

  std::vector<std::uint64_t> shard_ns;
  if (config.metrics)
    for (obs::MetricsSink& sink : sinks)
      shard_ns.push_back(sink.phase("cdn.shard_wall").total_ns);

  {
    std::uint64_t t0 = config.metrics ? obs::now_ns() : 0;
    for (auto& shard : shards) study.analyzer.merge(std::move(shard));
    for (std::size_t s = 1; s < sinks.size(); ++s)
      sinks.front().merge(std::move(sinks[s]));
    std::uint64_t t1 = config.metrics ? obs::now_ns() : 0;
    study.analyzer.finalize();
    if (config.metrics) {
      sinks.front().phase("cdn.merge").record(t1 - t0);
      sinks.front().phase("cdn.finalize").record(obs::now_ns() - t1);
    }
  }

  if (config.metrics) {
    obs::MetricsSink& m = sinks.empty() ? ingest_sink : sinks.front();
    m.counter("cdn.tuples_kept").add(study.analyzer.total_tuples());
    m.counter("cdn.tuples_mismatched").add(study.analyzer.total_mismatched());
    m.gauge("cdn.shards").set(double(ranges.size()));
    m.gauge("cdn.shard_imbalance").set(imbalance_ratio(shard_ns));
    if (!sinks.empty()) m.merge(std::move(ingest_sink));
    config.metrics->merge(std::move(m));
  }
  return study;
}

}  // namespace dynamips::core
