// anonymize.h — data-driven IPv6 dataset anonymization (§6).
//
// Fixed-length truncation (e.g. masking to /48) fails where ISPs delegate
// /48s to single subscribers; the paper argues anonymization must use
// per-network knowledge of subscriber and pool boundaries. This module
// derives a per-AS truncation policy from a completed study (truncate to
// the dynamic-pool boundary, which aggregates many subscribers), applies
// it, and audits any policy's k-anonymity against a set of known
// subscriber /64s.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "bgp/rib.h"
#include "core/pipeline.h"
#include "netaddr/ipv6.h"
#include "netaddr/prefix.h"
#include "stats/flatmap.h"

namespace dynamips::core {

/// Per-AS truncation lengths, with a conservative default for unknown ASes.
struct AnonymizationPolicy {
  stats::FlatMap<bgp::Asn, int> truncation_len;
  int default_len = 32;

  int length_for(bgp::Asn asn) const {
    auto it = truncation_len.find(asn);
    return it == truncation_len.end() ? default_len : it->second;
  }
};

/// Derive a policy from an Atlas study: for each AS, truncate to the modal
/// inferred pool boundary, and never to anything longer than `margin` bits
/// short of the modal subscriber delegation (so one stored prefix always
/// spans many subscribers).
AnonymizationPolicy derive_policy(const AtlasStudy& study, int margin = 8);

/// Apply a policy: truncate `addr` at the policy length of its origin AS.
net::Prefix6 anonymize(const net::IPv6Address& addr,
                       const AnonymizationPolicy& policy,
                       const bgp::Rib& rib);

/// k-anonymity audit result for one truncation length.
struct KAnonymityResult {
  int truncation_len = 0;
  std::uint64_t buckets = 0;          ///< distinct truncated prefixes
  std::uint64_t min_bucket = 0;       ///< subscribers in the smallest bucket
  double median_bucket = 0;
  std::uint64_t singleton_buckets = 0;  ///< buckets identifying one subscriber

  /// The policy achieves k-anonymity at level k iff min_bucket >= k.
  bool satisfies(std::uint64_t k) const { return min_bucket >= k; }
};

/// Audit: given each subscriber's /64 network component, how well does
/// truncating to `len` hide individuals? Subscribers with multiple /64s may
/// appear in several buckets; each (bucket, subscriber) pair counts once.
KAnonymityResult audit_k_anonymity(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>&
        subscriber_net64s,
    int len);

}  // namespace dynamips::core
