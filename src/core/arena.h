// arena.h — a monotonic bump arena for per-shard scratch vectors.
//
// The pipeline add-loops build short-lived working vectors for every record
// batch (the sanitizer's merged/tagged observation list, the CDN analyzer's
// flattened tuple and pair tables). With the default allocator each call
// pays a malloc/free round trip per vector; with an arena the shard reuses
// one contiguous slab: reset() at the top of each call rewinds the bump
// pointer and the vectors land in already-hot memory.
//
// Usage pattern (single-threaded per shard, like all analyzer state):
//
//   arena_.reset();
//   ArenaVector<Tuple> tuples{ArenaAllocator<Tuple>(arena_)};
//   tuples.reserve(n);
//
// reset() keeps the largest block, so steady state does no allocation at
// all. Deallocation is a no-op; memory is reclaimed only by reset() or
// destruction, which is exactly right for scratch and wrong for anything
// that outlives the call — never store arena-backed containers in merged
// or checkpointed state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dynamips::core {

class MonotonicArena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = std::size_t(1) << 16;

  explicit MonotonicArena(std::size_t first_block_bytes = kDefaultBlockBytes)
      : first_block_bytes_(first_block_bytes ? first_block_bytes
                                             : kDefaultBlockBytes) {}

  // Arenas are per-shard scratch: copying an analyzer copies its
  // configuration, not its working memory, so copies start empty.
  MonotonicArena(const MonotonicArena& other)
      : first_block_bytes_(other.first_block_bytes_) {}
  MonotonicArena& operator=(const MonotonicArena&) { return *this; }
  MonotonicArena(MonotonicArena&&) = default;
  MonotonicArena& operator=(MonotonicArena&&) = default;

  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    for (;;) {
      if (cur_ < blocks_.size()) {
        Block& b = blocks_[cur_];
        std::uintptr_t base = reinterpret_cast<std::uintptr_t>(b.data.get());
        std::uintptr_t aligned =
            (base + offset_ + align - 1) & ~(std::uintptr_t(align) - 1);
        std::size_t off = std::size_t(aligned - base);
        if (off + bytes <= b.size) {
          offset_ = off + bytes;
          return b.data.get() + off;
        }
        ++cur_;
        offset_ = 0;
        continue;
      }
      std::size_t want = blocks_.empty() ? first_block_bytes_
                                         : blocks_.back().size * 2;
      if (want < bytes + align) want = bytes + align;
      blocks_.push_back({std::make_unique<std::byte[]>(want), want});
    }
  }

  /// Rewind the bump pointer, keeping only the largest block so repeated
  /// same-shaped calls stabilize into a single allocation-free slab.
  void reset() {
    if (blocks_.size() > 1) {
      std::size_t largest = 0;
      for (std::size_t i = 1; i < blocks_.size(); ++i)
        if (blocks_[i].size > blocks_[largest].size) largest = i;
      Block keep = std::move(blocks_[largest]);
      blocks_.clear();
      blocks_.push_back(std::move(keep));
    }
    cur_ = 0;
    offset_ = 0;
  }

  /// Total bytes owned across blocks (tests / diagnostics).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::size_t first_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t cur_ = 0;
  std::size_t offset_ = 0;
};

/// Minimal std allocator over a MonotonicArena. deallocate is a no-op;
/// reclamation happens at MonotonicArena::reset().
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(MonotonicArena& arena) : arena_(&arena) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}

  MonotonicArena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }

 private:
  MonotonicArena* arena_;
};

template <class T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace dynamips::core
