#include "core/durations.h"

namespace dynamips::core {

bool DurationAnalyzer::is_dual_stack(const CleanProbe& probe) {
  if (probe.v6.empty()) return false;
  if (probe.v4.empty()) return true;
  return double(probe.v6.size()) >=
         kDualStackCoverage * double(probe.v4.size());
}

void DurationAnalyzer::merge(DurationAnalyzer&& other) {
  for (auto& [asn, stats] : other.by_as_) {
    auto [it, inserted] = by_as_.try_emplace(asn, std::move(stats));
    if (!inserted) it->second.merge(stats);
  }
}

void DurationAnalyzer::add_probe(const CleanProbe& probe) {
  AsDurationStats& as = by_as_[probe.asn];
  as.asn = probe.asn;
  ++as.probes;
  bool ds = is_dual_stack(probe);
  if (ds) ++as.ds_probes;

  auto spans4 = extract_spans4(probe.v4);
  auto spans6 = extract_spans6(probe.v6);
  auto changes4 = extract_changes4(spans4);
  auto changes6 = extract_changes6(spans6);
  if (!changes4.empty() || !changes6.empty()) ++as.probes_with_change;

  as.v4_changes += changes4.size();
  if (ds) as.v4_changes_ds += changes4.size();
  as.v6_changes += changes6.size();

  stats::TotalTimeFraction& v4_bucket = ds ? as.v4_ds : as.v4_nds;
  for (Hour d : sandwiched_durations4(spans4, options_)) v4_bucket.add(d);
  for (Hour d : sandwiched_durations6(spans6, options_)) as.v6.add(d);

  if (ds && !changes4.empty()) {
    as.cooccur_total += changes4.size();
    std::size_t j = 0;
    for (const auto& c4 : changes4) {
      while (j < changes6.size() && changes6[j].at + 1 < c4.at) ++j;
      if (j < changes6.size() && changes6[j].at <= c4.at + 1)
        ++as.cooccur_hits;
    }
  }
}

}  // namespace dynamips::core
