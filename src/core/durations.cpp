#include "core/durations.h"

#include "io/checkpoint.h"

namespace dynamips::core {

void AsDurationStats::save(io::ckpt::Writer& w) const {
  w.u32(asn);
  v4_nds.save(w);
  v4_ds.save(w);
  v6.save(w);
  w.u64(probes);
  w.u64(ds_probes);
  w.u64(probes_with_change);
  w.u64(v4_changes);
  w.u64(v4_changes_ds);
  w.u64(v6_changes);
  w.u64(cooccur_hits);
  w.u64(cooccur_total);
}

bool AsDurationStats::load(io::ckpt::Reader& r) {
  asn = r.u32();
  if (!v4_nds.load(r) || !v4_ds.load(r) || !v6.load(r)) return false;
  probes = r.u64();
  ds_probes = r.u64();
  probes_with_change = r.u64();
  v4_changes = r.u64();
  v4_changes_ds = r.u64();
  v6_changes = r.u64();
  cooccur_hits = r.u64();
  cooccur_total = r.u64();
  return r.ok();
}

void DurationAnalyzer::save(io::ckpt::Writer& w) const {
  w.u64(by_as_.size());
  for (const auto& [asn, stats] : by_as_) {
    w.u32(asn);
    stats.save(w);
  }
}

bool DurationAnalyzer::load(io::ckpt::Reader& r) {
  by_as_.clear();
  std::uint64_t n = r.size();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    bgp::Asn asn = r.u32();
    if (!by_as_[asn].load(r)) return false;
  }
  return r.ok();
}

bool DurationAnalyzer::is_dual_stack(const CleanProbe& probe) {
  if (probe.v6.empty()) return false;
  if (probe.v4.empty()) return true;
  return double(probe.v6.size()) >=
         kDualStackCoverage * double(probe.v4.size());
}

void DurationAnalyzer::merge(DurationAnalyzer&& other) {
  for (auto& [asn, stats] : other.by_as_) {
    auto [it, inserted] = by_as_.try_emplace(asn, std::move(stats));
    if (!inserted) it->second.merge(stats);
  }
}

void DurationAnalyzer::add_probe(const CleanProbe& probe) {
  AsDurationStats& as = by_as_[probe.asn];
  as.asn = probe.asn;
  ++as.probes;
  bool ds = is_dual_stack(probe);
  if (ds) ++as.ds_probes;

  auto spans4 = extract_spans4(probe.v4);
  auto spans6 = extract_spans6(probe.v6);
  auto changes4 = extract_changes4(spans4);
  auto changes6 = extract_changes6(spans6);
  if (!changes4.empty() || !changes6.empty()) ++as.probes_with_change;

  as.v4_changes += changes4.size();
  if (ds) as.v4_changes_ds += changes4.size();
  as.v6_changes += changes6.size();

  stats::TotalTimeFraction& v4_bucket = ds ? as.v4_ds : as.v4_nds;
  for (Hour d : sandwiched_durations4(spans4, options_)) v4_bucket.add(d);
  for (Hour d : sandwiched_durations6(spans6, options_)) as.v6.add(d);

  if (ds && !changes4.empty()) {
    as.cooccur_total += changes4.size();
    std::size_t j = 0;
    for (const auto& c4 : changes4) {
      while (j < changes6.size() && changes6[j].at + 1 < c4.at) ++j;
      if (j < changes6.size() && changes6[j].at <= c4.at + 1)
        ++as.cooccur_hits;
    }
  }
}

}  // namespace dynamips::core
