// parallel.h — shard-and-merge execution for the study pipeline.
//
// The paper's aggregate analyses are shard-and-merge by construction: every
// analyzer consumes independent per-probe (or per-log) units and reduces
// them into mergeable accumulators. This header provides the two pieces the
// pipeline needs to exploit that:
//
//  * a sink concept (`MergeableAnalyzer` / `SinkOf`) every analyzer
//    implements: add(item), merge(other&&), finalize(). The observability
//    layer's per-shard buffer (obs::MetricsSink) satisfies the same
//    concept and rides the same ordered reduction, which is why enabling
//    metrics adds no locks to the hot path and keeps counter totals
//    identical for every thread count;
//  * a `ShardExecutor` — a fixed thread pool (no work stealing) that runs
//    one task per contiguous index range. Each shard owns a private analyzer
//    set, and the caller reduces the shards in index order afterwards, so
//    results are byte-identical to the serial run regardless of thread
//    count or scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/status.h"

namespace dynamips::core {

/// An analyzer whose state can be combined with another instance's and
/// sealed once ingestion is done. merge() takes an rvalue: the argument is
/// consumed (its vectors may be spliced out) and must not be reused.
template <typename A>
concept MergeableAnalyzer = requires(A a, A other) {
  a.merge(std::move(other));
  a.finalize();
};

/// A mergeable analyzer that ingests items of a particular type.
template <typename A, typename Item>
concept SinkOf = MergeableAnalyzer<A> && requires(A a, const Item& item) {
  a.add(item);
};

/// A mergeable analyzer whose finalized results can be read out without
/// consuming the accumulator: snapshot() returns a self-contained value
/// (sorted, inferred, CSV-emittable) and the analyzer keeps accepting
/// add()/merge() afterwards. Two consecutive snapshots with no adds in
/// between are equal, and a snapshot after batches B1..Bk equals a one-shot
/// finalize over their concatenation — the contract the streaming pipeline
/// re-finalizes on.
template <typename A>
concept SnapshotAnalyzer = MergeableAnalyzer<A> && requires(const A a) {
  a.snapshot();
};

/// One contiguous slice of the work-item index space.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

/// Resolve a `threads` knob: 0 means "use all hardware threads".
inline unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

/// Partition [0, count) into at most `shards` contiguous, near-equal
/// ranges (never more ranges than items; a single empty range for count 0).
/// Contiguity is what keeps sharded output identical to the serial run:
/// concatenating per-shard append-order vectors in shard order reproduces
/// the serial append order exactly.
inline std::vector<ShardRange> shard_ranges(std::size_t count,
                                            unsigned shards) {
  std::size_t n = shards ? shards : 1;
  if (n > count) n = count ? count : 1;
  std::vector<ShardRange> out;
  out.reserve(n);
  std::size_t base = count / n, extra = count % n, begin = 0;
  for (std::size_t s = 0; s < n; ++s) {
    std::size_t len = base + (s < extra ? 1 : 0);
    out.push_back({begin, begin + len});
    begin += len;
  }
  return out;
}

/// Fixed-size thread pool dispatching indexed tasks. Deliberately
/// work-stealing-free: tasks are claimed from a single counter, one at a
/// time, and the pool makes no ordering promises — determinism comes from
/// per-shard state plus the caller's ordered reduction, not from
/// scheduling. With `threads == 1` no worker threads exist and dispatch()
/// runs inline on the caller, reproducing the serial path exactly (and
/// making `threads = 1` safe for analyzers that are not thread-safe).
class ShardExecutor {
 public:
  /// `threads == 0` resolves to std::thread::hardware_concurrency().
  explicit ShardExecutor(unsigned threads = 0)
      : threads_(resolve_threads(threads)) {
    workers_.reserve(threads_ - 1);
    for (unsigned t = 0; t + 1 < threads_; ++t)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  ~ShardExecutor() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  unsigned thread_count() const { return threads_; }

  /// Run task(0) .. task(n_tasks - 1) across the pool; the calling thread
  /// participates. Returns once every task finished. The first exception
  /// thrown by any task is rethrown here (remaining tasks still run).
  void dispatch(std::size_t n_tasks,
                const std::function<void(std::size_t)>& task) {
    if (n_tasks == 0) return;
    if (workers_.empty() || n_tasks == 1) {
      // Same drain-then-rethrow contract as the pooled path: a throwing
      // task never leaves later shards unexecuted.
      std::exception_ptr first;
      for (std::size_t i = 0; i < n_tasks; ++i) {
        try {
          task(i);
        } catch (...) {
          if (!first) first = std::current_exception();
        }
      }
      if (first) std::rethrow_exception(first);
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      job_ = &task;
      next_ = 0;
      end_ = n_tasks;
      pending_ = n_tasks;
      error_ = nullptr;
      ++generation_;
    }
    work_cv_.notify_all();
    run_tasks();
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return pending_ == 0; });
    job_ = nullptr;
    if (error_) std::rethrow_exception(error_);
  }

  /// Exception-safe dispatch: a throwing shard task is captured on its
  /// worker (never reaching std::terminate), the remaining work is still
  /// drained, and the first failure comes back as a Status instead of an
  /// exception — the error-propagation contract of the file-driven study
  /// entrypoints.
  Status try_dispatch(std::size_t n_tasks,
                      const std::function<void(std::size_t)>& task) {
    try {
      dispatch(n_tasks, task);
    } catch (const std::exception& e) {
      return Status(StatusCode::kInternal,
                    std::string("shard task failed: ") + e.what());
    } catch (...) {
      return Status(StatusCode::kInternal,
                    "shard task failed with a non-standard exception");
    }
    return Status::Ok();
  }

 private:
  // Claim-and-run loop shared by the caller and the workers. A claimed
  // index keeps pending_ > 0 until it completes, so `job_` (which points
  // into dispatch()'s frame) stays alive for every claimed task.
  void run_tasks() {
    while (true) {
      std::size_t idx;
      const std::function<void(std::size_t)>* job;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (next_ >= end_) return;
        idx = next_++;
        job = job_;
      }
      try {
        (*job)(idx);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!error_) error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      run_tasks();
    }
  }

  unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t next_ = 0;
  std::size_t end_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace dynamips::core
