// status.h — lightweight error propagation for fallible APIs.
//
// The ingestion and file-driven study paths run on real exported data and
// must degrade predictably: no exception crosses a module boundary, no
// std::terminate on a worker thread. Fallible functions return a `Status`
// (or an `Expected<T>` when they produce a value); the error carries a
// coarse code plus a human-readable message that accumulates context as it
// bubbles up ("load echo dataset: budget exceeded: ...").
//
// Deliberately minimal — no payloads, no stack traces, no allocation on the
// OK path (an OK Status is two words).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace dynamips::core {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,     ///< malformed input the caller controls
  kNotFound,            ///< missing file / entity
  kDataLoss,            ///< input corruption beyond the configured budget
  kResourceExhausted,   ///< a cap or budget was hit
  kFailedPrecondition,  ///< API misuse / wrong state
  kInternal,            ///< captured exception, broken invariant
  kCancelled,           ///< cooperative shutdown (signal / deadline)
};

constexpr const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

class Status {
 public:
  /// OK by default.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Prefix the message with a context label; returns *this for chaining:
  ///   return st.with_context("load " + path);
  Status& with_context(std::string_view context) {
    if (!ok()) {
      std::string prefixed(context);
      prefixed += ": ";
      prefixed += message_;
      message_ = std::move(prefixed);
    }
    return *this;
  }

  /// "DATA_LOSS: 12 of 100 lines rejected ..." (or "OK").
  std::string to_string() const {
    if (ok()) return "OK";
    std::string out = status_code_name(code_);
    out += ": ";
    out += message_;
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or the Status explaining why there is none. Accessing value() on
/// an error is a programming bug (asserted); check ok() first.
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}                // NOLINT
  Expected(Status status) : status_(std::move(status)) {         // NOLINT
    assert(!status_.ok() && "Expected built from an OK Status has no value");
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// OK when a value is present.
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Move the value out (consumes the Expected).
  T take() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace dynamips::core
