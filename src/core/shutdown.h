// shutdown.h — cooperative cancellation for long study runs.
//
// A `ShutdownToken` is a flag the supervised pipeline polls at round
// boundaries (core/pipeline.h). request() is async-signal-safe — a single
// relaxed atomic store — so the CLI tools wire it straight into their
// SIGINT/SIGTERM handlers: a signal makes the pipeline finish the round in
// flight, write a final checkpoint plus partial metrics, and return
// StatusCode::kCancelled instead of dying mid-write. arm_deadline_seconds()
// is the soft watchdog behind `--deadline-seconds`: once the deadline
// passes, requested() reports true through the exact same path.
#pragma once

#include <atomic>
#include <cstdint>

namespace dynamips::core {

class ShutdownToken {
 public:
  /// Ask the pipeline to stop at the next round boundary. Safe to call
  /// from a signal handler or any thread.
  void request() noexcept { requested_.store(true, std::memory_order_relaxed); }

  /// Whether a stop was requested or the armed deadline has passed.
  bool requested() const noexcept;

  /// Soft watchdog: requested() starts returning true `seconds` from now.
  /// Non-positive values disarm.
  void arm_deadline_seconds(double seconds) noexcept;

  /// Reset flag and deadline (tests; tools running several studies).
  void clear() noexcept {
    requested_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> requested_{false};
  std::atomic<std::uint64_t> deadline_ns_{0};  // steady-clock ns; 0 = none
};

/// The process-wide token the signal handlers trip.
ShutdownToken& global_shutdown_token();

/// Install SIGINT/SIGTERM handlers that request() the global token.
/// Idempotent; call once at tool startup, before starting studies.
void install_shutdown_handlers();

/// Sleep for `ms`, waking early when `token` (optional) reports a stop.
/// EINTR-hardened: under supervision, signals arrive routinely, and a
/// plain sleep cut short by SIGCHLD/SIGTERM must neither oversleep nor
/// surface a spurious error — the remainder is re-slept in short slices
/// between token polls.
void interruptible_sleep_ms(std::uint64_t ms,
                            const ShutdownToken* token = nullptr);

}  // namespace dynamips::core
