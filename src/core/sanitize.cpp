#include "core/sanitize.h"

#include <algorithm>
#include <utility>

#include "io/checkpoint.h"

namespace dynamips::core {

ProbeObservations from_series(const atlas::ProbeSeries& series) {
  ProbeObservations out;
  out.probe_id = series.meta.probe_id;
  out.tags = series.meta.tags;
  for (const auto& r : series.records) {
    if (r.family == atlas::Family::kV4) {
      out.v4.push_back(
          {r.hour, r.x_client_ip4,
           !r.src_addr4.is_rfc1918() && !r.src_addr4.is_rfc6598()});
    } else {
      out.v6.push_back({r.hour, r.x_client_ip6,
                        r.src_addr6 == r.x_client_ip6});
    }
  }
  return out;
}

void SanitizeStats::publish(obs::MetricsSink& sink) const {
  sink.counter("sanitize.probes_seen").add(probes_seen);
  sink.counter("sanitize.probes_kept").add(probes_kept);
  sink.counter("sanitize.virtual_probes").add(virtual_probes);
  sink.counter("sanitize.split_probes").add(split_probes);
  sink.counter("sanitize.dropped_short").add(dropped_short);
  sink.counter("sanitize.dropped_bad_tag").add(dropped_bad_tag);
  sink.counter("sanitize.dropped_public_src").add(dropped_public_src);
  sink.counter("sanitize.dropped_v6_mismatch").add(dropped_v6_mismatch);
  sink.counter("sanitize.dropped_multihomed").add(dropped_multihomed);
  sink.counter("sanitize.test_address_records").add(test_address_records);
}

void SanitizeStats::save(io::ckpt::Writer& w) const {
  w.u64(probes_seen);
  w.u64(probes_kept);
  w.u64(virtual_probes);
  w.u64(split_probes);
  w.u64(dropped_short);
  w.u64(dropped_bad_tag);
  w.u64(dropped_public_src);
  w.u64(dropped_v6_mismatch);
  w.u64(dropped_multihomed);
  w.u64(test_address_records);
}

bool SanitizeStats::load(io::ckpt::Reader& r) {
  probes_seen = r.u64();
  probes_kept = r.u64();
  virtual_probes = r.u64();
  split_probes = r.u64();
  dropped_short = r.u64();
  dropped_bad_tag = r.u64();
  dropped_public_src = r.u64();
  dropped_v6_mismatch = r.u64();
  dropped_multihomed = r.u64();
  test_address_records = r.u64();
  return r.ok();
}

void Sanitizer::save(io::ckpt::Writer& w) const { stats_.save(w); }

bool Sanitizer::load(io::ckpt::Reader& r) { return stats_.load(r); }

Sanitizer::Sanitizer(const bgp::Rib& rib, SanitizeOptions options)
    : rib_(rib), options_(std::move(options)) {
  bad_tag_ids_.reserve(options_.bad_tags.size());
  for (const std::string& bad : options_.bad_tags)
    bad_tag_ids_.push_back(tag_pool().intern(bad));
  std::sort(bad_tag_ids_.begin(), bad_tag_ids_.end());
}

std::vector<CleanProbe> Sanitizer::sanitize(const ProbeObservations& probe) {
  ++stats_.probes_seen;

  // 1. Disqualifying tags (interned: integer membership test).
  for (TagId tag : probe.tags) {
    if (std::binary_search(bad_tag_ids_.begin(), bad_tag_ids_.end(), tag)) {
      ++stats_.dropped_bad_tag;
      return {};
    }
  }

  // All intermediate vectors live in the shard's bump arena: steady state
  // does no heap allocation per probe.
  arena_.reset();

  // 2. Strip the RIPE pre-deployment test address.
  const net::IPv4Address test_addr = atlas::ripe_test_address();
  ArenaVector<Obs4> v4{ArenaAllocator<Obs4>(arena_)};
  v4.reserve(probe.v4.size());
  for (const auto& o : probe.v4) {
    if (o.addr == test_addr) {
      ++stats_.test_address_records;
      continue;
    }
    v4.push_back(o);
  }

  // 3. Atypical NAT checks.
  if (!v4.empty()) {
    std::size_t pub = 0;
    for (const auto& o : v4) pub += o.src_public;
    if (double(pub) / double(v4.size()) > options_.public_src_threshold) {
      ++stats_.dropped_public_src;
      return {};
    }
  }
  if (!probe.v6.empty()) {
    std::size_t mism = 0;
    for (const auto& o : probe.v6) mism += !o.src_matches;
    if (double(mism) / double(probe.v6.size()) >
        options_.v6_mismatch_threshold) {
      ++stats_.dropped_v6_mismatch;
      return {};
    }
  }

  // 4. AS attribution. asn_of() is a pure function and consecutive
  // observations almost always repeat the previous address, so a one-entry
  // memo per family removes nearly every trie lookup; the attributed ASNs
  // are kept per observation so the emit step below never re-queries the
  // RIB. Merge both families chronologically and compress the ASN sequence
  // into runs; alternation (more runs than a single switch can produce)
  // marks the probe multihomed, while a clean A->B sequence splits the
  // probe into virtual probes.
  ArenaVector<bgp::Asn> asn4{ArenaAllocator<bgp::Asn>(arena_)};
  asn4.reserve(v4.size());
  {
    net::IPv4Address memo_addr;
    bgp::Asn memo_asn = 0;
    bool have_memo = false;
    for (const auto& o : v4) {
      if (!have_memo || !(o.addr == memo_addr)) {
        memo_addr = o.addr;
        memo_asn = rib_.asn_of(o.addr);
        have_memo = true;
      }
      asn4.push_back(memo_asn);
    }
  }
  ArenaVector<bgp::Asn> asn6{ArenaAllocator<bgp::Asn>(arena_)};
  asn6.reserve(probe.v6.size());
  {
    net::IPv6Address memo_addr;
    bgp::Asn memo_asn = 0;
    bool have_memo = false;
    for (const auto& o : probe.v6) {
      if (!have_memo || !(o.addr == memo_addr)) {
        memo_addr = o.addr;
        memo_asn = rib_.asn_of(o.addr);
        have_memo = true;
      }
      asn6.push_back(memo_asn);
    }
  }

  struct Tagged {
    Hour hour;
    bgp::Asn asn;
  };
  ArenaVector<Tagged> tagged{ArenaAllocator<Tagged>(arena_)};
  tagged.reserve(v4.size() + probe.v6.size());
  for (std::size_t i = 0; i < v4.size(); ++i)
    tagged.push_back({v4[i].hour, asn4[i]});
  for (std::size_t i = 0; i < probe.v6.size(); ++i)
    tagged.push_back({probe.v6[i].hour, asn6[i]});
  std::sort(tagged.begin(), tagged.end(),
            [](const Tagged& a, const Tagged& b) { return a.hour < b.hour; });
  // Drop unrouted observations (addresses outside any announcement).
  tagged.erase(std::remove_if(tagged.begin(), tagged.end(),
                              [](const Tagged& t) { return t.asn == 0; }),
               tagged.end());
  if (tagged.empty()) {
    ++stats_.dropped_short;
    return {};
  }

  struct Run {
    bgp::Asn asn;
    Hour first, last;
  };
  ArenaVector<Run> runs{ArenaAllocator<Run>(arena_)};
  for (const auto& t : tagged) {
    if (runs.empty() || runs.back().asn != t.asn) {
      runs.push_back({t.asn, t.hour, t.hour});
    } else {
      runs.back().last = t.hour;
    }
  }
  if (int(runs.size()) > options_.max_as_runs) {
    ++stats_.dropped_multihomed;
    return {};
  }

  // 5. Emit one CleanProbe per AS run, each long enough to analyze. The
  // per-observation ASNs from step 4 stand in for the former re-lookups.
  std::vector<CleanProbe> out;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    if (run.last - run.first < options_.min_observation_hours) {
      ++stats_.dropped_short;
      continue;
    }
    CleanProbe cp;
    cp.probe_id = probe.probe_id;
    cp.virtual_index = int(i);
    cp.asn = run.asn;
    cp.first_hour = run.first;
    cp.last_hour = run.last;
    for (std::size_t j = 0; j < v4.size(); ++j) {
      const Obs4& o = v4[j];
      if (o.hour < run.first || o.hour > run.last) continue;
      if (asn4[j] != run.asn) continue;
      cp.v4.push_back(o);
    }
    for (std::size_t j = 0; j < probe.v6.size(); ++j) {
      const Obs6& o = probe.v6[j];
      if (o.hour < run.first || o.hour > run.last) continue;
      if (asn6[j] != run.asn) continue;
      cp.v6.push_back(o);
    }
    out.push_back(std::move(cp));
  }
  if (!out.empty()) {
    ++stats_.probes_kept;
    stats_.virtual_probes += out.size();
    if (out.size() > 1) ++stats_.split_probes;
  } else if (runs.size() > 0) {
    // all runs too short: already accounted under dropped_short
  }
  return out;
}

}  // namespace dynamips::core
