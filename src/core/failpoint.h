// failpoint.h — named, deterministic fault-injection points.
//
// A failpoint is a named hook compiled into a real error path (an fsync,
// a send, a checkpoint publish). Disarmed — the production state — hitting
// one costs exactly one relaxed atomic load and nothing else: no lock, no
// map lookup, no clock read. Armed via a spec string (the
// DYNAMIPS_FAILPOINTS environment variable or `--failpoints`), each named
// point fires *deterministically* from seeded hit-counter predicates, never
// from wall-clock randomness, so every chaos run is replayable: the same
// spec and seed produce the identical injection sequence (modulo thread
// interleaving at concurrent sites, where per-hit decisions are still
// deterministic in the hit index).
//
// Spec grammar (entries separated by ';'):
//
//   name=action[predicate]
//   action    := off | err | err(ERRNO) | short | delay(Nms)
//   predicate := @A | @A..B | @A.. | *F%SEED
//
//   checkpoint.write=err@3            fail exactly the 3rd hit
//   atomic_file.write=err(ENOSPC)@1   first write fails with ENOSPC
//   atomic_file.write=short@2..4      hits 2-4 tear the write
//   lg.send=delay(50ms)@2..           stall every send from the 2nd on
//   readers.line=err*0.001%42         ~0.1% of hits, seeded by 42
//
// `err` defaults to EIO; ERRNO is one of the names parse_errno_name()
// knows. A probabilistic predicate decides each hit from
// splitmix64(seed ^ hit_index) — no RNG state, so concurrent sites stay
// per-hit deterministic. SEED is a decimal u64 or any token (hashed
// FNV-1a), so `*0.1%seed` is valid and reproducible.
//
// The evaluation path is header-only on purpose: dynamips_io (and layers
// below it, like obs' metrics-JSON writer) hit failpoints without a link
// dependency on dynamips_core — the same layering trick as core/status.h.
// Arming (the spec parser) lives in failpoint.cpp inside dynamips_core;
// only tools and tests arm.
#pragma once

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "core/status.h"

namespace dynamips::core {

/// What an armed failpoint asks the call site to do.
struct FailpointHit {
  enum class Kind : std::uint8_t {
    kNone = 0,   ///< not armed / predicate did not fire: proceed normally
    kError,      ///< fail the operation with errno-style code `err`
    kShortWrite, ///< tear the operation: emit a prefix, then fail
    kDelay,      ///< stall for delay_ms, then proceed normally
  };
  Kind kind = Kind::kNone;
  int err = 0;                  ///< errno for kError (EIO, ENOSPC, ...)
  std::uint64_t delay_ms = 0;   ///< stall length for kDelay

  explicit operator bool() const { return kind != Kind::kNone; }
  bool is_error() const { return kind == Kind::kError; }
  bool is_short_write() const { return kind == Kind::kShortWrite; }
  bool is_delay() const { return kind == Kind::kDelay; }

  /// Symbolic name of `err` for error messages ("ENOSPC", "EIO", ...).
  const char* errno_name() const {
    switch (err) {
      case EIO: return "EIO";
      case ENOSPC: return "ENOSPC";
      case EAGAIN: return "EAGAIN";
      case EPIPE: return "EPIPE";
      case ECONNRESET: return "ECONNRESET";
      case ECONNABORTED: return "ECONNABORTED";
      case EINTR: return "EINTR";
      case EMFILE: return "EMFILE";
      case EBADF: return "EBADF";
    }
    return "errno";
  }
};

/// SplitMix64 — the per-hit decision hash for probabilistic predicates and
/// the stream driver's deterministic backoff jitter.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

namespace fp_detail {

/// Nonzero while any failpoint is armed. A namespace-scope constinit
/// atomic, not a function-local static, so the disarmed check is a single
/// relaxed load with no init-guard branch.
inline constinit std::atomic<std::uint64_t> g_armed{0};

struct Entry {
  FailpointHit hit;              ///< template returned when the entry fires
  std::uint64_t from = 1;        ///< hit-range predicate: fire on hits
  std::uint64_t to = ~0ull;      ///<   [from, to] (1-based, inclusive)
  bool probabilistic = false;    ///< use threshold/seed instead of the range
  std::uint64_t threshold = 0;   ///< fire when splitmix64(seed^n) <= this
  std::uint64_t seed = 0;
  std::uint64_t count = 0;       ///< hits so far (under Registry::mu)
  std::uint64_t fired = 0;       ///< hits that fired
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Entry, std::less<>> entries;
};

inline Registry& registry() {
  static Registry r;
  return r;
}

/// Armed-path evaluation: count the hit and decide from the predicate.
/// Takes the registry mutex — armed runs are chaos runs, not benchmarks.
inline bool eval(std::string_view name, FailpointHit* out) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.entries.find(name);
  if (it == reg.entries.end()) return false;
  Entry& e = it->second;
  ++e.count;
  const bool fire = e.probabilistic
                        ? splitmix64(e.seed ^ e.count) <= e.threshold
                        : (e.count >= e.from && e.count <= e.to);
  if (!fire) return false;
  ++e.fired;
  *out = e.hit;
  return true;
}

}  // namespace fp_detail

/// True while any failpoint is armed. One relaxed atomic load.
inline bool failpoints_armed() {
  return fp_detail::g_armed.load(std::memory_order_relaxed) != 0;
}

/// Hit the named failpoint. Disarmed this is the single relaxed load plus
/// a trivially-constructed kNone hit; armed it evaluates the predicate
/// deterministically and returns what the call site should inject.
inline FailpointHit failpoint(std::string_view name) {
  FailpointHit hit;
  if (failpoints_armed()) fp_detail::eval(name, &hit);
  return hit;
}

/// Sleep out a kDelay hit (no-op for every other kind). Call sites that
/// meter the stall against their own deadline clock inline the sleep
/// instead.
inline void failpoint_sleep(const FailpointHit& hit) {
  if (hit.is_delay() && hit.delay_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(hit.delay_ms));
}

// ------------------------------------------------ arming (failpoint.cpp)

/// Parse `spec` (grammar above) and arm exactly those failpoints,
/// replacing any previous arming and resetting all hit counters — so
/// re-arming the same spec replays the identical injection sequence.
/// An empty spec disarms everything. On a parse error the current arming
/// is left untouched and kInvalidArgument names the offending entry.
Status arm_failpoints(std::string_view spec);

/// Arm from the DYNAMIPS_FAILPOINTS environment variable; unset or empty
/// is a no-op success.
Status arm_failpoints_from_env();

/// Disarm everything and drop all counters.
void disarm_failpoints();

/// How often the named failpoint fired since arming (0 when not armed).
std::uint64_t failpoint_fired(std::string_view name);

/// One-line per-failpoint accounting ("name: hits=7 fired=2; ...") for
/// end-of-run logs; empty string when nothing is armed.
std::string failpoint_report();

/// Errno value for a symbolic name ("ENOSPC" -> ENOSPC); 0 when unknown.
int parse_errno_name(std::string_view name);

}  // namespace dynamips::core
