// evolution.h — the §3.2 "Evolution over time" analysis.
//
// The paper breaks each AS's durations down by year and reports that
// assignment durations across all categories (non-dual-stack v4,
// dual-stack v4, and v6) grew over the measurement years, most visibly for
// DTAG and Orange. This analyzer buckets sandwiched durations by the year
// their assignment began and keeps the same three-way split as Fig. 1.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "core/durations.h"
#include "stats/flatmap.h"

namespace dynamips::core {

/// Year index within the observation window (start hour / 8760).
using YearIndex = int;

/// One (AS, year) bucket with the Fig. 1 three-way split.
struct YearDurations {
  stats::TotalTimeFraction v4_nds;
  stats::TotalTimeFraction v4_ds;
  stats::TotalTimeFraction v6;

  /// Absorb another shard's bucket for the same (AS, year).
  void merge(const YearDurations& o) {
    v4_nds.merge(o.v4_nds);
    v4_ds.merge(o.v4_ds);
    v6.merge(o.v6);
  }
};

/// Streaming per-(AS, year) duration aggregation.
class EvolutionAnalyzer {
 public:
  explicit EvolutionAnalyzer(ChangeOptions options = {})
      : options_(options) {}

  void add_probe(const CleanProbe& probe);

  // Sink interface (core/parallel.h): every bucket is a per-(AS, year)
  // TotalTimeFraction sum, so shards merged in any order reproduce the
  // serial accumulation exactly.
  void add(const CleanProbe& probe) { add_probe(probe); }
  void merge(EvolutionAnalyzer&& other);
  void finalize() {}

  using Key = std::pair<bgp::Asn, YearIndex>;
  // FlatMap keeps the (AS, year) buckets in the same lexicographic order
  // the std::map it replaced iterated in.
  const stats::FlatMap<Key, YearDurations>& by_as_year() const {
    return buckets_;
  }

  /// Finalized (AS, year) buckets without consuming the accumulator
  /// (core/parallel.h SnapshotAnalyzer); later probes keep accumulating.
  std::map<Key, YearDurations> snapshot() const {
    return std::map<Key, YearDurations>(buckets_.begin(), buckets_.end());
  }

  /// Cumulative total time fraction at `threshold_hours` for one AS across
  /// years — a falling series means durations grew (the paper's finding).
  std::map<YearIndex, double> trend(
      bgp::Asn asn, std::uint64_t threshold_hours,
      const stats::TotalTimeFraction YearDurations::*split) const;

 private:
  ChangeOptions options_;
  stats::FlatMap<Key, YearDurations> buckets_;
};

}  // namespace dynamips::core
