// evolution.h — the §3.2 "Evolution over time" analysis.
//
// The paper breaks each AS's durations down by year and reports that
// assignment durations across all categories (non-dual-stack v4,
// dual-stack v4, and v6) grew over the measurement years, most visibly for
// DTAG and Orange. This analyzer buckets sandwiched durations by the year
// their assignment began and keeps the same three-way split as Fig. 1.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "core/durations.h"
#include "stats/flatmap.h"

namespace dynamips::core {

/// Year index within the observation window (start hour / 8760).
using YearIndex = int;

/// One (AS, year) bucket with the Fig. 1 three-way split.
struct YearDurations {
  stats::TotalTimeFraction v4_nds;
  stats::TotalTimeFraction v4_ds;
  stats::TotalTimeFraction v6;
};

/// Streaming per-(AS, year) duration aggregation.
class EvolutionAnalyzer {
 public:
  explicit EvolutionAnalyzer(ChangeOptions options = {})
      : options_(options) {}

  void add_probe(const CleanProbe& probe);

  using Key = std::pair<bgp::Asn, YearIndex>;
  // FlatMap keeps the (AS, year) buckets in the same lexicographic order
  // the std::map it replaced iterated in.
  const stats::FlatMap<Key, YearDurations>& by_as_year() const {
    return buckets_;
  }

  /// Cumulative total time fraction at `threshold_hours` for one AS across
  /// years — a falling series means durations grew (the paper's finding).
  std::map<YearIndex, double> trend(
      bgp::Asn asn, std::uint64_t threshold_hours,
      const stats::TotalTimeFraction YearDurations::*split) const;

 private:
  ChangeOptions options_;
  stats::FlatMap<Key, YearDurations> buckets_;
};

}  // namespace dynamips::core
