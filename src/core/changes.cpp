#include "core/changes.h"

#include <algorithm>

namespace dynamips::core {

std::vector<Span4> extract_spans4(std::span<const Obs4> obs) {
  std::vector<Span4> spans;
  for (const auto& o : obs) {
    if (!spans.empty() && spans.back().addr == o.addr) {
      spans.back().last_seen = o.hour;
    } else {
      spans.push_back({o.hour, o.hour, o.addr});
    }
  }
  return spans;
}

std::vector<Span6> extract_spans6(std::span<const Obs6> obs) {
  std::vector<Span6> spans;
  for (const auto& o : obs) {
    std::uint64_t net = o.addr.network64();
    if (!spans.empty() && spans.back().net64 == net) {
      spans.back().last_seen = o.hour;
    } else {
      spans.push_back({o.hour, o.hour, net});
    }
  }
  return spans;
}

std::vector<Change4> extract_changes4(std::span<const Span4> spans) {
  std::vector<Change4> out;
  for (std::size_t i = 1; i < spans.size(); ++i)
    out.push_back({spans[i].first_seen, spans[i - 1].addr, spans[i].addr});
  return out;
}

std::vector<Change6> extract_changes6(std::span<const Span6> spans) {
  std::vector<Change6> out;
  for (std::size_t i = 1; i < spans.size(); ++i)
    out.push_back(
        {spans[i].first_seen, spans[i - 1].net64, spans[i].net64});
  return out;
}

namespace {

// Shared sandwiching logic over any span type.
template <typename Span>
std::vector<TimedDuration> sandwiched(std::span<const Span> spans,
                                      const ChangeOptions& opt) {
  std::vector<TimedDuration> out;
  for (std::size_t i = 1; i + 1 < spans.size(); ++i) {
    Hour gap_before = spans[i].first_seen - spans[i - 1].last_seen;
    Hour gap_after = spans[i + 1].first_seen - spans[i].last_seen;
    if (gap_before > opt.max_boundary_gap ||
        gap_after > opt.max_boundary_gap)
      continue;
    Hour d = spans[i + 1].first_seen - spans[i].first_seen;
    if (d > 0) out.push_back({spans[i].first_seen, d});
  }
  return out;
}

template <typename Span>
std::vector<Hour> durations_only(std::span<const Span> spans,
                                 const ChangeOptions& opt) {
  std::vector<Hour> out;
  for (const auto& td : sandwiched(spans, opt)) out.push_back(td.duration);
  return out;
}

}  // namespace

std::vector<Hour> sandwiched_durations4(std::span<const Span4> spans,
                                        const ChangeOptions& opt) {
  return durations_only(spans, opt);
}

std::vector<Hour> sandwiched_durations6(std::span<const Span6> spans,
                                        const ChangeOptions& opt) {
  return durations_only(spans, opt);
}

std::vector<TimedDuration> sandwiched_timed4(std::span<const Span4> spans,
                                             const ChangeOptions& opt) {
  return sandwiched(spans, opt);
}

std::vector<TimedDuration> sandwiched_timed6(std::span<const Span6> spans,
                                             const ChangeOptions& opt) {
  return sandwiched(spans, opt);
}

std::optional<double> change_cooccurrence(std::span<const Change4> v4,
                                          std::span<const Change6> v6,
                                          Hour window) {
  if (v4.empty()) return std::nullopt;
  std::size_t hits = 0;
  std::size_t j = 0;
  for (const auto& c4 : v4) {
    while (j < v6.size() && v6[j].at + window < c4.at) ++j;
    if (j < v6.size() && v6[j].at <= c4.at + window) ++hits;
  }
  return double(hits) / double(v4.size());
}

}  // namespace dynamips::core
