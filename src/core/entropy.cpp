#include "core/entropy.h"

#include <cmath>

namespace dynamips::core {

std::array<double, 16> nibble_entropy(
    std::span<const std::uint64_t> net64s) {
  std::array<double, 16> out{};
  if (net64s.empty()) return out;
  for (int n = 0; n < 16; ++n) {
    std::array<std::uint64_t, 16> counts{};
    int shift = 60 - 4 * n;
    for (std::uint64_t v : net64s) ++counts[(v >> shift) & 0xf];
    double h = 0;
    double total = double(net64s.size());
    for (std::uint64_t c : counts) {
      if (c == 0) continue;
      double p = double(c) / total;
      h -= p * std::log2(p);
    }
    out[std::size_t(n)] = h;
  }
  return out;
}

double total_entropy(std::span<const std::uint64_t> net64s) {
  double sum = 0;
  for (double h : nibble_entropy(net64s)) sum += h;
  return sum;
}

}  // namespace dynamips::core
