#include "core/hitlist.h"

#include <cmath>

#include "netaddr/u128.h"

namespace dynamips::core {

void Hitlist::observe(std::uint64_t net64, std::uint64_t iid, Hour now) {
  Key k{net64, iid};
  auto it = entries_.find(k);
  if (it == entries_.end()) {
    entries_[k] = HitlistEntry{net64, iid, now, now};
  } else {
    it->second.last_seen = now;
  }
}

std::size_t Hitlist::expire(Hour now, Hour max_age) {
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.last_seen + max_age < now) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::vector<HitlistEntry> Hitlist::entries() const {
  std::vector<HitlistEntry> out;
  out.reserve(entries_.size());
  for (const auto& [k, e] : entries_) out.push_back(e);
  return out;
}

bool Hitlist::contains(std::uint64_t net64, std::uint64_t iid) const {
  return entries_.count(Key{net64, iid}) > 0;
}

std::optional<std::uint64_t> probes_to_find(std::uint64_t target_net64,
                                            const net::Prefix6& scope,
                                            int stride_len) {
  if (stride_len < scope.length() || stride_len > 64) return std::nullopt;
  std::uint64_t scope_net = scope.address().network64();
  int scope_bits = 64 - scope.length();
  // Target inside the scope?
  if (scope_bits < 64 &&
      (target_net64 >> scope_bits) != (scope_net >> scope_bits))
    return std::nullopt;
  // On the stride grid: the bits below the stride must be zero (the scan
  // probes each delegation's zero-filled first /64 only).
  int below = 64 - stride_len;
  if (below > 0 && (target_net64 & ((1ull << below) - 1)) != 0)
    return std::nullopt;
  std::uint64_t offset = (target_net64 - scope_net) >> below;
  return offset + 1;  // sequential scan, 1-indexed probe count
}

double expected_random_probes(const net::Prefix6& scope, int stride_len) {
  int bits = stride_len - scope.length();
  if (bits < 0) return 0;
  return std::ldexp(1.0, bits) / 2.0;
}

std::optional<std::uint64_t> neighbor_probes(std::uint64_t old_net64,
                                             std::uint64_t new_net64,
                                             std::uint64_t max_radius) {
  std::uint64_t distance = old_net64 > new_net64 ? old_net64 - new_net64
                                                 : new_net64 - old_net64;
  if (distance == 0) return 1;
  if (distance > max_radius) return std::nullopt;
  // Ring search probes old, old+1, old-1, old+2, ...: the target at signed
  // distance d costs 2d (above) or 2d+1 (below) probes including the first.
  return new_net64 > old_net64 ? distance * 2 : distance * 2 + 1;
}

}  // namespace dynamips::core
