#include "core/resource.h"

#include <chrono>
#include <cstdio>

#ifdef __unix__
#include <sys/statvfs.h>
#include <unistd.h>
#endif

namespace dynamips::core {

std::uint64_t current_rss_bytes() {
#ifdef __unix__
  // /proc/self/statm: "size resident shared text lib data dt", in pages.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  unsigned long long size = 0, resident = 0;
  int matched = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (matched != 2) return 0;
  long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) page = 4096;
  return std::uint64_t(resident) * std::uint64_t(page);
#else
  return 0;
#endif
}

std::uint64_t disk_free_bytes(const std::string& path) {
#ifdef __unix__
  struct statvfs vfs{};
  if (::statvfs(path.c_str(), &vfs) != 0) return 0;
  return std::uint64_t(vfs.f_bavail) * std::uint64_t(vfs.f_frsize);
#else
  (void)path;
  return 0;
#endif
}

std::string_view disk_pressure_name(DiskPressure pressure) {
  switch (pressure) {
    case DiskPressure::kOk: return "ok";
    case DiskPressure::kSoft: return "soft";
    case DiskPressure::kHard: return "hard";
  }
  return "ok";
}

ResourceGovernor::ResourceGovernor(ResourceBudgets budgets)
    : budgets_(std::move(budgets)) {}

std::uint64_t ResourceGovernor::now_ms() const {
  if (budgets_.clock_ms) return budgets_.clock_ms();
  return std::uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

std::uint64_t ResourceGovernor::probe_rss() const {
  return budgets_.rss_probe ? budgets_.rss_probe() : current_rss_bytes();
}

std::uint64_t ResourceGovernor::probe_disk(const std::string& path) const {
  return budgets_.disk_free_probe ? budgets_.disk_free_probe(path)
                                  : disk_free_bytes(path);
}

ResourceState ResourceGovernor::sample() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t now = now_ms();
  if (sampled_once_ && budgets_.sample_interval_ms > 0 &&
      now - last_sample_ms_ < budgets_.sample_interval_ms)
    return state_;
  last_sample_ms_ = now;
  sampled_once_ = true;

  constexpr std::uint64_t kMiB = 1024 * 1024;
  state_.rss_mb = probe_rss() / kMiB;
  state_.memory_pressure =
      budgets_.max_rss_mb > 0 && state_.rss_mb >= budgets_.max_rss_mb;

  state_.disk_sampled = false;
  std::uint64_t min_free = 0;
  for (const std::string& path : budgets_.disk_paths) {
    std::uint64_t free = probe_disk(path);
    if (free == 0) continue;  // unprobeable: unknown, not empty
    if (!state_.disk_sampled || free < min_free) min_free = free;
    state_.disk_sampled = true;
  }
  state_.disk_free_mb = state_.disk_sampled ? min_free / kMiB : 0;
  state_.disk = DiskPressure::kOk;
  if (budgets_.min_disk_free_mb > 0 && state_.disk_sampled) {
    if (state_.disk_free_mb < budgets_.min_disk_free_mb / 2)
      state_.disk = DiskPressure::kHard;
    else if (state_.disk_free_mb < budgets_.min_disk_free_mb)
      state_.disk = DiskPressure::kSoft;
  }

  if (budgets_.metrics) {
    budgets_.metrics->set_gauge("resource.rss_mb", double(state_.rss_mb));
    if (state_.disk_sampled)
      budgets_.metrics->set_gauge("resource.disk_free_mb",
                                  double(state_.disk_free_mb));
  }
  return state_;
}

ResourceState ResourceGovernor::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

void ResourceGovernor::note_backlog(std::uint64_t batches) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    state_.backlog_batches = batches;
  }
  if (budgets_.metrics)
    budgets_.metrics->set_gauge("resource.backlog_batches", double(batches));
}

void ResourceGovernor::count(std::string_view action, std::uint64_t n) {
  if (n == 0 || !budgets_.metrics) return;
  std::string name = "resource.";
  name += action;
  budgets_.metrics->add_counter(name, n);
}

}  // namespace dynamips::core
