// hitlist.h — IPv6 hitlist curation and scan-scoping (§5.2, §6).
//
// Active IPv6 measurement keeps lists of known-responsive targets; when a
// subscriber's delegated prefix changes, the hitlist entry goes stale and
// the device must be re-found. The paper's spatial results bound the search:
// assignments stay inside a pool (often a /40), zero-filling CPEs occupy
// only the first /64 of each delegation (so scans can stride at the
// delegation length), and scramble-induced changes with CPL >= 56 are
// re-findable by probing the 255 neighbouring /64s. This module implements
// hitlist maintenance plus the probe-count arithmetic for those strategies.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netaddr/ipv6.h"
#include "netaddr/prefix.h"
#include "simnet/time.h"

namespace dynamips::core {

using simnet::Hour;

/// One curated target.
struct HitlistEntry {
  std::uint64_t net64 = 0;
  std::uint64_t iid = 0;
  Hour first_seen = 0;
  Hour last_seen = 0;
};

/// A curated list of responsive targets, keyed by full address.
class Hitlist {
 public:
  /// Record a responsive (network, iid) pair at `now`.
  void observe(std::uint64_t net64, std::uint64_t iid, Hour now);

  /// Curation: drop entries not confirmed within `max_age` of `now`.
  /// Returns the number of entries expired — the churn the paper's
  /// duration results predict.
  std::size_t expire(Hour now, Hour max_age);

  std::size_t size() const { return entries_.size(); }
  std::vector<HitlistEntry> entries() const;

  /// Does the list contain a live entry for this exact address?
  bool contains(std::uint64_t net64, std::uint64_t iid) const;

 private:
  struct Key {
    std::uint64_t net64, iid;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}(k.net64 * 0x9e3779b97f4a7c15ull ^
                                        k.iid);
    }
  };
  std::unordered_map<Key, HitlistEntry, KeyHash> entries_;
};

/// Probe count for a *sequential* scan of `scope`, stepping one probe per
/// /`stride_len` delegation (probing each delegation's zero-filled first
/// /64), until the target's /64 is hit. Returns nullopt when the target is
/// outside the scope or does not sit on the stride grid (e.g. a scrambling
/// CPE whose /64 is not the delegation base).
std::optional<std::uint64_t> probes_to_find(std::uint64_t target_net64,
                                            const net::Prefix6& scope,
                                            int stride_len);

/// Expected probes for a random-order scan of the same grid (half the grid
/// on average); the denominator of the paper's search-space reductions.
double expected_random_probes(const net::Prefix6& scope, int stride_len);

/// Neighbour search after a high-CPL change (§5.2: "a quick search of the
/// neighboring 255 /64s will suffice"): probes needed to re-find
/// `new_net64` by expanding ring search around `old_net64` (1, +-1, +-2,
/// ...). Returns nullopt if the distance exceeds `max_radius`.
std::optional<std::uint64_t> neighbor_probes(std::uint64_t old_net64,
                                             std::uint64_t new_net64,
                                             std::uint64_t max_radius = 256);

}  // namespace dynamips::core
