#include "core/spatial.h"

#include <set>
#include <unordered_set>
#include <utility>

#include "netaddr/ipv6.h"

namespace dynamips::core {

void SpatialAnalyzer::merge(SpatialAnalyzer&& other) {
  for (auto& [asn, stats] : other.by_as_) {
    auto [it, inserted] = by_as_.try_emplace(asn, std::move(stats));
    if (!inserted) it->second.merge(std::move(stats));
  }
}

void SpatialAnalyzer::add_probe(const CleanProbe& probe) {
  AsSpatialStats& as = by_as_[probe.asn];
  as.asn = probe.asn;

  // ----- v4: Table 2 boundary-crossing shares -----
  auto spans4 = extract_spans4(probe.v4);
  for (std::size_t i = 1; i < spans4.size(); ++i) {
    net::IPv4Address prev = spans4[i - 1].addr;
    net::IPv4Address next = spans4[i].addr;
    ++as.v4_changes;
    if (net::slash24_of(prev) != net::slash24_of(next)) ++as.v4_diff_24;
    auto rp = rib_.lookup(prev);
    auto rn = rib_.lookup(next);
    if (!rp || !rn || rp->prefix != rn->prefix) ++as.v4_diff_bgp;
  }

  // ----- v6: CPL histogram, Table 2, Fig. 8 -----
  auto spans6 = extract_spans6(probe.v6);
  std::array<bool, 65> probe_saw_cpl{};
  for (std::size_t i = 1; i < spans6.size(); ++i) {
    std::uint64_t prev = spans6[i - 1].net64;
    std::uint64_t next = spans6[i].net64;
    int cpl = net::common_prefix_length64(prev, next);
    ++as.cpl.changes[std::size_t(cpl)];
    probe_saw_cpl[std::size_t(cpl)] = true;
    ++as.v6_changes;
    auto rp = rib_.lookup(net::IPv6Address{prev, 0});
    auto rn = rib_.lookup(net::IPv6Address{next, 0});
    if (!rp || !rn || rp->prefix != rn->prefix) ++as.v6_diff_bgp;
  }
  for (int c = 0; c <= 64; ++c)
    if (probe_saw_cpl[std::size_t(c)]) ++as.cpl.probes[std::size_t(c)];

  // Fig. 8: unique prefixes per aggregation length. Only meaningful for
  // probes that observed any v6 at all.
  if (!spans6.empty()) {
    std::unordered_set<std::uint64_t> nets;
    for (const auto& s : spans6) nets.insert(s.net64);
    for (int len : kFig8Lengths) {
      std::unordered_set<std::uint64_t> uniq;
      for (std::uint64_t n : nets)
        uniq.insert(len == 64 ? n : (n >> (64 - len)));
      as.unique_prefixes[len].push_back(std::uint32_t(uniq.size()));
    }
    std::set<std::pair<std::uint64_t, int>> bgp_keys;
    for (std::uint64_t n : nets) {
      auto r = rib_.lookup(net::IPv6Address{n, 0});
      if (r)
        bgp_keys.insert({r->prefix.address().network64(),
                         r->prefix.length()});
    }
    as.unique_bgp.push_back(std::uint32_t(bgp_keys.size()));
  }
}

}  // namespace dynamips::core
