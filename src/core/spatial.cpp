#include "core/spatial.h"

#include <algorithm>
#include <utility>

#include "io/checkpoint.h"
#include "netaddr/ipv6.h"

namespace dynamips::core {

namespace {

void save_u32_vector(io::ckpt::Writer& w, const std::vector<std::uint32_t>& v) {
  w.u64(v.size());
  for (std::uint32_t x : v) w.u32(x);
}

bool load_u32_vector(io::ckpt::Reader& r, std::vector<std::uint32_t>& v) {
  v.clear();
  std::uint64_t n = r.size();
  v.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) v.push_back(r.u32());
  return r.ok();
}

}  // namespace

void AsSpatialStats::save(io::ckpt::Writer& w) const {
  w.u32(asn);
  for (std::uint64_t c : cpl.changes) w.u64(c);
  for (std::uint64_t p : cpl.probes) w.u64(p);
  w.u64(v4_changes);
  w.u64(v4_diff_24);
  w.u64(v4_diff_bgp);
  w.u64(v6_changes);
  w.u64(v6_diff_bgp);
  w.u64(unique_prefixes.size());
  for (const auto& [len, counts] : unique_prefixes) {
    w.i32(len);
    save_u32_vector(w, counts);
  }
  save_u32_vector(w, unique_bgp);
}

bool AsSpatialStats::load(io::ckpt::Reader& r) {
  asn = r.u32();
  for (std::uint64_t& c : cpl.changes) c = r.u64();
  for (std::uint64_t& p : cpl.probes) p = r.u64();
  v4_changes = r.u64();
  v4_diff_24 = r.u64();
  v4_diff_bgp = r.u64();
  v6_changes = r.u64();
  v6_diff_bgp = r.u64();
  unique_prefixes.clear();
  std::uint64_t n = r.size();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    int len = r.i32();
    if (!load_u32_vector(r, unique_prefixes[len])) return false;
  }
  return load_u32_vector(r, unique_bgp);
}

void SpatialAnalyzer::save(io::ckpt::Writer& w) const {
  w.u64(by_as_.size());
  for (const auto& [asn, stats] : by_as_) {
    w.u32(asn);
    stats.save(w);
  }
}

bool SpatialAnalyzer::load(io::ckpt::Reader& r) {
  by_as_.clear();
  std::uint64_t n = r.size();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    bgp::Asn asn = r.u32();
    if (!by_as_[asn].load(r)) return false;
  }
  return r.ok();
}

void SpatialAnalyzer::merge(SpatialAnalyzer&& other) {
  for (auto& [asn, stats] : other.by_as_) {
    auto [it, inserted] = by_as_.try_emplace(asn, std::move(stats));
    if (!inserted) it->second.merge(std::move(stats));
  }
}

void SpatialAnalyzer::add_probe(const CleanProbe& probe) {
  AsSpatialStats& as = by_as_[probe.asn];
  as.asn = probe.asn;

  // ----- v4: Table 2 boundary-crossing shares -----
  auto spans4 = extract_spans4(probe.v4);
  for (std::size_t i = 1; i < spans4.size(); ++i) {
    net::IPv4Address prev = spans4[i - 1].addr;
    net::IPv4Address next = spans4[i].addr;
    ++as.v4_changes;
    if (net::slash24_of(prev) != net::slash24_of(next)) ++as.v4_diff_24;
    auto rp = rib_.lookup(prev);
    auto rn = rib_.lookup(next);
    if (!rp || !rn || rp->prefix != rn->prefix) ++as.v4_diff_bgp;
  }

  // ----- v6: CPL histogram, Table 2, Fig. 8 -----
  auto spans6 = extract_spans6(probe.v6);
  std::array<bool, 65> probe_saw_cpl{};
  for (std::size_t i = 1; i < spans6.size(); ++i) {
    std::uint64_t prev = spans6[i - 1].net64;
    std::uint64_t next = spans6[i].net64;
    int cpl = net::common_prefix_length64(prev, next);
    ++as.cpl.changes[std::size_t(cpl)];
    probe_saw_cpl[std::size_t(cpl)] = true;
    ++as.v6_changes;
    auto rp = rib_.lookup(net::IPv6Address{prev, 0});
    auto rn = rib_.lookup(net::IPv6Address{next, 0});
    if (!rp || !rn || rp->prefix != rn->prefix) ++as.v6_diff_bgp;
  }
  for (int c = 0; c <= 64; ++c)
    if (probe_saw_cpl[std::size_t(c)]) ++as.cpl.probes[std::size_t(c)];

  // Fig. 8: unique prefixes per aggregation length. Only meaningful for
  // probes that observed any v6 at all. Unique counts are set cardinalities
  // (order-independent), so sorted scratch vectors in the shard arena
  // replace the former per-call hash/tree sets without changing a single
  // count.
  if (!spans6.empty()) {
    arena_.reset();
    ArenaVector<std::uint64_t> nets{ArenaAllocator<std::uint64_t>(arena_)};
    nets.reserve(spans6.size());
    for (const auto& s : spans6) nets.push_back(s.net64);
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());

    ArenaVector<std::uint64_t> prefixes{ArenaAllocator<std::uint64_t>(arena_)};
    prefixes.reserve(nets.size());
    for (int len : kFig8Lengths) {
      if (len == 64) {
        as.unique_prefixes[len].push_back(std::uint32_t(nets.size()));
        continue;
      }
      prefixes.clear();
      for (std::uint64_t n : nets) prefixes.push_back(n >> (64 - len));
      std::sort(prefixes.begin(), prefixes.end());
      auto uniq_end = std::unique(prefixes.begin(), prefixes.end());
      as.unique_prefixes[len].push_back(
          std::uint32_t(uniq_end - prefixes.begin()));
    }

    ArenaVector<std::pair<std::uint64_t, int>> bgp_keys{
        ArenaAllocator<std::pair<std::uint64_t, int>>(arena_)};
    bgp_keys.reserve(nets.size());
    for (std::uint64_t n : nets) {
      auto r = rib_.lookup(net::IPv6Address{n, 0});
      if (r)
        bgp_keys.push_back({r->prefix.address().network64(),
                            r->prefix.length()});
    }
    std::sort(bgp_keys.begin(), bgp_keys.end());
    auto bgp_end = std::unique(bgp_keys.begin(), bgp_keys.end());
    as.unique_bgp.push_back(std::uint32_t(bgp_end - bgp_keys.begin()));
  }
}

}  // namespace dynamips::core
