// spatial.h — spatial analyses of assignment changes (§5.1, §5.2).
//
// Covers three paper artifacts: the common-prefix-length histograms between
// successive /64 assignments (Fig. 5), the share of changes that cross /24
// and BGP-prefix boundaries (Table 2), and the per-probe counts of unique
// prefixes at each aggregation length (Fig. 8).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "bgp/rib.h"
#include "core/arena.h"
#include "core/changes.h"
#include "core/sanitize.h"
#include "stats/flatmap.h"

namespace dynamips::io::ckpt {
class Writer;
class Reader;
}  // namespace dynamips::io::ckpt

namespace dynamips::core {

/// Fig. 5 histogram: per CPL value (0..64), the number of assignment
/// changes with that CPL (orange bars) and the number of probes with at
/// least one such change (blue bars).
struct CplHistogram {
  std::array<std::uint64_t, 65> changes{};
  std::array<std::uint64_t, 65> probes{};

  std::uint64_t total_changes() const {
    std::uint64_t t = 0;
    for (auto c : changes) t += c;
    return t;
  }

  /// Absorb another histogram (shard reduction); bins are plain sums.
  void merge(const CplHistogram& o) {
    for (std::size_t i = 0; i < changes.size(); ++i) {
      changes[i] += o.changes[i];
      probes[i] += o.probes[i];
    }
  }
};

/// The aggregation lengths Fig. 8 plots (plus BGP handled separately).
inline constexpr int kFig8Lengths[] = {64, 56, 48, 40, 32, 24, 16};

/// Accumulated spatial statistics for one AS.
struct AsSpatialStats {
  bgp::Asn asn = 0;
  CplHistogram cpl;

  // Table 2 counters.
  std::uint64_t v4_changes = 0;
  std::uint64_t v4_diff_24 = 0;   ///< changes crossing a /24 boundary
  std::uint64_t v4_diff_bgp = 0;  ///< changes crossing a BGP prefix
  std::uint64_t v6_changes = 0;
  std::uint64_t v6_diff_bgp = 0;

  /// Fig. 8: per aggregation length, one entry per probe = number of unique
  /// prefixes of that length the probe observed. FlatMap iterates lengths
  /// ascending, exactly like the std::map it replaced.
  stats::FlatMap<int, std::vector<std::uint32_t>> unique_prefixes;
  std::vector<std::uint32_t> unique_bgp;  ///< unique v6 BGP prefixes/probe

  double pct_v4_diff_24() const {
    return v4_changes ? 100.0 * double(v4_diff_24) / double(v4_changes) : 0;
  }
  double pct_v4_diff_bgp() const {
    return v4_changes ? 100.0 * double(v4_diff_bgp) / double(v4_changes) : 0;
  }
  double pct_v6_diff_bgp() const {
    return v6_changes ? 100.0 * double(v6_diff_bgp) / double(v6_changes) : 0;
  }

  /// Checkpoint serialization (io/checkpoint.h).
  void save(io::ckpt::Writer& w) const;
  bool load(io::ckpt::Reader& r);

  /// Absorb another shard's accumulation for the same AS. The per-probe
  /// vectors (Fig. 8) are appended after ours, so merging shards in index
  /// order preserves the serial per-probe ordering.
  void merge(AsSpatialStats&& o) {
    cpl.merge(o.cpl);
    v4_changes += o.v4_changes;
    v4_diff_24 += o.v4_diff_24;
    v4_diff_bgp += o.v4_diff_bgp;
    v6_changes += o.v6_changes;
    v6_diff_bgp += o.v6_diff_bgp;
    for (auto& [len, counts] : o.unique_prefixes) {
      auto& mine = unique_prefixes[len];
      mine.insert(mine.end(), counts.begin(), counts.end());
    }
    unique_bgp.insert(unique_bgp.end(), o.unique_bgp.begin(),
                      o.unique_bgp.end());
  }
};

/// Streaming per-AS spatial aggregation over cleaned probes.
class SpatialAnalyzer {
 public:
  explicit SpatialAnalyzer(const bgp::Rib& rib) : rib_(rib) {}

  void add_probe(const CleanProbe& probe);

  // Sink interface (core/parallel.h). Merge shards in index order: the
  // Fig. 8 per-probe vectors are append-ordered by probe.
  void add(const CleanProbe& probe) { add_probe(probe); }
  void merge(SpatialAnalyzer&& other);
  void finalize() {}

  /// Checkpoint serialization: only the per-AS map is state; the RIB
  /// reference is reconstructed from the run config on resume.
  void save(io::ckpt::Writer& w) const;
  bool load(io::ckpt::Reader& r);

  const stats::FlatMap<bgp::Asn, AsSpatialStats>& by_as() const {
    return by_as_;
  }

  /// Finalized per-AS results without consuming the accumulator
  /// (core/parallel.h SnapshotAnalyzer). The per-probe Fig. 8 vectors are
  /// append-ordered; copying them preserves that order, and later adds keep
  /// appending to the accumulator only.
  std::map<bgp::Asn, AsSpatialStats> snapshot() const {
    return std::map<bgp::Asn, AsSpatialStats>(by_as_.begin(), by_as_.end());
  }

 private:
  const bgp::Rib& rib_;
  stats::FlatMap<bgp::Asn, AsSpatialStats> by_as_;
  MonotonicArena arena_;  ///< per-call scratch for the Fig. 8 dedup
};

}  // namespace dynamips::core
