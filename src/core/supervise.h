// supervise.h — self-healing supervisor for unattended study runs.
//
// The exit-code protocol (0 done, 3 interrupted-but-resumable, else
// failed) makes a killed run *recoverable*; this header makes recovery
// *unattended*. `dynamips_study --supervise` spawns the real run as a
// child process and the supervisor loop here:
//
//   * restarts a crashed/killed child with capped exponential backoff,
//     re-injecting `--resume-from` whenever a durable checkpoint exists —
//     so 3x SIGKILL mid-stream still converges to CSVs byte-identical to
//     an uninterrupted run (gated by the supervise-soak CI job);
//   * watches liveness via a heartbeat file the child refreshes (a child
//     whose heartbeat goes stale is hung, not slow) and progress via the
//     checkpoint high-water mark (a live child whose checkpoint stops
//     advancing is stalled); either trips a hard kill + restart;
//   * detects crash loops — N failures inside a sliding window of T with
//     no intervening progress — and gives up with a diagnosis naming the
//     last durable checkpoint, instead of flapping forever;
//   * never restarts: clean success (exit 0), usage errors (exit 2, a
//     restart would loop on the same bad flag), or an operator stop (the
//     supervisor forwards SIGTERM and exits with the child's code).
//
// Determinism: the loop takes its clock, sleep, progress and stop
// functions from `SuperviseHooks`, so tests drive the whole policy —
// backoff sequence, window expiry, exact give-up count — under a fake
// clock with a fake child (tests/test_supervise.cpp). The real process
// runner (`ProcessChild`, fork/exec/waitpid) lives behind the same
// interface.
//
// Every supervisor action counts a `supervise.*` metric; the tool also
// forwards launch/restart counts to the child via environment so the
// child's `/v1/metricsz` shows the supervision history.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/status.h"
#include "obs/metrics.h"

namespace dynamips::core {

struct SuperviseConfig {
  /// First restart delay; doubles per consecutive failure.
  std::uint64_t backoff_base_ms = 500;
  /// Backoff ceiling.
  std::uint64_t backoff_max_ms = 30000;
  /// Crash-loop detector: give up after this many failures inside
  /// `crash_loop_window_ms` with no intervening progress. 0 disables
  /// (restart forever).
  std::uint64_t crash_loop_failures = 5;
  std::uint64_t crash_loop_window_ms = 60000;
  /// Kill + restart a child whose progress token stops changing for this
  /// long. 0 disables (streams may legitimately idle between batches).
  std::uint64_t stall_timeout_ms = 0;
  /// Kill + restart a child whose heartbeat file goes stale for this
  /// long. 0 disables.
  std::uint64_t heartbeat_timeout_ms = 0;
  /// Child poll interval while waiting for exit.
  std::uint64_t poll_ms = 100;
  /// Grace between SIGTERM and SIGKILL on operator stop.
  std::uint64_t term_grace_ms = 10000;
};

/// Pure restart policy — deterministic given the timestamps fed to it.
class RestartPolicy {
 public:
  explicit RestartPolicy(const SuperviseConfig& config) : config_(config) {}

  /// Record a failure at `now_ms`; returns the backoff to sleep before
  /// the next launch: min(base << (consecutive-1), max).
  std::uint64_t on_failure(std::uint64_t now_ms);

  /// Durable progress happened (checkpoint high-water mark advanced):
  /// clear the failure history — a run that keeps advancing between
  /// crashes is healing, not looping.
  void on_progress();

  /// True once `crash_loop_failures` failures fall inside the trailing
  /// `crash_loop_window_ms` — trips at exactly N, not N+1.
  bool crash_looping(std::uint64_t now_ms) const;

  std::uint64_t consecutive_failures() const { return consecutive_; }

 private:
  SuperviseConfig config_;
  std::uint64_t consecutive_ = 0;
  std::deque<std::uint64_t> failures_;  // timestamps of recent failures
};

/// How one child run ended.
struct ChildOutcome {
  int exit_code = 0;
  int term_signal = 0;  ///< nonzero when killed by a signal
};

/// One restartable child. start() may be called again after an exit was
/// observed through poll().
class ChildProcess {
 public:
  virtual ~ChildProcess() = default;
  /// Launch with per-run extras (e.g. {"--resume-from", path}) appended
  /// to the base argv, and per-run environment overrides.
  virtual Status start(
      const std::vector<std::string>& extra_args,
      const std::vector<std::pair<std::string, std::string>>& extra_env) = 0;
  /// True once the child exited (outcome filled, child reaped).
  virtual bool poll(ChildOutcome* out) = 0;
  /// Request termination: SIGTERM (hard=false) or SIGKILL (hard=true).
  virtual void terminate(bool hard) = 0;
};

/// Real fork/exec/waitpid runner. argv[0] is the executable path.
class ProcessChild : public ChildProcess {
 public:
  explicit ProcessChild(std::vector<std::string> argv);
  ~ProcessChild() override;

  Status start(const std::vector<std::string>& extra_args,
               const std::vector<std::pair<std::string, std::string>>&
                   extra_env) override;
  bool poll(ChildOutcome* out) override;
  void terminate(bool hard) override;

  /// Child pid while running, -1 otherwise (diagnostics/logs).
  long pid() const { return pid_; }

 private:
  std::vector<std::string> argv_;
  long pid_ = -1;
};

/// Injectable environment for the supervisor loop. Unset members get the
/// real defaults (steady clock, interruptible sleep, no stop, no
/// progress/heartbeat tracking, stderr logging).
struct SuperviseHooks {
  std::function<std::uint64_t()> clock_ms;
  std::function<void(std::uint64_t)> sleep_ms;
  /// Operator shutdown (the supervisor's own SIGINT/SIGTERM token).
  std::function<bool()> stop;
  /// Checkpoint path to resume from at the next launch; empty = fresh.
  std::function<std::string()> resume_path;
  /// Opaque progress token (e.g. hash of the checkpoint file's
  /// mtime+size): any change counts as forward progress. 0 = unknown.
  std::function<std::uint64_t()> progress;
  /// Milliseconds since the child's heartbeat file was last refreshed;
  /// negative = no heartbeat observed yet.
  std::function<std::int64_t()> heartbeat_age_ms;
  /// Human diagnosis of the last durable checkpoint for the give-up
  /// message (e.g. "last durable checkpoint: out/study.ckpt, 4 batches").
  std::function<std::string()> describe_checkpoint;
  std::function<void(const std::string&)> log;
  /// `supervise.*` counter destination; null disables.
  obs::MetricsRegistry* metrics = nullptr;
};

struct SuperviseReport {
  int exit_code = 1;
  std::uint64_t launches = 0;
  std::uint64_t restarts = 0;
  std::uint64_t stall_kills = 0;
  bool gave_up = false;
  std::string diagnosis;  ///< filled on give-up / stop
};

/// Run the supervision loop until clean exit, usage error, operator stop,
/// or crash-loop give-up. Blocking; returns the outcome to report.
SuperviseReport supervise(ChildProcess& child, const SuperviseConfig& config,
                          const SuperviseHooks& hooks = {});

// ----------------------------------------------------------- child side

/// Heartbeat writer the *child* runs: a background thread rewriting
/// `path` every `interval_ms` so the supervisor can tell "hung" from
/// "slow". Stops (and joins) on destruction; the file is left behind —
/// its staleness is the signal.
class Heartbeat {
 public:
  Heartbeat() = default;
  ~Heartbeat() { stop(); }
  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  void start(std::string path, std::uint64_t interval_ms = 1000);
  void stop();
  bool running() const { return thread_.joinable(); }

 private:
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Age of `path` in milliseconds by mtime; -1 when missing/unreadable.
std::int64_t file_age_ms(const std::string& path);

/// Opaque progress token for a file: mixes mtime and size, 0 when the
/// file is missing. Equality means "no observable progress".
std::uint64_t file_progress_token(const std::string& path);

}  // namespace dynamips::core
