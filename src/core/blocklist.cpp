#include "core/blocklist.h"

#include <algorithm>

namespace dynamips::core {

namespace {

// Does `net64` fall inside the /len block anchored at `anchor64`?
bool in_block(std::uint64_t net64, std::uint64_t anchor64, int len) {
  if (len <= 0) return true;
  if (len >= 64) return net64 == anchor64;
  return (net64 >> (64 - len)) == (anchor64 >> (64 - len));
}

}  // namespace

BlockOutcome BlocklistSimulator::evaluate(const BlockPolicy& policy,
                                          std::uint32_t incident_stride) const {
  BlockOutcome outcome;
  outcome.policy = policy;

  for (std::size_t i = 0; i < population_.size(); i += incident_stride) {
    const simnet::SubscriberTimeline& offender = population_[i];
    if (offender.v6.empty()) continue;
    // The incident happens midway through the offender's history.
    const auto& mid_seg = offender.v6[offender.v6.size() / 2];
    Hour incident_at = mid_seg.start;
    std::uint64_t anchor = mid_seg.lan64;
    Hour block_until = incident_at + policy.duration_hours;

    ++outcome.incidents;

    // Evasion: does the offender hold a /64 outside the block while the
    // block is active?
    bool evaded = false;
    for (const auto& seg : offender.v6) {
      if (seg.end <= incident_at || seg.start >= block_until) continue;
      if (!in_block(seg.lan64, anchor, policy.prefix_len)) {
        evaded = true;
        break;
      }
    }
    outcome.evaded += evaded;

    // Collateral: bystanders whose active /64 intersects the block window
    // inside the blocked prefix. (The offender's own household is not
    // collateral.)
    for (std::size_t j = 0; j < population_.size(); ++j) {
      if (j == i) continue;
      const auto& bystander = population_[j];
      for (const auto& seg : bystander.v6) {
        if (seg.end <= incident_at || seg.start >= block_until) continue;
        if (in_block(seg.lan64, anchor, policy.prefix_len)) {
          ++outcome.collateral_subscribers;
          break;  // count each bystander once per incident
        }
      }
    }
  }
  return outcome;
}

}  // namespace dynamips::core
