#include "core/assoc.h"

#include <algorithm>

#include "io/checkpoint.h"
#include "stats/extsort.h"

namespace dynamips::core {

namespace {

/// One accepted association tuple, flattened for the /64 grouping sort.
struct Tuple {
  std::uint64_t net64;
  std::uint32_t day;
  net::Prefix4 v4;
};

struct TupleLess {
  bool operator()(const Tuple& a, const Tuple& b) const {
    return a.net64 < b.net64;
  }
};

/// (/24, /64) incidence pair for the per-/24 degree count.
struct Pair {
  net::Prefix4 v4;
  std::uint64_t net64;
};

struct PairLess {
  bool operator()(const Pair& a, const Pair& b) const {
    if (a.v4 != b.v4) return a.v4 < b.v4;
    return a.net64 < b.net64;
  }
};

}  // namespace

void CdnAnalyzer::add_log(const cdn::AssociationLog& log) {
  bool mobile = mobile_asns_.count(log.asn) > 0;
  AsnAssocStats& asn_stats = by_asn_[log.asn];
  asn_stats.asn = log.asn;
  asn_stats.mobile = mobile;
  asn_stats.registry = log.registry;

  RegistryClass cls{log.registry, mobile};
  auto& reg_durations = registry_durations_[cls];
  auto& zeros = zero_counts_[cls];

  // The analysis proper is a pair of streaming consumers over sorted
  // sequences — fed either from an in-memory stable sort (the default) or
  // from an external-merge drain (spill_mb > 0). Both orders are
  // identical by the sorter's stability contract, so both paths produce
  // byte-identical analyzer state.
  //
  // Consumer 1: tuples sorted by /64. Segments association runs (same /24,
  // gaps no longer than max_gap_days) and tallies the /64-level stats.
  bool in_group = false;
  bool multi_24 = false;
  std::uint64_t cur_net64 = 0;
  std::uint32_t run_start = 0;
  std::uint32_t run_last = 0;
  net::Prefix4 run_24;
  auto close_run = [&] {
    double days = double(run_last - run_start + 1);
    asn_stats.durations_days.push_back(days);
    reg_durations.push_back(days);
  };
  auto close_group = [&] {
    close_run();
    if (multi_24) {
      ++multi_24_64s_[mobile];
    } else {
      ++single_24_64s_[mobile];
    }
  };
  auto feed_tuple = [&](const Tuple& t) {
    if (!in_group || t.net64 != cur_net64) {
      if (in_group) close_group();
      in_group = true;
      cur_net64 = t.net64;
      ++asn_stats.unique_64s;
      zeros.add(classify_trailing_zeros(t.net64));
      multi_24 = false;
      run_start = run_last = t.day;
      run_24 = t.v4;
      return;
    }
    multi_24 |= t.v4 != run_24;
    bool gap = t.day > run_last + options_.max_gap_days;
    if (t.v4 != run_24 || gap) {
      close_run();
      run_start = t.day;
      run_24 = t.v4;
    }
    run_last = t.day;
  };
  auto finish_tuples = [&] {
    if (in_group) close_group();
  };

  // Consumer 2: (v4, net64) pairs in sorted order. Skips exact repeats and
  // counts unique /64s per /24.
  bool have_pair = false;
  Pair prev_pair{};
  std::uint32_t degree = 0;
  auto feed_pair = [&](const Pair& p) {
    if (have_pair && p.v4 == prev_pair.v4 && p.net64 == prev_pair.net64)
      return;
    if (have_pair && p.v4 != prev_pair.v4) {
      degrees_.emplace_back(degree, mobile);
      degree = 0;
    }
    have_pair = true;
    prev_pair = p;
    ++degree;
  };
  auto finish_pairs = [&] {
    if (have_pair) degrees_.emplace_back(degree, mobile);
  };

  auto accept = [&](const cdn::AssociationRecord& rec) {
    if (options_.require_asn_match && rec.asn4 != rec.asn6) {
      ++asn_stats.mismatched;
      ++total_mismatched_;
      return false;
    }
    ++asn_stats.tuples;
    ++total_tuples_;
    return true;
  };

  if (options_.spill_mb == 0) {
    // In-memory path: flatten the accepted tuples once, then group by /64
    // with a single stable sort. Compared to a hash-map-of-vectors this
    // does no per-/64 node allocation (the dominant cost on the sharded
    // path) and iterates groups in a canonical order, independent of any
    // container history. Both scratch vectors live in the per-shard arena:
    // after the first few logs the steady state allocates nothing per
    // call.
    arena_.reset();
    ArenaVector<Tuple> tuples{ArenaAllocator<Tuple>(arena_)};
    tuples.reserve(log.records.size());
    for (const auto& rec : log.records) {
      if (!accept(rec)) continue;
      tuples.push_back({rec.v6_64.address().network64(), rec.day, rec.v4_24});
    }
    // Stable: records arrive day-sorted per log; keep that order per /64.
    std::stable_sort(tuples.begin(), tuples.end(), TupleLess{});
    for (const Tuple& t : tuples) feed_tuple(t);
    finish_tuples();

    ArenaVector<Pair> pairs{ArenaAllocator<Pair>(arena_)};
    pairs.reserve(tuples.size());
    for (const Tuple& t : tuples) pairs.push_back({t.v4, t.net64});
    std::sort(pairs.begin(), pairs.end(), PairLess{});
    for (const Pair& p : pairs) feed_pair(p);
    finish_pairs();
    return;
  }

  // Out-of-core path: the same sorts through the external merge, working
  // set bounded by spill_mb per shard. The budget is split between the two
  // live sorters (the pair sorter fills while the tuple sorter drains).
  stats::ExternalSorter<Tuple, TupleLess>::Options topt;
  topt.budget_bytes = options_.spill_mb * 1024 * 1024 / 2;
  topt.spill_dir = options_.spill_dir;
  stats::ExternalSorter<Pair, PairLess>::Options popt;
  popt.budget_bytes = topt.budget_bytes;
  popt.spill_dir = options_.spill_dir;

  stats::ExternalSorter<Tuple, TupleLess> tuple_sorter(topt);
  stats::ExternalSorter<Pair, PairLess> pair_sorter(popt);
  for (const auto& rec : log.records) {
    if (!accept(rec)) continue;
    tuple_sorter.push(
        {rec.v6_64.address().network64(), rec.day, rec.v4_24});
  }
  tuple_sorter.drain([&](const Tuple& t) {
    feed_tuple(t);
    pair_sorter.push({t.v4, t.net64});
  });
  finish_tuples();
  pair_sorter.drain(feed_pair);
  finish_pairs();
  spill_runs_ += tuple_sorter.spilled_runs() + pair_sorter.spilled_runs();
  spill_bytes_ += tuple_sorter.spilled_bytes() + pair_sorter.spilled_bytes();
}

void CdnAnalyzer::merge(CdnAnalyzer&& other) {
  for (auto& [asn, stats] : other.by_asn_) {
    auto [it, inserted] = by_asn_.try_emplace(asn, std::move(stats));
    if (!inserted) it->second.merge(stats);
  }
  for (auto& [cls, durations] : other.registry_durations_) {
    auto [it, inserted] = registry_durations_.try_emplace(
        cls, std::move(durations));
    if (!inserted)
      it->second.insert(it->second.end(), durations.begin(), durations.end());
  }
  degrees_.insert(degrees_.end(), other.degrees_.begin(),
                  other.degrees_.end());
  for (auto& [cls, counts] : other.zero_counts_)
    zero_counts_[cls].merge(counts);
  for (int m = 0; m < 2; ++m) {
    single_24_64s_[m] += other.single_24_64s_[m];
    multi_24_64s_[m] += other.multi_24_64s_[m];
  }
  total_tuples_ += other.total_tuples_;
  total_mismatched_ += other.total_mismatched_;
  spill_runs_ += other.spill_runs_;
  spill_bytes_ += other.spill_bytes_;
}

CdnSnapshot CdnAnalyzer::snapshot() const {
  CdnSnapshot out;
  out.by_asn_ = by_asn_;
  out.registry_durations_ = registry_durations_;
  out.degrees_ = degrees_;
  out.zero_counts_ = zero_counts_;
  for (int m = 0; m < 2; ++m) {
    out.single_24_64s_[m] = single_24_64s_[m];
    out.multi_24_64s_[m] = multi_24_64s_[m];
  }
  out.total_tuples_ = total_tuples_;
  out.total_mismatched_ = total_mismatched_;
  return out;
}

double CdnAnalyzer::fraction_64s_with_single_24(bool mobile) const {
  std::uint64_t s = single_24_64s_[mobile];
  std::uint64_t m = multi_24_64s_[mobile];
  return (s + m) ? double(s) / double(s + m) : 0.0;
}

namespace {

void save_doubles(io::ckpt::Writer& w, const std::vector<double>& v) {
  w.u64(v.size());
  for (double d : v) w.f64(d);
}

bool load_doubles(io::ckpt::Reader& r, std::vector<double>& v) {
  v.clear();
  std::uint64_t n = r.size();
  v.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) v.push_back(r.f64());
  return r.ok();
}

constexpr std::uint8_t kMaxRegistry =
    std::uint8_t(bgp::Registry::kAfrinic);

bool load_registry_class(io::ckpt::Reader& r, RegistryClass& cls) {
  std::uint8_t reg = r.u8();
  std::uint8_t mobile = r.u8();
  if (reg > kMaxRegistry || mobile > 1) return false;
  cls.registry = bgp::Registry(reg);
  cls.mobile = mobile != 0;
  return r.ok();
}

}  // namespace

void CdnAnalyzer::save(io::ckpt::Writer& w) const {
  w.u64(by_asn_.size());
  for (const auto& [asn, stats] : by_asn_) {
    w.u32(asn);
    w.u32(stats.asn);
    w.u8(stats.mobile ? 1 : 0);
    w.u8(std::uint8_t(stats.registry));
    save_doubles(w, stats.durations_days);
    w.u64(stats.tuples);
    w.u64(stats.mismatched);
    w.u64(stats.unique_64s);
  }
  w.u64(registry_durations_.size());
  for (const auto& [cls, durations] : registry_durations_) {
    w.u8(std::uint8_t(cls.registry));
    w.u8(cls.mobile ? 1 : 0);
    save_doubles(w, durations);
  }
  w.u64(degrees_.size());
  for (const auto& [count, mobile] : degrees_) {
    w.u32(count);
    w.u8(mobile ? 1 : 0);
  }
  w.u64(zero_counts_.size());
  for (const auto& [cls, counts] : zero_counts_) {
    w.u8(std::uint8_t(cls.registry));
    w.u8(cls.mobile ? 1 : 0);
    for (std::uint64_t c : counts.counts) w.u64(c);
  }
  for (int m = 0; m < 2; ++m) {
    w.u64(single_24_64s_[m]);
    w.u64(multi_24_64s_[m]);
  }
  w.u64(total_tuples_);
  w.u64(total_mismatched_);
}

bool CdnAnalyzer::load(io::ckpt::Reader& r) {
  by_asn_.clear();
  registry_durations_.clear();
  degrees_.clear();
  zero_counts_.clear();
  std::uint64_t n_asn = r.size();
  for (std::uint64_t i = 0; i < n_asn && r.ok(); ++i) {
    bgp::Asn key = r.u32();
    AsnAssocStats& stats = by_asn_[key];
    stats.asn = r.u32();
    std::uint8_t mobile = r.u8();
    std::uint8_t reg = r.u8();
    if (reg > kMaxRegistry || mobile > 1) return false;
    stats.mobile = mobile != 0;
    stats.registry = bgp::Registry(reg);
    if (!load_doubles(r, stats.durations_days)) return false;
    stats.tuples = r.u64();
    stats.mismatched = r.u64();
    stats.unique_64s = r.u64();
  }
  std::uint64_t n_reg = r.size();
  for (std::uint64_t i = 0; i < n_reg && r.ok(); ++i) {
    RegistryClass cls;
    if (!load_registry_class(r, cls)) return false;
    if (!load_doubles(r, registry_durations_[cls])) return false;
  }
  std::uint64_t n_deg = r.size();
  degrees_.reserve(n_deg);
  for (std::uint64_t i = 0; i < n_deg && r.ok(); ++i) {
    std::uint32_t count = r.u32();
    std::uint8_t mobile = r.u8();
    if (mobile > 1) return false;
    degrees_.emplace_back(count, mobile != 0);
  }
  std::uint64_t n_zero = r.size();
  for (std::uint64_t i = 0; i < n_zero && r.ok(); ++i) {
    RegistryClass cls;
    if (!load_registry_class(r, cls)) return false;
    for (std::uint64_t& c : zero_counts_[cls].counts) c = r.u64();
  }
  for (int m = 0; m < 2; ++m) {
    single_24_64s_[m] = r.u64();
    multi_24_64s_[m] = r.u64();
  }
  total_tuples_ = r.u64();
  total_mismatched_ = r.u64();
  return r.ok();
}

}  // namespace dynamips::core
