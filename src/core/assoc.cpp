#include "core/assoc.h"

#include <algorithm>

namespace dynamips::core {

void CdnAnalyzer::add_log(const cdn::AssociationLog& log) {
  bool mobile = mobile_asns_.count(log.asn) > 0;
  AsnAssocStats& asn_stats = by_asn_[log.asn];
  asn_stats.asn = log.asn;
  asn_stats.mobile = mobile;
  asn_stats.registry = log.registry;

  RegistryClass cls{log.registry, mobile};
  auto& reg_durations = registry_durations_[cls];
  auto& zeros = zero_counts_[cls];

  // Per-/64 day series and per-/24 /64 sets, local to this log.
  struct DayObs {
    std::uint32_t day;
    net::Prefix4 v4;
  };
  std::unordered_map<std::uint64_t, std::vector<DayObs>> by_64;
  std::unordered_map<net::Prefix4, std::unordered_set<std::uint64_t>> by_24;

  for (const auto& rec : log.records) {
    if (options_.require_asn_match && rec.asn4 != rec.asn6) {
      ++asn_stats.mismatched;
      ++total_mismatched_;
      continue;
    }
    ++asn_stats.tuples;
    ++total_tuples_;
    std::uint64_t net64 = rec.v6_64.address().network64();
    by_64[net64].push_back({rec.day, rec.v4_24});
    by_24[rec.v4_24].insert(net64);
  }

  for (auto& [net64, obs] : by_64) {
    ++asn_stats.unique_64s;
    zeros.add(classify_trailing_zeros(net64));

    // Records arrive day-sorted per log; dedupe same-day repeats.
    std::unordered_set<net::Prefix4> distinct_24s;
    std::uint32_t run_start = obs.front().day;
    std::uint32_t run_last = obs.front().day;
    net::Prefix4 run_24 = obs.front().v4;
    distinct_24s.insert(run_24);
    auto close_run = [&](std::uint32_t last) {
      double days = double(last - run_start + 1);
      asn_stats.durations_days.push_back(days);
      reg_durations.push_back(days);
    };
    for (std::size_t i = 1; i < obs.size(); ++i) {
      const DayObs& o = obs[i];
      distinct_24s.insert(o.v4);
      bool gap = o.day > run_last + options_.max_gap_days;
      if (o.v4 != run_24 || gap) {
        close_run(run_last);
        run_start = o.day;
        run_24 = o.v4;
      }
      run_last = o.day;
    }
    close_run(run_last);

    if (distinct_24s.size() == 1) {
      ++single_24_64s_[mobile];
    } else {
      ++multi_24_64s_[mobile];
    }
  }

  degrees_.reserve(degrees_.size() + by_24.size());
  for (const auto& [p24, set64] : by_24)
    degrees_.emplace_back(std::uint32_t(set64.size()), mobile);
}

double CdnAnalyzer::fraction_64s_with_single_24(bool mobile) const {
  std::uint64_t s = single_24_64s_[mobile];
  std::uint64_t m = multi_24_64s_[mobile];
  return (s + m) ? double(s) / double(s + m) : 0.0;
}

}  // namespace dynamips::core
