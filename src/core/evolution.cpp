#include "core/evolution.h"

#include "simnet/time.h"

namespace dynamips::core {

void EvolutionAnalyzer::add_probe(const CleanProbe& probe) {
  bool ds = DurationAnalyzer::is_dual_stack(probe);
  auto spans4 = extract_spans4(probe.v4);
  for (const auto& td : sandwiched_timed4(spans4, options_)) {
    YearIndex year = YearIndex(td.start / simnet::kHoursPerYear);
    YearDurations& bucket = buckets_[{probe.asn, year}];
    (ds ? bucket.v4_ds : bucket.v4_nds).add(td.duration);
  }
  auto spans6 = extract_spans6(probe.v6);
  for (const auto& td : sandwiched_timed6(spans6, options_)) {
    YearIndex year = YearIndex(td.start / simnet::kHoursPerYear);
    buckets_[{probe.asn, year}].v6.add(td.duration);
  }
}

void EvolutionAnalyzer::merge(EvolutionAnalyzer&& other) {
  for (auto& [key, bucket] : other.buckets_) buckets_[key].merge(bucket);
}

std::map<YearIndex, double> EvolutionAnalyzer::trend(
    bgp::Asn asn, std::uint64_t threshold_hours,
    const stats::TotalTimeFraction YearDurations::*split) const {
  std::map<YearIndex, double> out;
  std::vector<std::uint64_t> t{threshold_hours};
  for (const auto& [key, bucket] : buckets_) {
    if (key.first != asn) continue;
    const stats::TotalTimeFraction& ttf = bucket.*split;
    if (ttf.empty()) continue;
    out[key.second] = ttf.cumulative(t)[0];
  }
  return out;
}

}  // namespace dynamips::core
