#include "core/anonymize.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace dynamips::core {

namespace {

std::optional<int> modal(const std::map<int, int>& hist) {
  if (hist.empty()) return std::nullopt;
  auto best = hist.begin();
  for (auto it = hist.begin(); it != hist.end(); ++it)
    if (it->second > best->second) best = it;
  return best->first;
}

}  // namespace

AnonymizationPolicy derive_policy(const AtlasStudy& study, int margin) {
  AnonymizationPolicy policy;
  for (const auto& [asn, pools] : study.pool_inference) {
    std::map<int, int> pool_hist;
    for (const auto& p : pools) ++pool_hist[p.pool_len];
    auto pool_len = modal(pool_hist);
    if (!pool_len) continue;

    int len = *pool_len;
    // Never truncate longer than `margin` bits short of the subscriber
    // delegation: a /56-delegating ISP must not be stored at /55.
    auto iit = study.subscriber_inference.find(asn);
    if (iit != study.subscriber_inference.end()) {
      std::map<int, int> sub_hist;
      for (const auto& inf : iit->second) ++sub_hist[inf.inferred_len];
      if (auto sub_len = modal(sub_hist))
        len = std::min(len, *sub_len - margin);
    }
    if (len < 8) len = 8;
    policy.truncation_len[asn] = len;
  }
  return policy;
}

net::Prefix6 anonymize(const net::IPv6Address& addr,
                       const AnonymizationPolicy& policy,
                       const bgp::Rib& rib) {
  bgp::Asn asn = rib.asn_of(addr);
  return net::Prefix6{addr, policy.length_for(asn)};
}

KAnonymityResult audit_k_anonymity(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>&
        subscriber_net64s,
    int len) {
  KAnonymityResult result;
  result.truncation_len = len;
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint32_t>>
      buckets;
  for (const auto& [subscriber, net64] : subscriber_net64s) {
    std::uint64_t key = len >= 64 ? net64 : len <= 0 ? 0 : net64 >> (64 - len);
    buckets[key].insert(subscriber);
  }
  result.buckets = buckets.size();
  if (buckets.empty()) return result;
  std::vector<double> sizes;
  sizes.reserve(buckets.size());
  result.min_bucket = ~std::uint64_t(0);
  for (const auto& [key, subs] : buckets) {
    sizes.push_back(double(subs.size()));
    result.min_bucket = std::min<std::uint64_t>(result.min_bucket,
                                                subs.size());
    result.singleton_buckets += subs.size() == 1;
  }
  std::sort(sizes.begin(), sizes.end());
  result.median_bucket = sizes[sizes.size() / 2];
  return result;
}

}  // namespace dynamips::core
