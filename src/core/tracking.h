// tracking.h — device tracking across renumbering via interface
// identifiers (§2.3, §6).
//
// The paper observes that devices using EUI-64 IIDs (the MAC-derived host
// part) remain trackable across network renumbering: the /64 changes, the
// IID does not. Privacy extensions (RFC 4941) rotate the IID and defeat
// this. The analyzer links a probe's v6 observations by IID and reports,
// per device, how long and across how many /64s it could be followed —
// the quantitative backing for the paper's "trackable across network
// address changes" claim.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/sanitize.h"

namespace dynamips::core {

/// One device (IID) as seen across a probe's history.
struct DeviceTrack {
  std::uint32_t probe_id = 0;
  std::uint64_t iid = 0;
  bool eui64 = false;          ///< carries the ff:fe EUI-64 marker
  Hour first_seen = 0;
  Hour last_seen = 0;
  std::uint32_t distinct_64s = 0;  ///< networks crossed under this IID

  Hour tracked_span() const { return last_seen - first_seen; }
  /// Trackable across renumbering: followed through >= 2 networks.
  bool survives_renumbering() const { return distinct_64s >= 2; }
};

/// Aggregated per-AS tracking exposure.
struct AsTrackingStats {
  bgp::Asn asn = 0;
  std::uint64_t probes = 0;        ///< probes with any v6 history
  std::uint64_t eui64_probes = 0;  ///< probes exposing an EUI-64 device
  std::uint64_t devices = 0;
  std::uint64_t eui64_devices = 0;
  std::uint64_t cross_network_tracked = 0;  ///< EUI-64 devices followed
                                            ///< across >= 2 /64s
  std::vector<double> eui64_tracked_days;   ///< tracked span per EUI-64 dev

  /// Absorb another shard's stats for the same AS; tracked spans are
  /// appended after ours, so merging shards in index order preserves the
  /// serial per-device ordering.
  void merge(const AsTrackingStats& o) {
    probes += o.probes;
    eui64_probes += o.eui64_probes;
    devices += o.devices;
    eui64_devices += o.eui64_devices;
    cross_network_tracked += o.cross_network_tracked;
    eui64_tracked_days.insert(eui64_tracked_days.end(),
                              o.eui64_tracked_days.begin(),
                              o.eui64_tracked_days.end());
  }

  /// Share of probes whose household exposes at least one stable EUI-64
  /// device — the subscribers trackable across renumbering (§6).
  double eui64_probe_share() const {
    return probes ? double(eui64_probes) / double(probes) : 0.0;
  }
  /// Of the EUI-64 devices that saw a renumbering, the share still
  /// followable afterwards (by construction of IID linking this is 1.0
  /// unless the IID itself changed).
  double cross_network_share() const {
    return eui64_devices ? double(cross_network_tracked) /
                               double(eui64_devices)
                         : 0.0;
  }
};

/// Streaming tracking analyzer over cleaned probes.
class TrackingAnalyzer {
 public:
  /// Extract per-device tracks from one probe's history.
  static std::vector<DeviceTrack> tracks_of(const CleanProbe& probe);

  void add_probe(const CleanProbe& probe);

  // Sink interface (core/parallel.h); merge shards in index order so the
  // per-device tracked-span vectors keep the serial append order.
  void add(const CleanProbe& probe) { add_probe(probe); }
  void merge(TrackingAnalyzer&& other);
  void finalize() {}

  const std::map<bgp::Asn, AsTrackingStats>& by_as() const { return by_as_; }

  /// Finalized per-AS results without consuming the accumulator
  /// (core/parallel.h SnapshotAnalyzer).
  std::map<bgp::Asn, AsTrackingStats> snapshot() const { return by_as_; }

 private:
  std::map<bgp::Asn, AsTrackingStats> by_as_;
};

}  // namespace dynamips::core
