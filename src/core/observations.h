// observations.h — analysis-side view of a probe's measurement history.
//
// The analysis pipeline is deliberately decoupled from the generator: it
// consumes plain observation series (what the public Atlas dataset provides)
// and never touches simulator ground truth. ProbeObservations is that
// boundary type; io/ can also populate it from CSV for real data.
#pragma once

#include <cstdint>
#include <vector>

#include "atlas/echo.h"
#include "core/intern.h"
#include "netaddr/ipv4.h"
#include "netaddr/ipv6.h"

namespace dynamips::core {

using simnet::Hour;

/// One v4 echo observation.
struct Obs4 {
  Hour hour = 0;
  net::IPv4Address addr;     ///< publicly visible address (X-Client-IP)
  bool src_public = false;   ///< src_addr was global (atypical, no NAT)
};

/// One v6 echo observation.
struct Obs6 {
  Hour hour = 0;
  net::IPv6Address addr;       ///< publicly visible address
  bool src_matches = true;     ///< src_addr equalled X-Client-IP (typical)
};

/// All observations of one probe, hour-ordered per family. Tags are
/// interned ids (core::tag_pool()), not strings — a probe never copies
/// tag text on its way through the pipeline.
struct ProbeObservations {
  std::uint32_t probe_id = 0;
  std::vector<TagId> tags;
  std::vector<Obs4> v4;
  std::vector<Obs6> v6;
};

/// Convert a raw echo series into the analysis-side representation.
ProbeObservations from_series(const atlas::ProbeSeries& series);

}  // namespace dynamips::core
