#include "core/tracking.h"

#include <unordered_map>
#include <unordered_set>

#include "netaddr/iid.h"
#include "simnet/time.h"

namespace dynamips::core {

std::vector<DeviceTrack> TrackingAnalyzer::tracks_of(
    const CleanProbe& probe) {
  struct Acc {
    Hour first = 0, last = 0;
    std::unordered_set<std::uint64_t> nets;
    bool seen = false;
  };
  std::unordered_map<std::uint64_t, Acc> by_iid;
  for (const auto& o : probe.v6) {
    Acc& acc = by_iid[o.addr.iid()];
    if (!acc.seen) {
      acc.first = o.hour;
      acc.seen = true;
    }
    acc.last = o.hour;
    acc.nets.insert(o.addr.network64());
  }
  std::vector<DeviceTrack> out;
  out.reserve(by_iid.size());
  for (const auto& [iid, acc] : by_iid) {
    DeviceTrack t;
    t.probe_id = probe.probe_id;
    t.iid = iid;
    t.eui64 = net::is_eui64_iid(iid);
    t.first_seen = acc.first;
    t.last_seen = acc.last;
    t.distinct_64s = std::uint32_t(acc.nets.size());
    out.push_back(t);
  }
  return out;
}

void TrackingAnalyzer::merge(TrackingAnalyzer&& other) {
  for (auto& [asn, stats] : other.by_as_) {
    auto [it, inserted] = by_as_.try_emplace(asn, std::move(stats));
    if (!inserted) it->second.merge(stats);
  }
}

void TrackingAnalyzer::add_probe(const CleanProbe& probe) {
  if (probe.v6.empty()) return;
  AsTrackingStats& as = by_as_[probe.asn];
  as.asn = probe.asn;
  ++as.probes;
  bool any_eui64 = false;
  for (const DeviceTrack& t : tracks_of(probe)) {
    ++as.devices;
    if (!t.eui64) continue;
    ++as.eui64_devices;
    any_eui64 = true;
    as.eui64_tracked_days.push_back(double(t.tracked_span()) /
                                    double(simnet::kHoursPerDay));
    if (t.survives_renumbering()) ++as.cross_network_tracked;
  }
  if (any_eui64) ++as.eui64_probes;
}

}  // namespace dynamips::core
