// pipeline.h — end-to-end study runners.
//
// Convenience orchestration used by the benchmark harness, the examples and
// the integration tests: generate the synthetic dataset, sanitize it, and
// run every analyzer, returning one results object per study. Probes/logs
// are processed one at a time so memory stays flat regardless of scale, and
// the index space is sharded across a fixed thread pool (core/parallel.h):
// every analyzer is a mergeable sink, each shard owns a private analyzer
// set, and shards are reduced in index order, so results are byte-identical
// for every `threads` setting (`threads = 1` is the plain serial path).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "atlas/generator.h"
#include "cdn/generator.h"
#include "core/assoc.h"
#include "core/durations.h"
#include "core/evolution.h"
#include "core/inference.h"
#include "core/parallel.h"
#include "core/sanitize.h"
#include "core/shutdown.h"
#include "core/spatial.h"
#include "core/status.h"
#include "core/tracking.h"
#include "io/checkpoint.h"
#include "io/readers.h"
#include "obs/metrics.h"

namespace dynamips::core {

/// The analyzer sink concepts the pipeline runs on (see core/parallel.h).
template <typename A>
concept ProbeAnalyzer = SinkOf<A, CleanProbe>;
template <typename A>
concept LogAnalyzer = SinkOf<A, cdn::AssociationLog>;

static_assert(ProbeAnalyzer<DurationAnalyzer>);
static_assert(ProbeAnalyzer<SpatialAnalyzer>);
static_assert(ProbeAnalyzer<InferenceCollector>);
static_assert(ProbeAnalyzer<EvolutionAnalyzer>);
static_assert(ProbeAnalyzer<TrackingAnalyzer>);
static_assert(LogAnalyzer<CdnAnalyzer>);
static_assert(MergeableAnalyzer<Sanitizer>);
// Every analyzer is re-finalizable: snapshot() yields finalized, read-only
// results without consuming the accumulator, so a long-lived stream can
// re-finalize after each batch window and keep adding.
static_assert(SnapshotAnalyzer<Sanitizer>);
static_assert(SnapshotAnalyzer<DurationAnalyzer>);
static_assert(SnapshotAnalyzer<SpatialAnalyzer>);
static_assert(SnapshotAnalyzer<InferenceCollector>);
static_assert(SnapshotAnalyzer<EvolutionAnalyzer>);
static_assert(SnapshotAnalyzer<TrackingAnalyzer>);
static_assert(SnapshotAnalyzer<CdnAnalyzer>);
// Shard-local metric buffers ride the same ordered reduction as analyzers.
static_assert(MergeableAnalyzer<obs::MetricsSink>);

// ----------------------------------------------------- crash-safe running
//
// Every study entrypoint can run under supervision: work is dispatched in
// rounds, a shutdown token is polled at round boundaries, and the full
// mid-run state (shard progress + analyzer state + metrics) is periodically
// snapshotted to a checkpoint file (io/checkpoint.h). A run interrupted by
// SIGINT/SIGTERM or a deadline writes a final checkpoint and returns
// kCancelled; resuming from that checkpoint produces results byte-identical
// to an uninterrupted run, at any thread count (the shard partition is
// restored from the checkpoint, so the thread knob only sizes the pool).

struct CheckpointConfig {
  /// Periodic-checkpoint interval, in work items per shard per round (one
  /// Atlas item is one probe's full hourly series; one CDN item is one
  /// population entry's log). 0 disables periodic checkpoints; a shutdown
  /// token may still trigger a final one.
  std::uint64_t every_items = 0;
  /// Checkpoint file path. Required when `every_items > 0` or when a token
  /// is set and an interrupt snapshot is wanted; `.prev` / `.tmp` siblings
  /// are managed next to it.
  std::string path;
  /// Cooperative-shutdown flag polled at round boundaries (never mid-item).
  /// Null disables polling.
  ShutdownToken* token = nullptr;
  /// Checkpoint to resume from; null starts fresh. The study validates the
  /// checkpoint kind, config fingerprint and item count and rejects
  /// mismatches with kFailedPrecondition.
  const io::StudyCheckpoint* resume = nullptr;

  /// Multi-process sharding: this process analyzes slice `shard_index` of
  /// `shard_count` contiguous item slices (each further subdivided across
  /// its threads) and, instead of finalizing, writes a completed
  /// checkpoint to `path` — the merge wire format. A merge run combines
  /// the per-process checkpoints (io::combine_shard_checkpoints) and
  /// resumes from the result; ordered reduction over the combined shard
  /// table makes the merged study byte-identical to a single-process run.
  /// shard_count <= 1 (the default) disables sharding. Neither field
  /// enters any config fingerprint — like the thread count, sharding is
  /// results-invariant.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;

  bool sharded() const { return shard_count > 1; }

  /// True when any supervision feature is active.
  bool active() const { return every_items > 0 || token != nullptr; }
};

struct AtlasStudyConfig {
  atlas::AtlasConfig atlas;
  SanitizeOptions sanitize;
  ChangeOptions changes;
  /// Shard/thread count: 0 = hardware_concurrency, 1 = serial. Results are
  /// identical for every value; only wall-clock changes.
  unsigned threads = 0;
  /// Observability sink: when non-null the pipeline records throughput
  /// counters, per-analyzer phase timings, and shard-imbalance gauges into
  /// per-shard buffers and merges them here after the ordered reduction.
  /// Null (the default) skips all metric work, including clock reads, and
  /// never changes study results either way.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Everything the Atlas-side benches print.
struct AtlasStudy {
  SanitizeStats sanitize;
  std::map<bgp::Asn, AsDurationStats> durations;
  std::map<bgp::Asn, AsSpatialStats> spatial;
  std::map<bgp::Asn, std::vector<SubscriberInference>> subscriber_inference;
  std::map<bgp::Asn, std::vector<PoolInference>> pool_inference;
  std::map<bgp::Asn, std::string> as_names;
  bgp::Rib rib;
};

/// Run the full Atlas pipeline over the given ISP profiles.
AtlasStudy run_atlas_study(const std::vector<simnet::IspProfile>& isps,
                           const AtlasStudyConfig& config);

/// Supervised variant: honors CheckpointConfig (periodic checkpoints,
/// shutdown polling, resume). Returns kCancelled when interrupted (after
/// writing a final checkpoint when a path is configured) and
/// kFailedPrecondition / kDataLoss for unusable resume state. With a
/// default CheckpointConfig this is exactly run_atlas_study.
Expected<AtlasStudy> run_atlas_study_supervised(
    const std::vector<simnet::IspProfile>& isps,
    const AtlasStudyConfig& config, const CheckpointConfig& checkpoint = {});

struct CdnStudyConfig {
  cdn::CdnConfig cdn;
  AssocOptions assoc;
  /// Shard/thread count: 0 = hardware_concurrency, 1 = serial.
  unsigned threads = 0;
  /// Observability sink; see AtlasStudyConfig::metrics.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Everything the CDN-side benches print. `analyzer` is a finalized,
/// read-only snapshot of the accumulator (core/assoc.h CdnSnapshot); the
/// accumulator itself stays live inside the pipeline so streaming runs can
/// keep adding after extraction.
struct CdnStudy {
  CdnSnapshot analyzer;
  std::map<bgp::Asn, std::string> asn_names;
};

/// Run the full CDN pipeline over the given population.
CdnStudy run_cdn_study(const std::vector<cdn::PopulationEntry>& population,
                       const CdnStudyConfig& config);

/// Supervised variant; see run_atlas_study_supervised.
Expected<CdnStudy> run_cdn_study_supervised(
    const std::vector<cdn::PopulationEntry>& population,
    const CdnStudyConfig& config, const CheckpointConfig& checkpoint = {});

// ------------------------------------------------- file-driven entrypoints
//
// The _from_files variants run the identical analyses over datasets loaded
// from exported CSVs (io/readers.h) instead of the in-process generators:
// real-data mode. They are fully fallible — ingestion failures (missing
// file, error budget exceeded) and shard-task exceptions come back as a
// `Status`; no exception escapes and no worker ever reaches
// std::terminate. A clean export of a synthetic dataset produces results
// byte-identical to the generator path at the same seed and any `threads`.

struct AtlasFileStudyConfig {
  SanitizeOptions sanitize;
  ChangeOptions changes;
  /// Shard/thread count: 0 = hardware_concurrency, 1 = serial. Results are
  /// identical for every value; only wall-clock changes.
  unsigned threads = 0;
  /// Observability sink; see AtlasStudyConfig::metrics. Ingestion counters
  /// (`ingest.*`) are recorded here as well.
  obs::MetricsRegistry* metrics = nullptr;
  /// Ingestion hardening knobs: error budget, quarantine sink, line caps.
  io::ReaderOptions reader;
};

/// Load echo datasets from `paths` (later files merge into earlier probes)
/// and run the full Atlas pipeline over them. `isps` provides the RIB and
/// AS names, exactly as in run_atlas_study. `ingest`, when non-null,
/// receives the ingestion accounting even on failure.
Expected<AtlasStudy> run_atlas_study_from_files(
    const std::vector<std::string>& paths,
    const std::vector<simnet::IspProfile>& isps,
    const AtlasFileStudyConfig& config, io::IngestStats* ingest = nullptr,
    const CheckpointConfig& checkpoint = {});

struct CdnFileStudyConfig {
  AssocOptions assoc;
  /// Shard/thread count: 0 = hardware_concurrency, 1 = serial.
  unsigned threads = 0;
  /// Observability sink; see AtlasStudyConfig::metrics.
  obs::MetricsRegistry* metrics = nullptr;
  /// Ingestion hardening knobs.
  io::ReaderOptions reader;
  /// Ground-truth access type per ASN (the CSV schema carries none): logs
  /// whose ASN is listed here are analyzed as mobile networks.
  std::unordered_set<bgp::Asn> mobile_asns;
  /// Registry attribution per ASN; ASNs not listed default to kRipe.
  std::map<bgp::Asn, bgp::Registry> registries;
  /// Display names for the study output (optional).
  std::map<bgp::Asn, std::string> asn_names;
};

/// Load association datasets from `paths` (logs grouped by origin asn6,
/// later files merge into earlier logs) and run the full CDN pipeline.
Expected<CdnStudy> run_cdn_study_from_files(
    const std::vector<std::string>& paths, const CdnFileStudyConfig& config,
    io::IngestStats* ingest = nullptr, const CheckpointConfig& checkpoint = {});

// --------------------------------------------------- streaming entrypoints
//
// A streaming study watches a directory for exported batch files (the same
// CSV schema the _from_files entrypoints read), ingests each new batch
// through the fault-tolerant readers, and periodically re-finalizes: every
// analyzer's snapshot() produces a finalized AtlasStudy/CdnStudy without
// consuming the accumulators, so the next batch keeps adding.
//
// Determinism contract: batches are consumed in lexicographic filename
// order, and ingesting batches B1..Bk produces results byte-identical to a
// one-shot _from_files run over [B1, ..., Bk] — at any thread count, and
// including across a mid-stream interrupt + resume. The stream checkpoint
// (kCkptAtlasStream / kCkptCdnStream) carries a monotone batch high-water
// mark: the consumed batch list plus the accumulated merged dataset, written
// after every batch, so a killed stream replays only unconsumed batches.

class ResourceGovernor;  // core/resource.h

/// Natural-number-aware name ordering — the stream's batch consumption
/// order. Maximal digit runs compare by numeric value (so `batch-1000`
/// follows `batch-999` even though it sorts lexicographically before it),
/// everything else byte-wise; equal values written with different widths
/// ("7" vs "007") break toward the shorter run, keeping the order total
/// and deterministic. Digit runs compare as stripped strings (length,
/// then bytes), so arbitrarily long counters never overflow.
bool natural_name_less(std::string_view a, std::string_view b);

struct StreamConfig {
  /// Re-finalize (snapshot + callback) after this many newly consumed
  /// batches. 0 disables count-triggered re-finalization.
  std::uint64_t refinalize_every_batches = 8;
  /// Also re-finalize when this many seconds elapsed since the last
  /// re-finalization and at least one new batch arrived. 0 disables the
  /// timer.
  double refinalize_seconds = 0.0;
  /// Directory poll interval while idle.
  std::uint64_t poll_ms = 200;
  /// A file with this basename in the watch directory ends the stream:
  /// after every earlier batch is consumed, a final re-finalization runs
  /// (with metrics recorded) and the entrypoint returns the study.
  std::string stop_sentinel = "stream.stop";
  /// Test hook: stop after consuming this many batches even without the
  /// sentinel. 0 means "run until the sentinel appears".
  std::uint64_t max_batches = 0;
  /// Stream checkpoint path. Empty disables checkpointing (and resume).
  std::string checkpoint_path;
  /// Cooperative-shutdown flag, polled between batches and between
  /// analysis rounds. Interrupts return kCancelled; the batch high-water
  /// mark checkpoint is already durable, so no data is lost.
  ShutdownToken* token = nullptr;
  /// Checkpoint to resume from; null starts fresh. Kind, fingerprint and
  /// consumed-batch list are validated.
  const io::StudyCheckpoint* resume = nullptr;
  /// Transient-IO retry budget: total attempts per batch load / checkpoint
  /// write (first try included). 1 disables retries. Each failed attempt
  /// bumps `io.retries`; exhausting the budget bumps `io.giveups` and the
  /// run returns resumable (kCancelled) when a durable checkpoint exists.
  std::uint64_t io_retry_attempts = 3;
  /// Exponential-backoff base: attempt k sleeps base<<k milliseconds plus
  /// a jitter in [0, base] derived from io_retry_seed — deterministic, so
  /// chaos runs replay with identical timing decisions.
  std::uint64_t io_retry_base_ms = 20;
  /// Seed for the backoff jitter (never wall-clock randomness).
  std::uint64_t io_retry_seed = 0;
  /// Resource governor (core/resource.h); null disables governance. The
  /// stream polls it at batch boundaries and walks the degradation
  /// ladder: memory pressure forces an early checkpoint and defers
  /// intermediate re-finalizations, disk soft pressure drops checkpoint
  /// retention to keep-last-1 and sheds quarantine writes, disk hard
  /// pressure pauses ingest until space recovers. None of these change
  /// the final outputs (only intermediate publications and diagnostics),
  /// so governor knobs are excluded from checkpoint fingerprints.
  ResourceGovernor* governor = nullptr;
  /// Backpressure: when the last consumed batch's `stream.lag_seconds`
  /// exceeds this, intermediate re-finalizations are skipped (counted in
  /// `stream.refinalize_skipped`) so ingest can catch up. 0 disables.
  double max_lag_seconds = 0.0;
  /// Bound on the pending-batch backlog admitted per directory sweep;
  /// remaining batches wait for the next sweep (they are not dropped).
  /// Keeps the per-sweep work list — and the checkpoint cadence — bounded
  /// when a burst of batches lands at once. 0 means unbounded.
  std::uint64_t max_backlog_batches = 64;
};

/// Progress of a streaming run, updated as batches are consumed.
struct StreamStats {
  std::uint64_t batches = 0;      ///< batch files consumed
  std::uint64_t records = 0;      ///< records ingested across batches
  std::uint64_t refinalizes = 0;  ///< snapshot passes (incl. the final one)
};

/// Called on every windowed re-finalization with the freshly snapshotted
/// study; use it to re-emit result CSVs while the stream keeps running.
using AtlasSnapshotFn =
    std::function<void(const AtlasStudy&, const StreamStats&)>;
using CdnSnapshotFn = std::function<void(const CdnStudy&, const StreamStats&)>;

/// Long-lived streaming driver: one fixed ShardExecutor is created up front
/// and reused for every re-finalization pass, so steady-state streaming
/// throughput matches the batch path instead of paying pool setup per
/// window.
class StreamDriver {
 public:
  /// `threads == 0` resolves to hardware concurrency (core/parallel.h).
  explicit StreamDriver(unsigned threads = 0);

  unsigned thread_count() const;

  /// Watch `watch_dir` for echo batch files and run the Atlas pipeline.
  /// `isps` provides the RIB and AS names exactly as in
  /// run_atlas_study_from_files; `config.threads` is ignored (the driver's
  /// pool is used). Returns the final study after the stop sentinel, or
  /// kCancelled on interrupt.
  Expected<AtlasStudy> follow_atlas(const std::string& watch_dir,
                                    const std::vector<simnet::IspProfile>& isps,
                                    const AtlasFileStudyConfig& config,
                                    const StreamConfig& stream,
                                    AtlasSnapshotFn on_snapshot = {},
                                    io::IngestStats* ingest = nullptr,
                                    StreamStats* stats = nullptr);

  /// Watch `watch_dir` for association batch files and run the CDN
  /// pipeline; see follow_atlas.
  Expected<CdnStudy> follow_cdn(const std::string& watch_dir,
                                const CdnFileStudyConfig& config,
                                const StreamConfig& stream,
                                CdnSnapshotFn on_snapshot = {},
                                io::IngestStats* ingest = nullptr,
                                StreamStats* stats = nullptr);

 private:
  ShardExecutor exec_;
};

/// Convenience one-call wrappers around a throwaway StreamDriver.
Expected<AtlasStudy> run_atlas_stream(
    const std::string& watch_dir, const std::vector<simnet::IspProfile>& isps,
    const AtlasFileStudyConfig& config, const StreamConfig& stream,
    AtlasSnapshotFn on_snapshot = {}, io::IngestStats* ingest = nullptr,
    StreamStats* stats = nullptr);
Expected<CdnStudy> run_cdn_stream(const std::string& watch_dir,
                                  const CdnFileStudyConfig& config,
                                  const StreamConfig& stream,
                                  CdnSnapshotFn on_snapshot = {},
                                  io::IngestStats* ingest = nullptr,
                                  StreamStats* stats = nullptr);

}  // namespace dynamips::core
